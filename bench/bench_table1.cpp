// Reproduces Table I: the 17-benchmark comparison of classic SDC
// scheduling vs ISDC — post-synthesis slack, stage count, register count,
// scheduling runtime and iteration count, plus the geomean ratio row.
//
// Flags: --benchmarks=a,b,c    subset (default: all 17)
//        --max-iterations=N    (default 15, as in the paper)
//        --subgraphs=M         per iteration (default 16)
//        --threads=T           parallel subgraph evaluations (default 4)
//        --async               run the asynchronous pipelined evaluation
//        --tool=SPEC           downstream backend, built by the backend
//                              registry (default "synthesis"); e.g.
//                              subprocess:cmd=build/tools/isdc_delay_worker,workers=4
//                              or fallback(subprocess:cmd=...,aig-depth)
//        --downstream-latency-ms=N  pad each downstream call (default 0)
//        --csv                 emit CSV instead of the aligned table
//        --json=PATH           also write per-workload metrics (wall
//                              clock, warm/cold solves, cache hit rate,
//                              evaluation overlap) as a JSON artifact
//        --quick               CI smoke: first 2 workloads, 3 iterations
#include <algorithm>
#include <chrono>
#include <iostream>
#include <memory>

#include "backend/registry.h"
#include "common.h"
#include "core/isdc_scheduler.h"
#include "sched/metrics.h"
#include "support/stats.h"
#include "support/table.h"
#include "workloads/registry.h"

namespace {

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point start) {
  return std::chrono::duration<double>(clock_type::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  const isdc::bench::flags flags(argc, argv);
  isdc::bench::maybe_start_trace(flags);
  const auto subset = flags.get_list("benchmarks");

  isdc::synth::delay_model model;  // shared characterization cache

  isdc::text_table table;
  table.set_header({"Benchmark", "Clk(ps)", "SDC slack", "SDC stg",
                    "SDC regs", "SDC t(s)", "ISDC slack", "ISDC stg",
                    "ISDC regs", "ISDC t(s)", "Iters", "W/C", "Re-emit"});

  std::vector<double> slack_ratio;
  std::vector<double> stage_ratio;
  std::vector<double> reg_ratio;
  std::vector<double> time_ratio;
  isdc::bench::json_array workload_json;

  const double latency_ms = flags.get_int("downstream-latency-ms", 0);

  // Downstream backend selected by spec string; the engine takes any
  // registry-built tool unchanged (cache keys scope by tool name).
  isdc::backend::tool_handle backend;
  try {
    backend = isdc::backend::make_tool(flags.get("tool", "synthesis"));
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
  std::unique_ptr<isdc::core::latency_downstream> padded;
  if (latency_ms > 0) {
    padded = std::make_unique<isdc::core::latency_downstream>(backend.tool(),
                                                              latency_ms);
  }
  const isdc::core::downstream_tool& tool =
      padded ? static_cast<const isdc::core::downstream_tool&>(*padded)
             : backend.tool();

  int taken = 0;
  for (const auto& spec : isdc::workloads::all_workloads()) {
    if (!subset.empty() &&
        std::find(subset.begin(), subset.end(), spec.name) == subset.end()) {
      continue;
    }
    if (flags.quick() && subset.empty() && ++taken > 2) {
      break;  // --quick: smoke-run the first two workloads only
    }
    const isdc::ir::graph g = spec.build();

    isdc::core::isdc_options opts;
    opts.base.clock_period_ps = spec.clock_period_ps;
    opts.max_iterations = flags.quick_int("max-iterations", 15, 3);
    opts.subgraphs_per_iteration = flags.quick_int("subgraphs", 16, 4);
    opts.num_threads = flags.get_int("threads", 4);
    opts.compute_threads = isdc::bench::threads_flag(flags);
    opts.async_evaluation = flags.has("async");

    // Pre-warm the characterization cache so scheduling times measure
    // scheduling, not one-time library characterization (the paper's
    // delay model is likewise characterized offline).
    for (isdc::ir::node_id v = 0; v < g.num_nodes(); ++v) {
      model.node_delay_ps(g, v);
    }

    const auto sdc_start = clock_type::now();
    isdc::sched::delay_matrix naive = isdc::sched::delay_matrix::initial(
        g, [&](isdc::ir::node_id v) { return model.node_delay_ps(g, v); });
    const isdc::sched::schedule baseline =
        isdc::sched::sdc_schedule(g, naive, opts.base);
    const double sdc_seconds = seconds_since(sdc_start);

    const auto isdc_start = clock_type::now();
    const isdc::core::isdc_result result =
        isdc::core::run_isdc(g, tool, opts, &model);
    const double isdc_seconds = seconds_since(isdc_start);

    const double sdc_slack = isdc::sched::post_synthesis_slack(
        g, baseline, spec.clock_period_ps, opts.synth);
    const double isdc_slack = isdc::sched::post_synthesis_slack(
        g, result.final_schedule, spec.clock_period_ps, opts.synth);
    const auto sdc_regs = isdc::sched::register_bits(g, baseline);
    const auto isdc_regs =
        isdc::sched::register_bits(g, result.final_schedule);

    // Warm/cold solve split and timing constraints re-emitted across the
    // run: the incremental resolve should leave the baseline as the lone
    // cold solve (W/C with C == 1 means warm-start engaged every
    // iteration).
    std::size_t warm_solves = 0;
    std::size_t cold_solves = 0;
    std::size_t reemitted = 0;
    std::int64_t cache_hits = 0;
    std::int64_t subgraphs_evaluated = 0;
    std::int64_t dispatched = 0;
    std::int64_t arrived = 0;
    std::size_t max_in_flight = 0;
    for (const auto& rec : result.history) {
      (rec.warm_resolve ? warm_solves : cold_solves) += 1;
      reemitted += rec.constraints_reemitted;
      cache_hits += rec.cache_hits;
      subgraphs_evaluated += rec.subgraphs_evaluated;
      dispatched += rec.evaluations_dispatched;
      arrived += rec.evaluations_arrived;
      // Peak concurrent in-flight depth during the pass: what was still
      // pending after update plus what update consumed (all of which were
      // simultaneously dispatched-and-unconsumed when the pass began its
      // update).
      max_in_flight = std::max(
          max_in_flight, rec.evaluations_in_flight +
                             static_cast<std::size_t>(rec.evaluations_arrived));
    }

    table.add_row({spec.name, isdc::format_double(spec.clock_period_ps, 0),
                   isdc::format_double(sdc_slack, 1),
                   std::to_string(baseline.num_stages()),
                   std::to_string(sdc_regs),
                   isdc::format_double(sdc_seconds, 3),
                   isdc::format_double(isdc_slack, 1),
                   std::to_string(result.final_schedule.num_stages()),
                   std::to_string(isdc_regs),
                   isdc::format_double(isdc_seconds, 3),
                   std::to_string(result.iterations),
                   std::to_string(warm_solves) + "/" +
                       std::to_string(cold_solves),
                   std::to_string(reemitted)});

    isdc::bench::json_object wj;
    wj.set("name", spec.name)
        .set("clock_period_ps", spec.clock_period_ps)
        .set("sdc_slack_ps", sdc_slack)
        .set("sdc_stages", baseline.num_stages())
        .set("sdc_register_bits", sdc_regs)
        .set("sdc_seconds", sdc_seconds)
        .set("isdc_slack_ps", isdc_slack)
        .set("isdc_stages", result.final_schedule.num_stages())
        .set("isdc_register_bits", isdc_regs)
        .set("isdc_seconds", isdc_seconds)
        .set("iterations", result.iterations)
        .set("warm_solves", static_cast<std::int64_t>(warm_solves))
        .set("cold_solves", static_cast<std::int64_t>(cold_solves))
        .set("constraints_reemitted", static_cast<std::int64_t>(reemitted))
        .set("subgraphs_evaluated", subgraphs_evaluated)
        .set("cache_hits", cache_hits)
        .set("cache_hit_rate",
             subgraphs_evaluated > 0
                 ? static_cast<double>(cache_hits) / subgraphs_evaluated
                 : 0.0)
        .set("evaluations_dispatched", dispatched)
        .set("evaluations_arrived", arrived)
        .set("max_in_flight", static_cast<std::int64_t>(max_in_flight));
    workload_json.push_raw(wj.str());

    if (sdc_slack > 0 && isdc_slack > 0) {
      slack_ratio.push_back(isdc_slack / sdc_slack);
    }
    stage_ratio.push_back(
        static_cast<double>(result.final_schedule.num_stages()) /
        baseline.num_stages());
    reg_ratio.push_back(static_cast<double>(isdc_regs) / sdc_regs);
    time_ratio.push_back(isdc_seconds / std::max(sdc_seconds, 1e-6));
    std::cerr << "done: " << spec.name << "\n";
  }

  table.add_row({"Geomean ratio (ISDC/SDC)", "",
                 isdc::format_double(100.0 * isdc::geomean(slack_ratio), 1) +
                     "%",
                 isdc::format_double(100.0 * isdc::geomean(stage_ratio), 1) +
                     "%",
                 isdc::format_double(100.0 * isdc::geomean(reg_ratio), 1) +
                     "%",
                 isdc::format_double(isdc::geomean(time_ratio), 1) + "x", "",
                 "", "", "", "", "", ""});

  std::cout << "=== Table I: SDC vs ISDC on the 17-benchmark suite ===\n";
  std::cout << "(paper reference: 60.9% slack, 70.0% stages, 71.5% "
               "registers, 40.8x runtime)\n\n";
  if (flags.has("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  isdc::bench::json_object root;
  root.set("bench", "table1")
      .set("tool", backend.spec())
      .set("async_evaluation", flags.has("async"))
      .set("downstream_latency_ms", latency_ms)
      .set("subgraphs_per_iteration", flags.quick_int("subgraphs", 16, 4))
      .set("threads", flags.get_int("threads", 4))
      .set_raw("workloads", workload_json.str());
  isdc::bench::json_object geo;
  geo.set("slack", isdc::geomean(slack_ratio))
      .set("stages", isdc::geomean(stage_ratio))
      .set("registers", isdc::geomean(reg_ratio))
      .set("time", isdc::geomean(time_ratio));
  root.set_raw("geomean_isdc_over_sdc", geo.str());
  if (const isdc::backend::subprocess_tool* pool = backend.subprocess()) {
    const auto c = pool->stats();
    root.set_raw("subprocess",
                 isdc::bench::subprocess_counters_json(c).str());
    std::cout << "\nSubprocess pool: " << c.calls << " calls, "
              << c.restarts << " restarts, " << c.timeouts << " timeouts, "
              << c.retries << " retries\n";
  }
  if (!isdc::bench::maybe_write_trace(flags)) {
    return 1;
  }
  if (!isdc::bench::write_json_artifact(flags, root, std::cerr)) {
    return 1;
  }
  return 0;
}
