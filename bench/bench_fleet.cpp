// Fleet scheduling over the full workload registry: many designs through
// one engine with a shared canonical-fingerprint evaluation cache, one
// I/O dispatch pool and one process-wide characterizer, versus the
// one-design-at-a-time baseline (fresh engine, fresh characterizer and
// cold cache per design — the "one design per process" shape this front-
// end replaces). Both arms use the same per-run pipeline options, so the
// comparison isolates what the fleet adds: shard concurrency, amortized
// warmup and cross-design measurement reuse.
//
// Per design it checks result parity (stages / register bits / schedule
// bits vs the solo run); for the batch it reports wall clock, speedup,
// designs/sec and the cross-design coalescing: how many distinct
// fingerprints the whole registry shares, and how many downstream calls
// the sharing saved.
//
// Flags: --shards=N                  concurrent ISDC runs (default 4)
//        --tool=SPEC                 downstream backend (backend registry
//                                    spec; default: the unoptimized
//                                    AIG-depth oracle below)
//        --downstream-latency-ms=N   injected per-call latency. Default 50
//                                    for the built-in oracle; 0 when
//                                    --tool is given (a real backend's
//                                    latency needs no injection)
//        --max-iterations=N          (default 15)
//        --subgraphs=M               per iteration (default 16, the paper)
//        --sync                      synchronous per-run pipeline (default:
//                                    async, PR 3's latency-hiding pipeline)
//        --benchmarks=a,b,c          subset (default: the full registry)
//        --json=PATH                 machine-readable artifact
//        --trace=PATH                chrome-trace span timeline (solo +
//                                    fleet arms; open in Perfetto)
//        --csv                       CSV instead of the aligned table
//        --quick                     CI smoke: 4 workloads, 10ms, 3 iters,
//                                    2 shards
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "backend/registry.h"
#include "common.h"
#include "core/downstream.h"
#include "engine/fleet.h"
#include "sched/metrics.h"
#include "support/stats.h"
#include "support/table.h"
#include "telemetry/metrics.h"
#include "workloads/registry.h"

namespace {

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point start) {
  return std::chrono::duration<double>(clock_type::now() - start).count();
}

struct solo_outcome {
  double seconds = 0.0;
  std::uint64_t downstream_calls = 0;
  std::uint64_t unique_subgraphs = 0;
  std::uint64_t cache_hits = 0;
  isdc::core::isdc_result result;
};

}  // namespace

int main(int argc, char** argv) {
  const isdc::bench::flags flags(argc, argv);
  isdc::bench::maybe_start_trace(flags);
  auto subset = flags.get_list("benchmarks");
  if (subset.empty()) {
    for (const isdc::workloads::workload_spec& spec :
         isdc::workloads::all_workloads()) {
      subset.push_back(spec.name);
    }
    if (flags.quick()) {
      subset = {"rrot", "ml_datapath0_opcode0", "ml_datapath0_all", "crc32"};
    }
  }
  // Injected latency models an external backend when the oracle is the
  // in-process default; an explicit --tool already pays its own real
  // latency, so injection defaults off for it (still overridable).
  const double latency_ms =
      flags.has("downstream-latency-ms") || !flags.has("tool")
          ? flags.quick_int("downstream-latency-ms", 50, 10)
          : 0.0;
  const int shards = flags.quick_int("shards", 4, 2);

  isdc::core::isdc_options opts;
  opts.max_iterations = flags.quick_int("max-iterations", 15, 3);
  opts.subgraphs_per_iteration = flags.quick_int("subgraphs", 16, 4);
  opts.num_threads = flags.get_int("threads", 4);
  opts.compute_threads = isdc::bench::threads_flag(flags);
  opts.async_evaluation = !flags.has("sync");
  // Default backend: an unoptimized AIG-depth oracle — real
  // (depth-correlated) feedback at negligible local compute, so the
  // injected latency models an external backend (a Yosys subprocess, a
  // remote STA service) that burns no host CPU while the caller waits.
  // --tool=SPEC swaps in any registry-built backend (e.g. a real
  // subprocess pool, whose latency then needs no injection).
  isdc::synth::synthesis_options cheap;
  cheap.opt_rounds = 0;
  cheap.use_rewrite = false;
  cheap.use_refactor = false;
  opts.synth = cheap;
  isdc::backend::tool_handle backend;
  try {
    backend = isdc::backend::make_tool(flags.get(
        "tool", "aig-depth:ps=80,offset=0,rounds=0,rewrite=0,refactor=0"));
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
  const isdc::core::downstream_tool& inner = backend.tool();

  // Build every design up front; jobs reference them.
  std::vector<const isdc::workloads::workload_spec*> specs;
  for (const std::string& name : subset) {
    const isdc::workloads::workload_spec* spec =
        isdc::workloads::find_workload(name);
    if (spec == nullptr) {
      std::cerr << "unknown workload: " << name << "\n";
      return 1;
    }
    specs.push_back(spec);
  }
  std::vector<isdc::ir::graph> graphs;
  graphs.reserve(specs.size());
  for (const auto* spec : specs) {
    graphs.push_back(spec->build());
  }

  // Arm 1 — sequential baseline: one design per "process". Fresh engine,
  // fresh characterizer, cold cache for every design; same pipeline
  // options otherwise.
  std::vector<solo_outcome> solo(specs.size());
  double sequential_seconds = 0.0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    isdc::core::latency_downstream tool(inner, latency_ms);
    const auto start = clock_type::now();
    isdc::synth::delay_model per_run_model(opts.synth);
    isdc::engine::engine e;
    isdc::core::isdc_options run_opts = opts;
    run_opts.base.clock_period_ps = specs[i]->clock_period_ps;
    solo[i].result = e.run(graphs[i], tool, run_opts, &per_run_model);
    solo[i].seconds = seconds_since(start);
    solo[i].downstream_calls = tool.calls();
    solo[i].unique_subgraphs = e.cache().size();
    solo[i].cache_hits = e.cache().stats().hits;
    sequential_seconds += solo[i].seconds;
    std::cerr << "solo done: " << specs[i]->name << "\n";
  }

  // Arm 2 — the fleet: everything shared. The global registry is zeroed
  // here so its cache.* counters cover exactly the fleet arm — making
  // them directly comparable (and asserted equal below) to the legacy
  // per-instance cache delta the fleet_report carries.
  isdc::telemetry::reset_metrics();
  isdc::core::latency_downstream fleet_tool(inner, latency_ms);
  isdc::engine::fleet_options fopts;
  fopts.shards = shards;
  fopts.isdc = opts;
  isdc::engine::fleet fleet(fopts);
  std::vector<isdc::engine::fleet_job> jobs;
  jobs.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    jobs.push_back({.name = specs[i]->name,
                    .graph = &graphs[i],
                    .clock_period_ps = specs[i]->clock_period_ps});
  }
  const isdc::engine::fleet_report report = fleet.run(jobs, fleet_tool);
  std::cerr << "fleet done: " << jobs.size() << " designs\n";

  // The registry mirrors must agree exactly with the legacy per-instance
  // cache counters over the fleet arm (reset_metrics above scoped them to
  // it). Any drift means an instrumentation site was missed or
  // double-counted — fail the bench, not just a log line.
  const isdc::telemetry::registry::snapshot metrics_snap =
      isdc::telemetry::registry::global().snap();
  std::uint64_t registry_cache_hits = 0;
  std::uint64_t registry_cache_coalesced = 0;
  std::uint64_t registry_cache_misses = 0;
  for (const auto& [name, value] : metrics_snap.counters) {
    if (name == "cache.hit") {
      registry_cache_hits = value;
    } else if (name == "cache.coalesced") {
      registry_cache_coalesced = value;
    } else if (name == "cache.miss") {
      registry_cache_misses = value;
    }
  }
  const bool metrics_match_legacy =
      registry_cache_hits == report.cache_delta.hits &&
      registry_cache_coalesced == report.cache_delta.coalesced &&
      registry_cache_misses == report.cache_delta.misses;
  if (!metrics_match_legacy) {
    std::cerr << "metrics mismatch: registry cache.hit/miss/coalesced = "
              << registry_cache_hits << "/" << registry_cache_misses << "/"
              << registry_cache_coalesced
              << " but legacy cache delta = " << report.cache_delta.hits
              << "/" << report.cache_delta.misses << "/"
              << report.cache_delta.coalesced << "\n";
  }

  // Cross-design coalescing: distinct fingerprints each design would
  // measure alone, minus what the shared cache actually holds.
  std::uint64_t solo_unique_total = 0;
  std::uint64_t solo_calls_total = 0;
  std::uint64_t solo_hits_total = 0;
  for (const solo_outcome& s : solo) {
    solo_unique_total += s.unique_subgraphs;
    solo_calls_total += s.downstream_calls;
    solo_hits_total += s.cache_hits;
  }
  // Guarded subtractions: async trajectories are timing-dependent, so a
  // fleet run can occasionally measure subgraphs the solo arm never
  // reached — the differences below must floor at zero, not wrap.
  const std::uint64_t cross_design_shared =
      solo_unique_total > report.unique_subgraphs
          ? solo_unique_total - report.unique_subgraphs
          : 0;
  const std::uint64_t calls_saved =
      solo_calls_total > fleet_tool.calls()
          ? solo_calls_total - fleet_tool.calls()
          : 0;
  // Hits beyond what the designs would produce against their own private
  // caches: answered by entries another design measured.
  const std::uint64_t cross_design_hits =
      report.cache_delta.hits > solo_hits_total
          ? report.cache_delta.hits - solo_hits_total
          : 0;

  isdc::text_table table;
  table.set_header({"Benchmark", "Solo t(s)", "Fleet t(s)", "Solo calls",
                    "Solo stg", "Fleet stg", "Solo regs", "Fleet regs",
                    "Bit-identical"});
  isdc::bench::json_array rows;
  int parity_mismatches = 0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const isdc::engine::fleet_result& fr = report.results[i];
    if (fr.error != nullptr) {
      table.add_row({specs[i]->name, "", "", "", "", "", "", "", "ERROR"});
      ++parity_mismatches;
      continue;
    }
    const auto solo_regs =
        isdc::sched::register_bits(graphs[i], solo[i].result.final_schedule);
    const auto fleet_regs =
        isdc::sched::register_bits(graphs[i], fr.result.final_schedule);
    const bool identical =
        fr.result.final_schedule == solo[i].result.final_schedule;
    parity_mismatches += identical ? 0 : 1;
    table.add_row(
        {specs[i]->name, isdc::format_double(solo[i].seconds, 2),
         isdc::format_double(fr.seconds, 2),
         std::to_string(solo[i].downstream_calls),
         std::to_string(solo[i].result.final_schedule.num_stages()),
         std::to_string(fr.result.final_schedule.num_stages()),
         std::to_string(solo_regs), std::to_string(fleet_regs),
         identical ? "yes" : "NO"});
    isdc::bench::json_object row;
    row.set("benchmark", specs[i]->name)
        .set("solo_seconds", solo[i].seconds)
        .set("fleet_seconds", fr.seconds)
        .set("solo_downstream_calls",
             static_cast<std::uint64_t>(solo[i].downstream_calls))
        .set("solo_unique_subgraphs",
             static_cast<std::uint64_t>(solo[i].unique_subgraphs))
        .set("solo_stages", solo[i].result.final_schedule.num_stages())
        .set("fleet_stages", fr.result.final_schedule.num_stages())
        .set("solo_register_bits", static_cast<std::int64_t>(solo_regs))
        .set("fleet_register_bits", static_cast<std::int64_t>(fleet_regs))
        .set("schedule_bit_identical", identical)
        .set("peak_rss_kb_at_job_end", fr.peak_rss_kb);
    rows.push_raw(row.str());
  }

  const double speedup =
      sequential_seconds / std::max(report.wall_seconds, 1e-9);
  table.add_row({"Total", isdc::format_double(sequential_seconds, 2),
                 isdc::format_double(report.wall_seconds, 2),
                 std::to_string(solo_calls_total), "", "", "", "",
                 isdc::format_double(speedup, 2) + "x speedup"});

  std::cout << "=== Fleet scheduling vs one-design-at-a-time ===\n";
  std::cout << "(" << jobs.size() << " designs, " << shards << " shards, "
            << latency_ms << " ms injected downstream latency, "
            << (opts.async_evaluation ? "async" : "sync")
            << " per-run pipeline)\n\n";
  if (flags.has("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\nSequential wall clock:    "
            << isdc::format_double(sequential_seconds, 2) << " s\n";
  std::cout << "Fleet wall clock:         "
            << isdc::format_double(report.wall_seconds, 2) << " s  ("
            << isdc::format_double(speedup, 2) << "x, "
            << isdc::format_double(report.designs_per_second, 2)
            << " designs/s)\n";
  std::cout << "Downstream calls:         " << solo_calls_total
            << " solo -> " << fleet_tool.calls() << " fleet ("
            << calls_saved << " saved)\n";
  std::cout << "Distinct subgraphs:       " << solo_unique_total
            << " per-design -> " << report.unique_subgraphs
            << " shared (" << cross_design_shared
            << " coalesced across designs)\n";
  std::cout << "Fleet cache activity:     " << report.cache_delta.hits
            << " hits (" << cross_design_hits << " cross-design, vs "
            << solo_hits_total << " total against private caches), "
            << report.cache_delta.misses << " misses, "
            << report.cache_delta.coalesced << " coalesced acquisitions\n";
  std::cout << "Schedule parity:          "
            << (parity_mismatches == 0 ? "all designs bit-identical to solo"
                                       : std::to_string(parity_mismatches) +
                                             " design(s) differ")
            << "\n";
  const isdc::core::latency_downstream::latency_stats fleet_latency =
      fleet_tool.observed();
  std::cout << "Fleet downstream latency: p50 "
            << isdc::format_double(fleet_latency.p50_ms, 2) << " ms, p99 "
            << isdc::format_double(fleet_latency.p99_ms, 2) << " ms (mean "
            << isdc::format_double(fleet_latency.mean_ms, 2) << " ms over "
            << fleet_latency.calls << " calls)\n";
  std::cout << "Metrics registry parity:  "
            << (metrics_match_legacy
                    ? "cache.* counters match the legacy cache delta"
                    : "MISMATCH vs legacy cache counters")
            << "\n";

  isdc::bench::json_object root;
  root.set("bench", "fleet")
      .set("tool", backend.spec())
      .set("shards", shards)
      .set("downstream_latency_ms", latency_ms)
      .set("async", opts.async_evaluation)
      .set("designs", static_cast<std::int64_t>(jobs.size()))
      .set("sequential_seconds", sequential_seconds)
      .set("fleet_wall_seconds", report.wall_seconds)
      .set("speedup", speedup)
      .set("designs_per_second", report.designs_per_second)
      .set("solo_downstream_calls", solo_calls_total)
      .set("fleet_downstream_calls", fleet_tool.calls())
      .set("downstream_calls_saved", calls_saved)
      .set("solo_unique_subgraphs", solo_unique_total)
      .set("fleet_unique_subgraphs",
           static_cast<std::uint64_t>(report.unique_subgraphs))
      .set("cross_design_shared_subgraphs", cross_design_shared)
      .set("cross_design_cache_hits", cross_design_hits)
      .set("solo_cache_hits", solo_hits_total)
      .set("fleet_cache_hits", report.cache_delta.hits)
      .set("fleet_cache_misses", report.cache_delta.misses)
      .set("fleet_cache_coalesced", report.cache_delta.coalesced)
      .set("schedule_parity_mismatches", parity_mismatches)
      .set("fleet_latency_p50_ms", fleet_latency.p50_ms)
      .set("fleet_latency_p99_ms", fleet_latency.p99_ms)
      .set("fleet_latency_mean_ms", fleet_latency.mean_ms)
      .set("fleet_latency_min_ms", fleet_latency.min_ms)
      .set("fleet_latency_max_ms", fleet_latency.max_ms)
      .set("metrics_match_legacy", metrics_match_legacy)
      .set_raw("per_design", rows.str());
  if (const isdc::backend::subprocess_tool* pool = backend.subprocess()) {
    root.set_raw(
        "subprocess",
        isdc::bench::subprocess_counters_json(pool->stats()).str());
  }
  if (!isdc::bench::maybe_write_trace(flags)) {
    return 1;
  }
  if (!isdc::bench::write_json_artifact(flags, root, std::cerr)) {
    return 1;
  }
  return metrics_match_legacy ? 0 : 1;
}
