// google-benchmark microbenchmarks for the library's hot kernels: the SDC
// LP solve, AIG construction/optimization, cut enumeration, technology
// mapping, the delay-matrix algorithms (Alg. 1 / Alg. 2 / Floyd-Warshall)
// and one full subgraph-synthesis feedback evaluation. These back the
// scheduling-runtime columns of Table I with per-kernel numbers.
//
// The reformulation kernels run at large n (1024/4096/10k) on two graph
// shapes — the fully connected chain and a layered random DAG — next to
// their scalar _reference twins, so the blocked-kernel speedup is measured
// where it matters. (The heaviest reference points register only without
// --quick; a CI smoke should not spend minutes in an O(n^3) scalar loop.)
//
// Flags: everything google-benchmark accepts, plus --quick (shrinks the
// per-benchmark measuring time to a CI-smoke size) and --json=PATH (the
// repo-standard perf artifact: per-kernel ns and bytes/s).
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "aig/balance.h"
#include "aig/cuts.h"
#include "common.h"
#include "core/delay_update.h"
#include "core/floyd_warshall.h"
#include "core/reformulate.h"
#include "ir/builder.h"
#include "lower/lowering.h"
#include "sched/sdc_scheduler.h"
#include "support/failpoint.h"
#include "support/rng.h"
#include "support/thread_pool.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "synth/synthesis.h"
#include "synth/techmap.h"
#include "workloads/registry.h"

namespace {

using namespace isdc;

ir::graph chain_graph(int length) {
  ir::graph g("chain");
  ir::builder b(g);
  ir::node_id v = b.input(32, "x");
  const ir::node_id y = b.input(32, "y");
  for (int i = 0; i < length; ++i) {
    v = i % 2 == 0 ? b.add(v, y) : b.bxor(v, y);
  }
  g.mark_output(v);
  return g;
}

/// A layered random DAG with ~`nodes` nodes total: sparser connectivity
/// than chain_graph, so the kernels' not_connected skipping is exercised.
ir::graph random_dag_graph(int nodes) {
  const workloads::random_dag_options opts;
  return workloads::build_random_dag(42, nodes - opts.num_inputs, opts);
}

sched::delay_matrix uniform_matrix(const ir::graph& g, double unit) {
  return sched::delay_matrix::initial(g, [&g, unit](ir::node_id v) {
    const ir::opcode op = g.at(v).op;
    return op == ir::opcode::input || op == ir::opcode::constant ? 0.0
                                                                 : unit;
  });
}

void BM_sdc_schedule(benchmark::State& state) {
  const ir::graph g = chain_graph(static_cast<int>(state.range(0)));
  const sched::delay_matrix d = uniform_matrix(g, 600.0);
  sched::scheduler_options opts;
  opts.clock_period_ps = 2500.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::sdc_schedule(g, d, opts));
  }
}
BENCHMARK(BM_sdc_schedule)->Arg(16)->Arg(64)->Arg(256);

void BM_delay_matrix_initial(benchmark::State& state) {
  const ir::graph g = chain_graph(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(uniform_matrix(g, 500.0));
  }
  const std::int64_t n = static_cast<std::int64_t>(g.num_nodes());
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          n * static_cast<std::int64_t>(sizeof(float)));
}
BENCHMARK(BM_delay_matrix_initial)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_lower_graph(benchmark::State& state) {
  const ir::graph g = workloads::build_crc32(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lower::lower_graph(g));
  }
}
BENCHMARK(BM_lower_graph);

void BM_aig_strash(benchmark::State& state) {
  const ir::graph g = workloads::build_crc32(16);
  const auto lowered = lower::lower_graph(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lowered.net.cleanup());
  }
}
BENCHMARK(BM_aig_strash);

void BM_aig_balance(benchmark::State& state) {
  const ir::graph g = workloads::build_crc32(16);
  const aig::aig net = lower::lower_graph(g).net.cleanup();
  for (auto _ : state) {
    benchmark::DoNotOptimize(aig::balance(net));
  }
}
BENCHMARK(BM_aig_balance);

void BM_cut_enumeration(benchmark::State& state) {
  const ir::graph g = workloads::build_crc32(16);
  const aig::aig net = lower::lower_graph(g).net.cleanup();
  for (auto _ : state) {
    benchmark::DoNotOptimize(aig::enumerate_cuts(net));
  }
}
BENCHMARK(BM_cut_enumeration);

void BM_technology_map(benchmark::State& state) {
  const ir::graph g = workloads::build_crc32(16);
  const aig::aig net =
      synth::optimize(lower::lower_graph(g).net.cleanup());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        synth::technology_map(net, synth::default_library()));
  }
}
BENCHMARK(BM_technology_map);

void BM_subgraph_feedback_evaluation(benchmark::State& state) {
  // One full downstream evaluation: the unit of work ISDC parallelizes.
  ir::graph g("cloud");
  ir::builder b(g);
  const ir::node_id a = b.input(32, "a");
  const ir::node_id c = b.input(32, "b");
  b.output(b.add(b.add(a, c), b.bxor(a, c)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(synth::synthesize_graph(g));
  }
}
BENCHMARK(BM_subgraph_feedback_evaluation);

void BM_alg1_delay_update(benchmark::State& state) {
  const ir::graph g = chain_graph(static_cast<int>(state.range(0)));
  sched::delay_matrix d = uniform_matrix(g, 500.0);
  core::evaluated_subgraph eval;
  for (ir::node_id v = 0; v < g.num_nodes(); v += 2) {
    eval.members.push_back(v);
  }
  eval.delay_ps = 450.0;
  for (auto _ : state) {
    sched::delay_matrix copy = d;
    benchmark::DoNotOptimize(
        core::update_delay_matrix(copy, {&eval, 1}));
  }
}
BENCHMARK(BM_alg1_delay_update)->Arg(64)->Arg(256);

// The reformulation kernels grew parallel overloads; these wrappers pin
// the serial forms so they can be passed as template arguments.
constexpr auto serial_alg2 = [](const ir::graph& g, sched::delay_matrix& d) {
  return core::reformulate_alg2(g, d);
};
constexpr auto serial_fw = [](const ir::graph& g, sched::delay_matrix& d) {
  return core::reformulate_floyd_warshall(g, d);
};

/// Shared body of every reformulation benchmark: one matrix per graph,
/// re-copied per iteration outside the timed region (the copy is setup —
/// at 4096 nodes it is a 64 MB memcpy that would otherwise drown the
/// kernel), with the matrix footprint as bytes processed.
template <typename Kernel>
void reformulation_bench(benchmark::State& state, const ir::graph& g,
                         Kernel kernel) {
  const sched::delay_matrix d = uniform_matrix(g, 500.0);
  for (auto _ : state) {
    state.PauseTiming();
    sched::delay_matrix copy = d;
    state.ResumeTiming();
    benchmark::DoNotOptimize(kernel(g, copy));
  }
  const std::int64_t n = static_cast<std::int64_t>(g.num_nodes());
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          n * static_cast<std::int64_t>(sizeof(float)));
}

void BM_alg2_reformulate(benchmark::State& state) {
  reformulation_bench(state, chain_graph(static_cast<int>(state.range(0))),
                      serial_alg2);
}
BENCHMARK(BM_alg2_reformulate)
    ->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)->Arg(10240);

void BM_alg2_reformulate_reference(benchmark::State& state) {
  reformulation_bench(state, chain_graph(static_cast<int>(state.range(0))),
                      core::reformulate_alg2_reference);
}
BENCHMARK(BM_alg2_reformulate_reference)->Arg(64)->Arg(256)->Arg(1024);

void BM_alg2_reformulate_random(benchmark::State& state) {
  reformulation_bench(state,
                      random_dag_graph(static_cast<int>(state.range(0))),
                      serial_alg2);
}
BENCHMARK(BM_alg2_reformulate_random)->Arg(1024)->Arg(4096)->Arg(10240);

void BM_alg2_reformulate_random_reference(benchmark::State& state) {
  reformulation_bench(state,
                      random_dag_graph(static_cast<int>(state.range(0))),
                      core::reformulate_alg2_reference);
}
BENCHMARK(BM_alg2_reformulate_random_reference)->Arg(1024);

void BM_floyd_warshall(benchmark::State& state) {
  reformulation_bench(state, chain_graph(static_cast<int>(state.range(0))),
                      serial_fw);
}
BENCHMARK(BM_floyd_warshall)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_floyd_warshall_reference(benchmark::State& state) {
  reformulation_bench(state, chain_graph(static_cast<int>(state.range(0))),
                      core::reformulate_floyd_warshall_reference);
}
BENCHMARK(BM_floyd_warshall_reference)->Arg(64)->Arg(256);

void BM_floyd_warshall_random(benchmark::State& state) {
  reformulation_bench(state,
                      random_dag_graph(static_cast<int>(state.range(0))),
                      serial_fw);
}
BENCHMARK(BM_floyd_warshall_random)->Arg(1024)->Arg(4096);

void BM_floyd_warshall_random_reference(benchmark::State& state) {
  reformulation_bench(state,
                      random_dag_graph(static_cast<int>(state.range(0))),
                      core::reformulate_floyd_warshall_reference);
}
BENCHMARK(BM_floyd_warshall_random_reference)->Arg(1024);

/// The reference points that take whole seconds-to-minutes per iteration;
/// a --quick smoke skips them, the full scoreboard run includes them so
/// the speedup at 4096 lands in the artifact.
void register_heavy_reference_benchmarks() {
  benchmark::RegisterBenchmark("BM_alg2_reformulate_reference",
                               BM_alg2_reformulate_reference)
      ->Arg(4096)->Arg(10240);
  benchmark::RegisterBenchmark("BM_alg2_reformulate_random_reference",
                               BM_alg2_reformulate_random_reference)
      ->Arg(4096);
  benchmark::RegisterBenchmark("BM_floyd_warshall_reference",
                               BM_floyd_warshall_reference)
      ->Arg(1024)->Arg(4096);
  benchmark::RegisterBenchmark("BM_floyd_warshall_random_reference",
                               BM_floyd_warshall_random_reference)
      ->Arg(4096);
}

void BM_parallel_for(benchmark::State& state) {
  // The engine's evaluate fan-out (16 subgraphs per iteration) and the
  // bench sweeps dispatch through parallel_for; chunked dispatch over an
  // atomic counter replaced one packaged_task + future allocation per
  // index, which dominated at these small trip counts.
  thread_pool pool(4);
  const std::size_t count = static_cast<std::size_t>(state.range(0));
  std::atomic<std::uint64_t> sink{0};
  for (auto _ : state) {
    pool.parallel_for(count, [&sink](std::size_t i) {
      sink.fetch_add(i, std::memory_order_relaxed);
    });
  }
  benchmark::DoNotOptimize(sink.load());
}
BENCHMARK(BM_parallel_for)->Arg(16)->Arg(256)->Arg(4096);

void BM_failpoint_disarmed(benchmark::State& state) {
  // Every subprocess pipe read/write (and every cache save) carries a
  // failpoint; with no schedule armed the check must stay a single
  // relaxed atomic load, so the chaos hooks can live on production hot
  // paths. bench_chaos guards the same number in its JSON artifact.
  isdc::failpoint::disarm();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        isdc::failpoint::maybe_fail("bench.micro.failpoint"));
  }
}
BENCHMARK(BM_failpoint_disarmed);

void BM_span_disabled(benchmark::State& state) {
  // Trace spans live permanently on the engine's per-stage, per-dispatch
  // and per-subprocess-call paths; with tracing off, constructing and
  // destroying one must stay a single relaxed atomic load (~1 ns). The
  // scoreboard below fails the bench if this regresses past 250 ns.
  isdc::telemetry::stop_tracing();
  for (auto _ : state) {
    const isdc::telemetry::span sp("bench.micro.span");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_span_disabled);

void BM_counter_inc(benchmark::State& state) {
  // Registry counters mirror every cache hit and subprocess call; the
  // per-event cost (reference cached, as all call sites do) must stay one
  // relaxed fetch_add. Enforced alongside BM_span_disabled.
  isdc::telemetry::counter& c =
      isdc::telemetry::get_counter("bench.micro.counter");
  for (auto _ : state) {
    c.add();
  }
  benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_counter_inc);

void BM_histogram_record(benchmark::State& state) {
  // A histogram record is a lower_bound over ~40 boundaries plus a few
  // relaxed atomics — cheap enough for per-stage wall-clock recording,
  // but not free; tracked here so growth shows up in the scoreboard.
  isdc::telemetry::histogram& h =
      isdc::telemetry::get_histogram("bench.micro.histogram");
  double v = 1.0;
  for (auto _ : state) {
    h.record(v);
    v = v < 1e6 ? v * 1.7 : 1.0;
  }
  benchmark::DoNotOptimize(h.snapshot().count);
}
BENCHMARK(BM_histogram_record);

/// Console output as usual, plus one collected entry per run for the
/// --json artifact.
class collecting_reporter : public benchmark::ConsoleReporter {
 public:
  struct entry {
    std::string name;
    std::int64_t iterations = 0;
    double real_ns = 0.0;
    double cpu_ns = 0.0;
    double bytes_per_second = 0.0;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) {
        continue;
      }
      entry e;
      e.name = run.benchmark_name();
      e.iterations = static_cast<std::int64_t>(run.iterations);
      e.real_ns = run.GetAdjustedRealTime();
      e.cpu_ns = run.GetAdjustedCPUTime();
      const auto it = run.counters.find("bytes_per_second");
      if (it != run.counters.end()) {
        e.bytes_per_second = static_cast<double>(it->second);
      }
      entries.push_back(std::move(e));
    }
  }

  std::vector<entry> entries;
};

}  // namespace

// BENCHMARK_MAIN(), plus the repo-wide flag conventions: google-benchmark
// rejects flags it does not know, so --quick and --json=PATH are stripped
// before Initialize; --quick maps onto a minimal measuring time, --json
// writes the per-kernel artifact through bench/common.h.
int main(int argc, char** argv) {
  const isdc::bench::flags repo_flags(argc, argv);
  isdc::bench::maybe_start_trace(repo_flags);
  std::vector<char*> args;
  bool quick = false;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      // handled via repo_flags
    } else {
      args.push_back(argv[i]);
    }
  }
  std::string min_time = "--benchmark_min_time=0.01";
  if (quick) {
    // Right after argv[0], so an explicit --benchmark_min_time later in
    // the command line still wins (last one parsed takes effect).
    args.insert(args.begin() + 1, min_time.data());
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (!quick) {
    register_heavy_reference_benchmarks();
  }
  collecting_reporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  // The disabled-telemetry scoreboard: spans and counter bumps live on
  // production hot paths on the promise that they cost ~1 ns each when
  // nothing is collecting. The bound is generous (shared CI boxes jitter)
  // — a genuine regression to a lock or a syscall lands far beyond it.
  constexpr double kMaxDisabledNs = 250.0;
  int overhead_violations = 0;
  isdc::bench::json_object root;
  root.set("bench", "micro_kernels").set("quick", quick);
  isdc::bench::json_array kernels;
  for (const collecting_reporter::entry& e : reporter.entries) {
    isdc::bench::json_object k;
    k.set("name", e.name)
        .set("iterations", e.iterations)
        .set("real_ns_per_iter", e.real_ns)
        .set("cpu_ns_per_iter", e.cpu_ns);
    if (e.bytes_per_second > 0.0) {
      k.set("bytes_per_second", e.bytes_per_second);
    }
    if (e.name == "BM_span_disabled" || e.name == "BM_counter_inc") {
      const bool ok_overhead = e.cpu_ns <= kMaxDisabledNs;
      k.set("max_ns_per_iter", kMaxDisabledNs)
          .set("within_bound", ok_overhead);
      if (!ok_overhead) {
        std::cerr << e.name << ": " << e.cpu_ns
                  << " ns/op exceeds the disabled-telemetry bound of "
                  << kMaxDisabledNs << " ns\n";
        ++overhead_violations;
      }
    }
    kernels.push_raw(k.str());
  }
  root.set_raw("kernels", kernels.str());
  root.set("telemetry_overhead_violations", overhead_violations);
  const bool trace_ok = isdc::bench::maybe_write_trace(repo_flags);
  const bool ok = isdc::bench::write_json_artifact(repo_flags, root, std::cerr);
  benchmark::Shutdown();
  return ok && trace_ok && overhead_violations == 0 ? 0 : 1;
}
