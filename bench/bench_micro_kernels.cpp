// google-benchmark microbenchmarks for the library's hot kernels: the SDC
// LP solve, AIG construction/optimization, cut enumeration, technology
// mapping, the delay-matrix algorithms (Alg. 1 / Alg. 2 / Floyd-Warshall)
// and one full subgraph-synthesis feedback evaluation. These back the
// scheduling-runtime columns of Table I with per-kernel numbers.
//
// Flags: everything google-benchmark accepts, plus --quick (shrinks the
// per-benchmark measuring time to a CI-smoke size).
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "aig/balance.h"
#include "aig/cuts.h"
#include "core/delay_update.h"
#include "core/floyd_warshall.h"
#include "core/reformulate.h"
#include "ir/builder.h"
#include "lower/lowering.h"
#include "sched/sdc_scheduler.h"
#include "support/rng.h"
#include "support/thread_pool.h"
#include "synth/synthesis.h"
#include "synth/techmap.h"
#include "workloads/registry.h"

namespace {

using namespace isdc;

ir::graph chain_graph(int length) {
  ir::graph g("chain");
  ir::builder b(g);
  ir::node_id v = b.input(32, "x");
  const ir::node_id y = b.input(32, "y");
  for (int i = 0; i < length; ++i) {
    v = i % 2 == 0 ? b.add(v, y) : b.bxor(v, y);
  }
  g.mark_output(v);
  return g;
}

sched::delay_matrix uniform_matrix(const ir::graph& g, double unit) {
  return sched::delay_matrix::initial(g, [&g, unit](ir::node_id v) {
    const ir::opcode op = g.at(v).op;
    return op == ir::opcode::input || op == ir::opcode::constant ? 0.0
                                                                 : unit;
  });
}

void BM_sdc_schedule(benchmark::State& state) {
  const ir::graph g = chain_graph(static_cast<int>(state.range(0)));
  const sched::delay_matrix d = uniform_matrix(g, 600.0);
  sched::scheduler_options opts;
  opts.clock_period_ps = 2500.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::sdc_schedule(g, d, opts));
  }
}
BENCHMARK(BM_sdc_schedule)->Arg(16)->Arg(64)->Arg(256);

void BM_delay_matrix_initial(benchmark::State& state) {
  const ir::graph g = chain_graph(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(uniform_matrix(g, 500.0));
  }
}
BENCHMARK(BM_delay_matrix_initial)->Arg(64)->Arg(256);

void BM_lower_graph(benchmark::State& state) {
  const ir::graph g = workloads::build_crc32(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lower::lower_graph(g));
  }
}
BENCHMARK(BM_lower_graph);

void BM_aig_strash(benchmark::State& state) {
  const ir::graph g = workloads::build_crc32(16);
  const auto lowered = lower::lower_graph(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lowered.net.cleanup());
  }
}
BENCHMARK(BM_aig_strash);

void BM_aig_balance(benchmark::State& state) {
  const ir::graph g = workloads::build_crc32(16);
  const aig::aig net = lower::lower_graph(g).net.cleanup();
  for (auto _ : state) {
    benchmark::DoNotOptimize(aig::balance(net));
  }
}
BENCHMARK(BM_aig_balance);

void BM_cut_enumeration(benchmark::State& state) {
  const ir::graph g = workloads::build_crc32(16);
  const aig::aig net = lower::lower_graph(g).net.cleanup();
  for (auto _ : state) {
    benchmark::DoNotOptimize(aig::enumerate_cuts(net));
  }
}
BENCHMARK(BM_cut_enumeration);

void BM_technology_map(benchmark::State& state) {
  const ir::graph g = workloads::build_crc32(16);
  const aig::aig net =
      synth::optimize(lower::lower_graph(g).net.cleanup());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        synth::technology_map(net, synth::default_library()));
  }
}
BENCHMARK(BM_technology_map);

void BM_subgraph_feedback_evaluation(benchmark::State& state) {
  // One full downstream evaluation: the unit of work ISDC parallelizes.
  ir::graph g("cloud");
  ir::builder b(g);
  const ir::node_id a = b.input(32, "a");
  const ir::node_id c = b.input(32, "b");
  b.output(b.add(b.add(a, c), b.bxor(a, c)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(synth::synthesize_graph(g));
  }
}
BENCHMARK(BM_subgraph_feedback_evaluation);

void BM_alg1_delay_update(benchmark::State& state) {
  const ir::graph g = chain_graph(static_cast<int>(state.range(0)));
  sched::delay_matrix d = uniform_matrix(g, 500.0);
  core::evaluated_subgraph eval;
  for (ir::node_id v = 0; v < g.num_nodes(); v += 2) {
    eval.members.push_back(v);
  }
  eval.delay_ps = 450.0;
  for (auto _ : state) {
    sched::delay_matrix copy = d;
    benchmark::DoNotOptimize(
        core::update_delay_matrix(copy, {&eval, 1}));
  }
}
BENCHMARK(BM_alg1_delay_update)->Arg(64)->Arg(256);

void BM_alg2_reformulate(benchmark::State& state) {
  const ir::graph g = chain_graph(static_cast<int>(state.range(0)));
  const sched::delay_matrix d = uniform_matrix(g, 500.0);
  for (auto _ : state) {
    sched::delay_matrix copy = d;
    core::reformulate_alg2(g, copy);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_alg2_reformulate)->Arg(64)->Arg(256);

void BM_floyd_warshall(benchmark::State& state) {
  const ir::graph g = chain_graph(static_cast<int>(state.range(0)));
  const sched::delay_matrix d = uniform_matrix(g, 500.0);
  for (auto _ : state) {
    sched::delay_matrix copy = d;
    core::reformulate_floyd_warshall(g, copy);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_floyd_warshall)->Arg(64)->Arg(256);

void BM_parallel_for(benchmark::State& state) {
  // The engine's evaluate fan-out (16 subgraphs per iteration) and the
  // bench sweeps dispatch through parallel_for; chunked dispatch over an
  // atomic counter replaced one packaged_task + future allocation per
  // index, which dominated at these small trip counts.
  thread_pool pool(4);
  const std::size_t count = static_cast<std::size_t>(state.range(0));
  std::atomic<std::uint64_t> sink{0};
  for (auto _ : state) {
    pool.parallel_for(count, [&sink](std::size_t i) {
      sink.fetch_add(i, std::memory_order_relaxed);
    });
  }
  benchmark::DoNotOptimize(sink.load());
}
BENCHMARK(BM_parallel_for)->Arg(16)->Arg(256)->Arg(4096);

}  // namespace

// BENCHMARK_MAIN(), plus the repo-wide --quick convention: google-benchmark
// rejects flags it does not know, so --quick is stripped before Initialize
// and mapped onto a minimal measuring time.
int main(int argc, char** argv) {
  std::vector<char*> args;
  bool quick = false;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  std::string min_time = "--benchmark_min_time=0.01s";
  if (quick) {
    // Right after argv[0], so an explicit --benchmark_min_time later in
    // the command line still wins (last one parsed takes effect).
    args.insert(args.begin() + 1, min_time.data());
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
