// Reproduces Fig. 1: post-synthesis STA delay vs the HLS-estimated
// critical-path delay over a sweep of design points (randomized schedules
// of one design, mirroring the paper's 6912 configurations of one HLS
// design). The estimate sums pre-characterized per-op delays along the
// worst intra-stage path; the reference is the synthesized stage timing.
// The paper's shape: large systematic overestimation, growing with the
// estimate.
//
// Flags: --design=NAME (default hsv2rgb), --points=N (default 96; the
//        paper used 6912), --seed=S, --csv, --quick (CI smoke size)
#include <algorithm>
#include <iostream>

#include "common.h"
#include "sched/metrics.h"
#include "support/stats.h"
#include "support/table.h"
#include "synth/characterizer.h"
#include "workloads/registry.h"

int main(int argc, char** argv) {
  const isdc::bench::flags flags(argc, argv);
  isdc::bench::maybe_start_trace(flags);
  const std::string design = flags.get("design", "hsv2rgb");
  const int points = flags.quick_int("points", 96, 8);

  const auto* spec = isdc::workloads::find_workload(design);
  if (spec == nullptr) {
    std::cerr << "unknown design " << design << "\n";
    return 1;
  }
  const isdc::ir::graph g = spec->build();
  isdc::synth::delay_model model;
  const isdc::sched::delay_matrix naive =
      isdc::sched::delay_matrix::initial(g, [&](isdc::ir::node_id v) {
        return model.node_delay_ps(g, v);
      });

  isdc::rng r(static_cast<std::uint64_t>(flags.get_int("seed", 1)));
  std::vector<double> estimated;
  std::vector<double> sta;
  for (int i = 0; i < points; ++i) {
    // Schedules across the aggressiveness spectrum.
    const double push = 0.05 + 0.6 * r.next_double();
    const isdc::sched::schedule s = isdc::bench::random_schedule(g, r, push);
    estimated.push_back(
        isdc::sched::estimated_critical_delay(g, s, naive));
    sta.push_back(isdc::sched::synthesized_critical_delay(g, s));
  }

  std::cout << "=== Fig. 1: post-synthesis STA vs HLS-estimated critical "
               "path ("
            << design << ", " << points << " design points) ===\n\n";

  int overestimates = 0;
  std::vector<double> ratio;
  for (int i = 0; i < points; ++i) {
    if (sta[static_cast<std::size_t>(i)] > 0) {
      ratio.push_back(estimated[static_cast<std::size_t>(i)] /
                      sta[static_cast<std::size_t>(i)]);
      overestimates +=
          estimated[static_cast<std::size_t>(i)] >
                  sta[static_cast<std::size_t>(i)]
              ? 1
              : 0;
    }
  }
  const auto fit = isdc::linear_fit(sta, estimated);
  std::cout << "pearson(est, sta)      = "
            << isdc::format_double(isdc::pearson(estimated, sta), 3) << "\n"
            << "mean est/sta ratio     = "
            << isdc::format_double(isdc::mean(ratio), 3) << "x\n"
            << "points overestimated   = " << overestimates << "/"
            << ratio.size() << "\n"
            << "mean relative error    = "
            << isdc::format_double(
                   100.0 * isdc::mean_relative_error(estimated, sta), 1)
            << "%\n"
            << "fit: est = " << isdc::format_double(fit.slope, 3)
            << " * sta + " << isdc::format_double(fit.intercept, 1) << "\n\n";

  // Bucketized scatter (text rendering of the figure).
  isdc::text_table table;
  table.set_header({"est bucket (ps)", "points", "mean STA (ps)",
                    "mean est/sta"});
  const double max_est = *std::max_element(estimated.begin(), estimated.end());
  const int buckets = 8;
  for (int bkt = 0; bkt < buckets; ++bkt) {
    const double lo = max_est * bkt / buckets;
    const double hi = max_est * (bkt + 1) / buckets;
    std::vector<double> bucket_sta;
    std::vector<double> bucket_ratio;
    for (int i = 0; i < points; ++i) {
      const double e = estimated[static_cast<std::size_t>(i)];
      if (e >= lo && e < hi + 1e-9 && sta[static_cast<std::size_t>(i)] > 0) {
        bucket_sta.push_back(sta[static_cast<std::size_t>(i)]);
        bucket_ratio.push_back(e / sta[static_cast<std::size_t>(i)]);
      }
    }
    if (bucket_sta.empty()) {
      continue;
    }
    table.add_row({isdc::format_double(lo, 0) + "-" +
                       isdc::format_double(hi, 0),
                   std::to_string(bucket_sta.size()),
                   isdc::format_double(isdc::mean(bucket_sta), 0),
                   isdc::format_double(isdc::mean(bucket_ratio), 2)});
  }
  if (flags.has("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  if (!isdc::bench::maybe_write_trace(flags)) {
    return 1;
  }
  return 0;
}
