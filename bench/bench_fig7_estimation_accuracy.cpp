// Reproduces Fig. 7: delay-estimation accuracy across iterations. For
// every benchmark and every ISDC iteration we compare, against the
// post-synthesis STA of the current schedule,
//   (a) ISDC's estimate from the feedback-updated delay matrix, and
//   (b) the original SDC estimate from the naive per-op matrix.
// The paper's shape: both start equal; ISDC's error shrinks (to ~3.4%)
// while the naive estimate's error *grows* as the schedules get refined
// (more cross-op optimization is overlooked).
//
// Flags: --benchmarks=a,b --max-iterations=N (default 10) --subgraphs=M
//        (default 16) --csv --quick (first 2 workloads, 3 iterations)
#include <cmath>
#include <iostream>

#include "common.h"
#include "core/isdc_scheduler.h"
#include "support/stats.h"
#include "support/table.h"
#include "workloads/registry.h"

int main(int argc, char** argv) {
  const isdc::bench::flags flags(argc, argv);
  isdc::bench::maybe_start_trace(flags);
  const auto subset = flags.get_list("benchmarks");
  const int max_iterations = flags.quick_int("max-iterations", 10, 3);

  isdc::synth::delay_model model;

  // error_isdc[k] collects |est - sta| / sta over all benchmarks at
  // iteration k (benchmarks that converged earlier contribute their final
  // state, as a plot would).
  std::vector<std::vector<double>> error_isdc(
      static_cast<std::size_t>(max_iterations) + 1);
  std::vector<std::vector<double>> error_naive(
      static_cast<std::size_t>(max_iterations) + 1);

  int taken = 0;
  for (const auto& spec : isdc::workloads::all_workloads()) {
    if (!subset.empty() &&
        std::find(subset.begin(), subset.end(), spec.name) == subset.end()) {
      continue;
    }
    if (flags.quick() && subset.empty() && ++taken > 2) {
      break;  // --quick: smoke-run the first two workloads only
    }
    const isdc::ir::graph g = spec.build();
    isdc::core::isdc_options opts;
    opts.base.clock_period_ps = spec.clock_period_ps;
    opts.max_iterations = max_iterations;
    opts.subgraphs_per_iteration = flags.quick_int("subgraphs", 16, 4);
    opts.convergence_patience = max_iterations + 1;  // full trajectory
    opts.num_threads = 4;
    opts.compute_threads = isdc::bench::threads_flag(flags);
    opts.record_synthesized_delay = true;
    isdc::core::synthesis_downstream tool(opts.synth);
    const isdc::core::isdc_result result =
        isdc::core::run_isdc(g, tool, opts, &model);

    double last_isdc = 0.0;
    double last_naive = 0.0;
    for (int k = 0; k <= max_iterations; ++k) {
      const std::size_t idx =
          std::min(static_cast<std::size_t>(k), result.history.size() - 1);
      const auto& rec = result.history[idx];
      if (rec.synthesized_delay_ps > 0) {
        last_isdc = std::abs(rec.estimated_delay_ps -
                             rec.synthesized_delay_ps) /
                    rec.synthesized_delay_ps;
        last_naive = std::abs(rec.naive_estimated_delay_ps -
                              rec.synthesized_delay_ps) /
                     rec.synthesized_delay_ps;
      }
      error_isdc[static_cast<std::size_t>(k)].push_back(last_isdc);
      error_naive[static_cast<std::size_t>(k)].push_back(last_naive);
    }
    std::cerr << "done: " << spec.name << "\n";
  }

  std::cout << "=== Fig. 7: delay estimation error vs iteration ===\n"
            << "(paper reference: ISDC converges to ~3.4%; the original "
               "SDC estimate degrades)\n\n";
  isdc::text_table table;
  table.set_header({"iter", "ISDC est err %", "original SDC est err %"});
  for (int k = 0; k <= max_iterations; ++k) {
    table.add_row(
        {std::to_string(k),
         isdc::format_double(
             100.0 * isdc::mean(error_isdc[static_cast<std::size_t>(k)]), 2),
         isdc::format_double(
             100.0 * isdc::mean(error_naive[static_cast<std::size_t>(k)]),
             2)});
  }
  if (flags.has("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  if (!isdc::bench::maybe_write_trace(flags)) {
    return 1;
  }
  return 0;
}
