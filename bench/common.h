// Shared helpers for the paper-reproduction bench binaries: a tiny
// --key=value flag parser, minimal JSON emission for machine-readable
// perf artifacts (--json=<path>), and the random-schedule generator used
// by the Fig. 1 / Fig. 8 design-space sweeps.
#ifndef ISDC_BENCH_COMMON_H_
#define ISDC_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "backend/subprocess_tool.h"
#include "sched/schedule.h"
#include "support/rng.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace isdc::bench {

/// Parses --key=value arguments (anything else is ignored).
class flags {
public:
  flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        continue;
      }
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "1";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    }
  }

  /// True when --quick was passed: benches shrink their iteration counts
  /// and workload sets to a CI-smoke size.
  bool quick() const { return has("quick"); }

  /// The value of --key, defaulting to `normal` — or to `reduced` under
  /// --quick. An explicit --key=value always wins.
  int quick_int(const std::string& key, int normal, int reduced) const {
    return get_int(key, quick() ? reduced : normal);
  }

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  int get_int(const std::string& key, int fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atoi(it->second.c_str());
  }
  bool has(const std::string& key) const { return values_.contains(key); }

  std::vector<std::string> get_list(const std::string& key) const {
    std::vector<std::string> out;
    const auto it = values_.find(key);
    if (it == values_.end()) {
      return out;
    }
    std::stringstream ss(it->second);
    std::string item;
    while (std::getline(ss, item, ',')) {
      if (!item.empty()) {
        out.push_back(item);
      }
    }
    return out;
  }

private:
  std::map<std::string, std::string> values_;
};

/// JSON string escaping (quotes, backslashes, control characters).
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Insertion-ordered JSON object builder — just enough for the bench
/// artifacts (BENCH_*.json); no parsing, no nesting library, values are
/// either scalars or pre-rendered JSON via set_raw.
class json_object {
public:
  json_object& set(const std::string& key, const std::string& v) {
    return set_raw(key, "\"" + json_escape(v) + "\"");
  }
  json_object& set(const std::string& key, const char* v) {
    return set(key, std::string(v));
  }
  json_object& set(const std::string& key, double v) {
    std::ostringstream os;
    os.precision(12);
    os << v;
    return set_raw(key, os.str());
  }
  json_object& set(const std::string& key, std::int64_t v) {
    return set_raw(key, std::to_string(v));
  }
  json_object& set(const std::string& key, std::uint64_t v) {
    return set_raw(key, std::to_string(v));
  }
  json_object& set(const std::string& key, int v) {
    return set(key, static_cast<std::int64_t>(v));
  }
  json_object& set(const std::string& key, bool v) {
    return set_raw(key, v ? "true" : "false");
  }
  /// `raw` must already be valid JSON (a nested object/array/number).
  json_object& set_raw(const std::string& key, std::string raw) {
    fields_.emplace_back(key, std::move(raw));
    return *this;
  }

  std::string str() const {
    std::string out = "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) {
        out += ",";
      }
      out += "\"" + json_escape(fields_[i].first) + "\":" +
             fields_[i].second;
    }
    out += "}";
    return out;
  }

private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// JSON array of pre-rendered elements.
class json_array {
public:
  void push_raw(std::string raw) { elements_.push_back(std::move(raw)); }

  std::string str() const {
    std::string out = "[";
    for (std::size_t i = 0; i < elements_.size(); ++i) {
      if (i > 0) {
        out += ",";
      }
      out += elements_[i];
    }
    out += "]";
    return out;
  }

private:
  std::vector<std::string> elements_;
};

/// The worker-pool health counters as one JSON object — shared by every
/// bench artifact that reports a subprocess backend, so the schema cannot
/// drift between them.
inline json_object subprocess_counters_json(
    const backend::subprocess_tool::counters& c) {
  json_object out;
  out.set("calls", c.calls)
      .set("restarts", c.restarts)
      .set("timeouts", c.timeouts)
      .set("crashes", c.crashes)
      .set("retries", c.retries)
      .set("protocol_errors", c.protocol_errors);
  return out;
}

/// Peak resident set size of this process in KiB (ru_maxrss is KiB on
/// Linux, bytes on macOS — normalized here); -1 where unsupported.
inline std::int64_t peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
#if defined(__APPLE__)
    return static_cast<std::int64_t>(usage.ru_maxrss) / 1024;
#else
    return static_cast<std::int64_t>(usage.ru_maxrss);
#endif
  }
#endif
  return -1;
}

/// The --threads=N flag, shared by every bench: the in-design compute
/// width fed to isdc_options::compute_threads. Absent = 1 (serial, the
/// historical behavior); 0 = the process default pool
/// (hardware_concurrency / ISDC_THREADS); N > 1 = N threads.
inline int threads_flag(const flags& f) { return f.get_int("threads", 1); }

/// Execution-context block stamped into every JSON artifact: peak RSS,
/// the --threads setting and the host's hardware concurrency, so perf
/// numbers in CI artifacts are interpretable after the fact.
inline json_object runtime_json(const flags& f) {
  json_object rt;
  rt.set("peak_rss_kb", peak_rss_kb());
  rt.set("threads", threads_flag(f));
  rt.set("hardware_concurrency",
         static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  return rt;
}

/// Arms span collection when --trace=<path> was passed. Call once, before
/// the instrumented work; pair with maybe_write_trace at the end.
inline void maybe_start_trace(const flags& f) {
  if (!f.get("trace", "").empty()) {
    telemetry::start_tracing();
  }
}

/// Writes the collected spans as chrome-trace JSON to the --trace=<path>
/// file; no-op without the flag. Returns false (after complaining on
/// stderr) when the file cannot be written.
inline bool maybe_write_trace(const flags& f) {
  const std::string path = f.get("trace", "");
  if (path.empty()) {
    return true;
  }
  telemetry::stop_tracing();
  return telemetry::write_chrome_trace(path);
}

/// Writes `root` to the path given by --json=<path>; no-op without the
/// flag. Returns false (and complains on stderr) when the file cannot be
/// written, so benches can fail CI instead of silently dropping the
/// artifact. A "runtime" block (peak RSS, thread count, hardware
/// concurrency) and a "metrics" block (the global telemetry registry
/// snapshot, failpoint/process mirrors refreshed) are appended to every
/// artifact.
inline bool write_json_artifact(const flags& f, const json_object& root,
                                std::ostream& err) {
  const std::string path = f.get("json", "");
  if (path.empty()) {
    return true;
  }
  json_object enriched = root;
  enriched.set_raw("runtime", runtime_json(f).str());
  telemetry::collect_process_metrics();
  enriched.set_raw("metrics", telemetry::metrics_json());
  std::ofstream out(path);
  out << enriched.str() << "\n";
  out.flush();  // surface buffered-write failures before the check
  if (!out) {
    err << "failed to write JSON artifact: " << path << "\n";
    return false;
  }
  return true;
}

/// A random legal-by-construction schedule: inputs/constants at stage 0,
/// every node at or after its operands, with `push_probability` chance of
/// starting a new stage at each node. Models the paper's "design points"
/// (schedules of different aggressiveness) for the Fig. 1/Fig. 8 sweeps.
inline sched::schedule random_schedule(const ir::graph& g, rng& r,
                                       double push_probability) {
  sched::schedule s;
  s.cycle.resize(g.num_nodes(), 0);
  for (ir::node_id v = 0; v < g.num_nodes(); ++v) {
    const ir::node& n = g.at(v);
    if (n.op == ir::opcode::input || n.op == ir::opcode::constant) {
      s.cycle[v] = 0;
      continue;
    }
    int stage = 0;
    for (ir::node_id p : n.operands) {
      stage = std::max(stage, s.cycle[p]);
    }
    if (r.next_bool(push_probability)) {
      ++stage;
    }
    s.cycle[v] = stage;
  }
  return s;
}

}  // namespace isdc::bench

#endif  // ISDC_BENCH_COMMON_H_
