// Shared helpers for the paper-reproduction bench binaries: a tiny
// --key=value flag parser and the random-schedule generator used by the
// Fig. 1 / Fig. 8 design-space sweeps.
#ifndef ISDC_BENCH_COMMON_H_
#define ISDC_BENCH_COMMON_H_

#include <cstdint>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "sched/schedule.h"
#include "support/rng.h"

namespace isdc::bench {

/// Parses --key=value arguments (anything else is ignored).
class flags {
public:
  flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        continue;
      }
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "1";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    }
  }

  /// True when --quick was passed: benches shrink their iteration counts
  /// and workload sets to a CI-smoke size.
  bool quick() const { return has("quick"); }

  /// The value of --key, defaulting to `normal` — or to `reduced` under
  /// --quick. An explicit --key=value always wins.
  int quick_int(const std::string& key, int normal, int reduced) const {
    return get_int(key, quick() ? reduced : normal);
  }

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  int get_int(const std::string& key, int fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atoi(it->second.c_str());
  }
  bool has(const std::string& key) const { return values_.contains(key); }

  std::vector<std::string> get_list(const std::string& key) const {
    std::vector<std::string> out;
    const auto it = values_.find(key);
    if (it == values_.end()) {
      return out;
    }
    std::stringstream ss(it->second);
    std::string item;
    while (std::getline(ss, item, ',')) {
      if (!item.empty()) {
        out.push_back(item);
      }
    }
    return out;
  }

private:
  std::map<std::string, std::string> values_;
};

/// A random legal-by-construction schedule: inputs/constants at stage 0,
/// every node at or after its operands, with `push_probability` chance of
/// starting a new stage at each node. Models the paper's "design points"
/// (schedules of different aggressiveness) for the Fig. 1/Fig. 8 sweeps.
inline sched::schedule random_schedule(const ir::graph& g, rng& r,
                                       double push_probability) {
  sched::schedule s;
  s.cycle.resize(g.num_nodes(), 0);
  for (ir::node_id v = 0; v < g.num_nodes(); ++v) {
    const ir::node& n = g.at(v);
    if (n.op == ir::opcode::input || n.op == ir::opcode::constant) {
      s.cycle[v] = 0;
      continue;
    }
    int stage = 0;
    for (ir::node_id p : n.operands) {
      stage = std::max(stage, s.cycle[p]);
    }
    if (r.next_bool(push_probability)) {
      ++stage;
    }
    s.cycle[v] = stage;
  }
  return s;
}

}  // namespace isdc::bench

#endif  // ISDC_BENCH_COMMON_H_
