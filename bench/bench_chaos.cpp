// Chaos soak as a measurable artifact: the full workload registry through
// a real subprocess worker pool, once fault-free (round 0, the reference)
// and then repeatedly under seeded recoverable-fault schedules — worker
// crashes, client read timeouts, torn request writes. Every chaos round
// must reproduce round 0's schedules bit-exactly (recoverable faults are
// retried on fresh workers; answers are deterministic), end with zero
// leaked cache tickets and a fully healed pool, and keep the pool's
// failure accounting consistent (restarts == crashes + timeouts, no
// protocol errors). Any violation makes the bench exit non-zero, so CI
// treats resilience regressions like test failures.
//
// Also measures the disarmed failpoint check — a single relaxed atomic
// load on the hot path of every pipe I/O — and guards it against
// accidentally growing into real work.
//
// Flags: --rounds=N       total rounds incl. the clean reference
//                         (default 3, --quick 2)
//        --seed=S         base failpoint seed; round r uses S+r (default 42)
//        --shards=N       concurrent ISDC runs (default 4, --quick 2)
//        --workers=N      subprocess pool width (default 2)
//        --max-iterations=N / --subgraphs=M   per-run pipeline size
//        --benchmarks=a,b,c   subset (default: the full registry;
//                             --quick: 4 workloads)
//        --json=PATH      machine-readable artifact (BENCH_chaos.json)
//        --csv            CSV instead of the aligned table
//        --quick          CI smoke size
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "backend/subprocess_tool.h"
#include "common.h"
#include "engine/fleet.h"
#include "support/failpoint.h"
#include "support/table.h"
#include "workloads/registry.h"

namespace {

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point start) {
  return std::chrono::duration<double>(clock_type::now() - start).count();
}

/// ns per maybe_fail() call with no schedule armed. This is the price
/// every production pipe read/write pays for carrying its failpoint, so
/// it must stay an atomic load (~a few ns), not a map lookup.
double disarmed_ns_per_call(int calls) {
  isdc::failpoint::disarm();
  int sink = 0;
  const auto start = clock_type::now();
  for (int i = 0; i < calls; ++i) {
    sink += static_cast<int>(
        isdc::failpoint::maybe_fail("bench.chaos.disarmed"));
  }
  const double seconds = seconds_since(start);
  static volatile int g_sink;
  g_sink = sink;
  return seconds * 1e9 / calls;
}

struct round_outcome {
  std::string client_spec;  ///< "" for the clean reference round
  std::string worker_spec;
  double seconds = 0.0;
  bool parity = true;  ///< schedules bit-identical to round 0
  int job_errors = 0;
  std::size_t tickets_leaked = 0;
  bool pool_healed = true;
  std::uint64_t client_fires = 0;
  isdc::backend::subprocess_tool::counters pool;
  std::vector<isdc::failpoint::site_stats> client_sites;
};

}  // namespace

int main(int argc, char** argv) {
  const isdc::bench::flags flags(argc, argv);
  isdc::bench::maybe_start_trace(flags);
  auto subset = flags.get_list("benchmarks");
  if (subset.empty()) {
    for (const isdc::workloads::workload_spec& spec :
         isdc::workloads::all_workloads()) {
      subset.push_back(spec.name);
    }
    if (flags.quick()) {
      subset = {"rrot", "ml_datapath0_opcode0", "ml_datapath0_all", "crc32"};
    }
  }
  const int rounds = flags.quick_int("rounds", 3, 2);
  const int base_seed = flags.get_int("seed", 42);
  const int shards = flags.quick_int("shards", 4, 2);
  const int workers = flags.get_int("workers", 2);

  isdc::core::isdc_options opts;
  opts.max_iterations = flags.quick_int("max-iterations", 3, 2);
  opts.subgraphs_per_iteration = flags.quick_int("subgraphs", 4, 4);
  opts.num_threads = 2;
  opts.compute_threads = isdc::bench::threads_flag(flags);

  std::vector<const isdc::workloads::workload_spec*> specs;
  for (const std::string& name : subset) {
    const isdc::workloads::workload_spec* spec =
        isdc::workloads::find_workload(name);
    if (spec == nullptr) {
      std::cerr << "unknown workload: " << name << "\n";
      return 1;
    }
    specs.push_back(spec);
  }
  std::vector<isdc::ir::graph> graphs;
  graphs.reserve(specs.size());
  std::vector<isdc::engine::fleet_job> jobs;
  for (const auto* spec : specs) {
    graphs.push_back(spec->build());
    jobs.push_back({.name = spec->name,
                    .graph = &graphs.back(),
                    .clock_period_ps = spec->clock_period_ps});
  }

  // The disarmed-check guard first, while no schedule has ever been armed
  // in this process.
  const double disarmed_ns =
      disarmed_ns_per_call(flags.quick() ? 200000 : 1000000);

  // The recoverable-fault schedule: worker-side crashes are seeded inside
  // each worker process; client-side read timeouts return instantly and
  // torn writes desync the worker, both recovered by kill+respawn+retry.
  // Garbage/protocol faults are deliberately absent: those are
  // deterministic failures and are not retried.
  const std::string worker_tool = " --tool=aig-depth:rounds=0";

  std::vector<round_outcome> outcomes;
  std::vector<isdc::core::isdc_result> reference;
  int violations = 0;
  for (int round = 0; round < rounds; ++round) {
    round_outcome out;
    const int seed = base_seed + round;
    out.worker_spec =
        round == 0 ? ""
                   : "seed=" + std::to_string(seed) +
                         ";worker.eval=fail@p=0.08";
    out.client_spec =
        round == 0 ? ""
                   : "seed=" + std::to_string(seed) +
                         ";backend.subprocess.read=timeout@p=0.05;"
                         "backend.subprocess.write=partial@p=0.03";

    isdc::backend::subprocess_options popts;
    popts.command = std::string(ISDC_DELAY_WORKER_PATH) + worker_tool;
    if (!out.worker_spec.empty()) {
      popts.command += " --failpoints=" + out.worker_spec;
    }
    popts.workers = workers;
    popts.max_attempts = 6;
    popts.backoff_ms = 1.0;
    popts.backoff_max_ms = 8.0;
    isdc::backend::subprocess_tool pool(popts);

    isdc::engine::fleet_options fopts;
    fopts.shards = shards;
    fopts.isdc = opts;
    isdc::engine::fleet fleet(fopts);

    if (!out.client_spec.empty()) {
      isdc::failpoint::arm(out.client_spec);
    }
    const auto start = clock_type::now();
    const isdc::engine::fleet_report report = fleet.run(jobs, pool);
    out.seconds = seconds_since(start);
    out.client_sites = isdc::failpoint::stats();
    out.client_fires = isdc::failpoint::total_fires();
    isdc::failpoint::disarm();

    out.tickets_leaked = fleet.cache().num_in_flight();
    out.pool = pool.stats();
    try {
      out.pool_healed = pool.heal() == workers;
    } catch (const std::exception& e) {
      std::cerr << "round " << round << ": heal failed: " << e.what()
                << "\n";
      out.pool_healed = false;
    }

    for (std::size_t i = 0; i < report.results.size(); ++i) {
      const isdc::engine::fleet_result& r = report.results[i];
      if (r.error != nullptr) {
        ++out.job_errors;
        try {
          std::rethrow_exception(r.error);
        } catch (const std::exception& e) {
          std::cerr << "round " << round << ": " << r.name << ": "
                    << e.what() << "\n";
        }
        continue;
      }
      if (round == 0) {
        reference.push_back(r.result);
      } else if (i < reference.size() &&
                 (r.result.final_schedule != reference[i].final_schedule ||
                  r.result.iterations != reference[i].iterations)) {
        out.parity = false;
        std::cerr << "round " << round << ": " << r.name
                  << ": schedule diverged from the fault-free reference\n";
      }
    }
    if (round == 0 && out.job_errors != 0) {
      std::cerr << "reference round failed; aborting\n";
      return 1;
    }

    const bool counters_ok =
        out.pool.restarts == out.pool.crashes + out.pool.timeouts &&
        out.pool.protocol_errors == 0;
    if (!out.parity || out.job_errors != 0 || out.tickets_leaked != 0 ||
        !out.pool_healed || !counters_ok) {
      ++violations;
    }
    outcomes.push_back(std::move(out));
  }

  // A chaos bench where no fault ever fired proves nothing.
  std::uint64_t injected_total = 0;
  for (const round_outcome& out : outcomes) {
    injected_total += out.client_fires + out.pool.crashes;
  }
  if (rounds > 1 && injected_total == 0) {
    std::cerr << "no faults fired across " << rounds - 1
              << " chaos rounds; the storm is miswired\n";
    ++violations;
  }
  // Guard rail, not a perf target: generous enough to never flake on a
  // loaded CI box, tight enough to catch the disarmed check gaining a
  // lock or a map lookup.
  if (disarmed_ns > 250.0) {
    std::cerr << "disarmed failpoint check costs " << disarmed_ns
              << " ns/call (budget 250); it must stay an atomic load\n";
    ++violations;
  }

  isdc::text_table table;
  table.set_header({"Round", "Faults", "t(s)", "Client fires", "Crashes",
                    "Timeouts", "Restarts", "Retries", "Parity"});
  isdc::bench::json_array rows;
  for (std::size_t r = 0; r < outcomes.size(); ++r) {
    const round_outcome& out = outcomes[r];
    table.add_row(
        {std::to_string(r), r == 0 ? "none (reference)" : "recoverable",
         isdc::format_double(out.seconds, 2),
         std::to_string(out.client_fires), std::to_string(out.pool.crashes),
         std::to_string(out.pool.timeouts),
         std::to_string(out.pool.restarts), std::to_string(out.pool.retries),
         out.parity && out.job_errors == 0 ? "yes" : "NO"});
    isdc::bench::json_object row;
    isdc::bench::json_array sites;
    for (const isdc::failpoint::site_stats& s : out.client_sites) {
      isdc::bench::json_object site;
      site.set("site", s.site)
          .set("kind", std::string(isdc::failpoint::kind_name(s.fault)))
          .set("calls", s.calls)
          .set("fires", s.fires);
      sites.push_raw(site.str());
    }
    row.set("round", static_cast<std::int64_t>(r))
        .set("client_failpoints", out.client_spec)
        .set("worker_failpoints", out.worker_spec)
        .set("seconds", out.seconds)
        .set("schedule_parity", out.parity)
        .set("job_errors", out.job_errors)
        .set("tickets_leaked",
             static_cast<std::uint64_t>(out.tickets_leaked))
        .set("pool_healed", out.pool_healed)
        .set("client_fires", out.client_fires)
        .set_raw("client_sites", sites.str())
        .set_raw("subprocess",
                 isdc::bench::subprocess_counters_json(out.pool).str());
    rows.push_raw(row.str());
  }

  std::cout << "=== Chaos soak: recoverable faults vs the fault-free "
               "reference ===\n";
  std::cout << "(" << jobs.size() << " designs, " << shards << " shards, "
            << workers << " workers, " << rounds - 1
            << " chaos round(s), base seed " << base_seed << ")\n\n";
  if (flags.has("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\nDisarmed failpoint check:  "
            << isdc::format_double(disarmed_ns, 1) << " ns/call\n";
  std::cout << "Verdict:                   "
            << (violations == 0 ? "all rounds bit-identical, pool healed, "
                                  "no leaks"
                                : std::to_string(violations) +
                                      " violation(s) — see stderr")
            << "\n";

  isdc::bench::json_object root;
  root.set("bench", "chaos")
      .set("designs", static_cast<std::int64_t>(jobs.size()))
      .set("rounds", rounds)
      .set("base_seed", base_seed)
      .set("shards", shards)
      .set("workers", workers)
      .set("disarmed_failpoint_ns_per_call", disarmed_ns)
      .set("violations", violations)
      .set_raw("per_round", rows.str());
  if (!isdc::bench::maybe_write_trace(flags)) {
    return 1;
  }
  if (!isdc::bench::write_json_artifact(flags, root, std::cerr)) {
    return 1;
  }
  return violations == 0 ? 0 : 1;
}
