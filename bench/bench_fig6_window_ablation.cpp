// Reproduces Fig. 6: path vs cone vs window expansion (fanout-driven
// scoring, which Fig. 5 shows is the better strategy), with 4 / 8 / 16
// subgraphs per iteration. Cone/window should converge faster and escape
// the local minima path-based extraction gets trapped in, with a slight
// edge for windows.
//
// Flags: --design=NAME (default video_core), --iterations=N (default 30),
//        --csv, --quick (CI smoke size)
#include <iostream>

#include "common.h"
#include "core/isdc_scheduler.h"
#include "support/table.h"
#include "workloads/registry.h"

namespace {

std::vector<std::int64_t> register_trajectory(
    const isdc::workloads::workload_spec& spec,
    isdc::extract::expansion_mode expansion, int subgraphs, int iterations,
    int compute_threads, const isdc::synth::delay_model& model) {
  const isdc::ir::graph g = spec.build();
  isdc::core::isdc_options opts;
  opts.base.clock_period_ps = spec.clock_period_ps;
  opts.strategy = isdc::extract::extraction_strategy::fanout_driven;
  opts.expansion = expansion;
  opts.max_iterations = iterations;
  opts.subgraphs_per_iteration = subgraphs;
  opts.convergence_patience = iterations + 1;
  opts.num_threads = 4;
  opts.compute_threads = compute_threads;
  isdc::core::synthesis_downstream tool(opts.synth);
  const isdc::core::isdc_result result =
      isdc::core::run_isdc(g, tool, opts, &model);
  std::vector<std::int64_t> curve;
  std::int64_t best = result.history.front().register_bits;
  for (const auto& rec : result.history) {
    best = std::min(best, rec.register_bits);
    curve.push_back(best);
  }
  curve.resize(static_cast<std::size_t>(iterations) + 1, curve.back());
  return curve;
}

}  // namespace

int main(int argc, char** argv) {
  const isdc::bench::flags flags(argc, argv);
  isdc::bench::maybe_start_trace(flags);
  const std::string design = flags.get("design", "video_core");
  const int iterations = flags.quick_int("iterations", 30, 4);

  const auto* spec = isdc::workloads::find_workload(design);
  if (spec == nullptr) {
    std::cerr << "unknown design " << design << "\n";
    return 1;
  }
  isdc::synth::delay_model model;

  std::cout << "=== Fig. 6: path vs cone vs window expansion (" << design
            << ", fanout-driven) ===\n\n";

  const isdc::extract::expansion_mode modes[3] = {
      isdc::extract::expansion_mode::path,
      isdc::extract::expansion_mode::cone,
      isdc::extract::expansion_mode::window};
  const char* mode_names[3] = {"path", "cone", "window"};

  isdc::text_table table;
  std::vector<std::string> header = {"iter"};
  std::vector<std::vector<std::int64_t>> curves;
  for (int m : {4, 8, 16}) {
    for (int mode = 0; mode < 3; ++mode) {
      header.push_back(std::string(mode_names[mode]) + " m=" +
                       std::to_string(m));
      curves.push_back(register_trajectory(*spec, modes[mode], m, iterations,
                                           isdc::bench::threads_flag(flags),
                                           model));
      std::cerr << "done: m=" << m << " mode=" << mode_names[mode] << "\n";
    }
  }
  table.set_header(header);
  for (int it = 0; it <= iterations; ++it) {
    std::vector<std::string> row = {std::to_string(it)};
    for (const auto& curve : curves) {
      row.push_back(std::to_string(curve[static_cast<std::size_t>(it)]));
    }
    table.add_row(row);
  }
  if (flags.has("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  if (!isdc::bench::maybe_write_trace(flags)) {
    return 1;
  }
  return 0;
}
