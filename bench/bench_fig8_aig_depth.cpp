// Reproduces Fig. 8: post-synthesis STA delay vs optimized AIG depth over
// the same schedule-space sweep as Fig. 1. The paper observes a compelling
// linear correlation, motivating AIG depth as a cheap feedback signal
// (Section V-3); the fitted ps/level slope printed here is the calibration
// constant for core::aig_depth_downstream.
//
// Flags: --design=NAME (default hsv2rgb), --points=N (default 64),
//        --seed=S, --csv, --quick (CI smoke size)
#include <algorithm>
#include <iostream>

#include "common.h"
#include "ir/extract.h"
#include "lower/lowering.h"
#include "sched/metrics.h"
#include "support/stats.h"
#include "support/table.h"
#include "synth/characterizer.h"
#include "workloads/registry.h"

namespace {

/// Optimized AIG depth of the worst stage of a schedule.
int schedule_aig_depth(const isdc::ir::graph& g,
                       const isdc::sched::schedule& s) {
  int depth = 0;
  for (int stage = 0; stage < s.num_stages(); ++stage) {
    std::vector<isdc::ir::node_id> members;
    std::vector<isdc::ir::node_id> roots;
    for (isdc::ir::node_id v = 0; v < g.num_nodes(); ++v) {
      const auto op = g.at(v).op;
      if (s.cycle[v] != stage || op == isdc::ir::opcode::constant ||
          op == isdc::ir::opcode::input) {
        continue;
      }
      members.push_back(v);
      if (g.is_output(v) || isdc::sched::last_use_stage(g, s, v) > stage) {
        roots.push_back(v);
      }
    }
    if (members.empty() || roots.empty()) {
      continue;
    }
    const isdc::ir::extraction stage_cloud =
        isdc::ir::extract_subgraph(g, members, roots);
    const auto lowered = isdc::lower::lower_graph(stage_cloud.g);
    const isdc::aig::aig optimized =
        isdc::synth::optimize(lowered.net.cleanup());
    depth = std::max(depth, optimized.depth());
  }
  return depth;
}

}  // namespace

int main(int argc, char** argv) {
  const isdc::bench::flags flags(argc, argv);
  isdc::bench::maybe_start_trace(flags);
  const std::string design = flags.get("design", "hsv2rgb");
  const int points = flags.quick_int("points", 64, 8);

  const auto* spec = isdc::workloads::find_workload(design);
  if (spec == nullptr) {
    std::cerr << "unknown design " << design << "\n";
    return 1;
  }
  const isdc::ir::graph g = spec->build();

  isdc::rng r(static_cast<std::uint64_t>(flags.get_int("seed", 2)));
  std::vector<double> depth;
  std::vector<double> sta;
  for (int i = 0; i < points; ++i) {
    const double push = 0.05 + 0.6 * r.next_double();
    const isdc::sched::schedule s = isdc::bench::random_schedule(g, r, push);
    depth.push_back(static_cast<double>(schedule_aig_depth(g, s)));
    sta.push_back(isdc::sched::synthesized_critical_delay(g, s));
  }

  const auto fit = isdc::linear_fit(depth, sta);
  std::cout << "=== Fig. 8: post-synthesis STA vs optimized AIG depth ("
            << design << ", " << points << " design points) ===\n\n"
            << "pearson(depth, sta) = "
            << isdc::format_double(isdc::pearson(depth, sta), 3)
            << "   (paper: compelling linear correlation)\n"
            << "fit: sta = " << isdc::format_double(fit.slope, 1)
            << " ps/level * depth + " << isdc::format_double(fit.intercept, 1)
            << " ps\n"
            << "(use the slope to calibrate core::aig_depth_downstream)\n\n";

  isdc::text_table table;
  table.set_header({"depth bucket", "points", "mean STA (ps)"});
  const double max_depth = *std::max_element(depth.begin(), depth.end());
  const int buckets = 8;
  for (int bkt = 0; bkt < buckets; ++bkt) {
    const double lo = max_depth * bkt / buckets;
    const double hi = max_depth * (bkt + 1) / buckets;
    std::vector<double> bucket_sta;
    for (int i = 0; i < points; ++i) {
      if (depth[static_cast<std::size_t>(i)] >= lo &&
          depth[static_cast<std::size_t>(i)] < hi + 1e-9) {
        bucket_sta.push_back(sta[static_cast<std::size_t>(i)]);
      }
    }
    if (bucket_sta.empty()) {
      continue;
    }
    table.add_row({isdc::format_double(lo, 0) + "-" +
                       isdc::format_double(hi, 0),
                   std::to_string(bucket_sta.size()),
                   isdc::format_double(isdc::mean(bucket_sta), 0)});
  }
  if (flags.has("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  if (!isdc::bench::maybe_write_trace(flags)) {
    return 1;
  }
  return 0;
}
