// Thread-sweep scoreboard for PR 7's in-design parallelism: how the
// parallel delay kernels and the full zero-latency ISDC flow scale with
// the compute-pool width, and — enforced, not just reported — that every
// width produces bit-identical matrices and schedules.
//
// Two sections:
//   1. Kernels: blocked Floyd-Warshall, Alg. 2 and the initial-matrix
//      fill on a layered random DAG, timed at each thread count against
//      the serial kernel, with matrix equality checked per width.
//   2. End-to-end: the engine's full iterative flow (sync evaluation,
//      in-process AIG-depth oracle, zero injected downstream latency, so
//      the in-design compute — kernels, extraction, fingerprints — is the
//      whole cost) on the largest registry workloads, with schedule
//      parity checked against the serial run.
//
// The process exits non-zero on any parity mismatch, so CI smoke runs
// double as bit-exactness checks on whatever machine they land on.
//
// Flags: --threads=N        top of the sweep (1,2,4,... up to N; default:
//                           hardware_concurrency, at least 2)
//        --reps=K           timing repetitions, best-of (default 3)
//        --fw-nodes=N       random-DAG size for Floyd-Warshall (1024/256)
//        --alg2-nodes=N     random-DAG size for Alg. 2 (4096/512)
//        --max-iterations=N end-to-end iterations (default 10, quick 3)
//        --subgraphs=M      per iteration (default 16, quick 4)
//        --designs=D        largest-by-node-count workloads (default 3,
//                           quick 1)
//        --json=PATH        machine-readable artifact
//        --csv              CSV instead of the aligned table
//        --quick            CI smoke sizes
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common.h"
#include "core/delay_update.h"
#include "core/downstream.h"
#include "core/floyd_warshall.h"
#include "core/isdc_scheduler.h"
#include "core/reformulate.h"
#include "engine/engine.h"
#include "sched/delay_matrix.h"
#include "support/rng.h"
#include "support/table.h"
#include "support/thread_pool.h"
#include "workloads/registry.h"

namespace {

using clock_type = std::chrono::steady_clock;
using isdc::sched::delay_matrix;

double seconds_since(clock_type::time_point start) {
  return std::chrono::duration<double>(clock_type::now() - start).count();
}

/// 1, 2, 4, ... doubling up to `max_threads` (always included).
std::vector<int> sweep_points(int max_threads) {
  std::vector<int> out;
  for (int t = 1; t < max_threads; t *= 2) {
    out.push_back(t);
  }
  out.push_back(max_threads);
  return out;
}

/// Varied per-op delays (same shape as the differential tests), so the
/// kernels compose distinct float values rather than one unit delay.
delay_matrix varied_matrix(const isdc::ir::graph& g) {
  return delay_matrix::initial(g, [&g](isdc::ir::node_id v) {
    const isdc::ir::opcode op = g.at(v).op;
    if (op == isdc::ir::opcode::input || op == isdc::ir::opcode::constant) {
      return 0.0;
    }
    return 90.0 + 17.0 * static_cast<double>(v % 7);
  });
}

/// Feedback-style perturbation: lowers a few member-set cliques so the
/// reformulation has real work.
void apply_random_feedback(const isdc::ir::graph& g, delay_matrix& d,
                           isdc::rng& r) {
  std::vector<isdc::core::evaluated_subgraph> evals;
  for (int e = 0; e < 4; ++e) {
    isdc::core::evaluated_subgraph ev;
    for (isdc::ir::node_id v = 0; v < g.num_nodes(); ++v) {
      if (r.next_bool(0.25)) {
        ev.members.push_back(v);
      }
    }
    ev.delay_ps = 60.0 + 35.0 * static_cast<double>(e);
    if (!ev.members.empty()) {
      evals.push_back(ev);
    }
  }
  isdc::core::update_delay_matrix(d, evals);
}

struct timing {
  int threads = 1;
  double seconds = 0.0;
  double speedup = 1.0;  ///< serial seconds / this width's seconds
  bool identical = true;
};

/// Times `run(pool)` best-of-`reps` at each sweep point; the 1-thread
/// point passes nullptr (the serial path). `check(pool_result)` decides
/// bit-identity against the serial result.
template <typename Run, typename Check>
std::vector<timing> sweep(const std::vector<int>& thread_counts, int reps,
                          Run&& run, Check&& check) {
  std::vector<timing> out;
  double serial_seconds = 0.0;
  for (const int t : thread_counts) {
    std::optional<isdc::thread_pool> pool;
    isdc::thread_pool* p = nullptr;
    if (t > 1) {
      pool.emplace(static_cast<std::size_t>(t));
      p = &*pool;
    }
    timing row;
    row.threads = t;
    row.seconds = -1.0;
    bool identical = true;
    for (int r = 0; r < reps; ++r) {
      const auto start = clock_type::now();
      auto result = run(p);
      const double s = seconds_since(start);
      if (row.seconds < 0.0 || s < row.seconds) {
        row.seconds = s;
      }
      identical = identical && check(result);
    }
    row.identical = identical;
    if (t == 1) {
      serial_seconds = row.seconds;
    }
    row.speedup = serial_seconds / std::max(row.seconds, 1e-12);
    out.push_back(row);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const isdc::bench::flags flags(argc, argv);
  isdc::bench::maybe_start_trace(flags);
  const int hw =
      std::max(1u, std::thread::hardware_concurrency());
  const int max_threads =
      std::max(1, flags.get_int("threads", std::max(2, hw)));
  const std::vector<int> thread_counts = sweep_points(max_threads);
  const int reps = flags.quick_int("reps", 3, 1);
  const int fw_nodes = flags.quick_int("fw-nodes", 1024, 256);
  const int alg2_nodes = flags.quick_int("alg2-nodes", 4096, 512);

  isdc::text_table table;
  table.set_header({"Section", "Workload", "Threads", "t(s)", "Speedup",
                    "Bit-identical"});
  isdc::bench::json_array kernel_rows;
  int parity_mismatches = 0;

  const auto record = [&](const std::string& section,
                          const std::string& workload,
                          const std::vector<timing>& rows,
                          isdc::bench::json_array& sink) {
    isdc::bench::json_array per_thread;
    for (const timing& row : rows) {
      table.add_row({section, workload, std::to_string(row.threads),
                     isdc::format_double(row.seconds, 4),
                     isdc::format_double(row.speedup, 2) + "x",
                     row.identical ? "yes" : "NO"});
      parity_mismatches += row.identical ? 0 : 1;
      isdc::bench::json_object jt;
      jt.set("threads", row.threads)
          .set("seconds", row.seconds)
          .set("speedup", row.speedup)
          .set("bit_identical", row.identical);
      per_thread.push_raw(jt.str());
    }
    isdc::bench::json_object entry;
    entry.set("name", workload).set_raw("per_thread", per_thread.str());
    sink.push_raw(entry.str());
  };

  // --- Section 1: kernels on a layered random DAG. -----------------------
  {
    const isdc::workloads::random_dag_options dag_opts;
    const isdc::ir::graph fw_graph = isdc::workloads::build_random_dag(
        42, fw_nodes - dag_opts.num_inputs, dag_opts);
    const isdc::ir::graph alg2_graph = isdc::workloads::build_random_dag(
        43, alg2_nodes - dag_opts.num_inputs, dag_opts);

    // Identical perturbed starting matrix for every width and rep.
    const auto perturbed = [](const isdc::ir::graph& g) {
      delay_matrix d = varied_matrix(g);
      isdc::rng r(7);
      apply_random_feedback(g, d, r);
      d.track_changes(true);
      return d;
    };
    const delay_matrix fw_base = perturbed(fw_graph);
    const delay_matrix alg2_base = perturbed(alg2_graph);

    // Serial reference results, computed once.
    delay_matrix fw_serial = fw_base;
    isdc::core::reformulate_floyd_warshall(fw_graph, fw_serial);
    delay_matrix alg2_serial = alg2_base;
    isdc::core::reformulate_alg2(alg2_graph, alg2_serial);
    const delay_matrix initial_serial = varied_matrix(alg2_graph);

    record("floyd_warshall",
           "random_dag n=" + std::to_string(fw_nodes),
           sweep(
               thread_counts, reps,
               [&](isdc::thread_pool* p) {
                 delay_matrix d = fw_base;
                 isdc::core::reformulate_floyd_warshall(fw_graph, d, p);
                 return d;
               },
               [&](const delay_matrix& d) { return d == fw_serial; }),
           kernel_rows);
    record("alg2",
           "random_dag n=" + std::to_string(alg2_nodes),
           sweep(
               thread_counts, reps,
               [&](isdc::thread_pool* p) {
                 delay_matrix d = alg2_base;
                 isdc::core::reformulate_alg2(alg2_graph, d, p);
                 return d;
               },
               [&](const delay_matrix& d) { return d == alg2_serial; }),
           kernel_rows);
    record("initial_matrix",
           "random_dag n=" + std::to_string(alg2_nodes),
           sweep(
               thread_counts, reps,
               [&](isdc::thread_pool* p) {
                 return delay_matrix::initial(
                     alg2_graph,
                     [&](isdc::ir::node_id v) {
                       const isdc::ir::opcode op = alg2_graph.at(v).op;
                       if (op == isdc::ir::opcode::input ||
                           op == isdc::ir::opcode::constant) {
                         return 0.0;
                       }
                       return 90.0 + 17.0 * static_cast<double>(v % 7);
                     },
                     p);
               },
               [&](const delay_matrix& d) { return d == initial_serial; }),
           kernel_rows);
  }

  // --- Section 2: the full flow, compute-bound. --------------------------
  // Zero injected latency and an in-process oracle make the in-design
  // compute the entire cost, so the sweep isolates what the parallel
  // stages buy. Fresh engine per run: every width starts from a cold
  // cache, and a run's own cache warming is part of what is timed.
  isdc::bench::json_array e2e_rows;
  {
    const int designs = flags.quick_int("designs", 3, 1);
    std::vector<const isdc::workloads::workload_spec*> specs;
    for (const isdc::workloads::workload_spec& spec :
         isdc::workloads::all_workloads()) {
      specs.push_back(&spec);
    }
    std::vector<isdc::ir::graph> graphs;
    graphs.reserve(specs.size());
    for (const auto* spec : specs) {
      graphs.push_back(spec->build());
    }
    // Largest first: the big designs are where scaling matters.
    std::vector<std::size_t> order(specs.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      order[i] = i;
    }
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return graphs[a].num_nodes() > graphs[b].num_nodes();
    });
    order.resize(std::min<std::size_t>(
        order.size(), static_cast<std::size_t>(std::max(1, designs))));

    isdc::core::isdc_options opts;
    opts.max_iterations = flags.quick_int("max-iterations", 10, 3);
    opts.subgraphs_per_iteration = flags.quick_int("subgraphs", 16, 4);
    opts.num_threads = 1;        // serial evaluation: compute dominates
    opts.async_evaluation = false;
    isdc::synth::synthesis_options cheap;
    cheap.opt_rounds = 0;
    cheap.use_rewrite = false;
    cheap.use_refactor = false;
    opts.synth = cheap;
    const isdc::core::aig_depth_downstream oracle(80.0, 0.0, cheap);
    isdc::synth::delay_model model(opts.synth);

    for (const std::size_t i : order) {
      isdc::core::isdc_options run_opts = opts;
      run_opts.base.clock_period_ps = specs[i]->clock_period_ps;
      isdc::core::isdc_result serial;
      bool have_serial = false;
      record("end_to_end", specs[i]->name,
             sweep(
                 thread_counts, reps,
                 [&](isdc::thread_pool* p) {
                   isdc::engine::engine e;
                   return e.run(graphs[i], oracle, run_opts, &model,
                                nullptr, p);
                 },
                 [&](const isdc::core::isdc_result& r) {
                   if (!have_serial) {
                     serial = r;
                     have_serial = true;
                     return true;
                   }
                   return r.final_schedule == serial.final_schedule &&
                          r.initial == serial.initial &&
                          r.delays == serial.delays &&
                          r.iterations == serial.iterations;
                 }),
             e2e_rows);
      std::cerr << "done: " << specs[i]->name << " ("
                << graphs[i].num_nodes() << " nodes)\n";
    }
  }

  std::cout << "=== Parallel in-design iteration: thread sweep ===\n";
  std::cout << "(threads";
  for (const int t : thread_counts) {
    std::cout << " " << t;
  }
  std::cout << ", best of " << reps << ", hardware_concurrency=" << hw
            << ")\n\n";
  if (flags.has("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\nParity: "
            << (parity_mismatches == 0
                    ? "every width bit-identical to serial"
                    : std::to_string(parity_mismatches) +
                          " row(s) differ from serial")
            << "\n";

  isdc::bench::json_object root;
  isdc::bench::json_array counts;
  for (const int t : thread_counts) {
    counts.push_raw(std::to_string(t));
  }
  root.set("bench", "parallel_scaling")
      .set("reps", reps)
      .set_raw("thread_counts", counts.str())
      .set("parity_mismatches", parity_mismatches)
      .set_raw("kernels", kernel_rows.str())
      .set_raw("end_to_end", e2e_rows.str());
  if (!isdc::bench::maybe_write_trace(flags)) {
    return 1;
  }
  if (!isdc::bench::write_json_artifact(flags, root, std::cerr)) {
    return 1;
  }
  return parity_mismatches == 0 ? 0 : 1;
}
