// Demonstrates the asynchronous pipelined evaluate stage: with a slow
// downstream tool (each call latency-padded to model a real synthesis/STA
// backend), the sync pipeline pays max-of-misses latency every iteration,
// while the async pipeline overlaps iteration k+1's scheduling work with
// iteration k's downstream calls and consumes measurements as they
// arrive. Both runs see the same per-options feedback volume (the engine
// normalizes the async budget by consumed evaluations), so the comparison
// isolates latency hiding.
//
// Flags: --benchmarks=a,b,c           subset (default: the 4 workloads big
//                                     enough to fill the 16-wide fan-out;
//                                     small designs have <threads misses
//                                     per pass, so there is no multi-wave
//                                     latency to hide)
//        --downstream-latency-ms=N    injected per-call latency (default 50)
//        --max-iterations=N           (default 15)
//        --subgraphs=M                per iteration (default 16, the paper)
//        --threads=T                  sync evaluation pool (default 4)
//        --csv                        emit CSV instead of the aligned table
//        --json=PATH                  machine-readable artifact (per-arm
//                                     observed latency p50/p99 included)
//        --trace=PATH                 chrome-trace span timeline
//        --quick                      CI smoke: 1 workload, 10ms, 3 iters
#include <chrono>
#include <iostream>

#include "common.h"
#include "core/isdc_scheduler.h"
#include "engine/engine.h"
#include "sched/metrics.h"
#include "support/stats.h"
#include "support/table.h"
#include "workloads/registry.h"

namespace {

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point start) {
  return std::chrono::duration<double>(clock_type::now() - start).count();
}

struct run_outcome {
  double seconds = 0.0;
  std::int64_t register_bits = 0;
  int stages = 0;
  int iterations = 0;
  std::uint64_t downstream_calls = 0;
  isdc::core::latency_downstream::latency_stats latency;
};

run_outcome run_once(const isdc::ir::graph& g,
                     const isdc::core::downstream_tool& inner,
                     double latency_ms, const isdc::core::isdc_options& opts,
                     const isdc::synth::delay_model* model) {
  // Fresh engine and fresh latency wrapper per run: neither the evaluation
  // cache nor the call counter leaks between the sync and async arms.
  isdc::core::latency_downstream tool(inner, latency_ms);
  isdc::engine::engine e;
  const auto start = clock_type::now();
  const isdc::core::isdc_result result = e.run(g, tool, opts, model);
  run_outcome out;
  out.seconds = seconds_since(start);
  out.register_bits =
      isdc::sched::register_bits(g, result.final_schedule);
  out.stages = result.final_schedule.num_stages();
  out.iterations = result.iterations;
  out.downstream_calls = tool.calls();
  out.latency = tool.observed();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const isdc::bench::flags flags(argc, argv);
  isdc::bench::maybe_start_trace(flags);
  auto subset = flags.get_list("benchmarks");
  if (subset.empty()) {
    subset = {"sha256", "internal_datapath", "video_core", "ml_datapath2"};
    if (flags.quick()) {
      subset = {"internal_datapath"};
    }
  }
  const double latency_ms =
      flags.quick_int("downstream-latency-ms", 50, 10);

  isdc::synth::delay_model model;  // shared characterization cache

  isdc::text_table table;
  table.set_header({"Benchmark", "Lat(ms)", "Sync t(s)", "Async t(s)",
                    "Speedup", "Sync regs", "Async regs", "Sync stg",
                    "Async stg", "Sync calls", "Async calls"});

  std::vector<double> speedups;
  isdc::bench::json_array rows;
  for (const std::string& name : subset) {
    const isdc::workloads::workload_spec* spec =
        isdc::workloads::find_workload(name);
    if (spec == nullptr) {
      std::cerr << "unknown workload: " << name << "\n";
      return 1;
    }
    const isdc::ir::graph g = spec->build();
    for (isdc::ir::node_id v = 0; v < g.num_nodes(); ++v) {
      model.node_delay_ps(g, v);  // pre-warm characterization
    }

    isdc::core::isdc_options opts;
    opts.base.clock_period_ps = spec->clock_period_ps;
    opts.max_iterations = flags.quick_int("max-iterations", 15, 3);
    opts.subgraphs_per_iteration = flags.quick_int("subgraphs", 16, 4);
    opts.num_threads = flags.get_int("threads", 4);
    opts.compute_threads = isdc::bench::threads_flag(flags);
    // An unoptimized AIG-depth oracle: real (depth-correlated) feedback at
    // negligible local compute, so the injected latency dominates each
    // call — the external-backend scenario the async pipeline exists for
    // (a Yosys subprocess or remote STA service burns no host CPU while
    // the caller waits).
    isdc::synth::synthesis_options cheap;
    cheap.opt_rounds = 0;
    cheap.use_rewrite = false;
    cheap.use_refactor = false;
    const isdc::core::aig_depth_downstream inner(80.0, 0.0, cheap);

    const run_outcome sync =
        run_once(g, inner, latency_ms, opts, &model);
    opts.async_evaluation = true;
    const run_outcome async =
        run_once(g, inner, latency_ms, opts, &model);

    const double speedup = sync.seconds / std::max(async.seconds, 1e-9);
    speedups.push_back(speedup);
    table.add_row({spec->name, isdc::format_double(latency_ms, 0),
                   isdc::format_double(sync.seconds, 2),
                   isdc::format_double(async.seconds, 2),
                   isdc::format_double(speedup, 2) + "x",
                   std::to_string(sync.register_bits),
                   std::to_string(async.register_bits),
                   std::to_string(sync.stages),
                   std::to_string(async.stages),
                   std::to_string(sync.downstream_calls),
                   std::to_string(async.downstream_calls)});
    isdc::bench::json_object row;
    row.set("benchmark", spec->name)
        .set("sync_seconds", sync.seconds)
        .set("async_seconds", async.seconds)
        .set("speedup", speedup)
        .set("sync_register_bits", sync.register_bits)
        .set("async_register_bits", async.register_bits)
        .set("sync_stages", sync.stages)
        .set("async_stages", async.stages)
        .set("sync_downstream_calls", sync.downstream_calls)
        .set("async_downstream_calls", async.downstream_calls)
        .set("sync_latency_p50_ms", sync.latency.p50_ms)
        .set("sync_latency_p99_ms", sync.latency.p99_ms)
        .set("sync_latency_mean_ms", sync.latency.mean_ms)
        .set("async_latency_p50_ms", async.latency.p50_ms)
        .set("async_latency_p99_ms", async.latency.p99_ms)
        .set("async_latency_mean_ms", async.latency.mean_ms);
    rows.push_raw(row.str());
    std::cerr << "done: " << spec->name << "\n";
  }

  table.add_row({"Geomean", "", "", "",
                 isdc::format_double(isdc::geomean(speedups), 2) + "x", "",
                 "", "", "", "", ""});

  std::cout << "=== Async pipelined evaluation vs sync join-all ===\n";
  std::cout << "(per-call downstream latency injected on top of the "
               "AIG-depth oracle)\n\n";
  if (flags.has("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  isdc::bench::json_object root;
  root.set("bench", "async_pipeline")
      .set("downstream_latency_ms", latency_ms)
      .set("geomean_speedup", isdc::geomean(speedups))
      .set_raw("per_benchmark", rows.str());
  if (!isdc::bench::maybe_write_trace(flags)) {
    return 1;
  }
  if (!isdc::bench::write_json_artifact(flags, root, std::cerr)) {
    return 1;
  }
  return 0;
}
