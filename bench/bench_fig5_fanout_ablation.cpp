// Reproduces Fig. 5: delay-driven (dd) vs fanout-driven (fd) subgraph
// extraction, with 4 / 8 / 16 subgraphs per iteration over 30 iterations,
// path-based expansion (as in the paper's ablation). Prints the register
// usage trajectory of each configuration; fd should converge faster and
// reach lower register usage.
//
// Flags: --design=NAME (default video_core), --iterations=N (default 30),
//        --csv, --quick (CI smoke size)
#include <algorithm>
#include <iostream>

#include "common.h"
#include "engine/engine.h"
#include "support/table.h"
#include "workloads/registry.h"

namespace {

std::vector<std::int64_t> register_trajectory(
    const isdc::workloads::workload_spec& spec,
    isdc::extract::extraction_strategy strategy, int subgraphs,
    int iterations, int compute_threads,
    const isdc::synth::delay_model& model, isdc::engine::engine& e) {
  const isdc::ir::graph g = spec.build();
  isdc::core::isdc_options opts;
  opts.base.clock_period_ps = spec.clock_period_ps;
  opts.strategy = strategy;
  opts.expansion = isdc::extract::expansion_mode::path;
  opts.max_iterations = iterations;
  opts.subgraphs_per_iteration = subgraphs;
  opts.convergence_patience = iterations + 1;  // run the full curve
  opts.num_threads = 4;
  opts.compute_threads = compute_threads;
  isdc::core::synthesis_downstream tool(opts.synth);

  // Best-so-far register usage per iteration (the paper plots the
  // scheduler's current best), collected as the run streams by and padded
  // after convergence/exhaustion.
  std::vector<std::int64_t> curve;
  isdc::engine::callback_observer collect(
      [&curve](const isdc::core::iteration_record& rec) {
        curve.push_back(curve.empty()
                            ? rec.register_bits
                            : std::min(curve.back(), rec.register_bits));
      });
  e.add_observer(&collect);
  e.run(g, tool, opts, &model);
  e.remove_observer(&collect);  // `collect` dies here; the engine lives on
  curve.resize(static_cast<std::size_t>(iterations) + 1, curve.back());
  return curve;
}

}  // namespace

int main(int argc, char** argv) {
  const isdc::bench::flags flags(argc, argv);
  isdc::bench::maybe_start_trace(flags);
  const std::string design = flags.get("design", "video_core");
  const int iterations = flags.quick_int("iterations", 30, 4);

  const auto* spec = isdc::workloads::find_workload(design);
  if (spec == nullptr) {
    std::cerr << "unknown design " << design << "\n";
    return 1;
  }
  isdc::synth::delay_model model;
  // One engine for the whole ablation: the six configurations revisit many
  // of the same subgraphs, which the evaluation cache serves for free.
  isdc::engine::engine shared_engine;

  std::cout << "=== Fig. 5: delay-driven vs fanout-driven extraction ("
            << design << ", path-based) ===\n\n";

  isdc::text_table table;
  table.set_header({"iter", "dd m=4", "fd m=4", "dd m=8", "fd m=8",
                    "dd m=16", "fd m=16"});
  std::vector<std::vector<std::int64_t>> curves;
  for (int m : {4, 8, 16}) {
    for (auto strategy : {isdc::extract::extraction_strategy::delay_driven,
                          isdc::extract::extraction_strategy::fanout_driven}) {
      curves.push_back(register_trajectory(*spec, strategy, m, iterations,
                                           isdc::bench::threads_flag(flags),
                                           model, shared_engine));
      std::cerr << "done: m=" << m << " strategy="
                << (strategy ==
                            isdc::extract::extraction_strategy::delay_driven
                        ? "dd"
                        : "fd")
                << "\n";
    }
  }
  for (int it = 0; it <= iterations; ++it) {
    table.add_row({std::to_string(it),
                   std::to_string(curves[0][static_cast<std::size_t>(it)]),
                   std::to_string(curves[1][static_cast<std::size_t>(it)]),
                   std::to_string(curves[2][static_cast<std::size_t>(it)]),
                   std::to_string(curves[3][static_cast<std::size_t>(it)]),
                   std::to_string(curves[4][static_cast<std::size_t>(it)]),
                   std::to_string(curves[5][static_cast<std::size_t>(it)])});
  }
  if (flags.has("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\nfinal register bits: dd/fd m=4: " << curves[0].back() << "/"
            << curves[1].back() << "  m=8: " << curves[2].back() << "/"
            << curves[3].back() << "  m=16: " << curves[4].back() << "/"
            << curves[5].back() << "\n";
  if (!isdc::bench::maybe_write_trace(flags)) {
    return 1;
  }
  return 0;
}
