#include "fuzz/repro.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "backend/netlist.h"
#include "support/check.h"
#include "support/failpoint.h"

namespace isdc::fuzz {

namespace {

constexpr int repro_format_version = 1;

}  // namespace

std::string to_file_text(const repro& r) {
  std::ostringstream os;
  os << "isdc-repro " << repro_format_version << "\n";
  os << "check " << r.check << "\n";
  os << "seed " << r.seed << "\n";
  if (!r.generator.empty()) {
    os << "generator " << r.generator << "\n";
  }
  os << "failpoints " << (r.failpoints.empty() ? "-" : r.failpoints) << "\n";
  if (!r.detail.empty()) {
    std::string one_line = r.detail;
    for (char& ch : one_line) {
      if (ch == '\n') {
        ch = ' ';
      }
    }
    os << "detail " << one_line << "\n";
  }
  os << "option max_iterations " << r.options.max_iterations << "\n";
  os << "option subgraphs_per_iteration "
     << r.options.subgraphs_per_iteration << "\n";
  os << "option convergence_patience " << r.options.convergence_patience
     << "\n";
  os << "option num_threads " << r.options.num_threads << "\n";
  os << "option compute_threads " << r.options.compute_threads << "\n";
  os << "option async_evaluation " << (r.options.async_evaluation ? 1 : 0)
     << "\n";
  os << "option clock_period_ps " << r.options.base.clock_period_ps << "\n";
  os << "option memory_budget_mb " << r.options.memory_budget_mb << "\n";
  os << "graph\n";
  os << backend::to_text(r.g);
  os << "\n";
  return os.str();
}

repro parse_repro(const std::string& text) {
  std::istringstream in(text);
  std::string line;

  ISDC_CHECK(static_cast<bool>(std::getline(in, line)),
             "repro: empty input");
  {
    std::istringstream header(line);
    std::string magic;
    int version = 0;
    header >> magic >> version;
    ISDC_CHECK(magic == "isdc-repro", "repro: bad magic '" << magic << "'");
    ISDC_CHECK(version == repro_format_version,
               "repro: unsupported version " << version);
  }

  repro r;
  bool saw_check = false;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "graph") {
      std::ostringstream rest;
      rest << in.rdbuf();
      r.g = backend::from_text(rest.str());
      ISDC_CHECK(saw_check, "repro: missing check line");
      return r;
    }
    if (key == "check") {
      ls >> r.check;
      saw_check = !r.check.empty();
    } else if (key == "seed") {
      ls >> r.seed;
    } else if (key == "generator") {
      ls >> r.generator;
    } else if (key == "failpoints") {
      ls >> r.failpoints;
      if (r.failpoints == "-") {
        r.failpoints.clear();
      }
    } else if (key == "detail") {
      std::getline(ls, r.detail);
      if (!r.detail.empty() && r.detail.front() == ' ') {
        r.detail.erase(r.detail.begin());
      }
    } else if (key == "option") {
      std::string name;
      ls >> name;
      if (name == "max_iterations") {
        ls >> r.options.max_iterations;
      } else if (name == "subgraphs_per_iteration") {
        ls >> r.options.subgraphs_per_iteration;
      } else if (name == "convergence_patience") {
        ls >> r.options.convergence_patience;
      } else if (name == "num_threads") {
        ls >> r.options.num_threads;
      } else if (name == "compute_threads") {
        ls >> r.options.compute_threads;
      } else if (name == "async_evaluation") {
        int v = 0;
        ls >> v;
        r.options.async_evaluation = v != 0;
      } else if (name == "clock_period_ps") {
        ls >> r.options.base.clock_period_ps;
      } else if (name == "memory_budget_mb") {
        ls >> r.options.memory_budget_mb;
      } else {
        ISDC_CHECK(false, "repro: unknown option '" << name << "'");
      }
      ISDC_CHECK(!ls.fail(), "repro: bad value for option '" << name << "'");
    } else {
      ISDC_CHECK(false, "repro: unknown line '" << key << "'");
    }
  }
  ISDC_CHECK(false, "repro: missing graph section");
  return r;  // unreachable
}

bool write_repro(const repro& r, const std::string& path) {
  const std::string text = to_file_text(r);
  // Write-then-rename so a crash mid-write never leaves a truncated repro
  // behind (the same discipline engine/cache.cpp uses).
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return false;
    }
    out << text;
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

repro load_repro(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  ISDC_CHECK(static_cast<bool>(in), "repro: cannot open '" << path << "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_repro(buffer.str());
}

check_result replay(const repro& r, const check_options& opts) {
  fuzz_case c;
  c.g = r.g;
  c.options = r.options;
  c.seed = r.seed;
  c.generator = r.generator.empty() ? "repro" : r.generator;
  if (!r.failpoints.empty()) {
    failpoint::scoped_arm arm(r.failpoints);
    return run_named_check(r.check, c, opts);
  }
  return run_named_check(r.check, c, opts);
}

}  // namespace isdc::fuzz
