#include "fuzz/minimize.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "ir/extract.h"
#include "support/check.h"

namespace isdc::fuzz {

namespace {

/// Members with no user inside the subset become the candidate's outputs.
/// A DAG subset always has at least one (its highest-id member).
std::vector<ir::node_id> roots_of(const ir::graph& g,
                                  const std::vector<ir::node_id>& members) {
  std::unordered_set<ir::node_id> in(members.begin(), members.end());
  std::vector<ir::node_id> roots;
  for (const ir::node_id m : members) {
    bool used_inside = false;
    for (const ir::node_id u : g.users(m)) {
      if (in.count(u) != 0) {
        used_inside = true;
        break;
      }
    }
    if (!used_inside) {
      roots.push_back(m);
    }
  }
  return roots;
}

}  // namespace

minimize_result minimize_case(const fuzz_case& c,
                              const minimize_options& opts) {
  ISDC_CHECK(!opts.check.empty(), "minimize_case needs a check name");
  ISDC_CHECK(opts.max_trials > 0);

  minimize_result out;
  out.original_nodes = c.g.num_nodes();
  out.g = c.g;

  std::vector<ir::node_id> members;
  members.reserve(c.g.num_nodes());
  for (ir::node_id v = 0; v < static_cast<ir::node_id>(c.g.num_nodes());
       ++v) {
    members.push_back(v);
  }

  int trials = 0;
  const auto still_fails = [&](const std::vector<ir::node_id>& subset,
                               ir::graph* kept) -> bool {
    if (subset.empty() || trials >= opts.max_trials) {
      return false;
    }
    ++trials;
    const std::vector<ir::node_id> roots = roots_of(c.g, subset);
    ir::extraction ex = ir::extract_subgraph(c.g, subset, roots);
    fuzz_case candidate;
    candidate.g = ex.g;
    candidate.options = c.options;
    candidate.seed = c.seed;
    candidate.generator = c.generator;
    bool fails = false;
    try {
      fails = !run_named_check(opts.check, candidate, opts.checks).passed;
    } catch (...) {
      // A candidate that crashes the check is conservatively treated as
      // not reproducing: the repro must replay the original failure mode.
      fails = false;
    }
    if (fails && kept != nullptr) {
      *kept = std::move(ex.g);
    }
    return fails;
  };

  // Classic ddmin over the member set: try dropping chunks, refining
  // granularity when no chunk can go.
  std::size_t chunks = 2;
  while (members.size() >= 2 && trials < opts.max_trials) {
    const std::size_t n = members.size();
    chunks = std::min(chunks, n);
    bool shrunk = false;
    for (std::size_t i = 0; i < chunks && trials < opts.max_trials; ++i) {
      const std::size_t lo = i * n / chunks;
      const std::size_t hi = (i + 1) * n / chunks;
      std::vector<ir::node_id> complement;
      complement.reserve(n - (hi - lo));
      complement.insert(complement.end(), members.begin(),
                        members.begin() + static_cast<std::ptrdiff_t>(lo));
      complement.insert(complement.end(),
                        members.begin() + static_cast<std::ptrdiff_t>(hi),
                        members.end());
      ir::graph kept{"minimized"};
      if (still_fails(complement, &kept)) {
        members = std::move(complement);
        out.g = std::move(kept);
        out.reduced = true;
        chunks = std::max<std::size_t>(2, chunks - 1);
        shrunk = true;
        break;
      }
    }
    if (!shrunk) {
      if (chunks >= members.size()) {
        break;  // single-node granularity exhausted
      }
      chunks = std::min(chunks * 2, members.size());
    }
  }

  out.trials = static_cast<std::size_t>(trials);
  return out;
}

}  // namespace isdc::fuzz
