#include "fuzz/fuzz.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "backend/subprocess_tool.h"
#include "core/downstream.h"
#include "engine/engine.h"
#include "engine/validator.h"
#include "extract/partition.h"
#include "fuzz/sabotage.h"
#include "sched/metrics.h"
#include "sched/validate.h"
#include "support/failpoint.h"
#include "support/rng.h"
#include "workloads/registry.h"

namespace isdc::fuzz {

namespace {

/// The quiet fault schedule of the failpoints-quiet pair: sites the
/// in-process run never visits, so arming alone must perturb nothing —
/// this catches any accidental coupling between the failpoint machinery
/// (its per-site counters, its seeded decisions) and scheduling state.
std::string quiet_failpoint_spec(std::uint64_t seed) {
  std::ostringstream os;
  os << "seed=" << seed
     << ";backend.subprocess.read=timeout@p=0.5"
     << ";engine.cache.save=fail@p=0.5";
  return os.str();
}

struct run_output {
  core::isdc_result result;
  std::string violations;  ///< invariant_validator findings, "" when clean
};

/// One engine run with an invariant validator attached. `eng` may be
/// shared across calls (cold/warm pairs); nullptr uses a fresh engine.
run_output run_once(const ir::graph& g, const core::downstream_tool& tool,
                    const core::isdc_options& options,
                    engine::engine* eng = nullptr) {
  engine::engine local;
  engine::engine& e = eng != nullptr ? *eng : local;
  engine::invariant_validator validator;
  e.add_observer(&validator);
  run_output out;
  try {
    out.result = e.run(g, tool, options);
  } catch (...) {
    e.remove_observer(&validator);
    throw;
  }
  e.remove_observer(&validator);
  out.violations = validator.to_string();
  return out;
}

std::string describe_pair(const run_output& a, const run_output& b,
                          bool with_matrices) {
  if (!a.violations.empty()) {
    return "side A invariant violations: " + a.violations;
  }
  if (!b.violations.empty()) {
    return "side B invariant violations: " + b.violations;
  }
  return compare_results(a.result, b.result, with_matrices);
}

check_result make_result(const fuzz_case& c, const std::string& name,
                         std::string detail, std::string failpoints = {}) {
  check_result r;
  r.name = name;
  r.seed = c.seed;
  r.detail = std::move(detail);
  r.failpoints = std::move(failpoints);
  r.passed = r.detail.empty();
  return r;
}

// ---- the individual checks -------------------------------------------

check_result check_serial_vs_threads(const fuzz_case& c) {
  core::aig_depth_downstream tool;
  core::isdc_options serial = c.options;
  serial.compute_threads = 1;
  core::isdc_options threaded = c.options;
  threaded.compute_threads = 3;
  const run_output a = run_once(c.g, tool, serial);
  const run_output b = run_once(c.g, tool, threaded);
  return make_result(c, "serial-vs-threads", describe_pair(a, b, true));
}

check_result check_cold_vs_warm(const fuzz_case& c) {
  core::aig_depth_downstream tool;
  engine::engine shared;
  const run_output cold = run_once(c.g, tool, c.options, &shared);
  const run_output warm = run_once(c.g, tool, c.options, &shared);
  std::string detail = describe_pair(cold, warm, true);
  if (detail.empty() && warm.result.history.size() > 1) {
    int warm_hits = 0;
    for (const core::iteration_record& rec : warm.result.history) {
      warm_hits += rec.cache_hits;
    }
    int evaluated = 0;
    for (const core::iteration_record& rec : warm.result.history) {
      evaluated += rec.subgraphs_evaluated;
    }
    if (evaluated > 0 && warm_hits == 0) {
      detail = "warm run answered no evaluation from the cache";
    }
  }
  return make_result(c, "cold-vs-warm", std::move(detail));
}

check_result check_failpoints_quiet(const fuzz_case& c) {
  core::aig_depth_downstream tool;
  const run_output clean = run_once(c.g, tool, c.options);
  const std::string spec = quiet_failpoint_spec(c.seed);
  run_output armed;
  std::uint64_t fires = 0;
  {
    failpoint::scoped_arm arm(spec);
    armed = run_once(c.g, tool, c.options);
    fires = failpoint::total_fires();
  }
  std::string detail = describe_pair(clean, armed, true);
  if (detail.empty() && fires != 0) {
    detail = "quiet schedule fired " + std::to_string(fires) +
             " faults on an in-process run";
  }
  return make_result(c, "failpoints-quiet", std::move(detail), spec);
}

check_result check_sync_vs_async(const fuzz_case& c) {
  core::aig_depth_downstream tool;
  core::isdc_options sync = c.options;
  sync.async_evaluation = false;
  core::isdc_options async = c.options;
  async.async_evaluation = true;
  const run_output a = run_once(c.g, tool, sync);
  const run_output b = run_once(c.g, tool, async);
  std::string detail;
  if (!a.violations.empty()) {
    detail = "sync invariant violations: " + a.violations;
  } else if (!b.violations.empty()) {
    detail = "async invariant violations: " + b.violations;
  } else if (a.result.final_schedule.num_stages() !=
             b.result.final_schedule.num_stages()) {
    // Arrival timing makes async trajectories thread-dependent, so the
    // contract is final quality, not bit-equality (engine_async_test).
    std::ostringstream os;
    os << "stage count diverged: sync "
       << a.result.final_schedule.num_stages() << " vs async "
       << b.result.final_schedule.num_stages();
    detail = os.str();
  } else if (sched::register_bits(c.g, b.result.final_schedule) >
             sched::register_bits(c.g, b.result.initial)) {
    detail = "async final schedule is worse than its own baseline";
  }
  return make_result(c, "sync-vs-async", std::move(detail));
}

check_result check_inprocess_vs_worker(const fuzz_case& c,
                                       const check_options& opts) {
  core::aig_depth_downstream in_process;
  backend::subprocess_options sopts;
  sopts.command = opts.worker_command;
  sopts.workers = 2;
  backend::subprocess_tool worker(sopts);
  const run_output a = run_once(c.g, in_process, c.options);
  const run_output b = run_once(c.g, worker, c.options);
  return make_result(c, "inprocess-vs-worker", describe_pair(a, b, true));
}

check_result check_budget_sweep(const fuzz_case& c) {
  const std::vector<extract::design_component> components =
      extract::weakly_connected_components(c.g);
  if (components.size() < 2) {
    return make_result(c, "budget-sweep", "");  // single island: vacuous
  }
  core::aig_depth_downstream tool;
  core::isdc_options tight = c.options;
  tight.memory_budget_mb = 64.0;
  core::isdc_options loose = c.options;
  loose.memory_budget_mb = 512.0;
  const run_output a = run_once(c.g, tool, tight);
  const run_output b = run_once(c.g, tool, loose);
  std::string detail = describe_pair(a, b, false);
  if (!detail.empty()) {
    return make_result(c, "budget-sweep", "budgets 64 vs 512 MiB: " + detail);
  }
  if (!a.result.partitioned) {
    return make_result(c, "budget-sweep",
                       "multi-component budgeted run did not partition");
  }
  // Budget-invariance alone could hide a bug common to both budgeted runs:
  // also require the merged schedule to equal each component scheduled
  // solo (components of a parallel stitch are structurally identical to
  // the standalone parts, and the engine is deterministic).
  for (const extract::design_component& comp : components) {
    const ir::extraction extracted = extract::extract_component(c.g, comp);
    const run_output solo = run_once(extracted.g, tool, c.options);
    if (!solo.violations.empty()) {
      return make_result(c, "budget-sweep",
                         "solo component invariant violations: " +
                             solo.violations);
    }
    for (const auto& [original, sub] : extracted.to_sub) {
      if (a.result.final_schedule.cycle[original] !=
          solo.result.final_schedule.cycle[sub]) {
        std::ostringstream os;
        os << "node " << original << ": budgeted whole-design stage "
           << a.result.final_schedule.cycle[original]
           << " != solo component stage "
           << solo.result.final_schedule.cycle[sub];
        return make_result(c, "budget-sweep", os.str());
      }
    }
  }
  return make_result(c, "budget-sweep", "");
}

/// Exhaustive reference on a tiny derived instance: the baseline SDC
/// schedule's register bits must match the best over every legal stage
/// assignment (operand order, inputs at 0, intra-stage timing against the
/// naive matrix — the same legality validate_schedule checks).
check_result check_brute_force(const fuzz_case& c) {
  workloads::mixed_dag_options tiny;
  tiny.num_inputs = 2;
  tiny.layer_width = 3;
  tiny.fanin_window = 2;
  tiny.select_chain_probability = 0.0;
  tiny.select_chain_length = 1;
  const ir::graph g = workloads::build_mixed_dag(c.seed, 5, tiny);

  core::isdc_options opts = c.options;
  sched::delay_matrix matrix{0};
  const sched::schedule baseline =
      core::run_sdc_baseline(g, opts, nullptr, &matrix);
  const double clock = opts.base.clock_period_ps;
  if (!sched::validate_schedule(g, baseline, matrix, clock).empty()) {
    return make_result(c, "brute-force", "baseline SDC schedule is illegal");
  }
  const std::int64_t sdc_bits = sched::register_bits(g, baseline);

  // Free variables: everything but inputs (pinned to 0) and constants
  // (stage 0 — no operands, zero register cost, always legal).
  std::vector<ir::node_id> free_nodes;
  for (ir::node_id v = 0; v < g.num_nodes(); ++v) {
    const ir::opcode op = g.at(v).op;
    if (op != ir::opcode::input && op != ir::opcode::constant) {
      free_nodes.push_back(v);
    }
  }
  const int max_stage = baseline.num_stages();  // stages 0..max inclusive
  if (free_nodes.size() > 10) {
    return make_result(c, "brute-force", "");  // derived case too large
  }

  sched::schedule trial;
  trial.cycle.assign(g.num_nodes(), 0);
  std::int64_t best = -1;
  const auto enumerate = [&](const auto& self, std::size_t i) -> void {
    if (i == free_nodes.size()) {
      if (sched::validate_schedule(g, trial, matrix, clock).empty()) {
        const std::int64_t bits = sched::register_bits(g, trial);
        if (best < 0 || bits < best) {
          best = bits;
        }
      }
      return;
    }
    const ir::node_id v = free_nodes[i];
    int lo = 0;
    for (const ir::node_id p : g.at(v).operands) {
      lo = std::max(lo, trial.cycle[p]);  // ids topological: p already set
    }
    for (int s = lo; s <= max_stage; ++s) {
      trial.cycle[v] = s;
      self(self, i + 1);
    }
    trial.cycle[v] = 0;
  };
  enumerate(enumerate, 0);

  if (best < 0) {
    return make_result(c, "brute-force",
                       "no legal assignment found within the stage bound");
  }
  if (best != sdc_bits) {
    std::ostringstream os;
    os << "SDC register bits " << sdc_bits << " vs exhaustive optimum "
       << best << " on " << g.num_nodes() << " nodes";
    return make_result(c, "brute-force", os.str());
  }
  return make_result(c, "brute-force", "");
}

/// Reference engine vs the sabotaged pipeline (sabotage.h). This check is
/// EXPECTED to fail on designs containing a mul node — it exists so tests
/// and --inject-bug can exercise minimization and repro replay end to end.
check_result check_sabotage(const fuzz_case& c) {
  core::aig_depth_downstream tool;
  const run_output reference = run_once(c.g, tool, c.options);
  engine::engine buggy(sabotaged_pipeline());
  engine::engine* eng = &buggy;
  run_output sabotaged;
  {
    engine::invariant_validator validator;
    eng->add_observer(&validator);
    sabotaged.result = eng->run(c.g, tool, c.options);
    eng->remove_observer(&validator);
    sabotaged.violations = validator.to_string();
  }
  std::string detail = describe_pair(reference, sabotaged, true);
  return make_result(c, "sabotage", std::move(detail));
}

}  // namespace

fuzz_case generate_case(std::uint64_t seed, bool quick) {
  rng r(seed);
  fuzz_case c;
  c.seed = seed;
  const int ops = quick ? 60 + static_cast<int>(r.next_below(160))
                        : 300 + static_cast<int>(r.next_below(600));
  switch (seed % 4) {
    case 0:
      c.generator = "random";
      c.g = workloads::build_random_dag(r.next(), ops);
      break;
    case 1:
      c.generator = "mixed";
      c.g = workloads::build_mixed_dag(r.next(), ops);
      break;
    case 2: {
      // Control-heavy: the irregular select-dominated shapes.
      workloads::mixed_dag_options heavy;
      heavy.arith_fraction = 0.2;
      heavy.logic_fraction = 0.15;
      heavy.compare_fraction = 0.25;
      heavy.select_chain_probability = 0.35;
      c.generator = "control";
      c.g = workloads::build_mixed_dag(r.next(), ops, heavy);
      break;
    }
    default: {
      // Parallel islands: the shape the budget-sweep check partitions.
      const int parts = 2 + static_cast<int>(r.next_below(2));
      std::vector<ir::graph> built;
      built.reserve(static_cast<std::size_t>(parts));
      for (int p = 0; p < parts; ++p) {
        const int part_ops = std::max(20, ops / parts);
        if (p % 2 == 0) {
          built.push_back(workloads::build_mixed_dag(r.next(), part_ops));
        } else {
          built.push_back(workloads::build_random_dag(r.next(), part_ops));
        }
      }
      std::vector<const ir::graph*> pointers;
      pointers.reserve(built.size());
      for (const ir::graph& g : built) {
        pointers.push_back(&g);
      }
      c.generator = "stitched";
      c.g = workloads::stitch_designs(
          pointers, {.mode = workloads::stitch_mode::parallel,
                     .name = "fuzz_stitched_" + std::to_string(seed)});
      break;
    }
  }
  c.options.max_iterations = quick ? 2 : 4;
  c.options.subgraphs_per_iteration = 4;
  c.options.num_threads = 2;
  return c;
}

std::vector<std::string> check_names(const fuzz_case& c,
                                     const check_options& opts) {
  std::vector<std::string> names = {"serial-vs-threads", "cold-vs-warm",
                                    "sync-vs-async"};
  if (opts.failpoint_pair) {
    names.push_back("failpoints-quiet");
  }
  if (!opts.worker_command.empty()) {
    names.push_back("inprocess-vs-worker");
  }
  if (opts.budget_sweep && c.generator == "stitched") {
    names.push_back("budget-sweep");
  }
  if (opts.brute_force) {
    names.push_back("brute-force");
  }
  return names;
}

check_result run_named_check(const std::string& name, const fuzz_case& c,
                             const check_options& opts) {
  if (name == "serial-vs-threads") {
    return check_serial_vs_threads(c);
  }
  if (name == "cold-vs-warm") {
    return check_cold_vs_warm(c);
  }
  if (name == "sync-vs-async") {
    return check_sync_vs_async(c);
  }
  if (name == "failpoints-quiet") {
    return check_failpoints_quiet(c);
  }
  if (name == "inprocess-vs-worker") {
    return check_inprocess_vs_worker(c, opts);
  }
  if (name == "budget-sweep") {
    return check_budget_sweep(c);
  }
  if (name == "brute-force") {
    return check_brute_force(c);
  }
  if (name == "sabotage") {
    return check_sabotage(c);
  }
  return make_result(c, name, "unknown check '" + name + "'");
}

std::vector<check_result> run_checks(const fuzz_case& c,
                                     const check_options& opts) {
  std::vector<check_result> results;
  for (const std::string& name : check_names(c, opts)) {
    results.push_back(run_named_check(name, c, opts));
  }
  return results;
}

std::string compare_results(const core::isdc_result& a,
                            const core::isdc_result& b, bool with_matrices) {
  std::ostringstream os;
  if (a.initial != b.initial) {
    return "initial schedules differ";
  }
  if (a.final_schedule != b.final_schedule) {
    return "final schedules differ";
  }
  if (a.iterations != b.iterations) {
    os << "iteration counts differ: " << a.iterations << " vs "
       << b.iterations;
    return os.str();
  }
  if (a.history.size() != b.history.size()) {
    os << "history lengths differ: " << a.history.size() << " vs "
       << b.history.size();
    return os.str();
  }
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    const core::iteration_record& ra = a.history[i];
    const core::iteration_record& rb = b.history[i];
    if (ra.register_bits != rb.register_bits ||
        ra.num_stages != rb.num_stages ||
        ra.subgraphs_evaluated != rb.subgraphs_evaluated ||
        ra.matrix_entries_lowered != rb.matrix_entries_lowered ||
        ra.estimated_delay_ps != rb.estimated_delay_ps) {
      os << "history record " << i << " differs (register_bits "
         << ra.register_bits << " vs " << rb.register_bits << ", stages "
         << ra.num_stages << " vs " << rb.num_stages << ", evaluated "
         << ra.subgraphs_evaluated << " vs " << rb.subgraphs_evaluated
         << ", lowered " << ra.matrix_entries_lowered << " vs "
         << rb.matrix_entries_lowered << ")";
      return os.str();
    }
  }
  if (with_matrices) {
    if (!(a.delays == b.delays)) {
      return "final delay matrices differ";
    }
    if (!(a.naive_delays == b.naive_delays)) {
      return "initial delay matrices differ";
    }
  }
  return "";
}

}  // namespace isdc::fuzz
