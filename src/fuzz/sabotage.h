// The injected-bug fixture: a pipeline stage that deliberately perturbs
// the schedule, proving end to end that the differential harness catches a
// real scheduler defect, that the ddmin reducer shrinks it, and that the
// emitted repro replays it. The sabotage is legality-preserving (it delays
// a sink, never breaking operand order), modelling the dangerous class of
// bug — a silently suboptimal schedule no validator flags — and triggers
// only on designs containing a mul node, so minimization has a concrete
// structural core to converge onto.
#ifndef ISDC_FUZZ_SABOTAGE_H_
#define ISDC_FUZZ_SABOTAGE_H_

#include <memory>

#include "engine/stage.h"

namespace isdc::fuzz {

/// The bug: appended after resolve, it bumps the highest-id sink's stage
/// by one whenever the design contains a mul node.
std::unique_ptr<engine::stage> make_sabotage_stage();

/// The default pipeline with the sabotage stage appended — run it against
/// a clean engine on the same case and compare.
std::vector<std::unique_ptr<engine::stage>> sabotaged_pipeline();

}  // namespace isdc::fuzz

#endif  // ISDC_FUZZ_SABOTAGE_H_
