#include "fuzz/sabotage.h"

#include <utility>

#include "engine/engine.h"

namespace isdc::fuzz {

namespace {

class sabotage_stage final : public engine::stage {
public:
  std::string_view name() const override { return "sabotage"; }

  bool run(engine::run_state& rs, engine::iteration_state&) override {
    bool has_mul = false;
    for (const ir::node& n : rs.g.nodes()) {
      if (n.op == ir::opcode::mul) {
        has_mul = true;
        break;
      }
    }
    if (!has_mul || rs.current.cycle.empty()) {
      return true;
    }
    // Delay the highest-id non-constant sink by one stage. Sinks have no
    // users, so operand ordering still holds — the schedule stays legal,
    // just worse (the sink's operands now cross one more boundary).
    for (ir::node_id v = static_cast<ir::node_id>(rs.g.num_nodes()); v-- > 0;) {
      if (rs.g.users(v).empty() &&
          rs.g.at(v).op != ir::opcode::constant) {
        rs.current.cycle[v] += 1;
        break;
      }
    }
    return true;
  }
};

}  // namespace

std::unique_ptr<engine::stage> make_sabotage_stage() {
  return std::make_unique<sabotage_stage>();
}

std::vector<std::unique_ptr<engine::stage>> sabotaged_pipeline() {
  std::vector<std::unique_ptr<engine::stage>> stages =
      engine::engine::default_pipeline();
  stages.push_back(make_sabotage_stage());
  return stages;
}

}  // namespace isdc::fuzz
