// ddmin-style reduction of a failing fuzz case: shrink the design to a
// small core that still fails the same check. Operates directly on node-id
// subsets — ir::extract_subgraph turns any subset into a well-formed graph
// (external operands become fresh boundary inputs, constants are cloned),
// so the reducer never has to reason about closure.
#ifndef ISDC_FUZZ_MINIMIZE_H_
#define ISDC_FUZZ_MINIMIZE_H_

#include <cstddef>
#include <string>

#include "fuzz/fuzz.h"

namespace isdc::fuzz {

struct minimize_options {
  std::string check;    ///< the failing check to replay on each candidate
  check_options checks;
  /// Hard cap on candidate replays — minimization is best-effort; on a
  /// pathological case it returns the smallest failing graph found so far.
  int max_trials = 512;
};

struct minimize_result {
  ir::graph g{"minimized"};   ///< smallest failing design found
  std::size_t original_nodes = 0;
  std::size_t trials = 0;     ///< candidate replays actually run
  bool reduced = false;       ///< g is strictly smaller than the input
};

/// Precondition: run_named_check(opts.check, c, opts.checks) fails on `c`
/// (callers should have just observed the failure). Returns the input
/// graph unchanged (reduced=false) if nothing smaller still fails.
minimize_result minimize_case(const fuzz_case& c,
                              const minimize_options& opts);

}  // namespace isdc::fuzz

#endif  // ISDC_FUZZ_MINIMIZE_H_
