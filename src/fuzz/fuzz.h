// Differential fuzzing of the ISDC pipeline (tools/isdc_fuzz is the CLI).
// Per seed, a generated design (random / mixed-control / parallel-stitched
// — src/workloads) runs through configuration pairs that must agree:
//
//   bit-identical trajectories (schedules, matrices, history):
//     serial-vs-threads      compute_threads=1 vs N (parallel kernels)
//     cold-vs-warm           same engine run twice (cache must not steer)
//     failpoints-quiet       armed-but-silent fault schedule vs none
//     inprocess-vs-worker    aig-depth in process vs the subprocess worker
//     budget-sweep           two memory budgets; plus partitioned whole ==
//                            per-part solo runs on stitched designs
//   quality parity (async arrival timing is thread-dependent by design,
//   so bit-equality is not the contract — engine_async_test):
//     sync-vs-async          equal stage count, legal on both sides
//   reference optimality (tiny instances only):
//     brute-force            baseline SDC register bits == exhaustive
//                            enumeration over all legal stage assignments
//
// Every run is watched by an engine::invariant_validator; an invariant
// violation fails the check even when both sides agree. On failure the
// ddmin reducer (minimize.h) shrinks the design and a self-contained repro
// file (repro.h) is emitted.
#ifndef ISDC_FUZZ_FUZZ_H_
#define ISDC_FUZZ_FUZZ_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/isdc_scheduler.h"
#include "ir/graph.h"

namespace isdc::fuzz {

/// One generated test case. The options are the pair's *base* config; each
/// check derives its two sides from it.
struct fuzz_case {
  ir::graph g{"fuzz"};
  core::isdc_options options;
  std::uint64_t seed = 0;
  std::string generator;  ///< "random" | "mixed" | "control" | "stitched"
};

/// Seed-deterministic case generation. Quick cases are 60-220 ops and two
/// feedback iterations — sized so a few hundred config-pair checks fit in
/// a CI smoke; full cases are several hundred ops and four iterations.
fuzz_case generate_case(std::uint64_t seed, bool quick = true);

struct check_result {
  std::string name;
  std::uint64_t seed = 0;
  bool passed = true;
  std::string detail;      ///< first divergence / violation, "" when passed
  std::string failpoints;  ///< the armed spec, "" when none
};

struct check_options {
  /// Worker command line for the inprocess-vs-worker pair (e.g.
  /// "path/to/isdc_delay_worker --tool=aig-depth"); empty skips it.
  std::string worker_command;
  bool budget_sweep = true;
  bool brute_force = true;
  bool failpoint_pair = true;
};

/// The names run_checks executes, in order (subject to check_options and
/// case shape — brute-force only fires on tiny cases, budget-sweep only on
/// multi-component ones).
std::vector<std::string> check_names(const fuzz_case& c,
                                     const check_options& opts);

/// Runs one named check on a case. Unknown names come back failed with a
/// descriptive detail (a repro naming a check this build does not know
/// must not pass silently).
check_result run_named_check(const std::string& name, const fuzz_case& c,
                             const check_options& opts);

/// All applicable checks for the case, in check_names order.
std::vector<check_result> run_checks(const fuzz_case& c,
                                     const check_options& opts = {});

/// "" when the two results are bit-identical; otherwise a description of
/// the first divergence. Compares initial/final schedules, iteration
/// count, history metrics and (when `with_matrices`) both delay matrices.
/// Cache-sourcing counters (cache_hits, dispatch accounting) are excluded:
/// re-sourcing a measurement with an identical value is not a divergence.
std::string compare_results(const core::isdc_result& a,
                            const core::isdc_result& b, bool with_matrices);

}  // namespace isdc::fuzz

#endif  // ISDC_FUZZ_FUZZ_H_
