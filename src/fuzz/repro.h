// Self-contained repro files for fuzz failures. One text file carries
// everything needed to replay a divergence on a build with no access to
// the original fuzz run: the check name, the seed, the armed failpoint
// spec, the relevant engine options and the full design as a versioned
// to_text netlist (backend/netlist.h). `isdc_fuzz --replay=FILE` and
// fuzz::replay() re-run the named check from the file alone.
#ifndef ISDC_FUZZ_REPRO_H_
#define ISDC_FUZZ_REPRO_H_

#include <cstdint>
#include <string>

#include "fuzz/fuzz.h"

namespace isdc::fuzz {

struct repro {
  std::string check;       ///< check name for run_named_check
  std::uint64_t seed = 0;
  std::string generator;   ///< informational: how the design was built
  std::string detail;      ///< informational: the divergence observed
  std::string failpoints;  ///< spec that was armed, "" when none
  core::isdc_options options;
  ir::graph g{"repro"};
};

/// Serializes to the repro text format:
///
///   isdc-repro 1
///   check <name>
///   seed <decimal>
///   generator <word>
///   failpoints <spec or ->
///   detail <free text to end of line>
///   option <key> <value>     (one per encoded option)
///   graph
///   <backend::to_text netlist, ending in its own "end" line>
std::string to_file_text(const repro& r);

/// Parses to_file_text output. Throws isdc::check_error on malformed input
/// or an unsupported version. Unknown option keys are rejected — a repro
/// written by a newer build must not silently replay with defaults.
repro parse_repro(const std::string& text);

/// Write/read a repro file on disk. write_repro returns false (with the
/// file possibly absent) on I/O failure; load_repro throws on I/O failure
/// or malformed content.
bool write_repro(const repro& r, const std::string& path);
repro load_repro(const std::string& path);

/// Builds a fuzz_case from the repro, arms its failpoint spec (if any)
/// and re-runs the named check. A repro for a fixed bug comes back
/// passed=true; a still-live one reproduces the recorded divergence.
check_result replay(const repro& r, const check_options& opts = {});

}  // namespace isdc::fuzz

#endif  // ISDC_FUZZ_REPRO_H_
