#include "sdc/bellman_ford.h"

#include <algorithm>
#include <deque>

namespace isdc::sdc {

std::optional<std::vector<std::int64_t>> potential_distances(
    const system& sys) {
  if (sys.trivially_infeasible()) {
    return std::nullopt;
  }
  const int n = sys.num_vars();
  // SPFA (queue-based Bellman-Ford) with relaxation counting for negative
  // cycle detection. All nodes start at distance 0: equivalent to a virtual
  // source with 0-weight arcs to every variable.
  std::vector<std::int64_t> dist(static_cast<std::size_t>(n), 0);
  std::vector<int> relaxations(static_cast<std::size_t>(n), 0);
  std::vector<bool> queued(static_cast<std::size_t>(n), true);
  std::deque<var_id> queue;
  for (var_id v = 0; v < n; ++v) {
    queue.push_back(v);
  }

  // Adjacency: arc u -> v with weight b for each constraint.
  std::vector<std::vector<std::pair<var_id, std::int64_t>>> adj(
      static_cast<std::size_t>(n));
  for (const constraint& c : sys.constraints()) {
    adj[static_cast<std::size_t>(c.u)].emplace_back(c.v, c.bound);
  }

  while (!queue.empty()) {
    const var_id u = queue.front();
    queue.pop_front();
    queued[static_cast<std::size_t>(u)] = false;
    for (const auto& [v, w] : adj[static_cast<std::size_t>(u)]) {
      const std::int64_t cand = dist[static_cast<std::size_t>(u)] + w;
      if (cand < dist[static_cast<std::size_t>(v)]) {
        dist[static_cast<std::size_t>(v)] = cand;
        if (++relaxations[static_cast<std::size_t>(v)] > n) {
          return std::nullopt;  // negative cycle
        }
        if (!queued[static_cast<std::size_t>(v)]) {
          queued[static_cast<std::size_t>(v)] = true;
          queue.push_back(v);
        }
      }
    }
  }
  return dist;
}

solution find_feasible(const system& sys) {
  solution result;
  const auto dist = potential_distances(sys);
  if (!dist.has_value()) {
    result.st = solution::status::infeasible;
    return result;
  }
  result.st = solution::status::feasible;
  result.values.resize(dist->size());
  // s_w = -dist_w satisfies every constraint; shift so the minimum is 0.
  std::int64_t min_value = 0;
  for (std::size_t i = 0; i < dist->size(); ++i) {
    result.values[i] = -(*dist)[i];
    min_value = std::min(min_value, result.values[i]);
  }
  for (auto& v : result.values) {
    v -= min_value;
  }
  result.objective = sys.objective_at(result.values);
  return result;
}

}  // namespace isdc::sdc
