#include "sdc/brute_force.h"

#include "support/check.h"

namespace isdc::sdc {

namespace {

void enumerate(const system& sys, std::int64_t lo, std::int64_t hi,
               var_id origin, std::vector<std::int64_t>& values, int index,
               solution& best) {
  const int n = sys.num_vars();
  if (index == n) {
    if (!sys.satisfied_by(values)) {
      return;
    }
    const std::int64_t obj = sys.objective_at(values);
    if (best.st != solution::status::optimal || obj < best.objective) {
      best.st = solution::status::optimal;
      best.objective = obj;
      best.values = values;
    }
    return;
  }
  if (index == origin) {
    values[static_cast<std::size_t>(index)] = 0;
    enumerate(sys, lo, hi, origin, values, index + 1, best);
    return;
  }
  for (std::int64_t x = lo; x <= hi; ++x) {
    values[static_cast<std::size_t>(index)] = x;
    enumerate(sys, lo, hi, origin, values, index + 1, best);
  }
}

}  // namespace

solution solve_brute_force(const system& sys, std::int64_t lo, std::int64_t hi,
                           var_id origin) {
  ISDC_CHECK(sys.num_vars() <= 8, "brute force limited to 8 variables");
  solution best;
  best.st = solution::status::infeasible;
  std::vector<std::int64_t> values(static_cast<std::size_t>(sys.num_vars()), 0);
  enumerate(sys, lo, hi, origin, values, 0, best);
  return best;
}

}  // namespace isdc::sdc
