// System of difference constraints (SDC).
//
// An SDC is a set of integer-difference constraints `s_u - s_v <= b` over
// integer variables, plus a linear objective `min sum c_v * s_v`. The
// constraint matrix is totally unimodular (Cong & Zhang, DAC'06), so the LP
// relaxation always has an integral optimum — the property SDC scheduling
// is built on. Solvers live in bellman_ford.h (feasibility) and
// mcmf_solver.h (optimal objective via the min-cost-flow dual).
#ifndef ISDC_SDC_SYSTEM_H_
#define ISDC_SDC_SYSTEM_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

namespace isdc::sdc {

using var_id = int;

/// s_u - s_v <= bound.
struct constraint {
  var_id u = 0;
  var_id v = 0;
  std::int64_t bound = 0;
};

class system {
public:
  explicit system(int num_vars = 0);

  /// Appends a fresh variable and returns its id.
  var_id add_var();

  int num_vars() const { return num_vars_; }

  /// Adds `s_u - s_v <= bound`. Duplicate (u, v) pairs keep the tightest
  /// bound. A self-pair with a negative bound makes the system trivially
  /// infeasible; that is recorded and reported by the solvers.
  void add_constraint(var_id u, var_id v, std::int64_t bound);

  /// Sets the bound of `s_u - s_v <= bound`, overwriting in either
  /// direction (unlike add_constraint's keep-tightest), adding the
  /// constraint if the pair is new. The mutation hook behind
  /// incremental_solver's relaxations. Self-pairs behave as in
  /// add_constraint (negative latches trivial infeasibility).
  void set_constraint(var_id u, var_id v, std::int64_t bound);

  /// Current bound of the (u, v) constraint, or nullopt if absent.
  std::optional<std::int64_t> bound_for(var_id u, var_id v) const;

  /// Adds `coeff * s_v` to the objective (accumulates over calls).
  void add_objective(var_id v, std::int64_t coeff);

  const std::vector<constraint>& constraints() const { return constraints_; }
  const std::vector<std::int64_t>& objective() const { return objective_; }
  bool trivially_infeasible() const { return trivially_infeasible_; }

  /// True if `values` satisfies every constraint.
  bool satisfied_by(const std::vector<std::int64_t>& values) const;

  /// Objective value at `values`.
  std::int64_t objective_at(const std::vector<std::int64_t>& values) const;

private:
  int num_vars_ = 0;
  std::vector<constraint> constraints_;
  std::unordered_map<std::uint64_t, std::size_t> constraint_index_;
  std::vector<std::int64_t> objective_;
  bool trivially_infeasible_ = false;
};

/// Result of an SDC solve.
struct solution {
  enum class status { optimal, feasible, infeasible, unbounded };
  status st = status::infeasible;
  std::vector<std::int64_t> values;
  std::int64_t objective = 0;

  bool ok() const {
    return st == status::optimal || st == status::feasible;
  }

  bool operator==(const solution&) const = default;
};

}  // namespace isdc::sdc

#endif  // ISDC_SDC_SYSTEM_H_
