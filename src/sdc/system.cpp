#include "sdc/system.h"

#include <algorithm>

#include "support/check.h"

namespace isdc::sdc {

system::system(int num_vars) : num_vars_(num_vars) {
  ISDC_CHECK(num_vars >= 0);
  objective_.resize(static_cast<std::size_t>(num_vars), 0);
}

var_id system::add_var() {
  objective_.push_back(0);
  return num_vars_++;
}

void system::add_constraint(var_id u, var_id v, std::int64_t bound) {
  ISDC_CHECK(u >= 0 && u < num_vars_ && v >= 0 && v < num_vars_,
             "constraint variables out of range: " << u << ", " << v);
  if (u == v) {
    if (bound < 0) {
      trivially_infeasible_ = true;  // s_u - s_u <= negative
    }
    return;  // otherwise vacuous
  }
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(u)) << 32) |
      static_cast<std::uint32_t>(v);
  auto [it, inserted] = constraint_index_.try_emplace(key, constraints_.size());
  if (inserted) {
    constraints_.push_back(constraint{u, v, bound});
  } else {
    constraint& existing = constraints_[it->second];
    existing.bound = std::min(existing.bound, bound);
  }
}

void system::set_constraint(var_id u, var_id v, std::int64_t bound) {
  ISDC_CHECK(u >= 0 && u < num_vars_ && v >= 0 && v < num_vars_,
             "constraint variables out of range: " << u << ", " << v);
  if (u == v) {
    if (bound < 0) {
      trivially_infeasible_ = true;  // s_u - s_u <= negative
    }
    return;  // otherwise vacuous
  }
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(u)) << 32) |
      static_cast<std::uint32_t>(v);
  auto [it, inserted] = constraint_index_.try_emplace(key, constraints_.size());
  if (inserted) {
    constraints_.push_back(constraint{u, v, bound});
  } else {
    constraints_[it->second].bound = bound;
  }
}

std::optional<std::int64_t> system::bound_for(var_id u, var_id v) const {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(u)) << 32) |
      static_cast<std::uint32_t>(v);
  const auto it = constraint_index_.find(key);
  if (it == constraint_index_.end()) {
    return std::nullopt;
  }
  return constraints_[it->second].bound;
}

void system::add_objective(var_id v, std::int64_t coeff) {
  ISDC_CHECK(v >= 0 && v < num_vars_, "objective variable out of range");
  objective_[static_cast<std::size_t>(v)] += coeff;
}

bool system::satisfied_by(const std::vector<std::int64_t>& values) const {
  ISDC_CHECK(values.size() == static_cast<std::size_t>(num_vars_));
  if (trivially_infeasible_) {
    return false;
  }
  return std::all_of(constraints_.begin(), constraints_.end(),
                     [&values](const constraint& c) {
                       return values[static_cast<std::size_t>(c.u)] -
                                  values[static_cast<std::size_t>(c.v)] <=
                              c.bound;
                     });
}

std::int64_t system::objective_at(
    const std::vector<std::int64_t>& values) const {
  ISDC_CHECK(values.size() == static_cast<std::size_t>(num_vars_));
  std::int64_t total = 0;
  for (int v = 0; v < num_vars_; ++v) {
    total += objective_[static_cast<std::size_t>(v)] *
             values[static_cast<std::size_t>(v)];
  }
  return total;
}

}  // namespace isdc::sdc
