// Exhaustive reference solver used by tests to certify the optimality of
// the min-cost-flow solver on small systems.
#ifndef ISDC_SDC_BRUTE_FORCE_H_
#define ISDC_SDC_BRUTE_FORCE_H_

#include "sdc/system.h"

namespace isdc::sdc {

/// Enumerates every assignment with each variable in [lo, hi] and
/// s_origin = 0, returning the best feasible one. Exponential; for tests
/// with <= ~6 variables only.
solution solve_brute_force(const system& sys, std::int64_t lo,
                           std::int64_t hi, var_id origin = 0);

}  // namespace isdc::sdc

#endif  // ISDC_SDC_BRUTE_FORCE_H_
