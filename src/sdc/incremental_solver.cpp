#include "sdc/incremental_solver.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <utility>

#include "sdc/bellman_ford.h"
#include "support/check.h"

namespace isdc::sdc {

namespace {

constexpr std::int64_t infinite_dist = std::numeric_limits<std::int64_t>::max();
// Uncapacitated forward arcs get "infinite" capacity that no sequence of
// augmentations in these problems can exhaust.
constexpr std::int64_t huge = std::numeric_limits<std::int64_t>::max() / 4;

using pq_item = std::pair<std::int64_t, int>;
using min_heap =
    std::priority_queue<pq_item, std::vector<pq_item>, std::greater<>>;

}  // namespace

incremental_solver::incremental_solver(system sys, var_id origin)
    : sys_(std::move(sys)), origin_(origin) {
  ISDC_CHECK(origin_ >= 0 && origin_ < sys_.num_vars(),
             "origin variable out of range");
}

var_id incremental_solver::add_var() {
  cold_needed_ = true;
  solved_ = false;
  return sys_.add_var();
}

void incremental_solver::tighten(var_id u, var_id v, std::int64_t bound) {
  if (u != v) {
    const auto current = sys_.bound_for(u, v);
    if (current.has_value() && *current <= bound) {
      return;  // not tighter
    }
  }
  set_bound(u, v, bound);
}

void incremental_solver::set_bound(var_id u, var_id v, std::int64_t bound) {
  sys_.set_constraint(u, v, bound);
  solved_ = false;
  if (u == v || cold_needed_) {
    // Self-pairs never enter the network (the system records trivial
    // infeasibility); with no warm state there is nothing to maintain.
    return;
  }
  const auto [it, inserted] =
      arc_index_.try_emplace(pack(u, v), static_cast<int>(edges_.size()));
  const int e = it->second;
  if (inserted) {
    add_arc(u, v, bound);
  } else {
    edge& fwd = edges_[static_cast<std::size_t>(e)];
    if (fwd.cost == bound) {
      return;
    }
    if (bound > fwd.cost) {
      // Relaxation: flow on the arc was priced at the old (tighter) bound;
      // cancel it and let the next solve reroute the restored supply.
      const std::int64_t flow = edges_[static_cast<std::size_t>(e ^ 1)].residual;
      if (flow > 0) {
        push(e ^ 1, flow);
        deficit_[static_cast<std::size_t>(u)] -= flow;
        deficit_[static_cast<std::size_t>(v)] += flow;
        ++stats_.flow_cancellations;
      }
    }
    fwd.cost = bound;
    edges_[static_cast<std::size_t>(e ^ 1)].cost = -bound;
  }
  if (reduced_cost(e) < 0) {
    pending_repairs_.insert(e);
  }
}

void incremental_solver::add_objective(var_id v, std::int64_t coeff) {
  sys_.add_objective(v, coeff);
  solved_ = false;
  if (!cold_needed_ && coeff != 0 && v != origin_) {
    // The origin absorbs the balancing remainder (s_origin is pinned), so
    // an objective delta moves supply between v and the origin.
    deficit_[static_cast<std::size_t>(v)] += coeff;
    deficit_[static_cast<std::size_t>(origin_)] -= coeff;
  }
}

void incremental_solver::add_arc(var_id u, var_id v, std::int64_t cost) {
  head_[static_cast<std::size_t>(u)].push_back(static_cast<int>(edges_.size()));
  edges_.push_back(edge{v, huge, cost});
  head_[static_cast<std::size_t>(v)].push_back(static_cast<int>(edges_.size()));
  edges_.push_back(edge{u, 0, -cost});
}

void incremental_solver::push(int e, std::int64_t amount) {
  edges_[static_cast<std::size_t>(e)].residual -= amount;
  edges_[static_cast<std::size_t>(e ^ 1)].residual += amount;
}

std::int64_t incremental_solver::reduced_cost(int e) const {
  const edge& arc = edges_[static_cast<std::size_t>(e)];
  const int from = edges_[static_cast<std::size_t>(e ^ 1)].to;
  return arc.cost + pi_[static_cast<std::size_t>(from)] -
         pi_[static_cast<std::size_t>(arc.to)];
}

solution incremental_solver::fail(solution::status st) {
  cold_needed_ = true;  // partial warm state is not resumable
  cached_ = solution{};
  cached_.st = st;
  solved_ = true;
  return cached_;
}

bool incremental_solver::cold_start() {
  const int n = sys_.num_vars();
  const auto bf = potential_distances(sys_);
  if (!bf.has_value()) {
    return false;
  }
  pi_ = *bf;

  head_.assign(static_cast<std::size_t>(n), {});
  edges_.clear();
  arc_index_.clear();
  pending_repairs_.clear();
  for (const constraint& c : sys_.constraints()) {
    arc_index_.emplace(pack(c.u, c.v), static_cast<int>(edges_.size()));
    add_arc(c.u, c.v, c.bound);
  }

  deficit_.assign(sys_.objective().begin(), sys_.objective().end());
  std::int64_t total = 0;
  for (const std::int64_t c : deficit_) {
    total += c;
  }
  deficit_[static_cast<std::size_t>(origin_)] -= total;

  dist_.resize(static_cast<std::size_t>(n));
  parent_edge_.resize(static_cast<std::size_t>(n));
  settled_.resize(static_cast<std::size_t>(n));
  cold_needed_ = false;
  return true;
}

bool incremental_solver::repair_pending() {
  while (!pending_repairs_.empty()) {
    const int e = *pending_repairs_.begin();
    pending_repairs_.erase(pending_repairs_.begin());
    if (!repair_arc(e)) {
      return false;
    }
  }
  return true;
}

/// Restores dual feasibility after the bound of arc `e` (u -> v) was
/// tightened below its reduced-cost slack. Shortest distances from v
/// within the violation delta either expose a negative residual cycle
/// through `e` (flow must reroute through the tightened constraint: push
/// around the cycle, cancelling flow elsewhere) or prove the duals can be
/// lowered locally (only nodes closer than delta to v move).
bool incremental_solver::repair_arc(int e) {
  bool counted = false;
  for (;;) {
    const std::int64_t delta = -reduced_cost(e);
    if (delta <= 0) {
      return true;  // repaired (or was never violated)
    }
    if (!counted) {
      ++stats_.arcs_repaired;
      counted = true;
    }
    const int u = edges_[static_cast<std::size_t>(e ^ 1)].to;
    const int v = edges_[static_cast<std::size_t>(e)].to;

    std::fill(dist_.begin(), dist_.end(), infinite_dist);
    std::fill(parent_edge_.begin(), parent_edge_.end(), -1);
    std::fill(settled_.begin(), settled_.end(), false);
    min_heap pq;
    dist_[static_cast<std::size_t>(v)] = 0;
    pq.emplace(0, v);

    bool cycle = false;
    while (!pq.empty()) {
      const auto [d, w] = pq.top();
      pq.pop();
      if (d >= delta) {
        break;  // nodes at delta or beyond keep their potential
      }
      if (settled_[static_cast<std::size_t>(w)]) {
        continue;
      }
      settled_[static_cast<std::size_t>(w)] = true;
      if (w == u) {
        cycle = true;  // v reaches u below delta: negative cycle through e
        break;
      }
      for (const int a : head_[static_cast<std::size_t>(w)]) {
        const edge& arc = edges_[static_cast<std::size_t>(a)];
        if (arc.residual <= 0) {
          continue;
        }
        const std::int64_t rc = reduced_cost(a);
        if (rc < 0) {
          continue;  // another pending arc; repaired on its own turn
        }
        const std::int64_t cand = d + rc;
        if (cand < dist_[static_cast<std::size_t>(arc.to)]) {
          dist_[static_cast<std::size_t>(arc.to)] = cand;
          parent_edge_[static_cast<std::size_t>(arc.to)] = a;
          pq.emplace(cand, arc.to);
        }
      }
    }

    if (!cycle) {
      // Settled nodes sit closer than delta to v: lowering their potential
      // by (delta - dist) zeroes the violated arc and keeps every
      // non-pending residual arc non-negative.
      const int n = sys_.num_vars();
      for (int w = 0; w < n; ++w) {
        if (settled_[static_cast<std::size_t>(w)]) {
          pi_[static_cast<std::size_t>(w)] +=
              dist_[static_cast<std::size_t>(w)] - delta;
        }
      }
      return true;
    }

    // The residual path v -> ... -> u closes a negative cycle through e.
    // If it is made of original constraints alone the system itself is
    // infeasible. Otherwise some reverse (flow-carrying) arcs enable it:
    // cancel their flow outright (restoring the endpoint supplies for the
    // SSP phase to reroute) — that removes them from the residual graph
    // while keeping the remaining flow complementary-slack — and retry.
    // Every round removes at least one flow arc, so the loop terminates.
    bool cancelled = false;
    for (int w = u; parent_edge_[static_cast<std::size_t>(w)] != -1;) {
      const int a = parent_edge_[static_cast<std::size_t>(w)];
      if ((a & 1) != 0) {  // reverse arc: paired after its forward arc
        const std::int64_t flow = edges_[static_cast<std::size_t>(a)].residual;
        const int tail = edges_[static_cast<std::size_t>(a)].to;
        const int h = edges_[static_cast<std::size_t>(a ^ 1)].to;
        push(a, flow);
        deficit_[static_cast<std::size_t>(tail)] -= flow;
        deficit_[static_cast<std::size_t>(h)] += flow;
        ++stats_.flow_cancellations;
        cancelled = true;
      }
      w = edges_[static_cast<std::size_t>(a ^ 1)].to;
    }
    if (!cancelled) {
      return false;  // pure-constraint negative cycle: infeasible
    }
  }
}

/// Successive shortest paths over reduced costs: every augmentation fully
/// discharges a source or a sink, so with few outstanding deficits (the
/// warm case) only a few rounds run.
bool incremental_solver::route_deficits() {
  const int n = sys_.num_vars();
  for (;;) {
    std::fill(dist_.begin(), dist_.end(), infinite_dist);
    std::fill(parent_edge_.begin(), parent_edge_.end(), -1);
    std::fill(settled_.begin(), settled_.end(), false);
    min_heap pq;
    bool have_source = false;
    for (int w = 0; w < n; ++w) {
      if (deficit_[static_cast<std::size_t>(w)] < 0) {
        dist_[static_cast<std::size_t>(w)] = 0;
        pq.emplace(0, w);
        have_source = true;
      }
    }
    if (!have_source) {
      return true;  // all supplies routed: flow optimal
    }

    int sink = -1;
    while (!pq.empty()) {
      const auto [d, w] = pq.top();
      pq.pop();
      if (settled_[static_cast<std::size_t>(w)]) {
        continue;
      }
      settled_[static_cast<std::size_t>(w)] = true;
      if (deficit_[static_cast<std::size_t>(w)] > 0) {
        sink = w;
        break;
      }
      for (const int a : head_[static_cast<std::size_t>(w)]) {
        const edge& arc = edges_[static_cast<std::size_t>(a)];
        if (arc.residual <= 0) {
          continue;
        }
        const std::int64_t rc = reduced_cost(a);
        ISDC_CHECK(rc >= 0, "negative reduced cost in Dijkstra");
        const std::int64_t cand = d + rc;
        if (cand < dist_[static_cast<std::size_t>(arc.to)]) {
          dist_[static_cast<std::size_t>(arc.to)] = cand;
          parent_edge_[static_cast<std::size_t>(arc.to)] = a;
          pq.emplace(cand, arc.to);
        }
      }
    }

    if (sink == -1) {
      // A supply cannot reach any demand: the flow (LP dual) is
      // infeasible, so the primal objective is unbounded.
      return false;
    }

    // Potential update keeps all residual reduced costs non-negative.
    const std::int64_t d_sink = dist_[static_cast<std::size_t>(sink)];
    for (int w = 0; w < n; ++w) {
      pi_[static_cast<std::size_t>(w)] +=
          std::min(dist_[static_cast<std::size_t>(w)], d_sink);
    }

    // Walk back to the source this path started from, capping the push by
    // the path's residual capacity: a shortest path may travel reverse
    // (flow-cancelling) arcs, whose capacity is the flow they carry.
    std::int64_t amount = deficit_[static_cast<std::size_t>(sink)];
    int w = sink;
    while (parent_edge_[static_cast<std::size_t>(w)] != -1) {
      const int a = parent_edge_[static_cast<std::size_t>(w)];
      amount = std::min(amount, edges_[static_cast<std::size_t>(a)].residual);
      w = edges_[static_cast<std::size_t>(a ^ 1)].to;
    }
    amount = std::min(amount, -deficit_[static_cast<std::size_t>(w)]);
    ISDC_CHECK(amount > 0, "degenerate augmentation");

    deficit_[static_cast<std::size_t>(w)] += amount;
    deficit_[static_cast<std::size_t>(sink)] -= amount;
    for (int x = sink; parent_edge_[static_cast<std::size_t>(x)] != -1;) {
      const int a = parent_edge_[static_cast<std::size_t>(x)];
      push(a, amount);
      x = edges_[static_cast<std::size_t>(a ^ 1)].to;
    }
    ++stats_.ssp_paths;
  }
}

/// Reads the canonical optimum out of the optimal flow: shortest distances
/// from the origin over the residual network span the optimal face (the
/// constraints plus complementary-slackness equalities on flow arcs), and
/// -dist is its unique component-wise minimal point — independent of how
/// the solver reached optimality, which is what makes warm and cold solves
/// bit-identical. Variables with no constraints at all get 0; if some
/// *constrained* variable cannot reach the origin the solver returns the
/// raw potential assignment instead (optimal, but path-dependent).
void incremental_solver::extract_solution() {
  const int n = sys_.num_vars();

  std::fill(dist_.begin(), dist_.end(), infinite_dist);
  std::fill(settled_.begin(), settled_.end(), false);
  min_heap pq;
  dist_[static_cast<std::size_t>(origin_)] = 0;
  pq.emplace(0, origin_);
  while (!pq.empty()) {
    const auto [d, w] = pq.top();
    pq.pop();
    if (settled_[static_cast<std::size_t>(w)]) {
      continue;
    }
    settled_[static_cast<std::size_t>(w)] = true;
    for (const int a : head_[static_cast<std::size_t>(w)]) {
      const edge& arc = edges_[static_cast<std::size_t>(a)];
      if (arc.residual <= 0) {
        continue;
      }
      const std::int64_t cand = d + reduced_cost(a);
      if (cand < dist_[static_cast<std::size_t>(arc.to)]) {
        dist_[static_cast<std::size_t>(arc.to)] = cand;
        pq.emplace(cand, arc.to);
      }
    }
  }

  bool canonical = true;
  for (int w = 0; w < n; ++w) {
    if (!head_[static_cast<std::size_t>(w)].empty() &&
        dist_[static_cast<std::size_t>(w)] == infinite_dist) {
      canonical = false;
      break;
    }
  }

  cached_ = solution{};
  cached_.st = solution::status::optimal;
  cached_.values.resize(static_cast<std::size_t>(n));
  const std::int64_t pi_origin = pi_[static_cast<std::size_t>(origin_)];
  for (int w = 0; w < n; ++w) {
    if (head_[static_cast<std::size_t>(w)].empty()) {
      cached_.values[static_cast<std::size_t>(w)] = 0;
    } else if (canonical) {
      // True distance = reduced distance de-potentialed.
      cached_.values[static_cast<std::size_t>(w)] =
          -(dist_[static_cast<std::size_t>(w)] +
            pi_[static_cast<std::size_t>(w)] - pi_origin);
    } else {
      cached_.values[static_cast<std::size_t>(w)] =
          -(pi_[static_cast<std::size_t>(w)] - pi_origin);
    }
  }
  ISDC_CHECK(sys_.satisfied_by(cached_.values),
             "solver produced an infeasible assignment");
  cached_.objective = sys_.objective_at(cached_.values);
}

solution incremental_solver::solve() {
  if (solved_) {
    return cached_;
  }
  if (sys_.trivially_infeasible()) {
    return fail(solution::status::infeasible);
  }
  if (cold_needed_) {
    if (!cold_start()) {
      return fail(solution::status::infeasible);
    }
    ++stats_.cold_solves;
  } else {
    ++stats_.warm_solves;
    if (!repair_pending()) {
      return fail(solution::status::infeasible);
    }
  }
  if (!route_deficits()) {
    return fail(solution::status::unbounded);
  }
  extract_solution();
  solved_ = true;
  return cached_;
}

}  // namespace isdc::sdc
