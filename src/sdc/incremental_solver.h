// Stateful SDC solver for iterative re-solving.
//
// ISDC re-solves the same scheduling LP every iteration with bounds that
// changed in only a handful of entries. `incremental_solver` exploits that:
// it owns the min-cost-flow network that is dual to the SDC LP and keeps
// the node potentials, arc flows and residual capacities *between* solves,
// so a re-solve after a few `set_bound` calls costs a handful of local
// dual repairs plus a few augmenting paths instead of a full
// Bellman-Ford + successive-shortest-paths run.
//
// Incremental contract:
//  - `tighten` / `set_bound` / `add_objective` may be called in any order
//    between solves; the next `solve()` is warm whenever the variable set
//    is unchanged.
//  - Tightening an arc's bound can make its reduced cost negative; the
//    solver repairs the duals with a Dijkstra bounded by the violation
//    (only nodes within that distance of the arc head are touched) and
//    cancels flow around negative residual cycles when the existing flow
//    must reroute through the tightened constraint.
//  - Relaxing an arc that carries flow cancels that flow (restoring the
//    endpoint supplies) and lets the next solve reroute it.
//  - `add_var` is a structural change: the next solve is cold. Likewise a
//    solve that ends infeasible or unbounded invalidates the warm state,
//    and the solver falls back to a cold rebuild on the next call.
//
// Determinism: warm and cold solves of the same system return bit-identical
// assignments. Both extract the *component-wise minimal* optimal solution
// (the optimal face of an SDC is a lattice, so that point is unique and
// independent of the path the solver took to optimality) whenever every
// constrained variable is reachable from the origin in the residual
// network — always true for the scheduler's systems. Unreachable
// constrained variables (possible in hand-built systems) fall back to the
// raw potential assignment, which is optimal but solver-path dependent.
#ifndef ISDC_SDC_INCREMENTAL_SOLVER_H_
#define ISDC_SDC_INCREMENTAL_SOLVER_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sdc/system.h"

namespace isdc::sdc {

class incremental_solver {
public:
  /// Cumulative counters across the solver's lifetime.
  struct solver_stats {
    std::uint64_t cold_solves = 0;  ///< full rebuilds (first solve, add_var)
    std::uint64_t warm_solves = 0;  ///< solves resumed from kept state
    std::uint64_t ssp_paths = 0;    ///< augmenting paths routed
    std::uint64_t arcs_repaired = 0;       ///< tightened arcs needing dual repair
    std::uint64_t flow_cancellations = 0;  ///< flow removed from changed arcs
  };

  /// Takes ownership of `sys`; `origin` is the variable pinned to 0.
  explicit incremental_solver(system sys, var_id origin = 0);

  /// Appends a variable (structural change: next solve is cold).
  var_id add_var();

  /// Lowers the bound of `s_u - s_v <= bound` (no-op if not tighter),
  /// adding the constraint if the pair is new.
  void tighten(var_id u, var_id v, std::int64_t bound);

  /// Sets the bound of `s_u - s_v <= bound` in either direction,
  /// adding the constraint if the pair is new. Raising a bound to a value
  /// implied by other constraints effectively retires it.
  void set_bound(var_id u, var_id v, std::int64_t bound);

  /// Adds `coeff * s_v` to the objective (accumulates, like
  /// system::add_objective).
  void add_objective(var_id v, std::int64_t coeff);

  /// Solves the current system with s_origin fixed to 0. Returns the
  /// cached solution unchanged when nothing was mutated since the last
  /// solve.
  solution solve();

  /// The system as mutated so far (retired constraints keep their relaxed
  /// bounds).
  const system& current_system() const { return sys_; }

  var_id origin() const { return origin_; }
  const solver_stats& stats() const { return stats_; }

private:
  /// Residual-graph edge. Paired storage: edge i and i^1 are reverses.
  struct edge {
    int to = 0;
    std::int64_t residual = 0;
    std::int64_t cost = 0;
  };

  static std::uint64_t pack(var_id u, var_id v) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(u)) << 32) |
           static_cast<std::uint32_t>(v);
  }

  void add_arc(var_id u, var_id v, std::int64_t cost);
  void push(int e, std::int64_t amount);
  std::int64_t reduced_cost(int e) const;

  bool cold_start();          // rebuild + Bellman-Ford; false on infeasible
  bool repair_pending();      // restore dual feasibility; false on infeasible
  bool repair_arc(int e);     // one tightened arc; false on infeasible
  bool route_deficits();      // successive shortest paths; false on unbounded
  void extract_solution();    // canonical minimal optimum -> cached_

  solution fail(solution::status st);

  system sys_;
  var_id origin_ = 0;
  solver_stats stats_;

  bool cold_needed_ = true;
  bool solved_ = false;
  solution cached_;

  std::vector<std::vector<int>> head_;  ///< incident edge ids per node
  std::vector<edge> edges_;
  std::unordered_map<std::uint64_t, int> arc_index_;  ///< (u,v) -> edge id
  std::vector<std::int64_t> pi_;        ///< dual potentials
  std::vector<std::int64_t> deficit_;   ///< un-routed supply per node
  std::unordered_set<int> pending_repairs_;  ///< arcs possibly dual-infeasible

  // Scratch reused across Dijkstra passes.
  std::vector<std::int64_t> dist_;
  std::vector<int> parent_edge_;
  std::vector<bool> settled_;
};

}  // namespace isdc::sdc

#endif  // ISDC_SDC_INCREMENTAL_SOLVER_H_
