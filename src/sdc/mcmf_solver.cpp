#include "sdc/mcmf_solver.h"

#include "sdc/incremental_solver.h"

namespace isdc::sdc {

solution solve(const system& sys, var_id origin) {
  incremental_solver solver(sys, origin);
  return solver.solve();
}

}  // namespace isdc::sdc
