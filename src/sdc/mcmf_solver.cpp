#include "sdc/mcmf_solver.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <vector>

#include "sdc/bellman_ford.h"
#include "support/check.h"

namespace isdc::sdc {

namespace {

constexpr std::int64_t infinite_dist = std::numeric_limits<std::int64_t>::max();

/// Residual-graph edge. Paired storage: edge i and i^1 are reverses.
struct edge {
  int to = 0;
  std::int64_t residual = 0;  // remaining capacity
  std::int64_t cost = 0;
};

class flow_network {
public:
  explicit flow_network(int num_nodes)
      : head_(static_cast<std::size_t>(num_nodes)) {}

  void add_arc(int u, int v, std::int64_t cost) {
    // Uncapacitated forward arc; "infinite" capacity that no sequence of
    // augmentations in this problem can exhaust.
    constexpr std::int64_t huge = std::numeric_limits<std::int64_t>::max() / 4;
    head_[static_cast<std::size_t>(u)].push_back(static_cast<int>(edges_.size()));
    edges_.push_back(edge{v, huge, cost});
    head_[static_cast<std::size_t>(v)].push_back(static_cast<int>(edges_.size()));
    edges_.push_back(edge{u, 0, -cost});
  }

  const std::vector<int>& arcs_from(int u) const {
    return head_[static_cast<std::size_t>(u)];
  }
  edge& at(int e) { return edges_[static_cast<std::size_t>(e)]; }
  const edge& at(int e) const { return edges_[static_cast<std::size_t>(e)]; }

  void push(int e, std::int64_t amount) {
    edges_[static_cast<std::size_t>(e)].residual -= amount;
    edges_[static_cast<std::size_t>(e ^ 1)].residual += amount;
  }

private:
  std::vector<std::vector<int>> head_;
  std::vector<edge> edges_;
};

}  // namespace

solution solve(const system& sys, var_id origin) {
  solution result;
  const int n = sys.num_vars();
  ISDC_CHECK(origin >= 0 && origin < n, "origin variable out of range");

  // Feasibility + initial potentials.
  const auto bf = potential_distances(sys);
  if (!bf.has_value()) {
    result.st = solution::status::infeasible;
    return result;
  }

  // Node supplies: node w must absorb net inflow c_w; the origin absorbs
  // the balancing remainder (equivalent to pinning s_origin = 0).
  std::vector<std::int64_t> deficit(sys.objective().begin(),
                                    sys.objective().end());
  std::int64_t total = 0;
  for (std::int64_t c : deficit) {
    total += c;
  }
  deficit[static_cast<std::size_t>(origin)] -= total;

  const bool any_objective =
      std::any_of(deficit.begin(), deficit.end(),
                  [](std::int64_t d) { return d != 0; });

  std::vector<std::int64_t> pi = *bf;  // reduced-cost potentials

  if (any_objective) {
    flow_network net(n);
    for (const constraint& c : sys.constraints()) {
      net.add_arc(c.u, c.v, c.bound);
    }

    // Successive shortest paths: every augmentation fully discharges a
    // source or a sink, so there are at most O(n) rounds.
    std::vector<std::int64_t> dist(static_cast<std::size_t>(n));
    std::vector<int> parent_edge(static_cast<std::size_t>(n));
    std::vector<bool> settled(static_cast<std::size_t>(n));
    for (;;) {
      // Multi-source Dijkstra from all remaining sources (deficit < 0).
      std::fill(dist.begin(), dist.end(), infinite_dist);
      std::fill(parent_edge.begin(), parent_edge.end(), -1);
      std::fill(settled.begin(), settled.end(), false);
      using item = std::pair<std::int64_t, int>;
      std::priority_queue<item, std::vector<item>, std::greater<>> pq;
      bool have_source = false;
      for (int w = 0; w < n; ++w) {
        if (deficit[static_cast<std::size_t>(w)] < 0) {
          dist[static_cast<std::size_t>(w)] = 0;
          pq.emplace(0, w);
          have_source = true;
        }
      }
      if (!have_source) {
        break;  // all supplies routed: flow optimal
      }

      int sink = -1;
      while (!pq.empty()) {
        const auto [d, u] = pq.top();
        pq.pop();
        if (settled[static_cast<std::size_t>(u)]) {
          continue;
        }
        settled[static_cast<std::size_t>(u)] = true;
        if (deficit[static_cast<std::size_t>(u)] > 0) {
          sink = u;
          break;
        }
        for (int e : net.arcs_from(u)) {
          const edge& arc = net.at(e);
          if (arc.residual <= 0) {
            continue;
          }
          const std::int64_t reduced =
              arc.cost + pi[static_cast<std::size_t>(u)] -
              pi[static_cast<std::size_t>(arc.to)];
          ISDC_CHECK(reduced >= 0, "negative reduced cost in Dijkstra");
          const std::int64_t cand = d + reduced;
          if (cand < dist[static_cast<std::size_t>(arc.to)]) {
            dist[static_cast<std::size_t>(arc.to)] = cand;
            parent_edge[static_cast<std::size_t>(arc.to)] = e;
            pq.emplace(cand, arc.to);
          }
        }
      }

      if (sink == -1) {
        // A supply cannot reach any demand: the flow (LP dual) is
        // infeasible, so the primal objective is unbounded.
        result.st = solution::status::unbounded;
        return result;
      }

      // Potential update keeps all residual reduced costs non-negative.
      const std::int64_t d_sink = dist[static_cast<std::size_t>(sink)];
      for (int w = 0; w < n; ++w) {
        pi[static_cast<std::size_t>(w)] +=
            std::min(dist[static_cast<std::size_t>(w)], d_sink);
      }

      // Walk back to the source this path started from.
      std::int64_t amount = deficit[static_cast<std::size_t>(sink)];
      int w = sink;
      while (parent_edge[static_cast<std::size_t>(w)] != -1) {
        w = net.at(parent_edge[static_cast<std::size_t>(w)] ^ 1).to;
      }
      amount = std::min(amount, -deficit[static_cast<std::size_t>(w)]);
      ISDC_CHECK(amount > 0, "degenerate augmentation");

      deficit[static_cast<std::size_t>(w)] += amount;
      deficit[static_cast<std::size_t>(sink)] -= amount;
      int x = sink;
      while (parent_edge[static_cast<std::size_t>(x)] != -1) {
        const int e = parent_edge[static_cast<std::size_t>(x)];
        net.push(e, amount);
        x = net.at(e ^ 1).to;
      }
    }
  }

  // Optimal primal assignment from potentials: s_w = -pi_w, normalized so
  // s_origin = 0 (the problem is translation-invariant once balanced).
  result.st = solution::status::optimal;
  result.values.resize(static_cast<std::size_t>(n));
  const std::int64_t base = -pi[static_cast<std::size_t>(origin)];
  for (int w = 0; w < n; ++w) {
    result.values[static_cast<std::size_t>(w)] =
        -pi[static_cast<std::size_t>(w)] - base;
  }
  ISDC_CHECK(sys.satisfied_by(result.values),
             "solver produced an infeasible assignment");
  result.objective = sys.objective_at(result.values);
  return result;
}

}  // namespace isdc::sdc
