// Bellman-Ford feasibility for difference-constraint systems.
//
// A constraint `s_u - s_v <= b` becomes an arc u -> v with weight b in the
// "potential graph" convention used here: distances from a virtual source
// satisfy dist_v <= dist_u + b, so s_w := -dist_w is a feasible assignment.
// A negative cycle certifies infeasibility. The distances also serve as the
// initial node potentials of the min-cost-flow solver.
#ifndef ISDC_SDC_BELLMAN_FORD_H_
#define ISDC_SDC_BELLMAN_FORD_H_

#include <optional>
#include <vector>

#include "sdc/system.h"

namespace isdc::sdc {

/// Shortest distances from a virtual source connected to every variable
/// with weight 0, or nullopt when a negative cycle exists (infeasible SDC).
std::optional<std::vector<std::int64_t>> potential_distances(
    const system& sys);

/// Any feasible assignment (s_w = -dist_w, shifted so min value is 0),
/// or an infeasible solution.
solution find_feasible(const system& sys);

}  // namespace isdc::sdc

#endif  // ISDC_SDC_BELLMAN_FORD_H_
