// Optimal LP solver for difference-constraint systems.
//
// The LP  `min c's  s.t.  s_u - s_v <= b_uv`  is the dual of an
// uncapacitated min-cost flow: each constraint becomes an arc u -> v with
// cost b_uv, and each variable w becomes a node that must absorb a net
// inflow of c_w. The flow is solved by successive shortest paths over
// reduced costs (Bellman-Ford warm start, then Dijkstra) and the optimal
// primal assignment is read back from the node potentials; total
// unimodularity guarantees it is integral.
//
// The origin variable is treated as the schedule's time reference: its
// objective coefficient is internally adjusted so supplies balance, which
// is exactly equivalent to fixing s_origin = 0.
//
// `solve` below is the one-shot entry point: a thin wrapper over a fresh
// sdc::incremental_solver (incremental_solver.h), which is the real
// implementation and additionally supports warm-started re-solves after
// bound/objective mutations. Both return the same canonical
// (component-wise minimal) optimum, so one-shot and incremental callers
// see bit-identical assignments.
#ifndef ISDC_SDC_MCMF_SOLVER_H_
#define ISDC_SDC_MCMF_SOLVER_H_

#include "sdc/system.h"

namespace isdc::sdc {

/// Solves `min c's` over `sys` with s_origin fixed to 0.
/// Returns optimal / infeasible / unbounded.
solution solve(const system& sys, var_id origin = 0);

}  // namespace isdc::sdc

#endif  // ISDC_SDC_MCMF_SOLVER_H_
