// Runtime checking macros.
//
// ISDC_CHECK verifies a precondition/invariant and throws isdc::check_error
// with source location on failure. Checks stay enabled in release builds:
// the library is the reference implementation of a paper and silent
// corruption is worse than the (measured, negligible) branch cost.
#ifndef ISDC_SUPPORT_CHECK_H_
#define ISDC_SUPPORT_CHECK_H_

#include <sstream>
#include <stdexcept>
#include <string>

namespace isdc {

/// Error thrown when an ISDC_CHECK fails. Carries "file:line: message".
class check_error : public std::logic_error {
public:
  explicit check_error(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void check_failed(const char* file, int line, const char* expr,
                               const std::string& message);
}  // namespace detail

}  // namespace isdc

// Fails with check_error when `cond` is false. The optional stream-style
// message is only evaluated on failure.
#define ISDC_CHECK(cond, ...)                                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream isdc_check_os_;                                   \
      __VA_OPT__(isdc_check_os_ << __VA_ARGS__;)                           \
      ::isdc::detail::check_failed(__FILE__, __LINE__, #cond,              \
                                   isdc_check_os_.str());                  \
    }                                                                      \
  } while (false)

// Marks unreachable code paths.
#define ISDC_UNREACHABLE(msg)                                              \
  ::isdc::detail::check_failed(__FILE__, __LINE__, "unreachable", msg)

#endif  // ISDC_SUPPORT_CHECK_H_
