// FNV-1a 64-bit hashing, shared by the structural fingerprints (IR graph,
// subgraph member sets, cache keys) so the constants and mixing loop live
// in exactly one place.
#ifndef ISDC_SUPPORT_HASH_H_
#define ISDC_SUPPORT_HASH_H_

#include <cstdint>
#include <string_view>

namespace isdc {

/// Incremental FNV-1a over 64-bit words.
class fnv1a64 {
public:
  fnv1a64& mix(std::uint64_t v) {
    h_ ^= v;
    h_ *= prime;
    return *this;
  }

  fnv1a64& mix(std::string_view s) {
    for (const char c : s) {
      mix(static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
    }
    return *this;
  }

  std::uint64_t value() const { return h_; }

private:
  static constexpr std::uint64_t offset_basis = 1469598103934665603ull;
  static constexpr std::uint64_t prime = 1099511628211ull;

  std::uint64_t h_ = offset_basis;
};

}  // namespace isdc

#endif  // ISDC_SUPPORT_HASH_H_
