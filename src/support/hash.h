// FNV-1a 64-bit hashing, shared by the structural fingerprints (IR graph,
// subgraph member sets, cache keys) so the constants and mixing loop live
// in exactly one place — plus the one true two-word hash combine used for
// composite cache keys.
#ifndef ISDC_SUPPORT_HASH_H_
#define ISDC_SUPPORT_HASH_H_

#include <cstdint>
#include <string_view>

namespace isdc {

/// splitmix64 finalizer: a full-avalanche bijection on 64-bit words.
inline std::uint64_t hash_finalize(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

/// Order-dependent combine of two 64-bit hashes. Each word is avalanched
/// before it is folded in, so hash_combine(a, b) != hash_combine(b, a) and
/// single-bit differences in either input diffuse through the whole key —
/// unlike the classic `seed ^ (v * phi)` fold, where correlated inputs
/// collide along xor-linear subspaces.
inline std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t v) {
  seed = hash_finalize(seed + 0x9e3779b97f4a7c15ull);
  return hash_finalize(seed ^ (v + 0x9e3779b97f4a7c15ull + (seed << 6) +
                               (seed >> 2)));
}

/// Incremental FNV-1a over 64-bit words.
class fnv1a64 {
public:
  fnv1a64& mix(std::uint64_t v) {
    h_ ^= v;
    h_ *= prime;
    return *this;
  }

  fnv1a64& mix(std::string_view s) {
    for (const char c : s) {
      mix(static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
    }
    return *this;
  }

  std::uint64_t value() const { return h_; }

private:
  static constexpr std::uint64_t offset_basis = 1469598103934665603ull;
  static constexpr std::uint64_t prime = 1099511628211ull;

  std::uint64_t h_ = offset_basis;
};

}  // namespace isdc

#endif  // ISDC_SUPPORT_HASH_H_
