// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) for integrity
// checking the persisted evaluation-cache stream. Table-driven,
// header-only; supports incremental chaining by passing the previous value
// back in.
#ifndef ISDC_SUPPORT_CRC32_H_
#define ISDC_SUPPORT_CRC32_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace isdc {

namespace detail {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> crc32_table =
    make_crc32_table();

}  // namespace detail

/// CRC-32 of `size` bytes at `data`, continuing from `crc` (pass the
/// previous return value to checksum a stream incrementally; 0 to start).
/// crc32("123456789") == 0xCBF43926.
inline std::uint32_t crc32(const void* data, std::size_t size,
                           std::uint32_t crc = 0) {
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (std::size_t i = 0; i < size; ++i) {
    crc = detail::crc32_table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace isdc

#endif  // ISDC_SUPPORT_CRC32_H_
