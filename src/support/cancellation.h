// Cooperative cancellation with optional deadlines. A token is a cheap
// value handle onto shared state; holders poll cancelled() at natural
// checkpoints (the engine driver checks between iterations, the async
// dispatch path checks before each downstream call) and wind down
// gracefully — draining in-flight work, returning the best result so far —
// instead of unwinding through an exception.
//
// Tokens link parent -> child: a fleet holds one run-wide token and hands
// each job a child, so cancelling the fleet cancels every job while a
// job's own deadline (fleet_options::job_budget_ms) never touches its
// siblings. A default-constructed token is inert (cancelled() is always
// false, costs one null check), so APIs can take tokens unconditionally.
#ifndef ISDC_SUPPORT_CANCELLATION_H_
#define ISDC_SUPPORT_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>

namespace isdc {

/// Thrown (or carried in an arrival's exception_ptr) by paths that must
/// abort a blocking operation on cancellation; consumers treat it as "no
/// result", never as a failure.
struct cancelled_error : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class cancellation_token {
public:
  /// Inert token: never cancelled, no allocation.
  cancellation_token() = default;

  static cancellation_token make() {
    cancellation_token t;
    t.state_ = std::make_shared<state>();
    return t;
  }

  /// A linked child: cancelled when this token is, or when its own flag or
  /// deadline fires. Cancelling the child never affects the parent.
  /// Calling child() on an inert token yields an independent valid token.
  cancellation_token child() const {
    cancellation_token t;
    t.state_ = std::make_shared<state>();
    t.state_->parent = state_;
    return t;
  }

  bool valid() const { return state_ != nullptr; }

  /// No-op on an inert token.
  void request_cancel() const {
    if (state_ != nullptr) {
      state_->flag.store(true, std::memory_order_relaxed);
    }
  }

  /// Arms a wall-clock deadline `ms` from now; <= 0 or inert is a no-op.
  void set_deadline_after(double ms) const {
    if (state_ == nullptr || ms <= 0.0) {
      return;
    }
    const auto when =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(ms));
    state_->deadline.store(when.time_since_epoch().count(),
                           std::memory_order_relaxed);
  }

  bool cancelled() const {
    for (const state* s = state_.get(); s != nullptr; s = s->parent.get()) {
      if (s->flag.load(std::memory_order_relaxed)) {
        return true;
      }
      const auto d = s->deadline.load(std::memory_order_relaxed);
      if (d != 0 &&
          std::chrono::steady_clock::now().time_since_epoch().count() >= d) {
        return true;
      }
    }
    return false;
  }

private:
  struct state {
    std::atomic<bool> flag{false};
    std::atomic<std::chrono::steady_clock::rep> deadline{0};
    std::shared_ptr<const state> parent;
  };
  std::shared_ptr<state> state_;
};

}  // namespace isdc

#endif  // ISDC_SUPPORT_CANCELLATION_H_
