// Deterministic pseudo-random number generation (xoshiro256**).
//
// All randomized components of the library (workload generators, simulation
// pattern generation, schedule-space sweeps) take an explicit rng so that
// every experiment is reproducible from a seed.
#ifndef ISDC_SUPPORT_RNG_H_
#define ISDC_SUPPORT_RNG_H_

#include <cstdint>

namespace isdc {

/// xoshiro256** by Blackman & Vigna; small, fast and high quality.
class rng {
public:
  explicit rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // splitmix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit word.
  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be positive.
  std::uint64_t next_below(std::uint64_t bound) {
    // Lemire-style rejection-free reduction is overkill here; modulo bias
    // is negligible for the bounds used in this library.
    return next() % bound;
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw.
  bool next_bool(double p_true = 0.5) { return next_double() < p_true; }

private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace isdc

#endif  // ISDC_SUPPORT_RNG_H_
