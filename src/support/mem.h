// Process memory observability: peak and current resident set size, used
// by the memory-budgeted scheduling path (core::isdc_options::
// memory_budget_mb), per-job fleet reporting and the bench JSON artifacts.
#ifndef ISDC_SUPPORT_MEM_H_
#define ISDC_SUPPORT_MEM_H_

#include <cstdint>
#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

namespace isdc {

/// Peak resident set size of this process in KiB (ru_maxrss is KiB on
/// Linux, bytes on macOS — normalized here); -1 where unsupported. The
/// kernel's high-water mark: monotone over the process lifetime, so a
/// sample taken when a job finishes bounds that job's footprint from
/// above.
inline std::int64_t peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
#if defined(__APPLE__)
    return static_cast<std::int64_t>(usage.ru_maxrss) / 1024;
#else
    return static_cast<std::int64_t>(usage.ru_maxrss);
#endif
  }
#endif
  return -1;
}

/// Current resident set size in KiB via /proc/self/statm; -1 where
/// unsupported (non-Linux).
inline std::int64_t current_rss_kb() {
#if defined(__linux__)
  if (std::FILE* f = std::fopen("/proc/self/statm", "r")) {
    long total = 0;
    long resident = 0;
    const int read = std::fscanf(f, "%ld %ld", &total, &resident);
    std::fclose(f);
    if (read == 2) {
      static const long page_kb = sysconf(_SC_PAGESIZE) / 1024;  // statm
                                                                 // is pages
      return static_cast<std::int64_t>(resident) * page_kb;
    }
  }
#endif
  return -1;
}

}  // namespace isdc

#endif  // ISDC_SUPPORT_MEM_H_
