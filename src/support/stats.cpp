#include "support/stats.h"

#include <cmath>

#include "support/check.h"

namespace isdc {

double mean(std::span<const double> xs) {
  if (xs.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double x : xs) {
    sum += x;
  }
  return sum / static_cast<double>(xs.size());
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) {
    return 0.0;
  }
  double log_sum = 0.0;
  for (double x : xs) {
    ISDC_CHECK(x > 0.0, "geomean requires positive values, got " << x);
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  ISDC_CHECK(xs.size() == ys.size());
  const std::size_t n = xs.size();
  if (n < 2) {
    return 0.0;
  }
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) {
    return 0.0;
  }
  return sxy / std::sqrt(sxx * syy);
}

linear_fit_result linear_fit(std::span<const double> xs,
                             std::span<const double> ys) {
  ISDC_CHECK(xs.size() == ys.size());
  linear_fit_result fit;
  const std::size_t n = xs.size();
  if (n < 2) {
    return fit;
  }
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
  }
  if (sxx == 0.0) {
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  return fit;
}

double mean_relative_error(std::span<const double> estimated,
                           std::span<const double> reference) {
  ISDC_CHECK(estimated.size() == reference.size());
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < estimated.size(); ++i) {
    if (reference[i] != 0.0) {
      sum += std::abs(estimated[i] - reference[i]) / std::abs(reference[i]);
      ++count;
    }
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

}  // namespace isdc
