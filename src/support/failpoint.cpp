#include "support/failpoint.h"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "support/hash.h"

namespace isdc::failpoint {

namespace detail {
std::atomic<bool> armed_flag{false};
}  // namespace detail

namespace {

struct site_config {
  std::string site;
  std::uint64_t site_hash = 0;
  kind fault = kind::none;
  double p = 1.0;            ///< per-call probability (when no n/every)
  std::uint64_t n = 0;       ///< fire exactly on this 1-based call
  std::uint64_t every = 0;   ///< fire on every multiple of this call index
  std::atomic<std::uint64_t> calls{0};
  std::atomic<std::uint64_t> fires{0};
};

struct schedule {
  std::string spec;
  std::uint64_t seed = 0;
  // Stable addresses: evaluate() holds a shared_ptr to the schedule and
  // bumps site counters without the registry lock.
  std::vector<std::unique_ptr<site_config>> sites;
};

// The registry lock only guards the shared_ptr swap; evaluate() copies the
// pointer out and works on the immutable schedule (counters are atomic).
std::mutex registry_mu;
std::shared_ptr<schedule> current_schedule;

std::shared_ptr<schedule> snapshot() {
  std::lock_guard<std::mutex> lk(registry_mu);
  return current_schedule;
}

[[noreturn]] void spec_error(const std::string& what,
                             const std::string& spec) {
  throw std::runtime_error("failpoint spec error: " + what + " in '" + spec +
                           "'");
}

kind parse_kind(std::string_view text, const std::string& spec) {
  if (text == "fail") {
    return kind::fail;
  }
  if (text == "timeout") {
    return kind::timeout;
  }
  if (text == "garbage") {
    return kind::garbage;
  }
  if (text == "partial") {
    return kind::partial;
  }
  spec_error("unknown fault kind '" + std::string(text) +
                 "' (known: fail, timeout, garbage, partial)",
             spec);
}

std::uint64_t parse_u64(std::string_view text, const std::string& what,
                        const std::string& spec) {
  if (text.empty()) {
    spec_error("empty " + what, spec);
  }
  std::uint64_t v = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      spec_error(what + " '" + std::string(text) + "' is not an integer",
                 spec);
    }
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

double parse_probability(std::string_view text, const std::string& spec) {
  char* end = nullptr;
  const std::string copy(text);
  const double v = std::strtod(copy.c_str(), &end);
  if (end == nullptr || *end != '\0' || copy.empty() || v < 0.0 || v > 1.0) {
    spec_error("probability '" + copy + "' is not in [0,1]", spec);
  }
  return v;
}

void parse_triggers(std::string_view text, site_config& site,
                    const std::string& spec) {
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i != text.size() && text[i] != ',') {
      continue;
    }
    const std::string_view trig = text.substr(start, i - start);
    start = i + 1;
    if (trig.rfind("p=", 0) == 0) {
      site.p = parse_probability(trig.substr(2), spec);
    } else if (trig.rfind("n=", 0) == 0) {
      site.n = parse_u64(trig.substr(2), "trigger count", spec);
    } else if (trig.rfind("every=", 0) == 0) {
      site.every = parse_u64(trig.substr(6), "trigger period", spec);
    } else {
      spec_error("unknown trigger '" + std::string(trig) +
                     "' (known: p=, n=, every=)",
                 spec);
    }
  }
}

std::shared_ptr<schedule> parse_schedule(const std::string& spec) {
  auto sched = std::make_shared<schedule>();
  sched->spec = spec;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= spec.size(); ++i) {
    if (i != spec.size() && spec[i] != ';') {
      continue;
    }
    const std::string_view entry =
        std::string_view(spec).substr(start, i - start);
    start = i + 1;
    if (entry.empty()) {
      continue;  // tolerate a trailing ';'
    }
    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      spec_error("malformed entry '" + std::string(entry) +
                     "' (expected site=kind or seed=N)",
                 spec);
    }
    const std::string_view lhs = entry.substr(0, eq);
    const std::string_view rhs = entry.substr(eq + 1);
    if (lhs == "seed") {
      sched->seed = parse_u64(rhs, "seed", spec);
      continue;
    }
    auto site = std::make_unique<site_config>();
    site->site = std::string(lhs);
    site->site_hash = fnv1a64().mix(lhs).value();
    const std::size_t at = rhs.find('@');
    site->fault = parse_kind(rhs.substr(0, at), spec);
    if (at != std::string_view::npos) {
      parse_triggers(rhs.substr(at + 1), *site, spec);
    }
    sched->sites.push_back(std::move(site));
  }
  return sched;
}

}  // namespace

namespace detail {

kind evaluate(std::string_view site) {
  const std::shared_ptr<schedule> sched = snapshot();
  if (sched == nullptr) {
    return kind::none;
  }
  for (const auto& s : sched->sites) {
    if (s->site != site) {
      continue;
    }
    const std::uint64_t call =
        s->calls.fetch_add(1, std::memory_order_relaxed) + 1;  // 1-based
    bool fire = false;
    if (s->n > 0) {
      fire = call == s->n;
    } else if (s->every > 0) {
      fire = call % s->every == 0;
    } else if (s->p >= 1.0) {
      fire = true;
    } else {
      // Deterministic in (seed, site, call index): no shared RNG stream,
      // so thread interleavings and other sites cannot perturb it.
      const std::uint64_t u =
          hash_combine(hash_combine(sched->seed, s->site_hash), call);
      fire = static_cast<double>(u >> 11) * 0x1.0p-53 < s->p;
    }
    if (fire) {
      s->fires.fetch_add(1, std::memory_order_relaxed);
      return s->fault;
    }
    return kind::none;
  }
  return kind::none;
}

}  // namespace detail

std::string_view kind_name(kind k) {
  switch (k) {
    case kind::none:
      return "none";
    case kind::fail:
      return "fail";
    case kind::timeout:
      return "timeout";
    case kind::garbage:
      return "garbage";
    case kind::partial:
      return "partial";
  }
  return "?";
}

void arm(const std::string& spec) {
  std::shared_ptr<schedule> sched = parse_schedule(spec);  // throws first
  {
    std::lock_guard<std::mutex> lk(registry_mu);
    current_schedule = std::move(sched);
  }
  detail::armed_flag.store(true, std::memory_order_relaxed);
}

void disarm() {
  detail::armed_flag.store(false, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(registry_mu);
  current_schedule = nullptr;
}

void arm_from_env() {
  const char* env = std::getenv("ISDC_FAILPOINTS");
  if (env == nullptr || *env == '\0') {
    return;
  }
  try {
    arm(env);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ISDC_FAILPOINTS ignored: %s\n", e.what());
  }
}

std::string armed_spec() {
  const std::shared_ptr<schedule> sched = snapshot();
  return sched != nullptr && armed() ? sched->spec : std::string();
}

std::vector<site_stats> stats() {
  std::vector<site_stats> out;
  const std::shared_ptr<schedule> sched = snapshot();
  if (sched == nullptr) {
    return out;
  }
  out.reserve(sched->sites.size());
  for (const auto& s : sched->sites) {
    out.push_back({s->site, s->fault,
                   s->calls.load(std::memory_order_relaxed),
                   s->fires.load(std::memory_order_relaxed)});
  }
  return out;
}

std::uint64_t total_fires() {
  std::uint64_t total = 0;
  for (const site_stats& s : stats()) {
    total += s.fires;
  }
  return total;
}

namespace {

// Process-start env arming: lets any binary in the repo run under a fault
// schedule (ISDC_FAILPOINTS=...) with no code changes.
const bool env_armed_at_startup = [] {
  arm_from_env();
  return true;
}();

}  // namespace

}  // namespace isdc::failpoint
