// Multi-producer single-consumer completion queue: worker threads push
// finished results, the consumer polls ("what has arrived?") without
// blocking or waits for the next batch. Built for the engine's async
// evaluate stage — downstream measurements stream back into the update
// stage across iterations — but generic over the payload type.
#ifndef ISDC_SUPPORT_COMPLETION_QUEUE_H_
#define ISDC_SUPPORT_COMPLETION_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

namespace isdc {

template <typename T>
class completion_queue {
public:
  /// Enqueues one completed result (any thread).
  void push(T value) {
    {
      std::lock_guard lock(mutex_);
      ready_.push_back(std::move(value));
    }
    cv_.notify_one();
  }

  /// Takes everything that has arrived so far; empty when nothing has.
  /// Never blocks.
  std::vector<T> try_drain() {
    std::lock_guard lock(mutex_);
    return std::exchange(ready_, {});
  }

  /// Blocks until at least one result is available, then takes the whole
  /// batch. Only sound with outstanding producers (the engine guards calls
  /// with its in-flight ticket count).
  std::vector<T> wait_drain() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] { return !ready_.empty(); });
    return std::exchange(ready_, {});
  }

  /// Results currently waiting to be drained.
  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return ready_.size();
  }

private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<T> ready_;
};

}  // namespace isdc

#endif  // ISDC_SUPPORT_COMPLETION_QUEUE_H_
