// Multi-producer single-consumer completion queue: worker threads push
// finished results, the consumer polls ("what has arrived?") without
// blocking or waits for the next batch. Built for the engine's async
// evaluate stage — downstream measurements stream back into the update
// stage across iterations — but generic over the payload type.
#ifndef ISDC_SUPPORT_COMPLETION_QUEUE_H_
#define ISDC_SUPPORT_COMPLETION_QUEUE_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace isdc {

template <typename T>
class completion_queue {
public:
  /// Waits out producers still inside push(): the consumer may have
  /// consumed an arrival — and decided the queue is done — while the
  /// pusher is between enqueuing it and returning. Only a concern when
  /// producers run on a pool that outlives the queue (the engine's shared
  /// fleet dispatch pool); a per-run pool joins its tasks first anyway.
  ~completion_queue() {
    while (pushing_.load(std::memory_order_acquire) > 0) {
      std::this_thread::yield();
    }
  }

  /// Enqueues one completed result (any thread).
  void push(T value) {
    pushing_.fetch_add(1, std::memory_order_acq_rel);
    {
      std::lock_guard lock(mutex_);
      ready_.push_back(std::move(value));
    }
    cv_.notify_one();
    // Last touch of the queue: after this decrement the destructor may
    // proceed.
    pushing_.fetch_sub(1, std::memory_order_release);
  }

  /// Takes everything that has arrived so far; empty when nothing has.
  /// Never blocks.
  std::vector<T> try_drain() {
    std::lock_guard lock(mutex_);
    return std::exchange(ready_, {});
  }

  /// Blocks until at least one result is available, then takes the whole
  /// batch. Only sound with outstanding producers (the engine guards calls
  /// with its in-flight ticket count).
  std::vector<T> wait_drain() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] { return !ready_.empty(); });
    return std::exchange(ready_, {});
  }

  /// Results currently waiting to be drained.
  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return ready_.size();
  }

private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<T> ready_;
  std::atomic<int> pushing_{0};  ///< producers currently inside push()
};

}  // namespace isdc

#endif  // ISDC_SUPPORT_COMPLETION_QUEUE_H_
