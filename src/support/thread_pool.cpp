#include "support/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>

namespace isdc {

thread_pool::thread_pool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

thread_pool::~thread_pool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void thread_pool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping_ and drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void thread_pool::parallel_for(std::size_t count,
                               const std::function<void(std::size_t)>& fn) {
  if (count == 0) {
    return;
  }
  if (count == 1) {
    fn(0);
    return;
  }
  // Chunked dispatch: instead of one heap-allocated packaged_task plus one
  // future per index, min(workers, count-1) helper tasks (and the calling
  // thread) race over an atomic counter. Indices after a failure are
  // skipped; the first exception caught is rethrown once everyone is done.
  //
  // The caller never blocks on the helpers themselves — it drains the
  // counter, then waits only for chunks still mid-loop. A helper that gets
  // a worker late finds the counter exhausted and returns without touching
  // fn, so nested parallel_for calls finish even when every worker is
  // occupied by other parallel_for callers (waiting on helper futures here
  // would deadlock in exactly that case).
  struct state_t {
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex mutex;  ///< guards first_error, active and the cv
    std::condition_variable cv;
    std::size_t active = 0;  ///< chunks currently inside their claim loop
  };
  auto state = std::make_shared<state_t>();
  const auto run_chunk = [state, count, &fn] {
    {
      std::lock_guard lock(state->mutex);
      ++state->active;
    }
    for (;;) {
      if (state->failed.load(std::memory_order_relaxed)) {
        break;
      }
      const std::size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) {
        break;
      }
      try {
        fn(i);
      } catch (...) {
        std::lock_guard lock(state->mutex);
        if (!state->first_error) {
          state->first_error = std::current_exception();
        }
        state->failed.store(true, std::memory_order_relaxed);
      }
    }
    {
      std::lock_guard lock(state->mutex);
      --state->active;
    }
    state->cv.notify_all();
  };
  // The caller occupies one of the configured slots, so total concurrency
  // never exceeds size(): num_threads = 1 still means strictly serial
  // evaluation.
  const std::size_t helpers = std::min(count - 1, size() - 1);
  for (std::size_t i = 0; i < helpers; ++i) {
    submit(run_chunk);  // completion is tracked via state, not the future
  }
  run_chunk();
  // The caller's own chunk only returned once the counter was exhausted
  // (or a failure stopped further claims), so no new fn call can start;
  // wait out the chunks still finishing their current index.
  std::unique_lock lock(state->mutex);
  state->cv.wait(lock, [&state] { return state->active == 0; });
  if (state->first_error) {
    std::rethrow_exception(state->first_error);
  }
}

std::size_t resolve_default_threads(const char* override_value) {
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  if (override_value == nullptr || *override_value == '\0') {
    return hw;
  }
  char* end = nullptr;
  const long parsed = std::strtol(override_value, &end, 10);
  if (end == override_value || *end != '\0' || parsed < 1) {
    return hw;
  }
  return std::min(static_cast<std::size_t>(parsed), hw);
}

thread_pool& default_pool() {
  // Leaked on purpose: worker threads must not be joined during static
  // destruction (other statics they might touch could already be gone),
  // and the pool is idle at exit anyway.
  static thread_pool* pool = new thread_pool(
      resolve_default_threads(std::getenv("ISDC_THREADS")));
  return *pool;
}

}  // namespace isdc
