#include "support/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace isdc {

thread_pool::thread_pool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

thread_pool::~thread_pool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void thread_pool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping_ and drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void thread_pool::parallel_for(std::size_t count,
                               const std::function<void(std::size_t)>& fn) {
  if (count == 0) {
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  for (auto& fut : futures) {
    fut.get();  // propagate the first exception, if any
  }
}

}  // namespace isdc
