// Generic bounded-retry policy: exponential backoff with deterministic
// jitter. The jitter is a pure function of (seed, retry number) — no
// global RNG — so a run that retried is exactly reproducible, matching the
// failpoint subsystem's determinism contract. Sleeping between retries is
// what turns "the worker crashed" from a tight respawn spin into a polite
// backoff when the failure is environmental (fd exhaustion, a machine
// under load) rather than request-specific.
#ifndef ISDC_SUPPORT_RETRY_H_
#define ISDC_SUPPORT_RETRY_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>

#include "support/hash.h"

namespace isdc {

struct retry_policy {
  /// Total tries (first attempt included). <= 1 means no retries.
  int max_attempts = 3;
  /// Sleep before the first retry; 0 disables sleeping entirely (the
  /// caller still gets max_attempts tries, just back to back).
  double initial_backoff_ms = 5.0;
  double multiplier = 2.0;
  double max_backoff_ms = 250.0;
  /// Jitter as a fraction of the nominal backoff: the actual sleep is
  /// nominal * (1 +/- jitter * u), u deterministic in (seed, retry).
  double jitter = 0.25;
  std::uint64_t seed = 0x15dc'b4c0'ff5e'ed01ull;

  /// Sleep in ms before retry number `retry` (1-based: the sleep after the
  /// first failed attempt is backoff_ms(1)).
  double backoff_ms(int retry) const {
    if (retry < 1 || initial_backoff_ms <= 0.0) {
      return 0.0;
    }
    double nominal = std::min(initial_backoff_ms, max_backoff_ms);
    for (int i = 1; i < retry && nominal < max_backoff_ms; ++i) {
      nominal = std::min(nominal * multiplier, max_backoff_ms);
    }
    if (jitter <= 0.0) {
      return nominal;
    }
    const std::uint64_t u =
        hash_combine(seed, static_cast<std::uint64_t>(retry));
    const double unit = static_cast<double>(u >> 11) * 0x1.0p-53;  // [0,1)
    return nominal * (1.0 + jitter * (2.0 * unit - 1.0));
  }

  void sleep_before_retry(int retry) const {
    const double ms = backoff_ms(retry);
    if (ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(ms));
    }
  }
};

/// Runs fn() up to policy.max_attempts times, sleeping the policy's
/// backoff between attempts; rethrows the last failure.
template <typename Fn>
auto retry_call(const retry_policy& policy, Fn&& fn) -> decltype(fn()) {
  const int attempts = std::max(1, policy.max_attempts);
  for (int attempt = 1;; ++attempt) {
    try {
      return fn();
    } catch (...) {
      if (attempt >= attempts) {
        throw;
      }
      policy.sleep_before_retry(attempt);
    }
  }
}

}  // namespace isdc

#endif  // ISDC_SUPPORT_RETRY_H_
