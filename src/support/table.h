// Plain-text table rendering for the bench harnesses. Every bench prints
// the same rows the paper's tables/figures report; this keeps the output
// aligned and diff-friendly, and can also emit CSV for plotting.
#ifndef ISDC_SUPPORT_TABLE_H_
#define ISDC_SUPPORT_TABLE_H_

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace isdc {

/// Column-aligned text table with an optional header rule.
class text_table {
public:
  void set_header(std::vector<std::string> names);
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats each cell with to_string-like semantics.
  void add_row(std::initializer_list<std::string> cells) {
    add_row(std::vector<std::string>(cells));
  }

  void print(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }

private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double formatting ("12.34").
std::string format_double(double value, int precision = 2);

}  // namespace isdc

#endif  // ISDC_SUPPORT_TABLE_H_
