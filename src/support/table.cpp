#include "support/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace isdc {

void text_table::set_header(std::vector<std::string> names) {
  header_ = std::move(names);
}

void text_table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void text_table::print(std::ostream& os) const {
  // Column widths over header and all rows.
  std::vector<std::size_t> widths;
  auto absorb = [&widths](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) {
      widths.resize(cells.size(), 0);
    }
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  absorb(header_);
  for (const auto& row : rows_) {
    absorb(row);
  }

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      os << std::left << std::setw(static_cast<int>(widths[i]) + 2) << cell;
    }
    os << '\n';
  };

  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t w : widths) {
      total += w + 2;
    }
    os << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) {
    emit(row);
  }
}

void text_table::print_csv(std::ostream& os) const {
  auto emit = [&os](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i != 0) {
        os << ',';
      }
      os << cells[i];
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
  }
  for (const auto& row : rows_) {
    emit(row);
  }
}

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

}  // namespace isdc
