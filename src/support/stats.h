// Small statistics helpers used by the benches (geomean ratios in Table I,
// Pearson correlation / linear fit in Fig. 1 and Fig. 8, error summaries in
// Fig. 7).
#ifndef ISDC_SUPPORT_STATS_H_
#define ISDC_SUPPORT_STATS_H_

#include <cstddef>
#include <span>

namespace isdc {

double mean(std::span<const double> xs);
double geomean(std::span<const double> xs);

/// Pearson correlation coefficient; returns 0 for degenerate inputs.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Least-squares fit y = slope * x + intercept.
struct linear_fit_result {
  double slope = 0.0;
  double intercept = 0.0;
};
linear_fit_result linear_fit(std::span<const double> xs,
                             std::span<const double> ys);

/// Mean of |x - y| / y over pairs with y != 0 (relative estimation error).
double mean_relative_error(std::span<const double> estimated,
                           std::span<const double> reference);

}  // namespace isdc

#endif  // ISDC_SUPPORT_STATS_H_
