// Deterministic, seeded fault injection for chaos testing the pipeline's
// process/IO boundaries. Code under test marks each boundary with a named
// failpoint:
//
//   switch (failpoint::maybe_fail("backend.subprocess.read")) {
//     case failpoint::kind::timeout: /* behave as if the read timed out */
//     ...
//   }
//
// and a test (or the ISDC_FAILPOINTS environment variable) arms a fault
// schedule over those names. The schedule is a spec string:
//
//   spec    := entry { ';' entry }
//   entry   := 'seed=' N
//            | site '=' kind [ '@' trigger { ',' trigger } ]
//   kind    := 'fail' | 'timeout' | 'garbage' | 'partial'
//   trigger := 'p=' FLOAT     fire with probability p per call (default 1)
//            | 'n=' N         fire exactly on the Nth call (1-based)
//            | 'every=' N     fire on every Nth call
//
// e.g. "seed=42;backend.subprocess.read=timeout@p=0.05;worker.eval=fail@n=3".
// Trigger precedence per site: n, then every, then p.
//
// Probabilistic firing is a pure function of (seed, site, call index) — no
// global RNG stream — so a failing schedule replays exactly under the same
// seed regardless of thread interleaving, and two sites never perturb each
// other's decisions. Call indices are per-site atomics, so the decision for
// "the Nth call to this site" is stable even when calls race.
//
// When no schedule is armed, maybe_fail() is a single relaxed atomic load
// (≈zero cost; guarded by BM_failpoint_disarmed and the bench_chaos JSON),
// so production code keeps its failpoints compiled in.
#ifndef ISDC_SUPPORT_FAILPOINT_H_
#define ISDC_SUPPORT_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace isdc::failpoint {

/// What an armed site injects. Each call site documents how it interprets
/// the kinds it handles; unknown kinds at a site behave like `fail`.
enum class kind : std::uint8_t {
  none,     ///< not armed / did not fire: proceed normally
  fail,     ///< the operation fails outright (error return / exception)
  timeout,  ///< the operation behaves as if its deadline expired
  garbage,  ///< the operation yields corrupted data
  partial,  ///< the operation is cut short mid-way (torn write, split read)
};

std::string_view kind_name(kind k);

namespace detail {
extern std::atomic<bool> armed_flag;
kind evaluate(std::string_view site);
}  // namespace detail

/// True while a fault schedule is armed.
inline bool armed() {
  return detail::armed_flag.load(std::memory_order_relaxed);
}

/// The failpoint check. Disarmed: one relaxed atomic load, returns
/// kind::none. Armed: bumps the site's call counter and returns the
/// injected kind when the site's trigger fires.
inline kind maybe_fail(std::string_view site) {
  if (!detail::armed_flag.load(std::memory_order_relaxed)) {
    return kind::none;
  }
  return detail::evaluate(site);
}

/// Arms `spec` (replacing any previous schedule and its counters). Throws
/// std::runtime_error with a descriptive message on a malformed spec.
void arm(const std::string& spec);

/// Disarms and clears the schedule (stats() becomes empty).
void disarm();

/// Arms from the ISDC_FAILPOINTS environment variable if it is set and
/// non-empty; a malformed value is reported to stderr and ignored (a chaos
/// knob must never turn into a crash knob). Called once automatically at
/// process start; exposed for tests.
void arm_from_env();

/// The spec the current schedule was armed from ("" when disarmed).
std::string armed_spec();

struct site_stats {
  std::string site;
  kind fault = kind::none;
  std::uint64_t calls = 0;  ///< maybe_fail() evaluations while armed
  std::uint64_t fires = 0;  ///< calls that returned non-none
};

/// Per-site counters of the current schedule, in spec order.
std::vector<site_stats> stats();

/// Sum of fires across all sites of the current schedule.
std::uint64_t total_fires();

/// RAII arming for tests: arms on construction, restores the previous
/// schedule (usually none) on destruction.
class scoped_arm {
public:
  explicit scoped_arm(const std::string& spec) : previous_(armed_spec()) {
    arm(spec);
  }
  ~scoped_arm() {
    if (previous_.empty()) {
      disarm();
    } else {
      arm(previous_);
    }
  }
  scoped_arm(const scoped_arm&) = delete;
  scoped_arm& operator=(const scoped_arm&) = delete;

private:
  std::string previous_;
};

}  // namespace isdc::failpoint

#endif  // ISDC_SUPPORT_FAILPOINT_H_
