// Fixed-size worker pool used to evaluate extracted subgraphs in parallel
// (the paper evaluates 16 subgraphs per iteration in parallel) and to run
// design-space sweeps in the benches.
#ifndef ISDC_SUPPORT_THREAD_POOL_H_
#define ISDC_SUPPORT_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace isdc {

/// A minimal task-queue thread pool. Tasks are type-erased closures; submit
/// returns a future. The destructor drains outstanding tasks then joins.
class thread_pool {
public:
  /// Spawns `num_threads` workers; 0 means hardware concurrency (min 1).
  explicit thread_pool(std::size_t num_threads = 0);
  ~thread_pool();

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using result_t = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<result_t()>>(
        std::forward<F>(fn));
    std::future<result_t> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs fn(i) for i in [0, count) and waits for all. Chunked over an
  /// atomic counter, so the cost is a handful of task submissions rather
  /// than one per index. The caller participates and counts toward the
  /// pool's width (at most size() fn invocations run concurrently; a
  /// 1-thread pool evaluates strictly serially), which also keeps nested
  /// parallel_for calls from pool tasks deadlock-free. After an fn throws,
  /// not-yet-started indices are skipped and the first exception caught is
  /// rethrown.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Thread count an `ISDC_THREADS`-style override resolves to: empty /
/// unset / unparsable means hardware_concurrency, and any value is capped
/// there too (oversubscribing compute threads only adds context switches).
/// Split from the accessor below so the parsing is testable without
/// mutating the process environment.
std::size_t resolve_default_threads(const char* override_value);

/// The process-wide compute pool, created on first use with
/// resolve_default_threads(getenv("ISDC_THREADS")) workers and shared by
/// every caller that wants in-design parallelism without owning a pool
/// (engine runs, fleet shards, benches). Never destroyed before exit.
/// Callers co-schedule on it via parallel_for, whose caller-participates
/// contract bounds total concurrency even when many runs share the pool.
thread_pool& default_pool();

}  // namespace isdc

#endif  // ISDC_SUPPORT_THREAD_POOL_H_
