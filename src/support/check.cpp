#include "support/check.h"

namespace isdc::detail {

void check_failed(const char* file, int line, const char* expr,
                  const std::string& message) {
  std::ostringstream os;
  os << file << ':' << line << ": check `" << expr << "` failed";
  if (!message.empty()) {
    os << ": " << message;
  }
  throw check_error(os.str());
}

}  // namespace isdc::detail
