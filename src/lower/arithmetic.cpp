#include <bit>
#include <utility>

#include "lower/lowering.h"
#include "support/check.h"

namespace isdc::lower {

namespace {

/// Generate/propagate pair of the parallel-prefix carry network.
struct gp {
  aig::literal g = aig::lit_false;
  aig::literal p = aig::lit_false;
};

gp combine(aig::aig& net, const gp& hi, const gp& lo) {
  return gp{net.create_or(hi.g, net.create_and(hi.p, lo.g)),
            net.create_and(hi.p, lo.p)};
}

/// Sklansky prefix tree: pre[i] becomes the combine of pre[0..i].
void sklansky(aig::aig& net, std::vector<gp>& pre) {
  const std::size_t n = pre.size();
  for (std::size_t step = 1; step < n; step <<= 1) {
    // Walk from high to low so each level reads pre-level values of its
    // anchors (anchors are never rewritten within a level).
    for (std::size_t i = n; i-- > 0;) {
      if ((i & step) != 0) {
        const std::size_t anchor = ((i >> std::countr_zero(step))
                                    << std::countr_zero(step)) - 1;
        pre[i] = combine(net, pre[i], pre[anchor]);
      }
    }
  }
}

}  // namespace

bit_vector add_bits(aig::aig& g, const bit_vector& a, const bit_vector& b,
                    aig::literal carry_in) {
  ISDC_CHECK(a.size() == b.size(), "adder operand widths differ");
  const std::size_t n = a.size();
  bit_vector sum(n);
  std::vector<gp> pre(n);
  bit_vector p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = g.create_xor(a[i], b[i]);
    pre[i] = gp{g.create_and(a[i], b[i]), p[i]};
  }
  sklansky(g, pre);
  // carry into bit i: G[i-1] | (P[i-1] & cin); c0 = cin.
  aig::literal carry = carry_in;
  for (std::size_t i = 0; i < n; ++i) {
    sum[i] = g.create_xor(p[i], carry);
    if (i + 1 < n) {
      carry = g.create_or(pre[i].g, g.create_and(pre[i].p, carry_in));
    }
  }
  return sum;
}

bit_vector sub_bits(aig::aig& g, const bit_vector& a, const bit_vector& b) {
  bit_vector not_b(b.size());
  for (std::size_t i = 0; i < b.size(); ++i) {
    not_b[i] = aig::lit_not(b[i]);
  }
  return add_bits(g, a, not_b, aig::lit_true);
}

bit_vector neg_bits(aig::aig& g, const bit_vector& a) {
  bit_vector zero(a.size(), aig::lit_false);
  return sub_bits(g, zero, a);
}

namespace {

/// Wallace 3:2 / 2:2 carry-save reduction of arbitrary columns down to two
/// rows, followed by one carry-propagate (prefix) adder.
bit_vector reduce_columns_and_add(
    aig::aig& g, std::vector<std::vector<aig::literal>> columns) {
  const std::size_t n = columns.size();
  for (;;) {
    bool reduced = false;
    std::vector<std::vector<aig::literal>> next(n);
    for (std::size_t col = 0; col < n; ++col) {
      auto& bits = columns[col];
      std::size_t i = 0;
      while (bits.size() - i >= 3) {
        const aig::literal x = bits[i];
        const aig::literal y = bits[i + 1];
        const aig::literal z = bits[i + 2];
        i += 3;
        const aig::literal s = g.create_xor(g.create_xor(x, y), z);
        const aig::literal maj =
            g.create_or(g.create_and(x, y),
                        g.create_and(z, g.create_or(x, y)));
        next[col].push_back(s);
        if (col + 1 < n) {
          next[col + 1].push_back(maj);
        }
        reduced = true;
      }
      if (bits.size() - i == 2 && !next[col].empty()) {
        // Half-adder only where it helps balance the columns.
        const aig::literal x = bits[i];
        const aig::literal y = bits[i + 1];
        i += 2;
        next[col].push_back(g.create_xor(x, y));
        if (col + 1 < n) {
          next[col + 1].push_back(g.create_and(x, y));
        }
        reduced = true;
      }
      for (; i < bits.size(); ++i) {
        next[col].push_back(bits[i]);
      }
    }
    columns = std::move(next);
    bool done = true;
    for (const auto& col : columns) {
      done = done && col.size() <= 2;
    }
    if (done || !reduced) {
      break;
    }
  }
  // Final carry-propagate add of the two remaining rows.
  bit_vector row0(n, aig::lit_false);
  bit_vector row1(n, aig::lit_false);
  for (std::size_t col = 0; col < n; ++col) {
    if (!columns[col].empty()) {
      row0[col] = columns[col][0];
    }
    if (columns[col].size() >= 2) {
      row1[col] = columns[col][1];
    }
    ISDC_CHECK(columns[col].size() <= 2, "Wallace reduction incomplete");
  }
  return add_bits(g, row0, row1);
}

}  // namespace

bit_vector mul_bits(aig::aig& g, const bit_vector& a, const bit_vector& b) {
  ISDC_CHECK(a.size() == b.size(), "multiplier operand widths differ");
  const std::size_t n = a.size();
  // Column-wise partial products (truncated to n output bits).
  std::vector<std::vector<aig::literal>> columns(n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i + j < n; ++i) {
      const aig::literal pp = g.create_and(a[i], b[j]);
      if (pp != aig::lit_false) {
        columns[i + j].push_back(pp);
      }
    }
  }
  return reduce_columns_and_add(g, std::move(columns));
}

bit_vector add_rows(aig::aig& g, const std::vector<bit_vector>& rows) {
  ISDC_CHECK(!rows.empty());
  const std::size_t n = rows.front().size();
  if (rows.size() == 1) {
    return rows.front();
  }
  if (rows.size() == 2) {
    return add_bits(g, rows[0], rows[1]);
  }
  std::vector<std::vector<aig::literal>> columns(n);
  for (const bit_vector& row : rows) {
    ISDC_CHECK(row.size() == n, "addend widths differ");
    for (std::size_t col = 0; col < n; ++col) {
      if (row[col] != aig::lit_false) {
        columns[col].push_back(row[col]);
      }
    }
  }
  return reduce_columns_and_add(g, std::move(columns));
}

}  // namespace isdc::lower
