#include "lower/lowering.h"
#include "support/check.h"

namespace isdc::lower {

namespace {

enum class shift_kind { left, right };

/// Logical barrel shifter: one mux layer per amount bit; amount bits whose
/// weight reaches the width force the result to zero.
bit_vector barrel_shift(aig::aig& g, const bit_vector& a,
                        const bit_vector& amt, shift_kind kind) {
  const std::size_t n = a.size();
  bit_vector cur = a;
  aig::literal overflow = aig::lit_false;
  for (std::size_t k = 0; k < amt.size(); ++k) {
    const std::uint64_t dist = 1ull << k;
    if (dist >= n) {
      overflow = g.create_or(overflow, amt[k]);
      continue;
    }
    bit_vector next(n);
    for (std::size_t i = 0; i < n; ++i) {
      aig::literal shifted;
      if (kind == shift_kind::left) {
        shifted = i >= dist ? cur[i - dist] : aig::lit_false;
      } else {
        shifted = i + dist < n ? cur[i + dist] : aig::lit_false;
      }
      next[i] = g.create_mux(amt[k], shifted, cur[i]);
    }
    cur = std::move(next);
  }
  if (overflow != aig::lit_false) {
    for (auto& bit : cur) {
      bit = g.create_and(bit, aig::lit_not(overflow));
    }
  }
  return cur;
}

/// Barrel rotator. Layer k rotates by (2^k mod n); composing the selected
/// layers rotates by (amount mod n) for any width, power of two or not.
bit_vector barrel_rotate(aig::aig& g, const bit_vector& a,
                         const bit_vector& amt, bool left) {
  const std::size_t n = a.size();
  bit_vector cur = a;
  for (std::size_t k = 0; k < amt.size(); ++k) {
    // 2^k mod n, computed iteratively to avoid overflow for large k.
    std::size_t d = 1 % n;
    for (std::size_t step = 0; step < k; ++step) {
      d = (d * 2) % n;
    }
    if (d == 0) {
      continue;  // this amount bit is a whole number of full rotations
    }
    bit_vector next(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t src = left ? (i + n - d) % n : (i + d) % n;
      next[i] = g.create_mux(amt[k], cur[src], cur[i]);
    }
    cur = std::move(next);
  }
  return cur;
}

}  // namespace

bit_vector shl_bits(aig::aig& g, const bit_vector& a, const bit_vector& amt) {
  return barrel_shift(g, a, amt, shift_kind::left);
}

bit_vector shr_bits(aig::aig& g, const bit_vector& a, const bit_vector& amt) {
  return barrel_shift(g, a, amt, shift_kind::right);
}

bit_vector rotl_bits(aig::aig& g, const bit_vector& a, const bit_vector& amt) {
  return barrel_rotate(g, a, amt, /*left=*/true);
}

bit_vector rotr_bits(aig::aig& g, const bit_vector& a, const bit_vector& amt) {
  return barrel_rotate(g, a, amt, /*left=*/false);
}

bit_vector mux_bits(aig::aig& g, aig::literal sel, const bit_vector& on_true,
                    const bit_vector& on_false) {
  ISDC_CHECK(on_true.size() == on_false.size(), "mux arm widths differ");
  bit_vector out(on_true.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = g.create_mux(sel, on_true[i], on_false[i]);
  }
  return out;
}

}  // namespace isdc::lower
