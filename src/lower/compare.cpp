#include "lower/lowering.h"
#include "support/check.h"

namespace isdc::lower {

namespace {

/// Balanced AND reduction over a range of literals.
aig::literal and_reduce(aig::aig& g, const bit_vector& xs, std::size_t lo,
                        std::size_t hi) {
  if (hi - lo == 1) {
    return xs[lo];
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  return g.create_and(and_reduce(g, xs, lo, mid), and_reduce(g, xs, mid, hi));
}

/// (a < b, a == b) over bit range [lo, hi), divide and conquer:
/// lt = lt_hi | (eq_hi & lt_lo), eq = eq_hi & eq_lo. Depth O(log n).
std::pair<aig::literal, aig::literal> lt_eq(aig::aig& g, const bit_vector& a,
                                            const bit_vector& b,
                                            std::size_t lo, std::size_t hi) {
  if (hi - lo == 1) {
    return {g.create_and(aig::lit_not(a[lo]), b[lo]),
            g.create_xnor(a[lo], b[lo])};
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  const auto [lt_lo, eq_lo] = lt_eq(g, a, b, lo, mid);
  const auto [lt_hi, eq_hi] = lt_eq(g, a, b, mid, hi);
  return {g.create_or(lt_hi, g.create_and(eq_hi, lt_lo)),
          g.create_and(eq_hi, eq_lo)};
}

}  // namespace

aig::literal eq_bit(aig::aig& g, const bit_vector& a, const bit_vector& b) {
  ISDC_CHECK(a.size() == b.size(), "eq operand widths differ");
  bit_vector xnors(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    xnors[i] = g.create_xnor(a[i], b[i]);
  }
  return and_reduce(g, xnors, 0, xnors.size());
}

aig::literal ult_bit(aig::aig& g, const bit_vector& a, const bit_vector& b) {
  ISDC_CHECK(a.size() == b.size(), "ult operand widths differ");
  return lt_eq(g, a, b, 0, a.size()).first;
}

aig::literal ule_bit(aig::aig& g, const bit_vector& a, const bit_vector& b) {
  return aig::lit_not(ult_bit(g, b, a));
}

}  // namespace isdc::lower
