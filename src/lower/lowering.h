// Bit-blasting of the HLS IR into an AIG — the "RTL elaboration" step of
// the downstream-flow substrate. Arithmetic uses the structures real
// synthesizers emit (Sklansky prefix adders, Wallace-tree multipliers,
// barrel shifters), so that the combined-subgraph timing the STA reports
// exhibits the real-world path-alignment effects ISDC exploits: the worst
// pin-to-pin paths of chained operations do not compose.
#ifndef ISDC_LOWER_LOWERING_H_
#define ISDC_LOWER_LOWERING_H_

#include <vector>

#include "aig/aig.h"
#include "ir/graph.h"

namespace isdc::lower {

/// Word value as a vector of AIG literals, LSB first.
using bit_vector = std::vector<aig::literal>;

/// Lowered design: the AIG plus the bit vector of every IR node.
/// PIs appear in IR-input order (LSB first within each input); POs in
/// IR-output order (LSB first within each output).
struct lowering_result {
  aig::aig net;
  std::vector<bit_vector> bits;
};

struct lowering_options {
  /// Datapath extraction: single-use chains/trees of `add` nodes are
  /// lowered as one carry-save reduction feeding a single prefix adder
  /// (what Yosys' alumacc / commercial datapath synthesis do), instead of
  /// cascaded complete adders. This is the dominant cross-operation
  /// optimization the paper's per-op delay model cannot see.
  bool fuse_add_trees = true;
};

/// Lowers the whole graph.
lowering_result lower_graph(const ir::graph& g,
                            const lowering_options& options = {});

/// Carry-save reduction of `rows` (equal-width addend vectors) followed by
/// one carry-propagate adder. Exposed for tests.
bit_vector add_rows(aig::aig& g, const std::vector<bit_vector>& rows);

// --- word-level primitives (exposed for unit tests and reuse) ---

/// a + b + cin using a Sklansky parallel-prefix carry network.
bit_vector add_bits(aig::aig& g, const bit_vector& a, const bit_vector& b,
                    aig::literal carry_in = aig::lit_false);
/// a - b (two's complement: a + ~b + 1).
bit_vector sub_bits(aig::aig& g, const bit_vector& a, const bit_vector& b);
/// -a.
bit_vector neg_bits(aig::aig& g, const bit_vector& a);
/// Low |a| bits of a * b via Wallace-tree reduction + prefix adder.
bit_vector mul_bits(aig::aig& g, const bit_vector& a, const bit_vector& b);

/// Variable-amount shifts/rotates (barrel networks, one mux layer per
/// amount bit). Out-of-range shifts produce 0; rotates are modulo width.
bit_vector shl_bits(aig::aig& g, const bit_vector& a, const bit_vector& amt);
bit_vector shr_bits(aig::aig& g, const bit_vector& a, const bit_vector& amt);
bit_vector rotl_bits(aig::aig& g, const bit_vector& a, const bit_vector& amt);
bit_vector rotr_bits(aig::aig& g, const bit_vector& a, const bit_vector& amt);

/// Comparisons (balanced divide-and-conquer networks).
aig::literal eq_bit(aig::aig& g, const bit_vector& a, const bit_vector& b);
aig::literal ult_bit(aig::aig& g, const bit_vector& a, const bit_vector& b);
aig::literal ule_bit(aig::aig& g, const bit_vector& a, const bit_vector& b);

/// Per-bit select.
bit_vector mux_bits(aig::aig& g, aig::literal sel, const bit_vector& on_true,
                    const bit_vector& on_false);

}  // namespace isdc::lower

#endif  // ISDC_LOWER_LOWERING_H_
