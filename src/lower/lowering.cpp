#include "lower/lowering.h"

#include <utility>

#include "support/check.h"

namespace isdc::lower {

namespace {

bit_vector constant_bits(std::uint64_t value, std::uint32_t width) {
  bit_vector bits(width);
  for (std::uint32_t i = 0; i < width; ++i) {
    bits[i] = ((value >> i) & 1) != 0 ? aig::lit_true : aig::lit_false;
  }
  return bits;
}

/// Constant-amount shifts and rotates are pure wiring.
bit_vector wired_shift(const bit_vector& a, ir::opcode op,
                       std::uint64_t amount) {
  const std::size_t n = a.size();
  bit_vector out(n, aig::lit_false);
  switch (op) {
    case ir::opcode::shl:
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = i >= amount ? a[i - amount] : aig::lit_false;
      }
      break;
    case ir::opcode::shr:
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = i + amount < n ? a[i + amount] : aig::lit_false;
      }
      break;
    case ir::opcode::rotl: {
      const std::size_t d = static_cast<std::size_t>(amount % n);
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = a[(i + n - d) % n];
      }
      break;
    }
    case ir::opcode::rotr: {
      const std::size_t d = static_cast<std::size_t>(amount % n);
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = a[(i + d) % n];
      }
      break;
    }
    default:
      ISDC_UNREACHABLE("not a shift opcode");
  }
  return out;
}

/// Datapath extraction: collects the addend leaves of a maximal tree of
/// single-use, non-output `add` nodes rooted at `v`.
void collect_addends(const ir::graph& g, ir::node_id v, bool is_root,
                     std::vector<ir::node_id>& out) {
  const ir::node& n = g.at(v);
  const bool expandable = n.op == ir::opcode::add &&
                          (is_root || (g.users(v).size() == 1 &&
                                       !g.is_output(v)));
  if (!expandable) {
    out.push_back(v);
    return;
  }
  for (ir::node_id p : n.operands) {
    collect_addends(g, p, /*is_root=*/false, out);
  }
}

}  // namespace

lowering_result lower_graph(const ir::graph& g,
                            const lowering_options& options) {
  lowering_result result;
  aig::aig& net = result.net;
  auto& bits = result.bits;
  bits.resize(g.num_nodes());

  for (ir::node_id id = 0; id < g.num_nodes(); ++id) {
    const ir::node& n = g.at(id);
    const auto operand = [&](int i) -> const bit_vector& {
      return bits[n.operands[static_cast<std::size_t>(i)]];
    };
    switch (n.op) {
      case ir::opcode::input: {
        bit_vector v(n.width);
        for (auto& bit : v) {
          bit = aig::make_literal(net.add_pi());
        }
        bits[id] = std::move(v);
        break;
      }
      case ir::opcode::constant:
        bits[id] = constant_bits(n.value, n.width);
        break;
      case ir::opcode::add: {
        std::vector<ir::node_id> addends;
        if (options.fuse_add_trees) {
          collect_addends(g, id, /*is_root=*/true, addends);
        }
        if (addends.size() > 2) {
          // Carry-save fusion of the whole chain/tree: one reduction array
          // plus a single carry-propagate adder, as datapath synthesis
          // emits. The bypassed intermediate adders' own bit vectors stay
          // available for other users; unused ones are dangling logic that
          // AIG cleanup removes.
          std::vector<bit_vector> rows;
          rows.reserve(addends.size());
          for (ir::node_id a : addends) {
            rows.push_back(bits[a]);
          }
          bits[id] = add_rows(net, rows);
        } else {
          bits[id] = add_bits(net, operand(0), operand(1));
        }
        break;
      }
      case ir::opcode::sub:
        bits[id] = sub_bits(net, operand(0), operand(1));
        break;
      case ir::opcode::neg:
        bits[id] = neg_bits(net, operand(0));
        break;
      case ir::opcode::mul:
        bits[id] = mul_bits(net, operand(0), operand(1));
        break;
      case ir::opcode::band:
      case ir::opcode::bor:
      case ir::opcode::bxor: {
        const bit_vector& a = operand(0);
        const bit_vector& b = operand(1);
        bit_vector v(n.width);
        for (std::uint32_t i = 0; i < n.width; ++i) {
          if (n.op == ir::opcode::band) {
            v[i] = net.create_and(a[i], b[i]);
          } else if (n.op == ir::opcode::bor) {
            v[i] = net.create_or(a[i], b[i]);
          } else {
            v[i] = net.create_xor(a[i], b[i]);
          }
        }
        bits[id] = std::move(v);
        break;
      }
      case ir::opcode::bnot: {
        bit_vector v = operand(0);
        for (auto& bit : v) {
          bit = aig::lit_not(bit);
        }
        bits[id] = std::move(v);
        break;
      }
      case ir::opcode::shl:
      case ir::opcode::shr:
      case ir::opcode::rotl:
      case ir::opcode::rotr: {
        const ir::node& amount_node = g.at(n.operands[1]);
        if (amount_node.op == ir::opcode::constant) {
          bits[id] = wired_shift(operand(0), n.op, amount_node.value);
        } else if (n.op == ir::opcode::shl) {
          bits[id] = shl_bits(net, operand(0), operand(1));
        } else if (n.op == ir::opcode::shr) {
          bits[id] = shr_bits(net, operand(0), operand(1));
        } else if (n.op == ir::opcode::rotl) {
          bits[id] = rotl_bits(net, operand(0), operand(1));
        } else {
          bits[id] = rotr_bits(net, operand(0), operand(1));
        }
        break;
      }
      case ir::opcode::eq:
        bits[id] = {eq_bit(net, operand(0), operand(1))};
        break;
      case ir::opcode::ne:
        bits[id] = {aig::lit_not(eq_bit(net, operand(0), operand(1)))};
        break;
      case ir::opcode::ult:
        bits[id] = {ult_bit(net, operand(0), operand(1))};
        break;
      case ir::opcode::ule:
        bits[id] = {ule_bit(net, operand(0), operand(1))};
        break;
      case ir::opcode::mux:
        bits[id] = mux_bits(net, operand(0)[0], operand(1), operand(2));
        break;
      case ir::opcode::concat: {
        bit_vector v = operand(1);  // low part
        const bit_vector& hi = operand(0);
        v.insert(v.end(), hi.begin(), hi.end());
        bits[id] = std::move(v);
        break;
      }
      case ir::opcode::slice: {
        const bit_vector& x = operand(0);
        bits[id] = bit_vector(x.begin() + static_cast<std::ptrdiff_t>(n.value),
                              x.begin() + static_cast<std::ptrdiff_t>(
                                              n.value + n.width));
        break;
      }
      case ir::opcode::zext: {
        bit_vector v = operand(0);
        v.resize(n.width, aig::lit_false);
        bits[id] = std::move(v);
        break;
      }
      case ir::opcode::sext: {
        bit_vector v = operand(0);
        const aig::literal msb = v.back();
        v.resize(n.width, msb);
        bits[id] = std::move(v);
        break;
      }
    }
    ISDC_CHECK(bits[id].size() == n.width, "lowered width mismatch at node "
                                               << id);
  }

  for (ir::node_id out : g.outputs()) {
    for (aig::literal bit : bits[out]) {
      net.add_po(bit);
    }
  }
  return result;
}

}  // namespace isdc::lower
