#include "ir/verify.h"

#include <sstream>

#include "support/check.h"

namespace isdc::ir {

namespace {

std::string node_label(const graph& g, node_id id) {
  std::ostringstream os;
  os << '%' << id << " (" << opcode_name(g.at(id).op) << ')';
  return os.str();
}

}  // namespace

std::string verify(const graph& g) {
  std::ostringstream os;
  if (g.outputs().empty()) {
    return "graph has no primary outputs";
  }
  for (node_id id = 0; id < g.num_nodes(); ++id) {
    const node& n = g.at(id);
    if (n.width < 1 || n.width > 64) {
      os << node_label(g, id) << ": width " << n.width << " out of [1, 64]";
      return os.str();
    }
    if (static_cast<int>(n.operands.size()) != opcode_arity(n.op)) {
      os << node_label(g, id) << ": arity mismatch";
      return os.str();
    }
    for (node_id operand : n.operands) {
      if (operand >= id) {
        os << node_label(g, id) << ": operand " << operand
           << " does not precede it";
        return os.str();
      }
    }
    const auto operand_width = [&](int i) {
      return g.width(n.operands[i]);
    };
    switch (n.op) {
      case opcode::add:
      case opcode::sub:
      case opcode::mul:
      case opcode::band:
      case opcode::bor:
      case opcode::bxor:
        if (operand_width(0) != n.width || operand_width(1) != n.width) {
          os << node_label(g, id) << ": operand widths must equal " << n.width;
          return os.str();
        }
        break;
      case opcode::neg:
      case opcode::bnot:
        if (operand_width(0) != n.width) {
          os << node_label(g, id) << ": operand width must equal " << n.width;
          return os.str();
        }
        break;
      case opcode::shl:
      case opcode::shr:
      case opcode::rotl:
      case opcode::rotr:
        if (operand_width(0) != n.width) {
          os << node_label(g, id) << ": shifted operand width must equal "
             << n.width;
          return os.str();
        }
        break;
      case opcode::eq:
      case opcode::ne:
      case opcode::ult:
      case opcode::ule:
        if (n.width != 1) {
          os << node_label(g, id) << ": comparison result must be 1 bit";
          return os.str();
        }
        if (operand_width(0) != operand_width(1)) {
          os << node_label(g, id) << ": comparison operand widths differ";
          return os.str();
        }
        break;
      case opcode::mux:
        if (operand_width(0) != 1) {
          os << node_label(g, id) << ": mux selector must be 1 bit";
          return os.str();
        }
        if (operand_width(1) != n.width || operand_width(2) != n.width) {
          os << node_label(g, id) << ": mux arm widths must equal " << n.width;
          return os.str();
        }
        break;
      case opcode::concat:
        if (operand_width(0) + operand_width(1) != n.width) {
          os << node_label(g, id) << ": concat width mismatch";
          return os.str();
        }
        break;
      case opcode::slice:
        if (n.value + n.width > operand_width(0)) {
          os << node_label(g, id) << ": slice out of operand bounds";
          return os.str();
        }
        break;
      case opcode::zext:
      case opcode::sext:
        if (operand_width(0) >= n.width) {
          os << node_label(g, id) << ": extension must widen";
          return os.str();
        }
        break;
      case opcode::input:
      case opcode::constant:
        break;
    }
  }
  return {};
}

void verify_or_throw(const graph& g) {
  const std::string message = verify(g);
  ISDC_CHECK(message.empty(), "graph " << g.name() << ": " << message);
}

}  // namespace isdc::ir
