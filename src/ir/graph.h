// The HLS IR graph: a feed-forward dataflow graph of bit-accurate
// operations. Node indices are assigned in creation order and operands must
// already exist, so index order is always a valid topological order — every
// traversal in the library relies on this invariant.
#ifndef ISDC_IR_GRAPH_H_
#define ISDC_IR_GRAPH_H_

#include <cstdint>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "ir/arena.h"
#include "ir/opcode.h"

namespace isdc::ir {

class flat_adjacency;

/// Index of a node within its graph.
using node_id = std::uint32_t;
inline constexpr node_id invalid_node = static_cast<node_id>(-1);

/// Immutable view of a node's operand ids. The storage lives in the
/// owning graph's id_arena — contiguous across nodes in creation order —
/// so a topological sweep over all operand edges is one linear scan
/// instead of a pointer chase per node. Interface mirrors the read side
/// of std::vector<node_id> (iteration both ways, indexing, size).
class operand_list {
public:
  using value_type = node_id;
  using const_iterator = const node_id*;
  using const_reverse_iterator = std::reverse_iterator<const_iterator>;

  operand_list() = default;
  operand_list(const node_id* data, std::size_t size)
      : data_(data), size_(static_cast<std::uint32_t>(size)) {}

  const node_id* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  node_id operator[](std::size_t i) const { return data_[i]; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }
  const_reverse_iterator rbegin() const {
    return const_reverse_iterator(end());
  }
  const_reverse_iterator rend() const {
    return const_reverse_iterator(begin());
  }

private:
  const node_id* data_ = nullptr;
  std::uint32_t size_ = 0;
};

/// One IR operation. `value` holds the literal for `constant` and the low
/// bit offset for `slice`; it is unused otherwise. `operands` views arena
/// storage owned by the graph the node belongs to.
struct node {
  opcode op = opcode::input;
  std::uint32_t width = 0;  // result width in bits, 1..64
  std::uint64_t value = 0;
  operand_list operands;
  std::string name;
};

class graph {
public:
  explicit graph(std::string name = "g");
  graph(const graph& other);
  graph(graph&& other) noexcept;
  graph& operator=(const graph& other);
  graph& operator=(graph&& other) noexcept;
  ~graph();

  const std::string& name() const { return name_; }

  /// Appends a node. Operand ids must be smaller than the new node's id
  /// (construction order is topological by design).
  node_id add_node(opcode op, std::uint32_t width,
                   std::vector<node_id> operands, std::uint64_t value = 0,
                   std::string name = {});

  /// Marks a node as a primary output (duplicates are ignored).
  void mark_output(node_id id);

  std::size_t num_nodes() const { return nodes_.size(); }
  const node& at(node_id id) const;
  const std::vector<node>& nodes() const { return nodes_; }

  const std::vector<node_id>& inputs() const { return inputs_; }
  const std::vector<node_id>& outputs() const { return outputs_; }
  bool is_output(node_id id) const;

  /// Users (consumer nodes) of each node; maintained incrementally.
  const std::vector<node_id>& users(node_id id) const;

  /// Flat CSR operand/user adjacency (adjacency.h), built lazily on first
  /// use and cached until the next mutation. Safe to call from multiple
  /// reader threads; mutations must not race with readers (the same
  /// contract every other accessor already has).
  const flat_adjacency& flat() const;

  /// Total result bits of a node (== width; helper for readability).
  std::uint32_t width(node_id id) const { return at(id).width; }

  /// True if `to` is reachable from `from` through operand edges
  /// (i.e. `from` is a transitive operand of `to`). O(edges).
  bool is_connected(node_id from, node_id to) const;

  /// Sum of widths of all primary outputs.
  std::uint64_t total_output_bits() const;

  /// Structural fingerprint of the graph: a hash over every node's opcode,
  /// width, value and operand edges plus the output set. Two graphs with
  /// the same fingerprint are structurally identical for scheduling
  /// purposes (the name is excluded), so the fingerprint can key
  /// per-design caches.
  std::uint64_t fingerprint() const;

private:
  struct adjacency_cache;  // graph.cpp; once-built flat_adjacency slot

  /// Re-points every node's operand_list at this graph's own arena (used
  /// by the copy operations, whose freshly copied lists still view the
  /// source graph's storage).
  void reintern_operands();

  std::string name_;
  id_arena operand_arena_;  ///< backing store for every node's operands
  std::vector<node> nodes_;
  std::vector<std::vector<node_id>> users_;
  std::vector<node_id> inputs_;
  std::vector<node_id> outputs_;
  std::vector<bool> output_mask_;
  mutable std::unique_ptr<adjacency_cache> adj_;
};

}  // namespace isdc::ir

#endif  // ISDC_IR_GRAPH_H_
