// Reference interpreter for the IR. Used as the functional-correctness
// oracle for gate-level lowering and for benchmark validation (e.g. the
// sha256 workload is checked against FIPS test vectors through this).
#ifndef ISDC_IR_EVALUATE_H_
#define ISDC_IR_EVALUATE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "ir/graph.h"

namespace isdc::ir {

/// Value of every node, masked to its width. `input_values` are bound to
/// graph.inputs() in order.
std::vector<std::uint64_t> evaluate_all(const graph& g,
                                        std::span<const std::uint64_t>
                                            input_values);

/// Values of the primary outputs only, in graph.outputs() order.
std::vector<std::uint64_t> evaluate(const graph& g,
                                    std::span<const std::uint64_t>
                                        input_values);

/// Width-`w` bit mask.
inline std::uint64_t width_mask(std::uint32_t w) {
  return w >= 64 ? ~0ull : ((1ull << w) - 1);
}

}  // namespace isdc::ir

#endif  // ISDC_IR_EVALUATE_H_
