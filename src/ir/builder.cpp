#include "ir/builder.h"

#include <vector>

#include "support/check.h"

namespace isdc::ir {

node_id builder::input(std::uint32_t width, std::string name) {
  return graph_->add_node(opcode::input, width, {}, 0, std::move(name));
}

node_id builder::constant(std::uint32_t width, std::uint64_t value) {
  const std::uint64_t mask =
      width == 64 ? ~0ull : ((1ull << width) - 1);
  return graph_->add_node(opcode::constant, width, {}, value & mask);
}

node_id builder::binary(opcode op, node_id a, node_id b) {
  ISDC_CHECK(graph_->width(a) == graph_->width(b),
             opcode_name(op) << " operand widths differ: " << graph_->width(a)
                             << " vs " << graph_->width(b));
  const std::uint32_t width =
      (op == opcode::eq || op == opcode::ne || op == opcode::ult ||
       op == opcode::ule)
          ? 1
          : graph_->width(a);
  return graph_->add_node(op, width, {a, b});
}

node_id builder::add(node_id a, node_id b) { return binary(opcode::add, a, b); }
node_id builder::sub(node_id a, node_id b) { return binary(opcode::sub, a, b); }
node_id builder::mul(node_id a, node_id b) { return binary(opcode::mul, a, b); }
node_id builder::band(node_id a, node_id b) { return binary(opcode::band, a, b); }
node_id builder::bor(node_id a, node_id b) { return binary(opcode::bor, a, b); }
node_id builder::bxor(node_id a, node_id b) { return binary(opcode::bxor, a, b); }

node_id builder::neg(node_id a) {
  return graph_->add_node(opcode::neg, graph_->width(a), {a});
}

node_id builder::bnot(node_id a) {
  return graph_->add_node(opcode::bnot, graph_->width(a), {a});
}

node_id builder::shift_like(opcode op, node_id a, node_id amount) {
  return graph_->add_node(op, graph_->width(a), {a, amount});
}

node_id builder::shl(node_id a, node_id amount) {
  return shift_like(opcode::shl, a, amount);
}
node_id builder::shr(node_id a, node_id amount) {
  return shift_like(opcode::shr, a, amount);
}
node_id builder::rotl(node_id a, node_id amount) {
  return shift_like(opcode::rotl, a, amount);
}
node_id builder::rotr(node_id a, node_id amount) {
  return shift_like(opcode::rotr, a, amount);
}

namespace {
std::uint32_t amount_width(std::uint32_t operand_width) {
  std::uint32_t bits = 1;
  while ((1u << bits) < operand_width) {
    ++bits;
  }
  return bits + 1;  // room to express `operand_width` itself
}
}  // namespace

node_id builder::shli(node_id a, std::uint32_t amount) {
  return shl(a, constant(amount_width(graph_->width(a)), amount));
}
node_id builder::shri(node_id a, std::uint32_t amount) {
  return shr(a, constant(amount_width(graph_->width(a)), amount));
}
node_id builder::rotli(node_id a, std::uint32_t amount) {
  return rotl(a, constant(amount_width(graph_->width(a)), amount));
}
node_id builder::rotri(node_id a, std::uint32_t amount) {
  return rotr(a, constant(amount_width(graph_->width(a)), amount));
}

node_id builder::eq(node_id a, node_id b) { return binary(opcode::eq, a, b); }
node_id builder::ne(node_id a, node_id b) { return binary(opcode::ne, a, b); }
node_id builder::ult(node_id a, node_id b) { return binary(opcode::ult, a, b); }
node_id builder::ule(node_id a, node_id b) { return binary(opcode::ule, a, b); }

node_id builder::mux(node_id sel, node_id on_true, node_id on_false) {
  ISDC_CHECK(graph_->width(sel) == 1, "mux selector must be 1 bit wide");
  ISDC_CHECK(graph_->width(on_true) == graph_->width(on_false),
             "mux arm widths differ");
  return graph_->add_node(opcode::mux, graph_->width(on_true),
                          {sel, on_true, on_false});
}

node_id builder::concat(node_id hi, node_id lo) {
  const std::uint32_t width = graph_->width(hi) + graph_->width(lo);
  ISDC_CHECK(width <= 64, "concat width " << width << " exceeds 64");
  return graph_->add_node(opcode::concat, width, {hi, lo});
}

node_id builder::slice(node_id x, std::uint32_t lo, std::uint32_t width) {
  ISDC_CHECK(lo + width <= graph_->width(x),
             "slice [" << lo + width - 1 << ':' << lo
                       << "] exceeds operand width " << graph_->width(x));
  return graph_->add_node(opcode::slice, width, {x}, lo);
}

node_id builder::zext(node_id x, std::uint32_t width) {
  ISDC_CHECK(width >= graph_->width(x), "zext must not narrow");
  if (width == graph_->width(x)) {
    return x;
  }
  return graph_->add_node(opcode::zext, width, {x});
}

node_id builder::sext(node_id x, std::uint32_t width) {
  ISDC_CHECK(width >= graph_->width(x), "sext must not narrow");
  if (width == graph_->width(x)) {
    return x;
  }
  return graph_->add_node(opcode::sext, width, {x});
}

node_id builder::reduce(opcode op, std::span<const node_id> values,
                        bool tree) {
  ISDC_CHECK(!values.empty(), "reduction over empty span");
  if (!tree) {
    node_id acc = values[0];
    for (std::size_t i = 1; i < values.size(); ++i) {
      acc = binary(op, acc, values[i]);
    }
    return acc;
  }
  std::vector<node_id> level(values.begin(), values.end());
  while (level.size() > 1) {
    std::vector<node_id> next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(binary(op, level[i], level[i + 1]));
    }
    if (level.size() % 2 != 0) {
      next.push_back(level.back());
    }
    level = std::move(next);
  }
  return level[0];
}

node_id builder::add_many(std::span<const node_id> values) {
  return reduce(opcode::add, values, /*tree=*/false);
}
node_id builder::xor_many(std::span<const node_id> values) {
  return reduce(opcode::bxor, values, /*tree=*/false);
}
node_id builder::add_tree(std::span<const node_id> values) {
  return reduce(opcode::add, values, /*tree=*/true);
}
node_id builder::xor_tree(std::span<const node_id> values) {
  return reduce(opcode::bxor, values, /*tree=*/true);
}

}  // namespace isdc::ir
