// Structural validation of IR graphs. Every workload generator output and
// every extracted subgraph passes through verify() in tests.
#ifndef ISDC_IR_VERIFY_H_
#define ISDC_IR_VERIFY_H_

#include <string>

#include "ir/graph.h"

namespace isdc::ir {

/// Returns an empty string if `g` is well-formed, otherwise a description
/// of the first violation found (operand counts, width rules, slice bounds,
/// output validity, at least one output, ...).
std::string verify(const graph& g);

/// Throws check_error when verify() reports a violation.
void verify_or_throw(const graph& g);

}  // namespace isdc::ir

#endif  // ISDC_IR_VERIFY_H_
