#include "ir/dot.h"

#include <algorithm>
#include <map>
#include <vector>

#include "support/check.h"

namespace isdc::ir {

void write_dot(std::ostream& os, const graph& g, std::span<const int> stages) {
  ISDC_CHECK(stages.empty() || stages.size() == g.num_nodes(),
             "stage vector size mismatch");
  os << "digraph \"" << g.name() << "\" {\n"
     << "  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n";

  const auto emit_node = [&](node_id id) {
    const node& n = g.at(id);
    os << "  n" << id << " [label=\"%" << id << ' ' << opcode_name(n.op)
       << " i" << n.width;
    if (!n.name.empty()) {
      os << "\\n" << n.name;
    }
    os << '"';
    if (n.op == opcode::input) {
      os << ", style=filled, fillcolor=lightblue";
    } else if (g.is_output(id)) {
      os << ", style=filled, fillcolor=lightsalmon";
    }
    os << "];\n";
  };

  if (stages.empty()) {
    for (node_id id = 0; id < g.num_nodes(); ++id) {
      emit_node(id);
    }
  } else {
    std::map<int, std::vector<node_id>> by_stage;
    for (node_id id = 0; id < g.num_nodes(); ++id) {
      by_stage[stages[id]].push_back(id);
    }
    for (const auto& [stage, members] : by_stage) {
      os << "  subgraph cluster_stage" << stage << " {\n"
         << "    label=\"stage " << stage << "\";\n";
      for (node_id id : members) {
        os << "  ";
        emit_node(id);
      }
      os << "  }\n";
    }
  }

  for (node_id id = 0; id < g.num_nodes(); ++id) {
    for (node_id operand : g.at(id).operands) {
      os << "  n" << operand << " -> n" << id << ";\n";
    }
  }
  os << "}\n";
}

}  // namespace isdc::ir
