// Fluent construction helpers over ir::graph. All workload generators and
// tests build graphs through this interface.
#ifndef ISDC_IR_BUILDER_H_
#define ISDC_IR_BUILDER_H_

#include <span>
#include <string>

#include "ir/graph.h"

namespace isdc::ir {

/// Thin wrapper that owns nothing; it appends to a caller-owned graph.
class builder {
public:
  explicit builder(graph& g) : graph_(&g) {}

  graph& target() { return *graph_; }

  node_id input(std::uint32_t width, std::string name);
  node_id constant(std::uint32_t width, std::uint64_t value);

  node_id add(node_id a, node_id b);
  node_id sub(node_id a, node_id b);
  node_id neg(node_id a);
  node_id mul(node_id a, node_id b);
  node_id band(node_id a, node_id b);
  node_id bor(node_id a, node_id b);
  node_id bxor(node_id a, node_id b);
  node_id bnot(node_id a);

  /// Shifts/rotates by a node-valued amount.
  node_id shl(node_id a, node_id amount);
  node_id shr(node_id a, node_id amount);
  node_id rotl(node_id a, node_id amount);
  node_id rotr(node_id a, node_id amount);

  /// Shifts/rotates by a compile-time constant amount (lowered to wiring).
  node_id shli(node_id a, std::uint32_t amount);
  node_id shri(node_id a, std::uint32_t amount);
  node_id rotli(node_id a, std::uint32_t amount);
  node_id rotri(node_id a, std::uint32_t amount);

  node_id eq(node_id a, node_id b);
  node_id ne(node_id a, node_id b);
  node_id ult(node_id a, node_id b);
  node_id ule(node_id a, node_id b);

  node_id mux(node_id sel, node_id on_true, node_id on_false);
  node_id concat(node_id hi, node_id lo);
  node_id slice(node_id x, std::uint32_t lo, std::uint32_t width);
  node_id zext(node_id x, std::uint32_t width);
  node_id sext(node_id x, std::uint32_t width);

  /// Left-fold reductions; `values` must be non-empty.
  node_id add_many(std::span<const node_id> values);
  node_id xor_many(std::span<const node_id> values);

  /// Balanced-tree reductions (shallower datapaths than the left folds).
  node_id add_tree(std::span<const node_id> values);
  node_id xor_tree(std::span<const node_id> values);

  void output(node_id id) { graph_->mark_output(id); }

private:
  node_id binary(opcode op, node_id a, node_id b);
  node_id shift_like(opcode op, node_id a, node_id amount);
  node_id reduce(opcode op, std::span<const node_id> values, bool tree);

  graph* graph_;
};

}  // namespace isdc::ir

#endif  // ISDC_IR_BUILDER_H_
