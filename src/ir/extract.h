// Extraction of an induced subgraph into a standalone graph: member nodes
// are cloned, external operands become fresh primary inputs (deduplicated),
// constants are cloned in place, and the requested roots become primary
// outputs. Used for stage-level timing analysis and for handing extracted
// cones/windows to the downstream synthesis flow.
#ifndef ISDC_IR_EXTRACT_H_
#define ISDC_IR_EXTRACT_H_

#include <span>
#include <unordered_map>
#include <vector>

#include "ir/graph.h"

namespace isdc::ir {

struct extraction {
  graph g{"subgraph"};
  /// original node id -> id inside `g` (members, cloned constants and
  /// boundary inputs).
  std::unordered_map<node_id, node_id> to_sub;
  /// boundary inputs of `g`, as original node ids (in sub-input order).
  std::vector<node_id> boundary;
};

/// `members` are original node ids (any order; duplicates ignored);
/// `roots` must be members and become the subgraph's outputs. Members that
/// are inputs or constants are cloned as such.
extraction extract_subgraph(const graph& g, std::span<const node_id> members,
                            std::span<const node_id> roots);

}  // namespace isdc::ir

#endif  // ISDC_IR_EXTRACT_H_
