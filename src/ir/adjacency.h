// Flat CSR snapshot of a graph's edges. The per-node `std::vector`
// operand lists (and the vector-of-vectors user lists) scatter a dense
// sweep's edge walks across the heap; the delay-matrix kernels instead
// read this packed form, obtained from graph::flat(), which caches one
// snapshot per graph and invalidates it on mutation.
#ifndef ISDC_IR_ADJACENCY_H_
#define ISDC_IR_ADJACENCY_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "ir/graph.h"

namespace isdc::ir {

/// Immutable operand/user adjacency in CSR form: one offsets array of
/// n + 1 entries plus one packed data array per direction.
class flat_adjacency {
 public:
  explicit flat_adjacency(const graph& g);

  std::size_t num_nodes() const { return operand_off_.size() - 1; }
  std::size_t num_edges() const { return operand_data_.size(); }

  /// Operands of v, in operand order (same as graph::at(v).operands,
  /// duplicates included).
  std::span<const node_id> operands(node_id v) const {
    return {operand_data_.data() + operand_off_[v],
            operand_off_[v + 1] - operand_off_[v]};
  }

  /// Users of v, ascending (same sequence as graph::users(v)).
  std::span<const node_id> users(node_id v) const {
    return {user_data_.data() + user_off_[v], user_off_[v + 1] - user_off_[v]};
  }

 private:
  std::vector<std::uint32_t> operand_off_;
  std::vector<std::uint32_t> user_off_;
  std::vector<node_id> operand_data_;
  std::vector<node_id> user_data_;
};

}  // namespace isdc::ir

#endif  // ISDC_IR_ADJACENCY_H_
