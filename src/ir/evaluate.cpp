#include "ir/evaluate.h"

#include "support/check.h"

namespace isdc::ir {

namespace {

std::uint64_t eval_node(const graph& g, const node& n,
                        std::span<const std::uint64_t> values) {
  const auto operand = [&](int i) { return values[n.operands[i]]; };
  const std::uint64_t mask = width_mask(n.width);
  switch (n.op) {
    case opcode::input:
      ISDC_UNREACHABLE("inputs are bound before evaluation");
    case opcode::constant:
      return n.value & mask;
    case opcode::add:
      return (operand(0) + operand(1)) & mask;
    case opcode::sub:
      return (operand(0) - operand(1)) & mask;
    case opcode::neg:
      return (~operand(0) + 1) & mask;
    case opcode::mul:
      return (operand(0) * operand(1)) & mask;
    case opcode::band:
      return operand(0) & operand(1);
    case opcode::bor:
      return operand(0) | operand(1);
    case opcode::bxor:
      return operand(0) ^ operand(1);
    case opcode::bnot:
      return ~operand(0) & mask;
    case opcode::shl: {
      const std::uint64_t amount = operand(1);
      return amount >= n.width ? 0 : (operand(0) << amount) & mask;
    }
    case opcode::shr: {
      const std::uint64_t amount = operand(1);
      return amount >= n.width ? 0 : operand(0) >> amount;
    }
    case opcode::rotl: {
      const std::uint64_t amount = operand(1) % n.width;
      if (amount == 0) {
        return operand(0);
      }
      return ((operand(0) << amount) | (operand(0) >> (n.width - amount))) &
             mask;
    }
    case opcode::rotr: {
      const std::uint64_t amount = operand(1) % n.width;
      if (amount == 0) {
        return operand(0);
      }
      return ((operand(0) >> amount) | (operand(0) << (n.width - amount))) &
             mask;
    }
    case opcode::eq:
      return operand(0) == operand(1) ? 1 : 0;
    case opcode::ne:
      return operand(0) != operand(1) ? 1 : 0;
    case opcode::ult:
      return operand(0) < operand(1) ? 1 : 0;
    case opcode::ule:
      return operand(0) <= operand(1) ? 1 : 0;
    case opcode::mux:
      return operand(0) != 0 ? operand(1) : operand(2);
    case opcode::concat: {
      const std::uint32_t lo_width = g.width(n.operands[1]);
      return ((operand(0) << lo_width) | operand(1)) & mask;
    }
    case opcode::slice:
      return (operand(0) >> n.value) & mask;
    case opcode::zext:
      return operand(0);
    case opcode::sext: {
      const std::uint32_t from = g.width(n.operands[0]);
      const std::uint64_t sign = 1ull << (from - 1);
      const std::uint64_t x = operand(0);
      return ((x ^ sign) - sign) & mask;
    }
  }
  ISDC_UNREACHABLE("unknown opcode");
}

}  // namespace

std::vector<std::uint64_t> evaluate_all(
    const graph& g, std::span<const std::uint64_t> input_values) {
  ISDC_CHECK(input_values.size() == g.inputs().size(),
             "expected " << g.inputs().size() << " input values, got "
                         << input_values.size());
  std::vector<std::uint64_t> values(g.num_nodes(), 0);
  std::size_t next_input = 0;
  for (node_id id = 0; id < g.num_nodes(); ++id) {
    const node& n = g.at(id);
    if (n.op == opcode::input) {
      values[id] = input_values[next_input++] & width_mask(n.width);
    } else {
      values[id] = eval_node(g, n, values);
    }
  }
  return values;
}

std::vector<std::uint64_t> evaluate(
    const graph& g, std::span<const std::uint64_t> input_values) {
  const std::vector<std::uint64_t> values = evaluate_all(g, input_values);
  std::vector<std::uint64_t> outputs;
  outputs.reserve(g.outputs().size());
  for (node_id out : g.outputs()) {
    outputs.push_back(values[out]);
  }
  return outputs;
}

}  // namespace isdc::ir
