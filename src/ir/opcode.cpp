#include "ir/opcode.h"

#include "support/check.h"

namespace isdc::ir {

std::string_view opcode_name(opcode op) {
  switch (op) {
    case opcode::input: return "input";
    case opcode::constant: return "constant";
    case opcode::add: return "add";
    case opcode::sub: return "sub";
    case opcode::neg: return "neg";
    case opcode::mul: return "mul";
    case opcode::band: return "and";
    case opcode::bor: return "or";
    case opcode::bxor: return "xor";
    case opcode::bnot: return "not";
    case opcode::shl: return "shl";
    case opcode::shr: return "shr";
    case opcode::rotl: return "rotl";
    case opcode::rotr: return "rotr";
    case opcode::eq: return "eq";
    case opcode::ne: return "ne";
    case opcode::ult: return "ult";
    case opcode::ule: return "ule";
    case opcode::mux: return "mux";
    case opcode::concat: return "concat";
    case opcode::slice: return "slice";
    case opcode::zext: return "zext";
    case opcode::sext: return "sext";
  }
  ISDC_UNREACHABLE("unknown opcode");
}

int opcode_arity(opcode op) {
  switch (op) {
    case opcode::input:
    case opcode::constant:
      return 0;
    case opcode::neg:
    case opcode::bnot:
    case opcode::slice:
    case opcode::zext:
    case opcode::sext:
      return 1;
    case opcode::add:
    case opcode::sub:
    case opcode::mul:
    case opcode::band:
    case opcode::bor:
    case opcode::bxor:
    case opcode::shl:
    case opcode::shr:
    case opcode::rotl:
    case opcode::rotr:
    case opcode::eq:
    case opcode::ne:
    case opcode::ult:
    case opcode::ule:
    case opcode::concat:
      return 2;
    case opcode::mux:
      return 3;
  }
  ISDC_UNREACHABLE("unknown opcode");
}

bool is_wiring_only(opcode op) {
  switch (op) {
    case opcode::slice:
    case opcode::concat:
    case opcode::zext:
      return true;
    default:
      return false;
  }
}

}  // namespace isdc::ir
