#include "ir/graph.h"

#include "support/check.h"
#include "support/hash.h"

namespace isdc::ir {

node_id graph::add_node(opcode op, std::uint32_t width,
                        std::vector<node_id> operands, std::uint64_t value,
                        std::string name) {
  ISDC_CHECK(width >= 1 && width <= 64,
             "node width must be in [1, 64], got " << width);
  ISDC_CHECK(static_cast<int>(operands.size()) == opcode_arity(op),
             opcode_name(op) << " expects " << opcode_arity(op)
                             << " operands, got " << operands.size());
  const node_id id = static_cast<node_id>(nodes_.size());
  for (node_id operand : operands) {
    ISDC_CHECK(operand < id, "operand " << operand
                                        << " does not precede node " << id);
    users_[operand].push_back(id);
  }
  nodes_.push_back(node{op, width, value, std::move(operands), std::move(name)});
  users_.emplace_back();
  output_mask_.push_back(false);
  if (op == opcode::input) {
    inputs_.push_back(id);
  }
  return id;
}

void graph::mark_output(node_id id) {
  ISDC_CHECK(id < nodes_.size(), "output id out of range");
  if (!output_mask_[id]) {
    output_mask_[id] = true;
    outputs_.push_back(id);
  }
}

const node& graph::at(node_id id) const {
  ISDC_CHECK(id < nodes_.size(), "node id " << id << " out of range");
  return nodes_[id];
}

bool graph::is_output(node_id id) const {
  ISDC_CHECK(id < nodes_.size());
  return output_mask_[id];
}

const std::vector<node_id>& graph::users(node_id id) const {
  ISDC_CHECK(id < nodes_.size());
  return users_[id];
}

bool graph::is_connected(node_id from, node_id to) const {
  ISDC_CHECK(from < nodes_.size() && to < nodes_.size());
  if (from == to) {
    return true;
  }
  if (from > to) {
    return false;  // ids are topological
  }
  // Backward DFS from `to`, pruned by id ordering.
  std::vector<node_id> stack{to};
  std::vector<bool> seen(to + 1, false);
  seen[to] = true;
  while (!stack.empty()) {
    const node_id cur = stack.back();
    stack.pop_back();
    for (node_id operand : nodes_[cur].operands) {
      if (operand == from) {
        return true;
      }
      if (operand > from && !seen[operand]) {
        seen[operand] = true;
        stack.push_back(operand);
      }
    }
  }
  return false;
}

std::uint64_t graph::fingerprint() const {
  fnv1a64 h;
  h.mix(nodes_.size());
  for (const node& n : nodes_) {
    h.mix(static_cast<std::uint64_t>(n.op))
        .mix(n.width)
        .mix(n.value)
        .mix(n.operands.size());
    for (node_id operand : n.operands) {
      h.mix(operand);
    }
  }
  for (node_id out : outputs_) {
    h.mix(out);
  }
  return h.value();
}

std::uint64_t graph::total_output_bits() const {
  std::uint64_t bits = 0;
  for (node_id out : outputs_) {
    bits += nodes_[out].width;
  }
  return bits;
}

}  // namespace isdc::ir
