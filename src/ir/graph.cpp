#include "ir/graph.h"

#include <atomic>
#include <mutex>
#include <optional>
#include <utility>

#include "ir/adjacency.h"
#include "support/check.h"
#include "support/hash.h"

namespace isdc::ir {

/// The lazily built flat-adjacency snapshot. Heap-boxed so graph keeps its
/// value semantics: copies start with a fresh (empty) cache, and the
/// once_flag/atomic members never move.
struct graph::adjacency_cache {
  std::once_flag once;
  std::atomic<bool> built{false};
  std::optional<flat_adjacency> adjacency;
};

graph::graph(std::string name)
    : name_(std::move(name)), adj_(std::make_unique<adjacency_cache>()) {}

graph::graph(const graph& other)
    : name_(other.name_),
      nodes_(other.nodes_),
      users_(other.users_),
      inputs_(other.inputs_),
      outputs_(other.outputs_),
      output_mask_(other.output_mask_),
      adj_(std::make_unique<adjacency_cache>()) {
  reintern_operands();
}

graph::graph(graph&& other) noexcept = default;

graph& graph::operator=(const graph& other) {
  if (this != &other) {
    name_ = other.name_;
    nodes_ = other.nodes_;
    users_ = other.users_;
    inputs_ = other.inputs_;
    outputs_ = other.outputs_;
    output_mask_ = other.output_mask_;
    operand_arena_.clear();
    reintern_operands();
    adj_ = std::make_unique<adjacency_cache>();
  }
  return *this;
}

void graph::reintern_operands() {
  // The just-copied operand_lists still view the source graph's arena,
  // which outlives this loop (the copy source is alive by contract), so
  // each list can be read while its replacement is interned here.
  for (node& n : nodes_) {
    n.operands =
        operand_list(operand_arena_.intern(n.operands.data(), n.operands.size()),
                     n.operands.size());
  }
}

graph& graph::operator=(graph&& other) noexcept = default;

graph::~graph() = default;

const flat_adjacency& graph::flat() const {
  if (!adj_) {
    // Only reachable on a moved-from graph being revived; single-threaded
    // by definition (the move itself was not thread-safe either).
    adj_ = std::make_unique<adjacency_cache>();
  }
  adjacency_cache& cache = *adj_;
  std::call_once(cache.once, [this, &cache] {
    cache.adjacency.emplace(*this);
    cache.built.store(true, std::memory_order_release);
  });
  return *cache.adjacency;
}

node_id graph::add_node(opcode op, std::uint32_t width,
                        std::vector<node_id> operands, std::uint64_t value,
                        std::string name) {
  ISDC_CHECK(width >= 1 && width <= 64,
             "node width must be in [1, 64], got " << width);
  ISDC_CHECK(static_cast<int>(operands.size()) == opcode_arity(op),
             opcode_name(op) << " expects " << opcode_arity(op)
                             << " operands, got " << operands.size());
  const node_id id = static_cast<node_id>(nodes_.size());
  if (adj_ == nullptr || adj_->built.load(std::memory_order_relaxed)) {
    adj_ = std::make_unique<adjacency_cache>();  // invalidate the snapshot
  }
  for (node_id operand : operands) {
    ISDC_CHECK(operand < id, "operand " << operand
                                        << " does not precede node " << id);
    users_[operand].push_back(id);
  }
  const operand_list stored(
      operand_arena_.intern(operands.data(), operands.size()),
      operands.size());
  nodes_.push_back(node{op, width, value, stored, std::move(name)});
  users_.emplace_back();
  output_mask_.push_back(false);
  if (op == opcode::input) {
    inputs_.push_back(id);
  }
  return id;
}

void graph::mark_output(node_id id) {
  ISDC_CHECK(id < nodes_.size(), "output id out of range");
  if (!output_mask_[id]) {
    output_mask_[id] = true;
    outputs_.push_back(id);
  }
}

const node& graph::at(node_id id) const {
  ISDC_CHECK(id < nodes_.size(), "node id " << id << " out of range");
  return nodes_[id];
}

bool graph::is_output(node_id id) const {
  ISDC_CHECK(id < nodes_.size());
  return output_mask_[id];
}

const std::vector<node_id>& graph::users(node_id id) const {
  ISDC_CHECK(id < nodes_.size());
  return users_[id];
}

bool graph::is_connected(node_id from, node_id to) const {
  ISDC_CHECK(from < nodes_.size() && to < nodes_.size());
  if (from == to) {
    return true;
  }
  if (from > to) {
    return false;  // ids are topological
  }
  // Backward DFS from `to`, pruned by id ordering.
  std::vector<node_id> stack{to};
  std::vector<bool> seen(to + 1, false);
  seen[to] = true;
  while (!stack.empty()) {
    const node_id cur = stack.back();
    stack.pop_back();
    for (node_id operand : nodes_[cur].operands) {
      if (operand == from) {
        return true;
      }
      if (operand > from && !seen[operand]) {
        seen[operand] = true;
        stack.push_back(operand);
      }
    }
  }
  return false;
}

std::uint64_t graph::fingerprint() const {
  fnv1a64 h;
  h.mix(nodes_.size());
  for (const node& n : nodes_) {
    h.mix(static_cast<std::uint64_t>(n.op))
        .mix(n.width)
        .mix(n.value)
        .mix(n.operands.size());
    for (node_id operand : n.operands) {
      h.mix(operand);
    }
  }
  for (node_id out : outputs_) {
    h.mix(out);
  }
  return h.value();
}

std::uint64_t graph::total_output_bits() const {
  std::uint64_t bits = 0;
  for (node_id out : outputs_) {
    bits += nodes_[out].width;
  }
  return bits;
}

}  // namespace isdc::ir
