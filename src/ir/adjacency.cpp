#include "ir/adjacency.h"

#include <algorithm>

namespace isdc::ir {

flat_adjacency::flat_adjacency(const graph& g) {
  const std::size_t n = g.num_nodes();
  operand_off_.assign(n + 1, 0);
  user_off_.assign(n + 1, 0);
  for (node_id v = 0; v < n; ++v) {
    const operand_list ops = g.at(v).operands;
    operand_off_[v + 1] =
        operand_off_[v] + static_cast<std::uint32_t>(ops.size());
    for (const node_id p : ops) {
      ++user_off_[p + 1];
    }
  }
  for (node_id v = 0; v < n; ++v) {
    user_off_[v + 1] += user_off_[v];
  }
  operand_data_.resize(operand_off_[n]);
  user_data_.resize(operand_off_[n]);
  // Filling in id order keeps every user list ascending, matching the
  // incremental order graph::users maintains.
  std::vector<std::uint32_t> cursor(user_off_.begin(), user_off_.end() - 1);
  for (node_id v = 0; v < n; ++v) {
    const operand_list ops = g.at(v).operands;
    std::copy(ops.begin(), ops.end(),
              operand_data_.begin() + operand_off_[v]);
    for (const node_id p : ops) {
      user_data_[cursor[p]++] = v;
    }
  }
}

}  // namespace isdc::ir
