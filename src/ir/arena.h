// Chunked id arena backing graph operand storage. Per-node
// std::vector<node_id> operand lists cost one heap allocation (plus
// malloc metadata) per node and scatter a traversal's operand reads
// across the heap; the arena packs every list into a few large chunks —
// contiguous in creation (= topological) order, which is exactly the
// order the kernels and fingerprint walks visit them — and frees them all
// at once. Chunks never move once allocated, so interned pointers stay
// valid across further interning and across graph moves.
#ifndef ISDC_IR_ARENA_H_
#define ISDC_IR_ARENA_H_

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <memory>
#include <vector>

#include "ir/opcode.h"

namespace isdc::ir {

using node_id = std::uint32_t;  // mirrors graph.h (kept header-light)

/// Bump allocator for immutable node_id arrays with stable addresses.
/// Not thread-safe for interning (graph mutation already is not);
/// interned storage is safe for concurrent readers.
class id_arena {
 public:
  id_arena() = default;
  id_arena(const id_arena&) = delete;
  id_arena& operator=(const id_arena&) = delete;
  id_arena(id_arena&&) noexcept = default;
  id_arena& operator=(id_arena&&) noexcept = default;

  /// Copies `count` ids into the arena and returns the stable location.
  /// count == 0 returns nullptr (an empty list needs no storage).
  const node_id* intern(const node_id* data, std::size_t count) {
    if (count == 0) {
      return nullptr;
    }
    if (chunks_.empty() || chunks_.back().used + count > chunks_.back().cap) {
      grow(count);
    }
    chunk& c = chunks_.back();
    node_id* dst = c.data.get() + c.used;
    std::memcpy(dst, data, count * sizeof(node_id));
    c.used += count;
    total_ += count;
    return dst;
  }

  /// Total ids interned since construction or the last clear().
  std::size_t size() const { return total_; }

  /// Bytes currently reserved by the arena's chunks.
  std::size_t capacity_bytes() const {
    std::size_t bytes = 0;
    for (const chunk& c : chunks_) {
      bytes += c.cap * sizeof(node_id);
    }
    return bytes;
  }

  /// Invalidates every interned pointer and recycles the storage: the
  /// largest chunk is kept (emptied) so a build/clear/rebuild cycle
  /// settles into zero allocations.
  void clear() {
    if (!chunks_.empty()) {
      auto largest = std::max_element(
          chunks_.begin(), chunks_.end(),
          [](const chunk& a, const chunk& b) { return a.cap < b.cap; });
      chunk keep = std::move(*largest);
      keep.used = 0;
      chunks_.clear();
      chunks_.push_back(std::move(keep));
    }
    total_ = 0;
  }

 private:
  struct chunk {
    std::unique_ptr<node_id[]> data;
    std::size_t cap = 0;
    std::size_t used = 0;
  };

  void grow(std::size_t at_least) {
    // Geometric growth bounds the chunk count at O(log total) while the
    // first chunk stays small enough not to tax tiny graphs.
    constexpr std::size_t kMinChunk = 1024;
    const std::size_t prev = chunks_.empty() ? 0 : chunks_.back().cap;
    const std::size_t cap = std::max({kMinChunk, prev * 2, at_least});
    chunks_.push_back(chunk{std::make_unique<node_id[]>(cap), cap, 0});
  }

  std::vector<chunk> chunks_;
  std::size_t total_ = 0;
};

}  // namespace isdc::ir

#endif  // ISDC_IR_ARENA_H_
