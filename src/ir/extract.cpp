#include "ir/extract.h"

#include <algorithm>

#include "support/check.h"

namespace isdc::ir {

extraction extract_subgraph(const graph& g, std::span<const node_id> members,
                            std::span<const node_id> roots) {
  extraction out;
  std::vector<node_id> sorted(members.begin(), members.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  ISDC_CHECK(!sorted.empty(), "subgraph extraction needs members");

  std::vector<bool> is_member(g.num_nodes(), false);
  for (node_id m : sorted) {
    ISDC_CHECK(m < g.num_nodes(), "member out of range");
    is_member[m] = true;
  }

  const auto map_external = [&](node_id original) -> node_id {
    if (const auto it = out.to_sub.find(original); it != out.to_sub.end()) {
      return it->second;
    }
    const node& n = g.at(original);
    node_id sub;
    if (n.op == opcode::constant) {
      sub = out.g.add_node(opcode::constant, n.width, {}, n.value, n.name);
    } else {
      sub = out.g.add_node(opcode::input, n.width, {}, 0,
                           "b" + std::to_string(original));
      out.boundary.push_back(original);
    }
    out.to_sub.emplace(original, sub);
    return sub;
  };

  // Members are processed in ascending id order, which is topological.
  for (node_id m : sorted) {
    const node& n = g.at(m);
    if (n.op == opcode::input || n.op == opcode::constant) {
      map_external(m);
      continue;
    }
    std::vector<node_id> operands;
    operands.reserve(n.operands.size());
    for (node_id p : n.operands) {
      if (is_member[p]) {
        const auto it = out.to_sub.find(p);
        ISDC_CHECK(it != out.to_sub.end(), "member operand not yet cloned");
        operands.push_back(it->second);
      } else {
        operands.push_back(map_external(p));
      }
    }
    const node_id sub =
        out.g.add_node(n.op, n.width, std::move(operands), n.value, n.name);
    out.to_sub.emplace(m, sub);
  }

  for (node_id r : roots) {
    const auto it = out.to_sub.find(r);
    ISDC_CHECK(it != out.to_sub.end(), "root " << r << " is not a member");
    out.g.mark_output(it->second);
  }
  return out;
}

}  // namespace isdc::ir
