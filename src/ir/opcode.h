// Operation set of the HLS IR.
//
// The IR is a bit-accurate, feed-forward dataflow graph: the abstraction an
// HLS pipeline scheduler (e.g. XLS) operates on. Operation delays are *not*
// part of the IR; they come from the pre-characterized delay model or, in
// ISDC, from downstream-tool feedback.
#ifndef ISDC_IR_OPCODE_H_
#define ISDC_IR_OPCODE_H_

#include <cstdint>
#include <string_view>

namespace isdc::ir {

enum class opcode : std::uint8_t {
  input,     ///< primary input (no operands)
  constant,  ///< literal value (no operands)
  add,       ///< a + b mod 2^w
  sub,       ///< a - b mod 2^w
  neg,       ///< -a mod 2^w
  mul,       ///< a * b mod 2^w (low half)
  band,      ///< a & b
  bor,       ///< a | b
  bxor,      ///< a ^ b
  bnot,      ///< ~a
  shl,       ///< a << b (zero fill; >= w shifts to 0)
  shr,       ///< a >> b logical
  rotl,      ///< rotate left by b mod w
  rotr,      ///< rotate right by b mod w
  eq,        ///< a == b, 1-bit result
  ne,        ///< a != b, 1-bit result
  ult,       ///< unsigned a < b, 1-bit result
  ule,       ///< unsigned a <= b, 1-bit result
  mux,       ///< sel ? on_true : on_false (operands: sel, on_true, on_false)
  concat,    ///< {hi, lo}; width = w(hi) + w(lo)
  slice,     ///< x[lo + width - 1 : lo]; `lo` stored in node::value
  zext,      ///< zero-extend to a wider width
  sext,      ///< sign-extend to a wider width
};

/// Human-readable mnemonic, e.g. "add".
std::string_view opcode_name(opcode op);

/// Number of operands the opcode requires.
int opcode_arity(opcode op);

/// True for operations that lower to wiring only (no gates): slices,
/// concatenations, extensions. Their characterized delay is ~0.
bool is_wiring_only(opcode op);

}  // namespace isdc::ir

#endif  // ISDC_IR_OPCODE_H_
