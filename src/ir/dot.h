// Graphviz export of IR graphs, optionally colored by pipeline stage.
#ifndef ISDC_IR_DOT_H_
#define ISDC_IR_DOT_H_

#include <ostream>
#include <span>

#include "ir/graph.h"

namespace isdc::ir {

/// Writes the graph in dot format. If `stages` is non-empty it must hold
/// one stage index per node; nodes are then clustered by pipeline stage
/// (the view used throughout the paper's Fig. 2).
void write_dot(std::ostream& os, const graph& g,
               std::span<const int> stages = {});

}  // namespace isdc::ir

#endif  // ISDC_IR_DOT_H_
