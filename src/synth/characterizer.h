// Pre-characterized per-operation delay model — the HLS-side timing
// oracle (the role XLS's delay model plays). Each (opcode, width) is
// synthesized *in isolation* through the full downstream flow and its
// critical delay cached. Summing these per-op delays along a path is
// exactly the estimate classic SDC scheduling uses, and exactly what
// deviates from the combined-subgraph timing (paper Fig. 1).
#ifndef ISDC_SYNTH_CHARACTERIZER_H_
#define ISDC_SYNTH_CHARACTERIZER_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "ir/graph.h"
#include "synth/synthesis.h"

namespace isdc::synth {

class delay_model {
public:
  explicit delay_model(synthesis_options options = {});

  /// Characterized delay of one operation kind at a width. `variable_amount`
  /// distinguishes variable shifts/rotates (barrel networks) from
  /// constant-amount ones (pure wiring, 0 ps).
  double op_delay_ps(ir::opcode op, std::uint32_t width,
                     bool variable_amount = false) const;

  /// Delay of a node in context: wiring-only ops and constant-amount
  /// shifts are free; everything else defers to op_delay_ps.
  double node_delay_ps(const ir::graph& g, ir::node_id id) const;

private:
  synthesis_options options_;
  mutable std::mutex mutex_;
  mutable std::unordered_map<std::uint64_t, double> cache_;
};

}  // namespace isdc::synth

#endif  // ISDC_SYNTH_CHARACTERIZER_H_
