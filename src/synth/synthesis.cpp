#include "synth/synthesis.h"

#include <utility>

#include "aig/balance.h"
#include "aig/refactor.h"
#include "aig/rewrite.h"
#include "lower/lowering.h"

namespace isdc::synth {

const cell_library& default_library() {
  static const cell_library lib = cell_library::sky130ish();
  return lib;
}

aig::aig optimize(aig::aig g, const synthesis_options& options) {
  // A resyn-style script: alternate depth-oriented balancing with local
  // Boolean restructuring until the graph stops improving (or the round
  // budget runs out).
  for (int round = 0; round < options.opt_rounds; ++round) {
    const int depth_before = g.depth();
    const std::size_t size_before = g.num_ands();
    g = aig::balance(g);
    if (options.use_rewrite) {
      g = aig::rewrite(g);
    }
    if (options.use_refactor) {
      g = aig::refactor(g);
    }
    g = aig::balance(g);
    if (g.depth() >= depth_before && g.num_ands() >= size_before) {
      break;  // converged
    }
  }
  return g.cleanup();
}

synthesis_result synthesize_aig(const aig::aig& g,
                                const synthesis_options& options,
                                netlist* mapped_out) {
  synthesis_result result;
  result.aig_depth_before = g.depth();
  const aig::aig optimized = optimize(g.cleanup(), options);
  result.aig_depth_after = optimized.depth();
  result.aig_nodes_after = optimized.num_ands();
  netlist mapped =
      technology_map(optimized, default_library(), options.mapping);
  const sta_result sta = analyze(mapped);
  result.critical_delay_ps = sta.critical_delay_ps;
  result.area = mapped.total_area();
  result.gate_count = mapped.num_gates();
  if (mapped_out != nullptr) {
    *mapped_out = std::move(mapped);
  }
  return result;
}

synthesis_result synthesize_graph(const ir::graph& g,
                                  const synthesis_options& options,
                                  netlist* mapped_out) {
  const lower::lowering_result lowered = lower::lower_graph(g);
  return synthesize_aig(lowered.net, options, mapped_out);
}

}  // namespace isdc::synth
