#include "synth/characterizer.h"

#include "ir/builder.h"
#include "support/check.h"

namespace isdc::synth {

namespace {

/// Builds the single-operation graph used for isolated characterization.
ir::graph single_op_graph(ir::opcode op, std::uint32_t width) {
  ir::graph g("char");
  ir::builder b(g);
  ir::node_id result = ir::invalid_node;
  switch (op) {
    case ir::opcode::add:
      result = b.add(b.input(width, "a"), b.input(width, "b"));
      break;
    case ir::opcode::sub:
      result = b.sub(b.input(width, "a"), b.input(width, "b"));
      break;
    case ir::opcode::neg:
      result = b.neg(b.input(width, "a"));
      break;
    case ir::opcode::mul:
      result = b.mul(b.input(width, "a"), b.input(width, "b"));
      break;
    case ir::opcode::band:
      result = b.band(b.input(width, "a"), b.input(width, "b"));
      break;
    case ir::opcode::bor:
      result = b.bor(b.input(width, "a"), b.input(width, "b"));
      break;
    case ir::opcode::bxor:
      result = b.bxor(b.input(width, "a"), b.input(width, "b"));
      break;
    case ir::opcode::bnot:
      result = b.bnot(b.input(width, "a"));
      break;
    case ir::opcode::shl:
    case ir::opcode::shr:
    case ir::opcode::rotl:
    case ir::opcode::rotr: {
      std::uint32_t amount_bits = 1;
      while ((1u << amount_bits) < width) {
        ++amount_bits;
      }
      const ir::node_id a = b.input(width, "a");
      const ir::node_id amt = b.input(amount_bits + 1, "amt");
      if (op == ir::opcode::shl) {
        result = b.shl(a, amt);
      } else if (op == ir::opcode::shr) {
        result = b.shr(a, amt);
      } else if (op == ir::opcode::rotl) {
        result = b.rotl(a, amt);
      } else {
        result = b.rotr(a, amt);
      }
      break;
    }
    case ir::opcode::eq:
      result = b.eq(b.input(width, "a"), b.input(width, "b"));
      break;
    case ir::opcode::ne:
      result = b.ne(b.input(width, "a"), b.input(width, "b"));
      break;
    case ir::opcode::ult:
      result = b.ult(b.input(width, "a"), b.input(width, "b"));
      break;
    case ir::opcode::ule:
      result = b.ule(b.input(width, "a"), b.input(width, "b"));
      break;
    case ir::opcode::mux:
      result = b.mux(b.input(1, "sel"), b.input(width, "t"),
                     b.input(width, "f"));
      break;
    default:
      ISDC_UNREACHABLE("opcode needs no characterization");
  }
  g.mark_output(result);
  return g;
}

}  // namespace

delay_model::delay_model(synthesis_options options)
    : options_(std::move(options)) {}

double delay_model::op_delay_ps(ir::opcode op, std::uint32_t width,
                                bool variable_amount) const {
  switch (op) {
    case ir::opcode::input:
    case ir::opcode::constant:
    case ir::opcode::slice:
    case ir::opcode::concat:
    case ir::opcode::zext:
    case ir::opcode::sext:
      return 0.0;
    case ir::opcode::shl:
    case ir::opcode::shr:
    case ir::opcode::rotl:
    case ir::opcode::rotr:
      if (!variable_amount) {
        return 0.0;  // constant-amount shifts are wiring
      }
      break;
    default:
      break;
  }
  const std::uint64_t key = (static_cast<std::uint64_t>(op) << 32) | width;
  {
    std::lock_guard lock(mutex_);
    if (const auto it = cache_.find(key); it != cache_.end()) {
      return it->second;
    }
  }
  const ir::graph g = single_op_graph(op, width);
  const double delay = synthesize_graph(g, options_).critical_delay_ps;
  std::lock_guard lock(mutex_);
  cache_.emplace(key, delay);
  return delay;
}

double delay_model::node_delay_ps(const ir::graph& g, ir::node_id id) const {
  const ir::node& n = g.at(id);
  bool variable_amount = false;
  switch (n.op) {
    case ir::opcode::shl:
    case ir::opcode::shr:
    case ir::opcode::rotl:
    case ir::opcode::rotr:
      variable_amount =
          g.at(n.operands[1]).op != ir::opcode::constant;
      break;
    default:
      break;
  }
  // Comparisons are characterized at their operand width, not their 1-bit
  // result width.
  std::uint32_t width = n.width;
  switch (n.op) {
    case ir::opcode::eq:
    case ir::opcode::ne:
    case ir::opcode::ult:
    case ir::opcode::ule:
      width = g.width(n.operands[0]);
      break;
    default:
      break;
  }
  return op_delay_ps(n.op, width, variable_amount);
}

}  // namespace isdc::synth
