#include "synth/netlist.h"

#include "support/check.h"

namespace isdc::synth {

netlist::netlist(const cell_library& lib) : lib_(&lib) {
  driver_.assign(2, -1);  // const0 and const1
}

net_id netlist::add_pi() {
  const net_id n = static_cast<net_id>(driver_.size());
  driver_.push_back(-1);
  pis_.push_back(n);
  return n;
}

net_id netlist::add_gate(int cell_index, std::vector<net_id> fanins) {
  const cell& c = lib_->at(cell_index);
  ISDC_CHECK(fanins.size() == static_cast<std::size_t>(c.num_inputs),
             "gate " << c.name << " expects " << c.num_inputs << " fanins");
  for (net_id f : fanins) {
    ISDC_CHECK(f < driver_.size(), "gate fanin net out of range");
  }
  const net_id out = static_cast<net_id>(driver_.size());
  driver_.push_back(static_cast<int>(gates_.size()));
  gates_.push_back(gate{cell_index, std::move(fanins)});
  return out;
}

void netlist::add_po(net_id n) {
  ISDC_CHECK(n < driver_.size(), "PO net out of range");
  pos_.push_back(n);
}

double netlist::total_area() const {
  double area = 0.0;
  for (const gate& g : gates_) {
    area += lib_->at(g.cell_index).area;
  }
  return area;
}

std::vector<std::uint64_t> netlist::simulate(
    std::span<const std::uint64_t> pi_patterns) const {
  ISDC_CHECK(pi_patterns.size() == pis_.size(),
             "expected " << pis_.size() << " PI patterns");
  std::vector<std::uint64_t> words(driver_.size(), 0);
  words[net_const1] = ~0ull;
  for (std::size_t i = 0; i < pis_.size(); ++i) {
    words[pis_[i]] = pi_patterns[i];
  }
  // Gates were created topologically; net ids of gate outputs are
  // 2 + num_pis + gate_index in creation order... but PIs may interleave
  // with gates in principle, so recompute output net per gate by scanning.
  std::vector<net_id> gate_out(gates_.size());
  for (net_id n = 0; n < driver_.size(); ++n) {
    if (driver_[n] >= 0) {
      gate_out[static_cast<std::size_t>(driver_[n])] = n;
    }
  }
  for (std::size_t gi = 0; gi < gates_.size(); ++gi) {
    const gate& g = gates_[gi];
    const cell& c = lib_->at(g.cell_index);
    // Evaluate the cell's truth table minterm by minterm over the packed
    // pattern words.
    std::uint64_t out = 0;
    for (unsigned m = 0; m < (1u << c.num_inputs); ++m) {
      if (((c.function >> m) & 1) == 0) {
        continue;
      }
      std::uint64_t term = ~0ull;
      for (int pin = 0; pin < c.num_inputs; ++pin) {
        const std::uint64_t w = words[g.fanins[static_cast<std::size_t>(pin)]];
        term &= ((m >> pin) & 1) != 0 ? w : ~w;
      }
      out |= term;
    }
    words[gate_out[gi]] = out;
  }
  return words;
}

std::vector<std::uint64_t> netlist::simulate_outputs(
    std::span<const std::uint64_t> pi_patterns) const {
  const std::vector<std::uint64_t> words = simulate(pi_patterns);
  std::vector<std::uint64_t> out;
  out.reserve(pos_.size());
  for (net_id po : pos_) {
    out.push_back(words[po]);
  }
  return out;
}

}  // namespace isdc::synth
