// Static timing analysis over mapped netlists (the OpenSTA stand-in):
// topological arrival-time propagation with per-cell delays, critical path
// extraction and slack reporting.
#ifndef ISDC_SYNTH_STA_H_
#define ISDC_SYNTH_STA_H_

#include <vector>

#include "synth/netlist.h"

namespace isdc::synth {

struct sta_result {
  std::vector<double> arrival_ps;  ///< per net
  double critical_delay_ps = 0.0;  ///< max arrival over POs
  net_id critical_endpoint = 0;    ///< PO net achieving the max
};

/// Arrival times assuming all PIs (and constants) are valid at t = 0.
sta_result analyze(const netlist& nl);

/// Clock period minus the critical delay.
double worst_slack_ps(const netlist& nl, double clock_period_ps);

/// Nets of the critical path, endpoint first.
std::vector<net_id> critical_path(const netlist& nl);

}  // namespace isdc::synth

#endif  // ISDC_SYNTH_STA_H_
