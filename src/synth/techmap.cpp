#include "synth/techmap.h"

#include <algorithm>
#include <limits>

#include "aig/cuts.h"
#include "support/check.h"

namespace isdc::synth {

namespace {

constexpr double infinite_arrival = std::numeric_limits<double>::max() / 4;

/// Removes a vacuous variable from a truth table, shrinking it by one var.
aig::tt6 tt_drop_var(aig::tt6 f, int var, int num_vars) {
  aig::tt6 out = 0;
  const int out_size = 1 << (num_vars - 1);
  for (int m = 0; m < out_size; ++m) {
    // Insert a 0 bit at position `var`.
    const int low = m & ((1 << var) - 1);
    const int high = (m >> var) << (var + 1);
    const int src = high | low;
    if ((f >> src) & 1) {
      out |= 1ull << m;
    }
  }
  return out;
}

/// Best implementation of one (node, phase).
struct impl_choice {
  enum class kind { unset, constant, pi, cell, inverter };
  kind k = kind::unset;
  double arrival = infinite_arrival;
  double area = 0.0;                      // tiebreak
  std::vector<aig::node_index> leaves;    // for cell: leaf per variable
  cell_match match;                       // for cell
};

class mapper {
public:
  mapper(const aig::aig& g, const cell_library& lib,
         const techmap_options& options)
      : g_(g), lib_(lib), options_(options), out_(lib) {}

  netlist run() {
    compute_choices();
    extract_cover();
    return std::move(out_);
  }

private:
  void compute_choices() {
    choices_.assign(g_.num_nodes(), {});
    const double inv = lib_.inverter_delay_ps();

    aig::cut_enumeration_options cut_opts;
    cut_opts.k = options_.cut_size;
    cut_opts.max_cuts = options_.max_cuts_per_node;
    const auto cuts = aig::enumerate_cuts(g_, cut_opts);

    for (aig::node_index n = 0; n < g_.num_nodes(); ++n) {
      auto& [pos, neg] = choices_[n];
      if (g_.is_const0(n)) {
        pos.k = impl_choice::kind::constant;
        pos.arrival = 0.0;
        neg.k = impl_choice::kind::constant;
        neg.arrival = 0.0;
        continue;
      }
      if (g_.is_pi(n)) {
        pos.k = impl_choice::kind::pi;
        pos.arrival = 0.0;
        neg.k = impl_choice::kind::inverter;
        neg.arrival = inv;
        continue;
      }
      for (const aig::cut& c : cuts[n]) {
        if (c.size == 1 && c.leaves[0] == n) {
          continue;  // trivial self-cut cannot implement the node
        }
        aig::tt6 f = aig::cut_function(g_, n, c);
        // Support compaction.
        std::vector<aig::node_index> leaves(c.leaves.begin(),
                                            c.leaves.begin() + c.size);
        int vars = c.size;
        for (int v = vars - 1; v >= 0; --v) {
          if (!aig::tt_depends_on(f, v, vars)) {
            f = tt_drop_var(f, v, vars);
            leaves.erase(leaves.begin() + v);
            --vars;
          }
        }
        if (vars == 0 || vars > 4) {
          continue;  // constants fold during AIG construction; >4 unmatched
        }
        for (int phase = 0; phase < 2; ++phase) {
          const aig::tt6 target =
              phase == 0 ? f : (~f & aig::tt_mask(vars));
          const auto* matches = lib_.find(vars, target);
          if (matches == nullptr) {
            continue;
          }
          impl_choice& slot = phase == 0 ? pos : neg;
          for (const cell_match& m : *matches) {
            const cell& cl = lib_.at(m.cell_index);
            double arrival = 0.0;
            for (int v = 0; v < vars; ++v) {
              arrival = std::max(
                  arrival,
                  choices_[leaves[static_cast<std::size_t>(v)]].first.arrival);
            }
            arrival += cl.delay_ps;
            if (arrival < slot.arrival ||
                (arrival == slot.arrival && cl.area < slot.area)) {
              slot.k = impl_choice::kind::cell;
              slot.arrival = arrival;
              slot.area = cl.area;
              slot.leaves = leaves;
              slot.match = m;
            }
          }
        }
      }
      ISDC_CHECK(pos.k != impl_choice::kind::unset ||
                     neg.k != impl_choice::kind::unset,
                 "node " << n << " has no library match");
      // Inverter relaxation between phases.
      if (neg.arrival + inv < pos.arrival) {
        pos.k = impl_choice::kind::inverter;
        pos.arrival = neg.arrival + inv;
      }
      if (pos.arrival + inv < neg.arrival) {
        neg.k = impl_choice::kind::inverter;
        neg.arrival = pos.arrival + inv;
      }
    }
  }

  net_id realize(aig::node_index n, int phase) {
    auto& slot = phase == 0 ? nets_[n].first : nets_[n].second;
    if (slot != absent) {
      return slot;
    }
    const impl_choice& choice =
        phase == 0 ? choices_[n].first : choices_[n].second;
    switch (choice.k) {
      case impl_choice::kind::constant:
        slot = phase == 0 ? net_const0 : net_const1;
        break;
      case impl_choice::kind::pi:
        slot = pi_nets_[n];
        break;
      case impl_choice::kind::inverter: {
        const net_id in = realize(n, 1 - phase);
        slot = out_.add_gate(lib_.inverter_index(), {in});
        break;
      }
      case impl_choice::kind::cell: {
        const cell& cl = lib_.at(choice.match.cell_index);
        std::vector<net_id> fanins(static_cast<std::size_t>(cl.num_inputs));
        for (int pin = 0; pin < cl.num_inputs; ++pin) {
          const int var = choice.match.pin_to_var[static_cast<std::size_t>(pin)];
          fanins[static_cast<std::size_t>(pin)] =
              realize(choice.leaves[static_cast<std::size_t>(var)], 0);
        }
        slot = out_.add_gate(choice.match.cell_index, std::move(fanins));
        break;
      }
      case impl_choice::kind::unset:
        ISDC_UNREACHABLE("realizing a node without an implementation");
    }
    return slot;
  }

  void extract_cover() {
    nets_.assign(g_.num_nodes(), {absent, absent});
    pi_nets_.assign(g_.num_nodes(), absent);
    for (aig::node_index pi : g_.pis()) {
      pi_nets_[pi] = out_.add_pi();
    }
    for (aig::literal po : g_.pos()) {
      out_.add_po(realize(aig::lit_node(po),
                          aig::lit_complemented(po) ? 1 : 0));
    }
  }

  static constexpr net_id absent = static_cast<net_id>(-1);

  const aig::aig& g_;
  const cell_library& lib_;
  techmap_options options_;
  netlist out_;
  std::vector<std::pair<impl_choice, impl_choice>> choices_;
  std::vector<std::pair<net_id, net_id>> nets_;
  std::vector<net_id> pi_nets_;
};

}  // namespace

netlist technology_map(const aig::aig& g, const cell_library& lib,
                       const techmap_options& options) {
  return mapper(g, lib, options).run();
}

}  // namespace isdc::synth
