// Synthetic standard-cell library ("sky130ish").
//
// The paper evaluates on the open-source SKY130 PDK through Yosys+OpenSTA.
// We cannot ship the PDK, so this library models a comparable cell set
// (inverters, NAND/NOR/AND/OR 2-4, XOR/XNOR, AOI/OAI, MUX, MAJ, XOR3) with
// picosecond delays calibrated to the same order of magnitude as SKY130 HD
// typical-corner cells under modest load. Absolute numbers differ from the
// paper's; DESIGN.md explains why only the *shape* of results transfers.
#ifndef ISDC_SYNTH_CELL_LIBRARY_H_
#define ISDC_SYNTH_CELL_LIBRARY_H_

#include <array>
#include <string>
#include <unordered_map>
#include <vector>

#include "aig/truth_table.h"

namespace isdc::synth {

struct cell {
  std::string name;
  int num_inputs = 0;       ///< 1..4
  aig::tt6 function = 0;    ///< truth table over num_inputs variables
  double delay_ps = 0.0;    ///< worst pin-to-pin delay
  double area = 0.0;        ///< relative cell area
};

/// A library match: implement a k-input function with `cell_index`,
/// connecting cell pin j to function variable pin_to_var[j].
struct cell_match {
  int cell_index = 0;
  std::array<int, 4> pin_to_var{};
};

class cell_library {
public:
  /// The default synthetic library described above.
  static cell_library sky130ish();

  explicit cell_library(std::vector<cell> cells);

  const std::vector<cell>& cells() const { return cells_; }
  const cell& at(int index) const { return cells_[static_cast<std::size_t>(index)]; }

  /// Matches of the exact function `f` over `num_vars` variables (every
  /// variable must be in f's support for matching to be meaningful).
  /// Returns nullptr when no cell implements f under any pin permutation.
  const std::vector<cell_match>* find(int num_vars, aig::tt6 f) const;

  /// Index and delay of the inverter cell.
  int inverter_index() const { return inverter_index_; }
  double inverter_delay_ps() const;

private:
  std::vector<cell> cells_;
  // (num_vars, tt) -> matches.
  std::vector<std::unordered_map<aig::tt6, std::vector<cell_match>>> index_;
  int inverter_index_ = -1;
};

}  // namespace isdc::synth

#endif  // ISDC_SYNTH_CELL_LIBRARY_H_
