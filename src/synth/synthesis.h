// The "downstream tool" pipeline: lower -> optimize (balance / rewrite /
// refactor rounds, the resyn analogue) -> technology map -> STA. This is
// the flow ISDC's feedback loop invokes on every extracted subgraph, and
// the flow used to pre-characterize individual operations.
#ifndef ISDC_SYNTH_SYNTHESIS_H_
#define ISDC_SYNTH_SYNTHESIS_H_

#include "aig/aig.h"
#include "ir/graph.h"
#include "synth/sta.h"
#include "synth/techmap.h"

namespace isdc::synth {

struct synthesis_options {
  int opt_rounds = 2;        ///< balance/rewrite/refactor iterations
  bool use_rewrite = true;
  bool use_refactor = true;
  techmap_options mapping;
};

struct synthesis_result {
  double critical_delay_ps = 0.0;
  double area = 0.0;
  std::size_t gate_count = 0;
  int aig_depth_before = 0;   ///< after lowering, before optimization
  int aig_depth_after = 0;    ///< after the optimization script
  std::size_t aig_nodes_after = 0;
};

/// The process-design-kit singleton used across the library.
const cell_library& default_library();

/// Runs the optimization script on an AIG (strash is implicit).
aig::aig optimize(aig::aig g, const synthesis_options& options = {});

/// optimize + map + STA.
synthesis_result synthesize_aig(const aig::aig& g,
                                const synthesis_options& options = {},
                                netlist* mapped_out = nullptr);

/// Full flow from the word-level IR.
synthesis_result synthesize_graph(const ir::graph& g,
                                  const synthesis_options& options = {},
                                  netlist* mapped_out = nullptr);

}  // namespace isdc::synth

#endif  // ISDC_SYNTH_SYNTHESIS_H_
