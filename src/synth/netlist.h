// Mapped gate-level netlist: the output of technology mapping and the
// input of static timing analysis. Nets are single-driver; net 0/1 are the
// constant nets.
#ifndef ISDC_SYNTH_NETLIST_H_
#define ISDC_SYNTH_NETLIST_H_

#include <cstdint>
#include <span>
#include <vector>

#include "synth/cell_library.h"

namespace isdc::synth {

using net_id = std::uint32_t;

inline constexpr net_id net_const0 = 0;
inline constexpr net_id net_const1 = 1;

/// One instantiated cell; fanins are net ids in cell-pin order.
struct gate {
  int cell_index = 0;
  std::vector<net_id> fanins;
};

class netlist {
public:
  explicit netlist(const cell_library& lib);

  net_id add_pi();
  /// Instantiates `cell_index`; returns the gate's output net. Fanin nets
  /// must already exist (gates are created in topological order).
  net_id add_gate(int cell_index, std::vector<net_id> fanins);
  void add_po(net_id n);

  const cell_library& library() const { return *lib_; }
  std::size_t num_nets() const { return driver_.size(); }
  std::size_t num_gates() const { return gates_.size(); }
  const std::vector<gate>& gates() const { return gates_; }
  const std::vector<net_id>& pis() const { return pis_; }
  const std::vector<net_id>& pos() const { return pos_; }

  /// -1 for PIs/constants, otherwise the index of the driving gate.
  int driver_gate(net_id n) const { return driver_[n]; }

  double total_area() const;

  /// 64-way parallel simulation; one pattern word per PI.
  std::vector<std::uint64_t> simulate(std::span<const std::uint64_t>
                                          pi_patterns) const;
  std::vector<std::uint64_t> simulate_outputs(std::span<const std::uint64_t>
                                                  pi_patterns) const;

private:
  const cell_library* lib_;
  std::vector<gate> gates_;
  std::vector<int> driver_;  // per net: gate index or -1
  std::vector<net_id> pis_;
  std::vector<net_id> pos_;
};

}  // namespace isdc::synth

#endif  // ISDC_SYNTH_NETLIST_H_
