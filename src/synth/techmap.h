// Structural technology mapping: covers the optimized AIG with library
// cells using 4-feasible cuts, minimizing arrival time (area as tiebreak).
// Both polarities of every node are tracked so complemented AIG edges cost
// at most one inverter — the standard two-phase mapping formulation.
#ifndef ISDC_SYNTH_TECHMAP_H_
#define ISDC_SYNTH_TECHMAP_H_

#include "aig/aig.h"
#include "synth/netlist.h"

namespace isdc::synth {

struct techmap_options {
  int cut_size = 4;
  int max_cuts_per_node = 10;
};

/// Maps `g` onto `lib`. The returned netlist has one PI per AIG PI (same
/// order) and one PO per AIG PO (same order).
netlist technology_map(const aig::aig& g, const cell_library& lib,
                       const techmap_options& options = {});

}  // namespace isdc::synth

#endif  // ISDC_SYNTH_TECHMAP_H_
