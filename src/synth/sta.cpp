#include "synth/sta.h"

#include <algorithm>

#include "support/check.h"

namespace isdc::synth {

sta_result analyze(const netlist& nl) {
  sta_result result;
  result.arrival_ps.assign(nl.num_nets(), 0.0);
  // Gates are stored in topological order; find each gate's output net.
  std::vector<net_id> gate_out(nl.num_gates());
  for (net_id n = 0; n < nl.num_nets(); ++n) {
    if (nl.driver_gate(n) >= 0) {
      gate_out[static_cast<std::size_t>(nl.driver_gate(n))] = n;
    }
  }
  for (std::size_t gi = 0; gi < nl.num_gates(); ++gi) {
    const gate& g = nl.gates()[gi];
    double arrival = 0.0;
    for (net_id f : g.fanins) {
      arrival = std::max(arrival, result.arrival_ps[f]);
    }
    arrival += nl.library().at(g.cell_index).delay_ps;
    result.arrival_ps[gate_out[gi]] = arrival;
  }
  for (net_id po : nl.pos()) {
    if (result.arrival_ps[po] >= result.critical_delay_ps) {
      result.critical_delay_ps = result.arrival_ps[po];
      result.critical_endpoint = po;
    }
  }
  return result;
}

double worst_slack_ps(const netlist& nl, double clock_period_ps) {
  return clock_period_ps - analyze(nl).critical_delay_ps;
}

std::vector<net_id> critical_path(const netlist& nl) {
  const sta_result sta = analyze(nl);
  std::vector<net_id> path;
  net_id cur = sta.critical_endpoint;
  path.push_back(cur);
  while (nl.driver_gate(cur) >= 0) {
    const gate& g = nl.gates()[static_cast<std::size_t>(nl.driver_gate(cur))];
    // Follow the latest-arriving fanin.
    net_id worst = g.fanins.front();
    for (net_id f : g.fanins) {
      if (sta.arrival_ps[f] > sta.arrival_ps[worst]) {
        worst = f;
      }
    }
    cur = worst;
    path.push_back(cur);
  }
  return path;
}

}  // namespace isdc::synth
