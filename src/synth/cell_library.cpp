#include "synth/cell_library.h"

#include <algorithm>
#include <functional>

#include "support/check.h"

namespace isdc::synth {

namespace {

/// Builds a truth table from a predicate over the input bit vector.
aig::tt6 table_of(int num_inputs, const std::function<bool(unsigned)>& fn) {
  aig::tt6 f = 0;
  for (unsigned m = 0; m < (1u << num_inputs); ++m) {
    if (fn(m)) {
      f |= 1ull << m;
    }
  }
  return f;
}

bool bit(unsigned m, int i) { return ((m >> i) & 1) != 0; }

}  // namespace

cell_library cell_library::sky130ish() {
  std::vector<cell> cells;
  const auto add = [&cells](std::string name, int k, double delay_ps,
                            double area,
                            const std::function<bool(unsigned)>& fn) {
    cells.push_back(cell{std::move(name), k, table_of(k, fn), delay_ps, area});
  };

  // Delays: ballpark SKY130 HD typical with FO2-ish load, in picoseconds.
  add("inv", 1, 40.0, 1.0, [](unsigned m) { return !bit(m, 0); });
  add("buf", 1, 65.0, 1.25, [](unsigned m) { return bit(m, 0); });

  add("nand2", 2, 55.0, 1.25,
      [](unsigned m) { return !(bit(m, 0) && bit(m, 1)); });
  add("nor2", 2, 70.0, 1.25,
      [](unsigned m) { return !(bit(m, 0) || bit(m, 1)); });
  add("and2", 2, 85.0, 1.5,
      [](unsigned m) { return bit(m, 0) && bit(m, 1); });
  add("or2", 2, 95.0, 1.5,
      [](unsigned m) { return bit(m, 0) || bit(m, 1); });
  add("xor2", 2, 155.0, 2.5,
      [](unsigned m) { return bit(m, 0) != bit(m, 1); });
  add("xnor2", 2, 150.0, 2.5,
      [](unsigned m) { return bit(m, 0) == bit(m, 1); });
  // Inverted-second-input variants (SKY130's *_2b cells); these make the
  // library complete for every 2-variable function, so the fanin-pair cut
  // of any AIG node always has a direct match.
  add("and2b", 2, 90.0, 1.75,
      [](unsigned m) { return bit(m, 0) && !bit(m, 1); });
  add("nand2b", 2, 60.0, 1.5,
      [](unsigned m) { return !(bit(m, 0) && !bit(m, 1)); });
  add("or2b", 2, 100.0, 1.75,
      [](unsigned m) { return bit(m, 0) || !bit(m, 1); });
  add("nor2b", 2, 75.0, 1.5,
      [](unsigned m) { return !(bit(m, 0) || !bit(m, 1)); });

  add("nand3", 3, 75.0, 1.75,
      [](unsigned m) { return !(bit(m, 0) && bit(m, 1) && bit(m, 2)); });
  add("nor3", 3, 100.0, 1.75,
      [](unsigned m) { return !(bit(m, 0) || bit(m, 1) || bit(m, 2)); });
  add("and3", 3, 105.0, 2.0,
      [](unsigned m) { return bit(m, 0) && bit(m, 1) && bit(m, 2); });
  add("or3", 3, 115.0, 2.0,
      [](unsigned m) { return bit(m, 0) || bit(m, 1) || bit(m, 2); });
  add("nand4", 4, 95.0, 2.25, [](unsigned m) {
    return !(bit(m, 0) && bit(m, 1) && bit(m, 2) && bit(m, 3));
  });
  add("nor4", 4, 125.0, 2.25, [](unsigned m) {
    return !(bit(m, 0) || bit(m, 1) || bit(m, 2) || bit(m, 3));
  });

  add("aoi21", 3, 95.0, 1.75, [](unsigned m) {
    return !((bit(m, 0) && bit(m, 1)) || bit(m, 2));
  });
  add("oai21", 3, 95.0, 1.75, [](unsigned m) {
    return !((bit(m, 0) || bit(m, 1)) && bit(m, 2));
  });
  add("aoi22", 4, 120.0, 2.25, [](unsigned m) {
    return !((bit(m, 0) && bit(m, 1)) || (bit(m, 2) && bit(m, 3)));
  });
  add("oai22", 4, 120.0, 2.25, [](unsigned m) {
    return !((bit(m, 0) || bit(m, 1)) && (bit(m, 2) || bit(m, 3)));
  });

  add("mux2", 3, 140.0, 2.75, [](unsigned m) {
    return bit(m, 2) ? bit(m, 0) : bit(m, 1);
  });
  add("maj3", 3, 135.0, 2.5, [](unsigned m) {
    const int sum = static_cast<int>(bit(m, 0)) + static_cast<int>(bit(m, 1)) +
                    static_cast<int>(bit(m, 2));
    return sum >= 2;
  });
  add("xor3", 3, 280.0, 4.0, [](unsigned m) {
    return (bit(m, 0) != bit(m, 1)) != bit(m, 2);
  });
  add("xnor3", 3, 275.0, 4.0, [](unsigned m) {
    return !((bit(m, 0) != bit(m, 1)) != bit(m, 2));
  });

  return cell_library(std::move(cells));
}

cell_library::cell_library(std::vector<cell> cells)
    : cells_(std::move(cells)), index_(5) {
  for (int ci = 0; ci < static_cast<int>(cells_.size()); ++ci) {
    const cell& c = cells_[static_cast<std::size_t>(ci)];
    ISDC_CHECK(c.num_inputs >= 1 && c.num_inputs <= 4,
               "cell " << c.name << " has unsupported input count");
    if (c.name == "inv") {
      inverter_index_ = ci;
    }
    // Register the cell under every pin permutation.
    std::array<int, 4> perm{};
    for (int i = 0; i < c.num_inputs; ++i) {
      perm[static_cast<std::size_t>(i)] = i;
    }
    do {
      const aig::tt6 permuted = aig::tt_permute(
          c.function, c.num_inputs,
          std::span<const int>(perm.data(),
                               static_cast<std::size_t>(c.num_inputs)));
      // tt_permute(h, perm) evaluates pin j at variable perm^-1(j), so the
      // pin-to-variable map stored with the match is the inverse
      // permutation.
      cell_match match;
      match.cell_index = ci;
      for (int i = 0; i < c.num_inputs; ++i) {
        match.pin_to_var[static_cast<std::size_t>(
            perm[static_cast<std::size_t>(i)])] = i;
      }
      index_[static_cast<std::size_t>(c.num_inputs)][permuted].push_back(
          match);
    } while (std::next_permutation(
        perm.begin(), perm.begin() + c.num_inputs));
  }
  ISDC_CHECK(inverter_index_ >= 0, "library must contain an inverter");
}

const std::vector<cell_match>* cell_library::find(int num_vars,
                                                  aig::tt6 f) const {
  ISDC_CHECK(num_vars >= 1 && num_vars <= 4);
  const auto& bucket = index_[static_cast<std::size_t>(num_vars)];
  const auto it = bucket.find(f & aig::tt_mask(num_vars));
  return it == bucket.end() ? nullptr : &it->second;
}

double cell_library::inverter_delay_ps() const {
  return cells_[static_cast<std::size_t>(inverter_index_)].delay_ps;
}

}  // namespace isdc::synth
