// Per-iteration invariant validation through the observer API: attach an
// invariant_validator to an engine and every iterate of the run is checked
// for schedule legality (sched::validate_schedule), graph/matrix
// consistency (sched::validate_matrix) and feedback monotonicity
// (sched::validate_matrix_monotonic — matrix entries only ever go down),
// plus ir::verify on the design itself at run begin. The fuzz driver and
// the chaos soak both hang one of these on every run; tests assert ok().
//
// One validator watches one run at a time: it snapshots the previous
// iterate's matrix for the monotonicity check, so it must NOT be shared
// across concurrent fleet jobs — give each job its own instance.
#ifndef ISDC_ENGINE_VALIDATOR_H_
#define ISDC_ENGINE_VALIDATOR_H_

#include <optional>
#include <string>
#include <vector>

#include "engine/observer.h"
#include "sched/delay_matrix.h"

namespace isdc::engine {

struct validator_options {
  bool check_graph = true;     ///< ir::verify at on_run_begin
  bool check_schedule = true;  ///< validate_schedule per iterate
  /// validate_matrix on the baseline iterate only; later iterates are
  /// covered inductively by the monotonicity check (the connectivity
  /// pattern never changes and entries only move down).
  bool check_matrix = true;
  /// validate_matrix_monotonic against the previous iterate's snapshot.
  /// Copies the n x n matrix once per iterate; on very large designs turn
  /// this off and rely on the baseline consistency check.
  bool check_monotonic = true;
  double epsilon_ps = 1e-3;
  std::size_t max_violations = 64;  ///< stop collecting past this many
};

/// Observer that checks every iterate. Violations accumulate across the
/// run (and across runs, until reset()); each is prefixed with the design
/// name and iteration for attribution.
class invariant_validator final : public iteration_observer {
public:
  explicit invariant_validator(validator_options options = {})
      : options_(options) {}

  void on_run_begin(const ir::graph& g,
                    const core::isdc_options& options) override;
  void on_schedule(const ir::graph& g, const sched::schedule& s,
                   const sched::delay_matrix& d,
                   const core::iteration_record& rec) override;
  void on_run_end(const core::isdc_result& result) override;

  bool ok() const { return violations_.empty(); }
  const std::vector<std::string>& violations() const { return violations_; }
  /// All violations joined with newlines; empty when ok().
  std::string to_string() const;
  /// Iterates checked since construction or the last reset().
  int schedules_checked() const { return schedules_checked_; }

  void reset();

private:
  void add(const std::string& where, const std::vector<std::string>& found);

  validator_options options_;
  double clock_period_ps_ = 0.0;
  std::string design_;
  int last_iteration_ = -1;
  std::optional<sched::delay_matrix> previous_;  ///< monotonicity snapshot
  std::vector<std::string> violations_;
  int schedules_checked_ = 0;
};

}  // namespace isdc::engine

#endif  // ISDC_ENGINE_VALIDATOR_H_
