// The ISDC driver: composes a stage pipeline (see stages.h for the
// default six), owns the cross-run evaluation cache and the per-run
// iteration bookkeeping — best-schedule tracking, convergence patience,
// selection dedup via cache generations — and streams every history
// record to registered observers.
//
// core::run_isdc is a thin wrapper over a fresh engine. Hold one engine
// across runs to reuse downstream evaluations: re-running the same design
// (or sweeping its clock period) answers repeated subgraph measurements
// from the cache instead of the downstream tool.
#ifndef ISDC_ENGINE_ENGINE_H_
#define ISDC_ENGINE_ENGINE_H_

#include <memory>
#include <vector>

#include "engine/evaluation_cache.h"
#include "engine/observer.h"
#include "engine/stage.h"

namespace isdc::engine {

class engine {
public:
  /// The paper's pipeline: enumerate, rank, expand, evaluate, update,
  /// resolve.
  static std::vector<std::unique_ptr<stage>> default_pipeline();

  engine() : engine(default_pipeline()) {}
  explicit engine(std::vector<std::unique_ptr<stage>> pipeline);

  /// Registers a (non-owned) observer; it must outlive every run() call
  /// made while it is registered.
  void add_observer(iteration_observer* observer);

  /// Unregisters an observer previously added (no-op if absent).
  void remove_observer(iteration_observer* observer);

  const std::vector<std::unique_ptr<stage>>& pipeline() const {
    return pipeline_;
  }

  evaluation_cache& cache() { return cache_; }
  const evaluation_cache& cache() const { return cache_; }

  /// Runs the full ISDC flow on `g`. Semantically identical to
  /// core::run_isdc, plus cache reuse and observer streaming. `model`
  /// provides the pre-characterized per-op delays; pass a shared instance
  /// to amortize characterization across runs, or nullptr to characterize
  /// locally.
  core::isdc_result run(const ir::graph& g, const core::downstream_tool& tool,
                        const core::isdc_options& options = {},
                        const synth::delay_model* model = nullptr);

private:
  std::vector<std::unique_ptr<stage>> pipeline_;
  std::vector<iteration_observer*> observers_;
  evaluation_cache cache_;
};

}  // namespace isdc::engine

#endif  // ISDC_ENGINE_ENGINE_H_
