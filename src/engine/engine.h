// The ISDC driver: composes a stage pipeline (see stages.h for the
// default six), owns the cross-run evaluation cache and the per-run
// iteration bookkeeping — best-schedule tracking, convergence patience,
// run-local selection dedup — and streams every history record to
// registered observers.
//
// core::run_isdc is a thin wrapper over a fresh engine. Hold one engine
// across runs to reuse downstream evaluations: measurements are keyed by
// canonical subgraph fingerprint, so re-running the same design, sweeping
// its clock period, or running a *different* design containing isomorphic
// cones all answer from the cache instead of the downstream tool.
//
// run() is safe to call concurrently from several threads on one engine
// (the fleet front-end in fleet.h does exactly that): stages are
// stateless, the cache is thread-safe and all per-run state lives on the
// calling thread. Observer registration must not race active runs, and
// observers registered during fleet use must themselves be thread-safe.
#ifndef ISDC_ENGINE_ENGINE_H_
#define ISDC_ENGINE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/evaluation_cache.h"
#include "engine/observer.h"
#include "engine/stage.h"
#include "support/cancellation.h"

namespace isdc::engine {

/// Width of the downstream-evaluation pool one run wants: in async mode
/// the in-flight cap (async_max_in_flight, defaulting to 4x the
/// per-iteration subgraph count — the calls block on an external tool,
/// so the pool is I/O-sized, not core-sized); in sync mode num_threads.
/// engine::run sizes its per-run pool with this, and the fleet sizes its
/// shared pool as shards times this, so the two can never diverge.
int evaluation_pool_width(const core::isdc_options& options);

class engine {
public:
  /// The paper's pipeline: enumerate, rank, expand, evaluate, update,
  /// resolve.
  static std::vector<std::unique_ptr<stage>> default_pipeline();

  engine() : engine(default_pipeline()) {}
  explicit engine(std::vector<std::unique_ptr<stage>> pipeline);
  /// Default pipeline plus a persisted cache: loads `cache_file` now (a
  /// missing file is fine — it will be created) and saves on destruction.
  explicit engine(std::string cache_file);

  /// Saves the attached cache file, if any (see attach_cache_file).
  ~engine();

  /// Registers a (non-owned) observer; it must outlive every run() call
  /// made while it is registered.
  void add_observer(iteration_observer* observer);

  /// Unregisters an observer previously added (no-op if absent).
  void remove_observer(iteration_observer* observer);

  const std::vector<std::unique_ptr<stage>>& pipeline() const {
    return pipeline_;
  }

  /// The active cache: the engine's own, or the shared one installed by
  /// use_shared_cache.
  evaluation_cache& cache() { return *active_cache_; }
  const evaluation_cache& cache() const { return *active_cache_; }

  /// Routes all caching through an externally owned cache (nullptr
  /// restores the engine's own) — how a fleet shares one memo across
  /// engines and designs. Must not be called while runs are active; the
  /// shared cache must outlive them.
  void use_shared_cache(evaluation_cache* shared);

  /// Attaches a persisted-cache file to the *active* cache: merges its
  /// entries now (returns false when nothing was loaded — missing file,
  /// corruption or a canonical-fingerprint version mismatch) and saves on
  /// destruction and on every flush_cache_file() call.
  bool attach_cache_file(std::string path);

  /// Saves the active cache to the attached file now. False when no file
  /// is attached or the write failed.
  bool flush_cache_file() const;

  /// Runs the full ISDC flow on `g`. Semantically identical to
  /// core::run_isdc, plus cache reuse and observer streaming. `model`
  /// provides the pre-characterized per-op delays; pass a shared instance
  /// to amortize characterization across runs, or nullptr to characterize
  /// locally. `shared_pool`, when non-null, is used for downstream
  /// evaluation (the sync parallel join and the async dispatches) instead
  /// of a per-run pool — the fleet passes one wide I/O pool shared by all
  /// shards; it must outlive the call. `compute_pool`, when non-null,
  /// overrides isdc_options::compute_threads as the in-design compute pool
  /// (parallel kernels, concurrent extraction) — the fleet passes one
  /// process-wide pool so shards and in-design work co-schedule instead of
  /// oversubscribing; it must outlive the call. Results are bit-identical
  /// whatever pool (or none) is used. `cancel`, when non-null and valid,
  /// cooperatively stops the run at the next iteration boundary (combined
  /// with isdc_options::wall_budget_ms via a child token); the result is
  /// the best schedule so far with isdc_result::cancelled set.
  core::isdc_result run(const ir::graph& g, const core::downstream_tool& tool,
                        const core::isdc_options& options = {},
                        const synth::delay_model* model = nullptr,
                        thread_pool* shared_pool = nullptr,
                        thread_pool* compute_pool = nullptr,
                        const cancellation_token* cancel = nullptr);

private:
  /// The memory-budgeted path run() takes when memory_budget_mb > 0 and
  /// the design splits into several weakly-connected components: streams
  /// one component at a time through a normal (unbudgeted) run and merges
  /// the per-component schedules (partition.cpp). Throws check_error when
  /// a single component cannot fit the budget.
  core::isdc_result run_partitioned(const ir::graph& g,
                                    const core::downstream_tool& tool,
                                    const core::isdc_options& options,
                                    const synth::delay_model* model,
                                    thread_pool* shared_pool,
                                    thread_pool* compute_pool,
                                    const cancellation_token* cancel);

  std::vector<std::unique_ptr<stage>> pipeline_;
  std::vector<iteration_observer*> observers_;
  evaluation_cache cache_;
  evaluation_cache* active_cache_ = &cache_;
  std::string cache_file_;
};

}  // namespace isdc::engine

#endif  // ISDC_ENGINE_ENGINE_H_
