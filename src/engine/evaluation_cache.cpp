#include "engine/evaluation_cache.h"

#include "support/check.h"

namespace isdc::engine {

void evaluation_cache::begin_generation() {
  std::lock_guard lock(mutex_);
  ++generation_;
}

bool evaluation_cache::selected_this_generation(std::uint64_t key) const {
  std::lock_guard lock(mutex_);
  const auto it = entries_.find(key);
  return it != entries_.end() &&
         it->second.selected_generation == generation_;
}

void evaluation_cache::mark_selected(std::uint64_t key) {
  std::lock_guard lock(mutex_);
  entries_[key].selected_generation = generation_;
}

std::optional<double> evaluation_cache::lookup(std::uint64_t key) {
  std::lock_guard lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end() || !it->second.has_delay) {
    ++counters_.misses;
    return std::nullopt;
  }
  ++counters_.hits;
  return it->second.delay_ps;
}

void evaluation_cache::store(std::uint64_t key, double delay_ps) {
  std::lock_guard lock(mutex_);
  entry& e = entries_[key];
  if (!e.has_delay) {
    ++num_delays_;
  }
  if (e.in_flight) {
    e.in_flight = false;
    --num_in_flight_;
  }
  e.delay_ps = delay_ps;
  e.has_delay = true;
}

evaluation_cache::acquisition evaluation_cache::try_acquire(
    std::uint64_t key) {
  std::lock_guard lock(mutex_);
  entry& e = entries_[key];
  if (e.has_delay) {
    ++counters_.hits;
    return {acquire_status::hit, e.delay_ps};
  }
  if (e.in_flight) {
    ++counters_.coalesced;
    return {acquire_status::in_flight, 0.0};
  }
  ++counters_.misses;
  e.in_flight = true;
  ++num_in_flight_;
  return {acquire_status::acquired, 0.0};
}

void evaluation_cache::abandon(std::uint64_t key) {
  std::lock_guard lock(mutex_);
  const auto it = entries_.find(key);
  if (it != entries_.end() && it->second.in_flight) {
    it->second.in_flight = false;
    --num_in_flight_;
  }
}

std::size_t evaluation_cache::num_in_flight() const {
  std::lock_guard lock(mutex_);
  return num_in_flight_;
}

std::size_t evaluation_cache::size() const {
  std::lock_guard lock(mutex_);
  return num_delays_;
}

evaluation_cache::counters evaluation_cache::stats() const {
  std::lock_guard lock(mutex_);
  return counters_;
}

void evaluation_cache::clear() {
  std::lock_guard lock(mutex_);
  ISDC_CHECK(num_in_flight_ == 0,
             "evaluation_cache::clear with evaluations in flight");
  entries_.clear();
  counters_ = {};
  num_delays_ = 0;
}

}  // namespace isdc::engine
