#include "engine/evaluation_cache.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <utility>

#include "support/check.h"

namespace isdc::engine {

namespace {

// 8-byte magic; the trailing byte is the container format version.
constexpr char kMagic[8] = {'I', 'S', 'D', 'C', 'E', 'V', 'C', '\x01'};

}  // namespace

std::optional<double> evaluation_cache::lookup(std::uint64_t key) {
  std::lock_guard lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end() || !it->second.has_delay) {
    ++counters_.misses;
    return std::nullopt;
  }
  ++counters_.hits;
  return it->second.delay_ps;
}

void evaluation_cache::store(std::uint64_t key, double delay_ps) {
  std::vector<waiter> waiters;
  {
    std::lock_guard lock(mutex_);
    entry& e = entries_[key];
    if (!e.has_delay) {
      ++num_delays_;
    }
    if (e.in_flight) {
      e.in_flight = false;
      --num_in_flight_;
    }
    e.delay_ps = delay_ps;
    e.has_delay = true;
    waiters = std::move(e.waiters);
    e.waiters.clear();
  }
  // Outside the lock: waiters typically push into a run's completion
  // queue, and must be free to call back into the cache.
  for (waiter& w : waiters) {
    w.on_ready(delay_ps);
  }
}

evaluation_cache::acquisition evaluation_cache::try_acquire(
    std::uint64_t key) {
  std::lock_guard lock(mutex_);
  entry& e = entries_[key];
  if (e.has_delay) {
    ++counters_.hits;
    return {acquire_status::hit, e.delay_ps};
  }
  if (e.in_flight) {
    ++counters_.coalesced;
    return {acquire_status::in_flight, 0.0};
  }
  ++counters_.misses;
  e.in_flight = true;
  ++num_in_flight_;
  return {acquire_status::acquired, 0.0};
}

evaluation_cache::acquisition evaluation_cache::try_acquire(
    std::uint64_t key, const std::function<waiter()>& make_waiter) {
  std::lock_guard lock(mutex_);
  entry& e = entries_[key];
  if (e.has_delay) {
    ++counters_.hits;
    return {acquire_status::hit, e.delay_ps};
  }
  if (e.in_flight) {
    ++counters_.coalesced;
    e.waiters.push_back(make_waiter());
    return {acquire_status::in_flight, 0.0};
  }
  ++counters_.misses;
  e.in_flight = true;
  ++num_in_flight_;
  return {acquire_status::acquired, 0.0};
}

void evaluation_cache::abandon(std::uint64_t key, std::exception_ptr error) {
  std::vector<waiter> waiters;
  {
    std::lock_guard lock(mutex_);
    const auto it = entries_.find(key);
    if (it == entries_.end() || !it->second.in_flight) {
      return;
    }
    it->second.in_flight = false;
    --num_in_flight_;
    waiters = std::move(it->second.waiters);
    it->second.waiters.clear();
  }
  for (waiter& w : waiters) {
    w.on_abandon(error);
  }
}

std::size_t evaluation_cache::num_in_flight() const {
  std::lock_guard lock(mutex_);
  return num_in_flight_;
}

std::size_t evaluation_cache::size() const {
  std::lock_guard lock(mutex_);
  return num_delays_;
}

evaluation_cache::counters evaluation_cache::stats() const {
  std::lock_guard lock(mutex_);
  return counters_;
}

void evaluation_cache::clear() {
  std::lock_guard lock(mutex_);
  ISDC_CHECK(num_in_flight_ == 0,
             "evaluation_cache::clear with evaluations in flight");
  entries_.clear();
  counters_ = {};
  num_delays_ = 0;
}

bool evaluation_cache::save(const std::string& path,
                            std::uint64_t key_schema) const {
  std::vector<std::pair<std::uint64_t, double>> delays;
  {
    std::lock_guard lock(mutex_);
    delays.reserve(num_delays_);
    for (const auto& [key, e] : entries_) {
      if (e.has_delay) {
        delays.emplace_back(key, e.delay_ps);
      }
    }
  }
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return false;
    }
    out.write(kMagic, sizeof(kMagic));
    const std::uint64_t count = delays.size();
    out.write(reinterpret_cast<const char*>(&key_schema), sizeof(key_schema));
    out.write(reinterpret_cast<const char*>(&count), sizeof(count));
    for (const auto& [key, delay] : delays) {
      out.write(reinterpret_cast<const char*>(&key), sizeof(key));
      out.write(reinterpret_cast<const char*>(&delay), sizeof(delay));
    }
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool evaluation_cache::load(const std::string& path,
                            std::uint64_t key_schema) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  char magic[sizeof(kMagic)];
  std::uint64_t schema = 0;
  std::uint64_t count = 0;
  in.read(magic, sizeof(magic));
  in.read(reinterpret_cast<char*>(&schema), sizeof(schema));
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0 ||
      schema != key_schema) {
    return false;
  }
  // Validate the whole payload before mutating the cache, so a truncated
  // file loads nothing rather than half of something. The on-disk count
  // is untrusted: a corrupt header must produce `false`, not a
  // length_error/bad_alloc from reserving by it, so the reservation is
  // capped and the loop lets the stream run dry instead.
  std::vector<std::pair<std::uint64_t, double>> delays;
  delays.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(count, 1u << 20)));
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t key = 0;
    double delay = 0.0;
    in.read(reinterpret_cast<char*>(&key), sizeof(key));
    in.read(reinterpret_cast<char*>(&delay), sizeof(delay));
    if (!in) {
      return false;
    }
    delays.emplace_back(key, delay);
  }
  std::lock_guard lock(mutex_);
  for (const auto& [key, delay] : delays) {
    entry& e = entries_[key];
    if (!e.has_delay) {
      ++num_delays_;
    }
    e.delay_ps = delay;
    e.has_delay = true;
  }
  return true;
}

}  // namespace isdc::engine
