#include "engine/evaluation_cache.h"

namespace isdc::engine {

bool evaluation_cache::selected_this_generation(std::uint64_t key) const {
  const auto it = entries_.find(key);
  return it != entries_.end() &&
         it->second.selected_generation == generation_;
}

void evaluation_cache::mark_selected(std::uint64_t key) {
  entries_[key].selected_generation = generation_;
}

std::optional<double> evaluation_cache::lookup(std::uint64_t key) {
  const auto it = entries_.find(key);
  if (it == entries_.end() || !it->second.has_delay) {
    ++counters_.misses;
    return std::nullopt;
  }
  ++counters_.hits;
  return it->second.delay_ps;
}

void evaluation_cache::store(std::uint64_t key, double delay_ps) {
  entry& e = entries_[key];
  if (!e.has_delay) {
    ++num_delays_;
  }
  e.delay_ps = delay_ps;
  e.has_delay = true;
}

void evaluation_cache::clear() {
  entries_.clear();
  counters_ = {};
  num_delays_ = 0;
}

}  // namespace isdc::engine
