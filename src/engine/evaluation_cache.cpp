#include "engine/evaluation_cache.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "support/check.h"
#include "support/crc32.h"
#include "support/failpoint.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace isdc::engine {

namespace {

// Global mirrors of the per-instance counters. Every instance reports
// into the same registry names — a process snapshot sums cache traffic
// across engines, which matches how fleets share one cache anyway. The
// per-instance `counters` struct (stats()) remains the exact per-cache
// view.
telemetry::counter& hit_metric() {
  static telemetry::counter& c = telemetry::get_counter("cache.hit");
  return c;
}
telemetry::counter& miss_metric() {
  static telemetry::counter& c = telemetry::get_counter("cache.miss");
  return c;
}
telemetry::counter& coalesced_metric() {
  static telemetry::counter& c = telemetry::get_counter("cache.coalesced");
  return c;
}

// 8-byte magic; the trailing byte is the container format version.
// Version 2 (the CRC-checked stream): header (magic + key_schema), then
// one 20-byte record per entry — key(8) + delay(8) + crc32 of those 16
// payload bytes — then a 20-byte footer: kFooter(8) + record count(8) +
// the running crc32 chained over every record payload in order. Records
// are sorted by key, so a given cache state has exactly one byte image.
constexpr char kMagic[8] = {'I', 'S', 'D', 'C', 'E', 'V', 'C', '\x02'};
constexpr char kFooter[8] = {'I', 'S', 'D', 'C', 'E', 'N', 'D', '\x02'};
constexpr std::size_t kHeaderBytes = sizeof(kMagic) + sizeof(std::uint64_t);
constexpr std::size_t kRecordBytes =
    2 * sizeof(std::uint64_t) + sizeof(std::uint32_t);

void append_bytes(std::string& out, const void* data, std::size_t size) {
  out.append(static_cast<const char*>(data), size);
}

/// write(2) the whole buffer, surviving EINTR and short writes.
bool write_fully(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    return false;
  }
  return true;
}

/// Best-effort fsync of the directory containing `path`, so the rename
/// itself is durable, not just the file bytes.
void sync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd >= 0) {
    (void)::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

std::optional<double> evaluation_cache::lookup(std::uint64_t key) {
  std::lock_guard lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end() || !it->second.has_delay) {
    ++counters_.misses;
    miss_metric().add();
    return std::nullopt;
  }
  ++counters_.hits;
  hit_metric().add();
  return it->second.delay_ps;
}

void evaluation_cache::store(std::uint64_t key, double delay_ps) {
  std::vector<waiter> waiters;
  {
    std::lock_guard lock(mutex_);
    entry& e = entries_[key];
    if (!e.has_delay) {
      ++num_delays_;
    }
    if (e.in_flight) {
      e.in_flight = false;
      --num_in_flight_;
    }
    e.delay_ps = delay_ps;
    e.has_delay = true;
    waiters = std::move(e.waiters);
    e.waiters.clear();
  }
  // Outside the lock: waiters typically push into a run's completion
  // queue, and must be free to call back into the cache.
  for (waiter& w : waiters) {
    w.on_ready(delay_ps);
  }
}

evaluation_cache::acquisition evaluation_cache::try_acquire(
    std::uint64_t key) {
  std::lock_guard lock(mutex_);
  entry& e = entries_[key];
  if (e.has_delay) {
    ++counters_.hits;
    hit_metric().add();
    return {acquire_status::hit, e.delay_ps};
  }
  if (e.in_flight) {
    ++counters_.coalesced;
    coalesced_metric().add();
    return {acquire_status::in_flight, 0.0};
  }
  ++counters_.misses;
  miss_metric().add();
  e.in_flight = true;
  ++num_in_flight_;
  return {acquire_status::acquired, 0.0};
}

evaluation_cache::acquisition evaluation_cache::try_acquire(
    std::uint64_t key, const std::function<waiter()>& make_waiter) {
  std::lock_guard lock(mutex_);
  entry& e = entries_[key];
  if (e.has_delay) {
    ++counters_.hits;
    hit_metric().add();
    return {acquire_status::hit, e.delay_ps};
  }
  if (e.in_flight) {
    ++counters_.coalesced;
    coalesced_metric().add();
    e.waiters.push_back(make_waiter());
    return {acquire_status::in_flight, 0.0};
  }
  ++counters_.misses;
  miss_metric().add();
  e.in_flight = true;
  ++num_in_flight_;
  return {acquire_status::acquired, 0.0};
}

void evaluation_cache::abandon(std::uint64_t key, std::exception_ptr error) {
  std::vector<waiter> waiters;
  {
    std::lock_guard lock(mutex_);
    const auto it = entries_.find(key);
    if (it == entries_.end() || !it->second.in_flight) {
      return;
    }
    it->second.in_flight = false;
    --num_in_flight_;
    waiters = std::move(it->second.waiters);
    it->second.waiters.clear();
  }
  for (waiter& w : waiters) {
    w.on_abandon(error);
  }
}

std::size_t evaluation_cache::num_in_flight() const {
  std::lock_guard lock(mutex_);
  return num_in_flight_;
}

std::size_t evaluation_cache::size() const {
  std::lock_guard lock(mutex_);
  return num_delays_;
}

evaluation_cache::counters evaluation_cache::stats() const {
  std::lock_guard lock(mutex_);
  return counters_;
}

void evaluation_cache::clear() {
  std::lock_guard lock(mutex_);
  ISDC_CHECK(num_in_flight_ == 0,
             "evaluation_cache::clear with evaluations in flight");
  entries_.clear();
  counters_ = {};
  num_delays_ = 0;
}

bool evaluation_cache::save(const std::string& path,
                            std::uint64_t key_schema) const {
  const telemetry::span save_span("cache.save");
  telemetry::get_counter("cache.saves").add();
  std::vector<std::pair<std::uint64_t, double>> delays;
  {
    std::lock_guard lock(mutex_);
    delays.reserve(num_delays_);
    for (const auto& [key, e] : entries_) {
      if (e.has_delay) {
        delays.emplace_back(key, e.delay_ps);
      }
    }
  }
  // Sorted by key: identical cache contents produce identical bytes, so
  // tests (and cache federation diffs) can compare files directly.
  std::sort(delays.begin(), delays.end());

  std::string bytes;
  bytes.reserve(kHeaderBytes + delays.size() * kRecordBytes + kRecordBytes);
  append_bytes(bytes, kMagic, sizeof(kMagic));
  append_bytes(bytes, &key_schema, sizeof(key_schema));
  std::uint32_t stream_crc = 0;
  for (const auto& [key, delay] : delays) {
    char payload[2 * sizeof(std::uint64_t)];
    std::memcpy(payload, &key, sizeof(key));
    std::memcpy(payload + sizeof(key), &delay, sizeof(delay));
    const std::uint32_t crc = crc32(payload, sizeof(payload));
    stream_crc = crc32(payload, sizeof(payload), stream_crc);
    append_bytes(bytes, payload, sizeof(payload));
    append_bytes(bytes, &crc, sizeof(crc));
  }
  const std::uint64_t count = delays.size();
  append_bytes(bytes, kFooter, sizeof(kFooter));
  append_bytes(bytes, &count, sizeof(count));
  append_bytes(bytes, &stream_crc, sizeof(stream_crc));

  // Chaos hooks. `fail` drops the save cleanly; `partial` and `garbage`
  // simulate a torn write / bit flip that still gets renamed into place,
  // which is exactly what load_checked's salvage path must absorb.
  switch (failpoint::maybe_fail("engine.cache.save")) {
    case failpoint::kind::fail:
      return false;
    case failpoint::kind::partial:
      bytes.resize(kHeaderBytes + (delays.size() / 2) * kRecordBytes +
                   kRecordBytes / 2);
      break;
    case failpoint::kind::garbage:
      if (bytes.size() > kHeaderBytes) {
        bytes[kHeaderBytes + (bytes.size() - kHeaderBytes) / 2] ^= 0x40;
      }
      break;
    default:
      break;
  }

  // Unique temp name: two processes flushing the same cache_file write
  // disjoint temps and the later rename wins whole, instead of
  // interleaving partial writes into one shared ".tmp".
  static std::atomic<std::uint64_t> tmp_counter{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(tmp_counter.fetch_add(1));
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return false;
  }
  // fsync before rename: the rename must never become visible ahead of
  // the bytes it names, or a crash between them leaves a torn "complete"
  // file.
  if (!write_fully(fd, bytes) || ::fsync(fd) != 0) {
    ::close(fd);
    std::remove(tmp.c_str());
    return false;
  }
  ::close(fd);
  if (failpoint::maybe_fail("engine.cache.rename") != failpoint::kind::none ||
      std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  sync_parent_dir(path);
  return true;
}

evaluation_cache::load_report evaluation_cache::load_checked(
    const std::string& path, std::uint64_t key_schema) {
  const telemetry::span load_span("cache.load");
  telemetry::get_counter("cache.loads").add();
  load_report report;
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      report.error = "missing or unreadable file";
      return report;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bytes = std::move(buffer).str();
  }
  if (failpoint::maybe_fail("engine.cache.load") != failpoint::kind::none) {
    report.error = "failpoint: injected load failure";
    return report;
  }

  // Recognized-but-foreign files (another container version, another key
  // schema) are rejected cleanly and left in place: they are not corrupt,
  // just not ours to read — or to destroy.
  if (bytes.size() >= sizeof(kMagic) &&
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic) - 1) == 0 &&
      bytes[sizeof(kMagic) - 1] != kMagic[sizeof(kMagic) - 1]) {
    report.error = "different container format version";
    return report;
  }
  std::uint64_t schema = 0;
  if (bytes.size() >= kHeaderBytes) {
    std::memcpy(&schema, bytes.data() + sizeof(kMagic), sizeof(schema));
  }
  const bool magic_ok =
      bytes.size() >= kHeaderBytes &&
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) == 0;
  if (magic_ok && schema != key_schema) {
    report.error = "different key schema";
    return report;
  }

  // Everything else is treated as corruption: walk the record stream,
  // keep every record whose CRC checks out, stop at the first bad byte.
  std::vector<std::pair<std::uint64_t, double>> delays;
  bool clean = false;
  if (!magic_ok) {
    report.error = "bad file header";
  } else {
    std::size_t off = kHeaderBytes;
    std::uint32_t stream_crc = 0;
    while (bytes.size() - off >= kRecordBytes) {
      if (std::memcmp(bytes.data() + off, kFooter, sizeof(kFooter)) == 0) {
        std::uint64_t count = 0;
        std::uint32_t footer_crc = 0;
        std::memcpy(&count, bytes.data() + off + sizeof(kFooter),
                    sizeof(count));
        std::memcpy(&footer_crc,
                    bytes.data() + off + sizeof(kFooter) + sizeof(count),
                    sizeof(footer_crc));
        if (count == delays.size() && footer_crc == stream_crc &&
            off + kRecordBytes == bytes.size()) {
          clean = true;
        } else {
          report.error = "footer mismatch (torn write?)";
        }
        break;
      }
      std::uint32_t crc = 0;
      std::memcpy(&crc, bytes.data() + off + 2 * sizeof(std::uint64_t),
                  sizeof(crc));
      if (crc32(bytes.data() + off, 2 * sizeof(std::uint64_t)) != crc) {
        report.error = "record checksum mismatch at byte " +
                       std::to_string(off);
        break;
      }
      std::uint64_t key = 0;
      double delay = 0.0;
      std::memcpy(&key, bytes.data() + off, sizeof(key));
      std::memcpy(&delay, bytes.data() + off + sizeof(key), sizeof(delay));
      stream_crc =
          crc32(bytes.data() + off, 2 * sizeof(std::uint64_t), stream_crc);
      delays.emplace_back(key, delay);
      off += kRecordBytes;
    }
    if (!clean && report.error.empty()) {
      report.error = "truncated record stream (missing footer)";
    }
  }

  if (!delays.empty() || clean) {
    std::lock_guard lock(mutex_);
    for (const auto& [key, delay] : delays) {
      entry& e = entries_[key];
      if (!e.has_delay) {
        ++num_delays_;
      }
      e.delay_ps = delay;
      e.has_delay = true;
    }
  }
  report.records = delays.size();
  if (clean) {
    report.ok = true;
    return report;
  }

  // Corrupt: quarantine the file so the evidence survives and the next
  // save starts clean. Never abort the run over it.
  report.salvaged = true;
  const std::string quarantine = path + ".corrupt";
  if (std::rename(path.c_str(), quarantine.c_str()) == 0) {
    report.quarantined_to = quarantine;
  }
  return report;
}

bool evaluation_cache::load(const std::string& path,
                            std::uint64_t key_schema) {
  const load_report report = load_checked(path, key_schema);
  return report.ok || (report.salvaged && report.records > 0);
}

}  // namespace isdc::engine
