// The staged decomposition of the ISDC feedback loop (paper Fig. 2).
// Every iteration flows through a pipeline of stages — by default
// enumerate -> rank -> expand -> evaluate -> update -> resolve — that
// communicate only through run_state (per-run) and iteration_state
// (per-iteration), so pipelines can be recomposed, stages swapped and new
// ones (batching, async evaluation, alternative solvers) inserted without
// touching the driver.
#ifndef ISDC_ENGINE_STAGE_H_
#define ISDC_ENGINE_STAGE_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "core/delay_update.h"
#include "core/isdc_scheduler.h"
#include "engine/evaluation_cache.h"
#include "extract/scoring.h"
#include "extract/subgraph.h"
#include "sched/scheduler_instance.h"
#include "support/thread_pool.h"

namespace isdc::engine {

/// Per-run context shared by every stage: the problem being solved and the
/// engine-owned state and services stages may use. The delay matrix being
/// refined lives in result.delays; `current` is the schedule of the latest
/// re-solve. `scheduler` is the stateful scheduling instance that solved
/// the baseline: it holds the warm LP solver across iterations, and
/// result.delays has change tracking enabled so the resolve stage can
/// re-emit only the timing constraints whose entries moved.
struct run_state {
  const ir::graph& g;
  const core::downstream_tool& tool;
  const core::isdc_options& options;
  core::isdc_result& result;
  sched::schedule& current;
  evaluation_cache& cache;
  thread_pool& pool;
  sched::scheduler_instance& scheduler;
  std::uint64_t design_fingerprint = 0;  ///< mixed into cache keys
};

/// Data handed from stage to stage within one iteration.
struct iteration_state {
  int iteration = 0;
  std::vector<extract::path_candidate> paths;          ///< enumerate ->
  std::vector<extract::scored_candidate> candidates;   ///< rank ->
  std::vector<extract::subgraph> subgraphs;            ///< expand ->
  std::vector<core::evaluated_subgraph> evaluations;   ///< evaluate ->
  std::size_t matrix_entries_lowered = 0;              ///< update ->
  int cache_hits = 0;  ///< evaluations answered by the cache
  // resolve -> (solver metrics of this iteration's re-solve)
  bool warm_resolve = false;
  std::size_t solver_ssp_paths = 0;
  std::size_t constraints_reemitted = 0;
};

/// One step of the loop. Stages hold no per-iteration state of their own;
/// everything carried forward lives in run_state/iteration_state.
class stage {
public:
  virtual ~stage() = default;

  virtual std::string_view name() const = 0;

  /// Runs the stage. Returning false ends the run (e.g. the search space
  /// is exhausted): the iteration's remaining stages are skipped and no
  /// record is emitted for it.
  virtual bool run(run_state& rs, iteration_state& it) = 0;
};

}  // namespace isdc::engine

#endif  // ISDC_ENGINE_STAGE_H_
