// The staged decomposition of the ISDC feedback loop (paper Fig. 2).
// Every iteration flows through a pipeline of stages — by default
// enumerate -> rank -> expand -> evaluate -> update -> resolve — that
// communicate only through run_state (per-run) and iteration_state
// (per-iteration), so pipelines can be recomposed, stages swapped and new
// ones (batching, alternative solvers) inserted without touching the
// driver.
//
// With isdc_options::async_evaluation the evaluate stage becomes a
// non-blocking dispatcher: misses are submitted to the dispatch pool as
// in-flight tickets and the update stage consumes whatever measurements
// have arrived on the completion queue — from this iteration or earlier
// ones — so one iteration's scheduling work overlaps another's downstream
// calls. run_state carries the ticket accounting shared by those stages
// and the driver's drain-and-converge logic.
#ifndef ISDC_ENGINE_STAGE_H_
#define ISDC_ENGINE_STAGE_H_

#include <cstddef>
#include <cstdint>
#include <exception>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "core/delay_update.h"
#include "core/isdc_scheduler.h"
#include "engine/evaluation_cache.h"
#include "extract/scoring.h"
#include "extract/subgraph.h"
#include "sched/scheduler_instance.h"
#include "support/cancellation.h"
#include "support/completion_queue.h"
#include "support/thread_pool.h"

namespace isdc::engine {

/// One downstream measurement coming back from the dispatch pool.
/// `sequence` is the dispatch order; consumers sort arrivals by it so the
/// delay-matrix update order (hence the change log) is deterministic no
/// matter when completions physically land. The cache ticket is released
/// by the dispatched task itself (store on success, abandon on error)
/// before the arrival is pushed, so no key travels back.
struct evaluation_arrival {
  std::uint64_t sequence = 0;
  core::evaluated_subgraph evaluation;
  std::exception_ptr error;  ///< set when the downstream call threw
};

/// Per-run context shared by every stage: the problem being solved and the
/// engine-owned state and services stages may use. The delay matrix being
/// refined lives in result.delays; `current` is the schedule of the latest
/// re-solve. `scheduler` is the stateful scheduling instance that solved
/// the baseline: it holds the warm LP solver across iterations, and
/// result.delays has change tracking enabled so the resolve stage can
/// re-emit only the timing constraints whose entries moved.
struct run_state {
  const ir::graph& g;
  const core::downstream_tool& tool;
  const core::isdc_options& options;
  core::isdc_result& result;
  sched::schedule& current;
  evaluation_cache& cache;
  thread_pool& pool;
  /// Where async downstream calls run. The engine aliases this to `pool`,
  /// sized num_threads in sync mode (CPU-bound joined evaluation) and
  /// max_in_flight in async mode (the calls block on an external tool
  /// rather than burn host CPU); the two references stay distinct in the
  /// contract so custom drivers can split compute from dispatch.
  thread_pool& dispatch_pool;
  /// In-design compute pool for the iteration's own work — parallel delay
  /// kernels, candidate enumeration/ranking, cone expansion and canonical
  /// fingerprinting. nullptr (or a 1-thread pool) keeps every stage
  /// strictly serial; either way the results are bit-identical. Resolved
  /// by the engine from isdc_options::compute_threads, or supplied by the
  /// fleet so all shards co-schedule on one pool.
  thread_pool* compute = nullptr;
  completion_queue<evaluation_arrival>& completions;
  sched::scheduler_instance& scheduler;
  /// Fingerprint of the downstream tool's identity, combined with each
  /// subgraph's canonical fingerprint to form cache keys. Designs are
  /// deliberately absent from keys: isomorphic cones from different
  /// designs share one measurement.
  std::uint64_t tool_fingerprint = 0;
  /// Per-run selection dedup (the iterative search-space reduction of
  /// Section III-A2), keyed by the design-local member-set key — NOT the
  /// canonical fingerprint: two isomorphic cones in different regions of
  /// one design share a measurement but must each be selected, because
  /// each lowers its own region's delay-matrix entries. Run-local so that
  /// concurrent fleet runs sharing one cache never poison each other's
  /// dedup.
  std::unordered_set<std::uint64_t> selected;
  // Async ticket accounting (driver + evaluate + update only; all zero /
  // false in sync mode).
  int max_in_flight = 0;        ///< dispatch cap (resolved from options)
  std::size_t in_flight = 0;    ///< tickets dispatched, not yet consumed
  std::uint64_t next_ticket = 0;  ///< dispatch sequence counter
  /// Set by the driver once convergence patience is exhausted but results
  /// are still in flight: stages stop speculating (expand selects nothing
  /// new) and the loop just drains until in_flight reaches zero or an
  /// arrival improves the schedule.
  bool quiesce = false;
  /// Cooperative cancellation for this run (wall_budget_ms and/or an
  /// external token): the driver checks it at iteration boundaries and the
  /// async dispatch path checks it before each downstream call, abandoning
  /// the ticket instead of calling out. May be an inert default token
  /// (cancelled() always false) when the run has no budget.
  cancellation_token cancel;
  /// Async candidate memo: the ranked candidate list is a function of the
  /// current schedule (and the delay matrix), so passes whose re-solve
  /// left the schedule untouched reuse it instead of re-enumerating —
  /// speculative expansion just walks further down the same ranking, and
  /// drain passes cost almost nothing. Invalidated by the resolve stage
  /// whenever the schedule moves. Unused in sync mode, where every pass
  /// follows a matrix update.
  std::vector<extract::scored_candidate> candidate_cache;
  bool candidate_cache_fresh = false;
  /// First not-yet-considered index into candidate_cache while the memo is
  /// fresh (path/cone expansion): successive speculative passes continue
  /// down the ranking instead of re-expanding already-selected prefixes.
  /// Reset whenever the ranking is recomputed.
  std::size_t candidate_cursor = 0;
};

/// Data handed from stage to stage within one iteration.
struct iteration_state {
  int iteration = 0;
  std::vector<extract::path_candidate> paths;          ///< enumerate ->
  std::vector<extract::scored_candidate> candidates;   ///< rank ->
  std::vector<extract::subgraph> subgraphs;            ///< expand ->
  std::vector<core::evaluated_subgraph> evaluations;   ///< evaluate ->
  std::size_t matrix_entries_lowered = 0;              ///< update ->
  int cache_hits = 0;  ///< evaluations answered by the cache
  // Async pipeline accounting for this pass (evaluate/update ->).
  int evaluations_dispatched = 0;
  int evaluations_coalesced = 0;  ///< subscriptions onto in-flight tickets
  int evaluations_arrived = 0;
  std::size_t evaluations_in_flight = 0;  ///< pending after update consumed
  // resolve -> (solver metrics of this iteration's re-solve)
  bool warm_resolve = false;
  std::size_t solver_ssp_paths = 0;
  std::size_t constraints_reemitted = 0;
};

/// One step of the loop. Stages hold no per-iteration state of their own;
/// everything carried forward lives in run_state/iteration_state.
class stage {
public:
  virtual ~stage() = default;

  virtual std::string_view name() const = 0;

  /// Runs the stage. Returning false ends the run (e.g. the search space
  /// is exhausted): the iteration's remaining stages are skipped and no
  /// record is emitted for it. In async mode the driver still drains
  /// in-flight evaluations (final update + resolve) before returning.
  virtual bool run(run_state& rs, iteration_state& it) = 0;

  /// True for stages that must also run in the driver's end-of-run drain
  /// pass, after the last in-flight evaluations are consumed (async mode
  /// only). The built-in update and resolve stages opt in; a recomposed
  /// pipeline's replacements should too, or the drain falls back to the
  /// built-in update + resolve semantics.
  virtual bool runs_in_drain() const { return false; }
};

}  // namespace isdc::engine

#endif  // ISDC_ENGINE_STAGE_H_
