// Streaming view of an engine run. Observers receive every history record
// as it is produced (including the iteration-0 baseline), so progress
// printers, live plots and trajectory collectors no longer need to wait
// for run() to return and pick apart isdc_result.
#ifndef ISDC_ENGINE_OBSERVER_H_
#define ISDC_ENGINE_OBSERVER_H_

#include <functional>
#include <utility>

#include "core/isdc_scheduler.h"

namespace isdc::engine {

class iteration_observer {
public:
  virtual ~iteration_observer() = default;

  /// The run is configured and the baseline schedule is solved; called
  /// just before the baseline record is emitted.
  virtual void on_run_begin(const ir::graph& /*g*/,
                            const core::isdc_options& /*options*/) {}

  /// One history record: the baseline (iteration 0) and every feedback
  /// iteration after its re-solve.
  virtual void on_iteration(const core::iteration_record& /*rec*/) {}

  /// The schedule and updated delay matrix behind a history record; called
  /// right after on_iteration with the same record, for observers (e.g.
  /// engine::invariant_validator) that need the iterate itself rather than
  /// its metrics. The references are only valid for the duration of the
  /// call — the engine keeps mutating both as the run proceeds.
  virtual void on_schedule(const ir::graph& /*g*/,
                           const sched::schedule& /*s*/,
                           const sched::delay_matrix& /*d*/,
                           const core::iteration_record& /*rec*/) {}

  /// The loop terminated (converged, exhausted or out of budget).
  virtual void on_run_end(const core::isdc_result& /*result*/) {}
};

/// Adapts a callable to the per-iteration hook.
class callback_observer final : public iteration_observer {
public:
  using callback = std::function<void(const core::iteration_record&)>;

  explicit callback_observer(callback fn) : fn_(std::move(fn)) {}

  void on_iteration(const core::iteration_record& rec) override { fn_(rec); }

private:
  callback fn_;
};

}  // namespace isdc::engine

#endif  // ISDC_ENGINE_OBSERVER_H_
