#include "engine/stages.h"

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "core/floyd_warshall.h"
#include "core/reformulate.h"
#include "extract/canonical.h"
#include "extract/cone.h"
#include "extract/path_enum.h"
#include "extract/window.h"
#include "support/cancellation.h"
#include "support/check.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace isdc::engine {

namespace {

/// True when the arrival's error is a cancellation, not a failure: the
/// dispatch path abandons tickets it finds already cancelled, and those
/// arrivals mean "no result", never "downstream broke".
bool is_cancellation(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const cancelled_error&) {
    return true;
  } catch (...) {
    return false;
  }
}

/// Folds a batch of arrivals into the iteration, oldest dispatch first so
/// the matrix-update order (and the change log) is independent of
/// when completions physically landed. A failed downstream call is
/// rethrown — after the whole batch is accounted, so the in-flight count
/// stays consistent. Cancelled arrivals are accounted and dropped.
void consume_arrivals(run_state& rs, iteration_state& it,
                      std::vector<evaluation_arrival> arrivals) {
  static telemetry::counter& arrived_metric =
      telemetry::get_counter("engine.async.arrived");
  arrived_metric.add(arrivals.size());
  std::sort(arrivals.begin(), arrivals.end(),
            [](const evaluation_arrival& a, const evaluation_arrival& b) {
              return a.sequence < b.sequence;
            });
  std::exception_ptr first_error;
  for (evaluation_arrival& arrival : arrivals) {
    ISDC_CHECK(rs.in_flight > 0, "arrival without an in-flight ticket");
    --rs.in_flight;
    ++it.evaluations_arrived;
    if (arrival.error != nullptr) {
      if (first_error == nullptr && !is_cancellation(arrival.error)) {
        first_error = arrival.error;
      }
      continue;
    }
    it.evaluations.push_back(std::move(arrival.evaluation));
  }
  if (first_error != nullptr) {
    std::rethrow_exception(first_error);
  }
}

class enumerate_stage final : public stage {
public:
  std::string_view name() const override { return "enumerate"; }

  bool run(run_state& rs, iteration_state& it) override {
    if (rs.candidate_cache_fresh || rs.quiesce) {
      // Async: the memo stands, or the pass only drains (expand selects
      // nothing while quiescing, so candidates would be discarded unread).
      return true;
    }
    it.paths = extract::enumerate_candidate_paths(rs.g, rs.current,
                                                  rs.result.delays,
                                                  rs.compute);
    return true;
  }
};

class rank_stage final : public stage {
public:
  std::string_view name() const override { return "rank"; }

  bool run(run_state& rs, iteration_state& it) override {
    if (rs.candidate_cache_fresh || rs.quiesce) {
      return true;  // expand reads rs.candidate_cache / selects nothing
    }
    it.candidates = extract::rank_candidates(
        rs.g, rs.current, rs.options.base.clock_period_ps,
        rs.options.strategy, std::move(it.paths), rs.compute);
    it.paths.clear();
    if (rs.options.async_evaluation) {
      // Moved, not copied: expand reads rs.candidate_cache whenever the
      // memo is fresh, so it.candidates is never consumed afterwards.
      rs.candidate_cache = std::move(it.candidates);
      it.candidates.clear();
      rs.candidate_cache_fresh = true;
      rs.candidate_cursor = 0;
    }
    return true;
  }
};

/// Expands candidates [lo, hi) into subgraphs — path or cone per `as_path`
/// — over the run's compute pool when one is attached. Each expansion is a
/// pure function of (graph, schedule, matrix, candidate) using thread-local
/// DFS scratch, so the block's contents are identical to serial expansion;
/// only the *fold* over the block (selection, window merging) is order-
/// sensitive, and that stays serial in the caller.
std::vector<extract::subgraph> expand_block(
    run_state& rs, const std::vector<extract::scored_candidate>& candidates,
    std::size_t lo, std::size_t hi, bool as_path) {
  std::vector<extract::subgraph> block(hi - lo);
  const auto expand_one = [&](std::size_t j) {
    const extract::scored_candidate& cand = candidates[lo + j];
    block[j] = as_path ? extract::expand_to_path(rs.g, rs.current,
                                                 rs.result.delays, cand.path)
                       : extract::expand_to_cone(rs.g, rs.current, cand.path);
    block[j].score = cand.score;
  };
  if (rs.compute != nullptr && rs.compute->size() > 1 && block.size() > 1) {
    rs.compute->parallel_for(block.size(), expand_one);
  } else {
    for (std::size_t j = 0; j < block.size(); ++j) {
      expand_one(j);
    }
  }
  return block;
}

/// Candidates expanded per block: enough ahead of the selection budget
/// that the parallel precompute is worth its dispatch, small enough that
/// an early exit (m picked, or m fresh windows) wastes little pure work.
std::size_t expand_block_size(int m) {
  return std::max<std::size_t>(64, 2 * static_cast<std::size_t>(m));
}

/// Expands the ranked candidates into up-to-m not-yet-selected subgraphs
/// (the iterative search-space reduction of Section III-A2). Ends the run
/// when nothing new can be selected.
class expand_stage final : public stage {
public:
  std::string_view name() const override { return "expand"; }

  bool run(run_state& rs, iteration_state& it) override {
    const bool async = rs.options.async_evaluation;
    int m = rs.options.subgraphs_per_iteration;
    if (async) {
      if (rs.quiesce) {
        // Patience is exhausted; stop speculating and let update drain the
        // remaining in-flight results. With nothing pending either, the
        // driver's stability check ends the run after this pass.
        return true;
      }
      // Speculation cap: never select more than the in-flight budget can
      // hold, since everything picked here is dispatched this pass. When
      // the budget is full but results are pending, keep the pass alive so
      // update can consume arrivals; end the run only once nothing is
      // selected *and* nothing is in flight.
      m = std::min(m, rs.max_in_flight - static_cast<int>(rs.in_flight));
      if (m <= 0) {
        return rs.in_flight > 0;
      }
    }
    const std::vector<extract::scored_candidate>& candidates =
        rs.candidate_cache_fresh ? rs.candidate_cache : it.candidates;
    std::vector<extract::subgraph>& picked = it.subgraphs;

    // Selection dedup is run-local and keyed by the member set: each
    // distinct region of the design is selected once per run, even when
    // several regions are isomorphic and will share one cached
    // measurement downstream.
    const auto selected = [&rs](const extract::subgraph& sub) {
      return rs.selected.contains(sub.key());
    };
    const auto consider = [&](extract::subgraph sub) {
      if (rs.selected.insert(sub.key()).second) {
        picked.push_back(std::move(sub));
      }
    };

    if (rs.options.expansion != extract::expansion_mode::window) {
      // While the memo is fresh the prefix before the cursor was already
      // expanded (and selected or rejected) by an earlier pass of this
      // ranking; speculation continues where it left off. Expansion runs
      // in look-ahead blocks — precomputed in parallel, folded serially in
      // rank order — so the selected set and the cursor match the serial
      // one-at-a-time walk exactly (a block may expand candidates the
      // serial walk would have stopped before; that work is pure and its
      // results are simply dropped).
      const bool as_path =
          rs.options.expansion == extract::expansion_mode::path;
      const std::size_t block_size = expand_block_size(m);
      std::size_t i = rs.candidate_cache_fresh ? rs.candidate_cursor : 0;
      while (i < candidates.size() && static_cast<int>(picked.size()) < m) {
        const std::size_t hi = std::min(candidates.size(), i + block_size);
        std::vector<extract::subgraph> block =
            expand_block(rs, candidates, i, hi, as_path);
        std::size_t j = 0;
        for (; j < block.size() && static_cast<int>(picked.size()) < m;
             ++j) {
          consider(std::move(block[j]));
        }
        i += j;
      }
      if (rs.candidate_cache_fresh) {
        rs.candidate_cursor = i;
      }
      return !picked.empty() || (async && rs.in_flight > 0);
    }

    // Window mode: keep folding ranked cones into overlapping-leaf windows.
    // (No cursor here: the window set is rebuilt from the whole ranking
    // each pass because every fold can reshape earlier windows — the
    // re-expansion is inherent to the merge, not a missed memo.)
    // until m *new* windows are available (merging shrinks the set, so the
    // cone budget is not the window budget). Each fold changes exactly one
    // window, so the fresh-window count is maintained incrementally from
    // the fold result instead of recounting the whole set. Candidates that
    // expand to a cone already folded this round are skipped — once a
    // stage's distinct cones are exhausted, its remaining candidates cost
    // nothing. (A refold could still matter in one corner: an *earlier*
    // window whose leaf set has since grown to overlap the duplicate would
    // absorb a second copy of its members. That only duplicates nodes
    // already inside another window, so the skip deliberately drops it.)
    // Cones precompute in parallel look-ahead blocks (pure per-candidate
    // work); the fold itself is serial in rank order, so the window set is
    // identical to the one-at-a-time walk.
    std::vector<extract::subgraph> windows;
    std::vector<bool> window_fresh;
    std::unordered_set<std::uint64_t> folded_cones;
    int fresh = 0;
    const std::size_t block_size = expand_block_size(m);
    for (std::size_t ci = 0; ci < candidates.size() && fresh < m;
         ci += block_size) {
      const std::size_t hi = std::min(candidates.size(), ci + block_size);
      std::vector<extract::subgraph> block =
          expand_block(rs, candidates, ci, hi, /*as_path=*/false);
      for (extract::subgraph& cone : block) {
        if (!folded_cones.insert(cone.key()).second) {
          continue;
        }
        const extract::fold_result fold = extract::merge_cone_into_windows(
            rs.g, rs.current, std::move(cone), windows);
        const bool now_fresh = !selected(windows[fold.index]);
        if (fold.appended) {
          window_fresh.push_back(now_fresh);
          fresh += now_fresh ? 1 : 0;
        } else {
          // The merge reshaped windows[fold.index] (new member set, new
          // cache key), which can flip its freshness either way.
          fresh += (now_fresh ? 1 : 0) -
                   (window_fresh[fold.index] ? 1 : 0);
          window_fresh[fold.index] = now_fresh;
        }
        if (fresh >= m) {
          break;
        }
      }
    }
    for (extract::subgraph& w : windows) {
      if (static_cast<int>(picked.size()) >= m) {
        break;
      }
      consider(std::move(w));
    }
    // In async mode an empty pick is not exhaustion while measurements are
    // pending: their arrival will change the schedule and open new
    // candidates.
    return !picked.empty() || (async && rs.in_flight > 0);
  }
};

/// The cache keys on the member set alone, which is only sound for
/// single-stage subgraphs: their root sets (hence their extracted IR and
/// measured delay) are pure functions of the members. Every built-in
/// expansion produces single-stage subgraphs; a custom stage must too.
/// Validated only for subgraphs about to be measured — a memoized entry
/// was already validated when it was stored.
void check_single_stage(const run_state& rs, const extract::subgraph& sub) {
  for (const ir::node_id m : sub.members) {
    ISDC_CHECK(rs.current.same_stage(m, sub.members.front()),
               "evaluate stage requires single-stage subgraphs");
  }
}

/// Canonical fingerprints of all selected subgraphs, computed over the
/// compute pool when one is attached. Each computation uses thread-local
/// scratch and is a pure function of (graph, subgraph), so the vector is
/// identical either way; the cache interaction that consumes the keys
/// stays serial in the caller.
std::vector<std::uint64_t> fingerprint_subgraphs(
    run_state& rs, const std::vector<extract::subgraph>& subs) {
  std::vector<std::uint64_t> fp(subs.size());
  const auto one = [&](std::size_t i) {
    fp[i] = extract::canonical_fingerprint(rs.g, subs[i]);
  };
  if (rs.compute != nullptr && rs.compute->size() > 1 && subs.size() > 1) {
    rs.compute->parallel_for(subs.size(), one);
  } else {
    for (std::size_t i = 0; i < subs.size(); ++i) {
      one(i);
    }
  }
  return fp;
}

/// Measures every selected subgraph: cache hits reuse the memoized delay,
/// and keys are canonical fingerprints, so the memo may have been written
/// by an isomorphic cone of another design. Sync mode sends misses to the
/// downstream tool in parallel — one call per *distinct* fingerprint —
/// and joins before memoizing. Async mode is a non-blocking dispatcher:
/// each miss acquires a single-flight ticket and is submitted to the I/O
/// dispatch pool; its measurement arrives on the completion queue —
/// possibly several iterations later — where the update stage consumes
/// it. A fingerprint whose ticket is already pending (this run's, or a
/// concurrent fleet run's) is never dispatched twice: the selection
/// subscribes onto the pending ticket and receives its own arrival when
/// the one measurement completes.
class evaluate_stage final : public stage {
public:
  std::string_view name() const override { return "evaluate"; }

  bool run(run_state& rs, iteration_state& it) override {
    if (rs.options.async_evaluation) {
      return run_async(rs, it);
    }
    it.evaluations.assign(it.subgraphs.size(), {});
    // Misses grouped by canonical fingerprint: isomorphic cones selected
    // in the same batch cost one downstream call, and the rest copy it.
    const std::vector<std::uint64_t> fingerprints =
        fingerprint_subgraphs(rs, it.subgraphs);
    std::vector<std::uint64_t> keys(it.subgraphs.size(), 0);
    std::vector<std::size_t> unique_misses;
    std::unordered_map<std::uint64_t, std::size_t> first_miss;
    for (std::size_t i = 0; i < it.subgraphs.size(); ++i) {
      it.evaluations[i].members = it.subgraphs[i].members;
      keys[i] = subgraph_cache_key(rs.tool_fingerprint, fingerprints[i]);
      if (const auto memo = rs.cache.lookup(keys[i])) {
        it.evaluations[i].delay_ps = *memo;
        ++it.cache_hits;
      } else {
        check_single_stage(rs, it.subgraphs[i]);
        if (first_miss.emplace(keys[i], i).second) {
          unique_misses.push_back(i);
        }
      }
    }
    rs.pool.parallel_for(unique_misses.size(), [&](std::size_t j) {
      const std::size_t i = unique_misses[j];
      const ir::extraction sub_ir =
          extract::subgraph_to_ir(rs.g, it.subgraphs[i]);
      it.evaluations[i].delay_ps = rs.tool.subgraph_delay_ps(sub_ir.g);
    });
    for (std::size_t i : unique_misses) {
      rs.cache.store(keys[i], it.evaluations[i].delay_ps);
    }
    for (std::size_t i = 0; i < it.subgraphs.size(); ++i) {
      const auto rep = first_miss.find(keys[i]);
      if (rep != first_miss.end() && rep->second != i) {
        it.evaluations[i].delay_ps = it.evaluations[rep->second].delay_ps;
      }
    }
    return true;
  }

private:
  static bool run_async(run_state& rs, iteration_state& it) {
    const std::vector<std::uint64_t> fingerprints =
        fingerprint_subgraphs(rs, it.subgraphs);
    for (std::size_t si = 0; si < it.subgraphs.size(); ++si) {
      const extract::subgraph& sub = it.subgraphs[si];
      const std::uint64_t key =
          subgraph_cache_key(rs.tool_fingerprint, fingerprints[si]);
      // The factory runs only when the key's ticket is already held —
      // by an earlier selection of this run or by a concurrent fleet run
      // measuring an isomorphic cone of another design. It subscribes
      // this selection onto that ticket: a sequence number is allocated
      // here, on the scheduling thread, and when the one measurement
      // resolves, an arrival carrying *these* members lands on this
      // run's completion queue — so this region's matrix entries are
      // updated by a measurement dispatched by somebody else.
      const auto subscribe = [&rs, &sub]() {
        const std::uint64_t sequence = rs.next_ticket++;
        ++rs.in_flight;
        auto* completions = &rs.completions;
        std::vector<ir::node_id> members = sub.members;
        return evaluation_cache::waiter{
            .on_ready =
                [completions, sequence, members](double delay_ps) {
                  evaluation_arrival arrival;
                  arrival.sequence = sequence;
                  arrival.evaluation.members = members;
                  arrival.evaluation.delay_ps = delay_ps;
                  completions->push(std::move(arrival));
                },
            .on_abandon =
                [completions, sequence,
                 members](std::exception_ptr error) {
                  evaluation_arrival arrival;
                  arrival.sequence = sequence;
                  arrival.evaluation.members = members;
                  arrival.error =
                      error != nullptr
                          ? error
                          : std::make_exception_ptr(std::runtime_error(
                                "coalesced downstream evaluation "
                                "abandoned"));
                  completions->push(std::move(arrival));
                }};
      };
      const evaluation_cache::acquisition acq =
          rs.cache.try_acquire(key, subscribe);
      switch (acq.status) {
        case evaluation_cache::acquire_status::hit: {
          core::evaluated_subgraph eval;
          eval.members = sub.members;
          eval.delay_ps = acq.delay_ps;
          it.evaluations.push_back(std::move(eval));
          ++it.cache_hits;
          break;
        }
        case evaluation_cache::acquire_status::in_flight: {
          static telemetry::counter& coalesced_metric =
              telemetry::get_counter("engine.async.coalesced");
          coalesced_metric.add();
          ++it.evaluations_coalesced;
          break;
        }
        case evaluation_cache::acquire_status::acquired: {
          // Until the dispatched task owns the ticket (store/abandon on
          // completion), any failure here must release it — otherwise
          // every later isomorphic selection, this run's or another
          // shard's, would wait forever on a measurement nobody is
          // making.
          try {
            check_single_stage(rs, sub);
            // The IR is extracted here, on the scheduling thread, so the
            // dispatched task touches nothing owned by this iteration.
            dispatch(rs, key, sub.members,
                     extract::subgraph_to_ir(rs.g, sub));
          } catch (...) {
            rs.cache.abandon(key, std::current_exception());
            throw;
          }
          static telemetry::counter& dispatched_metric =
              telemetry::get_counter("engine.async.dispatched");
          dispatched_metric.add();
          ++it.evaluations_dispatched;
          break;
        }
      }
    }
    return true;
  }

  /// Submits one downstream call. The task only touches objects that
  /// outlive the dispatch pool (tool, cache, completion queue) plus its
  /// own captures, and never throws: failures travel back through the
  /// arrival's error slot and release the cache ticket.
  static void dispatch(run_state& rs, std::uint64_t key,
                       std::vector<ir::node_id> members,
                       ir::extraction sub_ir) {
    const std::uint64_t sequence = rs.next_ticket++;
    // in_flight is counted only after submit() succeeds: a failed submit
    // produces no arrival, and an uncounted sequence gap is harmless
    // (consumers only need the ordering). The caller abandons the cache
    // ticket on the throw.
    rs.dispatch_pool.submit(
        [tool = &rs.tool, cache = &rs.cache, completions = &rs.completions,
         cancel = rs.cancel, sequence, key, members = std::move(members),
         sub_ir = std::move(sub_ir)]() mutable {
          evaluation_arrival arrival;
          arrival.sequence = sequence;
          arrival.evaluation.members = std::move(members);
          try {
            if (cancel.cancelled()) {
              // The run is winding down: release the ticket without
              // calling out, so a cancelled run never waits on (or pays
              // for) downstream work it will discard.
              throw cancelled_error("evaluation cancelled before dispatch");
            }
            {
              const telemetry::span eval_span("engine.async.evaluate");
              arrival.evaluation.delay_ps =
                  tool->subgraph_delay_ps(sub_ir.g);
            }
            cache->store(key, arrival.evaluation.delay_ps);
          } catch (...) {
            arrival.error = std::current_exception();
            cache->abandon(key, arrival.error);
          }
          completions->push(std::move(arrival));
        });
    ++rs.in_flight;
  }
};

/// Alg. 1 lines 10-14 plus the configured reformulation. In async mode it
/// first consumes whatever measurements have arrived — dispatched this
/// iteration or any earlier one — and only blocks when the pass would
/// otherwise make no progress at all (nothing arrived, nothing hit,
/// nothing dispatched) while results are still pending.
class update_stage final : public stage {
public:
  std::string_view name() const override { return "update"; }
  bool runs_in_drain() const override { return true; }

  bool run(run_state& rs, iteration_state& it) override {
    if (rs.options.async_evaluation) {
      std::vector<evaluation_arrival> arrivals = rs.completions.try_drain();
      if (arrivals.empty() && it.cache_hits == 0 &&
          it.evaluations_dispatched == 0 && it.evaluations_coalesced == 0 &&
          rs.in_flight > 0) {
        arrivals = rs.completions.wait_drain();
      }
      consume_arrivals(rs, it, std::move(arrivals));
      it.evaluations_in_flight = rs.in_flight;
    }
    it.matrix_entries_lowered =
        core::update_delay_matrix(rs.result.delays, it.evaluations).size();
    switch (rs.options.reformulation) {
      case core::reformulation_mode::alg2:
        core::reformulate_alg2(rs.g, rs.result.delays, rs.compute);
        break;
      case core::reformulation_mode::floyd_warshall:
        core::reformulate_floyd_warshall(rs.g, rs.result.delays, rs.compute);
        break;
      case core::reformulation_mode::alg2_reference:
        core::reformulate_alg2_reference(rs.g, rs.result.delays);
        break;
      case core::reformulation_mode::floyd_warshall_reference:
        core::reformulate_floyd_warshall_reference(rs.g, rs.result.delays);
        break;
      case core::reformulation_mode::none:
        break;
    }
    return true;
  }
};

/// Re-solves the SDC LP through the run's stateful scheduler_instance:
/// only timing constraints whose delay-matrix entries moved (per the
/// matrix change log) are re-emitted, and the LP solver resumes warm from
/// its previous duals. Produces schedules bit-identical to a from-scratch
/// sdc_schedule on the same matrix.
class resolve_stage final : public stage {
public:
  std::string_view name() const override { return "resolve"; }
  bool runs_in_drain() const override { return true; }

  bool run(run_state& rs, iteration_state& it) override {
    const std::vector<sched::delay_matrix::node_pair> changed =
        rs.result.delays.take_changed_pairs();
    sched::scheduler_stats stats;
    sched::schedule resolved =
        rs.scheduler.resolve(rs.result.delays, changed, &stats);
    // The memoized ranking is a function of both the schedule and the
    // delay matrix: a moved matrix entry can reorder candidates even when
    // the re-solved schedule is unchanged.
    if (rs.candidate_cache_fresh &&
        (!changed.empty() || !(resolved == rs.current))) {
      rs.candidate_cache_fresh = false;
    }
    rs.current = std::move(resolved);
    it.warm_resolve = stats.warm;
    it.solver_ssp_paths = stats.ssp_paths;
    it.constraints_reemitted = stats.constraints_reemitted;
    return true;
  }
};

}  // namespace

std::unique_ptr<stage> make_enumerate_stage() {
  return std::make_unique<enumerate_stage>();
}
std::unique_ptr<stage> make_rank_stage() {
  return std::make_unique<rank_stage>();
}
std::unique_ptr<stage> make_expand_stage() {
  return std::make_unique<expand_stage>();
}
std::unique_ptr<stage> make_evaluate_stage() {
  return std::make_unique<evaluate_stage>();
}
std::unique_ptr<stage> make_update_stage() {
  return std::make_unique<update_stage>();
}
std::unique_ptr<stage> make_resolve_stage() {
  return std::make_unique<resolve_stage>();
}

std::size_t drain_pending_evaluations(run_state& rs, iteration_state& it) {
  // Collect every outstanding arrival first and consume them as one batch,
  // so the dispatch-order sort spans the whole drain — consuming batch by
  // batch would let a slow early ticket land behind a fast later one.
  std::vector<evaluation_arrival> arrivals = rs.completions.try_drain();
  while (arrivals.size() < rs.in_flight) {
    std::vector<evaluation_arrival> more = rs.completions.wait_drain();
    arrivals.insert(arrivals.end(), std::make_move_iterator(more.begin()),
                    std::make_move_iterator(more.end()));
  }
  const std::size_t consumed = arrivals.size();
  consume_arrivals(rs, it, std::move(arrivals));
  ISDC_CHECK(rs.in_flight == 0, "drain left evaluations in flight");
  it.evaluations_in_flight = 0;
  return consumed;
}

}  // namespace isdc::engine
