#include "engine/stages.h"

#include <cstdint>
#include <unordered_set>
#include <utility>

#include "core/floyd_warshall.h"
#include "core/reformulate.h"
#include "extract/cone.h"
#include "extract/path_enum.h"
#include "extract/window.h"
#include "support/check.h"

namespace isdc::engine {

namespace {

class enumerate_stage final : public stage {
public:
  std::string_view name() const override { return "enumerate"; }

  bool run(run_state& rs, iteration_state& it) override {
    it.paths = extract::enumerate_candidate_paths(rs.g, rs.current,
                                                  rs.result.delays);
    return true;
  }
};

class rank_stage final : public stage {
public:
  std::string_view name() const override { return "rank"; }

  bool run(run_state& rs, iteration_state& it) override {
    it.candidates = extract::rank_candidates(
        rs.g, rs.current, rs.options.base.clock_period_ps,
        rs.options.strategy, std::move(it.paths));
    it.paths.clear();
    return true;
  }
};

/// Expands the ranked candidates into up-to-m not-yet-selected subgraphs
/// (the iterative search-space reduction of Section III-A2). Ends the run
/// when nothing new can be selected.
class expand_stage final : public stage {
public:
  std::string_view name() const override { return "expand"; }

  bool run(run_state& rs, iteration_state& it) override {
    const int m = rs.options.subgraphs_per_iteration;
    std::vector<extract::subgraph>& picked = it.subgraphs;

    const auto selected = [&rs](const extract::subgraph& sub) {
      return rs.cache.selected_this_generation(
          subgraph_cache_key(rs.design_fingerprint, sub.key()));
    };
    const auto consider = [&](extract::subgraph sub) {
      const std::uint64_t key =
          subgraph_cache_key(rs.design_fingerprint, sub.key());
      if (rs.cache.selected_this_generation(key)) {
        return;
      }
      rs.cache.mark_selected(key);
      picked.push_back(std::move(sub));
    };

    if (rs.options.expansion != extract::expansion_mode::window) {
      for (std::size_t i = 0;
           i < it.candidates.size() && static_cast<int>(picked.size()) < m;
           ++i) {
        const extract::scored_candidate& cand = it.candidates[i];
        extract::subgraph sub =
            rs.options.expansion == extract::expansion_mode::path
                ? extract::expand_to_path(rs.g, rs.current, rs.result.delays,
                                          cand.path)
                : extract::expand_to_cone(rs.g, rs.current, cand.path);
        sub.score = cand.score;
        consider(std::move(sub));
      }
      return !picked.empty();
    }

    // Window mode: keep folding ranked cones into overlapping-leaf windows
    // until m *new* windows are available (merging shrinks the set, so the
    // cone budget is not the window budget). Each fold changes exactly one
    // window, so the fresh-window count is maintained incrementally from
    // the fold result instead of recounting the whole set. Candidates that
    // expand to a cone already folded this round are skipped — once a
    // stage's distinct cones are exhausted, its remaining candidates cost
    // nothing. (A refold could still matter in one corner: an *earlier*
    // window whose leaf set has since grown to overlap the duplicate would
    // absorb a second copy of its members. That only duplicates nodes
    // already inside another window, so the skip deliberately drops it.)
    std::vector<extract::subgraph> windows;
    std::vector<bool> window_fresh;
    std::unordered_set<std::uint64_t> folded_cones;
    int fresh = 0;
    for (const extract::scored_candidate& cand : it.candidates) {
      extract::subgraph cone =
          extract::expand_to_cone(rs.g, rs.current, cand.path);
      cone.score = cand.score;
      if (!folded_cones.insert(cone.key()).second) {
        continue;
      }
      const extract::fold_result fold = extract::merge_cone_into_windows(
          rs.g, rs.current, std::move(cone), windows);
      const bool now_fresh = !selected(windows[fold.index]);
      if (fold.appended) {
        window_fresh.push_back(now_fresh);
        fresh += now_fresh ? 1 : 0;
      } else {
        // The merge reshaped windows[fold.index] (new member set, new
        // cache key), which can flip its freshness either way.
        fresh += (now_fresh ? 1 : 0) -
                 (window_fresh[fold.index] ? 1 : 0);
        window_fresh[fold.index] = now_fresh;
      }
      if (fresh >= m) {
        break;
      }
    }
    for (extract::subgraph& w : windows) {
      if (static_cast<int>(picked.size()) >= m) {
        break;
      }
      consider(std::move(w));
    }
    return !picked.empty();
  }
};

/// Measures every selected subgraph: cache hits reuse the memoized delay,
/// misses go to the downstream tool in parallel and are memoized after.
class evaluate_stage final : public stage {
public:
  std::string_view name() const override { return "evaluate"; }

  bool run(run_state& rs, iteration_state& it) override {
    it.evaluations.assign(it.subgraphs.size(), {});
    std::vector<std::size_t> misses;
    for (std::size_t i = 0; i < it.subgraphs.size(); ++i) {
      // The cache keys on the member set alone, which is only sound for
      // single-stage subgraphs: their root sets (hence their extracted IR
      // and measured delay) are pure functions of the members. Every
      // built-in expansion produces single-stage subgraphs; a custom stage
      // must too.
      for (const ir::node_id m : it.subgraphs[i].members) {
        ISDC_CHECK(rs.current.same_stage(m, it.subgraphs[i].members.front()),
                   "evaluate stage requires single-stage subgraphs");
      }
      it.evaluations[i].members = it.subgraphs[i].members;
      const std::uint64_t key =
          subgraph_cache_key(rs.design_fingerprint, it.subgraphs[i].key());
      if (const auto memo = rs.cache.lookup(key)) {
        it.evaluations[i].delay_ps = *memo;
        ++it.cache_hits;
      } else {
        misses.push_back(i);
      }
    }
    rs.pool.parallel_for(misses.size(), [&](std::size_t j) {
      const std::size_t i = misses[j];
      const ir::extraction sub_ir =
          extract::subgraph_to_ir(rs.g, it.subgraphs[i]);
      it.evaluations[i].delay_ps = rs.tool.subgraph_delay_ps(sub_ir.g);
    });
    for (std::size_t i : misses) {
      rs.cache.store(
          subgraph_cache_key(rs.design_fingerprint, it.subgraphs[i].key()),
          it.evaluations[i].delay_ps);
    }
    return true;
  }
};

/// Alg. 1 lines 10-14 plus the configured reformulation.
class update_stage final : public stage {
public:
  std::string_view name() const override { return "update"; }

  bool run(run_state& rs, iteration_state& it) override {
    it.matrix_entries_lowered =
        core::update_delay_matrix(rs.result.delays, it.evaluations).size();
    switch (rs.options.reformulation) {
      case core::reformulation_mode::alg2:
        core::reformulate_alg2(rs.g, rs.result.delays);
        break;
      case core::reformulation_mode::floyd_warshall:
        core::reformulate_floyd_warshall(rs.g, rs.result.delays);
        break;
      case core::reformulation_mode::none:
        break;
    }
    return true;
  }
};

/// Re-solves the SDC LP through the run's stateful scheduler_instance:
/// only timing constraints whose delay-matrix entries moved (per the
/// matrix change log) are re-emitted, and the LP solver resumes warm from
/// its previous duals. Produces schedules bit-identical to a from-scratch
/// sdc_schedule on the same matrix.
class resolve_stage final : public stage {
public:
  std::string_view name() const override { return "resolve"; }

  bool run(run_state& rs, iteration_state& it) override {
    const std::vector<sched::delay_matrix::node_pair> changed =
        rs.result.delays.take_changed_pairs();
    sched::scheduler_stats stats;
    rs.current = rs.scheduler.resolve(rs.result.delays, changed, &stats);
    it.warm_resolve = stats.warm;
    it.solver_ssp_paths = stats.ssp_paths;
    it.constraints_reemitted = stats.constraints_reemitted;
    return true;
  }
};

}  // namespace

std::unique_ptr<stage> make_enumerate_stage() {
  return std::make_unique<enumerate_stage>();
}
std::unique_ptr<stage> make_rank_stage() {
  return std::make_unique<rank_stage>();
}
std::unique_ptr<stage> make_expand_stage() {
  return std::make_unique<expand_stage>();
}
std::unique_ptr<stage> make_evaluate_stage() {
  return std::make_unique<evaluate_stage>();
}
std::unique_ptr<stage> make_update_stage() {
  return std::make_unique<update_stage>();
}
std::unique_ptr<stage> make_resolve_stage() {
  return std::make_unique<resolve_stage>();
}

}  // namespace isdc::engine
