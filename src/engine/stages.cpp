#include "engine/stages.h"

#include <utility>

#include "core/floyd_warshall.h"
#include "core/reformulate.h"
#include "extract/cone.h"
#include "extract/path_enum.h"
#include "extract/window.h"
#include "support/check.h"

namespace isdc::engine {

namespace {

class enumerate_stage final : public stage {
public:
  std::string_view name() const override { return "enumerate"; }

  bool run(run_state& rs, iteration_state& it) override {
    it.paths = extract::enumerate_candidate_paths(rs.g, rs.current,
                                                  rs.result.delays);
    return true;
  }
};

class rank_stage final : public stage {
public:
  std::string_view name() const override { return "rank"; }

  bool run(run_state& rs, iteration_state& it) override {
    it.candidates = extract::rank_candidates(
        rs.g, rs.current, rs.options.base.clock_period_ps,
        rs.options.strategy, std::move(it.paths));
    it.paths.clear();
    return true;
  }
};

/// Expands the ranked candidates into up-to-m not-yet-selected subgraphs
/// (the iterative search-space reduction of Section III-A2). Ends the run
/// when nothing new can be selected.
class expand_stage final : public stage {
public:
  std::string_view name() const override { return "expand"; }

  bool run(run_state& rs, iteration_state& it) override {
    const int m = rs.options.subgraphs_per_iteration;
    std::vector<extract::subgraph>& picked = it.subgraphs;

    const auto selected = [&rs](const extract::subgraph& sub) {
      return rs.cache.selected_this_generation(
          subgraph_cache_key(rs.design_fingerprint, sub.key()));
    };
    const auto consider = [&](extract::subgraph sub) {
      const std::uint64_t key =
          subgraph_cache_key(rs.design_fingerprint, sub.key());
      if (rs.cache.selected_this_generation(key)) {
        return;
      }
      rs.cache.mark_selected(key);
      picked.push_back(std::move(sub));
    };

    if (rs.options.expansion != extract::expansion_mode::window) {
      for (std::size_t i = 0;
           i < it.candidates.size() && static_cast<int>(picked.size()) < m;
           ++i) {
        const extract::scored_candidate& cand = it.candidates[i];
        extract::subgraph sub =
            rs.options.expansion == extract::expansion_mode::path
                ? extract::expand_to_path(rs.g, rs.current, rs.result.delays,
                                          cand.path)
                : extract::expand_to_cone(rs.g, rs.current, cand.path);
        sub.score = cand.score;
        consider(std::move(sub));
      }
      return !picked.empty();
    }

    // Window mode: keep folding ranked cones into overlapping-leaf windows
    // until m *new* windows are available (merging shrinks the set, so the
    // cone budget is not the window budget). Each cone folds into the
    // running window set incrementally; a fold can reshape one window, so
    // the fresh count is recounted, but the set is never re-merged from
    // scratch.
    std::vector<extract::subgraph> windows;
    for (const extract::scored_candidate& cand : it.candidates) {
      extract::subgraph cone =
          extract::expand_to_cone(rs.g, rs.current, cand.path);
      cone.score = cand.score;
      extract::merge_cone_into_windows(rs.g, rs.current, std::move(cone),
                                       windows);
      int fresh = 0;
      for (const extract::subgraph& w : windows) {
        fresh += selected(w) ? 0 : 1;
      }
      if (fresh >= m) {
        break;
      }
    }
    for (extract::subgraph& w : windows) {
      if (static_cast<int>(picked.size()) >= m) {
        break;
      }
      consider(std::move(w));
    }
    return !picked.empty();
  }
};

/// Measures every selected subgraph: cache hits reuse the memoized delay,
/// misses go to the downstream tool in parallel and are memoized after.
class evaluate_stage final : public stage {
public:
  std::string_view name() const override { return "evaluate"; }

  bool run(run_state& rs, iteration_state& it) override {
    it.evaluations.assign(it.subgraphs.size(), {});
    std::vector<std::size_t> misses;
    for (std::size_t i = 0; i < it.subgraphs.size(); ++i) {
      // The cache keys on the member set alone, which is only sound for
      // single-stage subgraphs: their root sets (hence their extracted IR
      // and measured delay) are pure functions of the members. Every
      // built-in expansion produces single-stage subgraphs; a custom stage
      // must too.
      for (const ir::node_id m : it.subgraphs[i].members) {
        ISDC_CHECK(rs.current.same_stage(m, it.subgraphs[i].members.front()),
                   "evaluate stage requires single-stage subgraphs");
      }
      it.evaluations[i].members = it.subgraphs[i].members;
      const std::uint64_t key =
          subgraph_cache_key(rs.design_fingerprint, it.subgraphs[i].key());
      if (const auto memo = rs.cache.lookup(key)) {
        it.evaluations[i].delay_ps = *memo;
        ++it.cache_hits;
      } else {
        misses.push_back(i);
      }
    }
    rs.pool.parallel_for(misses.size(), [&](std::size_t j) {
      const std::size_t i = misses[j];
      const ir::extraction sub_ir =
          extract::subgraph_to_ir(rs.g, it.subgraphs[i]);
      it.evaluations[i].delay_ps = rs.tool.subgraph_delay_ps(sub_ir.g);
    });
    for (std::size_t i : misses) {
      rs.cache.store(
          subgraph_cache_key(rs.design_fingerprint, it.subgraphs[i].key()),
          it.evaluations[i].delay_ps);
    }
    return true;
  }
};

/// Alg. 1 lines 10-14 plus the configured reformulation.
class update_stage final : public stage {
public:
  std::string_view name() const override { return "update"; }

  bool run(run_state& rs, iteration_state& it) override {
    it.matrix_entries_lowered =
        core::update_delay_matrix(rs.result.delays, it.evaluations);
    switch (rs.options.reformulation) {
      case core::reformulation_mode::alg2:
        core::reformulate_alg2(rs.g, rs.result.delays);
        break;
      case core::reformulation_mode::floyd_warshall:
        core::reformulate_floyd_warshall(rs.g, rs.result.delays);
        break;
      case core::reformulation_mode::none:
        break;
    }
    return true;
  }
};

class resolve_stage final : public stage {
public:
  std::string_view name() const override { return "resolve"; }

  bool run(run_state& rs, iteration_state&) override {
    rs.current = sched::sdc_schedule(rs.g, rs.result.delays, rs.options.base);
    return true;
  }
};

}  // namespace

std::unique_ptr<stage> make_enumerate_stage() {
  return std::make_unique<enumerate_stage>();
}
std::unique_ptr<stage> make_rank_stage() {
  return std::make_unique<rank_stage>();
}
std::unique_ptr<stage> make_expand_stage() {
  return std::make_unique<expand_stage>();
}
std::unique_ptr<stage> make_evaluate_stage() {
  return std::make_unique<evaluate_stage>();
}
std::unique_ptr<stage> make_update_stage() {
  return std::make_unique<update_stage>();
}
std::unique_ptr<stage> make_resolve_stage() {
  return std::make_unique<resolve_stage>();
}

}  // namespace isdc::engine
