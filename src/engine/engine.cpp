#include "engine/engine.h"

#include <algorithm>
#include <utility>

#include "engine/stages.h"
#include "sched/metrics.h"
#include "support/check.h"
#include "support/hash.h"

namespace isdc::engine {

namespace {

core::iteration_record make_record(const ir::graph& g,
                                   const sched::schedule& s,
                                   const sched::delay_matrix& current,
                                   const sched::delay_matrix& naive,
                                   const core::isdc_options& options,
                                   int iteration) {
  core::iteration_record rec;
  rec.iteration = iteration;
  rec.register_bits = sched::register_bits(g, s);
  rec.num_stages = s.num_stages();
  rec.estimated_delay_ps = sched::estimated_critical_delay(g, s, current);
  rec.naive_estimated_delay_ps = sched::estimated_critical_delay(g, s, naive);
  if (options.record_synthesized_delay) {
    rec.synthesized_delay_ps =
        sched::synthesized_critical_delay(g, s, options.synth);
  }
  return rec;
}

}  // namespace

std::vector<std::unique_ptr<stage>> engine::default_pipeline() {
  std::vector<std::unique_ptr<stage>> stages;
  stages.push_back(make_enumerate_stage());
  stages.push_back(make_rank_stage());
  stages.push_back(make_expand_stage());
  stages.push_back(make_evaluate_stage());
  stages.push_back(make_update_stage());
  stages.push_back(make_resolve_stage());
  return stages;
}

engine::engine(std::vector<std::unique_ptr<stage>> pipeline)
    : pipeline_(std::move(pipeline)) {
  ISDC_CHECK(!pipeline_.empty(), "engine needs at least one stage");
}

void engine::add_observer(iteration_observer* observer) {
  ISDC_CHECK(observer != nullptr);
  observers_.push_back(observer);
}

void engine::remove_observer(iteration_observer* observer) {
  std::erase(observers_, observer);
}

core::isdc_result engine::run(const ir::graph& g,
                              const core::downstream_tool& tool,
                              const core::isdc_options& options,
                              const synth::delay_model* model) {
  ISDC_CHECK(options.max_iterations >= 0);
  ISDC_CHECK(options.subgraphs_per_iteration > 0);

  synth::delay_model local_model(options.synth);
  const synth::delay_model& dm = model != nullptr ? *model : local_model;

  core::isdc_result result;
  result.naive_delays = sched::delay_matrix::initial(
      g, [&](ir::node_id v) { return dm.node_delay_ps(g, v); });
  result.delays = result.naive_delays;

  // The scheduling instance persists across iterations: the baseline solve
  // below builds its constraint system cold, and every later re-solve (the
  // resolve stage) re-emits only the timing constraints whose matrix
  // entries changed — tracked by the change log enabled here — and resumes
  // the LP solver warm.
  sched::scheduler_instance scheduler(g, options.base);
  sched::scheduler_stats baseline_stats;
  sched::schedule current = scheduler.solve(result.delays, &baseline_stats);
  result.delays.track_changes(true);
  result.initial = current;
  result.final_schedule = current;
  result.history.push_back(make_record(g, current, result.delays,
                                       result.naive_delays, options, 0));
  result.history.back().solver_ssp_paths = baseline_stats.ssp_paths;
  std::int64_t best_bits = result.history.back().register_bits;

  for (iteration_observer* obs : observers_) {
    obs->on_run_begin(g, options);
  }
  for (iteration_observer* obs : observers_) {
    obs->on_iteration(result.history.back());
  }

  cache_.begin_generation();
  thread_pool pool(static_cast<std::size_t>(std::max(1, options.num_threads)));
  // Cache keys scope to (design, downstream tool): a delay measured by one
  // oracle must never answer for another (see downstream_tool::name()).
  const std::uint64_t design_fingerprint =
      fnv1a64().mix(g.fingerprint()).mix(tool.name()).value();
  run_state rs{g,      tool,   options, result,    current,
               cache_, pool,   scheduler, design_fingerprint};

  int stable_iterations = 0;
  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    iteration_state it;
    it.iteration = iter;

    bool stopped = false;
    for (const std::unique_ptr<stage>& st : pipeline_) {
      if (!st->run(rs, it)) {
        stopped = true;
        break;
      }
    }
    if (stopped) {
      break;  // search space exhausted (or a custom stage ended the run)
    }

    core::iteration_record rec = make_record(g, current, result.delays,
                                             result.naive_delays, options,
                                             iter);
    rec.subgraphs_evaluated = static_cast<int>(it.subgraphs.size());
    rec.matrix_entries_lowered = it.matrix_entries_lowered;
    rec.cache_hits = it.cache_hits;
    rec.warm_resolve = it.warm_resolve;
    rec.solver_ssp_paths = it.solver_ssp_paths;
    rec.constraints_reemitted = it.constraints_reemitted;
    result.history.push_back(rec);
    result.iterations = iter;
    for (iteration_observer* obs : observers_) {
      obs->on_iteration(rec);
    }

    if (rec.register_bits < best_bits) {
      best_bits = rec.register_bits;
      result.final_schedule = current;
      stable_iterations = 0;
    } else if (++stable_iterations >= options.convergence_patience) {
      break;  // register usage stable: converged
    }
  }

  for (iteration_observer* obs : observers_) {
    obs->on_run_end(result);
  }
  return result;
}

}  // namespace isdc::engine
