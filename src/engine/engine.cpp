#include "engine/engine.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "engine/stages.h"
#include "extract/canonical.h"
#include "sched/metrics.h"
#include "support/check.h"
#include "support/hash.h"
#include "support/mem.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace isdc::engine {

namespace {

core::iteration_record make_record(const ir::graph& g,
                                   const sched::schedule& s,
                                   const sched::delay_matrix& current,
                                   const sched::delay_matrix& naive,
                                   const core::isdc_options& options,
                                   int iteration) {
  core::iteration_record rec;
  rec.iteration = iteration;
  rec.register_bits = sched::register_bits(g, s);
  rec.num_stages = s.num_stages();
  rec.estimated_delay_ps = sched::estimated_critical_delay(g, s, current);
  rec.naive_estimated_delay_ps = sched::estimated_critical_delay(g, s, naive);
  if (options.record_synthesized_delay) {
    rec.synthesized_delay_ps =
        sched::synthesized_critical_delay(g, s, options.synth);
  }
  return rec;
}

void fill_pipeline_counters(core::iteration_record& rec,
                            const iteration_state& it) {
  rec.subgraphs_evaluated = static_cast<int>(it.subgraphs.size());
  rec.matrix_entries_lowered = it.matrix_entries_lowered;
  rec.cache_hits = it.cache_hits;
  rec.warm_resolve = it.warm_resolve;
  rec.solver_ssp_paths = it.solver_ssp_paths;
  rec.constraints_reemitted = it.constraints_reemitted;
  rec.evaluations_dispatched = it.evaluations_dispatched;
  rec.evaluations_coalesced = it.evaluations_coalesced;
  rec.evaluations_arrived = it.evaluations_arrived;
  rec.evaluations_in_flight = it.evaluations_in_flight;
}

/// Guarantees no ticket outlives the run, whichever way it exits. Every
/// in-flight entry — own dispatches and subscriptions onto other runs'
/// tickets — eventually pushes exactly one arrival onto this run's
/// completion queue, so on an exceptional exit we block until all have
/// landed and discard them. Without this, a shared dispatch pool (fleet
/// mode) could complete a task whose completion queue is already gone.
struct ticket_drain_guard {
  run_state& rs;
  ~ticket_drain_guard() {
    while (rs.in_flight > 0) {
      const std::size_t landed = rs.completions.wait_drain().size();
      ISDC_CHECK(landed <= rs.in_flight, "more arrivals than tickets");
      rs.in_flight -= landed;
    }
  }
};

}  // namespace

int evaluation_pool_width(const core::isdc_options& options) {
  if (options.async_evaluation) {
    return options.async_max_in_flight > 0
               ? options.async_max_in_flight
               : 4 * options.subgraphs_per_iteration;
  }
  return std::max(1, options.num_threads);
}

std::vector<std::unique_ptr<stage>> engine::default_pipeline() {
  std::vector<std::unique_ptr<stage>> stages;
  stages.push_back(make_enumerate_stage());
  stages.push_back(make_rank_stage());
  stages.push_back(make_expand_stage());
  stages.push_back(make_evaluate_stage());
  stages.push_back(make_update_stage());
  stages.push_back(make_resolve_stage());
  return stages;
}

engine::engine(std::vector<std::unique_ptr<stage>> pipeline)
    : pipeline_(std::move(pipeline)) {
  ISDC_CHECK(!pipeline_.empty(), "engine needs at least one stage");
}

engine::engine(std::string cache_file) : engine(default_pipeline()) {
  attach_cache_file(std::move(cache_file));
}

engine::~engine() {
  if (!cache_file_.empty()) {
    flush_cache_file();
  }
}

void engine::use_shared_cache(evaluation_cache* shared) {
  active_cache_ = shared != nullptr ? shared : &cache_;
}

bool engine::attach_cache_file(std::string path) {
  cache_file_ = std::move(path);
  return active_cache_->load(cache_file_,
                             extract::canonical_fingerprint_version());
}

bool engine::flush_cache_file() const {
  return !cache_file_.empty() &&
         active_cache_->save(cache_file_,
                             extract::canonical_fingerprint_version());
}

void engine::add_observer(iteration_observer* observer) {
  ISDC_CHECK(observer != nullptr);
  observers_.push_back(observer);
}

void engine::remove_observer(iteration_observer* observer) {
  std::erase(observers_, observer);
}

core::isdc_result engine::run(const ir::graph& g,
                              const core::downstream_tool& tool,
                              const core::isdc_options& options,
                              const synth::delay_model* model,
                              thread_pool* shared_pool,
                              thread_pool* compute_pool,
                              const cancellation_token* cancel) {
  ISDC_CHECK(options.max_iterations >= 0);
  ISDC_CHECK(options.subgraphs_per_iteration > 0);
  ISDC_CHECK(options.compute_threads >= 0);
  ISDC_CHECK(options.memory_budget_mb >= 0.0);

  const telemetry::span run_span("engine.run", tool.name());
  telemetry::get_counter("engine.runs").add();

  if (options.memory_budget_mb > 0.0) {
    // Memory-budgeted path (partition.cpp): streams weakly-connected
    // components through budget-free runs one at a time and merges the
    // schedules; re-enters here per component with the budget cleared.
    return run_partitioned(g, tool, options, model, shared_pool,
                           compute_pool, cancel);
  }

  // The run's cancellation token: a child of the caller's (so an external
  // cancel reaches us but our deadline never touches siblings), or a fresh
  // one when only a wall budget is set, or inert when neither applies.
  cancellation_token run_cancel;
  if (cancel != nullptr && cancel->valid()) {
    run_cancel = cancel->child();
  } else if (options.wall_budget_ms > 0.0) {
    run_cancel = cancellation_token::make();
  }
  run_cancel.set_deadline_after(options.wall_budget_ms);

  // The in-design compute pool: the caller's (fleet mode — shards and
  // in-design work co-schedule on one pool), the process default, or a
  // private pool, per compute_threads. nullptr = every stage runs serial.
  std::optional<thread_pool> local_compute;
  thread_pool* compute = compute_pool;
  if (compute == nullptr) {
    if (options.compute_threads == 0) {
      compute = &default_pool();
    } else if (options.compute_threads > 1) {
      local_compute.emplace(
          static_cast<std::size_t>(options.compute_threads));
      compute = &*local_compute;
    }
  }

  synth::delay_model local_model(options.synth);
  const synth::delay_model& dm = model != nullptr ? *model : local_model;

  core::isdc_result result;
  result.naive_delays = sched::delay_matrix::initial(
      g, [&](ir::node_id v) { return dm.node_delay_ps(g, v); }, compute);
  result.delays = result.naive_delays;

  // The scheduling instance persists across iterations: the baseline solve
  // below builds its constraint system cold, and every later re-solve (the
  // resolve stage) re-emits only the timing constraints whose matrix
  // entries changed — tracked by the change log enabled here — and resumes
  // the LP solver warm.
  sched::scheduler_instance scheduler(g, options.base);
  sched::scheduler_stats baseline_stats;
  sched::schedule current = scheduler.solve(result.delays, &baseline_stats);
  result.delays.track_changes(true);
  result.initial = current;
  result.final_schedule = current;
  result.history.push_back(make_record(g, current, result.delays,
                                       result.naive_delays, options, 0));
  result.history.back().solver_ssp_paths = baseline_stats.ssp_paths;
  std::int64_t best_bits = result.history.back().register_bits;

  for (iteration_observer* obs : observers_) {
    obs->on_run_begin(g, options);
  }
  for (iteration_observer* obs : observers_) {
    obs->on_iteration(result.history.back());
    obs->on_schedule(g, current, result.delays, result.history.back());
  }

  const bool async = options.async_evaluation;
  const int max_in_flight = async ? evaluation_pool_width(options) : 0;
  // Declared before the (local) pool: dispatched tasks push here, and the
  // pool destructor runs-and-joins every outstanding task first.
  completion_queue<evaluation_arrival> completions;
  // The evaluation pool: the caller's shared one (fleet mode — one wide
  // I/O pool serves every shard), or a per-run pool sized by
  // evaluation_pool_width (CPU-bound parallel evaluation in sync mode,
  // the I/O in-flight cap in async mode).
  std::optional<thread_pool> local_pool;
  if (shared_pool == nullptr) {
    local_pool.emplace(
        static_cast<std::size_t>(evaluation_pool_width(options)));
  }
  thread_pool& pool = shared_pool != nullptr ? *shared_pool : *local_pool;
  // Cache keys scope to the downstream tool: a delay measured by one
  // oracle must never answer for another (see downstream_tool::name()).
  // Designs deliberately do not enter the key — subgraphs are keyed by
  // canonical structural fingerprint, so isomorphic cones from different
  // designs (or different regions of this one) share a measurement.
  const std::uint64_t tool_fingerprint = fnv1a64().mix(tool.name()).value();
  run_state rs{.g = g,
               .tool = tool,
               .options = options,
               .result = result,
               .current = current,
               .cache = *active_cache_,
               .pool = pool,
               .dispatch_pool = pool,
               .compute = compute,
               .completions = completions,
               .scheduler = scheduler,
               .tool_fingerprint = tool_fingerprint,
               .selected = {},
               .max_in_flight = max_in_flight,
               .in_flight = 0,
               .next_ticket = 0,
               .quiesce = false,
               .cancel = run_cancel,
               .candidate_cache = {},
               .candidate_cache_fresh = false};
  // After rs (and before anything that can throw below): its destructor
  // reads rs and must run before the pool and queue go away.
  const ticket_drain_guard drain_guard{rs};

  // Per-stage instruments, resolved once per run: the span name
  // "engine.stage.<name>" and the matching wall-clock histogram
  // "engine.stage.<name>.wall_us". Histogram references are stable for
  // the process lifetime, so holding raw pointers across iterations is
  // safe even if other threads register metrics concurrently.
  std::vector<std::string> stage_span_names;
  std::vector<telemetry::histogram*> stage_wall_us;
  stage_span_names.reserve(pipeline_.size());
  stage_wall_us.reserve(pipeline_.size());
  for (const std::unique_ptr<stage>& st : pipeline_) {
    stage_span_names.push_back("engine.stage." + std::string(st->name()));
    stage_wall_us.push_back(
        &telemetry::get_histogram(stage_span_names.back() + ".wall_us"));
  }

  // An async pass folds in however much feedback happens to have arrived,
  // so passes are not comparable units of work: the iteration budget and
  // the convergence patience are both measured in *consumed evaluations*,
  // normalized by subgraphs_per_iteration. A sync run and an async run
  // with the same options therefore see the same feedback volume.
  const std::int64_t per_iteration =
      static_cast<std::int64_t>(options.subgraphs_per_iteration);
  const std::int64_t evaluation_budget =
      static_cast<std::int64_t>(options.max_iterations) * per_iteration;
  const std::int64_t stable_budget =
      static_cast<std::int64_t>(options.convergence_patience) * per_iteration;
  int stable_iterations = 0;        // sync: non-improving passes
  std::int64_t stable_consumed = 0;  // async: non-improving consumed evals
  std::int64_t consumed_total = 0;
  int iterations_run = 0;
  for (int iter = 1;
       async ? consumed_total < evaluation_budget
             : iter <= options.max_iterations;
       ++iter) {
    if (run_cancel.cancelled()) {
      // Budget expired / externally cancelled: stop here with the best
      // schedule so far. In-flight evaluations are drained below (and by
      // the drain guard), never leaked.
      result.cancelled = true;
      break;
    }
    iteration_state it;
    it.iteration = iter;

    bool stopped = false;
    for (std::size_t si = 0; si < pipeline_.size(); ++si) {
      const telemetry::span stage_span(stage_span_names[si]);
      const std::uint64_t t0 = telemetry::trace_now_us();
      const bool keep_going = pipeline_[si]->run(rs, it);
      stage_wall_us[si]->record(
          static_cast<double>(telemetry::trace_now_us() - t0));
      if (!keep_going) {
        stopped = true;
        break;
      }
    }
    if (stopped) {
      break;  // search space exhausted (or a custom stage ended the run)
    }
    telemetry::get_counter("engine.iterations").add();
    iterations_run = iter;

    core::iteration_record rec = make_record(g, current, result.delays,
                                             result.naive_delays, options,
                                             iter);
    fill_pipeline_counters(rec, it);
    result.history.push_back(rec);
    result.iterations = iter;
    for (iteration_observer* obs : observers_) {
      obs->on_iteration(rec);
      obs->on_schedule(g, current, result.delays, rec);
    }

    const int consumed = rec.cache_hits + rec.evaluations_arrived;
    consumed_total += consumed;
    if (rec.register_bits < best_bits) {
      best_bits = rec.register_bits;
      result.final_schedule = current;
      stable_iterations = 0;
      stable_consumed = 0;
      rs.quiesce = false;
    } else if (!async) {
      if (++stable_iterations >= options.convergence_patience) {
        break;  // register usage stable: converged
      }
    } else if (consumed > 0) {
      // Async passes that consumed nothing (still waiting on downstream
      // results) are not evidence of convergence and don't age patience.
      stable_consumed += consumed;
      if (stable_consumed >= stable_budget) {
        if (rs.in_flight == 0) {
          break;  // register usage stable: converged
        }
        // Patience must not fire while results are pending: stop
        // speculating and drain until they arrive (an improvement resets
        // the counter above).
        rs.quiesce = true;
      }
    }
  }

  // Final drain: the loop may end — converged, exhausted or out of budget
  // — with measurements still in flight. Consume every one of them, run
  // update + resolve once more, and account the pass as one extra record,
  // so no downstream result is ever lost.
  if (async && rs.in_flight > 0) {
    const telemetry::span drain_span("engine.drain");
    iteration_state it;
    it.iteration = iterations_run + 1;
    drain_pending_evaluations(rs, it);
    // Fold with the pipeline's own drain-participating stages (see
    // stage::runs_in_drain), so a recomposed pipeline keeps its semantics
    // for the drained batch; a pipeline declaring none falls back to the
    // built-in update + resolve. The usual stage contract holds: a stage
    // returning false ends the pass, and no record is emitted for it.
    bool any_drain_stage = false;
    bool drain_stopped = false;
    for (const std::unique_ptr<stage>& st : pipeline_) {
      if (st->runs_in_drain()) {
        any_drain_stage = true;
        if (!st->run(rs, it)) {
          drain_stopped = true;
          break;
        }
      }
    }
    if (!any_drain_stage) {
      make_update_stage()->run(rs, it);
      make_resolve_stage()->run(rs, it);
    }
    if (!drain_stopped) {
      core::iteration_record rec =
          make_record(g, current, result.delays, result.naive_delays,
                      options, it.iteration);
      fill_pipeline_counters(rec, it);
      result.history.push_back(rec);
      result.iterations = it.iteration;
      for (iteration_observer* obs : observers_) {
        obs->on_iteration(rec);
        obs->on_schedule(g, current, result.delays, rec);
      }
      if (rec.register_bits < best_bits) {
        best_bits = rec.register_bits;
        result.final_schedule = current;
      }
    }
  }

  result.peak_rss_kb = isdc::peak_rss_kb();
  for (iteration_observer* obs : observers_) {
    obs->on_run_end(result);
  }
  return result;
}

}  // namespace isdc::engine
