// Persistent memo of downstream evaluations. A subgraph's measured delay
// depends only on its extracted IR and the downstream tool that timed it,
// never on the schedule that exposed it: all engine subgraphs are
// single-stage, so their root sets — and therefore the IR handed to the
// tool — are pure functions of the member set (the evaluate stage checks
// this). A measurement is thus valid across iterations, across run()
// calls and even across clock periods of the same design — the cache
// survives all three and reports how much downstream work it saved. Keys
// mix the design fingerprint and the tool identity with the member-set
// key, so neither different designs nor different tools can collide.
//
// The cache also subsumes the per-run dedup the monolithic loop kept in a
// separate std::unordered_set: every entry remembers the generation (run)
// in which it was last selected, so the expansion stage's "was this
// subgraph already taken this run?" question and the evaluation stage's
// "do we already know its delay?" question are answered by one structure.
//
// Entries additionally carry an in-flight state for the asynchronous
// evaluate stage: try_acquire() grants a single-flight ticket per key, so
// a subgraph selected again while its measurement is still pending is
// never dispatched twice. All methods are thread-safe — completions land
// from dispatch-pool threads concurrently with the driver's lookups.
#ifndef ISDC_ENGINE_EVALUATION_CACHE_H_
#define ISDC_ENGINE_EVALUATION_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>

namespace isdc::engine {

/// Canonical cache key: the design fingerprint (which the engine already
/// scopes by downstream-tool identity) mixed into the subgraph's
/// member-set key, so member ids from different designs cannot collide.
inline std::uint64_t subgraph_cache_key(std::uint64_t design_fingerprint,
                                        std::uint64_t subgraph_key) {
  std::uint64_t x = design_fingerprint ^ (subgraph_key * 0x9e3779b97f4a7c15ull);
  // splitmix64 finalizer.
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

class evaluation_cache {
public:
  struct counters {
    std::uint64_t hits = 0;    ///< lookups answered from the cache
    std::uint64_t misses = 0;  ///< lookups that required a downstream call
    std::uint64_t coalesced = 0;  ///< acquisitions answered "in flight"
  };

  /// What try_acquire found for a key.
  enum class acquire_status {
    hit,       ///< a memoized delay exists (returned alongside)
    acquired,  ///< no memo, no pending ticket: the caller must evaluate
    in_flight  ///< someone else holds the ticket; the result will arrive
  };
  struct acquisition {
    acquire_status status = acquire_status::acquired;
    double delay_ps = 0.0;  ///< valid only when status == hit
  };

  /// Starts a new run: per-run selection dedup resets, memoized delays and
  /// counters survive.
  void begin_generation();

  /// True when `key` was already selected during the current generation.
  bool selected_this_generation(std::uint64_t key) const;

  /// Marks `key` as selected in the current generation.
  void mark_selected(std::uint64_t key);

  /// Memoized delay for `key`; bumps the hit/miss counters.
  std::optional<double> lookup(std::uint64_t key);

  /// Memoizes a downstream measurement for `key` and releases any pending
  /// in-flight ticket.
  void store(std::uint64_t key, double delay_ps);

  /// Single-flight gate for the async evaluate stage: answers from the
  /// memo when possible, otherwise grants the evaluation ticket to exactly
  /// one caller per key (counted as a miss); later acquirers see in_flight
  /// (counted as coalesced) until store()/abandon() releases the ticket.
  acquisition try_acquire(std::uint64_t key);

  /// Releases an in-flight ticket without storing a delay (the downstream
  /// call failed); the next try_acquire may evaluate the key again.
  void abandon(std::uint64_t key);

  /// Number of keys whose evaluation ticket is currently held.
  std::size_t num_in_flight() const;

  /// Number of memoized delays.
  std::size_t size() const;
  counters stats() const;

  /// Drops all entries and counters (the generation keeps advancing).
  /// Must not be called with evaluations in flight.
  void clear();

private:
  struct entry {
    double delay_ps = 0.0;
    bool has_delay = false;
    bool in_flight = false;
    std::uint64_t selected_generation = 0;  ///< 0 = never selected
  };

  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, entry> entries_;
  counters counters_;
  std::size_t num_delays_ = 0;
  std::size_t num_in_flight_ = 0;
  std::uint64_t generation_ = 0;
};

}  // namespace isdc::engine

#endif  // ISDC_ENGINE_EVALUATION_CACHE_H_
