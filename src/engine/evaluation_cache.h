// Persistent memo of downstream evaluations. A subgraph's measured delay
// depends only on its extracted IR and the downstream tool that timed it,
// never on the schedule that exposed it: all engine subgraphs are
// single-stage, so their root sets — and therefore the IR handed to the
// tool — are pure functions of the member set (the evaluate stage checks
// this). A measurement is thus valid across iterations, across run()
// calls, across clock periods and — because keys are *canonical* subgraph
// fingerprints (extract/canonical.h) combined with the tool identity —
// across designs: isomorphic cones from different designs coalesce into
// one entry, so a whole fleet of workloads shares one memo.
//
// Entries carry an in-flight state for the asynchronous evaluate stage:
// try_acquire() grants a single-flight ticket per key, and later acquirers
// may register a waiter that is notified when the ticket resolves — which
// is how a cone selected by one design while an isomorphic cone from
// another design is still being measured receives that measurement instead
// of stalling or re-dispatching. All methods are thread-safe: completions
// land from dispatch-pool threads, and in fleet mode many concurrent runs
// share one cache.
//
// The memo can be persisted: save()/load() serialize the fingerprint ->
// delay map as a versioned binary file, so feedback survives process
// restarts and can be shipped between machines.
#ifndef ISDC_ENGINE_EVALUATION_CACHE_H_
#define ISDC_ENGINE_EVALUATION_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/hash.h"

namespace isdc::engine {

/// Canonical cache key: the downstream-tool fingerprint (a delay measured
/// by one oracle must never answer for another) combined with the
/// subgraph's canonical structural fingerprint. Designs deliberately do
/// not enter the key — that is what lets isomorphic cones from different
/// designs share one measurement.
inline std::uint64_t subgraph_cache_key(std::uint64_t tool_fingerprint,
                                        std::uint64_t canonical_fingerprint) {
  return hash_combine(tool_fingerprint, canonical_fingerprint);
}

class evaluation_cache {
public:
  struct counters {
    std::uint64_t hits = 0;    ///< lookups answered from the cache
    std::uint64_t misses = 0;  ///< lookups that required a downstream call
    std::uint64_t coalesced = 0;  ///< acquisitions answered "in flight"
  };

  /// What try_acquire found for a key.
  enum class acquire_status {
    hit,       ///< a memoized delay exists (returned alongside)
    acquired,  ///< no memo, no pending ticket: the caller must evaluate
    in_flight  ///< someone else holds the ticket; the result will arrive
  };
  struct acquisition {
    acquire_status status = acquire_status::acquired;
    double delay_ps = 0.0;  ///< valid only when status == hit
  };

  /// Notification hooks for an in-flight ticket held by someone else —
  /// possibly a different design's run on a different shard. Exactly one
  /// of the two fires, on the thread that resolves the ticket, outside the
  /// cache lock; both must stay callable until then (the registrant's
  /// completion queue must outlive the ticket, which the engine guarantees
  /// by draining every subscription before returning).
  struct waiter {
    std::function<void(double delay_ps)> on_ready;  ///< store() resolved it
    std::function<void(std::exception_ptr)> on_abandon;  ///< call failed
  };

  /// Memoized delay for `key`; bumps the hit/miss counters.
  std::optional<double> lookup(std::uint64_t key);

  /// Memoizes a downstream measurement for `key`, releases any pending
  /// in-flight ticket and notifies registered waiters (outside the lock).
  void store(std::uint64_t key, double delay_ps);

  /// Single-flight gate for the async evaluate stage: answers from the
  /// memo when possible, otherwise grants the evaluation ticket to exactly
  /// one caller per key (counted as a miss); later acquirers see in_flight
  /// (counted as coalesced) until store()/abandon() releases the ticket.
  acquisition try_acquire(std::uint64_t key);

  /// Like try_acquire, but an in_flight answer additionally registers the
  /// waiter built by `make_waiter` to be notified when the pending ticket
  /// resolves. The factory runs on the calling thread, only when the
  /// answer is in_flight, and atomically with the acquisition — so the
  /// caller can take per-run ticket accounting (sequence numbers,
  /// in-flight counts) inside it without racing the resolution. It must
  /// not call back into the cache.
  acquisition try_acquire(std::uint64_t key,
                          const std::function<waiter()>& make_waiter);

  /// Releases an in-flight ticket without storing a delay (the downstream
  /// call failed); waiters are notified with `error` and the next
  /// try_acquire may evaluate the key again.
  void abandon(std::uint64_t key, std::exception_ptr error = nullptr);

  /// Number of keys whose evaluation ticket is currently held.
  std::size_t num_in_flight() const;

  /// Number of memoized delays.
  std::size_t size() const;
  counters stats() const;

  /// Drops all entries and counters. Must not be called with evaluations
  /// in flight.
  void clear();

  /// Serializes the memoized delays (in-flight tickets and counters are
  /// transient and skipped) as a versioned binary file. `key_schema`
  /// identifies how keys were computed — pass
  /// extract::canonical_fingerprint_version() — so a cache written under
  /// one fingerprint algorithm is never misread under another.
  ///
  /// Crash-safe: every record carries a CRC32, the file ends in a footer
  /// (count + whole-stream CRC), the bytes are fsync'd before a rename
  /// from a uniquely named temp file (pid + counter suffix, so concurrent
  /// processes flushing one cache_file never clobber each other's partial
  /// writes), and records are sorted by key so identical contents produce
  /// identical bytes. Returns false on I/O failure (the previous file, if
  /// any, is left intact).
  bool save(const std::string& path, std::uint64_t key_schema) const;

  /// What load_checked() found. A *corrupt* file (torn write, bit flip,
  /// truncation) is never fatal: every record whose CRC checks out up to
  /// the first bad byte is merged (`salvaged`, `records`), and the bad
  /// file is moved aside to `<path>.corrupt` (`quarantined_to`) so the
  /// next save starts clean and the evidence survives for inspection. A
  /// recognized-but-foreign file (other format version, other key schema)
  /// is rejected cleanly: nothing loaded, nothing quarantined.
  struct load_report {
    bool ok = false;        ///< clean, complete load
    bool salvaged = false;  ///< corrupt file: valid prefix merged
    std::size_t records = 0;  ///< entries merged into the cache
    std::string quarantined_to;  ///< where the corrupt file was moved
    std::string error;  ///< human-readable reason when not ok
  };

  /// Merges entries from a file written by save() into the cache (existing
  /// delays are overwritten; tickets are untouched).
  load_report load_checked(const std::string& path,
                           std::uint64_t key_schema);

  /// load_checked() reduced to a bool: true when anything was loaded
  /// (cleanly, or salvaged from a corrupt file).
  bool load(const std::string& path, std::uint64_t key_schema);

private:
  struct entry {
    double delay_ps = 0.0;
    bool has_delay = false;
    bool in_flight = false;
    std::vector<waiter> waiters;  ///< registered while in_flight
  };

  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, entry> entries_;
  counters counters_;
  std::size_t num_delays_ = 0;
  std::size_t num_in_flight_ = 0;
};

}  // namespace isdc::engine

#endif  // ISDC_ENGINE_EVALUATION_CACHE_H_
