// Fleet scheduling: many designs through one engine. The batch front-end
// that turns the one-design-per-process ISDC driver into a many-users
// service shape: a CPU shard pool runs one ISDC flow per shard, and every
// shard shares
//   - one engine (stateless stages, concurrent-safe run()),
//   - one thread-safe evaluation_cache keyed by canonical subgraph
//     fingerprints, so isomorphic cones from *different* designs coalesce
//     into a single downstream measurement — including concurrently, via
//     the cache's cross-run single-flight tickets,
//   - one wide async I/O dispatch pool for downstream calls,
//   - one process-wide characterizer (synth::delay_model) over the
//     process-wide cell library,
// instead of each run paying its own setup and its own measurements.
//
// The cache can be persisted (fleet_options::cache_path): loaded at
// construction, saved on destruction and on flush_cache(), so feedback
// survives restarts and is shippable between machines.
#ifndef ISDC_ENGINE_FLEET_H_
#define ISDC_ENGINE_FLEET_H_

#include <cstddef>
#include <exception>
#include <optional>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "support/cancellation.h"
#include "support/thread_pool.h"
#include "synth/characterizer.h"

namespace isdc::engine {

struct fleet_options {
  /// Concurrent ISDC runs. Each shard executes whole runs; within a shard
  /// the usual engine pipeline (including async evaluation) applies.
  int shards = 4;
  /// Options applied to every job (clock period overridable per job). The
  /// shared characterizer is built from `isdc.synth`.
  core::isdc_options isdc;
  /// Width of the shared downstream-evaluation pool. 0 = shards times the
  /// per-run width (num_threads in sync mode, the async in-flight cap in
  /// async mode), capped at 256.
  int pool_width = 0;
  /// Optional persisted-cache path; empty = in-memory only.
  std::string cache_path;
  /// Per-job wall-clock budget in milliseconds; 0 = unlimited. A job that
  /// overruns stops cooperatively at its next iteration boundary and
  /// reports its best schedule with fleet_result::cancelled set — it never
  /// sinks the batch or holds its shard hostage. Combines with (never
  /// replaces) an external cancel token passed to run().
  double job_budget_ms = 0.0;
};

/// One design to schedule. The graph must outlive fleet::run.
struct fleet_job {
  std::string name;
  const ir::graph* graph = nullptr;
  std::optional<double> clock_period_ps;  ///< overrides isdc.base
};

struct fleet_result {
  std::string name;
  core::isdc_result result;  ///< valid only when error == nullptr
  double seconds = 0.0;      ///< this job's wall clock on its shard
  std::exception_ptr error;  ///< a failed job never sinks the batch
  /// Job cut short (job_budget_ms or the batch cancel token); the result
  /// still holds the best schedule found before the cut.
  bool cancelled = false;
  /// Process peak RSS (KiB) sampled when this job finished; -1 where
  /// unsupported. The kernel high-water mark is monotone, so this bounds
  /// the job's footprint from above — with concurrent shards it includes
  /// whatever neighbours allocated, so budget sweeps that need a tight
  /// per-job bound run shards=1 (see BENCH_fleet.json's per-job block).
  std::int64_t peak_rss_kb = -1;
};

struct fleet_report {
  std::vector<fleet_result> results;  ///< one per job, in job order
  double wall_seconds = 0.0;
  double designs_per_second = 0.0;
  /// Cache activity during this batch (counters after minus before).
  evaluation_cache::counters cache_delta;
  std::size_t unique_subgraphs = 0;  ///< distinct fingerprints memoized
};

class fleet {
public:
  explicit fleet(fleet_options options);
  /// Saves the persisted cache (when cache_path is set).
  ~fleet();

  fleet(const fleet&) = delete;
  fleet& operator=(const fleet&) = delete;

  /// Schedules every job, `shards` at a time, through the shared engine.
  /// `tool` is the one downstream backend for the whole batch and must be
  /// thread-safe. Callable repeatedly; the cache keeps warming. `cancel`,
  /// when non-null and valid, cancels every still-running job
  /// cooperatively; each job also gets its own job_budget_ms deadline as a
  /// child token.
  fleet_report run(const std::vector<fleet_job>& jobs,
                   const core::downstream_tool& tool,
                   const cancellation_token* cancel = nullptr);

  evaluation_cache& cache() { return cache_; }
  synth::delay_model& model() { return model_; }
  engine& shared_engine() { return engine_; }

  /// Saves the cache to cache_path now. False when no path is configured
  /// or the write failed.
  bool flush_cache() const;

private:
  fleet_options options_;
  evaluation_cache cache_;
  synth::delay_model model_;
  thread_pool io_pool_;
  thread_pool shard_pool_;
  /// ONE in-design compute pool shared by every shard (built only when
  /// isdc.compute_threads > 1; 0 routes to the process default pool
  /// instead). Shards and their in-design parallel work co-schedule on
  /// this single pool — shard threads participate in their own
  /// parallel_for calls while helpers are busy — so fleet width times
  /// compute width never oversubscribes the machine.
  std::optional<thread_pool> compute_pool_;
  thread_pool* compute_ = nullptr;  ///< resolved pool handed to run()
  engine engine_;
};

}  // namespace isdc::engine

#endif  // ISDC_ENGINE_FLEET_H_
