// The memory-budgeted partitioned path of engine::run: split the design
// into weakly-connected components (extract/partition.h), stream them one
// at a time through ordinary runs — so at any moment only one component's
// dense delay matrices are live — and merge the per-component schedules.
// Because parallel-stitched parts extract back out structurally identical
// (same fingerprint) and the engine is deterministic, the merged schedule
// equals each part scheduled solo, for every sufficient budget: the budget
// gates feasibility, never the search.
#include <algorithm>
#include <utility>

#include "engine/engine.h"
#include "extract/partition.h"
#include "support/check.h"
#include "support/mem.h"

namespace isdc::engine {

namespace {

/// Rough high-water estimate of one run's footprint: the two dense float
/// matrices (current + naive) dominate past a few thousand nodes; the
/// linear term covers the graph, adjacency, users and scheduler state.
double estimated_run_footprint_mb(std::size_t n) {
  const double quadratic = 2.0 * sizeof(float) * static_cast<double>(n) * n;
  const double linear = 512.0 * static_cast<double>(n);
  return (quadratic + linear) / (1024.0 * 1024.0);
}

}  // namespace

core::isdc_result engine::run_partitioned(const ir::graph& g,
                                          const core::downstream_tool& tool,
                                          const core::isdc_options& options,
                                          const synth::delay_model* model,
                                          thread_pool* shared_pool,
                                          thread_pool* compute_pool,
                                          const cancellation_token* cancel) {
  const std::vector<extract::design_component> components =
      extract::weakly_connected_components(g);

  // Sub-runs carry no budget of their own: the memory budget is enforced
  // here per component, and the wall budget is run-wide via the shared
  // deadline token below, not per component.
  core::isdc_options sub_options = options;
  sub_options.memory_budget_mb = 0.0;
  sub_options.wall_budget_ms = 0.0;
  cancellation_token run_cancel;
  if (cancel != nullptr && cancel->valid()) {
    run_cancel = cancel->child();
  } else {
    run_cancel = cancellation_token::make();
  }
  run_cancel.set_deadline_after(options.wall_budget_ms);

  for (const extract::design_component& comp : components) {
    const double need = estimated_run_footprint_mb(comp.members.size());
    ISDC_CHECK(need <= options.memory_budget_mb,
               "design '" << g.name() << "': component of "
                          << comp.members.size() << " nodes needs ~"
                          << static_cast<long long>(need + 1.0)
                          << " MiB, over the " << options.memory_budget_mb
                          << " MiB memory budget; raise memory_budget_mb or "
                             "split the component");
  }

  if (components.size() == 1) {
    // Nothing to stream: one component, already proven to fit. Run the
    // ordinary path (budget cleared above stops the recursion).
    core::isdc_result result = run(g, tool, sub_options, model, shared_pool,
                                   compute_pool, &run_cancel);
    result.peak_rss_kb = isdc::peak_rss_kb();
    return result;
  }

  core::isdc_result merged;
  merged.partitioned = true;
  merged.initial.cycle.assign(g.num_nodes(), 0);
  merged.final_schedule.cycle.assign(g.num_nodes(), 0);
  for (const extract::design_component& comp : components) {
    // The extraction (and the component run's matrices) live only for this
    // loop body: that is the streaming that keeps the footprint bounded.
    const ir::extraction extracted = extract::extract_component(g, comp);
    core::isdc_result part = run(extracted.g, tool, sub_options, model,
                                 shared_pool, compute_pool, &run_cancel);
    for (const auto& [original, sub] : extracted.to_sub) {
      merged.initial.cycle[original] = part.initial.cycle[sub];
      merged.final_schedule.cycle[original] =
          part.final_schedule.cycle[sub];
    }
    merged.iterations = std::max(merged.iterations, part.iterations);
    merged.cancelled = merged.cancelled || part.cancelled;
    merged.history.insert(merged.history.end(),
                          std::make_move_iterator(part.history.begin()),
                          std::make_move_iterator(part.history.end()));
  }
  merged.peak_rss_kb = isdc::peak_rss_kb();
  return merged;
}

}  // namespace isdc::engine
