#include "engine/fleet.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "support/check.h"
#include "support/failpoint.h"
#include "support/mem.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace isdc::engine {

namespace {

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point start) {
  return std::chrono::duration<double>(clock_type::now() - start).count();
}

std::size_t shared_pool_width(const fleet_options& options) {
  if (options.pool_width > 0) {
    return static_cast<std::size_t>(options.pool_width);
  }
  const int width = std::max(1, options.shards) *
                    std::max(1, evaluation_pool_width(options.isdc));
  return static_cast<std::size_t>(std::clamp(width, 1, 256));
}

}  // namespace

fleet::fleet(fleet_options options)
    : options_(std::move(options)),
      model_(options_.isdc.synth),
      io_pool_(shared_pool_width(options_)),
      shard_pool_(static_cast<std::size_t>(std::max(1, options_.shards))) {
  ISDC_CHECK(options_.shards >= 1, "fleet needs at least one shard");
  ISDC_CHECK(options_.isdc.compute_threads >= 0);
  // One compute pool for the whole fleet: every shard's in-design parallel
  // work (kernels, extraction, fingerprints) shares it, instead of each
  // shard building compute_threads threads of its own.
  if (options_.isdc.compute_threads == 0) {
    compute_ = &default_pool();
  } else if (options_.isdc.compute_threads > 1) {
    compute_pool_.emplace(
        static_cast<std::size_t>(options_.isdc.compute_threads));
    compute_ = &*compute_pool_;
  }
  engine_.use_shared_cache(&cache_);
  if (!options_.cache_path.empty()) {
    // Loads into the shared cache now and saves when engine_ is
    // destroyed (before cache_, which is declared first). A missing or
    // stale file just means a cold start.
    engine_.attach_cache_file(options_.cache_path);
  }
}

fleet::~fleet() = default;

bool fleet::flush_cache() const { return engine_.flush_cache_file(); }

fleet_report fleet::run(const std::vector<fleet_job>& jobs,
                        const core::downstream_tool& tool,
                        const cancellation_token* cancel) {
  fleet_report report;
  report.results.resize(jobs.size());
  const evaluation_cache::counters before = cache_.stats();

  const telemetry::span run_span("fleet.run");
  const auto start = clock_type::now();
  // Dynamic sharding: shard threads (the caller included) pull the next
  // unstarted job from an atomic cursor, so a long design never serializes
  // the batch behind it.
  shard_pool_.parallel_for(jobs.size(), [&](std::size_t i) {
    const fleet_job& job = jobs[i];
    fleet_result& out = report.results[i];
    out.name = job.name;
    const telemetry::span job_span("fleet.job", job.name);
    telemetry::get_counter("fleet.jobs").add();
    const auto job_start = clock_type::now();
    try {
      ISDC_CHECK(job.graph != nullptr, "fleet job without a graph");
      if (failpoint::maybe_fail("engine.fleet.job") !=
          failpoint::kind::none) {
        throw std::runtime_error("fleet job '" + job.name +
                                 "': failpoint: injected job failure");
      }
      core::isdc_options opts = options_.isdc;
      if (job.clock_period_ps.has_value()) {
        opts.base.clock_period_ps = *job.clock_period_ps;
      }
      // Each job's token: a child of the batch token (so cancelling the
      // batch reaches it) with its own per-job deadline; siblings are
      // never touched by either.
      cancellation_token job_cancel;
      if (cancel != nullptr && cancel->valid()) {
        job_cancel = cancel->child();
      } else if (options_.job_budget_ms > 0.0) {
        job_cancel = cancellation_token::make();
      }
      job_cancel.set_deadline_after(options_.job_budget_ms);
      out.result =
          engine_.run(*job.graph, tool, opts, &model_, &io_pool_, compute_,
                      job_cancel.valid() ? &job_cancel : nullptr);
      out.cancelled = out.result.cancelled;
    } catch (...) {
      out.error = std::current_exception();
      telemetry::get_counter("fleet.job_errors").add();
    }
    if (out.cancelled) {
      telemetry::get_counter("fleet.jobs_cancelled").add();
    }
    out.seconds = seconds_since(job_start);
    telemetry::get_histogram("fleet.job.wall_us")
        .record(out.seconds * 1e6);
    out.peak_rss_kb = isdc::peak_rss_kb();
  });
  report.wall_seconds = seconds_since(start);
  report.designs_per_second =
      jobs.empty() ? 0.0
                   : static_cast<double>(jobs.size()) /
                         std::max(report.wall_seconds, 1e-12);

  const evaluation_cache::counters after = cache_.stats();
  report.cache_delta.hits = after.hits - before.hits;
  report.cache_delta.misses = after.misses - before.misses;
  report.cache_delta.coalesced = after.coalesced - before.coalesced;
  report.unique_subgraphs = cache_.size();
  return report;
}

}  // namespace isdc::engine
