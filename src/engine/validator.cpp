#include "engine/validator.h"

#include <sstream>

#include "ir/verify.h"
#include "sched/validate.h"

namespace isdc::engine {

void invariant_validator::on_run_begin(const ir::graph& g,
                                       const core::isdc_options& options) {
  clock_period_ps_ = options.base.clock_period_ps;
  design_ = g.name();
  last_iteration_ = -1;
  previous_.reset();
  if (options_.check_graph) {
    const std::string error = ir::verify(g);
    if (!error.empty()) {
      add("run begin", {error});
    }
  }
}

void invariant_validator::on_schedule(const ir::graph& g,
                                      const sched::schedule& s,
                                      const sched::delay_matrix& d,
                                      const core::iteration_record& rec) {
  ++schedules_checked_;
  std::ostringstream where;
  where << "iteration " << rec.iteration;
  if (rec.iteration <= last_iteration_) {
    add(where.str(), {"iteration did not advance (previous was " +
                      std::to_string(last_iteration_) + ")"});
  }
  last_iteration_ = rec.iteration;

  if (options_.check_schedule) {
    add(where.str(),
        sched::validate_schedule(g, s, d, clock_period_ps_,
                                 options_.epsilon_ps));
  }
  if (options_.check_matrix && !previous_.has_value()) {
    // Baseline consistency; later iterates are covered inductively by the
    // monotonicity check below.
    add(where.str(), sched::validate_matrix(g, d, options_.max_violations));
  }
  if (options_.check_monotonic) {
    if (previous_.has_value()) {
      add(where.str(),
          sched::validate_matrix_monotonic(*previous_, d,
                                           options_.epsilon_ps,
                                           options_.max_violations));
    }
    previous_ = d;
  } else if (!previous_.has_value()) {
    // Remember that the baseline has been seen so check_matrix stays a
    // baseline-only check even without monotonicity snapshots.
    previous_.emplace(0);
  }
}

void invariant_validator::on_run_end(const core::isdc_result& /*result*/) {
  previous_.reset();  // free the snapshot between runs
}

void invariant_validator::add(const std::string& where,
                              const std::vector<std::string>& found) {
  for (const std::string& v : found) {
    if (violations_.size() >= options_.max_violations) {
      return;
    }
    violations_.push_back(design_ + " @ " + where + ": " + v);
  }
}

std::string invariant_validator::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < violations_.size(); ++i) {
    if (i > 0) {
      os << '\n';
    }
    os << violations_[i];
  }
  return os.str();
}

void invariant_validator::reset() {
  violations_.clear();
  schedules_checked_ = 0;
  last_iteration_ = -1;
  previous_.reset();
}

}  // namespace isdc::engine
