// core::run_isdc, implemented on the staged engine. The declaration stays
// in core/isdc_scheduler.h so existing callers keep one include; the
// definition lives here because the driver sits one layer above core.
#include "core/isdc_scheduler.h"
#include "engine/engine.h"

namespace isdc::core {

isdc_result run_isdc(const ir::graph& g, const downstream_tool& tool,
                     const isdc_options& options,
                     const synth::delay_model* model) {
  engine::engine driver;
  return driver.run(g, tool, options, model);
}

}  // namespace isdc::core
