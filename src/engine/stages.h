// The six built-in stages of the ISDC pipeline (paper Fig. 2):
//   enumerate — candidate paths from the previous schedule;
//   rank      — score them (Eq. 3 or delay-driven) and sort;
//   expand    — grow the top candidates into path/cone/window subgraphs,
//               skipping ones already selected this run;
//   evaluate  — measure each subgraph with the downstream tool (cache
//               hits skip the tool): in parallel with a join in sync mode,
//               or as non-blocking single-flight dispatches to the I/O
//               pool in async mode;
//   update    — fold in measurements (all of this iteration's in sync
//               mode; whatever has arrived, from any iteration, in async
//               mode), then Alg. 1 delay-matrix update plus reformulation
//               (Alg. 2 or Floyd-Warshall);
//   resolve   — re-solve the SDC LP against the updated matrix.
#ifndef ISDC_ENGINE_STAGES_H_
#define ISDC_ENGINE_STAGES_H_

#include <cstddef>
#include <memory>

#include "engine/stage.h"

namespace isdc::engine {

std::unique_ptr<stage> make_enumerate_stage();
std::unique_ptr<stage> make_rank_stage();
std::unique_ptr<stage> make_expand_stage();
std::unique_ptr<stage> make_evaluate_stage();
std::unique_ptr<stage> make_update_stage();
std::unique_ptr<stage> make_resolve_stage();

/// Blocks until every in-flight evaluation has arrived and appends them
/// (in dispatch order) to it.evaluations; returns the number consumed.
/// The driver's final drain runs this, then the update and resolve stages
/// once more, so no measurement is ever lost when the run converges with
/// results still pending.
std::size_t drain_pending_evaluations(run_state& rs, iteration_state& it);

}  // namespace isdc::engine

#endif  // ISDC_ENGINE_STAGES_H_
