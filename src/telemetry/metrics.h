// The process-wide metrics surface: named counters, gauges and
// fixed-boundary / log-bucketed latency histograms behind one thread-safe
// registry, so every layer (engine stages, the evaluation cache, fleet
// shards, subprocess pools, failpoints) reports through a single naming
// scheme instead of ad-hoc per-struct atomics.
//
// Names are hierarchical dotted paths — "engine.stage.evaluate.wall_us",
// "cache.hit", "backend.subprocess.restarts" — with the first component
// acting as the subsystem. The full catalogue lives in README
// "Observability".
//
// Hot paths are cheap: counter::add and histogram::record are a handful of
// relaxed atomic operations with no locks, so instruments can live on
// production paths. Registry lookups take a mutex — call sites cache the
// returned reference (it is stable for the life of the process; entries
// are never erased, reset_values() only zeroes them).
//
// Metrics are pure observation: nothing in this header feeds back into
// scheduling decisions, so runs are bit-identical with metrics hot or
// cold (the fleet benches assert exactly that).
#ifndef ISDC_TELEMETRY_METRICS_H_
#define ISDC_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace isdc::telemetry {

/// Monotone event count. All operations are relaxed atomics: totals are
/// exact, cross-counter ordering is not promised (snapshots of a running
/// system are best-effort consistent, like any scrape).
class counter {
public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depth, RSS, fitted slope).
class gauge {
public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double v) { value_.fetch_add(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

private:
  std::atomic<double> value_{0.0};
};

/// Fixed-boundary histogram with exact count/sum/min/max and
/// bucket-interpolated quantiles. Boundaries are strictly increasing
/// *upper* bounds: bucket i counts values v with boundaries[i-1] < v <=
/// boundaries[i]; one implicit overflow bucket catches v > boundaries
/// .back(). Use exponential_boundaries for the latency-style log bucketing
/// (constant relative error per bucket across decades).
///
/// record() is lock-free: one bucket fetch_add plus relaxed count/sum
/// accumulation and min/max CAS loops. Quantiles are computed at snapshot
/// time only.
class histogram {
public:
  /// `boundaries` must be non-empty and strictly increasing.
  explicit histogram(std::vector<double> boundaries);

  /// `count` boundaries: first, first*factor, first*factor^2, ...
  /// (factor > 1). The default registry histogram uses
  /// exponential_boundaries(1.0, 2.0, 40): 1 us .. ~5.5e11 us in
  /// factor-of-two buckets, wide enough for any wall-clock metric.
  static std::vector<double> exponential_boundaries(double first,
                                                    double factor,
                                                    std::size_t count);

  void record(double value);

  struct snapshot_data {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  ///< exact observed min (0 when count == 0)
    double max = 0.0;  ///< exact observed max (0 when count == 0)
    std::vector<double> boundaries;
    /// boundaries.size() + 1 entries; the last is the overflow bucket.
    std::vector<std::uint64_t> buckets;

    double mean() const {
      return count > 0 ? sum / static_cast<double>(count) : 0.0;
    }

    /// Bucket-interpolated quantile, q in [0, 1]. The rule (stable, so
    /// golden tests can pin values): rank r = q * count; walk buckets
    /// until the cumulative count reaches r, then interpolate linearly
    /// between the bucket's lower and upper bound by the fraction of the
    /// bucket's population below r. The first bucket's lower bound is the
    /// observed min; the overflow bucket's upper bound is the observed
    /// max; the result is clamped to [min, max]. Returns 0 when empty.
    double quantile(double q) const;
    double p50() const { return quantile(0.50); }
    double p90() const { return quantile(0.90); }
    double p99() const { return quantile(0.99); }
  };

  snapshot_data snapshot() const;
  void reset();

  const std::vector<double>& boundaries() const { return boundaries_; }

private:
  std::vector<double> boundaries_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Thread-safe name -> metric map. Instruments are created on first use
/// and live for the registry's lifetime; returned references are stable,
/// so call sites look a metric up once (e.g. a function-local static) and
/// pay only the relaxed-atomic cost per event afterwards.
class registry {
public:
  /// The process-wide registry every built-in instrument reports to.
  static registry& global();

  counter& counter_named(std::string_view name);
  gauge& gauge_named(std::string_view name);
  /// Default boundaries: exponential_boundaries(1.0, 2.0, 40) — log
  /// buckets suited to microsecond-valued wall-clock metrics. Explicit
  /// boundaries apply only on first creation (later calls return the
  /// existing histogram unchanged).
  histogram& histogram_named(std::string_view name,
                             std::span<const double> boundaries = {});

  /// Point-in-time copy of every registered metric, each list sorted by
  /// name. Best-effort consistent while instruments are hot (like any
  /// scrape of a live system).
  struct snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, histogram::snapshot_data>> histograms;

    /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,
    /// min,max,mean,p50,p90,p99,boundaries:[...],buckets:[...]}}} —
    /// the schema tools/isdc_stats reads and telemetry/json.h can parse
    /// back.
    std::string to_json() const;
  };
  snapshot snap() const;

  /// Zeroes every value; registrations (and cached references) survive.
  void reset_values();

private:
  mutable std::mutex mu_;
  // Node-based maps: references handed out must never move.
  std::map<std::string, std::unique_ptr<counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<histogram>, std::less<>> histograms_;
};

/// Global-registry conveniences — the spellings instruments actually use.
inline counter& get_counter(std::string_view name) {
  return registry::global().counter_named(name);
}
inline gauge& get_gauge(std::string_view name) {
  return registry::global().gauge_named(name);
}
inline histogram& get_histogram(std::string_view name,
                                std::span<const double> boundaries = {}) {
  return registry::global().histogram_named(name, boundaries);
}

/// Snapshot of the global registry rendered as JSON.
std::string metrics_json();

/// Zeroes every metric in the global registry (delta measurements around
/// a run; bench artifacts reset before the instrumented arm).
void reset_metrics();

/// Pull-style mirrors that have no natural push site: copies every armed
/// failpoint's per-site calls/fires into "failpoint.<site>.calls"/".fires"
/// counters and samples process peak RSS into "process.peak_rss_kb". Call
/// before snapshotting (bench/common.h does, for every artifact).
void collect_process_metrics();

}  // namespace isdc::telemetry

#endif  // ISDC_TELEMETRY_METRICS_H_
