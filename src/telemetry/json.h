// A minimal JSON reader for the telemetry artifacts: just enough to parse
// back what this repo emits (metrics snapshots, chrome traces, bench
// artifacts) so tools/isdc_stats can pretty-print and diff them and the
// tests can round-trip the schemas. Full RFC 8259 value grammar (objects,
// arrays, strings with the common escapes, numbers, true/false/null);
// objects preserve no duplicate keys (last wins) and iterate sorted.
#ifndef ISDC_TELEMETRY_JSON_H_
#define ISDC_TELEMETRY_JSON_H_

#include <cstddef>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace isdc::telemetry::json {

struct value;

using array = std::vector<value>;
using object = std::map<std::string, value>;

struct value {
  std::variant<std::nullptr_t, bool, double, std::string, array, object>
      data = nullptr;

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(data); }
  bool is_bool() const { return std::holds_alternative<bool>(data); }
  bool is_number() const { return std::holds_alternative<double>(data); }
  bool is_string() const { return std::holds_alternative<std::string>(data); }
  bool is_array() const { return std::holds_alternative<array>(data); }
  bool is_object() const { return std::holds_alternative<object>(data); }

  /// Typed accessors; throw std::runtime_error on a kind mismatch so
  /// schema violations surface as descriptive errors, not UB.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const array& as_array() const;
  const object& as_object() const;

  /// Object member access; throws when not an object or the key is
  /// absent. `get_or` returns `fallback` instead of throwing on absence.
  const value& at(const std::string& key) const;
  double get_or(const std::string& key, double fallback) const;
  bool contains(const std::string& key) const;
};

/// Parses one JSON value (surrounding whitespace allowed, trailing
/// non-space input rejected). Throws std::runtime_error with a position-
/// annotated message on malformed input.
value parse(std::string_view text);

}  // namespace isdc::telemetry::json

#endif  // ISDC_TELEMETRY_JSON_H_
