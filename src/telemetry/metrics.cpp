#include "telemetry/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/check.h"
#include "support/failpoint.h"
#include "support/mem.h"

namespace isdc::telemetry {

histogram::histogram(std::vector<double> boundaries)
    : boundaries_(std::move(boundaries)) {
  ISDC_CHECK(!boundaries_.empty(), "histogram needs at least one boundary");
  ISDC_CHECK(std::is_sorted(boundaries_.begin(), boundaries_.end(),
                            std::less_equal<double>()),
             "histogram boundaries must be strictly increasing");
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      boundaries_.size() + 1);
}

std::vector<double> histogram::exponential_boundaries(double first,
                                                      double factor,
                                                      std::size_t count) {
  ISDC_CHECK(first > 0.0 && factor > 1.0 && count > 0,
             "exponential boundaries need first > 0, factor > 1, count > 0");
  std::vector<double> out;
  out.reserve(count);
  double b = first;
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(b);
    b *= factor;
  }
  return out;
}

void histogram::record(double value) {
  const auto it =
      std::lower_bound(boundaries_.begin(), boundaries_.end(), value);
  const std::size_t bucket =
      static_cast<std::size_t>(it - boundaries_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  double seen = min_.load(std::memory_order_relaxed);
  while (value < seen && !min_.compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen && !max_.compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
}

histogram::snapshot_data histogram::snapshot() const {
  snapshot_data s;
  s.boundaries = boundaries_;
  s.buckets.resize(boundaries_.size() + 1);
  for (std::size_t i = 0; i < s.buckets.size(); ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  const double mn = min_.load(std::memory_order_relaxed);
  const double mx = max_.load(std::memory_order_relaxed);
  s.min = std::isfinite(mn) ? mn : 0.0;
  s.max = std::isfinite(mx) ? mx : 0.0;
  return s;
}

void histogram::reset() {
  for (std::size_t i = 0; i < boundaries_.size() + 1; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

double histogram::snapshot_data::quantile(double q) const {
  if (count == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) {
      continue;
    }
    const double before = static_cast<double>(cumulative);
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) >= rank) {
      // Lower bound of the first bucket is the observed min; upper bound
      // of the overflow bucket is the observed max.
      const double lo = i == 0 ? min : std::max(min, boundaries[i - 1]);
      const double hi =
          i < boundaries.size() ? std::min(max, boundaries[i]) : max;
      const double fraction =
          std::clamp((rank - before) / static_cast<double>(buckets[i]),
                     0.0, 1.0);
      return std::clamp(lo + (hi - lo) * fraction, min, max);
    }
  }
  return max;
}

registry& registry::global() {
  // Leaked singleton: instruments may fire from detached threads during
  // process teardown, so the registry must never be destroyed.
  static registry* instance = new registry();
  return *instance;
}

counter& registry::counter_named(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) {
    return *it->second;
  }
  return *counters_.emplace(std::string(name), std::make_unique<counter>())
              .first->second;
}

gauge& registry::gauge_named(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) {
    return *it->second;
  }
  return *gauges_.emplace(std::string(name), std::make_unique<gauge>())
              .first->second;
}

histogram& registry::histogram_named(std::string_view name,
                                     std::span<const double> boundaries) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    return *it->second;
  }
  std::vector<double> bounds =
      boundaries.empty()
          ? histogram::exponential_boundaries(1.0, 2.0, 40)
          : std::vector<double>(boundaries.begin(), boundaries.end());
  return *histograms_
              .emplace(std::string(name),
                       std::make_unique<histogram>(std::move(bounds)))
              .first->second;
}

registry::snapshot registry::snap() const {
  snapshot s;
  std::lock_guard<std::mutex> lk(mu_);
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    s.counters.emplace_back(name, c->value());
  }
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    s.gauges.emplace_back(name, g->value());
  }
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    s.histograms.emplace_back(name, h->snapshot());
  }
  return s;  // std::map iterates sorted: lists come out name-ordered
}

void registry::reset_values() {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [name, c] : counters_) {
    c->reset();
  }
  for (const auto& [name, g] : gauges_) {
    g->reset();
  }
  for (const auto& [name, h] : histograms_) {
    h->reset();
  }
}

namespace {

void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string number_json(double v) {
  if (!std::isfinite(v)) {
    return "0";  // JSON has no inf/nan; snapshots normalize them away
  }
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace

std::string registry::snapshot::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\"";
    append_json_escaped(out, name);
    out += "\":" + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\"";
    append_json_escaped(out, name);
    out += "\":" + number_json(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\"";
    append_json_escaped(out, name);
    out += "\":{\"count\":" + std::to_string(h.count);
    out += ",\"sum\":" + number_json(h.sum);
    out += ",\"min\":" + number_json(h.min);
    out += ",\"max\":" + number_json(h.max);
    out += ",\"mean\":" + number_json(h.mean());
    out += ",\"p50\":" + number_json(h.p50());
    out += ",\"p90\":" + number_json(h.p90());
    out += ",\"p99\":" + number_json(h.p99());
    out += ",\"boundaries\":[";
    for (std::size_t i = 0; i < h.boundaries.size(); ++i) {
      if (i > 0) {
        out += ",";
      }
      out += number_json(h.boundaries[i]);
    }
    out += "],\"buckets\":[";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) {
        out += ",";
      }
      out += std::to_string(h.buckets[i]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string metrics_json() { return registry::global().snap().to_json(); }

void reset_metrics() { registry::global().reset_values(); }

void collect_process_metrics() {
  for (const failpoint::site_stats& site : failpoint::stats()) {
    // Counters are monotone and the failpoint stats are already totals:
    // overwrite via reset+add so repeated collection never double-counts.
    counter& calls = get_counter("failpoint." + site.site + ".calls");
    calls.reset();
    calls.add(site.calls);
    counter& fires = get_counter("failpoint." + site.site + ".fires");
    fires.reset();
    fires.add(site.fires);
  }
  get_gauge("process.peak_rss_kb")
      .set(static_cast<double>(isdc::peak_rss_kb()));
}

}  // namespace isdc::telemetry
