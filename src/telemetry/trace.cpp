#include "telemetry/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>

namespace isdc::telemetry {

namespace {

std::uint64_t steady_now_us() {
  // Relative to the first call, so timelines start near zero and the
  // uint64 microsecond math never worries about epoch magnitude.
  static const std::chrono::steady_clock::time_point origin =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - origin)
          .count());
}

std::atomic<trace_clock_fn> clock_fn{nullptr};
std::atomic<bool> active{false};

/// One thread's span storage. Owned jointly by the global buffer list and
/// the writing thread's thread_local handle, so neither a thread exiting
/// nor start_tracing() clearing the list can leave the other with a
/// dangling pointer.
struct thread_buffer {
  std::mutex mu;  ///< uncontended except while an export copies events
  std::vector<trace_event> ring;
  std::uint64_t written = 0;
  std::uint32_t tid = 0;
};

struct trace_state {
  std::atomic<std::uint64_t> generation{0};
  std::mutex mu;  ///< guards buffers/next_tid/capacity
  std::vector<std::shared_ptr<thread_buffer>> buffers;
  std::uint32_t next_tid = 1;
  std::size_t capacity = 1 << 16;
};

trace_state& state() {
  static trace_state* s = new trace_state();  // leaked: threads may write
  return *s;                                  // during process teardown
}

/// This thread's buffer for the current trace generation. The common case
/// (generation unchanged) is one relaxed atomic load; only a generation
/// change — a new start_tracing() — takes the global lock to register a
/// fresh buffer and claim the next dense tid.
thread_buffer& local_buffer() {
  thread_local std::shared_ptr<thread_buffer> buf;
  thread_local std::uint64_t buf_generation = ~0ULL;
  trace_state& st = state();
  if (buf == nullptr ||
      buf_generation != st.generation.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lk(st.mu);
    buf = std::make_shared<thread_buffer>();
    buf->ring.resize(st.capacity);
    buf->tid = st.next_tid++;
    buf_generation = st.generation.load(std::memory_order_relaxed);
    st.buffers.push_back(buf);
  }
  return *buf;
}

void copy_truncated(char* dst, std::size_t dst_size, std::string_view src) {
  const std::size_t n = std::min(dst_size - 1, src.size());
  if (n > 0) {  // a default string_view has a null data() pointer
    std::memcpy(dst, src.data(), n);
  }
  dst[n] = '\0';
}

void append_json_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

}  // namespace

void set_trace_clock(trace_clock_fn fn) {
  clock_fn.store(fn, std::memory_order_relaxed);
}

std::uint64_t trace_now_us() {
  const trace_clock_fn fn = clock_fn.load(std::memory_order_relaxed);
  return fn != nullptr ? fn() : steady_now_us();
}

bool tracing_active() { return active.load(std::memory_order_relaxed); }

void start_tracing(std::size_t events_per_thread) {
  trace_state& st = state();
  {
    std::lock_guard<std::mutex> lk(st.mu);
    st.buffers.clear();  // threads re-register via the generation check
    st.next_tid = 1;
    st.capacity = std::max<std::size_t>(1, events_per_thread);
    st.generation.fetch_add(1, std::memory_order_release);
  }
  active.store(true, std::memory_order_relaxed);
}

void stop_tracing() { active.store(false, std::memory_order_relaxed); }

span::span(std::string_view name, std::string_view detail) {
  if (!active.load(std::memory_order_relaxed)) {
    return;  // the ~1 ns disabled path: one relaxed load, nothing else
  }
  active_ = true;
  copy_truncated(name_, sizeof(name_), name);
  copy_truncated(detail_, sizeof(detail_), detail);
  start_us_ = trace_now_us();
}

span::~span() {
  if (!active_) {
    return;
  }
  const std::uint64_t end_us = trace_now_us();
  thread_buffer& buf = local_buffer();
  std::lock_guard<std::mutex> lk(buf.mu);
  trace_event& slot = buf.ring[buf.written % buf.ring.size()];
  ++buf.written;
  std::memcpy(slot.name, name_, sizeof(name_));
  std::memcpy(slot.detail, detail_, sizeof(detail_));
  slot.ts_us = start_us_;
  slot.dur_us = end_us >= start_us_ ? end_us - start_us_ : 0;
  slot.tid = buf.tid;
}

std::vector<trace_event> collected_events() {
  trace_state& st = state();
  std::vector<std::shared_ptr<thread_buffer>> buffers;
  {
    std::lock_guard<std::mutex> lk(st.mu);
    buffers = st.buffers;
  }
  std::vector<trace_event> events;
  for (const std::shared_ptr<thread_buffer>& buf : buffers) {
    std::lock_guard<std::mutex> lk(buf->mu);
    const std::size_t kept =
        static_cast<std::size_t>(std::min<std::uint64_t>(
            buf->written, static_cast<std::uint64_t>(buf->ring.size())));
    // Oldest kept event first: when the ring wrapped, that is the slot
    // the next write would overwrite.
    const std::size_t start = buf->written > buf->ring.size()
                                  ? buf->written % buf->ring.size()
                                  : 0;
    for (std::size_t i = 0; i < kept; ++i) {
      events.push_back(buf->ring[(start + i) % buf->ring.size()]);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const trace_event& a, const trace_event& b) {
              if (a.ts_us != b.ts_us) {
                return a.ts_us < b.ts_us;
              }
              if (a.tid != b.tid) {
                return a.tid < b.tid;
              }
              return a.dur_us > b.dur_us;  // parents before children
            });
  return events;
}

std::uint64_t dropped_events() {
  trace_state& st = state();
  std::vector<std::shared_ptr<thread_buffer>> buffers;
  {
    std::lock_guard<std::mutex> lk(st.mu);
    buffers = st.buffers;
  }
  std::uint64_t dropped = 0;
  for (const std::shared_ptr<thread_buffer>& buf : buffers) {
    std::lock_guard<std::mutex> lk(buf->mu);
    if (buf->written > buf->ring.size()) {
      dropped += buf->written - buf->ring.size();
    }
  }
  return dropped;
}

void write_chrome_trace(std::ostream& out) {
  const std::vector<trace_event> events = collected_events();
  std::string json = "{\"traceEvents\":[";
  bool first = true;
  for (const trace_event& e : events) {
    if (!first) {
      json += ",";
    }
    first = false;
    json += "{\"name\":\"";
    append_json_escaped(json, e.name);
    // Category = the subsystem: the name's first dotted component.
    const char* dot = std::strchr(e.name, '.');
    const std::size_t cat_len =
        dot != nullptr ? static_cast<std::size_t>(dot - e.name)
                       : std::strlen(e.name);
    json += "\",\"cat\":\"";
    append_json_escaped(json,
                        std::string(e.name, cat_len).c_str());
    json += "\",\"ph\":\"X\",\"ts\":" + std::to_string(e.ts_us);
    json += ",\"dur\":" + std::to_string(e.dur_us);
    json += ",\"pid\":1,\"tid\":" + std::to_string(e.tid);
    if (e.detail[0] != '\0') {
      json += ",\"args\":{\"detail\":\"";
      append_json_escaped(json, e.detail);
      json += "\"}";
    }
    json += "}";
  }
  json += "],\"displayTimeUnit\":\"ms\"}";
  out << json << "\n";
}

bool write_chrome_trace(const std::string& path) {
  std::ofstream out(path);
  write_chrome_trace(out);
  out.flush();
  if (!out) {
    std::cerr << "failed to write chrome trace: " << path << "\n";
    return false;
  }
  return true;
}

}  // namespace isdc::telemetry
