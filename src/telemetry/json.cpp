#include "telemetry/json.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace isdc::telemetry::json {

namespace {

class parser {
public:
  explicit parser(std::string_view text) : text_(text) {}

  value run() {
    skip_ws();
    value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after JSON value");
    }
    return v;
  }

private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const {
    if (eof()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }
  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void skip_ws() {
    while (!eof()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  void expect_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) {
      fail("invalid literal (expected " + std::string(lit) + ")");
    }
    pos_ += lit.size();
  }

  value parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return value{parse_string()};
      case 't': expect_literal("true"); return value{true};
      case 'f': expect_literal("false"); return value{false};
      case 'n': expect_literal("null"); return value{nullptr};
      default: return parse_number();
    }
  }

  value parse_object() {
    expect('{');
    object out;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return value{std::move(out)};
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      out[std::move(key)] = parse_value();
      skip_ws();
      const char c = take();
      if (c == '}') {
        break;
      }
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
    return value{std::move(out)};
  }

  value parse_array() {
    expect('[');
    array out;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return value{std::move(out)};
    }
    while (true) {
      skip_ws();
      out.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') {
        break;
      }
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
    return value{std::move(out)};
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') {
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parse_unicode_escape(); break;
        default: fail("invalid escape sequence");
      }
    }
  }

  std::string parse_unicode_escape() {
    if (pos_ + 4 > text_.size()) {
      fail("truncated \\u escape");
    }
    unsigned cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      cp <<= 4;
      if (c >= '0' && c <= '9') {
        cp |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        cp |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        cp |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid hex digit in \\u escape");
      }
    }
    // Surrogate pairs: our emitters never produce them (only control
    // characters get \u escapes) but accept them for robustness.
    if (cp >= 0xD800 && cp <= 0xDBFF && pos_ + 6 <= text_.size() &&
        text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
      pos_ += 2;
      unsigned lo = 0;
      for (int i = 0; i < 4; ++i) {
        const char c = take();
        lo <<= 4;
        if (c >= '0' && c <= '9') {
          lo |= static_cast<unsigned>(c - '0');
        } else if (c >= 'a' && c <= 'f') {
          lo |= static_cast<unsigned>(c - 'a' + 10);
        } else if (c >= 'A' && c <= 'F') {
          lo |= static_cast<unsigned>(c - 'A' + 10);
        } else {
          fail("invalid hex digit in \\u escape");
        }
      }
      if (lo >= 0xDC00 && lo <= 0xDFFF) {
        cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
      } else {
        fail("unpaired surrogate in \\u escape");
      }
    }
    // UTF-8 encode.
    std::string out;
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
    return out;
  }

  value parse_number() {
    const std::size_t start = pos_;
    if (!eof() && text_[pos_] == '-') {
      ++pos_;
    }
    if (eof() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      pos_ = start;
      fail("invalid number");
    }
    while (!eof() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (!eof() && text_[pos_] == '.') {
      ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("digit required after decimal point");
      }
      while (!eof() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (!eof() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (!eof() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (eof() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("digit required in exponent");
      }
      while (!eof() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    double parsed = 0.0;
    const std::string_view token = text_.substr(start, pos_ - start);
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), parsed);
    if (ec != std::errc() || ptr != token.data() + token.size()) {
      fail("unparseable number");
    }
    return value{parsed};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

[[noreturn]] void kind_error(const char* wanted, const value& v) {
  static const char* const kinds[] = {"null",   "bool",  "number",
                                      "string", "array", "object"};
  throw std::runtime_error(std::string("json: expected ") + wanted +
                           ", got " + kinds[v.data.index()]);
}

}  // namespace

bool value::as_bool() const {
  if (!is_bool()) {
    kind_error("bool", *this);
  }
  return std::get<bool>(data);
}

double value::as_number() const {
  if (!is_number()) {
    kind_error("number", *this);
  }
  return std::get<double>(data);
}

const std::string& value::as_string() const {
  if (!is_string()) {
    kind_error("string", *this);
  }
  return std::get<std::string>(data);
}

const array& value::as_array() const {
  if (!is_array()) {
    kind_error("array", *this);
  }
  return std::get<array>(data);
}

const object& value::as_object() const {
  if (!is_object()) {
    kind_error("object", *this);
  }
  return std::get<object>(data);
}

const value& value::at(const std::string& key) const {
  const object& obj = as_object();
  const auto it = obj.find(key);
  if (it == obj.end()) {
    throw std::runtime_error("json: missing key \"" + key + "\"");
  }
  return it->second;
}

double value::get_or(const std::string& key, double fallback) const {
  const object& obj = as_object();
  const auto it = obj.find(key);
  return it != obj.end() && it->second.is_number() ? it->second.as_number()
                                                   : fallback;
}

bool value::contains(const std::string& key) const {
  const object& obj = as_object();
  return obj.find(key) != obj.end();
}

value parse(std::string_view text) { return parser(text).run(); }

}  // namespace isdc::telemetry::json
