// Trace spans: RAII wall-clock intervals collected into per-thread ring
// buffers and exported as chrome-trace / Perfetto JSON ("--trace=FILE" on
// the benches), so one run yields a flame-style timeline of the six
// engine stages, the async dispatch pool and every fleet shard.
//
//   {
//     telemetry::span sp("engine.stage.evaluate");
//     ... the stage ...
//   }  // span end: one complete ("ph":"X") event lands in this thread's
//      // ring buffer
//
// Collection is off by default: a span constructed while tracing is
// inactive is one relaxed atomic load and nothing else (~1 ns — guarded
// by BM_span_disabled in bench_micro_kernels), so spans live permanently
// on production paths. start_tracing() arms collection and clears any
// previous events; stop_tracing() disarms; write_chrome_trace() renders
// whatever was collected.
//
// The clock is injectable (set_trace_clock), so tests and replay get
// bit-deterministic timelines; the default is steady_clock microseconds
// since the first use. Ring buffers overwrite oldest events when full
// (dropped_events() reports how many), so tracing a long run costs
// bounded memory.
//
// Thread model: spans write only to their own thread's buffer (a
// per-buffer mutex makes the export race-free; the fast path is an
// uncontended lock). Buffers register themselves on first use and
// survive thread exit until the next start_tracing().
#ifndef ISDC_TELEMETRY_TRACE_H_
#define ISDC_TELEMETRY_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace isdc::telemetry {

/// Microsecond timestamp source. Injected clocks must be monotone
/// non-decreasing; they are read concurrently from every traced thread.
using trace_clock_fn = std::uint64_t (*)();

/// Installs `fn` as the timestamp source (nullptr restores the default
/// steady_clock). Not meant to be swapped mid-trace.
void set_trace_clock(trace_clock_fn fn);

/// Current trace time in microseconds (the injected clock, or steady
/// clock relative to its first use).
std::uint64_t trace_now_us();

/// True while spans are being collected.
bool tracing_active();

/// Arms collection: clears previously collected events, resets thread-id
/// assignment, sizes each thread's ring buffer to `events_per_thread`.
void start_tracing(std::size_t events_per_thread = 1 << 16);

/// Disarms collection; collected events stay readable until the next
/// start_tracing().
void stop_tracing();

/// One finished span. `name` and `detail` are truncated copies (spans
/// don't allocate); `tid` is a small dense id assigned per thread in
/// first-event order after each start_tracing().
struct trace_event {
  char name[48] = {};
  char detail[24] = {};  ///< optional label ("" = none), e.g. a job name
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;
  std::uint32_t tid = 0;
};

/// RAII span: construction samples the clock and copies name/detail into
/// fixed-size internal buffers (truncating — no allocation, no lifetime
/// requirements on the arguments), destruction records one trace_event.
/// Inactive (tracing off at construction) spans cost one relaxed load.
class span {
public:
  explicit span(std::string_view name, std::string_view detail = {});
  ~span();
  span(const span&) = delete;
  span& operator=(const span&) = delete;

private:
  std::uint64_t start_us_ = 0;
  char name_[48];
  char detail_[24];
  bool active_ = false;
};

/// All collected events, merged across threads and sorted by (ts, tid,
/// dur descending — parents before their children at equal timestamps).
std::vector<trace_event> collected_events();

/// Events overwritten because some thread's ring filled.
std::uint64_t dropped_events();

/// Renders the collected events as chrome-trace JSON (the "traceEvents"
/// array-of-objects format; load in Perfetto / chrome://tracing). Each
/// span becomes a complete event: {"name","cat","ph":"X","ts","dur",
/// "pid","tid"} with the category derived from the name's first dotted
/// component and a {"args":{"detail":...}} block when a detail was set.
void write_chrome_trace(std::ostream& out);

/// write_chrome_trace to a file; false (with a complaint on stderr) when
/// the file cannot be written.
bool write_chrome_trace(const std::string& path);

}  // namespace isdc::telemetry

#endif  // ISDC_TELEMETRY_TRACE_H_
