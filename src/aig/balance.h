// AND-tree balancing (the delay-oriented restructuring pass every logic
// synthesizer runs; ABC's `balance`). Conjunction chains are collected into
// multi-input super-gates and rebuilt as Huffman trees over arrival levels,
// minimizing depth across the operation boundaries of the lowered HLS ops —
// one of the effects per-operation delay characterization cannot see.
#ifndef ISDC_AIG_BALANCE_H_
#define ISDC_AIG_BALANCE_H_

#include "aig/aig.h"

namespace isdc::aig {

/// Returns a functionally equivalent AIG with balanced conjunctions.
/// Never increases depth.
aig balance(const aig& g);

}  // namespace isdc::aig

#endif  // ISDC_AIG_BALANCE_H_
