#include "aig/refactor.h"

#include <algorithm>
#include <queue>
#include <vector>

#include "aig/cuts.h"
#include "support/check.h"

namespace isdc::aig {

namespace {

/// Huffman-combines literals with a binary op to minimize output level.
template <typename Combine>
literal combine_balanced(aig& g, std::vector<literal> terms, Combine&& op) {
  ISDC_CHECK(!terms.empty());
  using item = std::pair<int, literal>;
  std::priority_queue<item, std::vector<item>, std::greater<>> pq;
  for (literal t : terms) {
    pq.emplace(g.level(lit_node(t)), t);
  }
  while (pq.size() > 1) {
    const literal a = pq.top().second;
    pq.pop();
    const literal b = pq.top().second;
    pq.pop();
    const literal c = op(a, b);
    pq.emplace(g.level(lit_node(c)), c);
  }
  return pq.top().second;
}

}  // namespace

literal sop_to_aig(aig& g, std::span<const cube> cubes,
                   std::span<const literal> leaf_literals) {
  if (cubes.empty()) {
    return lit_false;
  }
  std::vector<literal> terms;
  terms.reserve(cubes.size());
  for (const cube& c : cubes) {
    std::vector<literal> lits;
    for (std::size_t v = 0; v < leaf_literals.size(); ++v) {
      if ((c.pos_mask >> v) & 1) {
        lits.push_back(leaf_literals[v]);
      }
      if ((c.neg_mask >> v) & 1) {
        lits.push_back(lit_not(leaf_literals[v]));
      }
    }
    if (lits.empty()) {
      return lit_true;  // tautology cube
    }
    terms.push_back(combine_balanced(
        g, std::move(lits),
        [&g](literal a, literal b) { return g.create_and(a, b); }));
  }
  return combine_balanced(g, std::move(terms), [&g](literal a, literal b) {
    return g.create_or(a, b);
  });
}

namespace {

/// Greedy deep cut: start from the node's fanins and keep expanding the
/// deepest leaf while the leaf count stays within `k`.
cut greedy_cut(const aig& g, node_index n, int k) {
  std::vector<node_index> leaves{lit_node(g.fanin0(n)),
                                 lit_node(g.fanin1(n))};
  std::sort(leaves.begin(), leaves.end());
  leaves.erase(std::unique(leaves.begin(), leaves.end()), leaves.end());
  for (;;) {
    // Deepest expandable leaf.
    int best = -1;
    for (std::size_t i = 0; i < leaves.size(); ++i) {
      if (!g.is_and(leaves[i])) {
        continue;
      }
      if (best < 0 ||
          g.level(leaves[i]) > g.level(leaves[static_cast<std::size_t>(best)])) {
        best = static_cast<int>(i);
      }
    }
    if (best < 0) {
      break;
    }
    const node_index expand = leaves[static_cast<std::size_t>(best)];
    std::vector<node_index> next = leaves;
    next.erase(next.begin() + best);
    next.push_back(lit_node(g.fanin0(expand)));
    next.push_back(lit_node(g.fanin1(expand)));
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    if (static_cast<int>(next.size()) > k) {
      break;
    }
    leaves = std::move(next);
  }
  cut c;
  c.size = static_cast<std::uint8_t>(leaves.size());
  std::copy(leaves.begin(), leaves.end(), c.leaves.begin());
  return c;
}

}  // namespace

aig refactor(const aig& g, const refactor_options& options) {
  ISDC_CHECK(options.cut_size >= 2 && options.cut_size <= 6);
  aig out;
  std::vector<literal> map(g.num_nodes(), aig::invalid_literal);
  map[0] = lit_false;
  for (node_index pi : g.pis()) {
    map[pi] = make_literal(out.add_pi());
  }

  const auto translate = [&map](literal l) {
    return map[lit_node(l)] ^ static_cast<literal>(lit_complemented(l));
  };

  for (node_index n = 0; n < g.num_nodes(); ++n) {
    if (!g.is_and(n)) {
      continue;
    }
    // Candidate A: structural copy (strashed into `out`).
    const literal copy =
        out.create_and(translate(g.fanin0(n)), translate(g.fanin1(n)));
    const int copy_level = out.level(lit_node(copy));

    // Candidate B: ISOP of a deep cut, rebuilt balanced.
    const cut c = greedy_cut(g, n, options.cut_size);
    if (c.size < 3) {
      map[n] = copy;
      continue;
    }
    const tt6 f = cut_function(g, n, c);
    const std::vector<cube> cubes = isop(f, c.size);
    if (static_cast<int>(cubes.size()) > options.max_cube_count) {
      map[n] = copy;
      continue;
    }
    std::vector<literal> leaf_lits(c.size);
    for (std::uint8_t i = 0; i < c.size; ++i) {
      leaf_lits[i] = map[c.leaves[i]];
      ISDC_CHECK(leaf_lits[i] != aig::invalid_literal,
                 "cut leaf not yet mapped");
    }
    const literal sop = sop_to_aig(out, cubes, leaf_lits);
    const int sop_level = out.level(lit_node(sop));

    const bool accept = options.zero_cost ? sop_level <= copy_level
                                          : sop_level < copy_level;
    map[n] = accept ? sop : copy;
  }

  for (literal po : g.pos()) {
    out.add_po(translate(po));
  }
  return out.cleanup();
}

}  // namespace isdc::aig
