#include "aig/cuts.h"

#include <algorithm>
#include <unordered_map>

#include "support/check.h"

namespace isdc::aig {

bool cut::contains(node_index n) const {
  for (std::uint8_t i = 0; i < size; ++i) {
    if (leaves[i] == n) {
      return true;
    }
  }
  return false;
}

bool cut::dominates(const cut& other) const {
  if (size > other.size) {
    return false;
  }
  for (std::uint8_t i = 0; i < size; ++i) {
    if (!other.contains(leaves[i])) {
      return false;
    }
  }
  return true;
}

bool cut::operator==(const cut& other) const {
  if (size != other.size) {
    return false;
  }
  return std::equal(leaves.begin(), leaves.begin() + size,
                    other.leaves.begin());
}

bool merge_cuts(const cut& a, const cut& b, int k, cut& out) {
  out.size = 0;
  std::uint8_t i = 0;
  std::uint8_t j = 0;
  while (i < a.size || j < b.size) {
    node_index next;
    if (j >= b.size || (i < a.size && a.leaves[i] <= b.leaves[j])) {
      next = a.leaves[i++];
      if (j < b.size && b.leaves[j] == next) {
        ++j;
      }
    } else {
      next = b.leaves[j++];
    }
    if (out.size >= k) {
      return false;
    }
    out.leaves[out.size++] = next;
  }
  return true;
}

cut_set enumerate_cuts(const aig& g, const cut_enumeration_options& options) {
  ISDC_CHECK(options.k >= 2 && options.k <= 6, "cut size must be in [2, 6]");
  cut_set cuts;
  cuts.offset_.reserve(g.num_nodes() + 1);
  cuts.pool_.reserve(g.num_nodes() * 2);

  const auto trivial = [](node_index n) {
    cut c;
    c.leaves[0] = n;
    c.size = 1;
    return c;
  };

  // One reused candidate buffer; the per-node result is appended to the
  // pool in a block once complete. Fanin cut lists live in the already
  // finalized prefix of the pool (ids are topological), and the pool is
  // only appended to after merging, so their spans stay valid.
  std::vector<cut> merged;
  for (node_index n = 0; n < g.num_nodes(); ++n) {
    if (!g.is_and(n)) {
      cuts.pool_.push_back(trivial(n));
      cuts.offset_.push_back(static_cast<std::uint32_t>(cuts.pool_.size()));
      continue;
    }
    const node_index a = lit_node(g.fanin0(n));
    const node_index b = lit_node(g.fanin1(n));
    merged.clear();
    for (const cut& ca : cuts.of(a)) {
      for (const cut& cb : cuts.of(b)) {
        cut c;
        if (!merge_cuts(ca, cb, options.k, c)) {
          continue;
        }
        // Drop dominated candidates.
        bool dominated = false;
        for (const cut& existing : merged) {
          if (existing.dominates(c)) {
            dominated = true;
            break;
          }
        }
        if (dominated) {
          continue;
        }
        std::erase_if(merged, [&c](const cut& e) { return c.dominates(e); });
        merged.push_back(c);
      }
    }
    // Keep the smallest cuts when over budget (cheap, effective priority).
    std::sort(merged.begin(), merged.end(),
              [](const cut& x, const cut& y) { return x.size < y.size; });
    if (static_cast<int>(merged.size()) > options.max_cuts) {
      merged.resize(static_cast<std::size_t>(options.max_cuts));
    }
    merged.push_back(trivial(n));
    cuts.pool_.insert(cuts.pool_.end(), merged.begin(), merged.end());
    cuts.offset_.push_back(static_cast<std::uint32_t>(cuts.pool_.size()));
  }
  return cuts;
}

tt6 cut_function(const aig& g, node_index root, const cut& c) {
  ISDC_CHECK(c.size >= 1 && c.size <= 6, "cut function needs 1..6 leaves");
  std::unordered_map<node_index, tt6> memo;
  for (std::uint8_t i = 0; i < c.size; ++i) {
    memo.emplace(c.leaves[i], tt_project(i));
  }
  memo.emplace(0, 0);  // constant false (unless it is itself a leaf)

  // Iterative post-order evaluation.
  std::vector<node_index> stack{root};
  while (!stack.empty()) {
    const node_index n = stack.back();
    if (memo.contains(n)) {
      stack.pop_back();
      continue;
    }
    ISDC_CHECK(g.is_and(n), "cut is not complete: reached node " << n);
    const node_index f0 = lit_node(g.fanin0(n));
    const node_index f1 = lit_node(g.fanin1(n));
    const bool ready0 = memo.contains(f0);
    const bool ready1 = memo.contains(f1);
    if (ready0 && ready1) {
      stack.pop_back();
      const tt6 t0 =
          lit_complemented(g.fanin0(n)) ? ~memo[f0] : memo[f0];
      const tt6 t1 =
          lit_complemented(g.fanin1(n)) ? ~memo[f1] : memo[f1];
      memo.emplace(n, t0 & t1);
    } else {
      if (!ready0) {
        stack.push_back(f0);
      }
      if (!ready1) {
        stack.push_back(f1);
      }
    }
  }
  return memo[root] & tt_mask(c.size);
}

}  // namespace isdc::aig
