#include "aig/truth_table.h"

#include <bit>

#include "support/check.h"

namespace isdc::aig {

namespace {

constexpr tt6 projections[6] = {
    0xaaaaaaaaaaaaaaaaull, 0xccccccccccccccccull, 0xf0f0f0f0f0f0f0f0ull,
    0xff00ff00ff00ff00ull, 0xffff0000ffff0000ull, 0xffffffff00000000ull,
};

}  // namespace

tt6 tt_mask(int num_vars) {
  ISDC_CHECK(num_vars >= 0 && num_vars <= 6);
  return num_vars == 6 ? ~0ull : ((1ull << (1u << num_vars)) - 1);
}

tt6 tt_project(int var) {
  ISDC_CHECK(var >= 0 && var < 6);
  return projections[var];
}

tt6 tt_cofactor1(tt6 f, int var) {
  const int shift = 1 << var;
  const tt6 hi = f & projections[var];
  return hi | (hi >> shift);
}

tt6 tt_cofactor0(tt6 f, int var) {
  const int shift = 1 << var;
  const tt6 lo = f & ~projections[var];
  return lo | (lo << shift);
}

bool tt_depends_on(tt6 f, int var, int num_vars) {
  const tt6 mask = tt_mask(num_vars);
  return ((tt_cofactor0(f, var) ^ tt_cofactor1(f, var)) & mask) != 0;
}

tt6 tt_permute(tt6 f, int num_vars, std::span<const int> perm) {
  ISDC_CHECK(static_cast<int>(perm.size()) >= num_vars);
  tt6 out = 0;
  const int size = 1 << num_vars;
  for (int m = 0; m < size; ++m) {
    // Minterm m of the result reads f at the permuted minterm.
    int src = 0;
    for (int i = 0; i < num_vars; ++i) {
      if ((m >> i) & 1) {
        src |= 1 << perm[i];
      }
    }
    if ((f >> src) & 1) {
      out |= 1ull << m;
    }
  }
  return out;
}

int cube::num_literals() const {
  return std::popcount(pos_mask) + std::popcount(neg_mask);
}

tt6 cube_function(const cube& c, int num_vars) {
  tt6 f = tt_mask(num_vars);
  for (int v = 0; v < num_vars; ++v) {
    if ((c.pos_mask >> v) & 1) {
      f &= tt_project(v);
    }
    if ((c.neg_mask >> v) & 1) {
      f &= ~tt_project(v);
    }
  }
  return f & tt_mask(num_vars);
}

namespace {

/// Returns the ISOP of any function g with lower <= g <= upper, along with
/// the cover's function. Classic Minato-Morreale recursion.
tt6 isop_rec(tt6 lower, tt6 upper, int num_vars, std::vector<cube>& cubes) {
  ISDC_CHECK((lower & ~upper) == 0, "ISOP bounds crossed");
  if (lower == 0) {
    return 0;
  }
  const tt6 mask = tt_mask(num_vars);
  if (upper == mask) {
    cubes.push_back(cube{});
    return mask;
  }
  // Split on the top variable in the support of either bound.
  int var = -1;
  for (int v = num_vars - 1; v >= 0; --v) {
    if (tt_depends_on(lower, v, num_vars) ||
        tt_depends_on(upper, v, num_vars)) {
      var = v;
      break;
    }
  }
  ISDC_CHECK(var >= 0, "constant bounds must hit the base cases");

  const tt6 l0 = tt_cofactor0(lower, var) & mask;
  const tt6 l1 = tt_cofactor1(lower, var) & mask;
  const tt6 u0 = tt_cofactor0(upper, var) & mask;
  const tt6 u1 = tt_cofactor1(upper, var) & mask;

  // Cubes that must contain the negative literal of `var`.
  const std::size_t begin0 = cubes.size();
  const tt6 g0 = isop_rec(l0 & ~u1, u0, num_vars, cubes);
  for (std::size_t i = begin0; i < cubes.size(); ++i) {
    cubes[i].neg_mask |= 1u << var;
  }
  // Cubes that must contain the positive literal.
  const std::size_t begin1 = cubes.size();
  const tt6 g1 = isop_rec(l1 & ~u0, u1, num_vars, cubes);
  for (std::size_t i = begin1; i < cubes.size(); ++i) {
    cubes[i].pos_mask |= 1u << var;
  }
  // Remainder, independent of `var`.
  const tt6 r0 = l0 & ~g0;
  const tt6 r1 = l1 & ~g1;
  const tt6 g2 = isop_rec(r0 | r1, u0 & u1, num_vars, cubes);

  const tt6 proj = tt_project(var) & mask;
  return ((g0 & ~proj) | (g1 & proj) | g2) & mask;
}

}  // namespace

std::vector<cube> isop(tt6 f, int num_vars) {
  f &= tt_mask(num_vars);
  std::vector<cube> cubes;
  const tt6 cover = isop_rec(f, f, num_vars, cubes);
  ISDC_CHECK(cover == f, "ISOP cover does not equal the function");
  return cubes;
}

tt6 sop_function(std::span<const cube> cubes, int num_vars) {
  tt6 f = 0;
  for (const cube& c : cubes) {
    f |= cube_function(c, num_vars);
  }
  return f & tt_mask(num_vars);
}

}  // namespace isdc::aig
