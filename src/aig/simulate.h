// 64-way parallel bit simulation of AIGs. The equivalence oracle for every
// optimization pass and for the gate-level functional tests.
#ifndef ISDC_AIG_SIMULATE_H_
#define ISDC_AIG_SIMULATE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "aig/aig.h"

namespace isdc::aig {

/// Simulates 64 input patterns at once. `pi_patterns` holds one 64-bit
/// pattern word per PI (in pis() order). Returns one word per node.
std::vector<std::uint64_t> simulate(const aig& g,
                                    std::span<const std::uint64_t>
                                        pi_patterns);

/// Pattern word of a literal given the node words.
inline std::uint64_t literal_value(literal l,
                                   std::span<const std::uint64_t> words) {
  const std::uint64_t w = words[lit_node(l)];
  return lit_complemented(l) ? ~w : w;
}

/// Pattern words of the primary outputs.
std::vector<std::uint64_t> simulate_outputs(const aig& g,
                                            std::span<const std::uint64_t>
                                                pi_patterns);

}  // namespace isdc::aig

#endif  // ISDC_AIG_SIMULATE_H_
