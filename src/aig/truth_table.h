// Truth tables over up to 6 variables (one 64-bit word) plus the
// Minato-Morreale irredundant sum-of-products (ISOP) used by the
// refactoring/rewriting passes and the technology mapper's cell matching.
#ifndef ISDC_AIG_TRUTH_TABLE_H_
#define ISDC_AIG_TRUTH_TABLE_H_

#include <cstdint>
#include <span>
#include <vector>

namespace isdc::aig {

/// Truth table over `num_vars` <= 6 variables, stored in the low 2^num_vars
/// bits of a 64-bit word.
using tt6 = std::uint64_t;

/// All-ones mask for `num_vars` variables.
tt6 tt_mask(int num_vars);

/// Projection of variable `var` (minterms where the variable is 1).
tt6 tt_project(int var);

/// Positive/negative cofactors with respect to `var`.
tt6 tt_cofactor0(tt6 f, int var);
tt6 tt_cofactor1(tt6 f, int var);

/// True if `f` depends on `var` (within `num_vars`).
bool tt_depends_on(tt6 f, int var, int num_vars);

/// Applies an input permutation: variable i of the result reads variable
/// perm[i] of `f`.
tt6 tt_permute(tt6 f, int num_vars, std::span<const int> perm);

/// One product term: conjunction of positive literals (bit i of pos_mask)
/// and negative literals (bit i of neg_mask).
struct cube {
  std::uint32_t pos_mask = 0;
  std::uint32_t neg_mask = 0;

  int num_literals() const;
  bool operator==(const cube&) const = default;
};

/// Evaluates a cube as a truth table.
tt6 cube_function(const cube& c, int num_vars);

/// Minato-Morreale ISOP of `f` over `num_vars` variables: an irredundant
/// SOP cover whose function equals f exactly.
std::vector<cube> isop(tt6 f, int num_vars);

/// OR of all cube functions (for checking covers).
tt6 sop_function(std::span<const cube> cubes, int num_vars);

}  // namespace isdc::aig

#endif  // ISDC_AIG_TRUTH_TABLE_H_
