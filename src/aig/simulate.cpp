#include "aig/simulate.h"

#include "support/check.h"

namespace isdc::aig {

std::vector<std::uint64_t> simulate(const aig& g,
                                    std::span<const std::uint64_t>
                                        pi_patterns) {
  ISDC_CHECK(pi_patterns.size() == g.num_pis(),
             "expected " << g.num_pis() << " PI patterns, got "
                         << pi_patterns.size());
  std::vector<std::uint64_t> words(g.num_nodes(), 0);
  std::size_t next_pi = 0;
  for (node_index n = 0; n < g.num_nodes(); ++n) {
    if (g.is_const0(n)) {
      words[n] = 0;
    } else if (g.is_pi(n)) {
      words[n] = pi_patterns[next_pi++];
    } else {
      words[n] = literal_value(g.fanin0(n), words) &
                 literal_value(g.fanin1(n), words);
    }
  }
  return words;
}

std::vector<std::uint64_t> simulate_outputs(
    const aig& g, std::span<const std::uint64_t> pi_patterns) {
  const std::vector<std::uint64_t> words = simulate(g, pi_patterns);
  std::vector<std::uint64_t> out;
  out.reserve(g.pos().size());
  for (literal po : g.pos()) {
    out.push_back(literal_value(po, words));
  }
  return out;
}

}  // namespace isdc::aig
