#include "aig/aig.h"

#include <algorithm>

#include "support/check.h"

namespace isdc::aig {

aig::aig() {
  // Node 0: constant false.
  fanins_.push_back({0, 0});
  levels_.push_back(0);
}

node_index aig::add_pi() {
  const node_index n = static_cast<node_index>(fanins_.size());
  fanins_.push_back({pi_sentinel, pi_sentinel});
  levels_.push_back(0);
  pis_.push_back(n);
  return n;
}

literal aig::create_and(literal a, literal b) {
  ISDC_CHECK(lit_node(a) < fanins_.size() && lit_node(b) < fanins_.size(),
             "AND fanin literal out of range");
  // Constant folding and trivial cases.
  if (a == lit_false || b == lit_false || a == lit_not(b)) {
    return lit_false;
  }
  if (a == lit_true) {
    return b;
  }
  if (b == lit_true || a == b) {
    return a;
  }
  // Canonical operand order for hashing.
  if (a > b) {
    std::swap(a, b);
  }
  const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | b;
  if (auto it = strash_.find(key); it != strash_.end()) {
    return make_literal(it->second);
  }
  const node_index n = static_cast<node_index>(fanins_.size());
  fanins_.push_back({a, b});
  levels_.push_back(1 + std::max(levels_[lit_node(a)], levels_[lit_node(b)]));
  strash_.emplace(key, n);
  ++num_ands_;
  return make_literal(n);
}

literal aig::create_or(literal a, literal b) {
  return lit_not(create_and(lit_not(a), lit_not(b)));
}

literal aig::create_xor(literal a, literal b) {
  // a ^ b = !( !(a & !b) & !(!a & b) )
  const literal t0 = create_and(a, lit_not(b));
  const literal t1 = create_and(lit_not(a), b);
  return create_or(t0, t1);
}

literal aig::create_xnor(literal a, literal b) {
  return lit_not(create_xor(a, b));
}

literal aig::create_mux(literal sel, literal on_true, literal on_false) {
  if (on_true == on_false) {
    return on_true;
  }
  const literal t = create_and(sel, on_true);
  const literal e = create_and(lit_not(sel), on_false);
  return create_or(t, e);
}

int aig::add_po(literal l) {
  ISDC_CHECK(lit_node(l) < fanins_.size(), "PO literal out of range");
  pos_.push_back(l);
  return static_cast<int>(pos_.size()) - 1;
}

int aig::depth() const {
  int d = 0;
  for (literal po : pos_) {
    d = std::max(d, levels_[lit_node(po)]);
  }
  return d;
}

std::vector<std::uint32_t> aig::fanout_counts() const {
  std::vector<std::uint32_t> refs(fanins_.size(), 0);
  for (node_index n = 0; n < fanins_.size(); ++n) {
    if (is_and(n)) {
      ++refs[lit_node(fanins_[n][0])];
      ++refs[lit_node(fanins_[n][1])];
    }
  }
  for (literal po : pos_) {
    ++refs[lit_node(po)];
  }
  return refs;
}

aig aig::cleanup(std::vector<literal>* old_to_new) const {
  aig out;
  std::vector<literal> map(fanins_.size(), invalid_literal);
  map[0] = lit_false;
  // PIs are preserved (and keep their order) even when dangling, so that
  // simulation patterns remain aligned across cleanup.
  for (node_index pi : pis_) {
    map[pi] = make_literal(out.add_pi());
  }
  // Iterative DFS from the POs.
  std::vector<node_index> stack;
  for (literal po : pos_) {
    stack.push_back(lit_node(po));
  }
  std::vector<node_index> order;
  std::vector<bool> visiting(fanins_.size(), false);
  while (!stack.empty()) {
    const node_index n = stack.back();
    if (map[n] != invalid_literal) {
      stack.pop_back();
      continue;
    }
    if (!visiting[n]) {
      visiting[n] = true;
      stack.push_back(lit_node(fanins_[n][0]));
      stack.push_back(lit_node(fanins_[n][1]));
    } else {
      stack.pop_back();
      const literal f0 = fanins_[n][0];
      const literal f1 = fanins_[n][1];
      const literal a =
          map[lit_node(f0)] ^ static_cast<literal>(lit_complemented(f0));
      const literal b =
          map[lit_node(f1)] ^ static_cast<literal>(lit_complemented(f1));
      map[n] = out.create_and(a, b);
    }
  }
  for (literal po : pos_) {
    out.add_po(map[lit_node(po)] ^
               static_cast<literal>(lit_complemented(po)));
  }
  if (old_to_new != nullptr) {
    *old_to_new = std::move(map);
  }
  return out;
}

}  // namespace isdc::aig
