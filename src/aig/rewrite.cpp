#include "aig/rewrite.h"

#include <vector>

#include "aig/cuts.h"
#include "aig/refactor.h"
#include "support/check.h"

namespace isdc::aig {

aig rewrite(const aig& g, const rewrite_options& options) {
  cut_enumeration_options cut_opts;
  cut_opts.k = 4;
  cut_opts.max_cuts = options.max_cuts_per_node;
  const cut_set cuts = enumerate_cuts(g, cut_opts);

  aig out;
  std::vector<literal> map(g.num_nodes(), aig::invalid_literal);
  map[0] = lit_false;
  for (node_index pi : g.pis()) {
    map[pi] = make_literal(out.add_pi());
  }
  const auto translate = [&map](literal l) {
    return map[lit_node(l)] ^ static_cast<literal>(lit_complemented(l));
  };

  for (node_index n = 0; n < g.num_nodes(); ++n) {
    if (!g.is_and(n)) {
      continue;
    }
    const literal copy =
        out.create_and(translate(g.fanin0(n)), translate(g.fanin1(n)));
    literal best = copy;
    int best_level = out.level(lit_node(copy));

    for (const cut& c : cuts[n]) {
      if (c.size < 2 || (c.size == 1 && c.leaves[0] == n)) {
        continue;
      }
      const tt6 f = cut_function(g, n, c);
      const tt6 mask = tt_mask(c.size);
      // Constant or single-variable functions collapse outright.
      if ((f & mask) == 0) {
        best = lit_false;
        best_level = 0;
        break;
      }
      if ((f & mask) == mask) {
        best = lit_true;
        best_level = 0;
        break;
      }
      bool collapsed = false;
      for (std::uint8_t v = 0; v < c.size; ++v) {
        const tt6 proj = tt_project(v) & mask;
        if ((f & mask) == proj || (f & mask) == (~proj & mask)) {
          const literal leaf = map[c.leaves[v]];
          best = (f & mask) == proj ? leaf : lit_not(leaf);
          best_level = out.level(lit_node(best));
          collapsed = true;
          break;
        }
      }
      if (collapsed) {
        break;
      }
      const std::vector<cube> cubes = isop(f, c.size);
      if (cubes.size() > 6) {
        continue;
      }
      std::vector<literal> leaf_lits(c.size);
      bool mapped = true;
      for (std::uint8_t i = 0; i < c.size; ++i) {
        leaf_lits[i] = map[c.leaves[i]];
        mapped = mapped && leaf_lits[i] != aig::invalid_literal;
      }
      if (!mapped) {
        continue;
      }
      const literal sop = sop_to_aig(out, cubes, leaf_lits);
      const int sop_level = out.level(lit_node(sop));
      int literal_count = 0;
      for (const cube& cb : cubes) {
        literal_count += cb.num_literals();
      }
      if (sop_level < best_level ||
          (sop_level == best_level && literal_count <= 3 && sop != best)) {
        best = sop;
        best_level = sop_level;
      }
    }
    map[n] = best;
  }

  for (literal po : g.pos()) {
    out.add_po(translate(po));
  }
  return out.cleanup();
}

}  // namespace isdc::aig
