// And-Inverter Graph (AIG) package.
//
// The AIG is the internal representation of the "downstream logic
// synthesizer" substrate (the role Yosys/ABC play in the paper). Nodes are
// 2-input ANDs; edges carry an optional complement bit encoded in the
// literal's LSB. Construction performs constant folding and structural
// hashing, and maintains levels incrementally (the graph is append-only).
#ifndef ISDC_AIG_AIG_H_
#define ISDC_AIG_AIG_H_

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace isdc::aig {

using node_index = std::uint32_t;

/// 2 * node + complement. Node 0 is constant false, so literal 0 is the
/// constant false and literal 1 constant true.
using literal = std::uint32_t;

inline constexpr literal lit_false = 0;
inline constexpr literal lit_true = 1;

inline literal make_literal(node_index n, bool complemented = false) {
  return (n << 1) | static_cast<literal>(complemented);
}
inline node_index lit_node(literal l) { return l >> 1; }
inline bool lit_complemented(literal l) { return (l & 1) != 0; }
inline literal lit_not(literal l) { return l ^ 1u; }

class aig {
public:
  aig();

  /// Appends a primary input and returns its node index.
  node_index add_pi();

  /// AND with constant folding and structural hashing.
  literal create_and(literal a, literal b);

  // Derived connectives (built from ANDs, as in any AIG package).
  literal create_or(literal a, literal b);
  literal create_xor(literal a, literal b);
  literal create_xnor(literal a, literal b);
  /// sel ? on_true : on_false.
  literal create_mux(literal sel, literal on_true, literal on_false);

  /// Registers a primary output; returns its index in pos().
  int add_po(literal l);

  std::size_t num_nodes() const { return fanins_.size(); }
  std::size_t num_ands() const { return num_ands_; }
  std::size_t num_pis() const { return pis_.size(); }

  bool is_const0(node_index n) const { return n == 0; }
  bool is_pi(node_index n) const { return fanins_[n][0] == pi_sentinel; }
  bool is_and(node_index n) const { return n != 0 && !is_pi(n); }

  literal fanin0(node_index n) const { return fanins_[n][0]; }
  literal fanin1(node_index n) const { return fanins_[n][1]; }

  const std::vector<node_index>& pis() const { return pis_; }
  const std::vector<literal>& pos() const { return pos_; }

  /// AND-depth of a node (PIs and the constant are level 0). Maintained
  /// incrementally; O(1).
  int level(node_index n) const { return levels_[n]; }
  /// Maximum level over the primary outputs.
  int depth() const;

  /// Number of references (AND fanins + PO uses) per node.
  std::vector<std::uint32_t> fanout_counts() const;

  /// Copy containing only the transitive fanin of the POs, re-hashed.
  /// When `old_to_new` is non-null it receives the literal translation for
  /// every old node's positive literal (invalid_literal when dropped).
  aig cleanup(std::vector<literal>* old_to_new = nullptr) const;

  static constexpr literal invalid_literal = static_cast<literal>(-1);

private:
  static constexpr literal pi_sentinel = static_cast<literal>(-2);

  std::vector<std::array<literal, 2>> fanins_;
  std::vector<int> levels_;
  std::vector<node_index> pis_;
  std::vector<literal> pos_;
  std::unordered_map<std::uint64_t, node_index> strash_;
  std::size_t num_ands_ = 0;
};

}  // namespace isdc::aig

#endif  // ISDC_AIG_AIG_H_
