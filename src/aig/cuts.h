// k-feasible cut enumeration and cut-function computation. Used by the
// technology mapper (k = 4 against the cell library) and by the
// refactoring passes (greedy deep cuts up to k = 6).
#ifndef ISDC_AIG_CUTS_H_
#define ISDC_AIG_CUTS_H_

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "aig/aig.h"
#include "aig/truth_table.h"

namespace isdc::aig {

/// A cut: a set of <= 6 leaf nodes, sorted ascending.
struct cut {
  std::array<node_index, 6> leaves{};
  std::uint8_t size = 0;

  bool contains(node_index n) const;
  /// True if this cut's leaves are a subset of `other`'s.
  bool dominates(const cut& other) const;
  bool operator==(const cut& other) const;
};

/// Merges two sorted cuts; returns false if the union exceeds `k` leaves.
bool merge_cuts(const cut& a, const cut& b, int k, cut& out);

struct cut_enumeration_options {
  int k = 4;              ///< max leaves per cut
  int max_cuts = 10;      ///< cuts kept per node (plus the trivial cut)
};

/// All enumerated cuts of one AIG, packed into a single arena: one
/// contiguous pool of cuts plus a per-node offset table, replacing the
/// per-node std::vector allocations the mapper's inner loops used to
/// chase. Indexing yields node n's cut list as a span.
class cut_set {
 public:
  std::span<const cut> of(node_index n) const {
    return {pool_.data() + offset_[n], offset_[n + 1] - offset_[n]};
  }
  std::span<const cut> operator[](node_index n) const { return of(n); }

  std::size_t num_nodes() const { return offset_.size() - 1; }
  std::size_t total_cuts() const { return pool_.size(); }

 private:
  friend cut_set enumerate_cuts(const aig&, const cut_enumeration_options&);

  std::vector<cut> pool_;
  std::vector<std::uint32_t> offset_{0};
};

/// Non-dominated cuts per node. The trivial cut {n} is always the last
/// entry of node n's list. PIs and the constant get only the trivial cut.
cut_set enumerate_cuts(const aig& g,
                       const cut_enumeration_options& options = {});

/// Truth table of `root` as a function of the cut leaves (in leaf order).
/// The cut must be complete: every path from below must enter through a
/// leaf.
tt6 cut_function(const aig& g, node_index root, const cut& c);

}  // namespace isdc::aig

#endif  // ISDC_AIG_CUTS_H_
