// Cut rewriting on 4-feasible cuts: local functions are re-derived from
// their truth tables (constant/single-variable collapse, ISOP rebuild) and
// replacements are accepted when they reduce depth, or at equal depth when
// they are very small. The 4-input granularity complements refactor's
// deeper 6-input cuts, mirroring the rewrite/refactor pairing of ABC.
#ifndef ISDC_AIG_REWRITE_H_
#define ISDC_AIG_REWRITE_H_

#include "aig/aig.h"

namespace isdc::aig {

struct rewrite_options {
  int max_cuts_per_node = 8;
};

/// Functionally equivalent, depth-oriented rewrite over 4-cuts.
aig rewrite(const aig& g, const rewrite_options& options = {});

}  // namespace isdc::aig

#endif  // ISDC_AIG_REWRITE_H_
