// Cut-based resynthesis (refactoring): for each node, a deep cut is
// computed, its function is re-expressed as a Minato-Morreale ISOP, and the
// SOP is rebuilt as balanced logic; the new structure replaces the old one
// when it improves depth. This models the Boolean restructuring
// (resubstitution/refactoring) of production synthesizers, and — together
// with balance — is a source of the cross-operation delay reductions the
// paper's feedback loop discovers.
#ifndef ISDC_AIG_REFACTOR_H_
#define ISDC_AIG_REFACTOR_H_

#include <span>

#include "aig/aig.h"
#include "aig/truth_table.h"

namespace isdc::aig {

struct refactor_options {
  int cut_size = 6;        ///< leaves of the resynthesis cut (<= 6)
  int max_cube_count = 16; ///< skip SOPs larger than this
  bool zero_cost = false;  ///< also accept equal-depth replacements
};

/// Builds an SOP over the given leaf literals into `g`, balancing both the
/// AND level of each cube and the OR level across cubes by arrival levels.
/// Returns the root literal.
literal sop_to_aig(aig& g, std::span<const cube> cubes,
                   std::span<const literal> leaf_literals);

/// Depth-oriented ISOP refactoring. Functionally equivalent output;
/// dangling rejected candidates are removed by a final cleanup.
aig refactor(const aig& g, const refactor_options& options = {});

}  // namespace isdc::aig

#endif  // ISDC_AIG_REFACTOR_H_
