#include "aig/balance.h"

#include <algorithm>
#include <queue>
#include <vector>

#include "support/check.h"

namespace isdc::aig {

namespace {

class balancer {
public:
  explicit balancer(const aig& in) : in_(in), refs_(in.fanout_counts()) {
    map_.assign(in.num_nodes(), aig::invalid_literal);
    map_[0] = lit_false;
    for (node_index pi : in.pis()) {
      map_[pi] = make_literal(out_.add_pi());
    }
  }

  aig run() {
    for (literal po : in_.pos()) {
      out_.add_po(translate(po));
    }
    return std::move(out_);
  }

private:
  literal translate(literal old) {
    const literal mapped = build(lit_node(old));
    return mapped ^ static_cast<literal>(lit_complemented(old));
  }

  /// New literal for the positive phase of old node `n`.
  literal build(node_index n) {
    if (map_[n] != aig::invalid_literal) {
      return map_[n];
    }
    ISDC_CHECK(in_.is_and(n));
    // Collect the maximal conjunction rooted at n: expand non-complemented
    // single-fanout AND fanins (expanding shared nodes would duplicate
    // logic in different tree shapes).
    std::vector<literal> terms;
    std::vector<literal> stack{make_literal(n)};
    while (!stack.empty()) {
      const literal l = stack.back();
      stack.pop_back();
      const node_index m = lit_node(l);
      const bool expandable = !lit_complemented(l) && in_.is_and(m) &&
                              (m == n || refs_[m] == 1);
      if (expandable) {
        stack.push_back(in_.fanin0(m));
        stack.push_back(in_.fanin1(m));
      } else {
        terms.push_back(translate(l));
      }
    }
    // Huffman tree over levels: repeatedly AND the two shallowest terms.
    using item = std::pair<int, literal>;
    std::priority_queue<item, std::vector<item>, std::greater<>> pq;
    for (literal t : terms) {
      pq.emplace(out_.level(lit_node(t)), t);
    }
    while (pq.size() > 1) {
      const literal a = pq.top().second;
      pq.pop();
      const literal b = pq.top().second;
      pq.pop();
      const literal c = out_.create_and(a, b);
      pq.emplace(out_.level(lit_node(c)), c);
    }
    map_[n] = pq.top().second;
    return map_[n];
  }

  const aig& in_;
  std::vector<std::uint32_t> refs_;
  aig out_;
  std::vector<literal> map_;
};

}  // namespace

aig balance(const aig& g) { return balancer(g).run(); }

}  // namespace isdc::aig
