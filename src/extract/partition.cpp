#include "extract/partition.h"

#include <algorithm>
#include <numeric>

#include "ir/adjacency.h"
#include "support/check.h"

namespace isdc::extract {

namespace {

/// Path-halving union-find over node ids.
struct union_find {
  std::vector<ir::node_id> parent;

  explicit union_find(std::size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  ir::node_id find(ir::node_id x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  void unite(ir::node_id a, ir::node_id b) {
    a = find(a);
    b = find(b);
    if (a != b) {
      parent[std::max(a, b)] = std::min(a, b);
    }
  }
};

}  // namespace

std::vector<design_component> weakly_connected_components(
    const ir::graph& g) {
  const std::size_t n = g.num_nodes();
  std::vector<design_component> components;
  if (n == 0) {
    return components;
  }

  union_find uf(n);
  for (ir::node_id v = 0; v < n; ++v) {
    if (g.at(v).op == ir::opcode::constant) {
      continue;
    }
    for (const ir::node_id p : g.at(v).operands) {
      if (g.at(p).op != ir::opcode::constant) {
        uf.unite(p, v);
      }
    }
  }

  // Group non-constant nodes by root; roots appear in ascending id order,
  // so components come out ordered by lowest member.
  std::vector<std::uint32_t> slot(n, static_cast<std::uint32_t>(-1));
  for (ir::node_id v = 0; v < n; ++v) {
    if (g.at(v).op == ir::opcode::constant) {
      continue;
    }
    const ir::node_id root = uf.find(v);
    if (slot[root] == static_cast<std::uint32_t>(-1)) {
      slot[root] = static_cast<std::uint32_t>(components.size());
      components.emplace_back();
    }
    components[slot[root]].members.push_back(v);
  }
  if (components.empty()) {
    // Constant-only graph: one component with everything.
    components.emplace_back();
    components.back().members.resize(n);
    std::iota(components.back().members.begin(),
              components.back().members.end(), 0);
  } else {
    // Clone each referenced constant into every component that reads it,
    // keeping member lists sorted (constants have low ids, so insert then
    // re-sort the prefix cheaply via std::sort on the merged list).
    std::vector<std::uint32_t> seen(n, static_cast<std::uint32_t>(-1));
    for (std::uint32_t c = 0; c < components.size(); ++c) {
      design_component& comp = components[c];
      const std::size_t member_count = comp.members.size();
      for (std::size_t i = 0; i < member_count; ++i) {
        for (const ir::node_id p : g.at(comp.members[i]).operands) {
          if (g.at(p).op == ir::opcode::constant && seen[p] != c) {
            seen[p] = c;
            comp.members.push_back(p);
          }
        }
      }
      std::sort(comp.members.begin(), comp.members.end());
    }
  }
  for (design_component& comp : components) {
    for (const ir::node_id v : comp.members) {
      if (g.is_output(v)) {
        comp.outputs.push_back(v);
      }
    }
  }
  return components;
}

ir::extraction extract_component(const ir::graph& g,
                                 const design_component& component) {
  ISDC_CHECK(!component.members.empty(), "cannot extract an empty component");
  std::vector<ir::node_id> roots = component.outputs;
  if (roots.empty()) {
    for (const ir::node_id v : component.members) {
      if (g.users(v).empty() && g.at(v).op != ir::opcode::constant) {
        roots.push_back(v);
      }
    }
  }
  ISDC_CHECK(!roots.empty(), "component has neither outputs nor sinks");
  return ir::extract_subgraph(g, component.members, roots);
}

}  // namespace isdc::extract
