// Window construction (paper Section III-B2): cones with identical or
// overlapping leaf sets are merged into multi-root windows, capturing the
// cross-cone optimizations (sharing, joint balancing) a logic synthesizer
// performs, while staying self-contained.
#ifndef ISDC_EXTRACT_WINDOW_H_
#define ISDC_EXTRACT_WINDOW_H_

#include <vector>

#include "extract/subgraph.h"

namespace isdc::extract {

/// Greedily merges same-stage cones whose leaf sets share at least one
/// value. Input order is preserved as priority (callers pass cones in
/// descending score order); each output window carries the max score of
/// its constituents.
std::vector<subgraph> merge_into_windows(const ir::graph& g,
                                         const sched::schedule& s,
                                         std::vector<subgraph> cones);

}  // namespace isdc::extract

#endif  // ISDC_EXTRACT_WINDOW_H_
