// Window construction (paper Section III-B2): cones with identical or
// overlapping leaf sets are merged into multi-root windows, capturing the
// cross-cone optimizations (sharing, joint balancing) a logic synthesizer
// performs, while staying self-contained.
#ifndef ISDC_EXTRACT_WINDOW_H_
#define ISDC_EXTRACT_WINDOW_H_

#include <vector>

#include "extract/subgraph.h"

namespace isdc::extract {

/// What one fold did: which window the cone landed in, and whether that
/// window is new. Exactly one window changes per fold, so callers can
/// maintain derived counts (e.g. how many windows are fresh) incrementally
/// instead of rescanning the whole set.
struct fold_result {
  std::size_t index = 0;  ///< windows[index] absorbed the cone
  bool appended = false;  ///< true if the cone became a new window
};

/// Folds one cone into `windows` in place: absorbed by the first same-stage
/// window whose leaf set overlaps the cone's (the window keeps the max
/// score), appended as a new window otherwise. Folding cones one at a time
/// through this is exactly `merge_into_windows` — the incremental form lets
/// callers grow the window set cone by cone without re-merging from
/// scratch.
fold_result merge_cone_into_windows(const ir::graph& g,
                                    const sched::schedule& s, subgraph cone,
                                    std::vector<subgraph>& windows);

/// Greedily merges same-stage cones whose leaf sets share at least one
/// value. Input order is preserved as priority (callers pass cones in
/// descending score order); each output window carries the max score of
/// its constituents.
std::vector<subgraph> merge_into_windows(const ir::graph& g,
                                         const sched::schedule& s,
                                         std::vector<subgraph> cones);

}  // namespace isdc::extract

#endif  // ISDC_EXTRACT_WINDOW_H_
