// Canonical structural fingerprint of an extracted subgraph: a hash over
// the cone's *shape* — opcodes, bitwidths, constant values, edge structure
// and a canonicalized input ordering — rather than over its design-local
// node ids. Two isomorphic cones extracted from different designs (or from
// two regions of the same design) produce the same fingerprint, so one
// downstream measurement answers for both; structurally different cones
// differ except with 64-bit hash-collision probability.
//
// This is the key the engine's evaluation cache uses (combined with the
// downstream-tool identity), replacing the old design-fingerprint ×
// member-set keying that made every design pay for its own measurements.
#ifndef ISDC_EXTRACT_CANONICAL_H_
#define ISDC_EXTRACT_CANONICAL_H_

#include <cstdint>
#include <vector>

#include "extract/subgraph.h"

namespace isdc::extract {

/// Reusable working memory for canonical_fingerprint. The engine calls
/// the fingerprint once per candidate subgraph per iteration; with a
/// scratch the per-call unordered_maps become node-indexed, epoch-stamped
/// arrays that are allocated once per design and never rehash. A
/// default-constructed scratch works for any graph; it grows to the
/// largest graph it has seen.
struct canonical_scratch {
  std::vector<std::uint64_t> shape;         ///< member shape hashes
  std::vector<std::uint64_t> canonical;     ///< canonical ids, all nodes
  std::vector<std::uint32_t> shape_epoch;   ///< stamp validating shape[v]
  std::vector<std::uint32_t> canon_epoch;   ///< stamp validating canonical[v]
  std::vector<ir::node_id> root_order;
  std::vector<ir::node_id> order;
  std::vector<ir::node_id> rest;
  std::vector<ir::node_id> stack;
  std::uint32_t epoch = 0;
};

/// Version of the canonical-fingerprint algorithm. Bumped whenever the
/// hash changes meaning, so persisted evaluation caches keyed by old
/// fingerprints are rejected instead of silently misread.
std::uint64_t canonical_fingerprint_version();

/// Canonical fingerprint of `sub` within `g`. Invariant under node
/// renumbering (the same circuit embedded in two designs at different ids
/// hashes equal) and under root reordering; sensitive to opcodes, widths,
/// constant/slice values, operand order, fan-out sharing (a reused
/// subexpression is distinguished from a duplicated one) and the root set.
/// `sub.members` must be finalized (sorted members, computed roots), which
/// every built-in expansion guarantees.
std::uint64_t canonical_fingerprint(const ir::graph& g, const subgraph& sub);

/// Same fingerprint, using caller-provided working memory. The no-scratch
/// overload forwards here with a thread-local scratch.
std::uint64_t canonical_fingerprint(const ir::graph& g, const subgraph& sub,
                                    canonical_scratch& scratch);

}  // namespace isdc::extract

#endif  // ISDC_EXTRACT_CANONICAL_H_
