// Canonical structural fingerprint of an extracted subgraph: a hash over
// the cone's *shape* — opcodes, bitwidths, constant values, edge structure
// and a canonicalized input ordering — rather than over its design-local
// node ids. Two isomorphic cones extracted from different designs (or from
// two regions of the same design) produce the same fingerprint, so one
// downstream measurement answers for both; structurally different cones
// differ except with 64-bit hash-collision probability.
//
// This is the key the engine's evaluation cache uses (combined with the
// downstream-tool identity), replacing the old design-fingerprint ×
// member-set keying that made every design pay for its own measurements.
#ifndef ISDC_EXTRACT_CANONICAL_H_
#define ISDC_EXTRACT_CANONICAL_H_

#include <cstdint>

#include "extract/subgraph.h"

namespace isdc::extract {

/// Version of the canonical-fingerprint algorithm. Bumped whenever the
/// hash changes meaning, so persisted evaluation caches keyed by old
/// fingerprints are rejected instead of silently misread.
std::uint64_t canonical_fingerprint_version();

/// Canonical fingerprint of `sub` within `g`. Invariant under node
/// renumbering (the same circuit embedded in two designs at different ids
/// hashes equal) and under root reordering; sensitive to opcodes, widths,
/// constant/slice values, operand order, fan-out sharing (a reused
/// subexpression is distinguished from a duplicated one) and the root set.
/// `sub.members` must be finalized (sorted members, computed roots), which
/// every built-in expansion guarantees.
std::uint64_t canonical_fingerprint(const ir::graph& g, const subgraph& sub);

}  // namespace isdc::extract

#endif  // ISDC_EXTRACT_CANONICAL_H_
