// Weakly-connected-component partitioning of a design, the unit the
// memory-budgeted scheduler streams: each component's dense delay matrix
// is a fraction of the whole design's n^2 footprint, so components are
// scheduled one at a time inside core::isdc_options::memory_budget_mb
// instead of materializing one 100k x 100k matrix.
//
// Constants are deliberately excluded from the connectivity relation — a
// shared constant would otherwise merge every part that references it into
// one giant component — and are instead cloned into each component that
// uses them (mirroring what ir::extract_subgraph does anyway), so a
// component extracted from a parallel-stitched design is structurally
// identical to the original part.
#ifndef ISDC_EXTRACT_PARTITION_H_
#define ISDC_EXTRACT_PARTITION_H_

#include <vector>

#include "ir/extract.h"
#include "ir/graph.h"

namespace isdc::extract {

/// One weakly-connected component: member node ids ascending (so relative
/// creation order — and therefore topological order — is preserved),
/// including every constant any member reads, and the member ids that are
/// primary outputs of the host graph.
struct design_component {
  std::vector<ir::node_id> members;
  std::vector<ir::node_id> outputs;
};

/// Partitions `g` into weakly-connected components over operand edges,
/// ignoring constants (see above; a constant referenced by k components
/// appears in all k member lists). Components are ordered by their lowest
/// member id. Constant-only graphs yield a single component holding all
/// nodes.
std::vector<design_component> weakly_connected_components(const ir::graph& g);

/// Extracts one component into a standalone graph via ir::extract_subgraph
/// with the component's outputs as roots; falls back to the component's
/// sinks when it contains no primary output (every graph must have at
/// least one output to pass ir::verify).
ir::extraction extract_component(const ir::graph& g,
                                 const design_component& component);

}  // namespace isdc::extract

#endif  // ISDC_EXTRACT_PARTITION_H_
