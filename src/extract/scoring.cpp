#include "extract/scoring.h"

#include <algorithm>
#include <utility>

#include "support/check.h"

namespace isdc::extract {

int num_register_consumers(const ir::graph& g, const sched::schedule& s,
                           ir::node_id vj) {
  int consumers = 0;
  for (ir::node_id u : g.users(vj)) {
    if (s.cycle[u] > s.cycle[vj]) {
      ++consumers;
    }
  }
  if (g.is_output(vj)) {
    ++consumers;  // the pipeline-end output register
  }
  return consumers;
}

double score_path(const ir::graph& g, const sched::schedule& s,
                  const path_candidate& path, double clock_period_ps,
                  extraction_strategy strategy) {
  ISDC_CHECK(clock_period_ps > 0.0);
  const double normalized_delay = path.delay_ps / clock_period_ps;
  if (strategy == extraction_strategy::delay_driven) {
    return normalized_delay;
  }
  // Eq. 3 with k = 1 result per node in this IR.
  const double bits = g.at(path.to).width;
  const double users = num_register_consumers(g, s, path.to);
  return (bits + normalized_delay) / (users + 1.0);
}

std::vector<scored_candidate> rank_candidates(
    const ir::graph& g, const sched::schedule& s, double clock_period_ps,
    extraction_strategy strategy, std::vector<path_candidate> candidates) {
  std::vector<scored_candidate> scored;
  scored.reserve(candidates.size());
  for (path_candidate& c : candidates) {
    scored.push_back({c, score_path(g, s, c, clock_period_ps, strategy)});
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const scored_candidate& a, const scored_candidate& b) {
                     return a.score > b.score;
                   });
  return scored;
}

}  // namespace isdc::extract
