#include "extract/scoring.h"

#include <algorithm>
#include <utility>

#include "support/check.h"
#include "support/thread_pool.h"

namespace isdc::extract {

int num_register_consumers(const ir::graph& g, const sched::schedule& s,
                           ir::node_id vj) {
  int consumers = 0;
  for (ir::node_id u : g.users(vj)) {
    if (s.cycle[u] > s.cycle[vj]) {
      ++consumers;
    }
  }
  if (g.is_output(vj)) {
    ++consumers;  // the pipeline-end output register
  }
  return consumers;
}

double score_path(const ir::graph& g, const sched::schedule& s,
                  const path_candidate& path, double clock_period_ps,
                  extraction_strategy strategy) {
  ISDC_CHECK(clock_period_ps > 0.0);
  const double normalized_delay = path.delay_ps / clock_period_ps;
  if (strategy == extraction_strategy::delay_driven) {
    return normalized_delay;
  }
  // Eq. 3 with k = 1 result per node in this IR.
  const double bits = g.at(path.to).width;
  const double users = num_register_consumers(g, s, path.to);
  return (bits + normalized_delay) / (users + 1.0);
}

namespace {

void sort_by_score(std::vector<scored_candidate>& scored) {
  std::stable_sort(scored.begin(), scored.end(),
                   [](const scored_candidate& a, const scored_candidate& b) {
                     return a.score > b.score;
                   });
}

}  // namespace

std::vector<scored_candidate> rank_candidates(
    const ir::graph& g, const sched::schedule& s, double clock_period_ps,
    extraction_strategy strategy, std::vector<path_candidate> candidates) {
  std::vector<scored_candidate> scored;
  scored.reserve(candidates.size());
  for (path_candidate& c : candidates) {
    scored.push_back({c, score_path(g, s, c, clock_period_ps, strategy)});
  }
  sort_by_score(scored);
  return scored;
}

std::vector<scored_candidate> rank_candidates(
    const ir::graph& g, const sched::schedule& s, double clock_period_ps,
    extraction_strategy strategy, std::vector<path_candidate> candidates,
    thread_pool* pool) {
  if (pool == nullptr || pool->size() <= 1 || candidates.empty()) {
    return rank_candidates(g, s, clock_period_ps, strategy,
                           std::move(candidates));
  }
  std::vector<scored_candidate> scored(candidates.size());
  constexpr std::size_t kChunk = 64;
  const std::size_t chunks = (candidates.size() + kChunk - 1) / kChunk;
  pool->parallel_for(chunks, [&](std::size_t c) {
    const std::size_t hi = std::min(candidates.size(), (c + 1) * kChunk);
    for (std::size_t i = c * kChunk; i < hi; ++i) {
      scored[i] = {candidates[i], score_path(g, s, candidates[i],
                                             clock_period_ps, strategy)};
    }
  });
  // stable_sort on the index-ordered array: ties keep candidate order,
  // exactly as the serial form.
  sort_by_score(scored);
  return scored;
}

}  // namespace isdc::extract
