// Expansion of candidate paths into subgraphs (paper Section III-B2):
//   path   — only the nodes on the critical path vi -> vj;
//   cone   — the full same-stage fan-in cone of vj (DFS until the clock-
//            cycle boundary or the primary inputs), single root;
// Windows (multi-root merges of overlapping cones) live in window.h.
#ifndef ISDC_EXTRACT_CONE_H_
#define ISDC_EXTRACT_CONE_H_

#include <cstdint>
#include <vector>

#include "extract/path_enum.h"
#include "extract/subgraph.h"

namespace isdc::extract {

enum class expansion_mode {
  path,    ///< ablation baseline
  cone,    ///< single-root expansion
  window,  ///< cone + overlapping-leaf merging (default)
};

/// Nodes on the critical path from `path.from` to `path.to` under `d`.
subgraph expand_to_path(const ir::graph& g, const sched::schedule& s,
                        const sched::delay_matrix& d,
                        const path_candidate& path);

/// Same-stage fan-in cone of `path.to`.
subgraph expand_to_cone(const ir::graph& g, const sched::schedule& s,
                        const path_candidate& path);

/// Reusable DFS scratch for expand_to_cone: epoch-stamped visited marks
/// make per-call reuse O(active set) instead of an O(n) allocation+clear.
/// One instance per thread (tl_cone_scratch) keeps concurrent expansions
/// side-effect free.
struct cone_scratch {
  std::vector<ir::node_id> stack;
  std::vector<std::uint32_t> seen;  ///< seen[v] == epoch means visited
  std::uint32_t epoch = 0;
};

/// This thread's scratch instance.
cone_scratch& tl_cone_scratch();

/// expand_to_cone against caller-provided scratch; identical result.
subgraph expand_to_cone(const ir::graph& g, const sched::schedule& s,
                        const path_candidate& path, cone_scratch& scratch);

}  // namespace isdc::extract

#endif  // ISDC_EXTRACT_CONE_H_
