#include "extract/window.h"

#include <algorithm>
#include <utility>

namespace isdc::extract {

namespace {

bool leaves_overlap(const subgraph& a, const subgraph& b) {
  // Both leaf vectors are sorted.
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.leaves.size() && j < b.leaves.size()) {
    if (a.leaves[i] == b.leaves[j]) {
      return true;
    }
    if (a.leaves[i] < b.leaves[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

}  // namespace

fold_result merge_cone_into_windows(const ir::graph& g,
                                    const sched::schedule& s, subgraph cone,
                                    std::vector<subgraph>& windows) {
  for (std::size_t i = 0; i < windows.size(); ++i) {
    subgraph& window = windows[i];
    if (window.stage == cone.stage && leaves_overlap(window, cone)) {
      window.members.insert(window.members.end(), cone.members.begin(),
                            cone.members.end());
      window.score = std::max(window.score, cone.score);
      finalize_subgraph(g, s, window);
      return {i, false};
    }
  }
  windows.push_back(std::move(cone));
  return {windows.size() - 1, true};
}

std::vector<subgraph> merge_into_windows(const ir::graph& g,
                                         const sched::schedule& s,
                                         std::vector<subgraph> cones) {
  std::vector<subgraph> windows;
  windows.reserve(cones.size());
  for (subgraph& cone : cones) {
    merge_cone_into_windows(g, s, std::move(cone), windows);
  }
  return windows;
}

}  // namespace isdc::extract
