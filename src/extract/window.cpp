#include "extract/window.h"

#include <algorithm>

namespace isdc::extract {

namespace {

bool leaves_overlap(const subgraph& a, const subgraph& b) {
  // Both leaf vectors are sorted.
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.leaves.size() && j < b.leaves.size()) {
    if (a.leaves[i] == b.leaves[j]) {
      return true;
    }
    if (a.leaves[i] < b.leaves[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

}  // namespace

std::vector<subgraph> merge_into_windows(const ir::graph& g,
                                         const sched::schedule& s,
                                         std::vector<subgraph> cones) {
  std::vector<subgraph> windows;
  for (subgraph& cone : cones) {
    bool merged = false;
    for (subgraph& window : windows) {
      if (window.stage == cone.stage && leaves_overlap(window, cone)) {
        window.members.insert(window.members.end(), cone.members.begin(),
                              cone.members.end());
        window.score = std::max(window.score, cone.score);
        finalize_subgraph(g, s, window);
        merged = true;
        break;
      }
    }
    if (!merged) {
      windows.push_back(std::move(cone));
    }
  }
  return windows;
}

}  // namespace isdc::extract
