// Path scoring (paper Eq. 3). The fanout-driven score prioritizes
// registers that are wide (many bits to save) and lightly used (cheap to
// reposition); D(ccp)/Tclk — always < 1 in a valid schedule — breaks ties
// toward longer paths. The delay-driven baseline ranks purely by delay.
#ifndef ISDC_EXTRACT_SCORING_H_
#define ISDC_EXTRACT_SCORING_H_

#include "extract/path_enum.h"

namespace isdc {
class thread_pool;
}

namespace isdc::extract {

enum class extraction_strategy {
  delay_driven,   ///< ablation baseline: S = D(ccp) / Tclk
  fanout_driven,  ///< Eq. 3 (default)
};

/// A candidate path paired with its rank score. Ranking and expansion
/// exchange these as one unit so the path order and the score order can
/// never desynchronize.
struct scored_candidate {
  path_candidate path;
  double score = 0.0;
};

/// Register consumers of vj's pipeline register: users in later stages,
/// plus one for the output register when vj is a primary output.
int num_register_consumers(const ir::graph& g, const sched::schedule& s,
                           ir::node_id vj);

/// Eq. 3 / delay-driven score of a candidate path.
double score_path(const ir::graph& g, const sched::schedule& s,
                  const path_candidate& path, double clock_period_ps,
                  extraction_strategy strategy);

/// Scores all candidates and returns them in descending score order.
std::vector<scored_candidate> rank_candidates(
    const ir::graph& g, const sched::schedule& s, double clock_period_ps,
    extraction_strategy strategy, std::vector<path_candidate> candidates);

/// Thread-parallel variant: scoring each candidate is pure, so scores
/// compute concurrently into per-candidate slots; the final stable_sort
/// runs serially on the same (index-ordered) array the serial form sorts,
/// so the result is identical. nullptr / 1-thread pool falls back.
std::vector<scored_candidate> rank_candidates(
    const ir::graph& g, const sched::schedule& s, double clock_period_ps,
    extraction_strategy strategy, std::vector<path_candidate> candidates,
    thread_pool* pool);

}  // namespace isdc::extract

#endif  // ISDC_EXTRACT_SCORING_H_
