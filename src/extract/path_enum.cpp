#include "extract/path_enum.h"

#include <algorithm>

#include "sched/metrics.h"
#include "support/thread_pool.h"

namespace isdc::extract {
namespace {

/// Computes vj's candidate, or returns false when vj owns no register.
/// Pure reads of g / s / d — safe to call concurrently for distinct vj.
bool candidate_for(const ir::graph& g, const sched::schedule& s,
                   const sched::delay_matrix& d, ir::node_id vj,
                   path_candidate& out) {
  const ir::opcode op = g.at(vj).op;
  if (op == ir::opcode::constant || op == ir::opcode::input) {
    return false;
  }
  // A value owns pipeline registers when it crosses a stage boundary or
  // is a primary output (registered at the pipeline end).
  if (sched::last_use_stage(g, s, vj) == s.cycle[vj] && !g.is_output(vj)) {
    return false;
  }
  // Critical same-stage ancestor.
  out.from = vj;
  out.to = vj;
  out.delay_ps = d.self(vj);
  for (ir::node_id u = 0; u <= vj; ++u) {
    if (s.cycle[u] != s.cycle[vj] || g.at(u).op == ir::opcode::constant) {
      continue;
    }
    const float delay = d.get(u, vj);
    if (delay != sched::delay_matrix::not_connected &&
        delay > out.delay_ps) {
      out.from = u;
      out.delay_ps = delay;
    }
  }
  return true;
}

}  // namespace

std::vector<path_candidate> enumerate_candidate_paths(
    const ir::graph& g, const sched::schedule& s,
    const sched::delay_matrix& d) {
  std::vector<path_candidate> candidates;
  path_candidate best;
  for (ir::node_id vj = 0; vj < g.num_nodes(); ++vj) {
    if (candidate_for(g, s, d, vj, best)) {
      candidates.push_back(best);
    }
  }
  return candidates;
}

std::vector<path_candidate> enumerate_candidate_paths(
    const ir::graph& g, const sched::schedule& s,
    const sched::delay_matrix& d, thread_pool* pool) {
  const std::size_t n = g.num_nodes();
  if (pool == nullptr || pool->size() <= 1 || n == 0) {
    return enumerate_candidate_paths(g, s, d);
  }
  // Per-vj slots filled in parallel, compacted serially in vj order —
  // the same order the serial loop emits.
  std::vector<path_candidate> slots(n);
  std::vector<unsigned char> present(n, 0);
  constexpr std::size_t kPanel = 32;
  const std::size_t panels = (n + kPanel - 1) / kPanel;
  pool->parallel_for(panels, [&](std::size_t p) {
    const std::size_t hi = std::min(n, (p + 1) * kPanel);
    for (std::size_t vj = p * kPanel; vj < hi; ++vj) {
      present[vj] = candidate_for(g, s, d, static_cast<ir::node_id>(vj),
                                  slots[vj])
                        ? 1
                        : 0;
    }
  });
  std::vector<path_candidate> candidates;
  for (std::size_t vj = 0; vj < n; ++vj) {
    if (present[vj]) {
      candidates.push_back(slots[vj]);
    }
  }
  return candidates;
}

}  // namespace isdc::extract
