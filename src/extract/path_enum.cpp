#include "extract/path_enum.h"

#include "sched/metrics.h"

namespace isdc::extract {

std::vector<path_candidate> enumerate_candidate_paths(
    const ir::graph& g, const sched::schedule& s,
    const sched::delay_matrix& d) {
  std::vector<path_candidate> candidates;
  for (ir::node_id vj = 0; vj < g.num_nodes(); ++vj) {
    const ir::opcode op = g.at(vj).op;
    if (op == ir::opcode::constant || op == ir::opcode::input) {
      continue;
    }
    // A value owns pipeline registers when it crosses a stage boundary or
    // is a primary output (registered at the pipeline end).
    if (sched::last_use_stage(g, s, vj) == s.cycle[vj] && !g.is_output(vj)) {
      continue;
    }
    // Critical same-stage ancestor.
    path_candidate best;
    best.from = vj;
    best.to = vj;
    best.delay_ps = d.self(vj);
    for (ir::node_id u = 0; u <= vj; ++u) {
      if (s.cycle[u] != s.cycle[vj] ||
          g.at(u).op == ir::opcode::constant) {
        continue;
      }
      const float delay = d.get(u, vj);
      if (delay != sched::delay_matrix::not_connected &&
          delay > best.delay_ps) {
        best.from = u;
        best.delay_ps = delay;
      }
    }
    candidates.push_back(best);
  }
  return candidates;
}

}  // namespace isdc::extract
