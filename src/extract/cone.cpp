#include "extract/cone.h"

#include <algorithm>

#include "support/check.h"

namespace isdc::extract {

subgraph expand_to_path(const ir::graph& g, const sched::schedule& s,
                        const sched::delay_matrix& d,
                        const path_candidate& path) {
  subgraph sub;
  sub.stage = s.cycle[path.to];
  sub.score = 0.0;
  // Backtrack the critical chain from vj to vi: at each step follow the
  // same-stage operand with the largest delay from vi. Inputs and
  // constants stay on the boundary (they carry no logic).
  ir::node_id w = path.to;
  if (g.at(w).op != ir::opcode::input) {
    sub.members.push_back(w);
  }
  while (w != path.from) {
    ir::node_id best = ir::invalid_node;
    float best_delay = sched::delay_matrix::not_connected;
    for (ir::node_id p : g.at(w).operands) {
      if (s.cycle[p] != sub.stage || g.at(p).op == ir::opcode::constant) {
        continue;
      }
      const float delay =
          p == path.from ? d.self(path.from) : d.get(path.from, p);
      if (delay != sched::delay_matrix::not_connected &&
          (best == ir::invalid_node || delay > best_delay)) {
        best = p;
        best_delay = delay;
      }
    }
    ISDC_CHECK(best != ir::invalid_node,
               "critical path backtrack lost the trail at node " << w);
    w = best;
    if (g.at(w).op != ir::opcode::input) {
      sub.members.push_back(w);
    }
  }
  finalize_subgraph(g, s, sub);
  return sub;
}

cone_scratch& tl_cone_scratch() {
  static thread_local cone_scratch s;
  return s;
}

subgraph expand_to_cone(const ir::graph& g, const sched::schedule& s,
                        const path_candidate& path) {
  return expand_to_cone(g, s, path, tl_cone_scratch());
}

subgraph expand_to_cone(const ir::graph& g, const sched::schedule& s,
                        const path_candidate& path, cone_scratch& scratch) {
  subgraph sub;
  sub.stage = s.cycle[path.to];
  if (scratch.seen.size() < g.num_nodes()) {
    scratch.seen.assign(g.num_nodes(), 0);
    scratch.epoch = 0;
  }
  if (++scratch.epoch == 0) {  // epoch wrap: reset stamps once per 2^32
    std::fill(scratch.seen.begin(), scratch.seen.end(), 0u);
    scratch.epoch = 1;
  }
  const std::uint32_t epoch = scratch.epoch;
  std::vector<ir::node_id>& stack = scratch.stack;
  stack.clear();
  // DFS from the root towards the stage boundary / primary inputs.
  stack.push_back(path.to);
  scratch.seen[path.to] = epoch;
  while (!stack.empty()) {
    const ir::node_id w = stack.back();
    stack.pop_back();
    sub.members.push_back(w);
    for (ir::node_id p : g.at(w).operands) {
      if (scratch.seen[p] == epoch || s.cycle[p] != sub.stage) {
        continue;
      }
      const ir::opcode op = g.at(p).op;
      if (op == ir::opcode::constant || op == ir::opcode::input) {
        continue;  // boundary: constants fold, inputs are the PI frontier
      }
      scratch.seen[p] = epoch;
      stack.push_back(p);
    }
  }
  finalize_subgraph(g, s, sub);
  return sub;
}

}  // namespace isdc::extract
