// Combinational subgraphs extracted from a schedule: the unit of feedback
// between ISDC and the downstream flow. A subgraph lives entirely inside
// one pipeline stage; its leaves are the stage-boundary values feeding it
// (register outputs / primary inputs) and its roots are the values it
// exposes (registered at the next boundary or consumed elsewhere).
#ifndef ISDC_EXTRACT_SUBGRAPH_H_
#define ISDC_EXTRACT_SUBGRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "ir/extract.h"
#include "ir/graph.h"
#include "sched/schedule.h"

namespace isdc::extract {

struct subgraph {
  std::vector<ir::node_id> members;  ///< sorted, unique
  std::vector<ir::node_id> roots;    ///< subset of members
  std::vector<ir::node_id> leaves;   ///< external non-constant sources
  int stage = 0;
  double score = 0.0;

  /// Order-independent fingerprint of the member set (for result caching
  /// across iterations).
  std::uint64_t key() const;
};

/// Sorts/dedups members, recomputes leaves and roots from the graph and
/// schedule: leaves = external non-constant operands; roots = members
/// whose value leaves the member set (external user, later-stage user or
/// primary output).
void finalize_subgraph(const ir::graph& g, const sched::schedule& s,
                       subgraph& sub);

/// Standalone IR for downstream synthesis.
ir::extraction subgraph_to_ir(const ir::graph& g, const subgraph& sub);

}  // namespace isdc::extract

#endif  // ISDC_EXTRACT_SUBGRAPH_H_
