#include "extract/canonical.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "support/check.h"
#include "support/hash.h"

namespace isdc::extract {

namespace {

// Node-kind tags mixed ahead of each node's payload, so a leaf can never
// alias a member or a constant of coincidentally equal width.
constexpr std::uint64_t kTagMember = 0x6d656d6265720000ull;  // "member"
constexpr std::uint64_t kTagLeaf = 0x6c65616600000000ull;    // "leaf"
constexpr std::uint64_t kTagConst = 0x636f6e7374000000ull;   // "const"

bool uses_value(ir::opcode op) {
  return op == ir::opcode::constant || op == ir::opcode::slice;
}

/// Epoch-stamped view of the scratch: a vector entry is live only if its
/// stamp matches the current epoch, so clearing between calls is one
/// counter increment instead of an O(n) wipe (or a rehash, in the
/// unordered_map version this replaced).
struct stamped {
  std::vector<std::uint64_t>& value;
  std::vector<std::uint32_t>& stamp;
  const std::uint32_t epoch;

  bool contains(ir::node_id v) const { return stamp[v] == epoch; }
  std::uint64_t at(ir::node_id v) const { return value[v]; }
  /// Returns false if already present (emplace semantics).
  bool emplace(ir::node_id v, std::uint64_t x) {
    if (stamp[v] == epoch) {
      return false;
    }
    stamp[v] = epoch;
    value[v] = x;
    return true;
  }
};

/// Bottom-up shape hash of one member: opcode, width, value (where it is
/// semantic) and the shape hashes of its operands in operand order, with
/// out-of-cone operands anonymized — constants by (width, value), every
/// other external source by width alone. Member ids never enter the hash.
std::uint64_t shape_hash(const ir::graph& g, ir::node_id m,
                         const stamped& member_shape) {
  const ir::node& n = g.at(m);
  fnv1a64 h;
  h.mix(kTagMember);
  h.mix(static_cast<std::uint64_t>(n.op));
  h.mix(n.width);
  if (uses_value(n.op)) {
    h.mix(n.value);
  }
  for (const ir::node_id p : n.operands) {
    if (member_shape.contains(p)) {
      h.mix(member_shape.at(p));
    } else if (g.at(p).op == ir::opcode::constant) {
      h.mix(kTagConst);
      h.mix(g.at(p).width);
      h.mix(g.at(p).value);
    } else {
      h.mix(kTagLeaf);
      h.mix(g.at(p).width);
    }
  }
  return h.value();
}

}  // namespace

std::uint64_t canonical_fingerprint_version() { return 1; }

std::uint64_t canonical_fingerprint(const ir::graph& g, const subgraph& sub) {
  static thread_local canonical_scratch scratch;
  return canonical_fingerprint(g, sub, scratch);
}

std::uint64_t canonical_fingerprint(const ir::graph& g, const subgraph& sub,
                                    canonical_scratch& s) {
  ISDC_CHECK(!sub.members.empty(), "canonical_fingerprint of empty subgraph");

  const std::size_t n = g.num_nodes();
  if (s.shape.size() < n) {
    s.shape.resize(n);
    s.canonical.resize(n);
    s.shape_epoch.resize(n, 0);
    s.canon_epoch.resize(n, 0);
  }
  if (++s.epoch == 0) {
    // Epoch wrapped: every stale stamp could collide, so wipe them once.
    std::fill(s.shape_epoch.begin(), s.shape_epoch.end(), 0);
    std::fill(s.canon_epoch.begin(), s.canon_epoch.end(), 0);
    s.epoch = 1;
  }
  stamped shape{s.shape, s.shape_epoch, s.epoch};
  stamped canonical_id{s.canonical, s.canon_epoch, s.epoch};

  // Pass 1 — shape hashes, bottom-up. Members are sorted ascending and ids
  // are topological by construction, so operands are hashed before users.
  for (const ir::node_id m : sub.members) {
    shape.emplace(m, shape_hash(g, m, shape));
  }

  // Pass 2 — a canonical traversal order. Roots are visited by ascending
  // shape hash (their design-local id order is what we must erase); ties
  // keep the finalized root order, which is deterministic per design and
  // only costs coalescing between designs whose roots are genuinely
  // symmetric. A deterministic DFS from each root, following operand
  // order, numbers every reachable node — members, leaves and external
  // constants alike — at first visit.
  s.root_order.assign(sub.roots.begin(), sub.roots.end());
  std::stable_sort(s.root_order.begin(), s.root_order.end(),
                   [&shape](ir::node_id a, ir::node_id b) {
                     return shape.at(a) < shape.at(b);
                   });

  s.order.clear();  // nodes in canonical-id order
  s.stack.clear();
  const auto visit_from = [&](ir::node_id root) {
    s.stack.push_back(root);
    while (!s.stack.empty()) {
      const ir::node_id v = s.stack.back();
      s.stack.pop_back();
      if (!canonical_id.emplace(v, s.order.size())) {
        continue;
      }
      s.order.push_back(v);
      if (!shape.contains(v)) {
        continue;  // leaf or external constant: a terminal
      }
      const ir::operand_list operands = g.at(v).operands;
      for (auto it = operands.rbegin(); it != operands.rend(); ++it) {
        s.stack.push_back(*it);  // reversed: popped in operand order
      }
    }
  };
  for (const ir::node_id r : s.root_order) {
    visit_from(r);
  }
  // Members unreachable from every root (possible only for hand-built
  // member sets with dead nodes) still must distinguish the fingerprint:
  // traverse them too, in the same shape-then-id order.
  if (s.order.size() < sub.members.size()) {
    s.rest.clear();
    for (const ir::node_id m : sub.members) {
      if (!canonical_id.contains(m)) {
        s.rest.push_back(m);
      }
    }
    std::stable_sort(s.rest.begin(), s.rest.end(),
                     [&shape](ir::node_id a, ir::node_id b) {
                       return shape.at(a) < shape.at(b);
                     });
    for (const ir::node_id m : s.rest) {
      visit_from(m);
    }
  }

  // Pass 3 — the fingerprint: every node in canonical order with its
  // operands as canonical indices, then the roots as canonical indices.
  // This encodes the exact DAG (including fan-out sharing), just relabeled.
  fnv1a64 h;
  h.mix(s.order.size());
  for (const ir::node_id v : s.order) {
    const ir::node& node = g.at(v);
    if (!shape.contains(v)) {
      if (node.op == ir::opcode::constant) {
        h.mix(kTagConst);
        h.mix(node.width);
        h.mix(node.value);
      } else {
        h.mix(kTagLeaf);
        h.mix(node.width);
      }
      continue;
    }
    h.mix(kTagMember);
    h.mix(static_cast<std::uint64_t>(node.op));
    h.mix(node.width);
    if (uses_value(node.op)) {
      h.mix(node.value);
    }
    for (const ir::node_id p : node.operands) {
      h.mix(canonical_id.at(p));
    }
  }
  h.mix(s.root_order.size());
  for (const ir::node_id r : s.root_order) {
    h.mix(canonical_id.at(r));
  }
  return h.value();
}

}  // namespace isdc::extract
