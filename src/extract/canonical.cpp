#include "extract/canonical.h"

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

#include "support/check.h"
#include "support/hash.h"

namespace isdc::extract {

namespace {

// Node-kind tags mixed ahead of each node's payload, so a leaf can never
// alias a member or a constant of coincidentally equal width.
constexpr std::uint64_t kTagMember = 0x6d656d6265720000ull;  // "member"
constexpr std::uint64_t kTagLeaf = 0x6c65616600000000ull;    // "leaf"
constexpr std::uint64_t kTagConst = 0x636f6e7374000000ull;   // "const"

bool uses_value(ir::opcode op) {
  return op == ir::opcode::constant || op == ir::opcode::slice;
}

/// Bottom-up shape hash of one member: opcode, width, value (where it is
/// semantic) and the shape hashes of its operands in operand order, with
/// out-of-cone operands anonymized — constants by (width, value), every
/// other external source by width alone. Member ids never enter the hash.
std::uint64_t shape_hash(
    const ir::graph& g, ir::node_id m,
    const std::unordered_map<ir::node_id, std::uint64_t>& member_shape) {
  const ir::node& n = g.at(m);
  fnv1a64 h;
  h.mix(kTagMember);
  h.mix(static_cast<std::uint64_t>(n.op));
  h.mix(n.width);
  if (uses_value(n.op)) {
    h.mix(n.value);
  }
  for (const ir::node_id p : n.operands) {
    const auto it = member_shape.find(p);
    if (it != member_shape.end()) {
      h.mix(it->second);
    } else if (g.at(p).op == ir::opcode::constant) {
      h.mix(kTagConst);
      h.mix(g.at(p).width);
      h.mix(g.at(p).value);
    } else {
      h.mix(kTagLeaf);
      h.mix(g.at(p).width);
    }
  }
  return h.value();
}

}  // namespace

std::uint64_t canonical_fingerprint_version() { return 1; }

std::uint64_t canonical_fingerprint(const ir::graph& g, const subgraph& sub) {
  ISDC_CHECK(!sub.members.empty(), "canonical_fingerprint of empty subgraph");

  // Pass 1 — shape hashes, bottom-up. Members are sorted ascending and ids
  // are topological by construction, so operands are hashed before users.
  std::unordered_map<ir::node_id, std::uint64_t> shape;
  shape.reserve(sub.members.size());
  for (const ir::node_id m : sub.members) {
    shape.emplace(m, shape_hash(g, m, shape));
  }

  // Pass 2 — a canonical traversal order. Roots are visited by ascending
  // shape hash (their design-local id order is what we must erase); ties
  // keep the finalized root order, which is deterministic per design and
  // only costs coalescing between designs whose roots are genuinely
  // symmetric. A deterministic DFS from each root, following operand
  // order, numbers every reachable node — members, leaves and external
  // constants alike — at first visit.
  std::vector<ir::node_id> root_order(sub.roots.begin(), sub.roots.end());
  std::stable_sort(root_order.begin(), root_order.end(),
                   [&shape](ir::node_id a, ir::node_id b) {
                     return shape.at(a) < shape.at(b);
                   });

  std::unordered_map<ir::node_id, std::uint64_t> canonical_id;
  canonical_id.reserve(shape.size() + sub.leaves.size());
  std::vector<ir::node_id> order;  // nodes in canonical-id order
  order.reserve(shape.size() + sub.leaves.size());
  std::vector<ir::node_id> stack;
  const auto visit_from = [&](ir::node_id root) {
    stack.push_back(root);
    while (!stack.empty()) {
      const ir::node_id v = stack.back();
      stack.pop_back();
      if (!canonical_id.emplace(v, order.size()).second) {
        continue;
      }
      order.push_back(v);
      if (!shape.contains(v)) {
        continue;  // leaf or external constant: a terminal
      }
      const std::vector<ir::node_id>& operands = g.at(v).operands;
      for (auto it = operands.rbegin(); it != operands.rend(); ++it) {
        stack.push_back(*it);  // reversed: popped in operand order
      }
    }
  };
  for (const ir::node_id r : root_order) {
    visit_from(r);
  }
  // Members unreachable from every root (possible only for hand-built
  // member sets with dead nodes) still must distinguish the fingerprint:
  // traverse them too, in the same shape-then-id order.
  if (order.size() < shape.size()) {
    std::vector<ir::node_id> rest;
    for (const ir::node_id m : sub.members) {
      if (!canonical_id.contains(m)) {
        rest.push_back(m);
      }
    }
    std::stable_sort(rest.begin(), rest.end(),
                     [&shape](ir::node_id a, ir::node_id b) {
                       return shape.at(a) < shape.at(b);
                     });
    for (const ir::node_id m : rest) {
      visit_from(m);
    }
  }

  // Pass 3 — the fingerprint: every node in canonical order with its
  // operands as canonical indices, then the roots as canonical indices.
  // This encodes the exact DAG (including fan-out sharing), just relabeled.
  fnv1a64 h;
  h.mix(order.size());
  for (const ir::node_id v : order) {
    const ir::node& n = g.at(v);
    if (!shape.contains(v)) {
      if (n.op == ir::opcode::constant) {
        h.mix(kTagConst);
        h.mix(n.width);
        h.mix(n.value);
      } else {
        h.mix(kTagLeaf);
        h.mix(n.width);
      }
      continue;
    }
    h.mix(kTagMember);
    h.mix(static_cast<std::uint64_t>(n.op));
    h.mix(n.width);
    if (uses_value(n.op)) {
      h.mix(n.value);
    }
    for (const ir::node_id p : n.operands) {
      h.mix(canonical_id.at(p));
    }
  }
  h.mix(root_order.size());
  for (const ir::node_id r : root_order) {
    h.mix(canonical_id.at(r));
  }
  return h.value();
}

}  // namespace isdc::extract
