// Candidate-path enumeration (paper Section III-B): for every value that
// crosses a stage boundary (i.e. owns a pipeline register), the critical
// intra-stage path ending at it.
#ifndef ISDC_EXTRACT_PATH_ENUM_H_
#define ISDC_EXTRACT_PATH_ENUM_H_

#include <vector>

#include "sched/delay_matrix.h"
#include "sched/schedule.h"

namespace isdc {
class thread_pool;
}

namespace isdc::extract {

/// One candidate: the worst same-stage path (from, to); `to` is registered.
struct path_candidate {
  ir::node_id from = 0;  ///< vi
  ir::node_id to = 0;    ///< vj (register producer)
  double delay_ps = 0.0; ///< D[vi][vj] under the current matrix
};

/// All candidates for the current schedule. Constants never appear;
/// `to` is never an input. Single-node paths (from == to) are produced for
/// registered nodes with no same-stage ancestors.
std::vector<path_candidate> enumerate_candidate_paths(
    const ir::graph& g, const sched::schedule& s,
    const sched::delay_matrix& d);

/// Thread-parallel variant: each vj's candidate is independent (pure reads
/// of schedule and matrix), so vj panels partition over the pool and the
/// final list is compacted serially in vj order — identical output to the
/// serial form. nullptr (or a 1-thread pool) falls back to serial.
std::vector<path_candidate> enumerate_candidate_paths(
    const ir::graph& g, const sched::schedule& s,
    const sched::delay_matrix& d, thread_pool* pool);

}  // namespace isdc::extract

#endif  // ISDC_EXTRACT_PATH_ENUM_H_
