#include "extract/subgraph.h"

#include <algorithm>

#include "support/check.h"
#include "support/hash.h"

namespace isdc::extract {

std::uint64_t subgraph::key() const {
  // FNV-1a over the sorted member ids.
  fnv1a64 h;
  for (ir::node_id m : members) {
    h.mix(m);
  }
  return h.value();
}

void finalize_subgraph(const ir::graph& g, const sched::schedule& s,
                       subgraph& sub) {
  std::sort(sub.members.begin(), sub.members.end());
  sub.members.erase(std::unique(sub.members.begin(), sub.members.end()),
                    sub.members.end());
  ISDC_CHECK(!sub.members.empty(), "empty subgraph");

  std::vector<bool> is_member(g.num_nodes(), false);
  for (ir::node_id m : sub.members) {
    is_member[m] = true;
  }

  sub.leaves.clear();
  sub.roots.clear();
  for (ir::node_id m : sub.members) {
    for (ir::node_id p : g.at(m).operands) {
      if (!is_member[p] && g.at(p).op != ir::opcode::constant) {
        sub.leaves.push_back(p);
      }
    }
    bool is_root = g.is_output(m);
    for (ir::node_id u : g.users(m)) {
      is_root = is_root || !is_member[u] || s.cycle[u] != s.cycle[m];
    }
    if (is_root) {
      sub.roots.push_back(m);
    }
  }
  std::sort(sub.leaves.begin(), sub.leaves.end());
  sub.leaves.erase(std::unique(sub.leaves.begin(), sub.leaves.end()),
                   sub.leaves.end());
  if (sub.roots.empty()) {
    // Degenerate but possible for a hand-built member set: expose the
    // topologically last member.
    sub.roots.push_back(sub.members.back());
  }
}

ir::extraction subgraph_to_ir(const ir::graph& g, const subgraph& sub) {
  return ir::extract_subgraph(g, sub.members, sub.roots);
}

}  // namespace isdc::extract
