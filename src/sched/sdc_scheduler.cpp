#include "sched/sdc_scheduler.h"

#include <cmath>

#include "sdc/mcmf_solver.h"
#include "sdc/system.h"
#include "support/check.h"

namespace isdc::sched {

namespace {

bool is_free_node(const ir::graph& g, ir::node_id v) {
  // Constants are hardwired: never registered, never timing sources.
  return g.at(v).op == ir::opcode::constant;
}

}  // namespace

schedule sdc_schedule(const ir::graph& g, const delay_matrix& d,
                      const scheduler_options& options,
                      scheduler_stats* stats) {
  const int n = static_cast<int>(g.num_nodes());
  ISDC_CHECK(d.size() == g.num_nodes(), "delay matrix size mismatch");
  const double t_clk = options.clock_period_ps;
  ISDC_CHECK(t_clk > 0.0, "clock period must be positive");
  for (ir::node_id v = 0; v < g.num_nodes(); ++v) {
    ISDC_CHECK(d.self(v) <= t_clk,
               "operation " << v << " (" << ir::opcode_name(g.at(v).op)
                            << ", " << d.self(v)
                            << " ps) exceeds the clock period " << t_clk
                            << " ps; increase the target period");
  }

  // Variable layout: s_v = v, m_v = n + v, origin = 2n, sink = 2n + 1.
  sdc::system sys(2 * n + 2);
  const sdc::var_id origin = 2 * n;
  const sdc::var_id sink = 2 * n + 1;
  const auto s_var = [](ir::node_id v) { return static_cast<sdc::var_id>(v); };
  const auto m_var = [n](ir::node_id v) {
    return static_cast<sdc::var_id>(n + static_cast<int>(v));
  };

  const std::int64_t horizon = n + 2;

  for (ir::node_id v = 0; v < g.num_nodes(); ++v) {
    // 0 <= s_v <= horizon (relative to the origin).
    sys.add_constraint(origin, s_var(v), 0);
    sys.add_constraint(s_var(v), origin, horizon);
    // s_v <= sink <= horizon.
    sys.add_constraint(s_var(v), sink, 0);
    // Inputs and constants are available at stage 0.
    if (g.at(v).op == ir::opcode::input || is_free_node(g, v)) {
      sys.add_constraint(s_var(v), origin, 0);
    }
    // Dependences: an operation cannot precede its operands (chaining in
    // the same stage is allowed).
    for (ir::node_id p : g.at(v).operands) {
      sys.add_constraint(s_var(p), s_var(v), 0);
    }
    // Last-use coupling.
    if (!is_free_node(g, v)) {
      sys.add_constraint(s_var(v), m_var(v), 0);
      for (ir::node_id u : g.users(v)) {
        sys.add_constraint(s_var(u), m_var(v), 0);
      }
      if (g.is_output(v)) {
        sys.add_constraint(sink, m_var(v), 0);
      }
    }
  }
  sys.add_constraint(sink, origin, horizon);

  // Timing constraints (Eq. 2): a path with delay D > Tclk must span at
  // least ceil(D / Tclk) stages.
  std::size_t timing_count = 0;
  const auto separation = [t_clk](double delay) {
    return static_cast<std::int64_t>(std::ceil(delay / t_clk)) - 1;
  };
  for (ir::node_id v = 0; v < g.num_nodes(); ++v) {
    for (ir::node_id u = 0; u < v; ++u) {
      if (is_free_node(g, u)) {
        continue;  // constants are valid at t=0 of every stage
      }
      const float delay = d.get(u, v);
      if (delay <= t_clk || delay == delay_matrix::not_connected) {
        continue;
      }
      if (options.timing == timing_mode::frontier) {
        // Emit only if no user of u also exceeds Tclk towards v.
        bool deeper_exists = false;
        for (ir::node_id c : g.users(u)) {
          if (c <= v && d.get(c, v) > t_clk) {
            deeper_exists = true;
            break;
          }
        }
        if (deeper_exists) {
          continue;
        }
        sys.add_constraint(s_var(u), s_var(v), -1);
      } else {
        sys.add_constraint(s_var(u), s_var(v), -separation(delay));
      }
      ++timing_count;
    }
  }

  // Objective: K * register bits + earliest/shortest tie-break. K strictly
  // dominates the largest possible tie-break total, so registers are the
  // primary objective and the result stays integral (TU matrix).
  const std::int64_t k =
      2 * static_cast<std::int64_t>(n) * horizon + 4 * horizon + 1;
  for (ir::node_id v = 0; v < g.num_nodes(); ++v) {
    if (is_free_node(g, v)) {
      continue;
    }
    const std::int64_t bits = g.at(v).width;
    sys.add_objective(m_var(v), k * bits + 1);
    sys.add_objective(s_var(v), -k * bits + 1);
  }
  sys.add_objective(sink, 4);

  const sdc::solution sol = sdc::solve(sys, origin);
  ISDC_CHECK(sol.st == sdc::solution::status::optimal,
             "SDC scheduling LP not solvable (status "
                 << static_cast<int>(sol.st) << ')');

  schedule result;
  result.cycle.resize(g.num_nodes());
  for (ir::node_id v = 0; v < g.num_nodes(); ++v) {
    result.cycle[v] = static_cast<int>(sol.values[static_cast<std::size_t>(
        s_var(v))]);
    ISDC_CHECK(result.cycle[v] >= 0, "negative stage in LP solution");
  }
  if (stats != nullptr) {
    stats->num_constraints = sys.constraints().size();
    stats->num_timing_constraints = timing_count;
    stats->objective = sol.objective;
  }
  return result;
}

}  // namespace isdc::sched
