#include "sched/sdc_scheduler.h"

#include "sched/scheduler_instance.h"

namespace isdc::sched {

schedule sdc_schedule(const ir::graph& g, const delay_matrix& d,
                      const scheduler_options& options,
                      scheduler_stats* stats) {
  scheduler_instance instance(g, options);
  return instance.solve(d, stats);
}

}  // namespace isdc::sched
