// Schedule and delay-matrix invariant checking: dependences, input
// pinning, intra-stage timing against a delay matrix, graph/matrix
// consistency and cross-iteration monotonicity. Every ISDC iterate is
// validated in tests; engine::invariant_validator (engine/validator.h)
// runs the same checks per-iteration through the observer API.
#ifndef ISDC_SCHED_VALIDATE_H_
#define ISDC_SCHED_VALIDATE_H_

#include <string>
#include <vector>

#include "sched/delay_matrix.h"
#include "sched/schedule.h"

namespace isdc::sched {

/// Returns human-readable descriptions of every violation found (empty =>
/// legal). Timing legality: no connected same-stage pair (u, v), with u not
/// a constant, may have D[u][v] > clock_period_ps (+ epsilon).
std::vector<std::string> validate_schedule(const ir::graph& g,
                                           const schedule& s,
                                           const delay_matrix& d,
                                           double clock_period_ps,
                                           double epsilon_ps = 1e-6);

/// Checks `d` is a plausible delay matrix for `g` (empty => consistent):
/// the size matches, every node has a non-negative self delay, entries
/// below the diagonal are not_connected (ids are topological, so paths
/// only run low id -> high id), and for u < v the connectivity pattern
/// matches operand-edge reachability exactly. Reporting stops after
/// `max_violations` entries (a corrupt matrix would otherwise produce
/// O(n^2) lines). Cost is O(n^2 / 64 + edges * n / 64); on designs past
/// ~20k nodes prefer checking once per run, not once per iteration.
std::vector<std::string> validate_matrix(const ir::graph& g,
                                         const delay_matrix& d,
                                         std::size_t max_violations = 32);

/// Checks the feedback-update monotonicity invariant between two snapshots
/// of the same run's matrix (empty => consistent): equal size, identical
/// connectivity pattern, and no entry larger in `after` than in `before`
/// (+ epsilon) — Alg. 1 feedback only ever lowers estimates. Reporting
/// stops after `max_violations` entries.
std::vector<std::string> validate_matrix_monotonic(
    const delay_matrix& before, const delay_matrix& after,
    double epsilon_ps = 1e-3, std::size_t max_violations = 32);

}  // namespace isdc::sched

#endif  // ISDC_SCHED_VALIDATE_H_
