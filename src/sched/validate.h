// Schedule legality checking: dependences, input pinning and intra-stage
// timing against a delay matrix. Every ISDC iterate is validated in tests.
#ifndef ISDC_SCHED_VALIDATE_H_
#define ISDC_SCHED_VALIDATE_H_

#include <string>
#include <vector>

#include "sched/delay_matrix.h"
#include "sched/schedule.h"

namespace isdc::sched {

/// Returns human-readable descriptions of every violation found (empty =>
/// legal). Timing legality: no connected same-stage pair (u, v), with u not
/// a constant, may have D[u][v] > clock_period_ps (+ epsilon).
std::vector<std::string> validate_schedule(const ir::graph& g,
                                           const schedule& s,
                                           const delay_matrix& d,
                                           double clock_period_ps,
                                           double epsilon_ps = 1e-6);

}  // namespace isdc::sched

#endif  // ISDC_SCHED_VALIDATE_H_
