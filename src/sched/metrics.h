// Schedule quality metrics: pipeline register bits (the paper's "Register
// Num."), estimated per-stage critical delays (from a delay matrix) and
// post-synthesis per-stage delays/slack (through the downstream flow).
#ifndef ISDC_SCHED_METRICS_H_
#define ISDC_SCHED_METRICS_H_

#include <cstdint>
#include <vector>

#include "sched/delay_matrix.h"
#include "sched/schedule.h"
#include "synth/synthesis.h"

namespace isdc::sched {

/// Total flip-flop bits of the pipeline: every value crossing k stage
/// boundaries needs k copies of its width, outputs are additionally
/// registered at the pipeline end, constants are hardwired (free).
std::int64_t register_bits(const ir::graph& g, const schedule& s);

/// Last stage in which the value of `v` is consumed (its own stage if it
/// has no users; the final stage if it is a primary output).
int last_use_stage(const ir::graph& g, const schedule& s, ir::node_id v);

/// Estimated critical delay of one stage / all stages: the maximum D[u][v]
/// over connected same-stage pairs (constants excluded as path sources).
double estimated_stage_delay(const ir::graph& g, const schedule& s,
                             const delay_matrix& d, int stage);
std::vector<double> estimated_stage_delays(const ir::graph& g,
                                           const schedule& s,
                                           const delay_matrix& d);
/// max over stages.
double estimated_critical_delay(const ir::graph& g, const schedule& s,
                                const delay_matrix& d);

/// Post-"synthesis" delay of one stage: the stage's combinational cloud is
/// extracted (boundary values become register outputs, i.e. fresh inputs),
/// run through the downstream flow and timed.
double synthesized_stage_delay(const ir::graph& g, const schedule& s,
                               int stage,
                               const synth::synthesis_options& options = {});
/// max over stages (the design's post-synthesis critical delay).
double synthesized_critical_delay(
    const ir::graph& g, const schedule& s,
    const synth::synthesis_options& options = {});

/// clock period - synthesized critical delay (Table I's "Slack").
double post_synthesis_slack(const ir::graph& g, const schedule& s,
                            double clock_period_ps,
                            const synth::synthesis_options& options = {});

}  // namespace isdc::sched

#endif  // ISDC_SCHED_METRICS_H_
