// Classic SDC scheduling (Cong & Zhang, DAC'06) over a delay matrix.
//
// Variables: a stage s_v per node, a last-use m_v per node, an origin
// (time reference) and a sink (pipeline end). Constraints: dependences
// (s_operand <= s_user), input pinning (inputs at stage 0), timing (Eq. 2
// of the paper, from the delay matrix) and last-use coupling. Objective:
// pipeline register bits (sum of bits * stages-crossed), with a small
// earliest/shortest tie-break. The LP is solved exactly by the
// min-cost-flow dual solver in src/sdc.
//
// ISDC re-solves this same LP every iteration with an updated,
// reformulated delay matrix. `sdc_schedule` below is the one-shot entry
// point (a thin wrapper over a fresh sched::scheduler_instance); the
// iterative loop holds a scheduler_instance (scheduler_instance.h) across
// iterations instead, which re-emits only the timing constraints whose
// matrix entries changed and re-solves the LP warm. Both paths produce
// bit-identical schedules.
#ifndef ISDC_SCHED_SDC_SCHEDULER_H_
#define ISDC_SCHED_SDC_SCHEDULER_H_

#include <cstdint>

#include "sched/delay_matrix.h"
#include "sched/schedule.h"

namespace isdc::sched {

/// How Eq. 2 timing constraints are emitted.
enum class timing_mode {
  /// One constraint per connected pair with D[u][v] > Tclk, exactly as
  /// written in the paper. O(n^2) constraints.
  all_pairs,
  /// Only "deepest-ancestor" pairs: for each sink v, ancestors u with
  /// D[u][v] > Tclk none of whose users also exceed Tclk to v. Enforces
  /// exactly the hardware legality condition (no intra-stage window longer
  /// than Tclk) with near-linear constraint counts. Default.
  frontier,
};

struct scheduler_options {
  double clock_period_ps = 2500.0;
  timing_mode timing = timing_mode::frontier;
};

struct scheduler_stats {
  std::size_t num_constraints = 0;         ///< in the solver's system
  std::size_t num_timing_constraints = 0;  ///< Eq. 2 constraints active
  std::int64_t objective = 0;
  // Solver metrics for the solve that produced the schedule. A one-shot
  // sdc_schedule always reports a cold solve with nothing re-emitted.
  bool warm = false;                      ///< reused warm solver state
  std::size_t ssp_paths = 0;              ///< augmenting paths routed
  std::size_t constraints_reemitted = 0;  ///< timing constraints re-emitted
};

/// Schedules `g` against delay matrix `d`, building the LP from scratch.
/// Throws check_error when the constraints are infeasible (e.g. a single
/// operation slower than Tclk).
schedule sdc_schedule(const ir::graph& g, const delay_matrix& d,
                      const scheduler_options& options = {},
                      scheduler_stats* stats = nullptr);

}  // namespace isdc::sched

#endif  // ISDC_SCHED_SDC_SCHEDULER_H_
