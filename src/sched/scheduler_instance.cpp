#include "sched/scheduler_instance.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "support/check.h"

namespace isdc::sched {

namespace {

bool is_free_node(const ir::graph& g, ir::node_id v) {
  // Constants are hardwired: never registered, never timing sources.
  return g.at(v).op == ir::opcode::constant;
}

}  // namespace

scheduler_instance::scheduler_instance(const ir::graph& g,
                                       const scheduler_options& options)
    : g_(g), options_(options), n_(static_cast<int>(g.num_nodes())),
      horizon_(n_ + 2) {
  ISDC_CHECK(options_.clock_period_ps > 0.0, "clock period must be positive");
  free_.resize(g.num_nodes());
  for (ir::node_id v = 0; v < g.num_nodes(); ++v) {
    free_[v] = is_free_node(g, v);
  }
}

const sdc::incremental_solver::solver_stats&
scheduler_instance::solver_stats() const {
  ISDC_CHECK(solver_.has_value(), "instance not built yet");
  return solver_->stats();
}

void scheduler_instance::check_matrix(const delay_matrix& d) const {
  ISDC_CHECK(d.size() == g_.num_nodes(), "delay matrix size mismatch");
  const double t_clk = options_.clock_period_ps;
  for (ir::node_id v = 0; v < g_.num_nodes(); ++v) {
    ISDC_CHECK(d.self(v) <= t_clk,
               "operation " << v << " (" << ir::opcode_name(g_.at(v).op)
                            << ", " << d.self(v)
                            << " ps) exceeds the clock period " << t_clk
                            << " ps; increase the target period");
  }
}

std::optional<std::int64_t> scheduler_instance::desired_timing_bound(
    const delay_matrix& d, ir::node_id u, ir::node_id v) const {
  const double t_clk = options_.clock_period_ps;
  const float delay = d.get(u, v);
  if (delay <= t_clk || delay == delay_matrix::not_connected) {
    return std::nullopt;
  }
  if (options_.timing == timing_mode::frontier) {
    // Emit only if no user of u also exceeds Tclk towards v.
    for (const ir::node_id c : g_.users(u)) {
      if (c <= v && d.get(c, v) > t_clk) {
        return std::nullopt;
      }
    }
    return -1;
  }
  // A path with delay D > Tclk must span at least ceil(D / Tclk) stages.
  return -(static_cast<std::int64_t>(std::ceil(delay / t_clk)) - 1);
}

bool scheduler_instance::apply_timing(const delay_matrix& d, ir::node_id u,
                                      ir::node_id v) {
  const std::uint64_t key = pack(u, v);
  const auto desired = desired_timing_bound(d, u, v);
  // With no timing constraint the pair falls back to its base bound: the
  // dependence bound for operand edges, otherwise the horizon (vacuous
  // under the box constraints, which keeps the solver's arc set stable).
  const std::int64_t base = dependence_pairs_.contains(key) ? 0 : horizon_;
  const std::int64_t want = desired ? std::min(base, *desired) : base;
  const auto active = active_timing_.find(key);
  const std::int64_t current =
      active != active_timing_.end() ? std::min(base, active->second) : base;
  if (desired) {
    active_timing_[key] = *desired;
  } else if (active != active_timing_.end()) {
    active_timing_.erase(active);
  }
  if (want == current) {
    return false;
  }
  solver_->set_bound(static_cast<sdc::var_id>(u), static_cast<sdc::var_id>(v),
                     want);
  return true;
}

void scheduler_instance::build(const delay_matrix& d) {
  const int n = n_;
  // Variable layout: s_v = v, m_v = n + v, origin = 2n, sink = 2n + 1.
  sdc::system sys(2 * n + 2);
  const sdc::var_id origin = 2 * n;
  const sdc::var_id sink = 2 * n + 1;
  const auto s_var = [](ir::node_id v) { return static_cast<sdc::var_id>(v); };
  const auto m_var = [n](ir::node_id v) {
    return static_cast<sdc::var_id>(n + static_cast<int>(v));
  };

  for (ir::node_id v = 0; v < g_.num_nodes(); ++v) {
    // 0 <= s_v <= horizon (relative to the origin).
    sys.add_constraint(origin, s_var(v), 0);
    sys.add_constraint(s_var(v), origin, horizon_);
    // s_v <= sink <= horizon.
    sys.add_constraint(s_var(v), sink, 0);
    // Inputs and constants are available at stage 0.
    if (g_.at(v).op == ir::opcode::input || free_[v]) {
      sys.add_constraint(s_var(v), origin, 0);
    }
    // Dependences: an operation cannot precede its operands (chaining in
    // the same stage is allowed).
    for (const ir::node_id p : g_.at(v).operands) {
      sys.add_constraint(s_var(p), s_var(v), 0);
      dependence_pairs_.insert(pack(p, v));
    }
    // Last-use coupling.
    if (!free_[v]) {
      sys.add_constraint(s_var(v), m_var(v), 0);
      for (const ir::node_id u : g_.users(v)) {
        sys.add_constraint(s_var(u), m_var(v), 0);
      }
      if (g_.is_output(v)) {
        sys.add_constraint(sink, m_var(v), 0);
      }
    }
  }
  sys.add_constraint(sink, origin, horizon_);

  // Timing constraints (Eq. 2), full scan on first build.
  for (ir::node_id v = 0; v < g_.num_nodes(); ++v) {
    for (ir::node_id u = 0; u < v; ++u) {
      if (free_[u]) {
        continue;  // constants are valid at t=0 of every stage
      }
      if (const auto bound = desired_timing_bound(d, u, v)) {
        sys.add_constraint(s_var(u), s_var(v), *bound);
        active_timing_.emplace(pack(u, v), *bound);
      }
    }
  }

  // Objective: K * register bits + earliest/shortest tie-break. K strictly
  // dominates the largest possible tie-break total, so registers are the
  // primary objective and the result stays integral (TU matrix).
  const std::int64_t k =
      2 * static_cast<std::int64_t>(n) * horizon_ + 4 * horizon_ + 1;
  for (ir::node_id v = 0; v < g_.num_nodes(); ++v) {
    if (free_[v]) {
      continue;
    }
    const std::int64_t bits = g_.at(v).width;
    sys.add_objective(m_var(v), k * bits + 1);
    sys.add_objective(s_var(v), -k * bits + 1);
  }
  sys.add_objective(sink, 4);

  solver_.emplace(std::move(sys), origin);
}

schedule scheduler_instance::run_solver(scheduler_stats* stats,
                                        std::size_t reemitted) {
  const sdc::incremental_solver::solver_stats before = solver_->stats();
  const sdc::solution sol = solver_->solve();
  ISDC_CHECK(sol.st == sdc::solution::status::optimal,
             "SDC scheduling LP not solvable (status "
                 << static_cast<int>(sol.st) << ')');

  schedule result;
  result.cycle.resize(g_.num_nodes());
  for (ir::node_id v = 0; v < g_.num_nodes(); ++v) {
    result.cycle[v] = static_cast<int>(sol.values[v]);
    ISDC_CHECK(result.cycle[v] >= 0, "negative stage in LP solution");
  }
  if (stats != nullptr) {
    const sdc::incremental_solver::solver_stats& after = solver_->stats();
    stats->num_constraints = solver_->current_system().constraints().size();
    stats->num_timing_constraints = active_timing_.size();
    stats->objective = sol.objective;
    stats->warm = after.cold_solves == before.cold_solves;
    stats->ssp_paths = after.ssp_paths - before.ssp_paths;
    stats->constraints_reemitted = reemitted;
  }
  return result;
}

schedule scheduler_instance::solve(const delay_matrix& d,
                                   scheduler_stats* stats) {
  check_matrix(d);
  if (!solver_.has_value()) {
    build(d);
    return run_solver(stats, 0);
  }
  // Full rescan: diff every pair's desired timing constraint against the
  // active set; the solve itself still runs warm.
  std::size_t reemitted = 0;
  for (ir::node_id v = 0; v < g_.num_nodes(); ++v) {
    for (ir::node_id u = 0; u < v; ++u) {
      if (!free_[u] && apply_timing(d, u, v)) {
        ++reemitted;
      }
    }
  }
  return run_solver(stats, reemitted);
}

schedule scheduler_instance::resolve(
    const delay_matrix& d, std::span<const delay_matrix::node_pair> changed,
    scheduler_stats* stats) {
  if (!solver_.has_value()) {
    return solve(d, stats);
  }
  check_matrix(d);

  // A changed entry (a, b) affects the timing constraint of (a, b) itself
  // and — in frontier mode, where (u, b) is shadowed while some user of u
  // still exceeds Tclk towards b — of (p, b) for every operand p of a.
  std::vector<std::uint64_t> affected;
  affected.reserve(changed.size() * 2);
  for (const auto& [a, b] : changed) {
    if (a >= b) {
      continue;  // self and lower-triangle entries emit no constraints
    }
    if (!free_[a]) {
      affected.push_back(pack(a, b));
    }
    for (const ir::node_id p : g_.at(a).operands) {
      if (p < b && !free_[p]) {
        affected.push_back(pack(p, b));
      }
    }
  }
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());

  std::size_t reemitted = 0;
  for (const std::uint64_t key : affected) {
    const auto u = static_cast<ir::node_id>(key >> 32);
    const auto v = static_cast<ir::node_id>(key & 0xffffffffu);
    if (apply_timing(d, u, v)) {
      ++reemitted;
    }
  }
  return run_solver(stats, reemitted);
}

}  // namespace isdc::sched
