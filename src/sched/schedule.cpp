#include "sched/schedule.h"

#include <algorithm>

namespace isdc::sched {

int schedule::num_stages() const {
  int max_cycle = -1;
  for (int c : cycle) {
    max_cycle = std::max(max_cycle, c);
  }
  return max_cycle + 1;
}

std::vector<ir::node_id> schedule::nodes_in_stage(int stage) const {
  std::vector<ir::node_id> nodes;
  for (ir::node_id id = 0; id < cycle.size(); ++id) {
    if (cycle[id] == stage) {
      nodes.push_back(id);
    }
  }
  return nodes;
}

}  // namespace isdc::sched
