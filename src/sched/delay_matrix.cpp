#include "sched/delay_matrix.h"

#include <algorithm>

#include "support/check.h"

namespace isdc::sched {

delay_matrix delay_matrix::initial(
    const ir::graph& g,
    const std::function<double(ir::node_id)>& node_delay) {
  const std::size_t n = g.num_nodes();
  delay_matrix d(n);
  std::vector<float> delays(n);
  for (ir::node_id v = 0; v < n; ++v) {
    delays[v] = static_cast<float>(node_delay(v));
    d.set(v, v, delays[v]);
  }
  // Longest-path DP from every source; ids are topological.
  std::vector<float> arrival(n);
  for (ir::node_id u = 0; u < n; ++u) {
    std::fill(arrival.begin(), arrival.end(), not_connected);
    arrival[u] = delays[u];
    for (ir::node_id w = u + 1; w < n; ++w) {
      float best = not_connected;
      for (ir::node_id p : g.at(w).operands) {
        best = std::max(best, arrival[p]);
      }
      if (best != not_connected) {
        arrival[w] = best + delays[w];
        d.set(u, w, arrival[w]);
      }
    }
  }
  return d;
}

}  // namespace isdc::sched
