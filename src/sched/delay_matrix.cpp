#include "sched/delay_matrix.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "ir/adjacency.h"
#include "support/check.h"
#include "support/thread_pool.h"

namespace isdc::sched {

void delay_matrix::track_changes(bool enabled) {
  tracking_ = enabled;
  changed_.clear();
  if (enabled) {
    logged_.assign(n_ * words_per_row_, 0);
  } else {
    logged_.clear();
    logged_.shrink_to_fit();
  }
}

void delay_matrix::set_row(ir::node_id u, std::span<const float> values,
                           std::vector<node_pair>* changed) {
  ISDC_CHECK(values.size() == n_, "set_row expects a full row of "
                                      << n_ << " values, got "
                                      << values.size());
  float* dst = d_.data() + static_cast<std::size_t>(u) * n_;
  if (!tracking_ && changed == nullptr) {
    std::memcpy(dst, values.data(), n_ * sizeof(float));
    return;
  }
  for (std::size_t k = 0; k < words_per_row_; ++k) {
    const std::size_t lo = k * 64;
    const std::size_t hi = std::min(n_, lo + 64);
    std::uint64_t diff = 0;
    for (std::size_t v = lo; v < hi; ++v) {
      if (dst[v] != values[v]) {
        dst[v] = values[v];
        diff |= 1ull << (v - lo);
      }
    }
    if (diff == 0) {
      continue;
    }
    if (changed != nullptr) {
      for (std::uint64_t bits = diff; bits != 0; bits &= bits - 1) {
        changed->emplace_back(
            u, static_cast<ir::node_id>(lo + std::countr_zero(bits)));
      }
    }
    if (tracking_) {
      std::uint64_t& word =
          logged_[static_cast<std::size_t>(u) * words_per_row_ + k];
      for (std::uint64_t fresh = diff & ~word; fresh != 0;
           fresh &= fresh - 1) {
        changed_.push_back(index(
            u, static_cast<ir::node_id>(lo + std::countr_zero(fresh))));
      }
      word |= diff;
    }
  }
}

void delay_matrix::log_row_changes(ir::node_id u,
                                   std::span<const std::uint64_t> bits) {
  if (!tracking_) {
    return;
  }
  ISDC_CHECK(bits.size() == words_per_row_,
             "log_row_changes expects " << words_per_row_ << " words, got "
                                        << bits.size());
  for (std::size_t k = 0; k < words_per_row_; ++k) {
    std::uint64_t b = bits[k];
    if (k == words_per_row_ - 1 && (n_ & 63) != 0) {
      b &= (1ull << (n_ & 63)) - 1;  // ignore bits past column n
    }
    if (b == 0) {
      continue;
    }
    std::uint64_t& word =
        logged_[static_cast<std::size_t>(u) * words_per_row_ + k];
    for (std::uint64_t fresh = b & ~word; fresh != 0; fresh &= fresh - 1) {
      changed_.push_back(index(
          u, static_cast<ir::node_id>(k * 64 + std::countr_zero(fresh))));
    }
    word |= b;
  }
}

std::vector<delay_matrix::node_pair> delay_matrix::take_changed_pairs() {
  ISDC_CHECK(tracking_, "take_changed_pairs requires track_changes(true)");
  std::sort(changed_.begin(), changed_.end());
  std::vector<node_pair> pairs;
  pairs.reserve(changed_.size());
  for (const std::size_t i : changed_) {
    const std::size_t u = i / n_;
    const std::size_t v = i % n_;
    logged_[u * words_per_row_ + (v >> 6)] &= ~(1ull << (v & 63));
    pairs.emplace_back(static_cast<ir::node_id>(u),
                       static_cast<ir::node_id>(v));
  }
  changed_.clear();
  return pairs;
}

delay_matrix delay_matrix::initial(
    const ir::graph& g,
    const std::function<double(ir::node_id)>& node_delay,
    thread_pool* pool) {
  const std::size_t n = g.num_nodes();
  delay_matrix d(n);
  if (n == 0) {
    return d;
  }
  std::vector<float> delays(n);
  for (ir::node_id v = 0; v < n; ++v) {
    delays[v] = static_cast<float>(node_delay(v));
  }
  // Longest-path DP from every source; ids are topological, so row u
  // doubles as the arrival array (cells ahead of the sweep are still
  // not_connected, exactly what an unreached arrival should read as).
  // Each row reads and writes only itself, so rows partition over the
  // pool in panels with no cross-thread traffic at all.
  const ir::flat_adjacency& adj = g.flat();
  const auto fill_row = [&](ir::node_id u) {
    float* row = d.row_mut(u).data();
    row[u] = delays[u];
    for (ir::node_id w = u + 1; w < n; ++w) {
      float best = not_connected;
      for (const ir::node_id p : adj.operands(w)) {
        best = std::max(best, row[p]);
      }
      if (best != not_connected) {
        row[w] = best + delays[w];
      }
    }
  };
  if (pool == nullptr || pool->size() <= 1) {
    for (ir::node_id u = 0; u < n; ++u) {
      fill_row(u);
    }
    return d;
  }
  constexpr std::size_t kPanel = 16;
  const std::size_t panels = (n + kPanel - 1) / kPanel;
  pool->parallel_for(panels, [&](std::size_t p) {
    const std::size_t hi = std::min(n, (p + 1) * kPanel);
    for (std::size_t u = p * kPanel; u < hi; ++u) {
      fill_row(static_cast<ir::node_id>(u));
    }
  });
  return d;
}

}  // namespace isdc::sched
