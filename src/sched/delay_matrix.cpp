#include "sched/delay_matrix.h"

#include <algorithm>

#include "support/check.h"

namespace isdc::sched {

void delay_matrix::track_changes(bool enabled) {
  tracking_ = enabled;
  changed_.clear();
  if (enabled) {
    logged_.assign(n_ * n_, false);
  } else {
    logged_.clear();
    logged_.shrink_to_fit();
  }
}

std::vector<delay_matrix::node_pair> delay_matrix::take_changed_pairs() {
  ISDC_CHECK(tracking_, "take_changed_pairs requires track_changes(true)");
  std::sort(changed_.begin(), changed_.end());
  std::vector<node_pair> pairs;
  pairs.reserve(changed_.size());
  for (const std::size_t i : changed_) {
    logged_[i] = false;
    pairs.emplace_back(static_cast<ir::node_id>(i / n_),
                       static_cast<ir::node_id>(i % n_));
  }
  changed_.clear();
  return pairs;
}

delay_matrix delay_matrix::initial(
    const ir::graph& g,
    const std::function<double(ir::node_id)>& node_delay) {
  const std::size_t n = g.num_nodes();
  delay_matrix d(n);
  std::vector<float> delays(n);
  for (ir::node_id v = 0; v < n; ++v) {
    delays[v] = static_cast<float>(node_delay(v));
    d.set(v, v, delays[v]);
  }
  // Longest-path DP from every source; ids are topological.
  std::vector<float> arrival(n);
  for (ir::node_id u = 0; u < n; ++u) {
    std::fill(arrival.begin(), arrival.end(), not_connected);
    arrival[u] = delays[u];
    for (ir::node_id w = u + 1; w < n; ++w) {
      float best = not_connected;
      for (ir::node_id p : g.at(w).operands) {
        best = std::max(best, arrival[p]);
      }
      if (best != not_connected) {
        arrival[w] = best + delays[w];
        d.set(u, w, arrival[w]);
      }
    }
  }
  return d;
}

}  // namespace isdc::sched
