// Reusable SDC scheduling instance for iterative re-solving.
//
// `sdc_schedule` (sdc_scheduler.h) rebuilds the whole constraint system
// and solves from scratch on every call, even though ISDC re-solves the
// same graph with a delay matrix that moved in only a few entries.
// `scheduler_instance` splits that work: the first solve() builds the
// dependence / pinning / last-use-coupling constraints and the objective
// once (they depend only on the graph) and cold-solves; every later
// resolve() re-emits only the Eq. 2 timing constraints whose delay-matrix
// entries changed — driven by the matrix's change log — and re-solves the
// underlying sdc::incremental_solver warm.
//
// Incremental contract:
//  - warm re-solves apply whenever only delay-matrix entries changed
//    between calls (the ISDC loop: Alg. 1 feedback + Alg. 2
//    reformulation). Timing constraints that disappear are relaxed to the
//    schedule horizon (vacuous under the box constraints) rather than
//    removed, which keeps the solver state structurally stable.
//  - the fallback to a cold solve lives in the solver: infeasibility or a
//    structural change there rebuilds from the mutated system; the
//    schedules produced are bit-identical to sdc_schedule on the same
//    matrix either way (both extract the canonical minimal LP optimum).
//  - the graph and options must not change across calls (the instance
//    keeps a reference to the graph); a changed clock period or timing
//    mode needs a new instance.
#ifndef ISDC_SCHED_SCHEDULER_INSTANCE_H_
#define ISDC_SCHED_SCHEDULER_INSTANCE_H_

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sched/delay_matrix.h"
#include "sched/schedule.h"
#include "sched/sdc_scheduler.h"
#include "sdc/incremental_solver.h"

namespace isdc::sched {

class scheduler_instance {
public:
  /// Binds the instance to `g` (kept by reference: the graph must outlive
  /// the instance) and the scheduling options.
  scheduler_instance(const ir::graph& g, const scheduler_options& options);

  /// Schedules against `d`. The first call builds the constraint system
  /// and cold-solves; later calls diff the full timing-constraint set
  /// against the active one (O(n^2) rescan) and re-solve warm. Prefer
  /// resolve() with a change list when the caller knows which entries
  /// moved. Throws check_error on infeasible constraints, like
  /// sdc_schedule.
  schedule solve(const delay_matrix& d, scheduler_stats* stats = nullptr);

  /// Re-solves after the delay-matrix entries in `changed` moved (e.g.
  /// from delay_matrix::take_changed_pairs). Only timing constraints
  /// affected by those pairs are recomputed. Falls back to solve() when
  /// the instance has not been built yet.
  schedule resolve(const delay_matrix& d,
                   std::span<const delay_matrix::node_pair> changed,
                   scheduler_stats* stats = nullptr);

  bool built() const { return solver_.has_value(); }

  /// The underlying solver's lifetime counters (warm/cold solves, paths).
  const sdc::incremental_solver::solver_stats& solver_stats() const;

private:
  void build(const delay_matrix& d);
  void check_matrix(const delay_matrix& d) const;
  /// The Eq. 2 bound for pair (u, v) under `d`, or nullopt when no timing
  /// constraint applies (not over-clock, not connected, or shadowed by a
  /// deeper frontier pair).
  std::optional<std::int64_t> desired_timing_bound(const delay_matrix& d,
                                                   ir::node_id u,
                                                   ir::node_id v) const;
  /// Re-emits the timing constraint of one pair if its desired bound
  /// differs from the active one; returns true if the solver was touched.
  bool apply_timing(const delay_matrix& d, ir::node_id u, ir::node_id v);
  schedule run_solver(scheduler_stats* stats, std::size_t reemitted);

  static std::uint64_t pack(ir::node_id u, ir::node_id v) {
    return (static_cast<std::uint64_t>(u) << 32) | v;
  }

  const ir::graph& g_;
  scheduler_options options_;
  int n_ = 0;
  std::int64_t horizon_ = 0;
  std::vector<bool> free_;  ///< constants: never registered / timed

  std::optional<sdc::incremental_solver> solver_;
  std::unordered_set<std::uint64_t> dependence_pairs_;  ///< operand edges
  /// Currently emitted timing constraints: packed (u, v) -> bound.
  std::unordered_map<std::uint64_t, std::int64_t> active_timing_;
};

}  // namespace isdc::sched

#endif  // ISDC_SCHED_SCHEDULER_INSTANCE_H_
