// Pipeline schedule: the clock cycle (stage) assigned to every IR node.
#ifndef ISDC_SCHED_SCHEDULE_H_
#define ISDC_SCHED_SCHEDULE_H_

#include <vector>

#include "ir/graph.h"

namespace isdc::sched {

struct schedule {
  std::vector<int> cycle;  ///< per node id

  int num_stages() const;
  bool same_stage(ir::node_id u, ir::node_id v) const {
    return cycle[u] == cycle[v];
  }
  bool operator==(const schedule&) const = default;

  /// Node ids scheduled in `stage`.
  std::vector<ir::node_id> nodes_in_stage(int stage) const;
};

}  // namespace isdc::sched

#endif  // ISDC_SCHED_SCHEDULE_H_
