#include "sched/metrics.h"

#include <algorithm>

#include "ir/extract.h"
#include "support/check.h"

namespace isdc::sched {

int last_use_stage(const ir::graph& g, const schedule& s, ir::node_id v) {
  int last = s.cycle[v];
  for (ir::node_id u : g.users(v)) {
    last = std::max(last, s.cycle[u]);
  }
  if (g.is_output(v)) {
    last = std::max(last, s.num_stages() - 1);
  }
  return last;
}

std::int64_t register_bits(const ir::graph& g, const schedule& s) {
  ISDC_CHECK(s.cycle.size() == g.num_nodes(), "schedule size mismatch");
  std::int64_t bits = 0;
  for (ir::node_id v = 0; v < g.num_nodes(); ++v) {
    if (g.at(v).op == ir::opcode::constant) {
      continue;
    }
    const std::int64_t crossings = last_use_stage(g, s, v) - s.cycle[v];
    bits += crossings * g.at(v).width;
    if (g.is_output(v)) {
      bits += g.at(v).width;  // output register at the pipeline end
    }
  }
  return bits;
}

double estimated_stage_delay(const ir::graph& g, const schedule& s,
                             const delay_matrix& d, int stage) {
  double worst = 0.0;
  for (ir::node_id v = 0; v < g.num_nodes(); ++v) {
    if (s.cycle[v] != stage) {
      continue;
    }
    for (ir::node_id u = 0; u <= v; ++u) {
      if (s.cycle[u] != stage || g.at(u).op == ir::opcode::constant) {
        continue;
      }
      const float delay = d.get(u, v);
      if (delay != delay_matrix::not_connected) {
        worst = std::max(worst, static_cast<double>(delay));
      }
    }
  }
  return worst;
}

std::vector<double> estimated_stage_delays(const ir::graph& g,
                                           const schedule& s,
                                           const delay_matrix& d) {
  std::vector<double> delays(static_cast<std::size_t>(s.num_stages()), 0.0);
  for (int stage = 0; stage < s.num_stages(); ++stage) {
    delays[static_cast<std::size_t>(stage)] =
        estimated_stage_delay(g, s, d, stage);
  }
  return delays;
}

double estimated_critical_delay(const ir::graph& g, const schedule& s,
                                const delay_matrix& d) {
  double worst = 0.0;
  for (double delay : estimated_stage_delays(g, s, d)) {
    worst = std::max(worst, delay);
  }
  return worst;
}

double synthesized_stage_delay(const ir::graph& g, const schedule& s,
                               int stage,
                               const synth::synthesis_options& options) {
  std::vector<ir::node_id> members;
  std::vector<ir::node_id> roots;
  for (ir::node_id v = 0; v < g.num_nodes(); ++v) {
    if (s.cycle[v] != stage || g.at(v).op == ir::opcode::constant ||
        g.at(v).op == ir::opcode::input) {
      continue;
    }
    members.push_back(v);
    if (g.is_output(v) || last_use_stage(g, s, v) > stage) {
      roots.push_back(v);
    }
  }
  if (members.empty() || roots.empty()) {
    return 0.0;  // pass-through stage, no logic between registers
  }
  const ir::extraction stage_cloud = ir::extract_subgraph(g, members, roots);
  return synth::synthesize_graph(stage_cloud.g, options).critical_delay_ps;
}

double synthesized_critical_delay(const ir::graph& g, const schedule& s,
                                  const synth::synthesis_options& options) {
  double worst = 0.0;
  for (int stage = 0; stage < s.num_stages(); ++stage) {
    worst = std::max(worst, synthesized_stage_delay(g, s, stage, options));
  }
  return worst;
}

double post_synthesis_slack(const ir::graph& g, const schedule& s,
                            double clock_period_ps,
                            const synth::synthesis_options& options) {
  return clock_period_ps - synthesized_critical_delay(g, s, options);
}

}  // namespace isdc::sched
