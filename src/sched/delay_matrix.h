// The pairwise critical-path delay matrix D[n][n] at the heart of ISDC
// (paper Section III-C). D[u][v] estimates the delay of the critical
// combinational path from u to v, *including both endpoints*; D[v][v] is
// the individual delay of v; -1 marks unconnected pairs. The initial fill
// (Alg. 1 lines 1-9) uses the pre-characterized per-op delays; feedback
// updates (Alg. 1 lines 10-14) and the reformulation (Alg. 2) live in
// src/core.
//
// Change log: with track_changes(true), every set() that actually changes
// an entry records the (u, v) pair; take_changed_pairs() hands the
// accumulated (deduplicated) pairs to a consumer and resets the log. The
// incremental scheduler (scheduler_instance.h) uses this to re-emit only
// the timing constraints whose matrix entries moved since the last solve.
#ifndef ISDC_SCHED_DELAY_MATRIX_H_
#define ISDC_SCHED_DELAY_MATRIX_H_

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "ir/graph.h"

namespace isdc::sched {

class delay_matrix {
public:
  static constexpr float not_connected = -1.0f;

  /// A (u, v) matrix coordinate, as reported by the change log and by the
  /// core mutators (delay update, reformulation).
  using node_pair = std::pair<ir::node_id, ir::node_id>;

  explicit delay_matrix(std::size_t n)
      : n_(n), d_(n * n, not_connected) {}

  std::size_t size() const { return n_; }

  float get(ir::node_id u, ir::node_id v) const { return d_[index(u, v)]; }
  void set(ir::node_id u, ir::node_id v, float delay) {
    const std::size_t i = index(u, v);
    if (d_[i] == delay) {
      return;
    }
    d_[i] = delay;
    if (tracking_ && !logged_[i]) {
      logged_[i] = true;
      changed_.push_back(i);
    }
  }
  bool connected(ir::node_id u, ir::node_id v) const {
    return get(u, v) != not_connected;
  }

  /// Individual node delay D[v][v].
  float self(ir::node_id v) const { return get(v, v); }

  /// Turns the change log on or off. Turning it on (re)starts an empty
  /// log.
  void track_changes(bool enabled);
  bool tracking_changes() const { return tracking_; }

  /// The pairs whose value changed since tracking started or the last
  /// take, deduplicated and sorted; resets the log. Requires tracking.
  std::vector<node_pair> take_changed_pairs();

  /// Alg. 1 lines 1-9: D[v][v] = d(v); D[u][v] = critical path delay (sum
  /// of node delays along the worst path, both endpoints included) for
  /// connected pairs; -1 otherwise.
  static delay_matrix initial(
      const ir::graph& g,
      const std::function<double(ir::node_id)>& node_delay);

  /// Equality of the delay entries (the change-log state is bookkeeping,
  /// not part of the matrix's value).
  bool operator==(const delay_matrix& other) const {
    return n_ == other.n_ && d_ == other.d_;
  }

private:
  std::size_t index(ir::node_id u, ir::node_id v) const {
    return static_cast<std::size_t>(u) * n_ + v;
  }

  std::size_t n_ = 0;
  std::vector<float> d_;
  bool tracking_ = false;
  std::vector<bool> logged_;         ///< per-entry "already in changed_"
  std::vector<std::size_t> changed_; ///< flat indices, insertion order
};

}  // namespace isdc::sched

#endif  // ISDC_SCHED_DELAY_MATRIX_H_
