// The pairwise critical-path delay matrix D[n][n] at the heart of ISDC
// (paper Section III-C). D[u][v] estimates the delay of the critical
// combinational path from u to v, *including both endpoints*; D[v][v] is
// the individual delay of v; -1 marks unconnected pairs. The initial fill
// (Alg. 1 lines 1-9) uses the pre-characterized per-op delays; feedback
// updates (Alg. 1 lines 10-14) and the reformulation (Alg. 2) live in
// src/core.
//
// Storage is row-major, and rows are the unit the hot kernels work in:
// row()/row_mut() expose a contiguous row, set_row() replaces one row with
// a word-at-a-time diff, and log_row_changes() folds a kernel-computed
// change bitmap into the log after in-place row mutation.
//
// Change log: with track_changes(true), every mutation that actually
// changes an entry records the (u, v) pair; take_changed_pairs() hands the
// accumulated (deduplicated) pairs to a consumer and resets the log. The
// incremental scheduler (scheduler_instance.h) uses this to re-emit only
// the timing constraints whose matrix entries moved since the last solve.
// The "already logged" state is a word-addressed bitmap (one row of
// (n + 63) / 64 words per matrix row), not std::vector<bool>, so the
// per-store test is a single shift/mask and row kernels can merge whole
// words.
#ifndef ISDC_SCHED_DELAY_MATRIX_H_
#define ISDC_SCHED_DELAY_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "ir/graph.h"

namespace isdc {
class thread_pool;
}

namespace isdc::sched {

class delay_matrix {
public:
  static constexpr float not_connected = -1.0f;

  /// A (u, v) matrix coordinate, as reported by the change log and by the
  /// core mutators (delay update, reformulation).
  using node_pair = std::pair<ir::node_id, ir::node_id>;

  explicit delay_matrix(std::size_t n)
      : n_(n), words_per_row_((n + 63) / 64), d_(n * n, not_connected) {}

  std::size_t size() const { return n_; }

  /// Words in one row of a per-row bitmap (bit v of word v / 64 stands for
  /// column v), the layout log_row_changes() consumes.
  std::size_t words_per_row() const { return words_per_row_; }

  float get(ir::node_id u, ir::node_id v) const { return d_[index(u, v)]; }
  void set(ir::node_id u, ir::node_id v, float delay) {
    const std::size_t i = index(u, v);
    if (d_[i] == delay) {
      return;
    }
    d_[i] = delay;
    if (tracking_) {
      log_cell(u, v);
    }
  }
  bool connected(ir::node_id u, ir::node_id v) const {
    return get(u, v) != not_connected;
  }

  /// Individual node delay D[v][v].
  float self(ir::node_id v) const { return get(v, v); }

  /// Row u (D[u][0..n)) as a contiguous span.
  std::span<const float> row(ir::node_id u) const {
    return {d_.data() + static_cast<std::size_t>(u) * n_, n_};
  }

  /// Mutable row u. Writing through this span bypasses the change log;
  /// callers that mutate in place while tracking must report what they
  /// changed via log_row_changes() (or use set_row()).
  std::span<float> row_mut(ir::node_id u) {
    return {d_.data() + static_cast<std::size_t>(u) * n_, n_};
  }

  /// Replaces row u with `values` (size n), diffing word-spans of 64
  /// columns at a time; cells whose value actually changes are folded into
  /// the change log in bulk, without the per-cell logged test set() pays.
  /// When `changed` is non-null the changed (u, v) pairs are also appended
  /// there, ascending in v, independent of tracking.
  void set_row(ir::node_id u, std::span<const float> values,
               std::vector<node_pair>* changed = nullptr);

  /// Bulk change-log insert for kernels that mutated row u through
  /// row_mut(): bit v of `bits` (words_per_row() words) marks column v as
  /// changed. No-op when not tracking; bits past column n are ignored.
  void log_row_changes(ir::node_id u, std::span<const std::uint64_t> bits);

  /// Turns the change log on or off. Turning it on (re)starts an empty
  /// log.
  void track_changes(bool enabled);
  bool tracking_changes() const { return tracking_; }

  /// The pairs whose value changed since tracking started or the last
  /// take, deduplicated and sorted; resets the log. Requires tracking.
  std::vector<node_pair> take_changed_pairs();

  /// Alg. 1 lines 1-9: D[v][v] = d(v); D[u][v] = critical path delay (sum
  /// of node delays along the worst path, both endpoints included) for
  /// connected pairs; -1 otherwise. When `pool` is non-null the per-row
  /// longest-path DP — each row reads and writes only itself — is
  /// partitioned over it, bit-identical to the serial fill (`node_delay`
  /// is still called serially, once per node, in id order).
  static delay_matrix initial(
      const ir::graph& g,
      const std::function<double(ir::node_id)>& node_delay,
      thread_pool* pool = nullptr);

  /// Equality of the delay entries (the change-log state is bookkeeping,
  /// not part of the matrix's value).
  bool operator==(const delay_matrix& other) const {
    return n_ == other.n_ && d_ == other.d_;
  }

private:
  std::size_t index(ir::node_id u, ir::node_id v) const {
    return static_cast<std::size_t>(u) * n_ + v;
  }

  /// Marks one cell in the logged_ bitmap, appending to changed_ on the
  /// first marking. Requires tracking_.
  void log_cell(ir::node_id u, ir::node_id v) {
    std::uint64_t& word =
        logged_[static_cast<std::size_t>(u) * words_per_row_ + (v >> 6)];
    const std::uint64_t bit = 1ull << (v & 63);
    if ((word & bit) == 0) {
      word |= bit;
      changed_.push_back(index(u, v));
    }
  }

  std::size_t n_ = 0;
  std::size_t words_per_row_ = 0;
  std::vector<float> d_;
  bool tracking_ = false;
  std::vector<std::uint64_t> logged_;  ///< row-aligned "already in changed_"
  std::vector<std::size_t> changed_;   ///< flat indices, insertion order
};

}  // namespace isdc::sched

#endif  // ISDC_SCHED_DELAY_MATRIX_H_
