// The pairwise critical-path delay matrix D[n][n] at the heart of ISDC
// (paper Section III-C). D[u][v] estimates the delay of the critical
// combinational path from u to v, *including both endpoints*; D[v][v] is
// the individual delay of v; -1 marks unconnected pairs. The initial fill
// (Alg. 1 lines 1-9) uses the pre-characterized per-op delays; feedback
// updates (Alg. 1 lines 10-14) and the reformulation (Alg. 2) live in
// src/core.
#ifndef ISDC_SCHED_DELAY_MATRIX_H_
#define ISDC_SCHED_DELAY_MATRIX_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "ir/graph.h"

namespace isdc::sched {

class delay_matrix {
public:
  static constexpr float not_connected = -1.0f;

  explicit delay_matrix(std::size_t n)
      : n_(n), d_(n * n, not_connected) {}

  std::size_t size() const { return n_; }

  float get(ir::node_id u, ir::node_id v) const { return d_[index(u, v)]; }
  void set(ir::node_id u, ir::node_id v, float delay) {
    d_[index(u, v)] = delay;
  }
  bool connected(ir::node_id u, ir::node_id v) const {
    return get(u, v) != not_connected;
  }

  /// Individual node delay D[v][v].
  float self(ir::node_id v) const { return get(v, v); }

  /// Alg. 1 lines 1-9: D[v][v] = d(v); D[u][v] = critical path delay (sum
  /// of node delays along the worst path, both endpoints included) for
  /// connected pairs; -1 otherwise.
  static delay_matrix initial(
      const ir::graph& g,
      const std::function<double(ir::node_id)>& node_delay);

  bool operator==(const delay_matrix&) const = default;

private:
  std::size_t index(ir::node_id u, ir::node_id v) const {
    return static_cast<std::size_t>(u) * n_ + v;
  }

  std::size_t n_ = 0;
  std::vector<float> d_;
};

}  // namespace isdc::sched

#endif  // ISDC_SCHED_DELAY_MATRIX_H_
