#include "sched/validate.h"

#include <sstream>

namespace isdc::sched {

std::vector<std::string> validate_schedule(const ir::graph& g,
                                           const schedule& s,
                                           const delay_matrix& d,
                                           double clock_period_ps,
                                           double epsilon_ps) {
  std::vector<std::string> violations;
  const auto report = [&violations](const auto&... parts) {
    std::ostringstream os;
    (os << ... << parts);
    violations.push_back(os.str());
  };

  if (s.cycle.size() != g.num_nodes()) {
    report("schedule covers ", s.cycle.size(), " of ", g.num_nodes(),
           " nodes");
    return violations;
  }
  for (ir::node_id v = 0; v < g.num_nodes(); ++v) {
    if (s.cycle[v] < 0) {
      report("node ", v, " has negative stage ", s.cycle[v]);
    }
    if (g.at(v).op == ir::opcode::input && s.cycle[v] != 0) {
      report("input ", v, " scheduled at stage ", s.cycle[v],
             " instead of 0");
    }
    for (ir::node_id p : g.at(v).operands) {
      if (s.cycle[p] > s.cycle[v]) {
        report("node ", v, " at stage ", s.cycle[v],
               " precedes its operand ", p, " at stage ", s.cycle[p]);
      }
    }
  }
  // Intra-stage timing windows.
  for (ir::node_id v = 0; v < g.num_nodes(); ++v) {
    for (ir::node_id u = 0; u <= v; ++u) {
      if (s.cycle[u] != s.cycle[v] ||
          g.at(u).op == ir::opcode::constant) {
        continue;
      }
      const float delay = d.get(u, v);
      if (delay != delay_matrix::not_connected &&
          delay > clock_period_ps + epsilon_ps) {
        report("stage ", s.cycle[v], " path ", u, " -> ", v, " takes ",
               delay, " ps > ", clock_period_ps, " ps");
      }
    }
  }
  return violations;
}

}  // namespace isdc::sched
