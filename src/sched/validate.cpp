#include "sched/validate.h"

#include <cstdint>
#include <sstream>

#include "ir/adjacency.h"

namespace isdc::sched {

namespace {

/// Appends a formatted violation; returns false once the cap is reached
/// (with a final marker line) so scans can stop early.
template <typename... Parts>
bool report(std::vector<std::string>& violations, std::size_t max_violations,
            const Parts&... parts) {
  if (violations.size() >= max_violations) {
    if (violations.size() == max_violations) {
      violations.push_back("... further violations suppressed");
    }
    return false;
  }
  std::ostringstream os;
  (os << ... << parts);
  violations.push_back(os.str());
  return true;
}

}  // namespace

std::vector<std::string> validate_schedule(const ir::graph& g,
                                           const schedule& s,
                                           const delay_matrix& d,
                                           double clock_period_ps,
                                           double epsilon_ps) {
  std::vector<std::string> violations;
  const auto add = [&violations](const auto&... parts) {
    report(violations, static_cast<std::size_t>(-1), parts...);
  };

  if (s.cycle.size() != g.num_nodes()) {
    add("schedule covers ", s.cycle.size(), " of ", g.num_nodes(), " nodes");
    return violations;
  }
  for (ir::node_id v = 0; v < g.num_nodes(); ++v) {
    if (s.cycle[v] < 0) {
      add("node ", v, " has negative stage ", s.cycle[v]);
    }
    if (g.at(v).op == ir::opcode::input && s.cycle[v] != 0) {
      add("input ", v, " scheduled at stage ", s.cycle[v], " instead of 0");
    }
    for (ir::node_id p : g.at(v).operands) {
      if (s.cycle[p] > s.cycle[v]) {
        add("node ", v, " at stage ", s.cycle[v], " precedes its operand ",
            p, " at stage ", s.cycle[p]);
      }
    }
  }
  // Intra-stage timing windows.
  for (ir::node_id v = 0; v < g.num_nodes(); ++v) {
    for (ir::node_id u = 0; u <= v; ++u) {
      if (s.cycle[u] != s.cycle[v] ||
          g.at(u).op == ir::opcode::constant) {
        continue;
      }
      const float delay = d.get(u, v);
      if (delay != delay_matrix::not_connected &&
          delay > clock_period_ps + epsilon_ps) {
        add("stage ", s.cycle[v], " path ", u, " -> ", v, " takes ", delay,
            " ps > ", clock_period_ps, " ps");
      }
    }
  }
  return violations;
}

std::vector<std::string> validate_matrix(const ir::graph& g,
                                         const delay_matrix& d,
                                         std::size_t max_violations) {
  std::vector<std::string> violations;
  const std::size_t n = g.num_nodes();
  if (d.size() != n) {
    report(violations, max_violations, "matrix is ", d.size(), "x", d.size(),
           " for a ", n, "-node graph");
    return violations;
  }

  // Operand-edge reachability as per-target bitsets: bit u of row v means
  // "u reaches v". Ids are topological, so one forward sweep suffices.
  const std::size_t words = (n + 63) / 64;
  std::vector<std::uint64_t> reach(n * words, 0);
  const ir::flat_adjacency& adj = g.flat();
  for (ir::node_id v = 0; v < n; ++v) {
    std::uint64_t* row = reach.data() + static_cast<std::size_t>(v) * words;
    for (const ir::node_id p : adj.operands(v)) {
      const std::uint64_t* from =
          reach.data() + static_cast<std::size_t>(p) * words;
      for (std::size_t k = 0; k < words; ++k) {
        row[k] |= from[k];
      }
      row[p >> 6] |= 1ull << (p & 63);
    }
  }

  for (ir::node_id v = 0; v < n; ++v) {
    const float self = d.self(v);
    if (self == delay_matrix::not_connected || self < 0.0f) {
      if (!report(violations, max_violations, "node ", v,
                  " has invalid self delay ", self)) {
        return violations;
      }
    }
    const std::uint64_t* row =
        reach.data() + static_cast<std::size_t>(v) * words;
    for (ir::node_id u = 0; u < n; ++u) {
      if (u == v) {
        continue;
      }
      const float stored = d.get(u, v);
      if (u > v) {
        if (stored != delay_matrix::not_connected &&
            !report(violations, max_violations, "below-diagonal entry D[", u,
                    "][", v, "] = ", stored, " (ids are topological)")) {
          return violations;
        }
        continue;
      }
      const bool reachable = (row[u >> 6] >> (u & 63) & 1) != 0;
      if (reachable && stored == delay_matrix::not_connected) {
        if (!report(violations, max_violations, "connected pair ", u, " -> ",
                    v, " marked not_connected")) {
          return violations;
        }
      } else if (!reachable && stored != delay_matrix::not_connected) {
        if (!report(violations, max_violations, "unconnected pair ", u,
                    " -> ", v, " has delay ", stored)) {
          return violations;
        }
      } else if (reachable && stored < 0.0f) {
        if (!report(violations, max_violations, "pair ", u, " -> ", v,
                    " has negative delay ", stored)) {
          return violations;
        }
      }
    }
  }
  return violations;
}

std::vector<std::string> validate_matrix_monotonic(
    const delay_matrix& before, const delay_matrix& after, double epsilon_ps,
    std::size_t max_violations) {
  std::vector<std::string> violations;
  if (before.size() != after.size()) {
    report(violations, max_violations, "matrix size changed from ",
           before.size(), " to ", after.size());
    return violations;
  }
  const std::size_t n = before.size();
  for (ir::node_id u = 0; u < n; ++u) {
    const auto prev = before.row(u);
    const auto cur = after.row(u);
    for (ir::node_id v = 0; v < n; ++v) {
      const bool was = prev[v] != delay_matrix::not_connected;
      const bool is = cur[v] != delay_matrix::not_connected;
      if (was != is) {
        if (!report(violations, max_violations, "pair ", u, " -> ", v,
                    " connectivity flipped from ", prev[v], " to ", cur[v])) {
          return violations;
        }
        continue;
      }
      if (was && cur[v] > prev[v] + epsilon_ps) {
        if (!report(violations, max_violations, "pair ", u, " -> ", v,
                    " delay rose from ", prev[v], " to ", cur[v],
                    " (feedback must only lower estimates)")) {
          return violations;
        }
      }
    }
  }
  return violations;
}

}  // namespace isdc::sched
