#include "backend/resilient.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "support/check.h"
#include "support/failpoint.h"
#include "telemetry/metrics.h"

namespace isdc::backend {

fallback_tool::fallback_tool(
    std::vector<const core::downstream_tool*> chain) {
  ISDC_CHECK(!chain.empty(), "fallback_tool needs at least one link");
  for (const core::downstream_tool* tool : chain) {
    ISDC_CHECK(tool != nullptr, "fallback_tool link must not be null");
    auto l = std::make_unique<link>();
    l->tool = tool;
    chain_.push_back(std::move(l));
  }
}

double fallback_tool::subgraph_delay_ps(const ir::graph& sub) const {
  std::exception_ptr last;
  for (const auto& l : chain_) {
    ++l->calls;
    try {
      if (failpoint::maybe_fail("backend.fallback.link") !=
          failpoint::kind::none) {
        throw std::runtime_error(
            "fallback link: failpoint: injected link failure");
      }
      return l->tool->subgraph_delay_ps(sub);
    } catch (...) {
      ++l->failures;
      // A link failure means the chain is about to fail over to the next
      // link (or exhaust): the registry counts failovers, per-link detail
      // stays in stats().
      static telemetry::counter& failovers =
          telemetry::get_counter("backend.fallback.failovers");
      failovers.add();
      last = std::current_exception();
    }
  }
  std::rethrow_exception(last);
}

std::string fallback_tool::name() const {
  std::ostringstream out;
  out << "fallback(";
  for (std::size_t i = 0; i < chain_.size(); ++i) {
    out << (i > 0 ? "," : "") << chain_[i]->tool->name();
  }
  out << ")";
  return out.str();
}

std::vector<fallback_tool::link_counters> fallback_tool::stats() const {
  std::vector<link_counters> out;
  out.reserve(chain_.size());
  for (const auto& l : chain_) {
    out.push_back({l->calls.load(), l->failures.load()});
  }
  return out;
}

circuit_breaker_tool::circuit_breaker_tool(const core::downstream_tool& child,
                                           circuit_breaker_options options)
    : child_(child), options_(options) {
  options_.window = std::max(1, options_.window);
  options_.threshold = std::clamp(options_.threshold, 0.0, 1.0);
  options_.min_calls = std::clamp(options_.min_calls, 1, options_.window);
  options_.cooldown_ms = std::max(0.0, options_.cooldown_ms);
  options_.half_open_probes = std::max(1, options_.half_open_probes);
  ring_.assign(static_cast<std::size_t>(options_.window), 0);
}

double circuit_breaker_tool::subgraph_delay_ps(const ir::graph& sub) const {
  bool probe = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (state_ == breaker_state::open) {
      if (std::chrono::steady_clock::now() >= reopen_at_) {
        state_ = breaker_state::half_open;
        probes_in_flight_ = 0;
      } else {
        ++counters_.short_circuits;
        telemetry::get_counter("backend.breaker.short_circuits").add();
        throw circuit_open_error(
            "circuit breaker open for '" + child_.name() +
            "': recent failure rate over threshold, cooling down");
      }
    }
    if (state_ == breaker_state::half_open) {
      if (probes_in_flight_ >= options_.half_open_probes) {
        ++counters_.short_circuits;
        telemetry::get_counter("backend.breaker.short_circuits").add();
        throw circuit_open_error("circuit breaker half-open for '" +
                                 child_.name() +
                                 "': probe already in flight");
      }
      ++probes_in_flight_;
      probe = true;
    }
    ++counters_.calls;
  }
  try {
    if (failpoint::maybe_fail("backend.breaker.call") !=
        failpoint::kind::none) {
      throw std::runtime_error(
          "circuit breaker: failpoint: injected child failure");
    }
    const double delay_ps = child_.subgraph_delay_ps(sub);
    record(probe, /*failure=*/false);
    return delay_ps;
  } catch (...) {
    record(probe, /*failure=*/true);
    throw;
  }
}

void circuit_breaker_tool::record(bool probe, bool failure) const {
  std::lock_guard<std::mutex> lk(mu_);
  if (failure) {
    ++counters_.failures;
  }
  const auto reset_ring = [this] {
    std::fill(ring_.begin(), ring_.end(), 0);
    ring_pos_ = 0;
    ring_count_ = 0;
    ring_failures_ = 0;
  };
  if (probe) {
    if (state_ != breaker_state::half_open) {
      return;  // a concurrent probe already resolved the transition
    }
    --probes_in_flight_;
    if (failure) {
      state_ = breaker_state::open;
      reopen_at_ = std::chrono::steady_clock::now() +
                   std::chrono::duration_cast<
                       std::chrono::steady_clock::duration>(
                       std::chrono::duration<double, std::milli>(
                           options_.cooldown_ms));
      ++counters_.reopens;
      telemetry::get_counter("backend.breaker.reopens").add();
    } else {
      state_ = breaker_state::closed;
      ++counters_.closes;
      telemetry::get_counter("backend.breaker.closes").add();
    }
    reset_ring();
    return;
  }
  if (state_ != breaker_state::closed) {
    // A pre-transition call resolving late; the window was reset and this
    // outcome belongs to the closed era that already ended.
    return;
  }
  if (ring_count_ == options_.window) {
    ring_failures_ -= ring_[static_cast<std::size_t>(ring_pos_)];
  } else {
    ++ring_count_;
  }
  ring_[static_cast<std::size_t>(ring_pos_)] = failure ? 1 : 0;
  ring_failures_ += failure ? 1 : 0;
  ring_pos_ = (ring_pos_ + 1) % options_.window;
  if (ring_count_ >= options_.min_calls &&
      static_cast<double>(ring_failures_) >=
          options_.threshold * static_cast<double>(ring_count_)) {
    state_ = breaker_state::open;
    reopen_at_ =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(options_.cooldown_ms));
    ++counters_.opens;
    telemetry::get_counter("backend.breaker.opens").add();
    reset_ring();
  }
}

circuit_breaker_tool::breaker_state circuit_breaker_tool::state() const {
  std::lock_guard<std::mutex> lk(mu_);
  return state_;
}

circuit_breaker_tool::counters circuit_breaker_tool::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return counters_;
}

std::string circuit_breaker_tool::name() const {
  std::ostringstream out;
  out << "breaker(" << child_.name() << ",w=" << options_.window
      << ",th=" << options_.threshold << ",cd=" << options_.cooldown_ms
      << "ms)";
  return out.str();
}

calibrated_tool::calibrated_tool(const core::downstream_tool& proxy,
                                 const core::downstream_tool& reference,
                                 int sample_every, int min_samples)
    : proxy_(proxy), reference_(reference),
      sample_every_(std::max(1, sample_every)),
      min_samples_(std::max(2, min_samples)) {}

double calibrated_tool::subgraph_delay_ps(const ir::graph& sub) const {
  const std::uint64_t n = proxy_calls_.fetch_add(1);
  const double x = proxy_.subgraph_delay_ps(sub);

  if (n % static_cast<std::uint64_t>(sample_every_) == 0) {
    ++reference_calls_;
    try {
      const double y = reference_.subgraph_delay_ps(sub);
      std::lock_guard<std::mutex> lk(mu_);
      ++n_;
      sum_x_ += x;
      sum_y_ += y;
      sum_xx_ += x * x;
      sum_xy_ += x * y;
    } catch (...) {
      // The reference backend being down must not sink the call; the
      // current fit (or the raw proxy) still answers.
      ++reference_failures_;
    }
  }

  const fit f = current_fit();
  return std::max(0.0, f.slope * x + f.offset);
}

calibrated_tool::fit calibrated_tool::current_fit() const {
  std::lock_guard<std::mutex> lk(mu_);
  fit f;
  f.samples = n_;
  if (n_ < static_cast<std::size_t>(min_samples_)) {
    return f;  // identity until enough reference points exist
  }
  const double n = static_cast<double>(n_);
  const double var = sum_xx_ - sum_x_ * sum_x_ / n;
  if (var <= 1e-9) {
    // Degenerate sample (all proxy answers equal): the best constant
    // predictor is the reference mean.
    f.slope = 0.0;
    f.offset = sum_y_ / n;
    return f;
  }
  f.slope = (sum_xy_ - sum_x_ * sum_y_ / n) / var;
  f.offset = (sum_y_ - f.slope * sum_x_) / n;
  return f;
}

std::string calibrated_tool::name() const {
  std::ostringstream out;
  out << "calibrated(" << proxy_.name() << "->" << reference_.name()
      << ",every=" << sample_every_ << ")";
  return out.str();
}

}  // namespace isdc::backend
