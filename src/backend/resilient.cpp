#include "backend/resilient.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "support/check.h"

namespace isdc::backend {

fallback_tool::fallback_tool(
    std::vector<const core::downstream_tool*> chain) {
  ISDC_CHECK(!chain.empty(), "fallback_tool needs at least one link");
  for (const core::downstream_tool* tool : chain) {
    ISDC_CHECK(tool != nullptr, "fallback_tool link must not be null");
    auto l = std::make_unique<link>();
    l->tool = tool;
    chain_.push_back(std::move(l));
  }
}

double fallback_tool::subgraph_delay_ps(const ir::graph& sub) const {
  std::exception_ptr last;
  for (const auto& l : chain_) {
    ++l->calls;
    try {
      return l->tool->subgraph_delay_ps(sub);
    } catch (...) {
      ++l->failures;
      last = std::current_exception();
    }
  }
  std::rethrow_exception(last);
}

std::string fallback_tool::name() const {
  std::ostringstream out;
  out << "fallback(";
  for (std::size_t i = 0; i < chain_.size(); ++i) {
    out << (i > 0 ? "," : "") << chain_[i]->tool->name();
  }
  out << ")";
  return out.str();
}

std::vector<fallback_tool::link_counters> fallback_tool::stats() const {
  std::vector<link_counters> out;
  out.reserve(chain_.size());
  for (const auto& l : chain_) {
    out.push_back({l->calls.load(), l->failures.load()});
  }
  return out;
}

calibrated_tool::calibrated_tool(const core::downstream_tool& proxy,
                                 const core::downstream_tool& reference,
                                 int sample_every, int min_samples)
    : proxy_(proxy), reference_(reference),
      sample_every_(std::max(1, sample_every)),
      min_samples_(std::max(2, min_samples)) {}

double calibrated_tool::subgraph_delay_ps(const ir::graph& sub) const {
  const std::uint64_t n = proxy_calls_.fetch_add(1);
  const double x = proxy_.subgraph_delay_ps(sub);

  if (n % static_cast<std::uint64_t>(sample_every_) == 0) {
    ++reference_calls_;
    try {
      const double y = reference_.subgraph_delay_ps(sub);
      std::lock_guard<std::mutex> lk(mu_);
      ++n_;
      sum_x_ += x;
      sum_y_ += y;
      sum_xx_ += x * x;
      sum_xy_ += x * y;
    } catch (...) {
      // The reference backend being down must not sink the call; the
      // current fit (or the raw proxy) still answers.
      ++reference_failures_;
    }
  }

  const fit f = current_fit();
  return std::max(0.0, f.slope * x + f.offset);
}

calibrated_tool::fit calibrated_tool::current_fit() const {
  std::lock_guard<std::mutex> lk(mu_);
  fit f;
  f.samples = n_;
  if (n_ < static_cast<std::size_t>(min_samples_)) {
    return f;  // identity until enough reference points exist
  }
  const double n = static_cast<double>(n_);
  const double var = sum_xx_ - sum_x_ * sum_x_ / n;
  if (var <= 1e-9) {
    // Degenerate sample (all proxy answers equal): the best constant
    // predictor is the reference mean.
    f.slope = 0.0;
    f.offset = sum_y_ / n;
    return f;
  }
  f.slope = (sum_xy_ - sum_x_ * sum_y_ / n) / var;
  f.offset = (sum_y_ - f.slope * sum_x_) / n;
  return f;
}

std::string calibrated_tool::name() const {
  std::ostringstream out;
  out << "calibrated(" << proxy_.name() << "->" << reference_.name()
      << ",every=" << sample_every_ << ")";
  return out.str();
}

}  // namespace isdc::backend
