// Out-of-process downstream backend: a pool of persistent worker
// processes spoken to over pipes with a newline-delimited request/response
// protocol. This is the shape a real Yosys+OpenSTA (or vendor-flow)
// integration takes — the expensive oracle lives behind a process
// boundary, and the async/fleet machinery hides its latency — while the
// reference worker (tools/isdc_delay_worker) wraps the built-in flows
// behind the same protocol so everything is testable without external
// tools installed.
//
// Protocol (version 1), one line per message:
//   worker -> client:  ready isdc-delay-worker 1          (once, at spawn)
//   client -> worker:  eval <one-line text netlist>       (netlist.h,
//                                                          ';'-separated)
//   worker -> client:  ok <critical delay in ps, %.17g>
//                  or  err <single-line message>
//   client -> worker:  quit                               (then stdin EOF)
// Any other worker output is a protocol error. A real backend is a script
// that speaks these five lines; see README "Downstream backends".
//
// Resilience: every call has a deadline; a worker that times out, dies or
// babbles is SIGKILLed and respawned, and the request is retried on the
// fresh worker (bounded attempts). Deterministic worker-reported failures
// ("err ...") and protocol garbage are NOT retried — they would fail
// again — and surface as exceptions (compose with fallback_tool to
// degrade gracefully). All counters are atomic; calls are thread-safe and
// block when every worker is busy.
#ifndef ISDC_BACKEND_SUBPROCESS_TOOL_H_
#define ISDC_BACKEND_SUBPROCESS_TOOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/downstream.h"

namespace isdc::backend {

struct subprocess_options {
  /// Worker command line, split on spaces into argv (no shell quoting;
  /// argv[0] is resolved through PATH when it contains no '/').
  std::string command;
  /// Persistent worker processes. Calls beyond this many block until a
  /// worker frees up, so size it like an I/O pool (the engine's async
  /// dispatch width, not the host core count).
  int workers = 2;
  /// Per-attempt deadline, applied to the request write and the response
  /// read separately (and, at spawn, to the ready handshake), so neither
  /// a wedged reader nor a silent worker can hang a scheduler thread.
  /// 0 disables the deadline.
  int timeout_ms = 10000;
  /// Total tries per call: the first send plus retries on fresh workers
  /// after a crash or timeout.
  int max_attempts = 3;
  /// Sleep before the first retry (exponential thereafter, deterministic
  /// jitter — see support/retry.h). Small by default: pool retries are
  /// usually request-local (one worker died), so the main point is to not
  /// spin when the failure is environmental. 0 restores back-to-back
  /// retries.
  double backoff_ms = 5.0;
  double backoff_max_ms = 250.0;
};

class subprocess_tool final : public core::downstream_tool {
public:
  /// One live worker process; defined (and only touched) in the .cpp.
  struct worker;

  /// Spawns the pool eagerly and waits for every worker's ready line, so
  /// a bad command fails here with a descriptive error instead of inside
  /// the first scheduling iteration.
  explicit subprocess_tool(subprocess_options options);

  /// Sends quit, gives workers a grace period, then SIGKILLs stragglers.
  ~subprocess_tool() override;

  subprocess_tool(const subprocess_tool&) = delete;
  subprocess_tool& operator=(const subprocess_tool&) = delete;

  double subgraph_delay_ps(const ir::graph& sub) const override;

  /// "subprocess(<command>,w=<workers>,t=<timeout>ms)" — the command is
  /// part of the identity, so two pools wrapping different external flows
  /// never share evaluation-cache entries.
  std::string name() const override;

  struct counters {
    std::uint64_t calls = 0;            ///< subgraph_delay_ps invocations
    std::uint64_t restarts = 0;         ///< kill + respawn events
    std::uint64_t timeouts = 0;         ///< attempts past the deadline
    std::uint64_t crashes = 0;          ///< worker EOF / write failures
    std::uint64_t retries = 0;          ///< requests re-sent after a failure
    std::uint64_t protocol_errors = 0;  ///< unparseable worker responses
  };
  counters stats() const;

  /// Respawns every dead slot now (acquire() normally heals lazily) and
  /// returns the live-worker count, == options().workers on success.
  /// Throws if a respawn fails. Chaos tests call this after a fault soak
  /// to assert the pool recovered fully.
  int heal() const;

  /// Workers currently alive (idle or checked out).
  int live_workers() const;

  const subprocess_options& options() const { return options_; }

private:
  /// Blocks until a worker slot is free and takes ownership of it.
  std::unique_ptr<worker> acquire() const;
  void release(std::unique_ptr<worker> w) const;

  subprocess_options options_;
  mutable std::mutex mu_;
  mutable std::condition_variable slot_free_;
  mutable std::vector<std::unique_ptr<worker>> idle_;
  mutable int live_slots_ = 0;  ///< workers either idle or checked out

  mutable std::atomic<std::uint64_t> calls_{0};
  mutable std::atomic<std::uint64_t> restarts_{0};
  mutable std::atomic<std::uint64_t> timeouts_{0};
  mutable std::atomic<std::uint64_t> crashes_{0};
  mutable std::atomic<std::uint64_t> retries_{0};
  mutable std::atomic<std::uint64_t> protocol_errors_{0};
};

}  // namespace isdc::backend

#endif  // ISDC_BACKEND_SUBPROCESS_TOOL_H_
