#include "backend/netlist.h"

#include <array>
#include <cctype>
#include <charconv>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "ir/opcode.h"
#include "ir/verify.h"

namespace isdc::backend {

namespace {

constexpr std::array<ir::opcode, 23> all_opcodes = {
    ir::opcode::input, ir::opcode::constant, ir::opcode::add,
    ir::opcode::sub,   ir::opcode::neg,      ir::opcode::mul,
    ir::opcode::band,  ir::opcode::bor,      ir::opcode::bxor,
    ir::opcode::bnot,  ir::opcode::shl,      ir::opcode::shr,
    ir::opcode::rotl,  ir::opcode::rotr,     ir::opcode::eq,
    ir::opcode::ne,    ir::opcode::ult,      ir::opcode::ule,
    ir::opcode::mux,   ir::opcode::concat,   ir::opcode::slice,
    ir::opcode::zext,  ir::opcode::sext};

[[noreturn]] void parse_error(std::size_t line_no, const std::string& what) {
  throw std::runtime_error("netlist text parse error (line " +
                           std::to_string(line_no + 1) + "): " + what);
}

std::string sanitize_identifier(std::string_view name, std::string_view def) {
  std::string out;
  for (const char c : name) {
    out += (std::isalnum(static_cast<unsigned char>(c)) || c == '_') ? c : '_';
  }
  if (out.empty()) {
    return std::string(def);
  }
  if (std::isdigit(static_cast<unsigned char>(out.front()))) {
    // (append instead of prepend-via-insert: GCC 12's -Wrestrict false
    // positive fires on the string-insert path under -O2.)
    std::string prefixed = "isdc_";
    prefixed.append(out);
    return prefixed;
  }
  return out;
}

std::string verilog_constant(std::uint32_t width, std::uint64_t value) {
  std::ostringstream out;
  out << width << "'h" << std::hex << value;
  return out.str();
}

std::string verilog_rhs(const ir::graph& g, ir::node_id id,
                        const std::vector<std::string>& names) {
  const ir::node& n = g.at(id);
  const auto op = [&](std::size_t i) { return names[n.operands[i]]; };
  const std::uint32_t w = n.width;
  std::ostringstream out;
  switch (n.op) {
    case ir::opcode::input:
      break;  // ports have no assign
    case ir::opcode::constant:
      out << verilog_constant(w, n.value);
      break;
    case ir::opcode::add: out << op(0) << " + " << op(1); break;
    case ir::opcode::sub: out << op(0) << " - " << op(1); break;
    case ir::opcode::neg: out << "-" << op(0); break;
    case ir::opcode::mul: out << op(0) << " * " << op(1); break;
    case ir::opcode::band: out << op(0) << " & " << op(1); break;
    case ir::opcode::bor: out << op(0) << " | " << op(1); break;
    case ir::opcode::bxor: out << op(0) << " ^ " << op(1); break;
    case ir::opcode::bnot: out << "~" << op(0); break;
    case ir::opcode::shl: out << op(0) << " << " << op(1); break;
    case ir::opcode::shr: out << op(0) << " >> " << op(1); break;
    case ir::opcode::rotl:
      // (b % w) == 0 degenerates correctly: a << 0 is a and the over-wide
      // right shift contributes zero.
      out << "(" << op(0) << " << (" << op(1) << " % " << w << ")) | ("
          << op(0) << " >> (" << w << " - (" << op(1) << " % " << w << ")))";
      break;
    case ir::opcode::rotr:
      out << "(" << op(0) << " >> (" << op(1) << " % " << w << ")) | ("
          << op(0) << " << (" << w << " - (" << op(1) << " % " << w << ")))";
      break;
    case ir::opcode::eq: out << op(0) << " == " << op(1); break;
    case ir::opcode::ne: out << op(0) << " != " << op(1); break;
    case ir::opcode::ult: out << op(0) << " < " << op(1); break;
    case ir::opcode::ule: out << op(0) << " <= " << op(1); break;
    case ir::opcode::mux:
      out << op(0) << " ? " << op(1) << " : " << op(2);
      break;
    case ir::opcode::concat:
      out << "{" << op(0) << ", " << op(1) << "}";
      break;
    case ir::opcode::slice:
      out << op(0) << "[" << (n.value + w - 1) << ":" << n.value << "]";
      break;
    case ir::opcode::zext: {
      const std::uint32_t win = g.width(n.operands[0]);
      if (win == w) {
        out << op(0);
      } else {
        out << "{{" << (w - win) << "{1'b0}}, " << op(0) << "}";
      }
      break;
    }
    case ir::opcode::sext: {
      const std::uint32_t win = g.width(n.operands[0]);
      if (win == w) {
        out << op(0);
      } else {
        out << "{{" << (w - win) << "{" << op(0) << "[" << (win - 1)
            << "]}}, " << op(0) << "}";
      }
      break;
    }
  }
  return out.str();
}

}  // namespace

std::string to_verilog(const ir::graph& g, const verilog_options& options) {
  const std::string module =
      options.module_name.empty()
          ? sanitize_identifier(g.name(), "isdc_netlist")
          : options.module_name;

  // Port-position names for inputs; every non-port node gets a wire.
  // (Built via ostringstream, not string concatenation: GCC 12's
  // -Wrestrict false positive, PR105329, fires on the inlined
  // basic_string replace/insert paths under -O2.)
  const auto indexed = [](const char* prefix, std::uint64_t n) {
    std::ostringstream name;
    name << prefix << n;
    return name.str();
  };
  std::vector<std::string> names(g.num_nodes());
  for (std::size_t k = 0; k < g.inputs().size(); ++k) {
    names[g.inputs()[k]] = indexed("pi", k);
  }
  for (ir::node_id id = 0; id < g.num_nodes(); ++id) {
    if (names[id].empty()) {
      names[id] = indexed("n", id);
    }
  }

  std::ostringstream out;
  out << "// generated by isdc backend::to_verilog (graph: " << g.name()
      << ")\n";
  out << "module " << module << "(\n";
  std::size_t remaining = g.inputs().size() + g.outputs().size();
  for (std::size_t k = 0; k < g.inputs().size(); ++k) {
    const ir::node_id id = g.inputs()[k];
    out << "  input wire [" << (g.width(id) - 1) << ":0] " << names[id]
        << (--remaining > 0 ? "," : "");
    if (!g.at(id).name.empty()) {
      out << "  // " << sanitize_identifier(g.at(id).name, "unnamed");
    }
    out << "\n";
  }
  for (std::size_t k = 0; k < g.outputs().size(); ++k) {
    const ir::node_id id = g.outputs()[k];
    out << "  output wire [" << (g.width(id) - 1) << ":0] po" << k
        << (--remaining > 0 ? "," : "");
    if (!g.at(id).name.empty()) {
      out << "  // " << sanitize_identifier(g.at(id).name, "unnamed");
    }
    out << "\n";
  }
  out << ");\n";

  for (ir::node_id id = 0; id < g.num_nodes(); ++id) {
    const ir::node& n = g.at(id);
    if (n.op == ir::opcode::input) {
      continue;
    }
    out << "  wire [" << (n.width - 1) << ":0] " << names[id] << ";\n";
    out << "  assign " << names[id] << " = " << verilog_rhs(g, id, names)
        << ";\n";
  }
  for (std::size_t k = 0; k < g.outputs().size(); ++k) {
    out << "  assign po" << k << " = " << names[g.outputs()[k]] << ";\n";
  }
  out << "endmodule\n";
  return out.str();
}

std::string to_text(const ir::graph& g, char sep) {
  std::ostringstream out;
  out << "isdc-graph " << text_format_version << sep;
  out << "name " << sanitize_identifier(g.name(), "g") << sep;
  for (const ir::node& n : g.nodes()) {
    out << "node " << ir::opcode_name(n.op) << " " << n.width << " "
        << n.value;
    for (const ir::node_id p : n.operands) {
      out << " " << p;
    }
    out << sep;
  }
  out << "out";
  for (const ir::node_id id : g.outputs()) {
    out << " " << id;
  }
  out << sep << "end" << sep;
  return out.str();
}

namespace {

std::vector<std::string_view> split(std::string_view text, char a, char b) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == a || text[i] == b) {
      std::string_view piece = text.substr(start, i - start);
      while (!piece.empty() && (piece.back() == '\r' || piece.back() == ' ')) {
        piece.remove_suffix(1);
      }
      while (!piece.empty() && piece.front() == ' ') {
        piece.remove_prefix(1);
      }
      if (!piece.empty()) {
        out.push_back(piece);
      }
      start = i + 1;
    }
  }
  return out;
}

std::uint64_t parse_u64(std::string_view token, std::size_t line_no,
                        const char* what) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    parse_error(line_no, std::string("bad ") + what + " '" +
                             std::string(token) + "'");
  }
  return value;
}

ir::opcode parse_opcode(std::string_view token, std::size_t line_no) {
  for (const ir::opcode op : all_opcodes) {
    if (ir::opcode_name(op) == token) {
      return op;
    }
  }
  parse_error(line_no, "unknown opcode '" + std::string(token) + "'");
}

}  // namespace

ir::graph from_text(std::string_view text) {
  const std::vector<std::string_view> lines = split(text, '\n', ';');
  if (lines.empty()) {
    throw std::runtime_error("netlist text parse error: empty input");
  }

  std::size_t i = 0;
  {
    const auto header = split(lines[0], ' ', ' ');
    if (header.size() != 2 || header[0] != "isdc-graph") {
      parse_error(0, "expected 'isdc-graph <version>' header");
    }
    const std::uint64_t version = parse_u64(header[1], 0, "version");
    if (version != static_cast<std::uint64_t>(text_format_version)) {
      parse_error(0, "unsupported format version " + std::to_string(version) +
                         " (this build speaks " +
                         std::to_string(text_format_version) + ")");
    }
    ++i;
  }

  std::string name = "g";
  if (i < lines.size()) {
    const auto tokens = split(lines[i], ' ', ' ');
    if (!tokens.empty() && tokens[0] == "name") {
      if (tokens.size() != 2) {
        parse_error(i, "expected 'name <identifier>'");
      }
      name = std::string(tokens[1]);
      ++i;
    }
  }

  ir::graph g(name);
  bool saw_out = false;
  bool saw_end = false;
  for (; i < lines.size(); ++i) {
    const auto tokens = split(lines[i], ' ', ' ');
    if (tokens[0] == "node") {
      if (saw_out) {
        parse_error(i, "node line after the out line");
      }
      if (tokens.size() < 4) {
        parse_error(i, "expected 'node <opcode> <width> <value> <operands>'");
      }
      const ir::opcode op = parse_opcode(tokens[1], i);
      const std::uint64_t width = parse_u64(tokens[2], i, "width");
      const std::uint64_t value = parse_u64(tokens[3], i, "value");
      std::vector<ir::node_id> operands;
      for (std::size_t t = 4; t < tokens.size(); ++t) {
        const std::uint64_t p = parse_u64(tokens[t], i, "operand id");
        if (p >= g.num_nodes()) {
          parse_error(i, "operand " + std::to_string(p) +
                             " does not precede node " +
                             std::to_string(g.num_nodes()));
        }
        operands.push_back(static_cast<ir::node_id>(p));
      }
      if (static_cast<int>(operands.size()) != ir::opcode_arity(op)) {
        parse_error(i, std::string("opcode '") + std::string(tokens[1]) +
                           "' takes " + std::to_string(ir::opcode_arity(op)) +
                           " operand(s), got " +
                           std::to_string(operands.size()));
      }
      if (width == 0 || width > 64) {
        parse_error(i, "width " + std::to_string(width) +
                           " outside the IR's 1..64 range");
      }
      try {
        g.add_node(op, static_cast<std::uint32_t>(width),
                   std::move(operands), value);
      } catch (const std::exception& e) {
        parse_error(i, e.what());
      }
    } else if (tokens[0] == "out") {
      if (saw_out) {
        parse_error(i, "duplicate out line");
      }
      saw_out = true;
      for (std::size_t t = 1; t < tokens.size(); ++t) {
        const std::uint64_t id = parse_u64(tokens[t], i, "output id");
        if (id >= g.num_nodes()) {
          parse_error(i, "output id " + std::to_string(id) +
                             " out of range");
        }
        g.mark_output(static_cast<ir::node_id>(id));
      }
    } else if (tokens[0] == "end") {
      saw_end = true;
      if (i + 1 != lines.size()) {
        parse_error(i + 1, "trailing content after 'end'");
      }
      break;
    } else {
      parse_error(i, "unknown directive '" + std::string(tokens[0]) + "'");
    }
  }
  if (!saw_out || !saw_end) {
    throw std::runtime_error(
        "netlist text parse error: missing 'out'/'end' terminator");
  }
  const std::string violation = ir::verify(g);
  if (!violation.empty()) {
    throw std::runtime_error("netlist text parse error: rebuilt graph is "
                             "malformed: " + violation);
  }
  return g;
}

}  // namespace isdc::backend
