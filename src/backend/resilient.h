// Resilient downstream-tool composition.
//
// fallback_tool — primary backend with an ordered fallback chain: a link
//     that throws (subprocess deadline, dead remote service, worker error)
//     hands the same subgraph to the next link, so the scheduling loop
//     degrades to cheaper feedback instead of dying. The canonical stack
//     is subprocess STA falling back to the AIG-depth proxy.
//
// circuit_breaker_tool — failure-rate circuit breaker around one child:
//     while too many recent calls failed, the circuit is *open* and calls
//     throw circuit_open_error immediately instead of paying the child's
//     per-call deadline; after a cool-down a half-open probe tests the
//     child, closing the circuit on success. Wrap a subprocess/remote link
//     in a breaker inside a fallback chain and a dead external tool costs
//     one window of deadlines, not one per call.
//
// calibrated_tool — a cheap proxy (e.g. AIG depth) recalibrated online
//     against sparse reference measurements (e.g. full synthesis or a
//     subprocess STA): every sample_every-th call also asks the reference
//     and refits an ordinary least-squares line y = slope*x + offset, the
//     running generalization of the paper's Fig. 8 STA/depth regression.
//     All other calls pay only the proxy and return the fitted mapping of
//     its answer.
//
// Both are thread-safe when their children are; children are non-owned
// and must outlive the wrapper (the backend registry owns whole
// compositions — see registry.h).
#ifndef ISDC_BACKEND_RESILIENT_H_
#define ISDC_BACKEND_RESILIENT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/downstream.h"

namespace isdc::backend {

/// Thrown by circuit_breaker_tool while the circuit is open: the child was
/// not called at all. Distinct from the child's own failures so callers
/// (and tests) can tell a short-circuit from a real downstream error.
struct circuit_open_error : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class fallback_tool final : public core::downstream_tool {
public:
  /// `chain` is tried in order; at least one link is required.
  explicit fallback_tool(std::vector<const core::downstream_tool*> chain);

  /// First link's answer that does not throw; rethrows the last link's
  /// failure when every link failed.
  double subgraph_delay_ps(const ir::graph& sub) const override;

  /// "fallback(<link names>)" — the whole chain is the cache identity,
  /// since which link answered is not recorded per entry.
  std::string name() const override;

  struct link_counters {
    std::uint64_t calls = 0;     ///< subgraphs handed to this link
    std::uint64_t failures = 0;  ///< throws that fell through to the next
  };
  /// One entry per chain link, in order.
  std::vector<link_counters> stats() const;

private:
  struct link {
    const core::downstream_tool* tool = nullptr;
    std::atomic<std::uint64_t> calls{0};
    std::atomic<std::uint64_t> failures{0};
  };
  std::vector<std::unique_ptr<link>> chain_;
};

struct circuit_breaker_options {
  /// Sliding window of recent call outcomes the failure rate is computed
  /// over.
  int window = 16;
  /// Failure rate (failures / outcomes in window) at or above which the
  /// circuit opens.
  double threshold = 0.5;
  /// Outcomes required in the window before the rate is trusted — a single
  /// early failure must not open a cold circuit.
  int min_calls = 4;
  /// How long the circuit stays open before a half-open probe is admitted.
  double cooldown_ms = 1000.0;
  /// Concurrent probes admitted while half-open; further calls keep
  /// short-circuiting until a probe resolves.
  int half_open_probes = 1;
};

class circuit_breaker_tool final : public core::downstream_tool {
public:
  enum class breaker_state { closed, open, half_open };

  explicit circuit_breaker_tool(const core::downstream_tool& child,
                                circuit_breaker_options options = {});

  /// Closed/half-open: the child's answer (a child throw counts toward the
  /// failure window and rethrows). Open: throws circuit_open_error without
  /// touching the child. A successful half-open probe closes the circuit
  /// and resets the window; a failed one reopens for another cool-down.
  double subgraph_delay_ps(const ir::graph& sub) const override;

  /// "breaker(<child>,w=...,th=...,cd=...ms)" — the breaker never alters
  /// answers, but the distinct identity keeps cache provenance explicit.
  std::string name() const override;

  breaker_state state() const;

  struct counters {
    std::uint64_t calls = 0;           ///< calls admitted to the child
    std::uint64_t failures = 0;        ///< child throws observed
    std::uint64_t short_circuits = 0;  ///< rejected without calling child
    std::uint64_t opens = 0;           ///< closed -> open transitions
    std::uint64_t reopens = 0;         ///< failed half-open probes
    std::uint64_t closes = 0;          ///< successful half-open probes
  };
  counters stats() const;

private:
  /// Folds one admitted call's outcome back into the state machine.
  void record(bool probe, bool failure) const;

  const core::downstream_tool& child_;
  circuit_breaker_options options_;

  mutable std::mutex mu_;
  mutable breaker_state state_ = breaker_state::closed;
  mutable std::chrono::steady_clock::time_point reopen_at_{};
  mutable int probes_in_flight_ = 0;
  // Outcome ring buffer (1 = failure) with a running failure count.
  mutable std::vector<unsigned char> ring_;
  mutable int ring_pos_ = 0;
  mutable int ring_count_ = 0;
  mutable int ring_failures_ = 0;
  mutable counters counters_;
};

class calibrated_tool final : public core::downstream_tool {
public:
  /// Every `sample_every`-th call (the first included) also measures
  /// `reference` and refits. Until `min_samples` reference points exist
  /// the proxy's answer passes through unfitted.
  calibrated_tool(const core::downstream_tool& proxy,
                  const core::downstream_tool& reference,
                  int sample_every = 8, int min_samples = 2);

  /// max(0, slope * proxy(sub) + offset) under the current fit. A failing
  /// reference measurement never fails the call: the sample is skipped
  /// (counted) and the existing fit answers.
  double subgraph_delay_ps(const ir::graph& sub) const override;

  /// "calibrated(<proxy>-><reference>,every=N)". Note the identity is
  /// deliberately fit-independent: cached entries are answers of an
  /// evolving estimator, so re-measured subgraphs would disagree across a
  /// run anyway — the cache just freezes whichever calibration answered
  /// first, exactly like the paper's one-shot Fig. 8 fit.
  std::string name() const override;

  struct fit {
    double slope = 1.0;
    double offset = 0.0;
    std::size_t samples = 0;
  };
  fit current_fit() const;

  std::uint64_t proxy_calls() const { return proxy_calls_.load(); }
  std::uint64_t reference_calls() const { return reference_calls_.load(); }
  std::uint64_t reference_failures() const {
    return reference_failures_.load();
  }

private:
  const core::downstream_tool& proxy_;
  const core::downstream_tool& reference_;
  int sample_every_;
  int min_samples_;

  mutable std::atomic<std::uint64_t> proxy_calls_{0};
  mutable std::atomic<std::uint64_t> reference_calls_{0};
  mutable std::atomic<std::uint64_t> reference_failures_{0};

  // Running least-squares accumulators, guarded by mu_.
  mutable std::mutex mu_;
  mutable std::size_t n_ = 0;
  mutable double sum_x_ = 0.0;
  mutable double sum_y_ = 0.0;
  mutable double sum_xx_ = 0.0;
  mutable double sum_xy_ = 0.0;
};

}  // namespace isdc::backend

#endif  // ISDC_BACKEND_RESILIENT_H_
