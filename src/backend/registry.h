// Backend registry: build any downstream-tool composition from a spec
// string, so engines, fleets, benches and tests select backends by flag
// (--tool=SPEC) instead of by code. The engine's evaluation cache already
// scopes entries by downstream_tool::name(), so every registry-built tool
// drops into engine/fleet unchanged.
//
// Grammar (ASCII, no whitespace):
//   spec     := ident [ '(' spec {',' spec} ')' ] [ ':' params ]
//   params   := key '=' value {',' key '=' value}
// Leaf tools:
//   synthesis[:rounds=3,rewrite=1,refactor=1]    full synthesis + STA
//   aig-depth[:ps=80,offset=0,rounds=3,rewrite=1,refactor=1]
//   subprocess:cmd=<command>[,workers=2,timeout_ms=10000,attempts=3,
//                            backoff_ms=5,backoff_max_ms=250]
// Composites:
//   latency(<spec>)[:ms=50,jitter_ms=0]          injected-latency wrapper
//   fallback(<spec>,<spec>,...)                  ordered failover chain
//   calibrated(<proxy spec>,<reference spec>)[:every=8]
//   breaker(<spec>)[:window=16,threshold=0.5,min_calls=4,cooldown_ms=1000,
//                   probes=1]                    failure-rate circuit breaker
// Convenience: inside a composite's child list, a segment that does not
// start with a known tool name is folded into the previous child's
// params, so `fallback(subprocess:cmd=w,workers=4,aig-depth)` parses as
// {subprocess:cmd=w,workers=4} then {aig-depth}. A `cmd=` value runs to
// the next ',' — worker commands with arguments use spaces
// (`cmd=tools/isdc_delay_worker --tool=synthesis`).
#ifndef ISDC_BACKEND_REGISTRY_H_
#define ISDC_BACKEND_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "backend/subprocess_tool.h"
#include "core/downstream.h"

namespace isdc::backend {

/// A built tool plus ownership of every tool in its composition (the
/// chain is destroyed leaves-last). Move-only.
class tool_handle {
public:
  tool_handle() = default;
  tool_handle(tool_handle&&) = default;
  tool_handle& operator=(tool_handle&&) = default;

  /// The composition root; valid for the handle's lifetime.
  const core::downstream_tool& tool() const { return *root_; }
  bool valid() const { return root_ != nullptr; }

  /// The spec string this handle was built from, verbatim.
  const std::string& spec() const { return spec_; }

  /// First subprocess pool in the composition (depth-first), nullptr when
  /// none — benches and tests read its restart/timeout counters.
  subprocess_tool* subprocess() const { return subprocess_; }

private:
  friend struct tool_builder;  // registry.cpp's construction shim
  std::vector<std::unique_ptr<core::downstream_tool>> owned_;
  const core::downstream_tool* root_ = nullptr;
  subprocess_tool* subprocess_ = nullptr;
  std::string spec_;
};

/// Parses `spec` and builds the composition. Throws std::runtime_error
/// with a descriptive message (unknown tool, unknown or malformed
/// parameter, missing cmd, unbalanced parentheses, worker spawn failure).
tool_handle make_tool(const std::string& spec);

/// The leaf/composite names the grammar accepts, for help text.
std::vector<std::string> known_tool_names();

}  // namespace isdc::backend

#endif  // ISDC_BACKEND_REGISTRY_H_
