// Netlist export: serializes an ir::graph — typically an extracted
// subgraph cone — into forms external downstream tools can consume.
//
// Two formats:
//   to_verilog  — a structural Verilog-2001 module (one wire and one
//       assign per node), the hand-off format for real synthesizer/STA
//       backends (Yosys + OpenSTA read it directly);
//   to_text     — a compact line-based text format with a one-line variant
//       (';'-separated) that fits the worker protocol's one-request-per-
//       line framing (see subprocess_tool.h). from_text parses it back
//       into an ir::graph with an identical structural fingerprint, so
//       the format is also a lossless interchange/golden format.
//
// Both exports are deterministic: the same graph always produces the same
// bytes (node ids are the IR's creation-order ids, which are already a
// canonical topological order).
#ifndef ISDC_BACKEND_NETLIST_H_
#define ISDC_BACKEND_NETLIST_H_

#include <string>
#include <string_view>

#include "ir/graph.h"

namespace isdc::backend {

/// Version of the text netlist grammar. Bumped on any change to the
/// emitted lines; from_text rejects other versions, so a worker never
/// silently misreads a request from a newer client.
inline constexpr int text_format_version = 1;

struct verilog_options {
  /// Module name; empty derives a sanitized identifier from the graph
  /// name ("isdc_" prefix when the name starts with a digit).
  std::string module_name;
};

/// Structural Verilog for `g`: inputs/outputs become ports (pi<k>/po<k>,
/// with the IR node name in a trailing comment when present), every other
/// node becomes one wire plus one continuous assign. Wrap-around
/// arithmetic, shifts-to-zero and rotates match the IR semantics
/// (ir/opcode.h). `g` must pass ir::verify.
std::string to_verilog(const ir::graph& g, const verilog_options& options = {});

/// Compact text format:
///   isdc-graph 1
///   name <graph name, spaces replaced by '_'>
///   node <opcode> <width> <value> <operand ids...>   (one per node, in id
///                                                     order — ids are
///                                                     implicit)
///   out <node id>...
///   end
/// `sep` separates lines: '\n' (default) or ';' for the single-line form
/// embedded in worker protocol requests.
std::string to_text(const ir::graph& g, char sep = '\n');

/// Parses a to_text serialization (either separator). Throws
/// std::runtime_error with a descriptive message on malformed input —
/// wrong version, unknown opcode, arity/operand-order violations — and
/// verifies the rebuilt graph, so a worker fed garbage rejects it instead
/// of timing a broken circuit. Node names are not round-tripped; the
/// structural fingerprint (ir::graph::fingerprint) is.
ir::graph from_text(std::string_view text);

}  // namespace isdc::backend

#endif  // ISDC_BACKEND_NETLIST_H_
