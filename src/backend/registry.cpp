#include "backend/registry.h"

#include <charconv>
#include <cstdint>
#include <map>
#include <set>
#include <stdexcept>
#include <utility>

#include "backend/resilient.h"
#include "synth/synthesis.h"

namespace isdc::backend {

namespace {

const std::vector<std::string> known_names = {
    "synthesis", "aig-depth", "subprocess", "latency",
    "fallback",  "calibrated", "breaker"};

[[noreturn]] void spec_error(const std::string& what) {
  throw std::runtime_error("backend spec error: " + what);
}

bool is_known_name(std::string_view segment) {
  const std::size_t end = segment.find_first_of(":(");
  const std::string_view ident = segment.substr(0, end);
  for (const std::string& name : known_names) {
    if (ident == name) {
      return true;
    }
  }
  return false;
}

/// Parsed (not yet built) spec node.
struct parsed_spec {
  std::string name;
  std::vector<parsed_spec> children;
  // Insertion-ordered; duplicate keys rejected at lookup.
  std::vector<std::pair<std::string, std::string>> params;
};

/// Splits `text` at parenthesis-depth-0 commas; a segment that does not
/// start with a known tool name is merged into the previous segment (it
/// is a parameter of that child, e.g. `workers=4` inside a fallback
/// list).
std::vector<std::string_view> split_children(std::string_view text) {
  std::vector<std::string_view> raw;
  int depth = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || (text[i] == ',' && depth == 0)) {
      raw.push_back(text.substr(start, i - start));
      start = i + 1;
    } else if (text[i] == '(') {
      ++depth;
    } else if (text[i] == ')') {
      --depth;
    }
  }
  std::vector<std::string_view> merged;
  for (const std::string_view segment : raw) {
    if (segment.empty()) {
      spec_error("empty element in composite child list");
    }
    if (merged.empty() || is_known_name(segment)) {
      merged.push_back(segment);
    } else {
      // Extend the previous child through this segment (views share the
      // original buffer, so the span between them is exactly one ',').
      const std::string_view prev = merged.back();
      merged.back() = std::string_view(
          prev.data(), static_cast<std::size_t>(segment.data() + segment.size()
                                                - prev.data()));
    }
  }
  return merged;
}

parsed_spec parse_spec(std::string_view text);

void parse_params(std::string_view text, parsed_spec& out) {
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == ',') {
      const std::string_view kv = text.substr(start, i - start);
      start = i + 1;
      const std::size_t eq = kv.find('=');
      if (kv.empty() || eq == std::string_view::npos || eq == 0) {
        spec_error("malformed parameter '" + std::string(kv) +
                   "' (expected key=value) in '" + out.name + "'");
      }
      out.params.emplace_back(std::string(kv.substr(0, eq)),
                              std::string(kv.substr(eq + 1)));
    }
  }
}

parsed_spec parse_spec(std::string_view text) {
  parsed_spec out;
  const std::size_t mark = text.find_first_of(":(");
  out.name = std::string(text.substr(0, mark));
  if (out.name.empty()) {
    spec_error("missing tool name in '" + std::string(text) + "'");
  }
  if (mark == std::string_view::npos) {
    return out;
  }
  std::size_t rest = mark;
  if (text[mark] == '(') {
    int depth = 0;
    std::size_t close = std::string_view::npos;
    for (std::size_t i = mark; i < text.size(); ++i) {
      if (text[i] == '(') {
        ++depth;
      } else if (text[i] == ')' && --depth == 0) {
        close = i;
        break;
      }
    }
    if (close == std::string_view::npos) {
      spec_error("unbalanced parentheses in '" + std::string(text) + "'");
    }
    for (const std::string_view child :
         split_children(text.substr(mark + 1, close - mark - 1))) {
      out.children.push_back(parse_spec(child));
    }
    if (close + 1 == text.size()) {
      return out;
    }
    if (text[close + 1] != ':') {
      spec_error("unexpected text after ')' in '" + std::string(text) + "'");
    }
    rest = close + 1;
  }
  parse_params(text.substr(rest + 1), out);
  return out;
}

/// Typed parameter lookup with unknown-key rejection (a typo'd key must
/// not silently fall back to a default).
class param_reader {
public:
  explicit param_reader(const parsed_spec& spec) : spec_(spec) {
    for (const auto& [key, value] : spec.params) {
      if (!values_.emplace(key, value).second) {
        spec_error("duplicate parameter '" + key + "' in '" + spec.name +
                   "'");
      }
    }
  }

  ~param_reader() = default;

  std::string get_string(const std::string& key, std::string fallback) {
    const auto it = values_.find(key);
    if (it == values_.end()) {
      return fallback;
    }
    consumed_.insert(it->first);
    return it->second;
  }

  double get_double(const std::string& key, double fallback) {
    const auto it = values_.find(key);
    if (it == values_.end()) {
      return fallback;
    }
    consumed_.insert(it->first);
    char* end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == nullptr || *end != '\0' || it->second.empty()) {
      spec_error("parameter '" + key + "' of '" + spec_.name +
                 "' is not a number: '" + it->second + "'");
    }
    return v;
  }

  int get_int(const std::string& key, int fallback) {
    const auto it = values_.find(key);
    if (it == values_.end()) {
      return fallback;
    }
    consumed_.insert(it->first);
    int v = 0;
    const auto [ptr, ec] = std::from_chars(
        it->second.data(), it->second.data() + it->second.size(), v);
    if (ec != std::errc() || ptr != it->second.data() + it->second.size()) {
      spec_error("parameter '" + key + "' of '" + spec_.name +
                 "' is not an integer: '" + it->second + "'");
    }
    return v;
  }

  bool get_bool(const std::string& key, bool fallback) {
    return get_int(key, fallback ? 1 : 0) != 0;
  }

  /// Call after reading every supported key.
  void reject_unknown() const {
    for (const auto& [key, value] : values_) {
      if (!consumed_.contains(key)) {
        spec_error("unknown parameter '" + key + "' for '" + spec_.name +
                   "'");
      }
    }
  }

private:
  const parsed_spec& spec_;
  std::map<std::string, std::string> values_;
  std::set<std::string> consumed_;
};

void expect_children(const parsed_spec& spec, std::size_t min,
                     std::size_t max) {
  if (spec.children.size() < min || spec.children.size() > max) {
    spec_error("'" + spec.name + "' takes " + std::to_string(min) +
               (min == max ? "" : ".." + std::to_string(max)) +
               " child spec(s), got " + std::to_string(spec.children.size()));
  }
}

synth::synthesis_options read_synth_options(param_reader& params) {
  synth::synthesis_options o;
  o.opt_rounds = params.get_int("rounds", o.opt_rounds);
  o.use_rewrite = params.get_bool("rewrite", o.use_rewrite);
  o.use_refactor = params.get_bool("refactor", o.use_refactor);
  return o;
}

}  // namespace

/// Construction shim with access to tool_handle's internals. Builds the
/// composition bottom-up; every constructed tool is pushed into
/// `handle.owned_`. Wrappers hold non-owned references to children, and
/// no tool touches its children in its destructor, so the vector's
/// destruction order is immaterial.
struct tool_builder {
  static const core::downstream_tool* remember(
      tool_handle& handle, std::unique_ptr<core::downstream_tool> tool) {
    handle.owned_.push_back(std::move(tool));
    return handle.owned_.back().get();
  }

  static void note_subprocess(tool_handle& handle, subprocess_tool* tool) {
    if (handle.subprocess_ == nullptr) {
      handle.subprocess_ = tool;
    }
  }

  static void finish(tool_handle& handle, const std::string& spec,
                     const core::downstream_tool* root) {
    handle.spec_ = spec;
    handle.root_ = root;
  }
};

namespace {

const core::downstream_tool* remember(
    tool_handle& handle, std::unique_ptr<core::downstream_tool> tool) {
  return tool_builder::remember(handle, std::move(tool));
}

const core::downstream_tool* build(const parsed_spec& spec,
                                   tool_handle& handle) {
  param_reader params(spec);
  if (spec.name == "synthesis") {
    expect_children(spec, 0, 0);
    const synth::synthesis_options o = read_synth_options(params);
    params.reject_unknown();
    return remember(handle,
                    std::make_unique<core::synthesis_downstream>(o));
  }
  if (spec.name == "aig-depth") {
    expect_children(spec, 0, 0);
    const double ps = params.get_double("ps", 80.0);
    const double offset = params.get_double("offset", 0.0);
    const synth::synthesis_options o = read_synth_options(params);
    params.reject_unknown();
    return remember(handle, std::make_unique<core::aig_depth_downstream>(
                                ps, offset, o));
  }
  if (spec.name == "subprocess") {
    expect_children(spec, 0, 0);
    subprocess_options o;
    o.command = params.get_string("cmd", "");
    o.workers = params.get_int("workers", o.workers);
    o.timeout_ms = params.get_int("timeout_ms", o.timeout_ms);
    o.max_attempts = params.get_int("attempts", o.max_attempts);
    o.backoff_ms = params.get_double("backoff_ms", o.backoff_ms);
    o.backoff_max_ms =
        params.get_double("backoff_max_ms", o.backoff_max_ms);
    params.reject_unknown();
    if (o.command.empty()) {
      spec_error("'subprocess' requires cmd=<worker command>");
    }
    auto tool = std::make_unique<subprocess_tool>(std::move(o));
    tool_builder::note_subprocess(handle, tool.get());
    return remember(handle, std::move(tool));
  }
  if (spec.name == "latency") {
    expect_children(spec, 1, 1);
    const core::downstream_tool* inner = build(spec.children[0], handle);
    const double ms = params.get_double("ms", 50.0);
    const double jitter = params.get_double("jitter_ms", 0.0);
    params.reject_unknown();
    return remember(handle, std::make_unique<core::latency_downstream>(
                                *inner, ms, jitter));
  }
  if (spec.name == "fallback") {
    expect_children(spec, 1, 16);
    std::vector<const core::downstream_tool*> chain;
    for (const parsed_spec& child : spec.children) {
      chain.push_back(build(child, handle));
    }
    params.reject_unknown();
    return remember(handle,
                    std::make_unique<fallback_tool>(std::move(chain)));
  }
  if (spec.name == "breaker") {
    expect_children(spec, 1, 1);
    const core::downstream_tool* child = build(spec.children[0], handle);
    circuit_breaker_options o;
    o.window = params.get_int("window", o.window);
    o.threshold = params.get_double("threshold", o.threshold);
    o.min_calls = params.get_int("min_calls", o.min_calls);
    o.cooldown_ms = params.get_double("cooldown_ms", o.cooldown_ms);
    o.half_open_probes = params.get_int("probes", o.half_open_probes);
    params.reject_unknown();
    return remember(handle,
                    std::make_unique<circuit_breaker_tool>(*child, o));
  }
  if (spec.name == "calibrated") {
    expect_children(spec, 2, 2);
    const core::downstream_tool* proxy = build(spec.children[0], handle);
    const core::downstream_tool* reference = build(spec.children[1], handle);
    const int every = params.get_int("every", 8);
    params.reject_unknown();
    return remember(handle, std::make_unique<calibrated_tool>(
                                *proxy, *reference, every));
  }
  std::string known;
  for (const std::string& name : known_names) {
    known += (known.empty() ? "" : ", ") + name;
  }
  spec_error("unknown tool '" + spec.name + "' (known: " + known + ")");
}

}  // namespace

tool_handle make_tool(const std::string& spec) {
  if (spec.empty()) {
    spec_error("empty spec");
  }
  const parsed_spec parsed = parse_spec(spec);
  tool_handle handle;
  tool_builder::finish(handle, spec, build(parsed, handle));
  return handle;
}

std::vector<std::string> known_tool_names() { return known_names; }

}  // namespace isdc::backend
