#include "backend/subprocess_tool.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "backend/netlist.h"
#include "support/failpoint.h"
#include "support/hash.h"
#include "support/retry.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace isdc::backend {

namespace {

/// Registry mirrors of the per-pool counters, summed across pools; the
/// per-instance stats() view stays exact. Looked up once, bumped lock-free.
struct subprocess_metrics {
  telemetry::counter& calls =
      telemetry::get_counter("backend.subprocess.calls");
  telemetry::counter& restarts =
      telemetry::get_counter("backend.subprocess.restarts");
  telemetry::counter& retries =
      telemetry::get_counter("backend.subprocess.retries");
  telemetry::counter& timeouts =
      telemetry::get_counter("backend.subprocess.timeouts");
  telemetry::counter& crashes =
      telemetry::get_counter("backend.subprocess.crashes");
  telemetry::counter& protocol_errors =
      telemetry::get_counter("backend.subprocess.protocol_errors");
};

subprocess_metrics& metrics() {
  static subprocess_metrics m;
  return m;
}

using clock_type = std::chrono::steady_clock;

constexpr std::string_view ready_line = "ready isdc-delay-worker 1";

/// Writes to a worker whose process already died raise SIGPIPE, which
/// would kill the whole scheduler; the pool treats them as an ordinary
/// crash (EPIPE) and respawns instead. Ignoring the signal process-wide is
/// the only portable way to get the errno behavior; done once, lazily.
void ignore_sigpipe() {
  static const bool once = [] {
    ::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)once;
}

std::vector<std::string> split_command(const std::string& command) {
  std::vector<std::string> argv;
  std::istringstream in(command);
  std::string word;
  while (in >> word) {
    argv.push_back(word);
  }
  return argv;
}

enum class io_status { ok, timed_out, closed };

}  // namespace

/// One live worker process. The owning pool is responsible for reaping
/// the pid; the struct only owns the two pipe ends.
struct subprocess_tool::worker {
  pid_t pid = -1;
  int to_child = -1;    ///< request pipe (our write end)
  int from_child = -1;  ///< response pipe (our read end)
  std::string buffer;   ///< response bytes read but not yet consumed

  ~worker() {
    if (to_child >= 0) {
      ::close(to_child);
    }
    if (from_child >= 0) {
      ::close(from_child);
    }
  }
};

namespace {

/// Reads one '\n'-terminated line (stripped) within the deadline.
/// timeout_ms <= 0 waits forever.
io_status read_line(subprocess_tool::worker& w, int timeout_ms,
                    std::string& line) {
  const auto deadline =
      clock_type::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const std::size_t nl = w.buffer.find('\n');
    if (nl != std::string::npos) {
      line = w.buffer.substr(0, nl);
      w.buffer.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') {
        line.pop_back();
      }
      return io_status::ok;
    }
    int wait_ms = -1;
    if (timeout_ms > 0) {
      const auto remaining = std::chrono::duration_cast<
          std::chrono::milliseconds>(deadline - clock_type::now());
      if (remaining.count() <= 0) {
        return io_status::timed_out;
      }
      wait_ms = static_cast<int>(remaining.count());
    }
    struct pollfd pfd = {.fd = w.from_child, .events = POLLIN, .revents = 0};
    const int ready = ::poll(&pfd, 1, wait_ms);
    if (ready == 0) {
      return io_status::timed_out;
    }
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      return io_status::closed;
    }
    char chunk[4096];
    const ssize_t n = ::read(w.from_child, chunk, sizeof(chunk));
    if (n > 0) {
      w.buffer.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    return io_status::closed;  // EOF: the worker died or closed stdout
  }
}

/// Writes `data` within the deadline. The request fd is non-blocking, so
/// a worker that stopped draining stdin (wedged wrapper, full pipe on a
/// large cone) surfaces as timed_out instead of hanging the scheduler.
io_status write_all(subprocess_tool::worker& w, std::string_view data,
                    int timeout_ms) {
  const auto deadline =
      clock_type::now() + std::chrono::milliseconds(timeout_ms);
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(w.to_child, data.data() + off,
                              data.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      int wait_ms = -1;
      if (timeout_ms > 0) {
        const auto remaining = std::chrono::duration_cast<
            std::chrono::milliseconds>(deadline - clock_type::now());
        if (remaining.count() <= 0) {
          return io_status::timed_out;
        }
        wait_ms = static_cast<int>(remaining.count());
      }
      struct pollfd pfd = {
          .fd = w.to_child, .events = POLLOUT, .revents = 0};
      const int ready = ::poll(&pfd, 1, wait_ms);
      if (ready == 0) {
        return io_status::timed_out;
      }
      if (ready < 0 && errno != EINTR) {
        return io_status::closed;
      }
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    return io_status::closed;  // EPIPE et al.: the worker is gone
  }
  return io_status::ok;
}

/// SIGKILL + reap. Safe on an already-dead pid (waitpid still reaps it).
void kill_worker(subprocess_tool::worker& w) {
  if (w.pid > 0) {
    if (failpoint::maybe_fail("backend.subprocess.kill") ==
        failpoint::kind::timeout) {
      // A slow reap only; skipping the kill outright would leak a live
      // child past the test, so the site injects latency, not absence.
      ::usleep(2 * 1000);
    }
    ::kill(w.pid, SIGKILL);
    ::waitpid(w.pid, nullptr, 0);
    w.pid = -1;
  }
}

/// Polite shutdown: quit + stdin EOF, a short grace period, then SIGKILL.
void stop_worker(subprocess_tool::worker& w) {
  if (w.pid <= 0) {
    return;
  }
  (void)write_all(w, "quit\n", /*timeout_ms=*/50);
  ::close(w.to_child);
  w.to_child = -1;
  for (int i = 0; i < 25; ++i) {
    // Only a returned pid means the child was reaped; 0 is still-running
    // and -1 (EINTR) is a retry, never an exit.
    if (::waitpid(w.pid, nullptr, WNOHANG) == w.pid) {
      w.pid = -1;
      return;
    }
    ::usleep(10 * 1000);
  }
  kill_worker(w);
}

std::unique_ptr<subprocess_tool::worker> spawn_worker(
    const subprocess_options& options) {
  if (failpoint::maybe_fail("backend.subprocess.spawn") !=
      failpoint::kind::none) {
    throw std::runtime_error(
        "subprocess backend: failpoint: injected spawn failure");
  }
  const std::vector<std::string> args = split_command(options.command);
  if (args.empty()) {
    throw std::runtime_error("subprocess backend: empty worker command");
  }
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const std::string& a : args) {
    argv.push_back(const_cast<char*>(a.c_str()));
  }
  argv.push_back(nullptr);

  // O_CLOEXEC everywhere: without it every forked sibling would inherit
  // this worker's pipe ends, so closing our write end would never
  // deliver stdin EOF while any sibling lives. The child's dup2 onto
  // stdin/stdout clears the flag on the descriptors that must survive
  // exec.
  int request[2];   // [0] worker stdin, [1] our write end
  int response[2];  // [0] our read end, [1] worker stdout
  if (::pipe2(request, O_CLOEXEC) != 0) {
    throw std::runtime_error(std::string("subprocess backend: pipe: ") +
                             std::strerror(errno));
  }
  if (::pipe2(response, O_CLOEXEC) != 0) {
    ::close(request[0]);
    ::close(request[1]);
    throw std::runtime_error(std::string("subprocess backend: pipe: ") +
                             std::strerror(errno));
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    for (const int fd : {request[0], request[1], response[0], response[1]}) {
      ::close(fd);
    }
    throw std::runtime_error(std::string("subprocess backend: fork: ") +
                             std::strerror(errno));
  }
  if (pid == 0) {
    // Child: async-signal-safe calls only between fork and exec. The
    // original CLOEXEC descriptors close themselves at exec.
    ::dup2(request[0], STDIN_FILENO);
    ::dup2(response[1], STDOUT_FILENO);
    ::execvp(argv[0], argv.data());
    // exec failed; 127 is the shell's command-not-found convention.
    _exit(127);
  }

  auto w = std::make_unique<subprocess_tool::worker>();
  w->pid = pid;
  w->to_child = request[1];
  w->from_child = response[0];
  ::close(request[0]);
  ::close(response[1]);
  // Non-blocking requests: write_all polls for space against the
  // deadline, so a worker that stops reading cannot wedge a scheduler
  // thread on a cone bigger than the pipe buffer.
  ::fcntl(w->to_child, F_SETFL, O_NONBLOCK);

  std::string greeting;
  io_status st = io_status::ok;
  switch (failpoint::maybe_fail("backend.subprocess.handshake")) {
    case failpoint::kind::timeout:
      st = io_status::timed_out;
      break;
    case failpoint::kind::fail:
      st = io_status::closed;
      break;
    case failpoint::kind::garbage:
      st = read_line(*w, options.timeout_ms, greeting);
      if (st == io_status::ok) {
        greeting.insert(0, "\x01garbled ");
      }
      break;
    default:
      st = read_line(*w, options.timeout_ms, greeting);
      break;
  }
  if (st != io_status::ok || greeting != ready_line) {
    kill_worker(*w);
    std::ostringstream msg;
    msg << "subprocess backend: worker '" << options.command << "' ";
    if (st == io_status::timed_out) {
      msg << "did not send its ready line within " << options.timeout_ms
          << " ms";
    } else if (st == io_status::closed) {
      msg << "exited before the ready handshake (bad command?)";
    } else {
      msg << "sent an unexpected greeting '" << greeting << "' (expected '"
          << ready_line << "')";
    }
    throw std::runtime_error(msg.str());
  }
  return w;
}

}  // namespace

subprocess_tool::subprocess_tool(subprocess_options options)
    : options_(std::move(options)) {
  ignore_sigpipe();
  options_.workers = std::max(1, options_.workers);
  options_.max_attempts = std::max(1, options_.max_attempts);
  options_.backoff_ms = std::max(0.0, options_.backoff_ms);
  options_.backoff_max_ms =
      std::max(options_.backoff_ms, options_.backoff_max_ms);
  try {
    for (int i = 0; i < options_.workers; ++i) {
      idle_.push_back(spawn_worker(options_));
      ++live_slots_;
    }
  } catch (...) {
    for (auto& w : idle_) {
      kill_worker(*w);
    }
    throw;
  }
}

subprocess_tool::~subprocess_tool() {
  // Calls must have drained (the engine joins its runs before tool
  // teardown); only idle workers remain to stop.
  for (auto& w : idle_) {
    stop_worker(*w);
  }
}

std::unique_ptr<subprocess_tool::worker> subprocess_tool::acquire() const {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    if (!idle_.empty()) {
      auto w = std::move(idle_.back());
      idle_.pop_back();
      return w;
    }
    if (live_slots_ < options_.workers) {
      // A slot died (failed respawn); heal it inline, outside the lock.
      ++live_slots_;
      lk.unlock();
      try {
        return spawn_worker(options_);
      } catch (...) {
        lk.lock();
        --live_slots_;
        slot_free_.notify_one();
        throw;
      }
    }
    slot_free_.wait(lk);
  }
}

void subprocess_tool::release(std::unique_ptr<worker> w) const {
  {
    std::lock_guard<std::mutex> lk(mu_);
    idle_.push_back(std::move(w));
  }
  slot_free_.notify_one();
}

double subprocess_tool::subgraph_delay_ps(const ir::graph& sub) const {
  const telemetry::span call_span("backend.subprocess.call");
  ++calls_;
  metrics().calls.add();
  const std::string request = "eval " + to_text(sub, ';') + "\n";

  // Kills the held worker and frees its slot; the next acquire respawns.
  const auto discard = [this](std::unique_ptr<worker> w) {
    kill_worker(*w);
    ++restarts_;
    metrics().restarts.add();
    {
      std::lock_guard<std::mutex> lk(mu_);
      --live_slots_;
    }
    slot_free_.notify_one();
  };

  // Exponential backoff between attempts, seeded by the command so the
  // sleep sequence is deterministic per pool (support/retry.h).
  const retry_policy backoff{.max_attempts = options_.max_attempts,
                             .initial_backoff_ms = options_.backoff_ms,
                             .multiplier = 2.0,
                             .max_backoff_ms = options_.backoff_max_ms,
                             .jitter = 0.25,
                             .seed =
                                 fnv1a64().mix(options_.command).value()};

  std::string transient;
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++retries_;
      metrics().retries.add();
      backoff.sleep_before_retry(attempt);
    }
    std::unique_ptr<worker> w = acquire();
    io_status sent;
    switch (failpoint::maybe_fail("backend.subprocess.write")) {
      case failpoint::kind::timeout:
        sent = io_status::timed_out;
        break;
      case failpoint::kind::partial:
        // Torn request: a prefix reaches the worker, then the pipe
        // "breaks". The worker is desynced mid-line, so only the crash
        // path (kill + respawn + retry) recovers correctly.
        (void)write_all(*w,
                        std::string_view(request).substr(0,
                                                         request.size() / 2),
                        options_.timeout_ms);
        sent = io_status::closed;
        break;
      case failpoint::kind::fail:
      case failpoint::kind::garbage:
        sent = io_status::closed;
        break;
      default:
        sent = write_all(*w, request, options_.timeout_ms);
        break;
    }
    if (sent == io_status::timed_out) {
      ++timeouts_;
      metrics().timeouts.add();
      transient = "worker stopped accepting requests within the " +
                  std::to_string(options_.timeout_ms) + " ms deadline";
      discard(std::move(w));
      continue;
    }
    if (sent == io_status::closed) {
      ++crashes_;
      metrics().crashes.add();
      transient = "worker rejected the request (broken pipe)";
      discard(std::move(w));
      continue;
    }
    std::string line;
    io_status st;
    const failpoint::kind read_fault =
        failpoint::maybe_fail("backend.subprocess.read");
    switch (read_fault) {
      case failpoint::kind::timeout:
        st = io_status::timed_out;
        break;
      case failpoint::kind::fail:
        st = io_status::closed;
        break;
      default:
        st = read_line(*w, options_.timeout_ms, line);
        if (st == io_status::ok) {
          if (read_fault == failpoint::kind::garbage) {
            line.insert(0, "\x01garbage ");
          } else if (read_fault == failpoint::kind::partial) {
            // Truncate hard (to "ok" with no value) so the corruption can
            // never parse as a plausible-but-wrong delay.
            line.resize(std::min<std::size_t>(line.size(), 2));
          }
        }
        break;
    }
    if (st == io_status::timed_out) {
      ++timeouts_;
      metrics().timeouts.add();
      transient = "deadline of " + std::to_string(options_.timeout_ms) +
                  " ms expired";
      discard(std::move(w));
      continue;
    }
    if (st == io_status::closed) {
      ++crashes_;
      metrics().crashes.add();
      transient = "worker died mid-request";
      discard(std::move(w));
      continue;
    }
    if (line.rfind("ok ", 0) == 0) {
      char* end = nullptr;
      const std::string value = line.substr(3);
      const double delay_ps = std::strtod(value.c_str(), &end);
      if (end == nullptr || *end != '\0' || value.empty() ||
          !w->buffer.empty()) {
        ++protocol_errors_;
        metrics().protocol_errors.add();
        discard(std::move(w));
        throw std::runtime_error(
            "subprocess backend: protocol error: unparseable ok response '" +
            line + "'");
      }
      release(std::move(w));
      return delay_ps;
    }
    if (line.rfind("err ", 0) == 0) {
      const std::string message = line.substr(4);
      if (!w->buffer.empty()) {
        // Residual output after the response means the worker is out of
        // sync with the request framing — releasing it would hand its
        // stale line to the next caller as an answer. Same rule as the
        // ok path: kill it.
        ++protocol_errors_;
        metrics().protocol_errors.add();
        discard(std::move(w));
      } else {
        // The worker is healthy and in sync; the failure is
        // deterministic (it would fail again), so no retry.
        release(std::move(w));
      }
      throw std::runtime_error("subprocess backend: worker error: " +
                               message);
    }
    ++protocol_errors_;
    metrics().protocol_errors.add();
    discard(std::move(w));
    throw std::runtime_error(
        "subprocess backend: protocol error: unexpected worker response '" +
        line + "' (expected 'ok <delay>' or 'err <message>')");
  }
  throw std::runtime_error("subprocess backend: call failed after " +
                           std::to_string(options_.max_attempts) +
                           " attempt(s): " + transient);
}

std::string subprocess_tool::name() const {
  std::ostringstream out;
  out << "subprocess(" << options_.command << ",w=" << options_.workers
      << ",t=" << options_.timeout_ms << "ms)";
  return out.str();
}

int subprocess_tool::heal() const {
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      if (live_slots_ >= options_.workers) {
        return live_slots_;
      }
      ++live_slots_;
    }
    std::unique_ptr<worker> w;
    try {
      w = spawn_worker(options_);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lk(mu_);
        --live_slots_;
      }
      slot_free_.notify_one();
      throw;
    }
    release(std::move(w));
  }
}

int subprocess_tool::live_workers() const {
  std::lock_guard<std::mutex> lk(mu_);
  return live_slots_;
}

subprocess_tool::counters subprocess_tool::stats() const {
  counters c;
  c.calls = calls_.load();
  c.restarts = restarts_.load();
  c.timeouts = timeouts_.load();
  c.crashes = crashes_.load();
  c.retries = retries_.load();
  c.protocol_errors = protocol_errors_.load();
  return c;
}

}  // namespace isdc::backend
