// binary-divide, float32-fast-rsqrt and fpexp — the arithmetic-kernel
// benchmarks of Table I. rsqrt/fpexp are fixed-point datapath equivalents
// of the float kernels (this IR is integer-valued); they reproduce the
// multiplier-chain structure that makes these the deepest pipelines.
#include <array>
#include <vector>

#include "ir/builder.h"
#include "support/check.h"
#include "workloads/registry.h"

namespace isdc::workloads {

ir::graph build_binary_divide(int width) {
  ISDC_CHECK(width >= 2 && width <= 16);
  const auto w = static_cast<std::uint32_t>(width);
  ir::graph g("binary_divide");
  ir::builder b(g);
  const ir::node_id dividend = b.input(w, "dividend");
  const ir::node_id divisor = b.input(w, "divisor");
  const ir::node_id divisor_w1 = b.zext(divisor, w + 1);

  // Unrolled restoring division, MSB first.
  ir::node_id remainder = b.constant(w, 0);
  std::vector<ir::node_id> quotient_bits;  // MSB first
  for (int i = width - 1; i >= 0; --i) {
    const ir::node_id bit =
        b.slice(dividend, static_cast<std::uint32_t>(i), 1);
    const ir::node_id trial = b.concat(remainder, bit);  // w+1 bits
    const ir::node_id fits = b.ule(divisor_w1, trial);
    const ir::node_id diff = b.sub(trial, divisor_w1);
    remainder = b.slice(b.mux(fits, diff, trial), 0, w);
    quotient_bits.push_back(fits);
  }
  ir::node_id quotient = quotient_bits.front();
  for (std::size_t i = 1; i < quotient_bits.size(); ++i) {
    quotient = b.concat(quotient, quotient_bits[i]);
  }
  b.output(quotient);
  b.output(remainder);
  return g;
}

ir::graph build_float32_fast_rsqrt(int newton_iterations) {
  ISDC_CHECK(newton_iterations >= 1 && newton_iterations <= 4);
  ir::graph g("float32_fast_rsqrt");
  ir::builder b(g);
  const ir::node_id x = b.input(32, "x");

  // The famous magic-constant seed: i = 0x5f3759df - (x >> 1).
  const ir::node_id magic = b.constant(32, 0x5f3759dfu);
  ir::node_id y = b.sub(magic, b.shri(x, 1));

  // Fixed-point Newton refinement: y <- y * (three_halves - ((x*y*y) >> s)).
  const ir::node_id three_halves = b.constant(32, 0x30000000u);
  for (int i = 0; i < newton_iterations; ++i) {
    const ir::node_id y2 = b.mul(y, y);
    const ir::node_id xy2 = b.mul(x, b.shri(y2, 13));
    const ir::node_id correction = b.sub(three_halves, b.shri(xy2, 1));
    y = b.mul(y, b.shri(correction, 16));
  }
  b.output(y);
  return g;
}

ir::graph build_fpexp32(int terms) {
  ISDC_CHECK(terms >= 2 && terms <= 16);
  ir::graph g("fpexp_32");
  ir::builder b(g);
  const ir::node_id x = b.input(32, "x");

  // Horner evaluation of a Q8.24-ish polynomial: the 1/k! coefficient
  // cascade of exp. Each step is a full-width multiply feeding the next —
  // the deep multiplier chain that makes fpexp the longest pipeline.
  static constexpr std::array<std::uint32_t, 16> coefficients = {
      0x01000000, 0x00800000, 0x002aaaaa, 0x000aaaaa, 0x00022222,
      0x00005b05, 0x00000d00, 0x000001a0, 0x00000029, 0x00000004,
      0x00000001, 0x00000001, 0x00000001, 0x00000001, 0x00000001,
      0x00000001};

  ir::node_id acc =
      b.constant(32, coefficients[static_cast<std::size_t>(terms - 1)]);
  for (int i = terms - 2; i >= 0; --i) {
    const ir::node_id prod = b.mul(acc, x);
    acc = b.add(b.shri(prod, 8),
                b.constant(32, coefficients[static_cast<std::size_t>(i)]));
  }
  b.output(acc);
  return g;
}

}  // namespace isdc::workloads
