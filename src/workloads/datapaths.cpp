// The "internal datapath" benchmark: a deep mixed add/xor/rotate/select
// chain standing in for the paper's unnamed internal SoC datapath — the
// second-deepest pipeline of the suite.
#include "ir/builder.h"
#include "support/check.h"
#include "workloads/registry.h"

namespace isdc::workloads {

ir::graph build_internal_datapath(int steps) {
  ISDC_CHECK(steps >= 1 && steps <= 64);
  ir::graph g("internal_datapath");
  ir::builder b(g);
  ir::node_id x = b.input(32, "x");
  ir::node_id y = b.input(32, "y");
  const ir::node_id mode = b.input(1, "mode");

  // An ARX-style (add/rotate/xor) round chain with a mode select, similar
  // in op mix to hashing/checksum datapaths inside SoCs.
  for (int i = 0; i < steps; ++i) {
    const std::uint32_t rot = static_cast<std::uint32_t>(7 + 6 * i) % 31 + 1;
    const ir::node_id k =
        b.constant(32, 0x9e3779b9u * static_cast<std::uint32_t>(i + 1));
    const ir::node_id added = b.add(x, b.bxor(y, k));
    const ir::node_id rotated = b.rotri(added, rot);
    const ir::node_id alt = b.bxor(b.add(y, k), x);
    x = b.mux(mode, rotated, alt);
    if (i % 3 == 2) {
      y = b.add(y, x);
    }
  }
  b.output(x);
  b.output(y);
  return g;
}

}  // namespace isdc::workloads
