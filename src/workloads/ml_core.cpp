// Synthetic ML-core datapaths standing in for the paper's proprietary
// machine-learning processor benchmarks: MAC trees, saturating
// accumulators, convolution reductions, pooling and activation pipelines.
// Opcode numbering mirrors Table I (opcode4 is the trivial multiply-add
// that converges in one iteration; opcode2 is the largest).
#include <array>
#include <vector>

#include "ir/builder.h"
#include "support/check.h"
#include "workloads/registry.h"

namespace isdc::workloads {

namespace {

/// a*b with 16-bit operands zero-extended to 32 bits first — the shape an
/// HLS frontend emits for widened MACs. The per-op delay model charges a
/// full 32x32 multiply; downstream synthesis sees the zero upper halves.
ir::node_id widened_mul(ir::builder& b, ir::node_id a16, ir::node_id b16) {
  return b.mul(b.zext(a16, 32), b.zext(b16, 32));
}

ir::node_id relu32(ir::builder& b, ir::node_id x) {
  const ir::node_id sign = b.slice(x, 31, 1);
  return b.mux(sign, b.constant(32, 0), x);
}

ir::node_id saturating_add32(ir::builder& b, ir::node_id acc, ir::node_id x,
                             std::uint64_t limit) {
  const ir::node_id sum = b.add(acc, x);
  const ir::node_id cap = b.constant(32, limit);
  return b.mux(b.ult(cap, sum), cap, sum);
}

}  // namespace

ir::graph build_ml_datapath0_opcode(int opcode) {
  ISDC_CHECK(opcode >= 0 && opcode <= 4);
  ir::graph g("ml_datapath0_opcode" + std::to_string(opcode));
  ir::builder b(g);

  switch (opcode) {
    case 0: {  // dot-4 + bias + relu
      std::vector<ir::node_id> products;
      for (int i = 0; i < 4; ++i) {
        const std::string sfx = std::to_string(i);
        products.push_back(widened_mul(b, b.input(16, "a" + sfx),
                                       b.input(16, "b" + sfx)));
      }
      const ir::node_id bias = b.input(32, "bias");
      const ir::node_id dot = b.add_tree(products);
      b.output(relu32(b, b.add(dot, bias)));
      break;
    }
    case 1: {  // saturating sequential accumulate of 6 products
      ir::node_id acc = b.input(32, "acc_in");
      for (int i = 0; i < 6; ++i) {
        const std::string sfx = std::to_string(i);
        const ir::node_id prod = widened_mul(b, b.input(16, "a" + sfx),
                                             b.input(16, "b" + sfx));
        acc = saturating_add32(b, acc, prod, 0x7fffffff);
      }
      b.output(acc);
      break;
    }
    case 2: {  // conv-9 reduction + normalization + clamp
      std::vector<ir::node_id> products;
      for (int i = 0; i < 9; ++i) {
        const std::string sfx = std::to_string(i);
        products.push_back(widened_mul(b, b.input(16, "px" + sfx),
                                       b.input(16, "k" + sfx)));
      }
      const ir::node_id sum = b.add_tree(products);
      const ir::node_id shift = b.input(5, "norm_shift");
      const ir::node_id normalized = b.shr(sum, b.zext(shift, 32));
      const ir::node_id scaled =
          b.mul(normalized, b.zext(b.input(16, "scale"), 32));
      b.output(saturating_add32(b, scaled, b.input(32, "round"), 0x00ffffff));
      break;
    }
    case 3: {  // 2x2 average pooling on 4 lanes + requantization
      std::vector<ir::node_id> pooled;
      for (int lane = 0; lane < 4; ++lane) {
        std::array<ir::node_id, 4> px{};
        for (int i = 0; i < 4; ++i) {
          px[static_cast<std::size_t>(i)] = b.zext(
              b.input(16, "l" + std::to_string(lane) + "p" + std::to_string(i)),
              32);
        }
        const ir::node_id sum =
            b.add(b.add(px[0], px[1]), b.add(px[2], px[3]));
        pooled.push_back(b.shri(b.add(sum, b.constant(32, 2)), 2));
      }
      const ir::node_id scale = b.zext(b.input(16, "scale"), 32);
      for (ir::node_id lane : pooled) {
        b.output(b.shri(b.mul(lane, scale), 8));
      }
      break;
    }
    case 4: {  // plain multiply-add (converges immediately in the paper)
      const ir::node_id prod =
          b.mul(b.input(32, "a"), b.input(32, "b"));
      b.output(b.add(prod, b.input(32, "c")));
      break;
    }
    default:
      ISDC_UNREACHABLE("opcode out of range");
  }
  return g;
}

ir::graph build_ml_datapath0_all() {
  ir::graph g("ml_datapath0_all");
  ir::builder b(g);
  const ir::node_id opcode = b.input(3, "opcode");

  // Shared operand bus, per-opcode datapaths, output mux — the classic
  // ALU-style union datapath of a processor execution unit.
  std::array<ir::node_id, 9> a{};
  std::array<ir::node_id, 9> c{};
  for (int i = 0; i < 9; ++i) {
    a[static_cast<std::size_t>(i)] = b.input(16, "busa" + std::to_string(i));
    c[static_cast<std::size_t>(i)] = b.input(16, "busb" + std::to_string(i));
  }
  const ir::node_id acc = b.input(32, "acc");

  // opcode 0: dot-4 + relu.
  std::vector<ir::node_id> dot4;
  for (int i = 0; i < 4; ++i) {
    dot4.push_back(widened_mul(b, a[static_cast<std::size_t>(i)],
                               c[static_cast<std::size_t>(i)]));
  }
  const ir::node_id r0 = relu32(b, b.add(b.add_tree(dot4), acc));

  // opcode 1: saturating accumulate of 4 products.
  ir::node_id r1 = acc;
  for (int i = 0; i < 4; ++i) {
    r1 = saturating_add32(
        b, r1,
        widened_mul(b, a[static_cast<std::size_t>(i)],
                    c[static_cast<std::size_t>(i + 4)]),
        0x7fffffff);
  }

  // opcode 2: conv-9 + normalize.
  std::vector<ir::node_id> conv;
  for (int i = 0; i < 9; ++i) {
    conv.push_back(widened_mul(b, a[static_cast<std::size_t>(i)],
                               c[static_cast<std::size_t>(i)]));
  }
  const ir::node_id r2 = b.shri(b.add_tree(conv), 6);

  // opcode 3: pooling of the first 4 bus words.
  std::array<ir::node_id, 4> pool{};
  for (int i = 0; i < 4; ++i) {
    pool[static_cast<std::size_t>(i)] =
        b.zext(a[static_cast<std::size_t>(i)], 32);
  }
  const ir::node_id r3 =
      b.shri(b.add(b.add(pool[0], pool[1]), b.add(pool[2], pool[3])), 2);

  // opcode 4: multiply-add.
  const ir::node_id r4 =
      b.add(widened_mul(b, a[0], c[0]), acc);

  ir::node_id out = r4;
  const std::array<std::pair<std::uint64_t, ir::node_id>, 4> arms = {
      std::pair{3ull, r3}, std::pair{2ull, r2}, std::pair{1ull, r1},
      std::pair{0ull, r0}};
  for (const auto& [code, val] : arms) {
    out = b.mux(b.eq(opcode, b.constant(3, code)), val, out);
  }
  b.output(out);
  return g;
}

ir::graph build_ml_datapath1() {
  ir::graph g("ml_datapath1");
  ir::builder b(g);
  // Quantized activation on 3 lanes: shift-scale, bias, relu6-style clamp.
  for (int lane = 0; lane < 3; ++lane) {
    const std::string sfx = std::to_string(lane);
    const ir::node_id x = b.zext(b.input(8, "x" + sfx), 16);
    const ir::node_id bias = b.input(16, "bias" + sfx);
    const ir::node_id scaled = b.add(b.shli(x, 4), b.shli(x, 1));
    const ir::node_id biased = b.add(scaled, bias);
    const ir::node_id cap = b.constant(16, 6 << 8);
    const ir::node_id clamped = b.mux(b.ult(cap, biased), cap, biased);
    const ir::node_id sign = b.slice(biased, 15, 1);
    b.output(b.mux(sign, b.constant(16, 0), clamped));
  }
  return g;
}

ir::graph build_ml_datapath2(int macs) {
  ISDC_CHECK(macs >= 1 && macs <= 32);
  ir::graph g("ml_datapath2");
  ir::builder b(g);
  // Sequential 16-bit MAC chain: the systolic inner loop unrolled; the
  // dependence chain makes this a deep pipeline at 2500 ps.
  ir::node_id acc = b.zext(b.input(16, "acc_in"), 32);
  for (int i = 0; i < macs; ++i) {
    const std::string sfx = std::to_string(i);
    const ir::node_id prod =
        b.mul(b.input(16, "a" + sfx), b.input(16, "w" + sfx));
    acc = b.add(acc, b.zext(b.shri(prod, 4), 32));
  }
  b.output(acc);
  return g;
}

}  // namespace isdc::workloads
