// Mixed arithmetic/control DAG generator: the irregular, select-heavy
// shapes of control-dominated HLS kernels, layered with the same scheme as
// build_random_dag. Output is a stable artifact of the library (see the
// guarantee on build_random_dag in registry.h): any change to the emitted
// structure must update the golden fingerprints in workloads_test.
#include <string>
#include <vector>

#include "ir/builder.h"
#include "support/check.h"
#include "support/rng.h"
#include "workloads/registry.h"

namespace isdc::workloads {

ir::graph build_mixed_dag(std::uint64_t seed, int num_ops,
                          const mixed_dag_options& options) {
  ISDC_CHECK(num_ops >= 1, "mixed dag needs at least one op");
  ISDC_CHECK(options.num_inputs >= 1, "mixed dag needs at least one input");
  ISDC_CHECK(options.layer_width >= 1, "layer_width must be positive");
  ISDC_CHECK(options.fanin_window >= 1, "fanin_window must be positive");
  ISDC_CHECK(options.width >= 1 && options.width <= 64,
             "width must be in [1, 64]");
  ISDC_CHECK(options.select_chain_length >= 1,
             "select_chain_length must be positive");

  rng r(seed);
  ir::graph g("mixed_dag_" + std::to_string(seed) + "_" +
              std::to_string(num_ops));
  ir::builder b(g);

  // Two pools drawn from the last `fanin_window` layers: datapath values
  // (width `options.width`) and 1-bit predicates (compare results). Muxes
  // select between values under a predicate; compares refill the predicate
  // pool. Layer bookkeeping mirrors build_random_dag.
  std::vector<std::vector<ir::node_id>> value_layers(1);
  for (int i = 0; i < options.num_inputs; ++i) {
    value_layers[0].push_back(b.input(options.width, "i" + std::to_string(i)));
  }
  std::vector<ir::node_id> predicates;  // all predicates built so far

  std::vector<ir::node_id> pool;
  const auto refill_pool = [&] {
    pool.clear();
    const std::size_t first =
        value_layers.size() > static_cast<std::size_t>(options.fanin_window)
            ? value_layers.size() -
                  static_cast<std::size_t>(options.fanin_window)
            : 0;
    for (std::size_t l = first; l < value_layers.size(); ++l) {
      pool.insert(pool.end(), value_layers[l].begin(), value_layers[l].end());
    }
  };
  const auto pick = [&] { return pool[r.next_below(pool.size())]; };

  const auto arith_op = [&](ir::node_id x, ir::node_id y) {
    switch (r.next_below(3)) {
      case 0: return b.add(x, y);
      case 1: return b.sub(x, y);
      default: return b.mul(x, y);
    }
  };
  const auto logic_op = [&](ir::node_id x, ir::node_id y) {
    switch (r.next_below(4)) {
      case 0: return b.band(x, y);
      case 1: return b.bor(x, y);
      case 2: return b.bxor(x, y);
      default:
        return b.rotri(x,
                       static_cast<std::uint32_t>(r.next_below(options.width)));
    }
  };
  const auto compare_op = [&](ir::node_id x, ir::node_id y) {
    switch (r.next_below(4)) {
      case 0: return b.eq(x, y);
      case 1: return b.ne(x, y);
      case 2: return b.ult(x, y);
      default: return b.ule(x, y);
    }
  };

  value_layers.emplace_back();
  refill_pool();
  int emitted = 0;
  const auto place = [&](ir::node_id out, bool predicate) {
    ++emitted;
    if (predicate) {
      predicates.push_back(out);
      return;  // predicates never enter the value pool (width mismatch)
    }
    value_layers.back().push_back(out);
    if (static_cast<int>(value_layers.back().size()) >= options.layer_width) {
      value_layers.emplace_back();
      refill_pool();
    }
  };

  const double arith_cut = options.arith_fraction;
  const double logic_cut = arith_cut + options.logic_fraction;
  const double compare_cut = logic_cut + options.compare_fraction;
  while (emitted < num_ops) {
    const double draw = r.next_double();
    if (draw < arith_cut) {
      place(arith_op(pick(), pick()), false);
    } else if (draw < logic_cut) {
      place(logic_op(pick(), pick()), false);
    } else if (draw < compare_cut) {
      place(compare_op(pick(), pick()), true);
    } else if (r.next_bool(options.select_chain_probability)) {
      // A whole select chain: each link compares the accumulator against a
      // fresh pool value and muxes between two different updates of it —
      // the classic data-dependent-control recurrence shape.
      ir::node_id acc = pick();
      for (int k = 0; k < options.select_chain_length; ++k) {
        const ir::node_id x = pick();
        const ir::node_id y = pick();
        const ir::node_id sel = compare_op(acc, x);
        const ir::node_id on_true = arith_op(acc, x);
        const ir::node_id on_false = logic_op(acc, y);
        acc = b.mux(sel, on_true, on_false);
        emitted += 3;      // sel, on_true, on_false
        place(acc, false);  // the mux itself
      }
    } else {
      // Plain mux; synthesize a predicate first when none exists yet.
      if (predicates.empty()) {
        place(compare_op(pick(), pick()), true);
      }
      const ir::node_id sel = predicates[r.next_below(predicates.size())];
      place(b.mux(sel, pick(), pick()), false);
    }
  }

  // Every sink becomes a primary output, like the Table-I generators.
  for (ir::node_id id = 0; id < g.num_nodes(); ++id) {
    if (g.users(id).empty() && g.at(id).op != ir::opcode::constant) {
      g.mark_output(id);
    }
  }
  return g;
}

}  // namespace isdc::workloads
