#include "workloads/registry.h"

namespace isdc::workloads {

const std::vector<workload_spec>& all_workloads() {
  // Table I order. 2500 ps default; 5000 ps where an individual operation
  // (a 32-bit multiply under the sky130ish library) exceeds 2500 ps,
  // following the paper's clock-selection rule.
  static const std::vector<workload_spec> specs = {
      {"ml_datapath1", 2500.0, [] { return build_ml_datapath1(); }},
      {"ml_datapath0_opcode4", 5000.0,
       [] { return build_ml_datapath0_opcode(4); }},
      {"rrot", 2500.0, [] { return build_rrot(); }},
      {"ml_datapath0_opcode3", 5000.0,
       [] { return build_ml_datapath0_opcode(3); }},
      {"binary_divide", 2500.0, [] { return build_binary_divide(); }},
      {"hsv2rgb", 5000.0, [] { return build_hsv2rgb(); }},
      {"ml_datapath0_opcode0", 5000.0,
       [] { return build_ml_datapath0_opcode(0); }},
      {"crc32", 2500.0, [] { return build_crc32(); }},
      {"ml_datapath0_opcode1", 5000.0,
       [] { return build_ml_datapath0_opcode(1); }},
      {"ml_datapath0_opcode2", 5000.0,
       [] { return build_ml_datapath0_opcode(2); }},
      {"ml_datapath0_all", 5000.0, [] { return build_ml_datapath0_all(); }},
      {"ml_datapath2", 2500.0, [] { return build_ml_datapath2(); }},
      {"float32_fast_rsqrt", 5000.0,
       [] { return build_float32_fast_rsqrt(); }},
      {"video_core", 2500.0, [] { return build_video_core_datapath(); }},
      {"internal_datapath", 2500.0, [] { return build_internal_datapath(); }},
      {"sha256", 2500.0, [] { return build_sha256(); }},
      {"fpexp_32", 5000.0, [] { return build_fpexp32(); }},
  };
  return specs;
}

const workload_spec* find_workload(std::string_view name) {
  for (const workload_spec& spec : all_workloads()) {
    if (spec.name == name) {
      return &spec;
    }
  }
  return nullptr;
}

}  // namespace isdc::workloads
