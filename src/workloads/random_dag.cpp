#include <string>
#include <vector>

#include "ir/builder.h"
#include "support/check.h"
#include "support/rng.h"
#include "workloads/registry.h"

namespace isdc::workloads {

ir::graph build_random_dag(std::uint64_t seed, int num_ops,
                           const random_dag_options& options) {
  ISDC_CHECK(num_ops >= 1, "random dag needs at least one op");
  ISDC_CHECK(options.num_inputs >= 1, "random dag needs at least one input");
  ISDC_CHECK(options.layer_width >= 1, "layer_width must be positive");
  ISDC_CHECK(options.fanin_window >= 1, "fanin_window must be positive");
  ISDC_CHECK(options.width >= 1 && options.width <= 64,
             "width must be in [1, 64]");

  rng r(seed);
  ir::graph g("random_dag_" + std::to_string(seed) + "_" +
              std::to_string(num_ops));
  ir::builder b(g);

  // Layer 0 is the primary inputs; each op layer draws operands from the
  // previous `fanin_window` layers, so layer_width controls breadth and
  // fanin_window controls how quickly long combinational paths build up.
  std::vector<std::vector<ir::node_id>> layers(1);
  for (int i = 0; i < options.num_inputs; ++i) {
    layers[0].push_back(b.input(options.width, "i" + std::to_string(i)));
  }

  std::vector<ir::node_id> pool;
  const auto refill_pool = [&] {
    pool.clear();
    const std::size_t first =
        layers.size() > static_cast<std::size_t>(options.fanin_window)
            ? layers.size() - static_cast<std::size_t>(options.fanin_window)
            : 0;
    for (std::size_t l = first; l < layers.size(); ++l) {
      pool.insert(pool.end(), layers[l].begin(), layers[l].end());
    }
  };

  layers.emplace_back();
  refill_pool();
  for (int i = 0; i < num_ops; ++i) {
    if (static_cast<int>(layers.back().size()) >= options.layer_width) {
      layers.emplace_back();
      refill_pool();
    }
    const ir::node_id x = pool[r.next_below(pool.size())];
    const ir::node_id y = pool[r.next_below(pool.size())];
    ir::node_id out;
    if (r.next_bool(options.arith_fraction)) {
      switch (r.next_below(3)) {
        case 0: out = b.add(x, y); break;
        case 1: out = b.sub(x, y); break;
        default: out = b.mul(x, y); break;
      }
    } else {
      switch (r.next_below(4)) {
        case 0: out = b.band(x, y); break;
        case 1: out = b.bor(x, y); break;
        case 2: out = b.bxor(x, y); break;
        default:
          out = b.rotri(x, static_cast<std::uint32_t>(
                               r.next_below(options.width)));
          break;
      }
    }
    layers.back().push_back(out);
  }

  // Every sink becomes a primary output, like the Table-I generators.
  for (ir::node_id id = 0; id < g.num_nodes(); ++id) {
    if (g.users(id).empty() && g.at(id).op != ir::opcode::constant) {
      g.mark_output(id);
    }
  }
  return g;
}

}  // namespace isdc::workloads
