// The 17-benchmark suite mirroring Table I of the paper.
//
// Public-algorithm benchmarks (crc32, sha256, rrot, binary-divide,
// hsv2rgb, fast-rsqrt, fpexp) are implemented from their public
// definitions; the proprietary SoC datapaths (ML-core, video-core,
// internal) are replaced by synthetic datapaths with matching op mixes and
// pipeline structure (see DESIGN.md section 4). sha256/fpexp are scaled
// (fewer rounds/terms) so the full iterative flow runs in minutes; sizes
// are parameters, so the unscaled versions remain one call away.
#ifndef ISDC_WORKLOADS_REGISTRY_H_
#define ISDC_WORKLOADS_REGISTRY_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "ir/graph.h"

namespace isdc::workloads {

struct workload_spec {
  std::string name;
  /// Paper's rule: 2500 ps unless some op's isolated delay exceeds it,
  /// then 5000 ps.
  double clock_period_ps = 2500.0;
  std::function<ir::graph()> build;
};

/// All 17 workloads, in Table I order.
const std::vector<workload_spec>& all_workloads();

/// Lookup by name; nullptr if unknown.
const workload_spec* find_workload(std::string_view name);

// Individual generators (crypto.cpp).
ir::graph build_crc32(int num_steps = 32);
ir::graph build_sha256(int rounds = 12);

// arithmetic.cpp.
ir::graph build_binary_divide(int width = 8);
ir::graph build_float32_fast_rsqrt(int newton_iterations = 2);
ir::graph build_fpexp32(int terms = 8);

// media.cpp.
ir::graph build_rrot();
ir::graph build_hsv2rgb();
ir::graph build_video_core_datapath(int pixels = 2);

// ml_core.cpp.
ir::graph build_ml_datapath0_opcode(int opcode);  // 0..4
ir::graph build_ml_datapath0_all();
ir::graph build_ml_datapath1();
ir::graph build_ml_datapath2(int macs = 8);

// datapaths.cpp.
ir::graph build_internal_datapath(int steps = 24);

// random_dag.cpp.
/// Knobs for build_random_dag. Defaults give a wide, moderately deep
/// datapath-flavoured DAG.
struct random_dag_options {
  std::uint32_t width = 16;     ///< bit width of every value
  int num_inputs = 16;          ///< primary inputs feeding the first layer
  int layer_width = 32;         ///< ops per layer (nodes / layer_width ~ depth)
  int fanin_window = 2;         ///< how many preceding layers operands reach
  double arith_fraction = 0.5;  ///< add/sub/mul share vs bitwise/rotate ops
};

/// Seed-deterministic layered DAG with `num_ops` operations over a mixed
/// arithmetic/logic op set. Built for the 1k-10k-node shapes the kernel
/// benches and differential tests sweep; not part of the Table-I registry.
ir::graph build_random_dag(std::uint64_t seed, int num_ops,
                           const random_dag_options& options = {});

}  // namespace isdc::workloads

#endif  // ISDC_WORKLOADS_REGISTRY_H_
