// The 17-benchmark suite mirroring Table I of the paper.
//
// Public-algorithm benchmarks (crc32, sha256, rrot, binary-divide,
// hsv2rgb, fast-rsqrt, fpexp) are implemented from their public
// definitions; the proprietary SoC datapaths (ML-core, video-core,
// internal) are replaced by synthetic datapaths with matching op mixes and
// pipeline structure (see DESIGN.md section 4). sha256/fpexp are scaled
// (fewer rounds/terms) so the full iterative flow runs in minutes; sizes
// are parameters, so the unscaled versions remain one call away.
#ifndef ISDC_WORKLOADS_REGISTRY_H_
#define ISDC_WORKLOADS_REGISTRY_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "ir/graph.h"

namespace isdc::workloads {

struct workload_spec {
  std::string name;
  /// Paper's rule: 2500 ps unless some op's isolated delay exceeds it,
  /// then 5000 ps.
  double clock_period_ps = 2500.0;
  std::function<ir::graph()> build;
};

/// All 17 workloads, in Table I order.
const std::vector<workload_spec>& all_workloads();

/// Lookup by name; nullptr if unknown.
const workload_spec* find_workload(std::string_view name);

// Individual generators (crypto.cpp).
ir::graph build_crc32(int num_steps = 32);
ir::graph build_sha256(int rounds = 12);

// arithmetic.cpp.
ir::graph build_binary_divide(int width = 8);
ir::graph build_float32_fast_rsqrt(int newton_iterations = 2);
ir::graph build_fpexp32(int terms = 8);

// media.cpp.
ir::graph build_rrot();
ir::graph build_hsv2rgb();
ir::graph build_video_core_datapath(int pixels = 2);

// ml_core.cpp.
ir::graph build_ml_datapath0_opcode(int opcode);  // 0..4
ir::graph build_ml_datapath0_all();
ir::graph build_ml_datapath1();
ir::graph build_ml_datapath2(int macs = 8);

// datapaths.cpp.
ir::graph build_internal_datapath(int steps = 24);

// random_dag.cpp.
/// Knobs for build_random_dag. Defaults give a wide, moderately deep
/// datapath-flavoured DAG.
struct random_dag_options {
  std::uint32_t width = 16;     ///< bit width of every value
  int num_inputs = 16;          ///< primary inputs feeding the first layer
  int layer_width = 32;         ///< ops per layer (nodes / layer_width ~ depth)
  int fanin_window = 2;         ///< how many preceding layers operands reach
  double arith_fraction = 0.5;  ///< add/sub/mul share vs bitwise/rotate ops
};

/// Seed-deterministic layered DAG with `num_ops` operations over a mixed
/// arithmetic/logic op set. Built for the 1k-10k-node shapes the kernel
/// benches and differential tests sweep; not part of the Table-I registry.
///
/// Stability guarantee: for a fixed (seed, num_ops, options) tuple the
/// generated graph is a stable artifact of the library — node ids, opcodes,
/// widths, operand edges and outputs never change across refactors, so fuzz
/// repro seeds and golden fingerprints recorded against it stay valid.
/// Changing the generator's output is a breaking change that must update
/// the golden fingerprints in workloads_test and be called out in
/// CHANGES.md. (build_mixed_dag and stitch_registry below carry the same
/// guarantee.)
ir::graph build_random_dag(std::uint64_t seed, int num_ops,
                           const random_dag_options& options = {});

// mixed.cpp.
/// Knobs for build_mixed_dag: a mixed arithmetic/control generator layering
/// muxes, compares and select-heavy chains onto the build_random_dag layer
/// scheme — the irregular control-dominated shapes dynamically-scheduled
/// HLS sees, which the hand-written Table-I registry never exercises.
/// Class fractions need not sum to 1; the remaining mass goes to muxes.
struct mixed_dag_options {
  std::uint32_t width = 16;        ///< bit width of datapath values
  int num_inputs = 16;             ///< primary inputs feeding layer 0
  int layer_width = 32;            ///< ops per layer
  int fanin_window = 3;            ///< how many preceding layers operands reach
  double arith_fraction = 0.35;    ///< add/sub/mul
  double logic_fraction = 0.25;    ///< and/or/xor/rotate
  double compare_fraction = 0.15;  ///< eq/ne/ult/ule (1-bit predicates)
  /// Probability that a mux draw instead emits a whole select chain:
  /// acc' = mux(cmp(acc, x), f(acc, x), g(acc, y)) iterated
  /// select_chain_length times — a deep, irregular, control-dependent cone.
  double select_chain_probability = 0.15;
  int select_chain_length = 4;
};

/// Seed-deterministic mixed arithmetic/control DAG with `num_ops`
/// operations (chains may overshoot by at most one chain). Same stability
/// guarantee as build_random_dag.
ir::graph build_mixed_dag(std::uint64_t seed, int num_ops,
                          const mixed_dag_options& options = {});

// stitch.cpp.
/// How stitch_designs composes its parts.
enum class stitch_mode {
  /// Parts are copied side by side as independent islands: inputs stay
  /// inputs, every part output stays a primary output. The result has one
  /// weakly-connected component per (connected) part — the shape the
  /// memory-budgeted partitioned scheduler streams.
  parallel,
  /// Part k > 0's inputs are driven by part k-1's outputs (round-robin,
  /// width-adapted with zext/slice), producing one big connected design.
  chained,
};

struct stitch_options {
  stitch_mode mode = stitch_mode::parallel;
  std::string name = "stitched";
};

/// Composes `parts` into one design. Deterministic: node ids are assigned
/// part by part in input order, and in parallel mode every part's nodes are
/// structurally identical to the original (so a component extracted back
/// out of the stitched graph schedules bit-identically to the part run
/// solo). Parts must be non-empty and pass ir::verify.
ir::graph stitch_designs(const std::vector<const ir::graph*>& parts,
                         const stitch_options& options = {});

/// Seed-deterministically stitches registry kernels (plus occasional
/// random/mixed DAG filler) until the result has at least `target_nodes`
/// nodes — the 10k-100k-node designs the scale/stress harness sweeps.
/// Same stability guarantee as build_random_dag.
ir::graph stitch_registry(std::uint64_t seed, std::size_t target_nodes,
                          const stitch_options& options = {});

}  // namespace isdc::workloads

#endif  // ISDC_WORKLOADS_REGISTRY_H_
