// rrot, hsv2rgb and the video-core datapath — the media-flavoured
// benchmarks of Table I. video-core is a synthetic stand-in for the
// proprietary SoC datapath: an RGB->YCbCr conversion (constant multipliers
// decomposed into shift-adds, as RTL generators emit), alpha blending and
// saturation over a small pixel vector.
#include <array>
#include <vector>

#include "ir/builder.h"
#include "support/check.h"
#include "workloads/registry.h"

namespace isdc::workloads {

ir::graph build_rrot() {
  ir::graph g("rrot");
  ir::builder b(g);
  std::array<ir::node_id, 3> x = {b.input(32, "x0"), b.input(32, "x1"),
                                  b.input(32, "x2")};
  std::array<ir::node_id, 3> amt = {b.input(6, "amt0"), b.input(6, "amt1"),
                                    b.input(6, "amt2")};
  // Rotate-and-mix lanes: a variable rotate, xor diffusion and an addend
  // chain. The per-op delay sum exceeds 2500 ps, so classic SDC splits
  // each lane across two stages; the synthesized stage cloud (carry-save
  // fused adds, aligned barrel paths) is fast enough that feedback merges
  // the lane back into one — the paper's rrot shape (2 stages / 192
  // register bits down to 1 stage / 96).
  for (int i = 0; i < 3; ++i) {
    const auto xi = x[static_cast<std::size_t>(i)];
    const auto xj = x[static_cast<std::size_t>((i + 1) % 3)];
    const auto xk = x[static_cast<std::size_t>((i + 2) % 3)];
    const auto ai = amt[static_cast<std::size_t>(i)];
    const ir::node_id t1 = b.rotr(xi, ai);
    const ir::node_id u = b.bxor(t1, xj);
    const ir::node_id v = b.bxor(u, b.rotri(xj, 9));
    const ir::node_id s1 = b.add(v, xk);
    const ir::node_id s2 = b.add(s1, t1);
    b.output(b.bxor(s2, b.rotri(xk, 7)));
  }
  return g;
}

ir::graph build_hsv2rgb() {
  ir::graph g("hsv2rgb");
  ir::builder b(g);
  const ir::node_id h = b.input(8, "h");
  const ir::node_id s = b.input(8, "s");
  const ir::node_id v = b.input(8, "v");

  const auto to16 = [&](ir::node_id n) { return b.zext(n, 16); };
  const ir::node_id max255 = b.constant(8, 255);

  // region = (h*6) >> 8 in [0,5]; f = fractional part within the region.
  const ir::node_id h6 = b.mul(to16(h), b.constant(16, 6));
  const ir::node_id region = b.slice(h6, 8, 3);
  const ir::node_id f = b.slice(h6, 0, 8);

  // p = v*(255-s) >> 8;  q = v*(255 - s*f/256) >> 8;
  // t = v*(255 - s*(255-f)/256) >> 8.
  const auto scale = [&](ir::node_id a, ir::node_id c) {
    return b.slice(b.mul(to16(a), to16(c)), 8, 8);
  };
  const ir::node_id p = scale(v, b.sub(max255, s));
  const ir::node_id q = scale(v, b.sub(max255, scale(s, f)));
  const ir::node_id t = scale(v, b.sub(max255, scale(s, b.sub(max255, f))));

  // 6-way select by region.
  const auto pick = [&](std::uint64_t r0, ir::node_id a0, std::uint64_t r1,
                        ir::node_id a1, std::uint64_t r2, ir::node_id a2,
                        std::uint64_t r3, ir::node_id a3, std::uint64_t r4,
                        ir::node_id a4, ir::node_id a5) {
    ir::node_id out = a5;
    const std::array<std::pair<std::uint64_t, ir::node_id>, 5> arms = {
        std::pair{r4, a4}, std::pair{r3, a3}, std::pair{r2, a2},
        std::pair{r1, a1}, std::pair{r0, a0}};
    for (const auto& [code, val] : arms) {
      out = b.mux(b.eq(region, b.constant(3, code)), val, out);
    }
    return out;
  };
  b.output(pick(0, v, 1, q, 2, p, 3, p, 4, t, v));  // r
  b.output(pick(0, t, 1, v, 2, v, 3, q, 4, p, p));  // g
  b.output(pick(0, p, 1, p, 2, t, 3, v, 4, v, q));  // b
  return g;
}

ir::graph build_video_core_datapath(int pixels) {
  ISDC_CHECK(pixels >= 1 && pixels <= 8);
  ir::graph g("video_core");
  ir::builder b(g);

  // Constant multiply by shift-add decomposition (how RTL emits x*66 etc).
  const auto const_mul = [&](ir::node_id x16, std::uint32_t k) {
    std::vector<ir::node_id> terms;
    for (int bit = 0; bit < 16; ++bit) {
      if ((k >> bit) & 1) {
        terms.push_back(b.shli(x16, static_cast<std::uint32_t>(bit)));
      }
    }
    ISDC_CHECK(!terms.empty());
    return b.add_tree(terms);
  };
  const auto saturate8 = [&](ir::node_id x16) {
    // Clamp a 16-bit intermediate into [0, 255].
    const ir::node_id over = b.ult(b.constant(16, 255), x16);
    return b.slice(b.mux(over, b.constant(16, 255), x16), 0, 8);
  };

  const ir::node_id alpha = b.input(8, "alpha");
  for (int px = 0; px < pixels; ++px) {
    const std::string sfx = std::to_string(px);
    const ir::node_id r = b.zext(b.input(8, "r" + sfx), 16);
    const ir::node_id gg = b.zext(b.input(8, "g" + sfx), 16);
    const ir::node_id bl = b.zext(b.input(8, "b" + sfx), 16);
    const ir::node_id ovl = b.zext(b.input(8, "ovl" + sfx), 16);

    // BT.601-style luma/chroma from shift-add constant multipliers.
    std::array<ir::node_id, 4> luma_terms = {
        const_mul(r, 66), const_mul(gg, 129), const_mul(bl, 25),
        b.constant(16, 4096)};
    const ir::node_id y = b.shri(b.add_tree(luma_terms), 8);
    const ir::node_id cb_raw =
        b.add(b.sub(const_mul(bl, 112),
                    b.add(const_mul(r, 38), const_mul(gg, 74))),
              b.constant(16, 32768));
    const ir::node_id cr_raw =
        b.add(b.sub(const_mul(r, 112),
                    b.add(const_mul(gg, 94), const_mul(bl, 18))),
              b.constant(16, 32768));

    // Alpha blend the luma with an overlay plane, then saturate.
    const ir::node_id blended =
        b.add(b.mul(y, b.zext(alpha, 16)),
              b.mul(ovl, b.zext(b.sub(b.constant(8, 255), alpha), 16)));
    b.output(saturate8(b.shri(blended, 8)));
    b.output(saturate8(b.shri(cb_raw, 8)));
    b.output(saturate8(b.shri(cr_raw, 8)));
  }
  return g;
}

}  // namespace isdc::workloads
