// crc32 and (scaled) sha256 — the public crypto benchmarks of Table I.
#include <array>

#include "ir/builder.h"
#include "support/check.h"
#include "workloads/registry.h"

namespace isdc::workloads {

ir::graph build_crc32(int num_steps) {
  ISDC_CHECK(num_steps >= 1 && num_steps <= 32);
  ir::graph g("crc32");
  ir::builder b(g);
  const ir::node_id crc_in = b.input(32, "crc_in");
  const ir::node_id data = b.input(32, "data");
  const ir::node_id poly = b.constant(32, 0xedb88320u);

  // Bitwise (reflected) CRC-32, one unrolled step per data bit.
  ir::node_id crc = crc_in;
  for (int i = 0; i < num_steps; ++i) {
    const ir::node_id data_bit =
        b.slice(data, static_cast<std::uint32_t>(i), 1);
    const ir::node_id lsb = b.slice(crc, 0, 1);
    const ir::node_id feedback = b.bxor(lsb, data_bit);
    const ir::node_id shifted = b.shri(crc, 1);
    crc = b.mux(feedback, b.bxor(shifted, poly), shifted);
  }
  b.output(crc);
  return g;
}

namespace {

constexpr std::array<std::uint32_t, 64> sha256_k = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

}  // namespace

ir::graph build_sha256(int rounds) {
  ISDC_CHECK(rounds >= 1 && rounds <= 64);
  ir::graph g("sha256");
  ir::builder b(g);

  // Working state enters as inputs (the midstate of a streaming core).
  std::array<ir::node_id, 8> state{};
  const char* names[8] = {"a", "b", "c", "d", "e", "f", "g", "h"};
  for (int i = 0; i < 8; ++i) {
    state[static_cast<std::size_t>(i)] = b.input(32, names[i]);
  }
  // Message schedule: the first min(rounds, 16) words are inputs, later
  // words are expanded with the sigma functions.
  std::vector<ir::node_id> w;
  for (int t = 0; t < std::min(rounds, 16); ++t) {
    w.push_back(b.input(32, "w" + std::to_string(t)));
  }
  for (int t = 16; t < rounds; ++t) {
    const ir::node_id w15 = w[static_cast<std::size_t>(t - 15)];
    const ir::node_id w2 = w[static_cast<std::size_t>(t - 2)];
    const ir::node_id s0 = b.bxor(b.bxor(b.rotri(w15, 7), b.rotri(w15, 18)),
                                  b.shri(w15, 3));
    const ir::node_id s1 = b.bxor(b.bxor(b.rotri(w2, 17), b.rotri(w2, 19)),
                                  b.shri(w2, 10));
    std::array<ir::node_id, 4> terms = {w[static_cast<std::size_t>(t - 16)],
                                        s0,
                                        w[static_cast<std::size_t>(t - 7)],
                                        s1};
    w.push_back(b.add_tree(terms));
  }

  auto [a, bb, c, d, e, f, gg, h] = state;
  for (int t = 0; t < rounds; ++t) {
    const ir::node_id big_s1 =
        b.bxor(b.bxor(b.rotri(e, 6), b.rotri(e, 11)), b.rotri(e, 25));
    const ir::node_id ch = b.bxor(b.band(e, f), b.band(b.bnot(e), gg));
    const ir::node_id k = b.constant(32, sha256_k[static_cast<std::size_t>(t)]);
    std::array<ir::node_id, 5> t1_terms = {h, big_s1, ch, k,
                                           w[static_cast<std::size_t>(t)]};
    const ir::node_id t1 = b.add_tree(t1_terms);
    const ir::node_id big_s0 =
        b.bxor(b.bxor(b.rotri(a, 2), b.rotri(a, 13)), b.rotri(a, 22));
    const ir::node_id maj =
        b.bxor(b.bxor(b.band(a, bb), b.band(a, c)), b.band(bb, c));
    const ir::node_id t2 = b.add(big_s0, maj);
    h = gg;
    gg = f;
    f = e;
    e = b.add(d, t1);
    d = c;
    c = bb;
    bb = a;
    a = b.add(t1, t2);
  }
  // Final feed-forward addition of the incoming state.
  const std::array<ir::node_id, 8> out = {a, bb, c, d, e, f, gg, h};
  for (int i = 0; i < 8; ++i) {
    b.output(b.add(out[static_cast<std::size_t>(i)],
                   state[static_cast<std::size_t>(i)]));
  }
  return g;
}

}  // namespace isdc::workloads
