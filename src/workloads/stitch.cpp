// Design composition: stitch_designs copies whole graphs side by side
// (parallel islands) or end to end (chained), and stitch_registry grows
// 10k-100k-node stress designs out of registry kernels plus generated
// filler. Parallel stitching is the workload for the memory-budgeted
// partitioned scheduler: each part becomes one weakly-connected component
// whose nodes are structurally identical to the original part, so a
// component extracted back out schedules bit-identically to the part solo.
#include <string>
#include <vector>

#include "ir/builder.h"
#include "support/check.h"
#include "support/rng.h"
#include "workloads/registry.h"

namespace isdc::workloads {

namespace {

/// Adapts `value` to `width` bits: zext when narrower, low slice when wider.
ir::node_id adapt_width(ir::builder& b, ir::node_id value,
                        std::uint32_t width) {
  const std::uint32_t have = b.target().width(value);
  if (have < width) {
    return b.zext(value, width);
  }
  if (have > width) {
    return b.slice(value, 0, width);
  }
  return value;
}

}  // namespace

ir::graph stitch_designs(const std::vector<const ir::graph*>& parts,
                         const stitch_options& options) {
  ISDC_CHECK(!parts.empty(), "stitch_designs needs at least one part");
  ir::graph g(options.name);
  ir::builder b(g);

  // Mapped primary outputs of the previous part (chained mode drivers).
  std::vector<ir::node_id> prev_outputs;
  // (part index, mapped output id) for every part output, for final marking.
  std::vector<std::pair<std::size_t, ir::node_id>> part_outputs;

  for (std::size_t p = 0; p < parts.size(); ++p) {
    const ir::graph& part = *parts[p];
    ISDC_CHECK(part.num_nodes() > 0,
               "stitch_designs part " << p << " is empty");
    std::vector<ir::node_id> to_new(part.num_nodes(), ir::invalid_node);
    std::size_t input_index = 0;
    for (ir::node_id id = 0; id < part.num_nodes(); ++id) {
      const ir::node& n = part.at(id);
      if (n.op == ir::opcode::input &&
          options.mode == stitch_mode::chained && p > 0) {
        // Drive this input from the previous part's outputs, round-robin.
        const ir::node_id driver =
            prev_outputs[input_index++ % prev_outputs.size()];
        to_new[id] = adapt_width(b, driver, n.width);
        continue;
      }
      std::vector<ir::node_id> operands(n.operands.begin(), n.operands.end());
      for (ir::node_id& o : operands) {
        o = to_new[o];
      }
      std::string name = n.name;
      if (n.op == ir::opcode::input) {
        name = "p" + std::to_string(p) + "_" + name;  // keep names unique
      }
      to_new[id] = g.add_node(n.op, n.width, std::move(operands), n.value,
                              std::move(name));
    }
    prev_outputs.clear();
    for (const ir::node_id out : part.outputs()) {
      prev_outputs.push_back(to_new[out]);
      part_outputs.emplace_back(p, to_new[out]);
    }
  }

  if (options.mode == stitch_mode::parallel) {
    // Every part output stays a primary output, even ones with internal
    // users: that keeps each island structurally identical to its part.
    for (const auto& [p, id] : part_outputs) {
      g.mark_output(id);
    }
  } else {
    // Chained: the last part's outputs are the design outputs; earlier
    // part outputs that nothing consumed (fan-out mismatch) also surface
    // so the graph has no dangling sinks.
    for (const auto& [p, id] : part_outputs) {
      if (p + 1 == parts.size() || g.users(id).empty()) {
        g.mark_output(id);
      }
    }
  }
  return g;
}

ir::graph stitch_registry(std::uint64_t seed, std::size_t target_nodes,
                          const stitch_options& options) {
  ISDC_CHECK(target_nodes > 0, "stitch_registry needs a positive target");
  const std::vector<workload_spec>& registry = all_workloads();
  rng r(seed);

  // Draw registry kernels, with every fifth-or-so draw replaced by a
  // generated filler DAG so large stitches are not just kernel repeats.
  std::vector<ir::graph> parts;
  std::size_t total = 0;
  while (total < target_nodes) {
    const std::uint64_t draw = r.next_below(registry.size() + 2);
    if (draw < registry.size()) {
      parts.push_back(registry[draw].build());
    } else if (draw == registry.size()) {
      parts.push_back(build_random_dag(r.next(),
                                       static_cast<int>(r.next_in(500, 2000))));
    } else {
      parts.push_back(build_mixed_dag(r.next(),
                                      static_cast<int>(r.next_in(500, 2000))));
    }
    total += parts.back().num_nodes();
  }

  std::vector<const ir::graph*> pointers;
  pointers.reserve(parts.size());
  for (const ir::graph& part : parts) {
    pointers.push_back(&part);
  }
  stitch_options opts = options;
  if (opts.name == stitch_options{}.name) {
    opts.name = "stitched_" + std::to_string(seed) + "_" +
                std::to_string(target_nodes);
  }
  return stitch_designs(pointers, opts);
}

}  // namespace isdc::workloads
