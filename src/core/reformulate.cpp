#include "core/reformulate.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

#include "core/row_bitset.h"
#include "ir/adjacency.h"
#include "support/check.h"
#include "support/thread_pool.h"

namespace isdc::core {

namespace {
using sched::delay_matrix;

constexpr float nc = delay_matrix::not_connected;

/// Forward-pass panel width: 64 rows advance together through a
/// transposed scratch buffer, so the per-edge work (operand-span setup,
/// compares) amortizes across lanes and each per-column step is a handful
/// of full-width vector ops. The width is chiefly latency hiding: a
/// chain-like graph serializes each column on its predecessor's
/// store-to-load forward plus the max/add/blend chain, and that fixed
/// ~20-cycle latency covers 64 rows at once. The buffer (kLanes * n
/// floats, ~1.2 MB at n = 4096) must stay L2-resident: 96 lanes thrashes
/// a 2 MB L2 and measures ~2x slower. GCC vector extensions are used
/// directly because the loop-carried lane-max accumulator defeats the
/// autovectorizer's SLP pass (it emits scalar maxss otherwise).
constexpr std::size_t kLanes = 64;
constexpr std::size_t kMaskWords = kLanes / 8;  // change bytes per column

typedef float vf4 __attribute__((vector_size(16)));
typedef char vc4 __attribute__((vector_size(4)));
typedef float vf8 __attribute__((vector_size(32)));
typedef char vc8 __attribute__((vector_size(8)));

/// Classic 4x4 in-register transpose (the _MM_TRANSPOSE4_PS shuffle
/// network). The panel buffer is a transpose of the matrix rows, so both
/// the panel load and the write-back move 4x4 blocks with full-width
/// vector loads on both sides instead of per-element scalar scatters.
inline void transpose4(vf4& a, vf4& b, vf4& c, vf4& d) {
  const vf4 t0 = __builtin_shufflevector(a, b, 0, 4, 1, 5);
  const vf4 t1 = __builtin_shufflevector(a, b, 2, 6, 3, 7);
  const vf4 t2 = __builtin_shufflevector(c, d, 0, 4, 1, 5);
  const vf4 t3 = __builtin_shufflevector(c, d, 2, 6, 3, 7);
  a = __builtin_shufflevector(t0, t2, 0, 1, 4, 5);
  b = __builtin_shufflevector(t0, t2, 2, 3, 6, 7);
  c = __builtin_shufflevector(t1, t3, 0, 1, 4, 5);
  d = __builtin_shufflevector(t1, t3, 2, 3, 6, 7);
}

/// Scalar forward pass over one target row u (Alg. 2 lines 2-12). Why this
/// is bit-identical to the reference: for a fixed pair (u, v) the
/// reference reads D[u][p] for operands p of v (the live values, already
/// updated at iteration v' = p of the same pass) and D[v][v] (never
/// written by the forward pass, snapshotted in `selfs`). All reads are in
/// row u or on the diagonal, so iterating u outermost and v ascending
/// performs the same floating-point ops on the same bits. Taking max over
/// operand path delays before adding self(v) is bit-identical to maxing
/// the sums: float addition of a common addend is monotone, and the final
/// add runs on the winning operand's exact value. Maxing the raw row
/// values (nc included) equals the reference's skip-if-unconnected max
/// because nc = -1 sorts below every physical delay (>= 0).
void forward_row_scalar(const ir::flat_adjacency& adj, const float* selfs,
                        ir::node_id u, float* row, std::size_t n,
                        std::uint64_t* bits, bool& any) {
  for (ir::node_id v = u + 1; v < n; ++v) {
    float best = nc;
    for (const ir::node_id p : adj.operands(v)) {
      const float via = p >= u ? row[p] : nc;
      best = best < via ? via : best;
    }
    if (best == nc) {
      continue;
    }
    const float cand = best + selfs[v];
    const float cur = row[v];
    if (cur > cand || cur == nc) {
      row[v] = cand;
      bits[v >> 6] |= 1ull << (v & 63);
      any = true;
    }
  }
}

/// Packs a 0/1 byte mask into the row's change-bitmap words; mask[j]
/// stands for column base + j. Returns whether any bit was set. The mask
/// storage must extend (zero-padded) to a multiple of 8 bytes past count.
bool pack_mask_into_bits(const unsigned char* mask, std::size_t base,
                         std::size_t count, std::uint64_t* bits) {
  bool any = false;
  for (std::size_t k = 0; k < count; k += 8) {
    std::uint64_t eight = 0;
    std::memcpy(&eight, mask + k, 8);
    if (eight == 0) {
      continue;
    }
    any = true;
    for (std::size_t j = 0; j < 8 && k + j < count; ++j) {
      if (mask[k + j]) {
        const std::size_t v = base + k + j;
        bits[v >> 6] |= 1ull << (v & 63);
      }
    }
  }
  return any;
}

/// Forward-pass edge scan over one panel (Alg. 2 lines 2-12 for kLanes
/// rows at once), generic over the lane-vector width W. Per column v it
/// maxes the transposed operand columns lane-wise, adds self(v), and
/// lowers the column in place, recording each lowering in a change byte
/// (0x00/0xff) at edge time. The per-lane arithmetic and operand order
/// are identical at any W, so the result is bit-identical across widths.
/// Must be force-inlined into its (possibly target-attributed) wrapper so
/// the vector ops compile under the wrapper's ISA.
template <class VF, class VC, std::size_t W>
__attribute__((always_inline)) inline void edge_scan_impl(
    const ir::flat_adjacency& adj, const float* selfs, float* bf,
    std::uint64_t* cmask, std::size_t u0, std::size_t n) {
  constexpr std::size_t kChunks = kLanes / W;
  const VF ncv = VF{} + nc;  // vector-scalar add broadcasts
  for (ir::node_id v = static_cast<ir::node_id>(u0 + 1); v < n; ++v) {
    const auto ops = adj.operands(v);
    std::uint64_t* cw = cmask + kMaskWords * v;
    if (ops.empty()) {
      for (std::size_t w = 0; w < kMaskWords; ++w) {
        cw[w] = 0;
      }
      continue;
    }
    VF best[kChunks];
    for (std::size_t h = 0; h < kChunks; ++h) {
      best[h] = ncv;
    }
    for (const ir::node_id p : ops) {
      if (static_cast<std::size_t>(p) < u0) {
        continue;
      }
      const VF* col =
          reinterpret_cast<const VF*>(bf + static_cast<std::size_t>(p) * kLanes);
      for (std::size_t h = 0; h < kChunks; ++h) {
        best[h] = best[h] < col[h] ? col[h] : best[h];
      }
    }
    const float sv = selfs[v];
    VF* cur = reinterpret_cast<VF*>(bf + static_cast<std::size_t>(v) * kLanes);
    unsigned char cb[kLanes];
    for (std::size_t h = 0; h < kChunks; ++h) {
      const VF cand = best[h] + sv;
      const VF old = cur[h];
      const auto lower = (best[h] != ncv) & ((old > cand) | (old == ncv));
      cur[h] = lower ? cand : old;
      const VC cm = __builtin_convertvector(lower, VC);
      std::memcpy(cb + W * h, &cm, W);
    }
    std::memcpy(cw, cb, kLanes);
  }
}

#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__)
#define ISDC_X86_GCC 1
/// 8-wide edge scan for AVX2 machines. The 32-byte vectors only make
/// sense here: under baseline SSE2, GCC scalarizes (and stack-spills)
/// oversized vector selects instead of splitting them.
__attribute__((target("avx2"))) void edge_scan_avx2(
    const ir::flat_adjacency& adj, const float* selfs, float* bf,
    std::uint64_t* cmask, std::size_t u0, std::size_t n) {
  edge_scan_impl<vf8, vc8, 8>(adj, selfs, bf, cmask, u0, n);
}

/// Reverse-pass row merge, 8 lanes at a time, producing change bits
/// straight from the compare masks (movmskps) instead of going through a
/// byte mask that a second pass re-packs. For w in [lo, n):
///   cand = AddSelf ? src[w] + self : src[w]
///   lower iff src[w] connected and (row[w] > cand or row[w] unconnected)
/// writes row[w] = cand on lowering and ORs bit w into `bits`. The
/// per-lane arithmetic and predicates match the scalar merge exactly, so
/// results stay bit-identical (AddSelf is a template flag rather than a
/// self of 0.0f so the no-add flavour never rewrites -0.0f to +0.0f).
template <bool AddSelf>
__attribute__((always_inline)) inline bool merge_row_bits_impl(
    const float* src, float* row, float self, std::size_t lo, std::size_t n,
    std::uint64_t* bits) {
  const vf8 ncv = vf8{} + nc;
  bool any = false;
  std::size_t w = lo;
  const auto scalar_step = [&](std::size_t i) {
    const float via = src[i];
    const float cand = AddSelf ? via + self : via;
    const float cur = row[i];
    if ((via != nc) & ((cur > cand) | (cur == nc))) {
      row[i] = cand;
      bits[i >> 6] |= 1ull << (i & 63);
      any = true;
    }
  };
  for (; w < n && (w & 63) != 0; ++w) {
    scalar_step(w);
  }
  for (; w + 64 <= n; w += 64) {
    std::uint64_t word = 0;
    for (std::size_t j = 0; j < 8; ++j) {
      const std::size_t base = w + 8 * j;
      vf8 via, cur;
      std::memcpy(&via, src + base, sizeof(via));
      std::memcpy(&cur, row + base, sizeof(cur));
      const vf8 cand = AddSelf ? via + self : via;
      const auto lower = (via != ncv) & ((cur > cand) | (cur == ncv));
      const vf8 out = lower ? cand : cur;
      std::memcpy(row + base, &out, sizeof(out));
      const unsigned m =
          static_cast<unsigned>(__builtin_ia32_movmskps256((vf8)lower));
      word |= static_cast<std::uint64_t>(m) << (8 * j);
    }
    if (word != 0) {
      bits[w >> 6] |= word;
      any = true;
    }
  }
  for (; w < n; ++w) {
    scalar_step(w);
  }
  return any;
}

__attribute__((target("avx2"))) bool merge_row_add_avx2(
    const float* src, float* row, float self, std::size_t lo, std::size_t n,
    std::uint64_t* bits) {
  return merge_row_bits_impl<true>(src, row, self, lo, n, bits);
}

__attribute__((target("avx2"))) bool merge_row_raw_avx2(
    const float* src, float* row, std::size_t lo, std::size_t n,
    std::uint64_t* bits) {
  return merge_row_bits_impl<false>(src, row, 0.0f, lo, n, bits);
}
#endif

void edge_scan_generic(const ir::flat_adjacency& adj, const float* selfs,
                       float* bf, std::uint64_t* cmask, std::size_t u0,
                       std::size_t n) {
  edge_scan_impl<vf4, vc4, 4>(adj, selfs, bf, cmask, u0, n);
}

/// Reverse pass over one row u (Alg. 2 lines 13-16): compose over user
/// rows c > u read live — rows already fully reformulated, exactly like
/// the reference — streaming each user row contiguously. The merge writes
/// row u in place and records changed columns in a byte mask (branchless,
/// auto-vectorizable), folded into the change bitmap afterwards.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    !defined(__SANITIZE_THREAD__)
// Resolve the hottest loops to AVX2 code at load time when the CPU has
// it: the baseline x86-64 build only assumes SSE2, and the 4-lane vector
// panels plus the streaming row merges all double their width under
// -mavx2 for free. Not under TSan: target_clones emits IFUNCs, whose
// resolvers run during relocation — before libtsan's initializer — and
// the instrumented prologue faults in __tsan_func_entry. The baseline
// build is what the race detector wants to see anyway.
#define ISDC_HOT_CLONES __attribute__((target_clones("default", "avx2")))
#else
#define ISDC_HOT_CLONES
#endif

ISDC_HOT_CLONES
bool reverse_row(const ir::flat_adjacency& adj, const float* selfs,
                 delay_matrix& d, ir::node_id u, std::size_t n, float* du,
                 unsigned char* mask, std::uint64_t* bits) {
  const auto users = adj.users(u);
  if (users.empty()) {
    return false;
  }
  const float self = selfs[u];
  float* row = d.row_mut(u).data();
#if defined(ISDC_X86_GCC)
  const bool have_avx2 = __builtin_cpu_supports("avx2") != 0;
#else
  const bool have_avx2 = false;
#endif
  bool any = false;
  if (users.size() == 1) {
    // One user: no accumulator needed, merge straight from its row.
    const ir::node_id c = users[0];
    const float* rowc = d.row(c).data();
#if defined(ISDC_X86_GCC)
    if (have_avx2) {
      any = merge_row_add_avx2(rowc, row, self, c, n, bits);
    }
#endif
    if (!have_avx2) {
      // Byte-mask fallback: the merge stores a change byte per column in
      // [c, n); only the gap before c needs explicit zeroing.
      std::memset(mask + u + 1, 0, c - u - 1);
      for (std::size_t w = c; w < n; ++w) {
        const float via = rowc[w];
        const float cand = via + self;
        const float cur = row[w];
        const bool lower = (via != nc) & ((cur > cand) | (cur == nc));
        row[w] = lower ? cand : cur;
        mask[w] = lower;
      }
      any = pack_mask_into_bits(mask + u + 1, u + 1, n - u - 1, bits);
    }
  } else {
    std::fill(du + u + 1, du + n, nc);
    for (const ir::node_id c : users) {
      const float* rowc = d.row(c).data();
      for (std::size_t w = c; w < n; ++w) {
        const float via = rowc[w];
        const float cand = via + self;
        const bool take = (via != nc) & (du[w] < cand);
        du[w] = take ? cand : du[w];
      }
    }
#if defined(ISDC_X86_GCC)
    if (have_avx2) {
      any = merge_row_raw_avx2(du, row, u + 1, n, bits);
    }
#endif
    if (!have_avx2) {
      for (std::size_t w = u + 1; w < n; ++w) {
        const float cand = du[w];
        const float cur = row[w];
        const bool lower = (cand != nc) & ((cur > cand) | (cur == nc));
        row[w] = lower ? cand : cur;
        mask[w] = lower;
      }
      any = pack_mask_into_bits(mask + u + 1, u + 1, n - u - 1, bits);
    }
  }
  return any;
}

/// Forward pass over one kLanes-row panel: transpose the rows into `bf`
/// (kLanes * n floats, 64-byte aligned), run the edge scan, transpose
/// back, and fold the per-column change bytes into the rows' change-bitmap
/// words. Reads and writes nothing outside the panel's own rows (plus the
/// shared read-only selfs/adjacency), so panels can run concurrently; the
/// caller decides when to log. `any` (kLanes flags) reports which rows
/// changed.
ISDC_HOT_CLONES
void forward_panel(const ir::flat_adjacency& adj, const float* selfs,
                   delay_matrix& d, std::size_t u0, std::size_t n,
                   std::size_t wpr, std::uint64_t* changed_bits, float* bf,
                   std::uint64_t* cmask, bool* any) {
  float* rows[kLanes];
  for (std::size_t i = 0; i < kLanes; ++i) {
    rows[i] = d.row_mut(static_cast<ir::node_id>(u0 + i)).data();
  }
  // Panel load: 4x4 block transpose so both the row reads and the
  // buffer writes are full vector width (u0 is kLanes-aligned, so the
  // block start is too; only the final n % 4 columns go element-wise).
  std::size_t v = u0;
  for (; v + 4 <= n; v += 4) {
    for (std::size_t q = 0; q < kLanes; q += 4) {
      vf4 a, b, c, e;
      std::memcpy(&a, rows[q + 0] + v, sizeof(a));
      std::memcpy(&b, rows[q + 1] + v, sizeof(b));
      std::memcpy(&c, rows[q + 2] + v, sizeof(c));
      std::memcpy(&e, rows[q + 3] + v, sizeof(e));
      transpose4(a, b, c, e);
      std::memcpy(bf + (v + 0) * kLanes + q, &a, sizeof(a));
      std::memcpy(bf + (v + 1) * kLanes + q, &b, sizeof(b));
      std::memcpy(bf + (v + 2) * kLanes + q, &c, sizeof(c));
      std::memcpy(bf + (v + 3) * kLanes + q, &e, sizeof(e));
    }
  }
  for (; v < n; ++v) {
    for (std::size_t i = 0; i < kLanes; ++i) {
      bf[v * kLanes + i] = rows[i][v];
    }
  }
#if defined(ISDC_X86_GCC)
  if (__builtin_cpu_supports("avx2") != 0) {
    edge_scan_avx2(adj, selfs, bf, cmask, u0, n);
  } else {
    edge_scan_generic(adj, selfs, bf, cmask, u0, n);
  }
#else
  edge_scan_generic(adj, selfs, bf, cmask, u0, n);
#endif
  // Panel store: the same block transpose back into the rows. Columns
  // below u0 + 1 were never touched by the edge scan, so copying the
  // whole panel back is a plain overwrite with identical values there.
  v = u0;
  for (; v + 4 <= n; v += 4) {
    for (std::size_t q = 0; q < kLanes; q += 4) {
      vf4 a, b, c, e;
      std::memcpy(&a, bf + (v + 0) * kLanes + q, sizeof(a));
      std::memcpy(&b, bf + (v + 1) * kLanes + q, sizeof(b));
      std::memcpy(&c, bf + (v + 2) * kLanes + q, sizeof(c));
      std::memcpy(&e, bf + (v + 3) * kLanes + q, sizeof(e));
      transpose4(a, b, c, e);
      std::memcpy(rows[q + 0] + v, &a, sizeof(a));
      std::memcpy(rows[q + 1] + v, &b, sizeof(b));
      std::memcpy(rows[q + 2] + v, &c, sizeof(c));
      std::memcpy(rows[q + 3] + v, &e, sizeof(e));
    }
  }
  for (; v < n; ++v) {
    for (std::size_t i = 0; i < kLanes; ++i) {
      rows[i][v] = bf[v * kLanes + i];
    }
  }
  // Fold the change bytes (0x00 / 0xff per lane) into per-lane
  // change-bitmap words, 64 columns at a time.
  for (std::size_t i = 0; i < kLanes; ++i) {
    any[i] = false;
  }
  for (std::size_t k = (u0 + 1) / 64; k < wpr; ++k) {
    const std::size_t lo = k * 64;
    const std::size_t hi = std::min(n, lo + 64);
    std::uint64_t acc[kLanes] = {};
    for (std::size_t c = std::max(lo, u0 + 1); c < hi; ++c) {
      for (std::size_t w = 0; w < kMaskWords; ++w) {
        const std::uint64_t x = cmask[kMaskWords * c + w];
        if (x == 0) {
          continue;
        }
        for (std::size_t j = 0; j < 8; ++j) {
          acc[8 * w + j] |= ((x >> (8 * j)) & 1ull) << (c - lo);
        }
      }
    }
    for (std::size_t i = 0; i < kLanes; ++i) {
      changed_bits[(u0 + i) * wpr + k] |= acc[i];
      any[i] |= acc[i] != 0;
    }
  }
}

/// Per-thread scratch for the parallel kernel: the transposed panel
/// buffer and change-byte mask of the forward pass, and the accumulator
/// row plus byte mask of the reverse merge. Thread-local so concurrent
/// panel/row tasks never share storage; grown on demand and reused across
/// calls.
struct alg2_scratch {
  std::vector<float> buf;
  std::vector<std::uint64_t> cmask;
  std::vector<float> du;
  std::vector<unsigned char> mask;

  float* aligned_bf(std::size_t n) {
    if (buf.size() < kLanes * n + 16) {
      buf.resize(kLanes * n + 16);
    }
    if (cmask.size() < kMaskWords * n) {
      cmask.resize(kMaskWords * n);
    }
    return reinterpret_cast<float*>(
        (reinterpret_cast<std::uintptr_t>(buf.data()) + 63) &
        ~static_cast<std::uintptr_t>(63));
  }

  void ensure_reverse(std::size_t n) {
    if (du.size() < n) {
      du.resize(n);
    }
    if (mask.size() < n + 8) {
      // assign (not resize) so the 8 padding bytes past n stay zero: the
      // mask pack reads them word-at-a-time.
      mask.assign(n + 8, 0);
    }
  }
};

alg2_scratch& tl_alg2_scratch() {
  static thread_local alg2_scratch s;
  return s;
}

}  // namespace

ISDC_HOT_CLONES
std::vector<sched::delay_matrix::node_pair> reformulate_alg2(
    const ir::graph& g, sched::delay_matrix& d) {
  const std::size_t n = g.num_nodes();
  ISDC_CHECK(d.size() == n, "matrix size mismatch");
  std::vector<sched::delay_matrix::node_pair> changed;
  if (n == 0) {
    return changed;
  }
  const ir::flat_adjacency& adj = g.flat();
  const std::size_t wpr = d.words_per_row();
  std::vector<std::uint64_t> changed_bits(n * wpr, 0);

  // Neither pass writes the diagonal, so one contiguous snapshot serves
  // all self(v) reads.
  std::vector<float> selfs(n);
  for (ir::node_id v = 0; v < n; ++v) {
    selfs[v] = d.self(v);
  }

  // The two passes are fused into one descending sweep: the forward pass
  // only ever reads/writes its own row plus the diagonal snapshot, and
  // the reverse pass for row u reads user rows c > u after their full
  // (forward + reverse) reformulation. Running rows from the top down —
  // forward first, reverse immediately after — therefore performs the
  // exact same operations as full-forward-then-full-reverse, while each
  // row is reverse-merged while still cache-hot from its forward panel
  // instead of being re-fetched from DRAM a second time.
  std::vector<float> du(n);
  std::vector<unsigned char> mask(n + 8, 0);

  const std::size_t panel_rows = n - n % kLanes;
  for (ir::node_id u = static_cast<ir::node_id>(panel_rows); u < n; ++u) {
    float* row = d.row_mut(u).data();
    std::uint64_t* bits = changed_bits.data() + u * wpr;
    bool any = false;
    forward_row_scalar(adj, selfs.data(), u, row, n, bits, any);
    if (any) {
      d.log_row_changes(u, {bits, wpr});
    }
  }
  for (ir::node_id u = static_cast<ir::node_id>(n);
       u-- > static_cast<ir::node_id>(panel_rows);) {
    if (reverse_row(adj, selfs.data(), d, u, n, du.data(), mask.data(),
                    changed_bits.data() + u * wpr)) {
      d.log_row_changes(u, {changed_bits.data() + u * wpr, wpr});
    }
  }

  // Forward pass, kLanes rows per panel, through a transposed n x kLanes
  // buffer — column v of the panel is contiguous, so every per-edge step
  // runs as one 8-wide vector op instead of 8 scalar ones. No per-lane
  // triangle guard is needed: the matrix stores not_connected in the
  // strict lower triangle (constructed that way, and every writer only
  // lowers already-connected cells), so lane i reading column p < u0 + i
  // sees nc naturally and never produces a lowering — the diagonal
  // included. Columns p < u0 are all-nc for the whole panel and skipped
  // outright, which also lets the transpose start at u0. The edge loop
  // records each lowering in a byte mask as it happens, so the write-back
  // is a pure scatter copy plus a mask-to-bitmap fold — it never has to
  // re-read and diff the old row values.
  // The AVX2 edge scan reads the panel buffer as 32-byte vectors, so
  // over-align it by hand: std::vector's allocator is not a reliable
  // source of over-aligned memory (GCC 12 emits a plain operator new for
  // vector<32-byte-vector> inside target clones, then faults on the
  // aligned stores).
  std::vector<float> buf(kLanes * n + 16);
  std::vector<std::uint64_t> cmask(kMaskWords * n);
  float* bf = reinterpret_cast<float*>(
      (reinterpret_cast<std::uintptr_t>(buf.data()) + 63) &
      ~static_cast<std::uintptr_t>(63));
  for (std::size_t u0 = panel_rows; u0 != 0;) {
    u0 -= kLanes;
    bool any[kLanes];
    forward_panel(adj, selfs.data(), d, u0, n, wpr, changed_bits.data(),
                  bf, cmask.data(), any);
    for (std::size_t i = 0; i < kLanes; ++i) {
      const ir::node_id u = static_cast<ir::node_id>(u0 + i);
      if (any[i]) {
        d.log_row_changes(u, {changed_bits.data() + u * wpr, wpr});
      }
    }
    for (std::size_t i = kLanes; i-- > 0;) {
      const ir::node_id u = static_cast<ir::node_id>(u0 + i);
      if (reverse_row(adj, selfs.data(), d, u, n, du.data(), mask.data(),
                      changed_bits.data() + u * wpr)) {
        d.log_row_changes(u, {changed_bits.data() + u * wpr, wpr});
      }
    }
  }

  detail::append_pairs_from_bitmap(changed_bits, n, wpr, changed);
  return changed;
}

// The parallel kernel un-fuses the sweep into a full forward pass then a
// full reverse pass — documented bit-identical to the fused order above —
// because the two parallelize along different axes. Forward: a panel (or
// scalar tail row) reads and writes nothing but its own rows plus the
// shared diagonal snapshot, so panels partition over the pool with no
// ordering constraint at all. Reverse: row u's merge reads its user rows
// c > u after their full reformulation, a dependency DAG along user
// edges; level scheduling (level(u) = 1 + max level of u's users, 0 for
// sinks) runs whole levels in parallel — every row a level reads is
// finalized by construction, and each row writes only itself. Change-log
// bitmap words are row-owned throughout; the matrix change log is folded
// serially at the end (take_changed_pairs sorts, so fold order is
// immaterial). A long user chain degrades to one row per level — serial,
// exactly as the data dependences demand.
std::vector<sched::delay_matrix::node_pair> reformulate_alg2(
    const ir::graph& g, sched::delay_matrix& d, thread_pool* pool) {
  if (pool == nullptr || pool->size() <= 1) {
    return reformulate_alg2(g, d);
  }
  const std::size_t n = g.num_nodes();
  ISDC_CHECK(d.size() == n, "matrix size mismatch");
  std::vector<sched::delay_matrix::node_pair> changed;
  if (n == 0) {
    return changed;
  }
  const ir::flat_adjacency& adj = g.flat();
  const std::size_t wpr = d.words_per_row();
  std::vector<std::uint64_t> changed_bits(n * wpr, 0);

  std::vector<float> selfs(n);
  for (ir::node_id v = 0; v < n; ++v) {
    selfs[v] = d.self(v);
  }

  // Forward pass: one task per kLanes-row panel plus one per tail row,
  // each through thread-local transposed scratch.
  const std::size_t panel_rows = n - n % kLanes;
  const std::size_t num_panels = panel_rows / kLanes;
  pool->parallel_for(num_panels + (n - panel_rows), [&](std::size_t t) {
    if (t < num_panels) {
      alg2_scratch& s = tl_alg2_scratch();
      float* bf = s.aligned_bf(n);
      bool any[kLanes];
      forward_panel(adj, selfs.data(), d, t * kLanes, n, wpr,
                    changed_bits.data(), bf, s.cmask.data(), any);
    } else {
      const ir::node_id u =
          static_cast<ir::node_id>(panel_rows + (t - num_panels));
      bool any = false;
      forward_row_scalar(adj, selfs.data(), u, d.row_mut(u).data(), n,
                         changed_bits.data() + u * wpr, any);
    }
  });

  // Reverse pass: level schedule over the user-edge dependency DAG.
  // Users have higher ids, so one descending sweep computes every level.
  std::vector<std::uint32_t> level(n, 0);
  std::uint32_t max_level = 0;
  for (std::size_t u = n; u-- > 0;) {
    std::uint32_t lv = 0;
    for (const ir::node_id c : adj.users(static_cast<ir::node_id>(u))) {
      lv = std::max(lv, level[c] + 1);
    }
    level[u] = lv;
    max_level = std::max(max_level, lv);
  }
  // Counting sort into level buckets. Level 0 rows have no users — their
  // reverse merge is a no-op — and are skipped outright.
  std::vector<std::uint32_t> level_off(max_level + 2, 0);
  for (std::size_t u = 0; u < n; ++u) {
    ++level_off[level[u] + 1];
  }
  for (std::size_t lv = 1; lv < level_off.size(); ++lv) {
    level_off[lv] += level_off[lv - 1];
  }
  std::vector<ir::node_id> by_level(n);
  {
    std::vector<std::uint32_t> cursor(level_off.begin(),
                                      level_off.end() - 1);
    for (std::size_t u = 0; u < n; ++u) {
      by_level[cursor[level[u]]++] = static_cast<ir::node_id>(u);
    }
  }
  for (std::uint32_t lv = 1; lv <= max_level; ++lv) {
    const std::uint32_t lo = level_off[lv];
    const std::uint32_t hi = level_off[lv + 1];
    pool->parallel_for(hi - lo, [&](std::size_t i) {
      const ir::node_id u = by_level[lo + i];
      alg2_scratch& s = tl_alg2_scratch();
      s.ensure_reverse(n);
      reverse_row(adj, selfs.data(), d, u, n, s.du.data(), s.mask.data(),
                  changed_bits.data() + u * wpr);
    });
  }

  if (d.tracking_changes()) {
    for (std::size_t u = 0; u < n; ++u) {
      d.log_row_changes(static_cast<ir::node_id>(u),
                        {changed_bits.data() + u * wpr, wpr});
    }
  }
  detail::append_pairs_from_bitmap(changed_bits, n, wpr, changed);
  return changed;
}

std::vector<sched::delay_matrix::node_pair> reformulate_alg2_reference(
    const ir::graph& g, sched::delay_matrix& d) {
  const std::size_t n = g.num_nodes();
  ISDC_CHECK(d.size() == n, "matrix size mismatch");
  std::vector<sched::delay_matrix::node_pair> changed;

  // Forward pass (Alg. 2 lines 2-12): node ids are topological.
  std::vector<float> dv(n);
  for (ir::node_id v = 0; v < n; ++v) {
    if (g.at(v).operands.empty()) {
      continue;
    }
    std::fill(dv.begin(), dv.end(), delay_matrix::not_connected);
    const float self = d.self(v);
    for (ir::node_id p : g.at(v).operands) {
      for (ir::node_id u = 0; u <= p; ++u) {
        const float via = d.get(u, p);
        if (via != delay_matrix::not_connected && dv[u] < via + self) {
          dv[u] = via + self;
        }
      }
    }
    for (ir::node_id u = 0; u < v; ++u) {
      if (dv[u] == delay_matrix::not_connected) {
        continue;
      }
      const float current = d.get(u, v);
      if (current > dv[u] || current == delay_matrix::not_connected) {
        d.set(u, v, dv[u]);
        changed.emplace_back(u, v);
      }
    }
  }

  // Reverse pass (Alg. 2 lines 13-16): the user-side mirror image.
  std::vector<float> du(n);
  for (ir::node_id u = n; u-- > 0;) {
    if (g.users(u).empty()) {
      continue;
    }
    std::fill(du.begin(), du.end(), delay_matrix::not_connected);
    const float self = d.self(u);
    for (ir::node_id c : g.users(u)) {
      for (ir::node_id w = c; w < n; ++w) {
        const float via = d.get(c, w);
        if (via != delay_matrix::not_connected && du[w] < via + self) {
          du[w] = via + self;
        }
      }
    }
    for (ir::node_id w = u + 1; w < n; ++w) {
      if (du[w] == delay_matrix::not_connected) {
        continue;
      }
      const float current = d.get(u, w);
      if (current > du[w] || current == delay_matrix::not_connected) {
        d.set(u, w, du[w]);
        changed.emplace_back(u, w);
      }
    }
  }
  return changed;
}

}  // namespace isdc::core
