#include "core/reformulate.h"

#include <algorithm>
#include <vector>

#include "support/check.h"

namespace isdc::core {

namespace {
using sched::delay_matrix;
}  // namespace

std::vector<sched::delay_matrix::node_pair> reformulate_alg2(
    const ir::graph& g, sched::delay_matrix& d) {
  const std::size_t n = g.num_nodes();
  ISDC_CHECK(d.size() == n, "matrix size mismatch");
  std::vector<sched::delay_matrix::node_pair> changed;

  // Forward pass (Alg. 2 lines 2-12): node ids are topological.
  std::vector<float> dv(n);
  for (ir::node_id v = 0; v < n; ++v) {
    if (g.at(v).operands.empty()) {
      continue;
    }
    std::fill(dv.begin(), dv.end(), delay_matrix::not_connected);
    const float self = d.self(v);
    for (ir::node_id p : g.at(v).operands) {
      for (ir::node_id u = 0; u <= p; ++u) {
        const float via = d.get(u, p);
        if (via != delay_matrix::not_connected && dv[u] < via + self) {
          dv[u] = via + self;
        }
      }
    }
    for (ir::node_id u = 0; u < v; ++u) {
      if (dv[u] == delay_matrix::not_connected) {
        continue;
      }
      const float current = d.get(u, v);
      if (current > dv[u] || current == delay_matrix::not_connected) {
        d.set(u, v, dv[u]);
        changed.emplace_back(u, v);
      }
    }
  }

  // Reverse pass (Alg. 2 lines 13-16): the user-side mirror image.
  std::vector<float> du(n);
  for (ir::node_id u = n; u-- > 0;) {
    if (g.users(u).empty()) {
      continue;
    }
    std::fill(du.begin(), du.end(), delay_matrix::not_connected);
    const float self = d.self(u);
    for (ir::node_id c : g.users(u)) {
      for (ir::node_id w = c; w < n; ++w) {
        const float via = d.get(c, w);
        if (via != delay_matrix::not_connected && du[w] < via + self) {
          du[w] = via + self;
        }
      }
    }
    for (ir::node_id w = u + 1; w < n; ++w) {
      if (du[w] == delay_matrix::not_connected) {
        continue;
      }
      const float current = d.get(u, w);
      if (current > du[w] || current == delay_matrix::not_connected) {
        d.set(u, w, du[w]);
        changed.emplace_back(u, w);
      }
    }
  }
  return changed;
}

}  // namespace isdc::core
