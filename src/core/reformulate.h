// SDC reformulation (paper Alg. 2): after feedback lowers some matrix
// entries, a forward topological pass recomposes every pair's delay from
// operand-side sub-paths (taking the max over operands, then the min
// against the existing entry), and a reverse topological pass does the
// symmetric user-side propagation to catch the complementary paths the
// forward pass cannot. O(n^2)-flavoured, versus the O(n^3) Floyd-Warshall
// reference in floyd_warshall.h.
//
// Both reformulations report the pairs they changed; hand-driven loops can
// feed them to sched::scheduler_instance::resolve (the engine consumes the
// delay_matrix change log instead).
#ifndef ISDC_CORE_REFORMULATE_H_
#define ISDC_CORE_REFORMULATE_H_

#include <vector>

#include "sched/delay_matrix.h"

namespace isdc {
class thread_pool;
}

namespace isdc::core {

enum class reformulation_mode {
  alg2,            ///< the paper's O(n^2) approximation (default)
  floyd_warshall,  ///< the exact O(n^3) reformulation
  none,            ///< use the feedback-updated matrix as-is
  /// The original scalar kernels, bit-identical to the fast ones on the
  /// matrix; kept selectable for differential testing.
  alg2_reference,
  floyd_warshall_reference,
};

/// Applies Alg. 2 in place, row-major: the forward pass exploits that each
/// target row only reads its own prefix (see reformulate.cpp), so the
/// max-plus scans run over contiguous rows instead of strided column
/// walks; both passes read edges from the graph's flat CSR adjacency.
/// Returns the (u, v) pairs whose entry changed, deduplicated and sorted.
std::vector<sched::delay_matrix::node_pair> reformulate_alg2(
    const ir::graph& g, sched::delay_matrix& d);

/// Thread-parallel variant, bit-identical to the serial kernel (and the
/// reference) at any pool width. The forward pass partitions row panels
/// over the pool (each touches only its own rows); the reverse pass level-
/// schedules the user-edge dependency DAG, running each level's rows in
/// parallel. Change-log bitmap words are row-owned, so no atomics.
/// pool == nullptr (or a 1-thread pool) falls back to the serial kernel.
std::vector<sched::delay_matrix::node_pair> reformulate_alg2(
    const ir::graph& g, sched::delay_matrix& d, thread_pool* pool);

/// The original column-walking implementation; same matrix afterwards,
/// but a pair touched by both passes appears once per change. Reference
/// for differential tests.
std::vector<sched::delay_matrix::node_pair> reformulate_alg2_reference(
    const ir::graph& g, sched::delay_matrix& d);

}  // namespace isdc::core

#endif  // ISDC_CORE_REFORMULATE_H_
