// SDC reformulation (paper Alg. 2): after feedback lowers some matrix
// entries, a forward topological pass recomposes every pair's delay from
// operand-side sub-paths (taking the max over operands, then the min
// against the existing entry), and a reverse topological pass does the
// symmetric user-side propagation to catch the complementary paths the
// forward pass cannot. O(n^2)-flavoured, versus the O(n^3) Floyd-Warshall
// reference in floyd_warshall.h.
//
// Both reformulations report the pairs they changed; hand-driven loops can
// feed them to sched::scheduler_instance::resolve (the engine consumes the
// delay_matrix change log instead).
#ifndef ISDC_CORE_REFORMULATE_H_
#define ISDC_CORE_REFORMULATE_H_

#include <vector>

#include "sched/delay_matrix.h"

namespace isdc::core {

enum class reformulation_mode {
  alg2,            ///< the paper's O(n^2) approximation (default)
  floyd_warshall,  ///< the exact O(n^3) reference
  none,            ///< use the feedback-updated matrix as-is
};

/// Applies Alg. 2 in place; returns the (u, v) pairs whose entry changed
/// (a pair touched by both passes appears once per change).
std::vector<sched::delay_matrix::node_pair> reformulate_alg2(
    const ir::graph& g, sched::delay_matrix& d);

}  // namespace isdc::core

#endif  // ISDC_CORE_REFORMULATE_H_
