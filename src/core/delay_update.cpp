#include "core/delay_update.h"

namespace isdc::core {

std::vector<sched::delay_matrix::node_pair> update_delay_matrix(
    sched::delay_matrix& d,
    std::span<const evaluated_subgraph> evaluations) {
  std::vector<sched::delay_matrix::node_pair> lowered;
  for (const evaluated_subgraph& eval : evaluations) {
    const float delay = static_cast<float>(eval.delay_ps);
    for (const ir::node_id u : eval.members) {
      for (const ir::node_id v : eval.members) {
        const float current = d.get(u, v);
        if (current != sched::delay_matrix::not_connected &&
            current > delay) {
          d.set(u, v, delay);
          lowered.emplace_back(u, v);
        }
      }
    }
  }
  return lowered;
}

}  // namespace isdc::core
