#include "core/delay_update.h"

namespace isdc::core {

std::size_t update_delay_matrix(sched::delay_matrix& d,
                                std::span<const evaluated_subgraph>
                                    evaluations) {
  std::size_t lowered = 0;
  for (const evaluated_subgraph& eval : evaluations) {
    const float delay = static_cast<float>(eval.delay_ps);
    for (ir::node_id u : eval.members) {
      for (ir::node_id v : eval.members) {
        const float current = d.get(u, v);
        if (current != sched::delay_matrix::not_connected &&
            current > delay) {
          d.set(u, v, delay);
          ++lowered;
        }
      }
    }
  }
  return lowered;
}

}  // namespace isdc::core
