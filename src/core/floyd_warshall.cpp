#include "core/floyd_warshall.h"

#include "support/check.h"

namespace isdc::core {

std::vector<sched::delay_matrix::node_pair> reformulate_floyd_warshall(
    const ir::graph& g, sched::delay_matrix& d) {
  const std::size_t n = g.num_nodes();
  ISDC_CHECK(d.size() == n, "matrix size mismatch");
  using sched::delay_matrix;
  std::vector<sched::delay_matrix::node_pair> changed;
  // Standard FW ordering; the graph is a DAG with topological ids, so only
  // u <= w <= v triples can compose.
  for (ir::node_id w = 0; w < n; ++w) {
    const float self = d.self(w);
    for (ir::node_id u = 0; u <= w; ++u) {
      const float first = d.get(u, w);
      if (first == delay_matrix::not_connected) {
        continue;
      }
      for (ir::node_id v = w; v < n; ++v) {
        if (u == v) {
          continue;
        }
        const float second = d.get(w, v);
        if (second == delay_matrix::not_connected) {
          continue;
        }
        const float composed = first + second - self;
        const float current = d.get(u, v);
        if (current == delay_matrix::not_connected || composed < current) {
          d.set(u, v, composed);
          changed.emplace_back(u, v);
        }
      }
    }
  }
  return changed;
}

}  // namespace isdc::core
