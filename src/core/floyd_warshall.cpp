#include "core/floyd_warshall.h"

#include <algorithm>
#include <cstring>

#include "core/row_bitset.h"
#include "support/check.h"

namespace isdc::core {

namespace {

using sched::delay_matrix;

/// One relaxation sweep of target row u against pivot row w:
///   rowu[v] = min(rowu[v], first + roww[v] - self)   for v in [w, n)
/// restricted to columns where the pivot row is connected. Branch-free
/// select so the compiler vectorizes it; `connw` (the pivot row's
/// connectivity bitset) gates the sweep so all-disconnected 64-column
/// spans are skipped without touching the floats. rowu and roww alias
/// when u == w (the reference's self-relaxation); each lane then reads
/// its own cell before writing it, which matches the reference's
/// cell-at-a-time order.
void relax_row(float* rowu, const float* roww, const std::uint64_t* connw,
               float first, float self, std::size_t w, std::size_t n) {
  constexpr float nc = delay_matrix::not_connected;
  const std::size_t words = (n + 63) >> 6;
  for (std::size_t k = w >> 6; k < words; ++k) {
    if (connw[k] == 0) {
      continue;
    }
    const std::size_t lo = std::max(k << 6, w);
    const std::size_t hi = std::min(n, (k + 1) << 6);
    for (std::size_t v = lo; v < hi; ++v) {
      const float second = roww[v];
      const float composed = first + second - self;
      const float cur = rowu[v];
      const bool better =
          (second != nc) & ((cur == nc) | (composed < cur));
      rowu[v] = better ? composed : cur;
    }
  }
}

}  // namespace

// Why the blocked kernel is bit-identical to the reference triple loop:
// ids are topological, so D[w][v] is not_connected for v < w, and the
// reference only relaxes (u, v) with u <= w <= v. Hence pivot w mutates
// rows u <= w only, and row w itself is mutated by pivots >= w only —
// every pivot row is read in its pre-kernel state, except the aliased
// u == w sweep, which reads each cell before writing it in both versions.
// That makes target rows independent: processing row u against its pivots
// w = u..n-1 in ascending order performs exactly the reference's
// floating-point operations on exactly the same operand bits. Panels of
// kPanel target rows then share each pivot-row stream, cutting memory
// traffic per cell by the panel height.
std::vector<sched::delay_matrix::node_pair> reformulate_floyd_warshall(
    const ir::graph& g, sched::delay_matrix& d) {
  const std::size_t n = g.num_nodes();
  ISDC_CHECK(d.size() == n, "matrix size mismatch");
  std::vector<sched::delay_matrix::node_pair> changed;
  if (n == 0) {
    return changed;
  }
  constexpr float nc = delay_matrix::not_connected;
  constexpr std::size_t kPanel = 16;
  const std::size_t wpr = d.words_per_row();

  // Pivot-row connectivity, snapshot once: a pivot row can only gain
  // connections after its own pivot step has run, so the pristine bitset
  // stays valid for every read the kernel performs.
  std::vector<std::uint64_t> conn(n * wpr, 0);
  detail::build_connectivity(d, conn);

  std::vector<float> before(kPanel * n);
  std::vector<std::uint64_t> changed_bits(n * wpr, 0);

  for (std::size_t u0 = 0; u0 < n; u0 += kPanel) {
    const std::size_t u1 = std::min(n, u0 + kPanel);
    for (std::size_t u = u0; u < u1; ++u) {
      std::memcpy(before.data() + (u - u0) * n, d.row(u).data(),
                  n * sizeof(float));
    }
    for (std::size_t w = u0; w < n; ++w) {
      const float* roww = d.row(static_cast<ir::node_id>(w)).data();
      const float self = roww[w];
      const std::uint64_t* connw = conn.data() + w * wpr;
      const std::size_t uend = std::min(u1, w + 1);
      for (std::size_t u = u0; u < uend; ++u) {
        float* rowu = d.row_mut(static_cast<ir::node_id>(u)).data();
        const float first = rowu[w];
        if (first == nc) {
          continue;
        }
        relax_row(rowu, roww, connw, first, self, w, n);
      }
    }
    for (std::size_t u = u0; u < u1; ++u) {
      const float* now = d.row(static_cast<ir::node_id>(u)).data();
      const float* old = before.data() + (u - u0) * n;
      std::uint64_t* bits = changed_bits.data() + u * wpr;
      for (std::size_t v = 0; v < n; ++v) {
        bits[v >> 6] |= static_cast<std::uint64_t>(now[v] != old[v])
                        << (v & 63);
      }
    }
  }

  if (d.tracking_changes()) {
    for (std::size_t u = 0; u < n; ++u) {
      d.log_row_changes(static_cast<ir::node_id>(u),
                        {changed_bits.data() + u * wpr, wpr});
    }
  }
  detail::append_pairs_from_bitmap(changed_bits, n, wpr, changed);
  return changed;
}

std::vector<sched::delay_matrix::node_pair>
reformulate_floyd_warshall_reference(const ir::graph& g,
                                     sched::delay_matrix& d) {
  const std::size_t n = g.num_nodes();
  ISDC_CHECK(d.size() == n, "matrix size mismatch");
  std::vector<sched::delay_matrix::node_pair> changed;
  // Standard FW ordering; the graph is a DAG with topological ids, so only
  // u <= w <= v triples can compose.
  for (ir::node_id w = 0; w < n; ++w) {
    const float self = d.self(w);
    for (ir::node_id u = 0; u <= w; ++u) {
      const float first = d.get(u, w);
      if (first == delay_matrix::not_connected) {
        continue;
      }
      for (ir::node_id v = w; v < n; ++v) {
        if (u == v) {
          continue;
        }
        const float second = d.get(w, v);
        if (second == delay_matrix::not_connected) {
          continue;
        }
        const float composed = first + second - self;
        const float current = d.get(u, v);
        if (current == delay_matrix::not_connected || composed < current) {
          d.set(u, v, composed);
          changed.emplace_back(u, v);
        }
      }
    }
  }
  return changed;
}

}  // namespace isdc::core
