#include "core/floyd_warshall.h"

#include <algorithm>
#include <cstring>

#include "core/row_bitset.h"
#include "support/check.h"
#include "support/thread_pool.h"

namespace isdc::core {

namespace {

using sched::delay_matrix;

/// One relaxation sweep of target row u against pivot row w:
///   rowu[v] = min(rowu[v], first + roww[v] - self)   for v in [w, n)
/// restricted to columns where the pivot row is connected. Branch-free
/// select so the compiler vectorizes it; `connw` (the pivot row's
/// connectivity bitset) gates the sweep so all-disconnected 64-column
/// spans are skipped without touching the floats. rowu and roww alias
/// when u == w (the reference's self-relaxation); each lane then reads
/// its own cell before writing it, which matches the reference's
/// cell-at-a-time order.
void relax_row(float* rowu, const float* roww, const std::uint64_t* connw,
               float first, float self, std::size_t w, std::size_t n) {
  constexpr float nc = delay_matrix::not_connected;
  const std::size_t words = (n + 63) >> 6;
  for (std::size_t k = w >> 6; k < words; ++k) {
    if (connw[k] == 0) {
      continue;
    }
    const std::size_t lo = std::max(k << 6, w);
    const std::size_t hi = std::min(n, (k + 1) << 6);
    for (std::size_t v = lo; v < hi; ++v) {
      const float second = roww[v];
      const float composed = first + second - self;
      const float cur = rowu[v];
      const bool better =
          (second != nc) & ((cur == nc) | (composed < cur));
      rowu[v] = better ? composed : cur;
    }
  }
}

/// relax_row plus incremental change recording into the row's bitmap
/// words. A bit is set only when the write actually changes the stored
/// value (`composed != cur` — `better` alone is not enough: a composition
/// can coincidentally equal not_connected and "lower" an unconnected cell
/// onto its own bits). Since relaxations only ever lower a cell, some
/// recording event fires iff the final value differs from the pristine
/// one, which is exactly the serial kernel's before/after row diff.
void relax_row_logged(float* rowu, const float* roww,
                      const std::uint64_t* connw, float first, float self,
                      std::size_t w, std::size_t n, std::uint64_t* bitsu) {
  constexpr float nc = delay_matrix::not_connected;
  const std::size_t words = (n + 63) >> 6;
  for (std::size_t k = w >> 6; k < words; ++k) {
    if (connw[k] == 0) {
      continue;
    }
    const std::size_t lo = std::max(k << 6, w);
    const std::size_t hi = std::min(n, (k + 1) << 6);
    std::uint64_t cbits = 0;
    for (std::size_t v = lo; v < hi; ++v) {
      const float second = roww[v];
      const float composed = first + second - self;
      const float cur = rowu[v];
      const bool better =
          (second != nc) & ((cur == nc) | (composed < cur));
      rowu[v] = better ? composed : cur;
      cbits |= static_cast<std::uint64_t>(better & (composed != cur))
               << (v & 63);
    }
    bitsu[k] |= cbits;
  }
}

}  // namespace

// Why the blocked kernel is bit-identical to the reference triple loop:
// ids are topological, so D[w][v] is not_connected for v < w, and the
// reference only relaxes (u, v) with u <= w <= v. Hence pivot w mutates
// rows u <= w only, and row w itself is mutated by pivots >= w only —
// every pivot row is read in its pre-kernel state, except the aliased
// u == w sweep, which reads each cell before writing it in both versions.
// That makes target rows independent: processing row u against its pivots
// w = u..n-1 in ascending order performs exactly the reference's
// floating-point operations on exactly the same operand bits. Panels of
// kPanel target rows then share each pivot-row stream, cutting memory
// traffic per cell by the panel height.
std::vector<sched::delay_matrix::node_pair> reformulate_floyd_warshall(
    const ir::graph& g, sched::delay_matrix& d) {
  const std::size_t n = g.num_nodes();
  ISDC_CHECK(d.size() == n, "matrix size mismatch");
  std::vector<sched::delay_matrix::node_pair> changed;
  if (n == 0) {
    return changed;
  }
  constexpr float nc = delay_matrix::not_connected;
  constexpr std::size_t kPanel = 16;
  const std::size_t wpr = d.words_per_row();

  // Pivot-row connectivity, snapshot once: a pivot row can only gain
  // connections after its own pivot step has run, so the pristine bitset
  // stays valid for every read the kernel performs.
  std::vector<std::uint64_t> conn(n * wpr, 0);
  detail::build_connectivity(d, conn);

  std::vector<float> before(kPanel * n);
  std::vector<std::uint64_t> changed_bits(n * wpr, 0);

  for (std::size_t u0 = 0; u0 < n; u0 += kPanel) {
    const std::size_t u1 = std::min(n, u0 + kPanel);
    for (std::size_t u = u0; u < u1; ++u) {
      std::memcpy(before.data() + (u - u0) * n, d.row(u).data(),
                  n * sizeof(float));
    }
    for (std::size_t w = u0; w < n; ++w) {
      const float* roww = d.row(static_cast<ir::node_id>(w)).data();
      const float self = roww[w];
      const std::uint64_t* connw = conn.data() + w * wpr;
      const std::size_t uend = std::min(u1, w + 1);
      for (std::size_t u = u0; u < uend; ++u) {
        float* rowu = d.row_mut(static_cast<ir::node_id>(u)).data();
        const float first = rowu[w];
        if (first == nc) {
          continue;
        }
        relax_row(rowu, roww, connw, first, self, w, n);
      }
    }
    for (std::size_t u = u0; u < u1; ++u) {
      const float* now = d.row(static_cast<ir::node_id>(u)).data();
      const float* old = before.data() + (u - u0) * n;
      std::uint64_t* bits = changed_bits.data() + u * wpr;
      for (std::size_t v = 0; v < n; ++v) {
        bits[v >> 6] |= static_cast<std::uint64_t>(now[v] != old[v])
                        << (v & 63);
      }
    }
  }

  if (d.tracking_changes()) {
    for (std::size_t u = 0; u < n; ++u) {
      d.log_row_changes(static_cast<ir::node_id>(u),
                        {changed_bits.data() + u * wpr, wpr});
    }
  }
  detail::append_pairs_from_bitmap(changed_bits, n, wpr, changed);
  return changed;
}

// The parallel kernel restructures the sweep pivot-block-outer so rows can
// be partitioned across threads without ever reading a row another thread
// writes. For a pivot block W = [w0, w1): rows in W are mutated only by
// pivots >= their own index — all inside or after W — so at the head of
// the block they are still pristine and one kB x n snapshot captures
// exactly the operand bits every relaxation against W needs (including
// the aliased u == w self-step, whose per-lane reads match the in-place
// order because no lane reads another lane's cell). Each target row
// u < w1 then applies pivots max(w0, u)..w1-1 ascending against the
// snapshot; across ascending blocks that is the same per-row pivot
// sequence u..n-1 the serial kernel and the reference perform, on the
// same operand bits, so the result is bit-identical at any thread count
// and any panel partition. Change bits are accumulated into row-owned
// bitmap words by relax_row_logged and folded into the matrix change log
// serially afterwards.
std::vector<sched::delay_matrix::node_pair> reformulate_floyd_warshall(
    const ir::graph& g, sched::delay_matrix& d, thread_pool* pool) {
  if (pool == nullptr || pool->size() <= 1) {
    return reformulate_floyd_warshall(g, d);
  }
  const std::size_t n = g.num_nodes();
  ISDC_CHECK(d.size() == n, "matrix size mismatch");
  std::vector<sched::delay_matrix::node_pair> changed;
  if (n == 0) {
    return changed;
  }
  constexpr float nc = delay_matrix::not_connected;
  // kPivotBlock trades snapshot/barrier overhead against target-row
  // re-streaming (each row is re-fetched once per block); 64 keeps the
  // snapshot (64 x n floats, ~1 MB at n = 4096) comfortably shared-cache
  // resident. kPanel matches the serial kernel's panel height: panels are
  // the static work unit handed to parallel_for, so the partition is a
  // pure function of n, never of the thread count.
  constexpr std::size_t kPivotBlock = 64;
  constexpr std::size_t kPanel = 16;
  const std::size_t wpr = d.words_per_row();

  std::vector<std::uint64_t> conn(n * wpr, 0);
  detail::build_connectivity(d, conn);

  std::vector<std::uint64_t> changed_bits(n * wpr, 0);
  std::vector<float> piv(std::min(kPivotBlock, n) * n);

  for (std::size_t w0 = 0; w0 < n; w0 += kPivotBlock) {
    const std::size_t w1 = std::min(n, w0 + kPivotBlock);
    for (std::size_t w = w0; w < w1; ++w) {
      std::memcpy(piv.data() + (w - w0) * n,
                  d.row(static_cast<ir::node_id>(w)).data(),
                  n * sizeof(float));
    }
    const std::size_t panels = (w1 + kPanel - 1) / kPanel;
    pool->parallel_for(panels, [&](std::size_t p) {
      const std::size_t u0 = p * kPanel;
      const std::size_t u1 = std::min(w1, u0 + kPanel);
      for (std::size_t u = u0; u < u1; ++u) {
        float* rowu = d.row_mut(static_cast<ir::node_id>(u)).data();
        std::uint64_t* bitsu = changed_bits.data() + u * wpr;
        for (std::size_t w = std::max(w0, u); w < w1; ++w) {
          const float first = rowu[w];
          if (first == nc) {
            continue;
          }
          const float* roww = piv.data() + (w - w0) * n;
          relax_row_logged(rowu, roww, conn.data() + w * wpr, first,
                           roww[w], w, n, bitsu);
        }
      }
    });
  }

  if (d.tracking_changes()) {
    for (std::size_t u = 0; u < n; ++u) {
      d.log_row_changes(static_cast<ir::node_id>(u),
                        {changed_bits.data() + u * wpr, wpr});
    }
  }
  detail::append_pairs_from_bitmap(changed_bits, n, wpr, changed);
  return changed;
}

std::vector<sched::delay_matrix::node_pair>
reformulate_floyd_warshall_reference(const ir::graph& g,
                                     sched::delay_matrix& d) {
  const std::size_t n = g.num_nodes();
  ISDC_CHECK(d.size() == n, "matrix size mismatch");
  std::vector<sched::delay_matrix::node_pair> changed;
  // Standard FW ordering; the graph is a DAG with topological ids, so only
  // u <= w <= v triples can compose.
  for (ir::node_id w = 0; w < n; ++w) {
    const float self = d.self(w);
    for (ir::node_id u = 0; u <= w; ++u) {
      const float first = d.get(u, w);
      if (first == delay_matrix::not_connected) {
        continue;
      }
      for (ir::node_id v = w; v < n; ++v) {
        if (u == v) {
          continue;
        }
        const float second = d.get(w, v);
        if (second == delay_matrix::not_connected) {
          continue;
        }
        const float composed = first + second - self;
        const float current = d.get(u, v);
        if (current == delay_matrix::not_connected || composed < current) {
          d.set(u, v, composed);
          changed.emplace_back(u, v);
        }
      }
    }
  }
  return changed;
}

}  // namespace isdc::core
