// Internal helpers shared by the dense reformulation kernels
// (floyd_warshall.cpp, reformulate.cpp): per-row connectivity bitsets over
// a delay matrix and changed-pair emission from a row-aligned bitmap. The
// bitmap layout matches delay_matrix::log_row_changes: one span of
// words_per_row() words per matrix row, bit v of word v / 64 = column v.
#ifndef ISDC_CORE_ROW_BITSET_H_
#define ISDC_CORE_ROW_BITSET_H_

#include <bit>
#include <cstdint>
#include <vector>

#include "sched/delay_matrix.h"

namespace isdc::core::detail {

/// Fills `bits` (n x words_per_row words, zeroed by the caller) with one
/// connectivity bitset per row: bit v of row u set iff D[u][v] is
/// connected.
inline void build_connectivity(const sched::delay_matrix& d,
                               std::vector<std::uint64_t>& bits) {
  const std::size_t n = d.size();
  const std::size_t wpr = d.words_per_row();
  for (ir::node_id u = 0; u < n; ++u) {
    const float* row = d.row(u).data();
    std::uint64_t* out = bits.data() + static_cast<std::size_t>(u) * wpr;
    for (std::size_t v = 0; v < n; ++v) {
      out[v >> 6] |=
          static_cast<std::uint64_t>(row[v] !=
                                     sched::delay_matrix::not_connected)
          << (v & 63);
    }
  }
}

/// Appends every set bit of an n x words_per_row bitmap as a (row, column)
/// pair, sorted ascending by construction. A popcount pre-pass sizes the
/// output exactly: a dense kernel run can emit millions of pairs, and
/// growth reallocations would dominate the append otherwise.
inline void append_pairs_from_bitmap(
    const std::vector<std::uint64_t>& bits, std::size_t n, std::size_t wpr,
    std::vector<sched::delay_matrix::node_pair>& out) {
  std::size_t count = 0;
  for (const std::uint64_t w : bits) {
    count += static_cast<std::size_t>(std::popcount(w));
  }
  out.reserve(out.size() + count);
  for (std::size_t u = 0; u < n; ++u) {
    const std::uint64_t* row = bits.data() + u * wpr;
    for (std::size_t k = 0; k < wpr; ++k) {
      for (std::uint64_t b = row[k]; b != 0; b &= b - 1) {
        out.emplace_back(
            static_cast<ir::node_id>(u),
            static_cast<ir::node_id>(k * 64 + std::countr_zero(b)));
      }
    }
  }
}

}  // namespace isdc::core::detail

#endif  // ISDC_CORE_ROW_BITSET_H_
