#include "core/isdc_scheduler.h"

#include <utility>

// run_isdc itself is defined in src/engine/run_isdc.cpp on top of the
// staged engine; only the non-iterative baseline lives here.

namespace isdc::core {

sched::schedule run_sdc_baseline(const ir::graph& g,
                                 const isdc_options& options,
                                 const synth::delay_model* model,
                                 sched::delay_matrix* matrix_out) {
  synth::delay_model local_model(options.synth);
  const synth::delay_model& dm = model != nullptr ? *model : local_model;
  sched::delay_matrix d = sched::delay_matrix::initial(
      g, [&](ir::node_id v) { return dm.node_delay_ps(g, v); });
  sched::schedule s = sdc_schedule(g, d, options.base);
  if (matrix_out != nullptr) {
    *matrix_out = std::move(d);
  }
  return s;
}

}  // namespace isdc::core
