#include "core/isdc_scheduler.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "core/delay_update.h"
#include "core/floyd_warshall.h"
#include "extract/path_enum.h"
#include "extract/window.h"
#include "sched/metrics.h"
#include "support/check.h"
#include "support/thread_pool.h"

namespace isdc::core {

namespace {

iteration_record make_record(const ir::graph& g, const sched::schedule& s,
                             const sched::delay_matrix& current,
                             const sched::delay_matrix& naive,
                             const isdc_options& options, int iteration) {
  iteration_record rec;
  rec.iteration = iteration;
  rec.register_bits = sched::register_bits(g, s);
  rec.num_stages = s.num_stages();
  rec.estimated_delay_ps = sched::estimated_critical_delay(g, s, current);
  rec.naive_estimated_delay_ps = sched::estimated_critical_delay(g, s, naive);
  if (options.record_synthesized_delay) {
    rec.synthesized_delay_ps =
        sched::synthesized_critical_delay(g, s, options.synth);
  }
  return rec;
}

/// Expands the ranked candidates into up-to-m not-yet-evaluated subgraphs.
std::vector<extract::subgraph> select_subgraphs(
    const ir::graph& g, const sched::schedule& s,
    const sched::delay_matrix& d, const isdc_options& options,
    std::vector<extract::path_candidate>& candidates,
    const std::vector<double>& scores,
    std::unordered_set<std::uint64_t>& evaluated_keys) {
  const int m = options.subgraphs_per_iteration;
  std::vector<extract::subgraph> picked;
  std::unordered_set<std::uint64_t> this_round;

  const auto consider = [&](extract::subgraph sub) {
    const std::uint64_t key = sub.key();
    if (evaluated_keys.contains(key) || this_round.contains(key)) {
      return;
    }
    this_round.insert(key);
    picked.push_back(std::move(sub));
  };

  if (options.expansion != extract::expansion_mode::window) {
    for (std::size_t i = 0;
         i < candidates.size() && static_cast<int>(picked.size()) < m; ++i) {
      const extract::path_candidate& cand = candidates[i];
      extract::subgraph sub =
          options.expansion == extract::expansion_mode::path
              ? extract::expand_to_path(g, s, d, cand)
              : extract::expand_to_cone(g, s, cand);
      sub.score = scores[i];
      consider(std::move(sub));
    }
    return picked;
  }

  // Window mode: keep folding ranked cones into overlapping-leaf windows
  // until m *new* windows are available (merging shrinks the set, so the
  // cone budget is not the window budget).
  std::vector<extract::subgraph> cones;
  std::vector<extract::subgraph> windows;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    extract::subgraph cone = extract::expand_to_cone(g, s, candidates[i]);
    cone.score = scores[i];
    cones.push_back(std::move(cone));
    windows = extract::merge_into_windows(g, s, cones);
    int fresh = 0;
    for (const extract::subgraph& w : windows) {
      fresh += evaluated_keys.contains(w.key()) ? 0 : 1;
    }
    if (fresh >= m) {
      break;
    }
  }
  for (extract::subgraph& w : windows) {
    if (static_cast<int>(picked.size()) >= m) {
      break;
    }
    consider(std::move(w));
  }
  return picked;
}

}  // namespace

isdc_result run_isdc(const ir::graph& g, const downstream_tool& tool,
                     const isdc_options& options,
                     const synth::delay_model* model) {
  ISDC_CHECK(options.max_iterations >= 0);
  ISDC_CHECK(options.subgraphs_per_iteration > 0);

  synth::delay_model local_model(options.synth);
  const synth::delay_model& dm = model != nullptr ? *model : local_model;

  isdc_result result;
  result.naive_delays = sched::delay_matrix::initial(
      g, [&](ir::node_id v) { return dm.node_delay_ps(g, v); });
  result.delays = result.naive_delays;

  sched::schedule current = sdc_schedule(g, result.delays, options.base);
  result.initial = current;
  result.final_schedule = current;
  result.history.push_back(make_record(g, current, result.delays,
                                       result.naive_delays, options, 0));
  std::int64_t best_bits = result.history.back().register_bits;

  std::unordered_set<std::uint64_t> evaluated_keys;
  thread_pool pool(static_cast<std::size_t>(std::max(1, options.num_threads)));
  int stable_iterations = 0;

  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    // 1-2. Candidate paths from the previous schedule, ranked.
    std::vector<extract::path_candidate> candidates =
        extract::enumerate_candidate_paths(g, current, result.delays);
    std::vector<double> scores;
    extract::rank_candidates(g, current, options.base.clock_period_ps,
                             options.strategy, candidates, &scores);

    // 3. Expansion + dedup against every earlier evaluation.
    std::vector<extract::subgraph> subgraphs =
        select_subgraphs(g, current, result.delays, options, candidates,
                         scores, evaluated_keys);
    if (subgraphs.empty()) {
      break;  // search space exhausted
    }

    // 4. Parallel downstream evaluation.
    std::vector<evaluated_subgraph> evaluations(subgraphs.size());
    pool.parallel_for(subgraphs.size(), [&](std::size_t i) {
      const ir::extraction sub_ir = extract::subgraph_to_ir(g, subgraphs[i]);
      evaluations[i].members = subgraphs[i].members;
      evaluations[i].delay_ps = tool.subgraph_delay_ps(sub_ir.g);
    });
    for (const extract::subgraph& sub : subgraphs) {
      evaluated_keys.insert(sub.key());
    }

    // 5. Alg. 1 update + reformulation.
    const std::size_t lowered =
        update_delay_matrix(result.delays, evaluations);
    switch (options.reformulation) {
      case reformulation_mode::alg2:
        reformulate_alg2(g, result.delays);
        break;
      case reformulation_mode::floyd_warshall:
        reformulate_floyd_warshall(g, result.delays);
        break;
      case reformulation_mode::none:
        break;
    }

    // 6. Re-solve.
    current = sdc_schedule(g, result.delays, options.base);
    iteration_record rec = make_record(g, current, result.delays,
                                       result.naive_delays, options, iter);
    rec.subgraphs_evaluated = static_cast<int>(subgraphs.size());
    rec.matrix_entries_lowered = lowered;
    result.history.push_back(rec);
    result.iterations = iter;

    if (rec.register_bits < best_bits) {
      best_bits = rec.register_bits;
      result.final_schedule = current;
      stable_iterations = 0;
    } else if (++stable_iterations >= options.convergence_patience) {
      break;  // register usage stable: converged
    }
  }
  return result;
}

sched::schedule run_sdc_baseline(const ir::graph& g,
                                 const isdc_options& options,
                                 const synth::delay_model* model,
                                 sched::delay_matrix* matrix_out) {
  synth::delay_model local_model(options.synth);
  const synth::delay_model& dm = model != nullptr ? *model : local_model;
  sched::delay_matrix d = sched::delay_matrix::initial(
      g, [&](ir::node_id v) { return dm.node_delay_ps(g, v); });
  sched::schedule s = sdc_schedule(g, d, options.base);
  if (matrix_out != nullptr) {
    *matrix_out = std::move(d);
  }
  return s;
}

}  // namespace isdc::core
