// The no-human-in-loop downstream interface (paper Section III-A and IV):
// ISDC only ever asks a downstream tool one question — "what is the true
// critical delay of this combinational subgraph?" — which is why the flow
// is compatible with any synthesizer/STA/PDK combination. Two built-in
// implementations:
//   synthesis_downstream — the full substrate flow (lower -> optimize ->
//       map onto the sky130ish library -> STA), the Yosys+OpenSTA stand-in;
//   aig_depth_downstream — the paper's Section V-3 proposal: skip mapping
//       and STA, return optimized AIG depth scaled by a per-level delay
//       (motivated by the strong linear STA/depth correlation of Fig. 8).
// Plus one decorator:
//   latency_downstream — wraps any tool and sleeps before delegating,
//       simulating the round-trip of a slow external backend (a Yosys
//       subprocess, a remote STA service) for async-pipeline benches and
//       tests.
#ifndef ISDC_CORE_DOWNSTREAM_H_
#define ISDC_CORE_DOWNSTREAM_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "ir/graph.h"
#include "synth/synthesis.h"
#include "telemetry/metrics.h"

namespace isdc::core {

/// Abstract feedback provider; implementations must be thread-safe (ISDC
/// evaluates subgraphs in parallel).
class downstream_tool {
public:
  virtual ~downstream_tool() = default;

  /// Critical combinational delay of a standalone subgraph, in ps.
  virtual double subgraph_delay_ps(const ir::graph& sub) const = 0;

  /// Identity of the tool. Besides reporting, this scopes the engine's
  /// evaluation cache: two tools with the same name are assumed to return
  /// the same delays, so implementations whose answers depend on
  /// configuration should encode that configuration in the name.
  virtual std::string name() const = 0;
};

/// Full synthesis + STA feedback.
class synthesis_downstream final : public downstream_tool {
public:
  explicit synthesis_downstream(synth::synthesis_options options = {})
      : options_(options) {}

  double subgraph_delay_ps(const ir::graph& sub) const override {
    return synth::synthesize_graph(sub, options_).critical_delay_ps;
  }
  /// "synthesis+sta(...)" with the synthesis options spelled out, so two
  /// differently-configured flows never share cache entries.
  std::string name() const override;

private:
  synth::synthesis_options options_;
};

/// AIG-depth feedback (paper Section V-3). `ps_per_level` should be fitted
/// from an STA/depth regression (bench_fig8 prints one for the default
/// library).
class aig_depth_downstream final : public downstream_tool {
public:
  explicit aig_depth_downstream(double ps_per_level = 80.0,
                                double offset_ps = 0.0,
                                synth::synthesis_options options = {})
      : ps_per_level_(ps_per_level), offset_ps_(offset_ps),
        options_(options) {}

  double subgraph_delay_ps(const ir::graph& sub) const override;
  /// "aig-depth(...)" with the calibration constants and optimization
  /// options spelled out (see synthesis_downstream::name()).
  std::string name() const override;

private:
  double ps_per_level_;
  double offset_ps_;
  synth::synthesis_options options_;
};

/// Latency-injecting decorator: sleeps `latency_ms` (± a uniform jitter
/// of up to `jitter_ms`, deterministic per call index) per call, then
/// delegates to the wrapped tool. Models the dominant cost of a real
/// downstream backend — seconds of synthesis/STA per subgraph, or the
/// round-trip to a remote timing service, whose latency is never constant
/// in practice — without changing the answers, so sync-vs-async pipeline
/// comparisons measure latency hiding alone.
/// Thread-safe iff the wrapped tool is; `inner` must outlive the decorator.
class latency_downstream final : public downstream_tool {
public:
  latency_downstream(const downstream_tool& inner, double latency_ms,
                     double jitter_ms = 0.0)
      : inner_(inner), latency_ms_(latency_ms), jitter_ms_(jitter_ms) {}

  /// chrono-friendly spelling: any std::chrono::duration converts —
  /// latency_downstream(tool, 50ms, 10ms), or microseconds, seconds, ...
  latency_downstream(const downstream_tool& inner,
                     std::chrono::duration<double, std::milli> latency,
                     std::chrono::duration<double, std::milli> jitter =
                         std::chrono::milliseconds(0))
      : latency_downstream(inner, latency.count(), jitter.count()) {}

  double subgraph_delay_ps(const ir::graph& sub) const override;
  /// "latency(Nms,<inner name>)" — or "latency(Nms~Jms,...)" with jitter:
  /// the delay does not change the answers, but keeping the wrapper's
  /// identity distinct means cache entries never leak between wrapped and
  /// bare configurations of a sweep.
  std::string name() const override;

  /// Downstream calls made through this wrapper (across threads).
  std::uint64_t calls() const { return calls_.load(); }

  /// Observed per-call wall-clock latency (sleep + delegate), across
  /// threads. calls/min/max/mean are exact (histogram count/min/max/sum);
  /// p50/p99 are bucket-interpolated from the log-bucketed histogram (see
  /// telemetry::histogram::snapshot_data::quantile). All 0 before the
  /// first call completes.
  struct latency_stats {
    std::uint64_t calls = 0;
    double min_ms = 0.0;
    double max_ms = 0.0;
    double mean_ms = 0.0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
  };
  latency_stats observed() const;

  /// The full observed-latency distribution (ms-valued), for callers that
  /// want more than the latency_stats digest.
  telemetry::histogram::snapshot_data observed_histogram() const {
    return observed_ms_.snapshot();
  }

private:
  const downstream_tool& inner_;
  double latency_ms_;
  double jitter_ms_;
  mutable std::atomic<std::uint64_t> calls_{0};
  // Observed-latency distribution, lock-free per record. Log buckets from
  // 1 us up: constant relative error whether the simulated backend sleeps
  // microseconds (tests) or seconds (realistic synthesis round-trips).
  mutable telemetry::histogram observed_ms_{
      telemetry::histogram::exponential_boundaries(0.001, 2.0, 48)};
};

}  // namespace isdc::core

#endif  // ISDC_CORE_DOWNSTREAM_H_
