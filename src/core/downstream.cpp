#include "core/downstream.h"

#include <chrono>
#include <sstream>
#include <thread>

#include "lower/lowering.h"

namespace isdc::core {

namespace {

void append_options(std::ostream& out,
                    const synth::synthesis_options& options) {
  out << "r" << options.opt_rounds << (options.use_rewrite ? "+rw" : "")
      << (options.use_refactor ? "+rf" : "") << ",cut"
      << options.mapping.cut_size << "x" << options.mapping.max_cuts_per_node;
}

}  // namespace

std::string synthesis_downstream::name() const {
  std::ostringstream out;
  out << "synthesis+sta(";
  append_options(out, options_);
  out << ")";
  return out.str();
}

double aig_depth_downstream::subgraph_delay_ps(const ir::graph& sub) const {
  const lower::lowering_result lowered = lower::lower_graph(sub);
  const aig::aig optimized = synth::optimize(lowered.net.cleanup(), options_);
  return offset_ps_ + ps_per_level_ * optimized.depth();
}

std::string aig_depth_downstream::name() const {
  std::ostringstream out;
  out << "aig-depth(" << ps_per_level_ << "ps/lvl+" << offset_ps_ << "ps,";
  append_options(out, options_);
  out << ")";
  return out.str();
}

double latency_downstream::subgraph_delay_ps(const ir::graph& sub) const {
  ++calls_;
  if (latency_ms_ > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(latency_ms_));
  }
  return inner_.subgraph_delay_ps(sub);
}

std::string latency_downstream::name() const {
  std::ostringstream out;
  out << "latency(" << latency_ms_ << "ms," << inner_.name() << ")";
  return out.str();
}

}  // namespace isdc::core
