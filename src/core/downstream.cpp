#include "core/downstream.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>

#include "lower/lowering.h"
#include "support/hash.h"

namespace isdc::core {

namespace {

void append_options(std::ostream& out,
                    const synth::synthesis_options& options) {
  out << "r" << options.opt_rounds << (options.use_rewrite ? "+rw" : "")
      << (options.use_refactor ? "+rf" : "") << ",cut"
      << options.mapping.cut_size << "x" << options.mapping.max_cuts_per_node;
}

}  // namespace

std::string synthesis_downstream::name() const {
  std::ostringstream out;
  out << "synthesis+sta(";
  append_options(out, options_);
  out << ")";
  return out.str();
}

double aig_depth_downstream::subgraph_delay_ps(const ir::graph& sub) const {
  const lower::lowering_result lowered = lower::lower_graph(sub);
  const aig::aig optimized = synth::optimize(lowered.net.cleanup(), options_);
  return offset_ps_ + ps_per_level_ * optimized.depth();
}

std::string aig_depth_downstream::name() const {
  std::ostringstream out;
  out << "aig-depth(" << ps_per_level_ << "ps/lvl+" << offset_ps_ << "ps,";
  append_options(out, options_);
  out << ")";
  return out.str();
}

double latency_downstream::subgraph_delay_ps(const ir::graph& sub) const {
  const std::uint64_t index = calls_.fetch_add(1);
  double sleep_ms = latency_ms_;
  if (jitter_ms_ > 0.0) {
    // Deterministic per-call jitter: hashing the call index gives a
    // reproducible uniform draw in [-jitter, +jitter] with no shared rng
    // state to contend on.
    const double unit =
        static_cast<double>(hash_finalize(index + 1) >> 11) * 0x1.0p-53;
    sleep_ms += (2.0 * unit - 1.0) * jitter_ms_;
  }
  const auto start = std::chrono::steady_clock::now();
  if (sleep_ms > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(sleep_ms));
  }
  const double delay_ps = inner_.subgraph_delay_ps(sub);
  const double observed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  observed_ms_.record(observed_ms);
  return delay_ps;
}

latency_downstream::latency_stats latency_downstream::observed() const {
  const telemetry::histogram::snapshot_data h = observed_ms_.snapshot();
  latency_stats s;
  s.calls = h.count;
  s.min_ms = h.min;
  s.max_ms = h.max;
  s.mean_ms = h.mean();
  s.p50_ms = h.p50();
  s.p99_ms = h.p99();
  return s;
}

std::string latency_downstream::name() const {
  std::ostringstream out;
  out << "latency(" << latency_ms_ << "ms";
  if (jitter_ms_ > 0.0) {
    out << "~" << jitter_ms_ << "ms";
  }
  out << "," << inner_.name() << ")";
  return out.str();
}

}  // namespace isdc::core
