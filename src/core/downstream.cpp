#include "core/downstream.h"

#include "lower/lowering.h"

namespace isdc::core {

double aig_depth_downstream::subgraph_delay_ps(const ir::graph& sub) const {
  const lower::lowering_result lowered = lower::lower_graph(sub);
  const aig::aig optimized = synth::optimize(lowered.net.cleanup(), options_);
  return offset_ps_ + ps_per_level_ * optimized.depth();
}

}  // namespace isdc::core
