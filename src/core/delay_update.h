// Delay updating (paper Alg. 1, lines 10-14): each evaluated subgraph's
// measured delay caps D[u][v] for every node pair it covers — but only
// downwards, so every feedback datum is exploited maximally without ever
// discarding tighter information.
#ifndef ISDC_CORE_DELAY_UPDATE_H_
#define ISDC_CORE_DELAY_UPDATE_H_

#include <span>
#include <vector>

#include "sched/delay_matrix.h"

namespace isdc::core {

/// One downstream evaluation result.
struct evaluated_subgraph {
  std::vector<ir::node_id> members;  ///< original node ids
  double delay_ps = 0.0;             ///< measured critical delay
};

/// Applies Alg. 1 lines 10-14 for every subgraph in `evaluations`.
/// Returns the (u, v) pairs lowered, one entry per lowering (a pair capped
/// by several evaluations appears once per cap), so .size() is the number
/// of entries lowered. Callers driving the loop by hand can feed the pairs
/// to sched::scheduler_instance::resolve; the engine instead consumes the
/// delay_matrix change log, which also catches custom-stage mutations.
std::vector<sched::delay_matrix::node_pair> update_delay_matrix(
    sched::delay_matrix& d,
    std::span<const evaluated_subgraph> evaluations);

}  // namespace isdc::core

#endif  // ISDC_CORE_DELAY_UPDATE_H_
