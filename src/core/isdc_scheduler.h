// ISDC: feedback-guided iterative SDC scheduling (the paper's main
// contribution, Fig. 2). Each iteration:
//   1. enumerate candidate paths from the previous schedule;
//   2. rank them (fanout-driven Eq. 3 or delay-driven);
//   3. expand to path/cone/window subgraphs, skipping ones already
//      evaluated in earlier iterations (the iterative search-space
//      reduction of Section III-A2);
//   4. evaluate the top-m new subgraphs with the downstream tool, in
//      parallel;
//   5. update the delay matrix (Alg. 1) and reformulate (Alg. 2);
//   6. re-solve the SDC LP;
// until the register usage is stable or the iteration budget is spent.
//
// The loop is implemented by the staged engine in src/engine (one stage
// per step above, composed by engine::engine); run_isdc below is the
// convenience entry point over a fresh engine. Use engine::engine directly
// to reuse the evaluation cache across runs or to observe iterations as
// they happen.
#ifndef ISDC_CORE_ISDC_SCHEDULER_H_
#define ISDC_CORE_ISDC_SCHEDULER_H_

#include <cstdint>
#include <vector>

#include "core/downstream.h"
#include "core/reformulate.h"
#include "extract/cone.h"
#include "extract/scoring.h"
#include "sched/delay_matrix.h"
#include "sched/sdc_scheduler.h"
#include "synth/characterizer.h"

namespace isdc::core {

struct isdc_options {
  sched::scheduler_options base;      ///< clock period, timing mode
  synth::synthesis_options synth;     ///< downstream/characterization flow
  extract::extraction_strategy strategy =
      extract::extraction_strategy::fanout_driven;
  extract::expansion_mode expansion = extract::expansion_mode::window;
  reformulation_mode reformulation = reformulation_mode::alg2;
  int max_iterations = 15;            ///< feedback iterations
  int subgraphs_per_iteration = 16;
  int convergence_patience = 2;       ///< stable iterations before stopping
  int num_threads = 4;                ///< parallel subgraph evaluations
  /// Width of the in-design *compute* pool — the one that parallelizes the
  /// scheduling iteration itself (delay-matrix kernels, candidate
  /// enumeration/ranking, cone expansion, fingerprinting) — distinct from
  /// num_threads, which sizes downstream evaluation. 1 = serial (default);
  /// 0 = the process-wide default pool (hardware_concurrency, ISDC_THREADS
  /// override); N > 1 = a private pool of N threads. Every setting
  /// produces bit-identical schedules and matrices.
  int compute_threads = 1;
  bool record_synthesized_delay = false;  ///< per-iteration STA (Fig. 7)
  /// Asynchronous pipelined evaluation: the evaluate stage dispatches cache
  /// misses to a wide I/O pool and returns immediately; the update stage
  /// folds in whatever measurements have arrived — from this iteration or
  /// earlier ones — so iteration k+1's scheduling work overlaps iteration
  /// k's downstream calls. Off by default: the synchronous join-all
  /// reference pipeline.
  bool async_evaluation = false;
  /// Cap on concurrently pending downstream calls in async mode (also the
  /// dispatch-pool width — downstream calls block on an external tool, so
  /// they are I/O-bound, not CPU-bound). 0 = 4 * subgraphs_per_iteration.
  int async_max_in_flight = 0;
  /// Wall-clock budget for one run, in milliseconds; 0 = unlimited. When
  /// the budget expires the run stops cooperatively at the next iteration
  /// boundary (pending async evaluations are drained or abandoned, never
  /// leaked) and returns the best schedule found so far with
  /// isdc_result::cancelled set — a budget expiry is a result, not an
  /// error.
  double wall_budget_ms = 0.0;
  /// Memory budget for one run, in MiB; 0 = unlimited (the historical
  /// monolithic path, bit-identical to before the option existed). With a
  /// budget, a design that splits into several weakly-connected components
  /// is streamed one component at a time — each component's dense delay
  /// matrices are a fraction of the whole design's n^2 footprint — and the
  /// per-component schedules are merged; see isdc_result for what a
  /// partitioned result carries. The schedule is invariant across every
  /// sufficient budget (and equals the per-component solo runs), because
  /// the budget only gates feasibility, never the search. A design whose
  /// largest single component cannot fit the budget fails fast with a
  /// descriptive error instead of OOMing.
  double memory_budget_mb = 0.0;
};

/// Metrics of one schedule in the iteration history. Entry 0 is the
/// initial (classic SDC) schedule.
struct iteration_record {
  int iteration = 0;
  std::int64_t register_bits = 0;
  int num_stages = 0;
  double estimated_delay_ps = 0.0;        ///< from the updated matrix
  double naive_estimated_delay_ps = 0.0;  ///< from the initial matrix
  double synthesized_delay_ps = -1.0;     ///< only when recorded
  int subgraphs_evaluated = 0;
  std::size_t matrix_entries_lowered = 0;
  int cache_hits = 0;  ///< evaluations answered by the evaluation cache
  // LP solver metrics for this iteration's (re-)solve. The baseline
  // (iteration 0) is always a cold solve.
  bool warm_resolve = false;              ///< solver state reused
  std::size_t solver_ssp_paths = 0;       ///< augmenting paths routed
  std::size_t constraints_reemitted = 0;  ///< timing constraints re-emitted
  // Async evaluation pipeline accounting (all zero in sync mode).
  int evaluations_dispatched = 0;  ///< downstream calls launched this pass
  /// Selections that subscribed onto an already-in-flight measurement of
  /// an isomorphic cone (this run's or, in fleet mode, another design's)
  /// instead of dispatching their own; each produces its own arrival.
  int evaluations_coalesced = 0;
  int evaluations_arrived = 0;     ///< completed measurements folded in
  std::size_t evaluations_in_flight = 0;  ///< still pending after this pass
};

struct isdc_result {
  sched::schedule initial;         ///< classic SDC baseline
  sched::schedule final_schedule;  ///< best schedule found
  std::vector<iteration_record> history;
  int iterations = 0;              ///< feedback iterations executed
  sched::delay_matrix delays{0};   ///< final updated matrix
  sched::delay_matrix naive_delays{0};  ///< the initial matrix (Alg. 1, 1-9)
  /// True when the run was cut short by a wall_budget_ms expiry or an
  /// external cancellation token; every populated field is still valid.
  bool cancelled = false;
  /// True when the run took the memory-budgeted partitioned path. The
  /// schedules cover the whole design, but `history` concatenates the
  /// per-component records (component boundaries visible as iteration
  /// resets), `iterations` is the maximum over components, and `delays` /
  /// `naive_delays` stay empty (size 0) — the whole-design dense matrices
  /// are exactly what the budget exists to avoid materializing.
  bool partitioned = false;
  /// Process peak RSS (KiB) sampled when the run finished; -1 where
  /// unsupported. Monotone over the process, so it bounds this run's
  /// footprint from above — the observable the memory-budget sweep
  /// (tools/isdc_fuzz) and the fleet report check budgets against.
  std::int64_t peak_rss_kb = -1;
};

/// Runs the full ISDC flow. `model` provides the pre-characterized per-op
/// delays; pass a shared instance to amortize characterization across runs,
/// or nullptr to characterize locally.
isdc_result run_isdc(const ir::graph& g, const downstream_tool& tool,
                     const isdc_options& options = {},
                     const synth::delay_model* model = nullptr);

/// Convenience: the classic (non-iterative) SDC schedule plus its matrix.
sched::schedule run_sdc_baseline(const ir::graph& g,
                                 const isdc_options& options = {},
                                 const synth::delay_model* model = nullptr,
                                 sched::delay_matrix* matrix_out = nullptr);

}  // namespace isdc::core

#endif  // ISDC_CORE_ISDC_SCHEDULER_H_
