// The exact reformulation reference (paper Section III-D): composing
// sub-path delays through every intermediate node w as
//   D[u][v] = min(D[u][v], D[u][w] + D[w][v] - D[w][w])
// (w's own delay is counted by both halves). O(n^3); used to measure
// Alg. 2's estimation accuracy and in tests.
#ifndef ISDC_CORE_FLOYD_WARSHALL_H_
#define ISDC_CORE_FLOYD_WARSHALL_H_

#include <vector>

#include "sched/delay_matrix.h"

namespace isdc::core {

/// Applies the exact reformulation in place; returns the (u, v) pairs
/// whose entry changed (one record per lowering, like reformulate_alg2).
std::vector<sched::delay_matrix::node_pair> reformulate_floyd_warshall(
    const ir::graph& g, sched::delay_matrix& d);

}  // namespace isdc::core

#endif  // ISDC_CORE_FLOYD_WARSHALL_H_
