// The exact reformulation (paper Section III-D): composing sub-path
// delays through every intermediate node w as
//   D[u][v] = min(D[u][v], D[u][w] + D[w][v] - D[w][w])
// (w's own delay is counted by both halves). O(n^3); used to measure
// Alg. 2's estimation accuracy and in tests.
//
// Two implementations with bit-identical results on the matrix:
// reformulate_floyd_warshall is the fast panel-blocked kernel the engine
// runs; reformulate_floyd_warshall_reference is the original scalar
// triple loop, kept for differential testing.
#ifndef ISDC_CORE_FLOYD_WARSHALL_H_
#define ISDC_CORE_FLOYD_WARSHALL_H_

#include <vector>

#include "sched/delay_matrix.h"

namespace isdc {
class thread_pool;
}

namespace isdc::core {

/// Applies the exact reformulation in place, blocked for memory locality:
/// rows are independent under the DAG's topological ids (see the proof in
/// floyd_warshall.cpp), so the kernel sweeps panels of target rows against
/// each pivot row, skipping not_connected spans word-at-a-time via per-row
/// connectivity bitsets. Returns the (u, v) pairs whose entry changed,
/// deduplicated and sorted.
std::vector<sched::delay_matrix::node_pair> reformulate_floyd_warshall(
    const ir::graph& g, sched::delay_matrix& d);

/// Thread-parallel variant, bit-identical to the serial kernel (and the
/// reference) at any pool width: pivot rows are snapshotted pristine one
/// pivot block at a time, making every target row's relaxation sequence
/// independent of the others (see the proof in floyd_warshall.cpp), so
/// target-row panels are statically partitioned over pool->parallel_for.
/// Change-log bitmap words are row-owned, so no atomics are involved.
/// pool == nullptr (or a 1-thread pool) falls back to the serial kernel.
std::vector<sched::delay_matrix::node_pair> reformulate_floyd_warshall(
    const ir::graph& g, sched::delay_matrix& d, thread_pool* pool);

/// The original cell-at-a-time triple loop; same matrix afterwards, but
/// returns one record per lowering (duplicates possible). Reference for
/// differential tests.
std::vector<sched::delay_matrix::node_pair>
reformulate_floyd_warshall_reference(const ir::graph& g,
                                     sched::delay_matrix& d);

}  // namespace isdc::core

#endif  // ISDC_CORE_FLOYD_WARSHALL_H_
