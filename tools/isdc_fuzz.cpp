// Differential fuzz driver (src/fuzz). Per seed, generates a design and
// runs every applicable config-pair check; on divergence, ddmin-shrinks
// the design and writes a self-contained repro file.
//
//   isdc_fuzz --quick --seeds=50 --json=BENCH_fuzz.json   # CI smoke
//   isdc_fuzz --seeds=500 --worker="path/to/isdc_delay_worker --tool=aig-depth"
//   isdc_fuzz --replay=repro_sabotage_7.txt               # re-run a repro
//   isdc_fuzz --inject-bug --seeds=8                      # harness self-test
//   isdc_fuzz --scale=100000 --budget-mb=512              # bounded-memory run
//
// Flags: --seeds=N (default 50), --seed-base=N (default 0), --quick
// (small cases; default when --full absent), --full, --worker=CMD (adds
// the inprocess-vs-worker pair; CMD defaults to the sibling
// isdc_delay_worker when built), --no-worker, --repro-dir=DIR (default
// "."), --json=PATH, --replay=FILE, --inject-bug, --no-brute-force,
// --no-budget-sweep, --no-failpoints.
//
// Exit status: 0 = all checks passed (or, under --inject-bug, the
// injected bug was caught, minimized and replayed); 1 = a real divergence
// was found (repros written); 2 = usage/setup error.
#include <chrono>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "../bench/common.h"
#include "core/downstream.h"
#include "engine/engine.h"
#include "extract/partition.h"
#include "fuzz/fuzz.h"
#include "fuzz/minimize.h"
#include "fuzz/repro.h"
#include "ir/verify.h"
#include "workloads/registry.h"

namespace {

using namespace isdc;

std::string repro_path(const std::string& dir, const std::string& check,
                       std::uint64_t seed) {
  std::string name = "repro_" + check + "_" + std::to_string(seed) + ".txt";
  for (char& c : name) {
    if (c == '/' || c == ' ') {
      c = '_';
    }
  }
  return dir.empty() || dir == "." ? name : dir + "/" + name;
}

/// Minimizes a failing case and writes its repro file. Returns the path
/// ("" when writing failed) and reports sizes on stderr.
std::string emit_repro(const fuzz::fuzz_case& c,
                       const fuzz::check_result& failure,
                       const fuzz::check_options& opts,
                       const std::string& dir, std::size_t* nodes_out) {
  fuzz::minimize_options mopts;
  mopts.check = failure.name;
  mopts.checks = opts;
  const fuzz::minimize_result reduced = fuzz::minimize_case(c, mopts);

  fuzz::repro r;
  r.check = failure.name;
  r.seed = failure.seed;
  r.generator = c.generator;
  r.detail = failure.detail;
  r.failpoints = failure.failpoints;
  r.options = c.options;
  r.g = reduced.g;
  if (nodes_out != nullptr) {
    *nodes_out = reduced.g.num_nodes();
  }

  const std::string path = repro_path(dir, failure.name, failure.seed);
  if (!fuzz::write_repro(r, path)) {
    std::fprintf(stderr, "isdc_fuzz: cannot write repro to %s\n",
                 path.c_str());
    return "";
  }
  std::fprintf(stderr,
               "isdc_fuzz: %s seed=%llu minimized %zu -> %zu nodes "
               "(%zu trials), repro: %s\n",
               failure.name.c_str(),
               static_cast<unsigned long long>(failure.seed),
               reduced.original_nodes, reduced.g.num_nodes(),
               reduced.trials, path.c_str());
  return path;
}

/// --scale=N: the graceful-degradation acceptance run in a fresh process.
/// Builds an N-node stitched registry design, schedules it under
/// --budget-mb (default 512) and asserts: it partitioned, process peak RSS
/// stayed within the budget, and every sampled component's stages equal
/// the component scheduled solo without any budget. (A monolithic
/// unbudgeted run of the whole design is not the reference: at 100k nodes
/// its dense matrices alone need ~80 GB, and the joint LP breaks register
/// -bit ties differently from the per-component solves — solo-component
/// parity is the schedule contract the budget guarantees.)
int run_scale(std::size_t target_nodes, double budget_mb,
              std::uint64_t seed, const std::string& json_path) {
  const auto start = std::chrono::steady_clock::now();
  const ir::graph g = workloads::stitch_registry(seed, target_nodes);
  const std::string verify = ir::verify(g);
  if (!verify.empty()) {
    std::fprintf(stderr, "isdc_fuzz: scale design fails ir::verify: %s\n",
                 verify.c_str());
    return 1;
  }
  std::fprintf(stderr, "isdc_fuzz: scale run on %zu nodes, budget %.0f MiB\n",
               g.num_nodes(), budget_mb);

  core::aig_depth_downstream tool;
  core::isdc_options opts;
  opts.base.clock_period_ps = 5000.0;  // registry mixes 2500/5000 kernels
  opts.max_iterations = 1;
  opts.subgraphs_per_iteration = 2;
  opts.num_threads = 2;
  opts.memory_budget_mb = budget_mb;

  engine::engine e;
  const core::isdc_result budgeted = e.run(g, tool, opts);
  const std::int64_t budget_kb =
      static_cast<std::int64_t>(budget_mb * 1024.0);
  bool ok = true;
  if (!budgeted.partitioned) {
    std::fprintf(stderr, "isdc_fuzz: scale run did not partition\n");
    ok = false;
  }
  if (budgeted.peak_rss_kb <= 0 || budgeted.peak_rss_kb > budget_kb) {
    std::fprintf(stderr,
                 "isdc_fuzz: peak RSS %lld KiB outside budget %lld KiB\n",
                 static_cast<long long>(budgeted.peak_rss_kb),
                 static_cast<long long>(budget_kb));
    ok = false;
  }

  // Solo-parity on a sample: the largest component plus the two ends.
  const std::vector<extract::design_component> components =
      extract::weakly_connected_components(g);
  std::size_t largest = 0;
  for (std::size_t i = 1; i < components.size(); ++i) {
    if (components[i].members.size() > components[largest].members.size()) {
      largest = i;
    }
  }
  core::isdc_options solo_opts = opts;
  solo_opts.memory_budget_mb = 0.0;
  int mismatches = 0;
  for (const std::size_t idx :
       std::vector<std::size_t>{0, largest, components.size() - 1}) {
    const ir::extraction extracted =
        extract::extract_component(g, components[idx]);
    engine::engine solo_engine;
    const core::isdc_result solo =
        solo_engine.run(extracted.g, tool, solo_opts);
    for (const auto& [original, sub] : extracted.to_sub) {
      if (budgeted.final_schedule.cycle[original] !=
          solo.final_schedule.cycle[sub]) {
        ++mismatches;
      }
    }
  }
  if (mismatches != 0) {
    std::fprintf(stderr,
                 "isdc_fuzz: %d node stages differ from solo components\n",
                 mismatches);
    ok = false;
  }

  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  bench::json_object summary;
  summary.set("bench", "fuzz_scale")
      .set("target_nodes", static_cast<std::int64_t>(target_nodes))
      .set("nodes", static_cast<std::int64_t>(g.num_nodes()))
      .set("components", static_cast<std::int64_t>(components.size()))
      .set("budget_mb", budget_mb)
      .set("partitioned", budgeted.partitioned)
      .set("peak_rss_kb", budgeted.peak_rss_kb)
      .set("stages", budgeted.final_schedule.num_stages())
      .set("solo_parity_mismatches", mismatches)
      .set("seconds", seconds)
      .set("ok", ok);
  const std::string json = summary.str();
  std::printf("%s\n", json.c_str());
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::trunc);
    out << json << "\n";
  }
  std::fprintf(stderr, "isdc_fuzz: scale run %s (%.1fs)\n",
               ok ? "passed" : "FAILED", seconds);
  return ok ? 0 : 1;
}

int run_replay(const std::string& file, const fuzz::check_options& opts) {
  const fuzz::repro r = fuzz::load_repro(file);
  std::fprintf(stderr, "isdc_fuzz: replaying check '%s' seed=%llu on %zu "
                       "nodes\n",
               r.check.c_str(), static_cast<unsigned long long>(r.seed),
               r.g.num_nodes());
  const fuzz::check_result result = fuzz::replay(r, opts);
  if (result.passed) {
    std::fprintf(stderr, "isdc_fuzz: repro no longer fails\n");
    return 0;
  }
  std::fprintf(stderr, "isdc_fuzz: reproduced: %s\n", result.detail.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  bench::flags flags(argc, argv);
  const auto start = std::chrono::steady_clock::now();

  fuzz::check_options opts;
  opts.budget_sweep = !flags.has("no-budget-sweep");
  opts.brute_force = !flags.has("no-brute-force");
  opts.failpoint_pair = !flags.has("no-failpoints");
  if (!flags.has("no-worker")) {
#ifdef ISDC_DELAY_WORKER_PATH
    opts.worker_command =
        std::string(ISDC_DELAY_WORKER_PATH) + " --tool=aig-depth";
#endif
    opts.worker_command = flags.get("worker", opts.worker_command);
  }

  try {
    if (flags.has("replay")) {
      return run_replay(flags.get("replay", ""), opts);
    }
    if (flags.has("scale")) {
      return run_scale(
          static_cast<std::size_t>(flags.get_int("scale", 100000)),
          static_cast<double>(flags.get_int("budget-mb", 512)),
          static_cast<std::uint64_t>(flags.get_int("scale-seed", 7)),
          flags.get("json", ""));
    }

    const bool quick = flags.quick() || !flags.has("full");
    const int seeds = flags.get_int("seeds", 50);
    const std::uint64_t seed_base =
        static_cast<std::uint64_t>(flags.get_int("seed-base", 0));
    const std::string repro_dir = flags.get("repro-dir", ".");
    if (repro_dir != ".") {
      std::error_code ec;
      std::filesystem::create_directories(repro_dir, ec);
    }
    const bool inject = flags.has("inject-bug");

    int checks_run = 0;
    int checks_passed = 0;
    int injected_caught = 0;
    int injected_replayed = 0;
    std::size_t injected_min_nodes = 0;
    bench::json_array failures;
    bench::json_array injected_rows;

    for (int i = 0; i < seeds; ++i) {
      const std::uint64_t seed = seed_base + static_cast<std::uint64_t>(i);
      const fuzz::fuzz_case c = fuzz::generate_case(seed, quick);
      for (const fuzz::check_result& r : fuzz::run_checks(c, opts)) {
        ++checks_run;
        if (r.passed) {
          ++checks_passed;
          continue;
        }
        std::fprintf(stderr, "isdc_fuzz: FAIL %s seed=%llu: %s\n",
                     r.name.c_str(),
                     static_cast<unsigned long long>(seed),
                     r.detail.c_str());
        std::size_t nodes = 0;
        const std::string path = emit_repro(c, r, opts, repro_dir, &nodes);
        bench::json_object row;
        row.set("check", r.name)
            .set("seed", seed)
            .set("detail", r.detail)
            .set("minimized_nodes", static_cast<std::int64_t>(nodes))
            .set("repro", path);
        failures.push_raw(row.str());
      }

      if (inject) {
        // Harness self-test: the sabotaged pipeline must diverge, the
        // reducer must shrink it, and the written repro must replay.
        const fuzz::check_result r =
            fuzz::run_named_check("sabotage", c, opts);
        ++checks_run;
        if (r.passed) {
          ++checks_passed;  // no mul in this design: sabotage never fired
          continue;
        }
        ++injected_caught;
        std::size_t nodes = 0;
        const std::string path = emit_repro(c, r, opts, repro_dir, &nodes);
        injected_min_nodes = nodes;
        bool replayed = false;
        if (!path.empty()) {
          replayed = !fuzz::replay(fuzz::load_repro(path), opts).passed;
        }
        if (replayed) {
          ++injected_replayed;
        }
        bench::json_object row;
        row.set("seed", seed)
            .set("minimized_nodes", static_cast<std::int64_t>(nodes))
            .set("replayed", replayed)
            .set("repro", path);
        injected_rows.push_raw(row.str());
      }
    }

    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    const int real_failures = checks_run - checks_passed -
                              (inject ? injected_caught : 0);

    bench::json_object summary;
    summary.set("bench", "fuzz")
        .set("quick", quick)
        .set("seeds", static_cast<std::int64_t>(seeds))
        .set("seed_base", seed_base)
        .set("checks_run", checks_run)
        .set("checks_passed", checks_passed)
        .set("failures_found", real_failures)
        .set("worker_pair_enabled", !opts.worker_command.empty())
        .set("seconds", seconds)
        .set("peak_rss_kb", bench::peak_rss_kb())
        .set_raw("failures", failures.str());
    if (inject) {
      summary.set("injected_caught", injected_caught)
          .set("injected_replayed", injected_replayed)
          .set_raw("injected", injected_rows.str());
    }
    const std::string json = summary.str();
    std::printf("%s\n", json.c_str());
    const std::string json_path = flags.get("json", "");
    if (!json_path.empty()) {
      std::ofstream out(json_path, std::ios::trunc);
      out << json << "\n";
    }

    std::fprintf(stderr,
                 "isdc_fuzz: %d/%d checks passed over %d seeds (%.1fs)\n",
                 checks_passed, checks_run, seeds, seconds);
    if (inject) {
      const bool ok = injected_caught > 0 &&
                      injected_replayed == injected_caught &&
                      injected_min_nodes <= 50;
      std::fprintf(stderr,
                   "isdc_fuzz: inject-bug self-test %s (caught %d, "
                   "replayed %d, last minimized to %zu nodes)\n",
                   ok ? "passed" : "FAILED", injected_caught,
                   injected_replayed, injected_min_nodes);
      if (!ok) {
        return 1;
      }
    }
    return real_failures == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "isdc_fuzz: error: %s\n", e.what());
    return 2;
  }
}
