// Reference delay worker for the subprocess backend: wraps any
// registry-built in-process tool (default: the full synthesis+STA flow)
// behind the worker protocol of backend/subprocess_tool.h, so the whole
// out-of-process stack is hermetically testable and CI-runnable without
// Yosys/OpenSTA installed. A real external integration replaces this
// binary with a script that speaks the same five lines (see README,
// "Downstream backends").
//
// Protocol (version 1), stdin/stdout, one line per message:
//   -> ready isdc-delay-worker 1         (printed once at startup)
//   <- eval <one-line text netlist>      (backend/netlist.h, ';' form)
//   -> ok <critical delay in ps>   |   err <single-line message>
//   <- quit                              (or stdin EOF) -> exit 0
//
// Flags:
//   --tool=SPEC       backend registry spec for the wrapped tool
//                     (default "synthesis"); nesting another subprocess
//                     spec works but is pointless outside tests.
//   Failure-injection hooks for the resilience test suite:
//   --crash-after=N   exit(3) without replying on the Nth eval (1-based)
//   --hang-after=N    sleep past any sane deadline on the Nth eval
//   --garbage-after=N reply with a non-protocol line on the Nth eval
//   --failpoints=SPEC arm support/failpoint.h with SPEC (same grammar as
//                     ISDC_FAILPOINTS). Worker-side sites, all seeded and
//                     per-site triggered, so chaos suites can script e.g.
//                     "every 7th eval crashes" deterministically:
//                       worker.eval   fail -> exit(3); timeout -> hang;
//                                     garbage -> non-protocol line
//                       worker.reply  fail -> exit, no reply; timeout ->
//                                     hang; garbage -> corrupt reply;
//                                     partial -> 'ok' line split across
//                                     two delayed writes (valid, slow)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "backend/netlist.h"
#include "backend/registry.h"
#include "support/failpoint.h"

namespace {

/// Collapses a message onto one line so it always fits an err response.
std::string one_line(std::string message) {
  for (char& c : message) {
    if (c == '\n' || c == '\r') {
      c = ' ';
    }
  }
  return message;
}

int parse_count_flag(const std::string& arg, const std::string& prefix) {
  if (arg.rfind(prefix, 0) != 0) {
    return 0;
  }
  return std::atoi(arg.c_str() + prefix.size());
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec = "synthesis";
  int crash_after = 0;
  int hang_after = 0;
  int garbage_after = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--tool=", 0) == 0) {
      spec = arg.substr(7);
    } else if (int n = parse_count_flag(arg, "--crash-after=")) {
      crash_after = n;
    } else if (int n = parse_count_flag(arg, "--hang-after=")) {
      hang_after = n;
    } else if (int n = parse_count_flag(arg, "--garbage-after=")) {
      garbage_after = n;
    } else if (arg.rfind("--failpoints=", 0) == 0) {
      try {
        isdc::failpoint::arm(arg.substr(std::strlen("--failpoints=")));
      } catch (const std::exception& e) {
        std::cerr << "isdc_delay_worker: " << e.what() << "\n";
        return 2;
      }
    } else {
      std::cerr << "isdc_delay_worker: unknown flag " << arg << "\n";
      return 2;
    }
  }

  isdc::backend::tool_handle tool;
  try {
    tool = isdc::backend::make_tool(spec);
  } catch (const std::exception& e) {
    std::cerr << "isdc_delay_worker: " << e.what() << "\n";
    return 2;
  }

  std::printf("ready isdc-delay-worker 1\n");
  std::fflush(stdout);

  int evals = 0;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (line == "quit") {
      return 0;
    }
    if (line.rfind("eval ", 0) != 0) {
      std::printf("err unknown request (expected 'eval <netlist>' or "
                  "'quit')\n");
      std::fflush(stdout);
      continue;
    }
    ++evals;
    if (crash_after > 0 && evals >= crash_after) {
      return 3;  // simulated mid-request death: no reply, pipe closes
    }
    if (hang_after > 0 && evals >= hang_after) {
      std::this_thread::sleep_for(std::chrono::hours(1));
    }
    if (garbage_after > 0 && evals >= garbage_after) {
      std::printf("!!! not a protocol line !!!\n");
      std::fflush(stdout);
      continue;
    }
    switch (isdc::failpoint::maybe_fail("worker.eval")) {
      case isdc::failpoint::kind::fail:
        return 3;  // crash without replying, like --crash-after
      case isdc::failpoint::kind::timeout:
        std::this_thread::sleep_for(std::chrono::hours(1));
        break;
      case isdc::failpoint::kind::garbage:
        std::printf("!!! not a protocol line !!!\n");
        std::fflush(stdout);
        continue;
      default:
        break;
    }
    try {
      const isdc::ir::graph g = isdc::backend::from_text(line.substr(5));
      const double delay_ps = tool.tool().subgraph_delay_ps(g);
      // %.17g survives the text round trip bit-exactly, so an in-process
      // run and a worker-pool run of the same flow produce identical
      // delay matrices (and therefore identical schedules).
      char reply[64];
      std::snprintf(reply, sizeof(reply), "ok %.17g\n", delay_ps);
      switch (isdc::failpoint::maybe_fail("worker.reply")) {
        case isdc::failpoint::kind::fail:
          return 3;  // die with the reply unsent
        case isdc::failpoint::kind::timeout:
          std::this_thread::sleep_for(std::chrono::hours(1));
          break;
        case isdc::failpoint::kind::garbage:
          std::printf("!!! not a protocol line !!!\n");
          std::fflush(stdout);
          continue;
        case isdc::failpoint::kind::partial: {
          // A well-formed reply split across two delayed writes: the
          // client's poll/read loop must reassemble it, not misparse the
          // first fragment. (Satellite regression for short reads.)
          const std::size_t len = std::strlen(reply);
          std::fwrite(reply, 1, len / 2, stdout);
          std::fflush(stdout);
          std::this_thread::sleep_for(std::chrono::milliseconds(30));
          std::fwrite(reply + len / 2, 1, len - len / 2, stdout);
          std::fflush(stdout);
          continue;
        }
        default:
          break;
      }
      std::fputs(reply, stdout);
    } catch (const std::exception& e) {
      std::printf("err %s\n", one_line(e.what()).c_str());
    }
    std::fflush(stdout);
  }
  return 0;
}
