// Pretty-printer and differ for telemetry metrics snapshots.
//
//   isdc_stats FILE          print one snapshot as aligned tables
//   isdc_stats OLD NEW       diff two snapshots (counter deltas, gauge
//                            changes, histogram count/percentile shifts)
//
// A FILE may be either a raw registry snapshot (the {"counters":...,
// "gauges":...,"histograms":...} object registry::snapshot::to_json
// emits) or any bench --json artifact — those carry the same object under
// their "metrics" member, which is unwrapped automatically. So both work:
//
//   bench_table1 --quick --json=t1.json && isdc_stats t1.json
//   isdc_stats before.json after.json
//
// Exit status: 0 on success, 1 on unreadable/unparseable input.
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "support/table.h"
#include "telemetry/json.h"

namespace {

namespace json = isdc::telemetry::json;

struct histogram_row {
  double count = 0.0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

struct metrics_file {
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, histogram_row> histograms;
};

metrics_file load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot read " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  json::value root = json::parse(buffer.str());
  // Bench artifacts wrap the snapshot in a "metrics" member.
  const json::value& snap =
      root.is_object() && root.contains("metrics") ? root.at("metrics")
                                                   : root;
  metrics_file out;
  for (const auto& [name, v] : snap.at("counters").as_object()) {
    out.counters[name] = v.as_number();
  }
  for (const auto& [name, v] : snap.at("gauges").as_object()) {
    out.gauges[name] = v.as_number();
  }
  for (const auto& [name, v] : snap.at("histograms").as_object()) {
    histogram_row h;
    h.count = v.get_or("count", 0.0);
    h.sum = v.get_or("sum", 0.0);
    h.min = v.get_or("min", 0.0);
    h.max = v.get_or("max", 0.0);
    h.mean = v.get_or("mean", 0.0);
    h.p50 = v.get_or("p50", 0.0);
    h.p90 = v.get_or("p90", 0.0);
    h.p99 = v.get_or("p99", 0.0);
    out.histograms[name] = h;
  }
  return out;
}

std::string num(double v) {
  // Counters and counts print as integers; everything else with two
  // decimals, which is plenty for eyeballing latencies.
  if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  return isdc::format_double(v, 2);
}

std::string delta(double before, double after) {
  const double d = after - before;
  if (d == 0.0) {
    return "";
  }
  return (d > 0.0 ? "+" : "") + num(d);
}

void print_snapshot(const metrics_file& m) {
  if (!m.counters.empty()) {
    isdc::text_table t;
    t.set_header({"Counter", "Value"});
    for (const auto& [name, value] : m.counters) {
      t.add_row({name, num(value)});
    }
    std::cout << "=== Counters ===\n";
    t.print(std::cout);
    std::cout << "\n";
  }
  if (!m.gauges.empty()) {
    isdc::text_table t;
    t.set_header({"Gauge", "Value"});
    for (const auto& [name, value] : m.gauges) {
      t.add_row({name, num(value)});
    }
    std::cout << "=== Gauges ===\n";
    t.print(std::cout);
    std::cout << "\n";
  }
  if (!m.histograms.empty()) {
    isdc::text_table t;
    t.set_header({"Histogram", "Count", "Min", "Mean", "p50", "p90", "p99",
                  "Max"});
    for (const auto& [name, h] : m.histograms) {
      t.add_row({name, num(h.count), num(h.min), num(h.mean), num(h.p50),
                 num(h.p90), num(h.p99), num(h.max)});
    }
    std::cout << "=== Histograms ===\n";
    t.print(std::cout);
  }
}

template <typename M>
std::vector<std::string> merged_keys(const M& a, const M& b) {
  std::vector<std::string> keys;
  for (const auto& [k, v] : a) {
    keys.push_back(k);
  }
  for (const auto& [k, v] : b) {
    if (!a.contains(k)) {
      keys.push_back(k);
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

void print_diff(const metrics_file& before, const metrics_file& after) {
  {
    isdc::text_table t;
    t.set_header({"Counter", "Before", "After", "Delta"});
    for (const std::string& k :
         merged_keys(before.counters, after.counters)) {
      const double b = before.counters.contains(k) ? before.counters.at(k)
                                                   : 0.0;
      const double a = after.counters.contains(k) ? after.counters.at(k)
                                                  : 0.0;
      if (b == a) {
        continue;  // unchanged rows are noise in a diff
      }
      t.add_row({k, num(b), num(a), delta(b, a)});
    }
    if (t.num_rows() > 0) {
      std::cout << "=== Counter deltas ===\n";
      t.print(std::cout);
      std::cout << "\n";
    }
  }
  {
    isdc::text_table t;
    t.set_header({"Gauge", "Before", "After", "Delta"});
    for (const std::string& k : merged_keys(before.gauges, after.gauges)) {
      const double b = before.gauges.contains(k) ? before.gauges.at(k) : 0.0;
      const double a = after.gauges.contains(k) ? after.gauges.at(k) : 0.0;
      if (b == a) {
        continue;
      }
      t.add_row({k, num(b), num(a), delta(b, a)});
    }
    if (t.num_rows() > 0) {
      std::cout << "=== Gauge changes ===\n";
      t.print(std::cout);
      std::cout << "\n";
    }
  }
  {
    isdc::text_table t;
    t.set_header({"Histogram", "Count", "ΔCount", "p50", "Δp50", "p99",
                  "Δp99"});
    for (const std::string& k :
         merged_keys(before.histograms, after.histograms)) {
      const histogram_row b = before.histograms.contains(k)
                                  ? before.histograms.at(k)
                                  : histogram_row{};
      const histogram_row a = after.histograms.contains(k)
                                  ? after.histograms.at(k)
                                  : histogram_row{};
      if (b.count == a.count && b.p50 == a.p50 && b.p99 == a.p99) {
        continue;
      }
      t.add_row({k, num(a.count), delta(b.count, a.count), num(a.p50),
                 delta(b.p50, a.p50), num(a.p99), delta(b.p99, a.p99)});
    }
    if (t.num_rows() > 0) {
      std::cout << "=== Histogram shifts ===\n";
      t.print(std::cout);
    } else {
      std::cout << "(no histogram changes)\n";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2 && argc != 3) {
    std::cerr << "usage: isdc_stats SNAPSHOT.json            (pretty-print)\n"
                 "       isdc_stats BEFORE.json AFTER.json   (diff)\n"
                 "accepts raw registry snapshots or bench --json artifacts\n";
    return 1;
  }
  try {
    if (argc == 2) {
      print_snapshot(load(argv[1]));
    } else {
      print_diff(load(argv[1]), load(argv[2]));
    }
  } catch (const std::exception& e) {
    std::cerr << "isdc_stats: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
