// The fleet batch front-end: fleet-vs-solo parity (sync bit-identical,
// async equal quality), cross-design coalescing through the canonical
// fingerprint keys, cross-shard single-flight, per-job error isolation,
// and the persisted evaluation cache (binary round trip, versioning,
// engine- and fleet-level restart survival).
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/downstream.h"
#include "engine/fleet.h"
#include "extract/canonical.h"
#include "ir/builder.h"
#include "sched/metrics.h"
#include "sched/validate.h"
#include "workloads/registry.h"

namespace isdc::engine {
namespace {

/// Thread-safe constant-delay downstream stub that counts calls.
class counting_downstream final : public core::downstream_tool {
public:
  explicit counting_downstream(double delay, std::string name = "counting")
      : delay_(delay), name_(std::move(name)) {}
  double subgraph_delay_ps(const ir::graph&) const override {
    ++calls_;
    return delay_;
  }
  std::string name() const override { return name_; }
  int calls() const { return calls_.load(); }

private:
  double delay_;
  std::string name_;
  mutable std::atomic<int> calls_{0};
};

const synth::delay_model& shared_model() {
  static const synth::delay_model model{synth::synthesis_options{}};
  return model;
}

core::isdc_options small_options(double clock_period_ps = 2500.0) {
  core::isdc_options opts;
  opts.base.clock_period_ps = clock_period_ps;
  opts.max_iterations = 8;
  opts.subgraphs_per_iteration = 4;
  opts.num_threads = 2;
  return opts;
}

/// A design containing `prelude` unused pad inputs before a fixed adder
/// ladder: the same circuit at shifted node ids, so two instances are
/// isomorphic designs whose member-set keys never collide.
ir::graph make_shifted_ladder(int prelude, int rungs = 6) {
  ir::graph g("ladder" + std::to_string(prelude));
  ir::builder bl(g);
  for (int i = 0; i < prelude; ++i) {
    bl.input(8, "pad" + std::to_string(i));
  }
  ir::node_id v = bl.input(32, "x");
  const ir::node_id y = bl.input(32, "y");
  for (int i = 0; i < rungs; ++i) {
    v = bl.add(v, y);
  }
  g.mark_output(v);
  return g;
}

/// Everything the feedback loop computed, compared bit-identically;
/// evaluation-sourcing counters (cache hits / dispatch accounting) are
/// excluded because a warm shared cache legitimately serves from memo
/// what a cold solo run had to measure — with identical values.
void expect_same_schedule_trajectory(const core::isdc_result& a,
                                     const core::isdc_result& b) {
  EXPECT_EQ(a.initial, b.initial);
  EXPECT_EQ(a.final_schedule, b.final_schedule);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.delays, b.delays);
  EXPECT_EQ(a.naive_delays, b.naive_delays);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    const core::iteration_record& ra = a.history[i];
    const core::iteration_record& rb = b.history[i];
    EXPECT_EQ(ra.iteration, rb.iteration) << "record " << i;
    EXPECT_EQ(ra.register_bits, rb.register_bits) << "record " << i;
    EXPECT_EQ(ra.num_stages, rb.num_stages) << "record " << i;
    EXPECT_DOUBLE_EQ(ra.estimated_delay_ps, rb.estimated_delay_ps)
        << "record " << i;
    EXPECT_DOUBLE_EQ(ra.naive_estimated_delay_ps,
                     rb.naive_estimated_delay_ps)
        << "record " << i;
    EXPECT_EQ(ra.subgraphs_evaluated, rb.subgraphs_evaluated)
        << "record " << i;
    EXPECT_EQ(ra.matrix_entries_lowered, rb.matrix_entries_lowered)
        << "record " << i;
    EXPECT_EQ(ra.warm_resolve, rb.warm_resolve) << "record " << i;
    EXPECT_EQ(ra.solver_ssp_paths, rb.solver_ssp_paths) << "record " << i;
    EXPECT_EQ(ra.constraints_reemitted, rb.constraints_reemitted)
        << "record " << i;
  }
}

TEST(FleetTest, SyncParityWithSoloRuns) {
  const std::vector<std::string> names = {"rrot", "ml_datapath1",
                                          "binary_divide", "crc32"};
  std::vector<ir::graph> graphs;
  std::vector<fleet_job> jobs;
  graphs.reserve(names.size());
  for (const std::string& name : names) {
    const workloads::workload_spec* spec = workloads::find_workload(name);
    ASSERT_NE(spec, nullptr);
    graphs.push_back(spec->build());
    jobs.push_back({.name = name,
                    .graph = &graphs.back(),
                    .clock_period_ps = spec->clock_period_ps});
  }

  counting_downstream fleet_tool(900.0);
  fleet_options fopts;
  fopts.shards = 2;
  fopts.isdc = small_options();
  fleet f(fopts);
  const fleet_report report = f.run(jobs, fleet_tool);
  ASSERT_EQ(report.results.size(), jobs.size());

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_EQ(report.results[i].error, nullptr) << names[i];
    counting_downstream solo_tool(900.0);
    core::isdc_options opts = small_options();
    opts.base.clock_period_ps = *jobs[i].clock_period_ps;
    const core::isdc_result solo =
        engine().run(graphs[i], solo_tool, opts, &shared_model());
    expect_same_schedule_trajectory(report.results[i].result, solo);
  }
  EXPECT_GT(report.cache_delta.misses, 0u);
  EXPECT_GT(report.unique_subgraphs, 0u);
  EXPECT_GT(report.wall_seconds, 0.0);
  EXPECT_GT(report.designs_per_second, 0.0);
}

TEST(FleetTest, AsyncMatchesSoloFinalQuality) {
  const std::vector<std::string> names = {"rrot", "binary_divide",
                                          "ml_datapath1"};
  std::vector<ir::graph> graphs;
  std::vector<fleet_job> jobs;
  graphs.reserve(names.size());
  for (const std::string& name : names) {
    const workloads::workload_spec* spec = workloads::find_workload(name);
    ASSERT_NE(spec, nullptr);
    graphs.push_back(spec->build());
    jobs.push_back({.name = name,
                    .graph = &graphs.back(),
                    .clock_period_ps = spec->clock_period_ps});
  }

  counting_downstream tool(900.0);
  fleet_options fopts;
  fopts.shards = 3;
  fopts.isdc = small_options();
  fopts.isdc.max_iterations = 12;
  fopts.isdc.subgraphs_per_iteration = 8;
  fopts.isdc.async_evaluation = true;
  fleet f(fopts);
  const fleet_report report = f.run(jobs, tool);

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_EQ(report.results[i].error, nullptr) << names[i];
    const core::isdc_result& fr = report.results[i].result;
    counting_downstream solo_tool(900.0);
    core::isdc_options opts = fopts.isdc;
    opts.base.clock_period_ps = *jobs[i].clock_period_ps;
    const core::isdc_result solo =
        engine().run(graphs[i], solo_tool, opts, &shared_model());
    EXPECT_EQ(fr.final_schedule.num_stages(),
              solo.final_schedule.num_stages())
        << names[i];
    EXPECT_EQ(sched::register_bits(graphs[i], fr.final_schedule),
              sched::register_bits(graphs[i], solo.final_schedule))
        << names[i];
    EXPECT_TRUE(sched::validate_schedule(graphs[i], fr.final_schedule,
                                         fr.delays, *jobs[i].clock_period_ps)
                    .empty())
        << names[i];
    // Ticket accounting balances per design: every dispatch/subscription
    // produced exactly one consumed arrival, and nothing leaked.
    int dispatched = 0, coalesced = 0, arrived = 0;
    for (const core::iteration_record& rec : fr.history) {
      dispatched += rec.evaluations_dispatched;
      coalesced += rec.evaluations_coalesced;
      arrived += rec.evaluations_arrived;
    }
    EXPECT_EQ(dispatched + coalesced, arrived) << names[i];
    EXPECT_EQ(fr.history.back().evaluations_in_flight, 0u) << names[i];
  }
  EXPECT_EQ(f.cache().num_in_flight(), 0u);
}

TEST(FleetTest, IsomorphicDesignsShareMeasurements) {
  // Two designs, same circuit at different node ids: the second is served
  // entirely from the first's measurements.
  const ir::graph a = make_shifted_ladder(0);
  const ir::graph b = make_shifted_ladder(5);
  counting_downstream solo_tool(900.0);
  const core::isdc_result solo =
      engine().run(a, solo_tool, small_options(), &shared_model());
  const int solo_calls = solo_tool.calls();
  ASSERT_GT(solo_calls, 0);

  counting_downstream fleet_tool(900.0);
  fleet_options fopts;
  fopts.shards = 1;  // deterministic order: a fully measured before b
  fopts.isdc = small_options();
  fleet f(fopts);
  const fleet_report report = f.run(
      {{.name = "a", .graph = &a}, {.name = "b", .graph = &b}}, fleet_tool);
  ASSERT_EQ(report.results[0].error, nullptr);
  ASSERT_EQ(report.results[1].error, nullptr);

  // The batch cost exactly one design's worth of downstream calls, and
  // b's trajectory is bit-identical to a solo run of b.
  EXPECT_EQ(fleet_tool.calls(), solo_calls);
  EXPECT_GT(report.cache_delta.hits, 0u);
  counting_downstream solo_b_tool(900.0);
  const core::isdc_result solo_b =
      engine().run(b, solo_b_tool, small_options(), &shared_model());
  expect_same_schedule_trajectory(report.results[1].result, solo_b);
}

TEST(FleetTest, CrossShardSingleFlight) {
  // Two isomorphic designs on two shards with a slow tool: concurrent
  // selections of the same canonical cone must coalesce onto one
  // downstream call via the cache's cross-run waiters, not stall and not
  // double-measure.
  const ir::graph a = make_shifted_ladder(0, 8);
  const ir::graph b = make_shifted_ladder(3, 8);
  counting_downstream inner(900.0);
  core::latency_downstream tool(inner, 5.0);

  fleet_options fopts;
  fopts.shards = 2;
  fopts.isdc = small_options();
  fopts.isdc.async_evaluation = true;
  fleet f(fopts);
  const fleet_report report = f.run(
      {{.name = "a", .graph = &a}, {.name = "b", .graph = &b}}, tool);
  ASSERT_EQ(report.results[0].error, nullptr);
  ASSERT_EQ(report.results[1].error, nullptr);

  // Single flight across shards: one call per distinct fingerprint.
  EXPECT_EQ(tool.calls(), f.cache().size());
  EXPECT_EQ(f.cache().num_in_flight(), 0u);
  EXPECT_TRUE(sched::validate_schedule(a, report.results[0].result
                                              .final_schedule,
                                       report.results[0].result.delays,
                                       2500.0)
                  .empty());
  EXPECT_TRUE(sched::validate_schedule(b, report.results[1].result
                                              .final_schedule,
                                       report.results[1].result.delays,
                                       2500.0)
                  .empty());
}

TEST(FleetTest, JobErrorDoesNotSinkTheBatch) {
  const ir::graph a = make_shifted_ladder(0);
  counting_downstream tool(900.0);
  fleet_options fopts;
  fopts.shards = 2;
  fopts.isdc = small_options();
  fleet f(fopts);
  const fleet_report report = f.run(
      {{.name = "bad", .graph = nullptr}, {.name = "good", .graph = &a}},
      tool);
  ASSERT_EQ(report.results.size(), 2u);
  EXPECT_NE(report.results[0].error, nullptr);
  EXPECT_EQ(report.results[1].error, nullptr);
  EXPECT_GT(report.results[1].result.history.size(), 0u);
}

TEST(PersistedCacheTest, BinaryRoundTrip) {
  const std::string path = testing::TempDir() + "isdc_cache_roundtrip.bin";
  evaluation_cache original;
  original.store(11, 100.5);
  original.store(22, 200.25);
  original.store(33, 300.125);
  ASSERT_TRUE(original.save(path, 7));

  evaluation_cache loaded;
  ASSERT_TRUE(loaded.load(path, 7));
  EXPECT_EQ(loaded.size(), 3u);
  EXPECT_DOUBLE_EQ(*loaded.lookup(11), 100.5);
  EXPECT_DOUBLE_EQ(*loaded.lookup(22), 200.25);
  EXPECT_DOUBLE_EQ(*loaded.lookup(33), 300.125);

  // A different key schema (a changed canonical-hash algorithm) must be
  // rejected wholesale, not reinterpreted.
  evaluation_cache wrong_schema;
  EXPECT_FALSE(wrong_schema.load(path, 8));
  EXPECT_EQ(wrong_schema.size(), 0u);

  // Determinism: saving identical contents (even stored in a different
  // order) produces identical bytes — records are sorted by key.
  {
    const std::string path2 = testing::TempDir() + "isdc_cache_reorder.bin";
    evaluation_cache reordered;
    reordered.store(33, 300.125);
    reordered.store(11, 100.5);
    reordered.store(22, 200.25);
    ASSERT_TRUE(reordered.save(path2, 7));
    std::ifstream a(path, std::ios::binary), b(path2, std::ios::binary);
    const std::string bytes_a((std::istreambuf_iterator<char>(a)),
                              std::istreambuf_iterator<char>());
    const std::string bytes_b((std::istreambuf_iterator<char>(b)),
                              std::istreambuf_iterator<char>());
    EXPECT_EQ(bytes_a, bytes_b);
    std::remove(path2.c_str());
  }

  // A truncated file (torn write) salvages the valid prefix and is moved
  // aside to <path>.corrupt so the next save starts clean.
  {
    std::ifstream in(path, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    bytes.resize(bytes.size() - 24);  // footer and part of the last record
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  evaluation_cache truncated;
  const auto report = truncated.load_checked(path, 7);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(report.salvaged);
  EXPECT_EQ(report.records, 2u);
  EXPECT_EQ(report.quarantined_to, path + ".corrupt");
  EXPECT_EQ(truncated.size(), 2u);
  EXPECT_TRUE(truncated.lookup(11).has_value());
  {
    std::ifstream quarantined(path + ".corrupt", std::ios::binary);
    EXPECT_TRUE(quarantined.good());  // evidence preserved
    std::ifstream gone(path, std::ios::binary);
    EXPECT_FALSE(gone.good());  // original moved aside
  }
  std::remove((path + ".corrupt").c_str());

  // An older container version (the v1 magic) is recognized-but-foreign:
  // clean reject, nothing loaded, nothing quarantined.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    const char magic[8] = {'I', 'S', 'D', 'C', 'E', 'V', 'C', '\x01'};
    const std::uint64_t schema = 7;
    const std::uint64_t count = ~std::uint64_t{0};
    out.write(magic, sizeof(magic));
    out.write(reinterpret_cast<const char*>(&schema), sizeof(schema));
    out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  }
  evaluation_cache foreign;
  EXPECT_FALSE(foreign.load(path, 7));
  EXPECT_EQ(foreign.size(), 0u);
  {
    std::ifstream still_there(path, std::ios::binary);
    EXPECT_TRUE(still_there.good());
  }

  // Missing file: clean false.
  evaluation_cache missing;
  EXPECT_FALSE(missing.load(path + ".nope", 7));
  std::remove(path.c_str());
}

TEST(PersistedCacheTest, CorruptRecordIsQuarantinedAndPrefixSalvaged) {
  const std::string path = testing::TempDir() + "isdc_cache_bitflip.bin";
  evaluation_cache original;
  for (std::uint64_t k = 1; k <= 8; ++k) {
    original.store(k, 10.0 * static_cast<double>(k));
  }
  ASSERT_TRUE(original.save(path, 7));

  // Flip one bit in the middle of the record stream: every record before
  // it survives, the file is quarantined, and the run continues.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(16 + 4 * 20 + 3);  // header + 4 records + into record 5's key
    char byte = 0;
    f.seekg(f.tellp());
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x10);
    f.seekp(16 + 4 * 20 + 3);
    f.write(&byte, 1);
  }
  evaluation_cache loaded;
  const auto report = loaded.load_checked(path, 7);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(report.salvaged);
  EXPECT_EQ(report.records, 4u);
  EXPECT_EQ(report.quarantined_to, path + ".corrupt");
  EXPECT_EQ(loaded.size(), 4u);
  for (std::uint64_t k = 1; k <= 4; ++k) {
    EXPECT_DOUBLE_EQ(*loaded.lookup(k), 10.0 * static_cast<double>(k));
  }
  std::remove((path + ".corrupt").c_str());
  std::remove(path.c_str());
}

TEST(PersistedCacheTest, EngineFeedbackSurvivesRestart) {
  const std::string path = testing::TempDir() + "isdc_cache_engine.bin";
  std::remove(path.c_str());
  const ir::graph g = make_shifted_ladder(0);

  counting_downstream first_tool(900.0);
  core::isdc_result first;
  {
    engine e(path);  // loads (nothing yet), saves on destruction
    first = e.run(g, first_tool, small_options(), &shared_model());
    EXPECT_GT(first_tool.calls(), 0);
  }

  // A new process: same file, fresh engine — every measurement is served
  // from disk and the downstream tool is never consulted.
  counting_downstream second_tool(900.0);
  {
    engine e(path);
    const core::isdc_result second =
        e.run(g, second_tool, small_options(), &shared_model());
    EXPECT_EQ(second_tool.calls(), 0);
    expect_same_schedule_trajectory(first, second);
  }
  std::remove(path.c_str());
}

TEST(PersistedCacheTest, FleetFeedbackSurvivesRestart) {
  const std::string path = testing::TempDir() + "isdc_cache_fleet.bin";
  std::remove(path.c_str());
  const ir::graph a = make_shifted_ladder(0);
  const ir::graph b = make_shifted_ladder(2, 7);
  const std::vector<fleet_job> jobs = {{.name = "a", .graph = &a},
                                       {.name = "b", .graph = &b}};

  fleet_options fopts;
  fopts.shards = 2;
  fopts.isdc = small_options();
  fopts.cache_path = path;
  counting_downstream first_tool(900.0);
  {
    fleet f(fopts);
    const fleet_report report = f.run(jobs, first_tool);
    ASSERT_EQ(report.results[0].error, nullptr);
    ASSERT_EQ(report.results[1].error, nullptr);
    EXPECT_GT(first_tool.calls(), 0);
  }

  counting_downstream second_tool(900.0);
  {
    fleet f(fopts);
    const fleet_report report = f.run(jobs, second_tool);
    ASSERT_EQ(report.results[0].error, nullptr);
    ASSERT_EQ(report.results[1].error, nullptr);
    EXPECT_EQ(second_tool.calls(), 0);
    EXPECT_EQ(report.cache_delta.misses, 0u);
    EXPECT_GT(report.cache_delta.hits, 0u);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace isdc::engine
