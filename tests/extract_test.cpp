#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "extract/canonical.h"
#include "extract/cone.h"
#include "extract/partition.h"
#include "extract/path_enum.h"
#include "extract/scoring.h"
#include "extract/subgraph.h"
#include "extract/window.h"
#include "ir/builder.h"
#include "ir/verify.h"
#include "sched/sdc_scheduler.h"
#include "support/rng.h"
#include "test_util.h"

namespace isdc::extract {
namespace {

sched::delay_matrix uniform_matrix(const ir::graph& g, double unit) {
  return sched::delay_matrix::initial(g, [&g, unit](ir::node_id v) {
    const ir::opcode op = g.at(v).op;
    return op == ir::opcode::input || op == ir::opcode::constant ? 0.0
                                                                 : unit;
  });
}

/// Two-stage fixture: stage 0 holds a small cloud, stage 1 consumes it.
struct two_stage_fixture {
  ir::graph g;
  sched::schedule s;
  ir::node_id x, y, a, b, c, out;

  two_stage_fixture() {
    ir::builder bl(g);
    x = bl.input(8, "x");
    y = bl.input(8, "y");
    a = bl.add(x, y);      // stage 0
    b = bl.bnot(a);        // stage 0
    c = bl.bxor(b, x);     // stage 0, registered
    out = bl.add(c, y);    // stage 1
    g.mark_output(out);
    s.cycle = {0, 0, 0, 0, 0, 1};
  }
};

TEST(PathEnumTest, FindsRegisteredValues) {
  two_stage_fixture f;
  const auto d = uniform_matrix(f.g, 100.0);
  const auto candidates = enumerate_candidate_paths(f.g, f.s, d);
  // Register owners: c (crosses to stage 1) and out (primary output, owns
  // the pipeline-end register). Inputs are excluded.
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_EQ(candidates[0].to, f.c);
  EXPECT_EQ(candidates[0].from, f.x);  // critical same-stage ancestor
  EXPECT_FLOAT_EQ(static_cast<float>(candidates[0].delay_ps), 300.0f);
  EXPECT_EQ(candidates[1].to, f.out);
}

TEST(PathEnumTest, SingleNodePathWhenIsolated) {
  ir::graph g;
  ir::builder bl(g);
  const ir::node_id x = bl.input(8, "x");
  const ir::node_id a = bl.bnot(x);
  const ir::node_id o = bl.bnot(a);
  g.mark_output(o);
  sched::schedule s;
  s.cycle = {0, 0, 1};
  const auto d = uniform_matrix(g, 100.0);
  // a crosses the boundary; o is a primary output.
  const auto candidates = enumerate_candidate_paths(g, s, d);
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_EQ(candidates[0].to, a);
  EXPECT_EQ(candidates[0].from, a);  // isolated: single-node path
  EXPECT_EQ(candidates[1].to, o);
}

TEST(ScoringTest, FanoutDrivenPrefersLightlyUsedWideRegisters) {
  // Paper Fig. 3: a longer path whose register has two consumers should
  // rank below a slightly shorter one with a single consumer (same width).
  ir::graph g;
  ir::builder bl(g);
  const ir::node_id x = bl.input(8, "x");
  const ir::node_id r3 = bl.bnot(x);         // long path producer
  const ir::node_id r4 = bl.neg(x);          // short path producer
  const ir::node_id u1 = bl.bnot(r3);        // consumer 1 of r3
  const ir::node_id u2 = bl.neg(r3);         // consumer 2 of r3
  const ir::node_id u3 = bl.bnot(r4);        // single consumer of r4
  g.mark_output(bl.add(bl.add(u1, u2), u3));
  sched::schedule s;
  // r3 and r4 in stage 0; consumers in stage 1.
  s.cycle.assign(g.num_nodes(), 1);
  s.cycle[x] = 0;
  s.cycle[r3] = 0;
  s.cycle[r4] = 0;

  path_candidate p3{x, r3, 1000.0};  // longest path
  path_candidate p4{x, r4, 900.0};   // shorter but single-consumer
  const double t_clk = 1000.0;

  // Delay-driven ranks p3 first.
  EXPECT_GT(score_path(g, s, p3, t_clk, extraction_strategy::delay_driven),
            score_path(g, s, p4, t_clk, extraction_strategy::delay_driven));
  // Fanout-driven (Eq. 3) ranks p4 first: same bits, fewer consumers.
  EXPECT_LT(score_path(g, s, p3, t_clk, extraction_strategy::fanout_driven),
            score_path(g, s, p4, t_clk, extraction_strategy::fanout_driven));
}

TEST(ScoringTest, WiderRegistersScoreHigher) {
  ir::graph g;
  ir::builder bl(g);
  const ir::node_id x = bl.input(32, "x");
  const ir::node_id wide = bl.bnot(x);               // 32 bits
  const ir::node_id narrow = bl.slice(bl.neg(x), 0, 8);
  g.mark_output(bl.add(wide, bl.zext(narrow, 32)));
  sched::schedule s;
  s.cycle.assign(g.num_nodes(), 1);
  s.cycle[x] = 0;
  s.cycle[wide] = 0;
  s.cycle[narrow] = 0;
  s.cycle[narrow - 1] = 0;  // the neg feeding the slice
  const path_candidate pw{x, wide, 500.0};
  const path_candidate pn{x, narrow, 500.0};
  EXPECT_GT(score_path(g, s, pw, 1000.0, extraction_strategy::fanout_driven),
            score_path(g, s, pn, 1000.0, extraction_strategy::fanout_driven));
}

TEST(ScoringTest, RankCandidatesSortsDescending) {
  two_stage_fixture f;
  const auto d = uniform_matrix(f.g, 100.0);
  auto candidates = enumerate_candidate_paths(f.g, f.s, d);
  const auto ranked =
      rank_candidates(f.g, f.s, 1000.0, extraction_strategy::fanout_driven,
                      std::move(candidates));
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(ranked[i - 1].score, ranked[i].score);
  }
}

TEST(ConeTest, PathExpansionFollowsCriticalChain) {
  two_stage_fixture f;
  const auto d = uniform_matrix(f.g, 100.0);
  const path_candidate cand{f.x, f.c, 300.0};
  const subgraph sub = expand_to_path(f.g, f.s, d, cand);
  // Critical chain x -> a -> b -> c; x is an input (not a member).
  EXPECT_EQ(sub.members, (std::vector<ir::node_id>{f.a, f.b, f.c}));
  EXPECT_EQ(sub.roots, (std::vector<ir::node_id>{f.c}));
}

TEST(ConeTest, ConeCoversWholeStageFanIn) {
  two_stage_fixture f;
  const path_candidate cand{f.x, f.c, 300.0};
  const subgraph sub = expand_to_cone(f.g, f.s, cand);
  EXPECT_EQ(sub.members, (std::vector<ir::node_id>{f.a, f.b, f.c}));
  EXPECT_EQ(sub.leaves, (std::vector<ir::node_id>{f.x, f.y}));
}

/// The paper's two cone properties, checked on random scheduled graphs:
/// (1) every path from a PI to the root passes through a leaf;
/// (2) every leaf has a path to the root bypassing all other leaves.
class ConePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ConePropertyTest, PaperConeProperties) {
  rng r(static_cast<std::uint64_t>(GetParam()) * 17 + 5);
  const ir::graph g = isdc::testing::random_graph(r, 4, 25, 8);
  const auto d = uniform_matrix(g, 400.0);
  sched::scheduler_options opts;
  opts.clock_period_ps = 900.0;
  const sched::schedule s = sched::sdc_schedule(g, d, opts);
  const auto candidates = enumerate_candidate_paths(g, s, d);
  for (const auto& cand : candidates) {
    const subgraph cone = expand_to_cone(g, s, cand);
    std::vector<bool> is_member(g.num_nodes(), false);
    for (ir::node_id m : cone.members) {
      is_member[m] = true;
    }
    std::vector<bool> is_leaf(g.num_nodes(), false);
    for (ir::node_id l : cone.leaves) {
      is_leaf[l] = true;
    }
    // (1): walk up from the root through members only; any edge leaving
    // the member set must land on a leaf or a constant.
    for (ir::node_id m : cone.members) {
      for (ir::node_id p : g.at(m).operands) {
        if (!is_member[p]) {
          EXPECT_TRUE(is_leaf[p] ||
                      g.at(p).op == ir::opcode::constant)
              << "path into the cone bypasses the leaves";
        }
      }
    }
    // (2): each leaf directly feeds a member, giving a member-only path to
    // the root that bypasses the other leaves.
    for (ir::node_id l : cone.leaves) {
      bool feeds_member = false;
      for (ir::node_id u : g.users(l)) {
        feeds_member = feeds_member || (u < is_member.size() && is_member[u]);
      }
      EXPECT_TRUE(feeds_member) << "leaf " << l << " does not feed the cone";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConePropertyTest, ::testing::Range(0, 10));

TEST(WindowTest, MergesOverlappingLeaves) {
  // Two cones sharing input x must merge; a third with disjoint leaves
  // must stay separate.
  ir::graph g;
  ir::builder bl(g);
  const ir::node_id x = bl.input(8, "x");
  const ir::node_id y = bl.input(8, "y");
  const ir::node_id z = bl.input(8, "z");
  const ir::node_id a = bl.bnot(x);
  const ir::node_id b = bl.add(x, y);
  const ir::node_id c = bl.neg(z);
  const ir::node_id o = bl.add(bl.add(a, b), c);
  g.mark_output(o);
  sched::schedule s;
  s.cycle.assign(g.num_nodes(), 0);
  s.cycle[o] = 1;
  s.cycle[o - 1] = 1;  // the inner add

  const auto make_cone = [&](ir::node_id root) {
    path_candidate cand{root, root, 0.0};
    return expand_to_cone(g, s, cand);
  };
  std::vector<subgraph> cones = {make_cone(a), make_cone(b), make_cone(c)};
  const auto windows = merge_into_windows(g, s, std::move(cones));
  ASSERT_EQ(windows.size(), 2u);
  // First window: {a, b} merged via shared leaf x, multi-root.
  EXPECT_EQ(windows[0].members, (std::vector<ir::node_id>{a, b}));
  EXPECT_EQ(windows[0].roots.size(), 2u);
  EXPECT_EQ(windows[1].members, (std::vector<ir::node_id>{c}));
}

TEST(WindowTest, IncrementalFoldMatchesBatchMerge) {
  // Folding cones one at a time through merge_cone_into_windows must
  // produce the same windows as the batch merge, at every prefix — the
  // invariant the engine's expansion stage relies on to avoid re-merging
  // the cone set from scratch after every append.
  ir::graph g;
  ir::builder bl(g);
  const ir::node_id x = bl.input(8, "x");
  const ir::node_id y = bl.input(8, "y");
  const ir::node_id z = bl.input(8, "z");
  const ir::node_id a = bl.bnot(x);
  const ir::node_id b = bl.add(x, y);
  const ir::node_id c = bl.neg(z);
  const ir::node_id d = bl.add(y, z);
  const ir::node_id o = bl.add(bl.add(a, b), bl.add(c, d));
  g.mark_output(o);
  sched::schedule s;
  s.cycle.assign(g.num_nodes(), 0);
  s.cycle[o] = 1;
  s.cycle[o - 1] = 1;
  s.cycle[o - 2] = 1;

  const auto make_cone = [&](ir::node_id root) {
    path_candidate cand{root, root, 0.0};
    return expand_to_cone(g, s, cand);
  };
  const std::vector<subgraph> cones = {make_cone(a), make_cone(b),
                                       make_cone(c), make_cone(d)};
  std::vector<subgraph> incremental;
  for (std::size_t n = 0; n < cones.size(); ++n) {
    merge_cone_into_windows(g, s, cones[n], incremental);
    const auto batch = merge_into_windows(
        g, s, std::vector<subgraph>(cones.begin(), cones.begin() + n + 1));
    ASSERT_EQ(incremental.size(), batch.size()) << "prefix " << n + 1;
    for (std::size_t w = 0; w < batch.size(); ++w) {
      EXPECT_EQ(incremental[w].members, batch[w].members);
      EXPECT_EQ(incremental[w].roots, batch[w].roots);
      EXPECT_EQ(incremental[w].leaves, batch[w].leaves);
      EXPECT_DOUBLE_EQ(incremental[w].score, batch[w].score);
    }
  }
}

TEST(WindowTest, FoldResultReportsTargetWindow) {
  // Same graph/schedule as IncrementalFoldMatchesBatchMerge: a and b share
  // leaf x (merge), c opens a fresh window, d merges into c's via z.
  ir::graph g;
  ir::builder bl(g);
  const ir::node_id x = bl.input(8, "x");
  const ir::node_id y = bl.input(8, "y");
  const ir::node_id z = bl.input(8, "z");
  const ir::node_id a = bl.bnot(x);
  const ir::node_id b = bl.add(x, y);
  const ir::node_id c = bl.neg(z);
  const ir::node_id d = bl.add(y, z);
  const ir::node_id o = bl.add(bl.add(a, b), bl.add(c, d));
  g.mark_output(o);
  sched::schedule s;
  s.cycle.assign(g.num_nodes(), 0);
  s.cycle[o] = 1;
  s.cycle[o - 1] = 1;
  s.cycle[o - 2] = 1;

  const auto make_cone = [&](ir::node_id root) {
    path_candidate cand{root, root, 0.0};
    return expand_to_cone(g, s, cand);
  };
  std::vector<subgraph> windows;
  const fold_result fa = merge_cone_into_windows(g, s, make_cone(a), windows);
  EXPECT_TRUE(fa.appended);
  EXPECT_EQ(fa.index, 0u);
  const fold_result fb = merge_cone_into_windows(g, s, make_cone(b), windows);
  EXPECT_FALSE(fb.appended);  // shares leaf x with a's window
  EXPECT_EQ(fb.index, 0u);
  const fold_result fc = merge_cone_into_windows(g, s, make_cone(c), windows);
  EXPECT_TRUE(fc.appended);
  EXPECT_EQ(fc.index, 1u);
  const fold_result fd = merge_cone_into_windows(g, s, make_cone(d), windows);
  EXPECT_FALSE(fd.appended);  // shares leaf y with the first window
  EXPECT_EQ(fd.index, 0u);
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].members, (std::vector<ir::node_id>{a, b, d}));
  EXPECT_EQ(windows[1].members, (std::vector<ir::node_id>{c}));
}

TEST(WindowTest, DifferentStagesNeverMerge) {
  ir::graph g;
  ir::builder bl(g);
  const ir::node_id x = bl.input(8, "x");
  const ir::node_id a = bl.bnot(x);
  const ir::node_id b = bl.neg(a);
  g.mark_output(b);
  sched::schedule s;
  s.cycle = {0, 0, 1};
  subgraph c1;
  c1.members = {a};
  c1.stage = 0;
  finalize_subgraph(g, s, c1);
  subgraph c2;
  c2.members = {b};
  c2.stage = 1;
  finalize_subgraph(g, s, c2);
  const auto windows = merge_into_windows(g, s, {c1, c2});
  EXPECT_EQ(windows.size(), 2u);
}

TEST(SubgraphTest, KeyIsOrderIndependentFingerprint) {
  subgraph a;
  a.members = {1, 5, 9};
  subgraph b;
  b.members = {1, 5, 9};
  EXPECT_EQ(a.key(), b.key());
  b.members = {1, 5, 10};
  EXPECT_NE(a.key(), b.key());
}

TEST(SubgraphTest, ToIrVerifiesAndHasRoots) {
  two_stage_fixture f;
  const path_candidate cand{f.x, f.c, 300.0};
  const subgraph sub = expand_to_cone(f.g, f.s, cand);
  const ir::extraction ex = subgraph_to_ir(f.g, sub);
  EXPECT_EQ(ir::verify(ex.g), "");
  EXPECT_EQ(ex.g.outputs().size(), sub.roots.size());
}


// ---------------------------------------------------------------------------
// Canonical fingerprints: the cross-design cache key. Isomorphic cones must
// hash equal no matter where their nodes sit in their designs; any semantic
// difference — opcode, width, constant value, operand order, sharing, roots
// — must hash apart.

/// Builds `prelude` unused inputs first, so every later node id is shifted:
/// the same circuit embedded at different ids in a "different design".
struct shifted_chain {
  ir::graph g;
  sched::schedule s;
  subgraph sub;

  explicit shifted_chain(int prelude, ir::opcode second_op = ir::opcode::add,
                         std::uint32_t width = 16) {
    ir::builder bl(g);
    for (int i = 0; i < prelude; ++i) {
      bl.input(8, "pad" + std::to_string(i));
    }
    const ir::node_id x = bl.input(width, "x");
    const ir::node_id y = bl.input(width, "y");
    const ir::node_id a = bl.add(x, y);
    const ir::node_id b =
        second_op == ir::opcode::add ? bl.add(a, y) : bl.bxor(a, y);
    const ir::node_id c = bl.mul(b, x);
    g.mark_output(c);
    s.cycle.assign(g.num_nodes(), 0);
    sub.members = {a, b, c};
    finalize_subgraph(g, s, sub);
  }
};

TEST(CanonicalFingerprintTest, InvariantUnderNodeRenumbering) {
  const shifted_chain base(0);
  const shifted_chain shifted(7);
  EXPECT_NE(base.sub.key(), shifted.sub.key());  // design-local keys differ
  EXPECT_EQ(canonical_fingerprint(base.g, base.sub),
            canonical_fingerprint(shifted.g, shifted.sub));
}

TEST(CanonicalFingerprintTest, OpcodeAndWidthChangeTheFingerprint) {
  const shifted_chain add_chain(0, ir::opcode::add, 16);
  const shifted_chain xor_chain(0, ir::opcode::bxor, 16);
  const shifted_chain wide_chain(0, ir::opcode::add, 32);
  EXPECT_NE(canonical_fingerprint(add_chain.g, add_chain.sub),
            canonical_fingerprint(xor_chain.g, xor_chain.sub));
  EXPECT_NE(canonical_fingerprint(add_chain.g, add_chain.sub),
            canonical_fingerprint(wide_chain.g, wide_chain.sub));
}

TEST(CanonicalFingerprintTest, OperandOrderMatters) {
  // sub(~x, y) vs sub(y, ~x): distinguishable operands on a
  // non-commutative op — different circuits, different fingerprints.
  // (sub(x, y) vs sub(y, x) over two *fresh* leaves would rightly
  // coalesce: swapping anonymous inputs is an isomorphism.)
  ir::graph g;
  ir::builder bl(g);
  const ir::node_id x = bl.input(16, "x");
  const ir::node_id y = bl.input(16, "y");
  const ir::node_id nx = bl.bnot(x);
  const ir::node_id ny = bl.bnot(x);
  const ir::node_id fwd_sub = bl.sub(nx, y);
  const ir::node_id rev_sub = bl.sub(y, ny);
  g.mark_output(fwd_sub);
  g.mark_output(rev_sub);
  sched::schedule s;
  s.cycle.assign(g.num_nodes(), 0);
  subgraph fwd, rev;
  fwd.members = {nx, fwd_sub};
  rev.members = {ny, rev_sub};
  finalize_subgraph(g, s, fwd);
  finalize_subgraph(g, s, rev);
  EXPECT_NE(canonical_fingerprint(g, fwd), canonical_fingerprint(g, rev));
  // Reusing one leaf twice must hash differently from using two distinct
  // leaves: sub(x, x) is not sub(x, y).
  const ir::node_id xy = bl.sub(x, y);
  const ir::node_id xx = bl.sub(x, x);
  g.mark_output(xy);
  g.mark_output(xx);
  s.cycle.assign(g.num_nodes(), 0);
  subgraph two_leaves, one_leaf;
  two_leaves.members = {xy};
  one_leaf.members = {xx};
  finalize_subgraph(g, s, two_leaves);
  finalize_subgraph(g, s, one_leaf);
  EXPECT_NE(canonical_fingerprint(g, two_leaves),
            canonical_fingerprint(g, one_leaf));
}

TEST(CanonicalFingerprintTest, ConstantValuesMatter) {
  const auto make = [](std::uint64_t k) {
    ir::graph g;
    ir::builder bl(g);
    const ir::node_id x = bl.input(16, "x");
    const ir::node_id c = bl.constant(16, k);
    const ir::node_id v = bl.bxor(x, c);
    g.mark_output(v);
    sched::schedule s;
    s.cycle.assign(g.num_nodes(), 0);
    subgraph sub;
    sub.members = {v};
    finalize_subgraph(g, s, sub);
    return canonical_fingerprint(g, sub);
  };
  EXPECT_EQ(make(0xbeef), make(0xbeef));
  EXPECT_NE(make(0xbeef), make(0xbee0));
}

TEST(CanonicalFingerprintTest, SharingDistinguishedFromDuplication) {
  // (x+y) + (x+y) with the subexpression shared vs computed twice: the
  // same tree unfolding, different DAGs — downstream synthesis sees
  // different input netlists, so the fingerprints must differ.
  ir::graph g;
  ir::builder bl(g);
  const ir::node_id x = bl.input(16, "x");
  const ir::node_id y = bl.input(16, "y");
  const ir::node_id shared = bl.add(x, y);
  const ir::node_id shared_sum = bl.add(shared, shared);
  const ir::node_id dup_a = bl.add(x, y);
  const ir::node_id dup_b = bl.add(x, y);
  const ir::node_id dup_sum = bl.add(dup_a, dup_b);
  g.mark_output(shared_sum);
  g.mark_output(dup_sum);
  sched::schedule s;
  s.cycle.assign(g.num_nodes(), 0);
  subgraph with_sharing, without_sharing;
  with_sharing.members = {shared, shared_sum};
  without_sharing.members = {dup_a, dup_b, dup_sum};
  finalize_subgraph(g, s, with_sharing);
  finalize_subgraph(g, s, without_sharing);
  EXPECT_NE(canonical_fingerprint(g, with_sharing),
            canonical_fingerprint(g, without_sharing));
}

TEST(CanonicalFingerprintTest, MultiRootWindowInvariantUnderRenumbering) {
  // A two-root window (two cones sharing a leaf), embedded at two
  // different id offsets; also checks the root set is part of the key.
  const auto make = [](int prelude) {
    ir::graph g;
    ir::builder bl(g);
    for (int i = 0; i < prelude; ++i) {
      bl.input(8, "pad" + std::to_string(i));
    }
    const ir::node_id x = bl.input(16, "x");
    const ir::node_id y = bl.input(16, "y");
    const ir::node_id z = bl.input(16, "z");
    const ir::node_id a = bl.add(x, y);
    const ir::node_id r1 = bl.bnot(a);
    const ir::node_id r2 = bl.bxor(a, z);
    g.mark_output(r1);
    g.mark_output(r2);
    sched::schedule s;
    s.cycle.assign(g.num_nodes(), 0);
    subgraph sub;
    sub.members = {a, r1, r2};
    finalize_subgraph(g, s, sub);
    return std::pair{canonical_fingerprint(g, sub), sub};
  };
  const auto [fp0, sub0] = make(0);
  const auto [fp3, sub3] = make(3);
  EXPECT_EQ(fp0, fp3);

  // Dropping one root (r1 becomes an interior dead end) changes the set
  // of outputs the downstream tool times, so the fingerprint moves.
  ir::graph g;
  ir::builder bl(g);
  const ir::node_id x = bl.input(16, "x");
  const ir::node_id y = bl.input(16, "y");
  const ir::node_id z = bl.input(16, "z");
  const ir::node_id a = bl.add(x, y);
  bl.bnot(a);
  const ir::node_id r2 = bl.bxor(a, z);
  g.mark_output(r2);
  sched::schedule s;
  s.cycle.assign(g.num_nodes(), 0);
  subgraph sub;
  sub.members = {a, r2};
  finalize_subgraph(g, s, sub);
  EXPECT_NE(canonical_fingerprint(g, sub), fp0);
}

TEST(CanonicalFingerprintTest, ExpandedConesFromIsomorphicRegionsCoalesce) {
  // End-to-end shape: two structurally identical adder chains living in
  // one design's two halves produce cones with equal fingerprints.
  ir::graph g;
  ir::builder bl(g);
  const ir::node_id x1 = bl.input(16, "x1");
  const ir::node_id y1 = bl.input(16, "y1");
  const ir::node_id x2 = bl.input(16, "x2");
  const ir::node_id y2 = bl.input(16, "y2");
  ir::node_id v1 = x1;
  ir::node_id v2 = x2;
  for (int i = 0; i < 3; ++i) {
    v1 = bl.add(v1, y1);
    v2 = bl.add(v2, y2);
  }
  g.mark_output(v1);
  g.mark_output(v2);
  sched::schedule s;
  s.cycle.assign(g.num_nodes(), 0);
  const path_candidate p1{.from = x1, .to = v1};
  const path_candidate p2{.from = x2, .to = v2};
  const subgraph cone1 = expand_to_cone(g, s, p1);
  const subgraph cone2 = expand_to_cone(g, s, p2);
  EXPECT_NE(cone1.key(), cone2.key());
  EXPECT_EQ(canonical_fingerprint(g, cone1), canonical_fingerprint(g, cone2));
}

// --- weakly-connected components / component extraction (partition.h) ---

TEST(PartitionTest, TwoIslandsSharingAConstantSplit) {
  ir::graph g("islands");
  ir::builder bl(g);
  const ir::node_id k = bl.constant(8, 3);
  const ir::node_id x = bl.input(8, "x");
  const ir::node_id a = bl.add(x, k);
  const ir::node_id y = bl.input(8, "y");
  const ir::node_id b = bl.mul(y, k);  // same constant, other island
  bl.output(a);
  bl.output(b);

  const std::vector<design_component> comps =
      weakly_connected_components(g);
  ASSERT_EQ(comps.size(), 2u);
  // Components are ordered by lowest member; the shared constant is
  // cloned into both.
  for (const design_component& c : comps) {
    EXPECT_TRUE(std::find(c.members.begin(), c.members.end(), k) !=
                c.members.end());
    EXPECT_TRUE(std::is_sorted(c.members.begin(), c.members.end()));
    EXPECT_EQ(c.outputs.size(), 1u);
  }
  EXPECT_EQ(comps[0].members, (std::vector<ir::node_id>{k, x, a}));
  EXPECT_EQ(comps[1].members, (std::vector<ir::node_id>{k, y, b}));
}

TEST(PartitionTest, ConnectedGraphIsOneComponent) {
  ir::graph g("one");
  ir::builder bl(g);
  const ir::node_id x = bl.input(8, "x");
  const ir::node_id y = bl.input(8, "y");
  bl.output(bl.add(x, y));
  const std::vector<design_component> comps =
      weakly_connected_components(g);
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_EQ(comps[0].members.size(), g.num_nodes());
}

TEST(PartitionTest, ExtractedComponentVerifiesAndMapsBack) {
  ir::graph g("islands");
  ir::builder bl(g);
  const ir::node_id x = bl.input(8, "x");
  const ir::node_id a = bl.add(x, bl.constant(8, 1));
  bl.output(a);
  const ir::node_id y = bl.input(8, "y");
  const ir::node_id b = bl.bxor(y, y);
  bl.output(b);

  const std::vector<design_component> comps =
      weakly_connected_components(g);
  ASSERT_EQ(comps.size(), 2u);
  for (const design_component& c : comps) {
    const ir::extraction ex = extract_component(g, c);
    EXPECT_EQ(ir::verify(ex.g), "");
    EXPECT_EQ(ex.g.num_nodes(), c.members.size());
    EXPECT_EQ(ex.g.outputs().size(), c.outputs.size());
    for (const ir::node_id m : c.members) {
      const auto it = ex.to_sub.find(m);
      ASSERT_NE(it, ex.to_sub.end());
      EXPECT_EQ(ex.g.at(it->second).op, g.at(m).op);
      EXPECT_EQ(ex.g.at(it->second).width, g.at(m).width);
    }
  }
}

}  // namespace
}  // namespace isdc::extract
