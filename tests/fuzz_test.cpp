// The differential fuzz harness (src/fuzz): deterministic case
// generation, the config-pair checks, the ddmin reducer and the repro
// file round trip — including the two acceptance paths: a deliberately
// injected scheduler bug is caught, minimized to a tiny core and replayed
// from its emitted repro file; and a multi-thousand-node stitched design
// scheduled under a memory budget is bit-identical to its components
// scheduled solo.
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "backend/netlist.h"
#include "core/downstream.h"
#include "engine/engine.h"
#include "extract/partition.h"
#include "fuzz/fuzz.h"
#include "fuzz/minimize.h"
#include "fuzz/repro.h"
#include "ir/verify.h"
#include "support/check.h"
#include "support/mem.h"
#include "workloads/registry.h"

namespace isdc::fuzz {
namespace {

std::string worker_path() { return ISDC_DELAY_WORKER_PATH; }

check_options cheap_checks() {
  check_options opts;
  opts.worker_command.clear();
  opts.budget_sweep = false;
  opts.brute_force = false;
  opts.failpoint_pair = false;
  return opts;
}

TEST(GenerateCaseTest, DeterministicAcrossFlavors) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const fuzz_case a = generate_case(seed);
    const fuzz_case b = generate_case(seed);
    EXPECT_EQ(ir::verify(a.g), "") << "seed " << seed;
    EXPECT_EQ(backend::to_text(a.g), backend::to_text(b.g))
        << "seed " << seed;
    static const char* const flavors[] = {"random", "mixed", "control",
                                          "stitched"};
    EXPECT_EQ(a.generator, flavors[seed % 4]) << "seed " << seed;
    EXPECT_GE(a.g.num_nodes(), 40u) << "seed " << seed;
  }
}

TEST(GenerateCaseTest, FullCasesAreLarger) {
  const fuzz_case quick = generate_case(1, /*quick=*/true);
  const fuzz_case full = generate_case(1, /*quick=*/false);
  EXPECT_GT(full.g.num_nodes(), quick.g.num_nodes());
  EXPECT_GT(full.options.max_iterations, quick.options.max_iterations);
}

TEST(CheckNamesTest, RespectOptionsAndCaseShape) {
  const fuzz_case stitched = generate_case(3);
  ASSERT_EQ(stitched.generator, "stitched");
  check_options opts;
  opts.worker_command = "worker --tool=aig-depth";
  const std::vector<std::string> names = check_names(stitched, opts);
  EXPECT_NE(std::find(names.begin(), names.end(), "budget-sweep"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "inprocess-vs-worker"),
            names.end());

  const fuzz_case plain = generate_case(0);
  const std::vector<std::string> no_extras =
      check_names(plain, cheap_checks());
  EXPECT_EQ(no_extras, (std::vector<std::string>{
                           "serial-vs-threads", "cold-vs-warm",
                           "sync-vs-async"}));
}

TEST(RunChecksTest, UnknownCheckNameFailsLoudly) {
  const fuzz_case c = generate_case(0);
  const check_result r = run_named_check("no-such-check", c, cheap_checks());
  EXPECT_FALSE(r.passed);
  EXPECT_NE(r.detail.find("unknown"), std::string::npos);
}

TEST(RunChecksTest, CorePairsAgreeOnOneSeed) {
  const fuzz_case c = generate_case(1);
  check_options opts = cheap_checks();
  opts.failpoint_pair = true;
  opts.brute_force = true;
  for (const check_result& r : run_checks(c, opts)) {
    EXPECT_TRUE(r.passed) << r.name << ": " << r.detail;
  }
}

TEST(RunChecksTest, WorkerPairAgreesOnOneSeed) {
  const fuzz_case c = generate_case(0);
  check_options opts = cheap_checks();
  opts.worker_command = worker_path() + " --tool=aig-depth";
  const check_result r = run_named_check("inprocess-vs-worker", c, opts);
  EXPECT_TRUE(r.passed) << r.detail;
}

TEST(RunChecksTest, BudgetSweepAgreesOnStitchedSeed) {
  const fuzz_case c = generate_case(3);
  ASSERT_EQ(c.generator, "stitched");
  const check_result r = run_named_check("budget-sweep", c, cheap_checks());
  EXPECT_TRUE(r.passed) << r.detail;
}

TEST(RunChecksTest, BruteForceMatchesSdcOnTinyInstances) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    fuzz_case c = generate_case(seed);
    const check_result r = run_named_check("brute-force", c, cheap_checks());
    EXPECT_TRUE(r.passed) << "seed " << seed << ": " << r.detail;
  }
}

// The acceptance path: an injected scheduler bug (the sabotage stage) is
// caught by the differential harness, ddmin shrinks the design to a tiny
// core, and the emitted repro file replays the failure from disk alone.
TEST(InjectedBugTest, CaughtMinimizedAndReplayedFromFile) {
  const fuzz_case c = generate_case(0);
  const check_options opts = cheap_checks();

  const check_result failure = run_named_check("sabotage", c, opts);
  ASSERT_FALSE(failure.passed) << "sabotage should diverge on seed 0";

  minimize_options mopts;
  mopts.check = "sabotage";
  mopts.checks = opts;
  const minimize_result reduced = minimize_case(c, mopts);
  EXPECT_TRUE(reduced.reduced);
  EXPECT_LE(reduced.g.num_nodes(), 50u);
  EXPECT_EQ(ir::verify(reduced.g), "");
  // The sabotage core: at least one mul and one sink must survive.
  bool has_mul = false;
  for (const ir::node& n : reduced.g.nodes()) {
    has_mul |= n.op == ir::opcode::mul;
  }
  EXPECT_TRUE(has_mul);

  repro r;
  r.check = "sabotage";
  r.seed = c.seed;
  r.generator = c.generator;
  r.detail = failure.detail;
  r.options = c.options;
  r.g = reduced.g;
  const std::string path = ::testing::TempDir() + "/repro_sabotage.txt";
  ASSERT_TRUE(write_repro(r, path));

  const repro loaded = load_repro(path);
  EXPECT_EQ(loaded.check, "sabotage");
  EXPECT_EQ(loaded.seed, c.seed);
  EXPECT_EQ(loaded.g.num_nodes(), reduced.g.num_nodes());
  const check_result replayed = replay(loaded, opts);
  EXPECT_FALSE(replayed.passed)
      << "minimized repro must still reproduce the divergence";
}

TEST(ReproTest, RoundTripPreservesEveryField) {
  repro r;
  r.check = "cold-vs-warm";
  r.seed = 123456789u;
  r.generator = "mixed";
  r.detail = "history record 1 differs";
  r.failpoints = "seed=9;engine.cache.save=fail@p=0.5";
  r.options.max_iterations = 7;
  r.options.subgraphs_per_iteration = 3;
  r.options.convergence_patience = 5;
  r.options.num_threads = 2;
  r.options.compute_threads = 4;
  r.options.async_evaluation = true;
  r.options.base.clock_period_ps = 4000.0;
  r.options.memory_budget_mb = 96.0;
  r.g = workloads::build_random_dag(5, 30);

  const repro back = parse_repro(to_file_text(r));
  EXPECT_EQ(back.check, r.check);
  EXPECT_EQ(back.seed, r.seed);
  EXPECT_EQ(back.generator, r.generator);
  EXPECT_EQ(back.detail, r.detail);
  EXPECT_EQ(back.failpoints, r.failpoints);
  EXPECT_EQ(back.options.max_iterations, r.options.max_iterations);
  EXPECT_EQ(back.options.subgraphs_per_iteration,
            r.options.subgraphs_per_iteration);
  EXPECT_EQ(back.options.convergence_patience,
            r.options.convergence_patience);
  EXPECT_EQ(back.options.num_threads, r.options.num_threads);
  EXPECT_EQ(back.options.compute_threads, r.options.compute_threads);
  EXPECT_EQ(back.options.async_evaluation, r.options.async_evaluation);
  EXPECT_DOUBLE_EQ(back.options.base.clock_period_ps,
                   r.options.base.clock_period_ps);
  EXPECT_DOUBLE_EQ(back.options.memory_budget_mb,
                   r.options.memory_budget_mb);
  EXPECT_EQ(backend::to_text(back.g), backend::to_text(r.g));
}

TEST(ReproTest, MalformedInputsAreRejected) {
  EXPECT_THROW(parse_repro(""), check_error);
  EXPECT_THROW(parse_repro("bogus 1\ncheck x\ngraph\n"), check_error);
  EXPECT_THROW(parse_repro("isdc-repro 99\ncheck x\ngraph\n"), check_error);
  // Unknown options must not silently replay with defaults.
  EXPECT_THROW(
      parse_repro("isdc-repro 1\ncheck x\noption mystery 1\ngraph\n"
                  "isdc-graph 1\nname g\nnode input 8 0\nout 0\nend\n"),
      check_error);
  // A graph with no check line is not a repro.
  EXPECT_THROW(
      parse_repro("isdc-repro 1\ngraph\n"
                  "isdc-graph 1\nname g\nnode input 8 0\nout 0\nend\n"),
      check_error);
  // Missing graph section.
  EXPECT_THROW(parse_repro("isdc-repro 1\ncheck x\nseed 1\n"), check_error);
}

TEST(CompareResultsTest, DetectsEachDivergenceKind) {
  core::isdc_result a;
  a.initial.cycle = {0, 0, 1};
  a.final_schedule.cycle = {0, 0, 1};
  a.iterations = 2;
  a.history.resize(2);
  a.history[1].register_bits = 32;

  core::isdc_result b = a;
  EXPECT_EQ(compare_results(a, b, true), "");

  b.final_schedule.cycle[2] = 2;
  EXPECT_NE(compare_results(a, b, false).find("final"), std::string::npos);

  b = a;
  b.iterations = 3;
  EXPECT_NE(compare_results(a, b, false).find("iteration"),
            std::string::npos);

  b = a;
  b.history[1].register_bits = 64;
  EXPECT_NE(compare_results(a, b, false).find("record"), std::string::npos);

  // Cache-sourcing counters are explicitly not a divergence.
  b = a;
  b.history[1].cache_hits = 5;
  EXPECT_EQ(compare_results(a, b, true), "");
}

// The scale acceptance path at ctest size (the CLI's --scale mode runs the
// same contract at 100k nodes in CI): a stitched multi-component design
// scheduled under a memory budget partitions, stays within a sane
// footprint, and every node's stage equals the component scheduled solo.
TEST(MemoryBudgetTest, StitchedDesignUnderBudgetMatchesSoloComponents) {
  const ir::graph g = workloads::stitch_registry(7, 3000);
  ASSERT_EQ(ir::verify(g), "");
  const std::vector<extract::design_component> components =
      extract::weakly_connected_components(g);
  ASSERT_GE(components.size(), 2u);

  core::aig_depth_downstream tool;
  core::isdc_options opts;
  // Registry kernels include 5000 ps-class designs; the stitched whole
  // needs the larger clock.
  opts.base.clock_period_ps = 5000.0;
  opts.max_iterations = 1;
  opts.subgraphs_per_iteration = 2;
  opts.num_threads = 2;
  opts.memory_budget_mb = 128.0;

  engine::engine e;
  const core::isdc_result budgeted = e.run(g, tool, opts);
  EXPECT_TRUE(budgeted.partitioned);
  EXPECT_EQ(budgeted.final_schedule.cycle.size(), g.num_nodes());
  // The RSS-within-budget bound is asserted by the CLI's --scale mode in a
  // fresh process; inside the shared gtest process the high-water mark
  // carries every previous test, so just require it was recorded.
  EXPECT_GT(budgeted.peak_rss_kb, 0);

  core::isdc_options solo_opts = opts;
  solo_opts.memory_budget_mb = 0.0;
  for (const extract::design_component& comp : components) {
    const ir::extraction extracted = extract::extract_component(g, comp);
    engine::engine solo_engine;
    const core::isdc_result solo =
        solo_engine.run(extracted.g, tool, solo_opts);
    for (const auto& [original, sub] : extracted.to_sub) {
      ASSERT_EQ(budgeted.final_schedule.cycle[original],
                solo.final_schedule.cycle[sub])
          << "node " << original;
      ASSERT_EQ(budgeted.initial.cycle[original], solo.initial.cycle[sub])
          << "node " << original;
    }
  }
}

TEST(MemoryBudgetTest, OverBudgetComponentFailsFast) {
  const ir::graph g = workloads::build_random_dag(1, 2000);
  core::aig_depth_downstream tool;
  core::isdc_options opts;
  opts.max_iterations = 1;
  opts.memory_budget_mb = 1.0;  // a 2k-node matrix needs ~32 MiB
  engine::engine e;
  EXPECT_THROW(e.run(g, tool, opts), check_error);
}

}  // namespace
}  // namespace isdc::fuzz
