#include <gtest/gtest.h>

#include "ir/builder.h"
#include "lower/lowering.h"
#include "support/rng.h"
#include "synth/cell_library.h"
#include "synth/characterizer.h"
#include "synth/netlist.h"
#include "synth/sta.h"
#include "synth/synthesis.h"
#include "synth/techmap.h"
#include "test_util.h"

namespace isdc::synth {
namespace {

using isdc::testing::random_aig;

TEST(CellLibraryTest, ContainsInverterAndBasics) {
  const cell_library& lib = default_library();
  EXPECT_GE(lib.cells().size(), 20u);
  EXPECT_GT(lib.inverter_delay_ps(), 0.0);
  EXPECT_EQ(lib.at(lib.inverter_index()).name, "inv");
}

TEST(CellLibraryTest, EveryTwoVariableFunctionHasMatchOrComplement) {
  // Needed so the mapper can always fall back to the fanin-pair cut: every
  // nondegenerate 2-var function must match in at least one phase.
  const cell_library& lib = default_library();
  for (aig::tt6 f = 0; f < 16; ++f) {
    const bool degenerate = f == 0 || f == 0xf ||
                            f == (aig::tt_project(0) & 0xf) ||
                            f == (~aig::tt_project(0) & 0xf) ||
                            f == (aig::tt_project(1) & 0xf) ||
                            f == (~aig::tt_project(1) & 0xf);
    if (degenerate) {
      continue;
    }
    const bool matched =
        lib.find(2, f) != nullptr || lib.find(2, ~f & 0xf) != nullptr;
    EXPECT_TRUE(matched) << "2-var function " << f << " unmatched";
  }
}

TEST(CellLibraryTest, MatchSemantics) {
  // The and2b cell (x0 & !x1) must match f = !x0 & x1 via pin swap.
  const cell_library& lib = default_library();
  const aig::tt6 f = (~aig::tt_project(0) & aig::tt_project(1)) & 0xf;
  const auto* matches = lib.find(2, f);
  ASSERT_NE(matches, nullptr);
  bool found_and2b = false;
  for (const cell_match& m : *matches) {
    if (lib.at(m.cell_index).name == "and2b") {
      found_and2b = true;
      // pin 0 (the non-inverted one) must read variable 1.
      EXPECT_EQ(m.pin_to_var[0], 1);
      EXPECT_EQ(m.pin_to_var[1], 0);
    }
  }
  EXPECT_TRUE(found_and2b);
}

TEST(NetlistTest, AreaAndGateBookkeeping) {
  const cell_library& lib = default_library();
  netlist nl(lib);
  const net_id a = nl.add_pi();
  const net_id b = nl.add_pi();
  const net_id x = nl.add_gate(lib.inverter_index(), {a});
  (void)b;
  nl.add_po(x);
  EXPECT_EQ(nl.num_gates(), 1u);
  EXPECT_DOUBLE_EQ(nl.total_area(), lib.at(lib.inverter_index()).area);
  EXPECT_EQ(nl.driver_gate(x), 0);
  EXPECT_EQ(nl.driver_gate(a), -1);
}

TEST(NetlistTest, SimulationEvaluatesCells) {
  const cell_library& lib = default_library();
  netlist nl(lib);
  const net_id a = nl.add_pi();
  const net_id b = nl.add_pi();
  // find nand2
  int nand2 = -1;
  for (std::size_t i = 0; i < lib.cells().size(); ++i) {
    if (lib.cells()[i].name == "nand2") {
      nand2 = static_cast<int>(i);
    }
  }
  ASSERT_GE(nand2, 0);
  const net_id x = nl.add_gate(nand2, {a, b});
  nl.add_po(x);
  const std::vector<std::uint64_t> patterns = {0b1100, 0b1010};
  const auto out = nl.simulate_outputs(patterns);
  EXPECT_EQ(out[0] & 0xf, 0b0111u);
}

TEST(StaTest, HandComputedArrivals) {
  const cell_library& lib = default_library();
  netlist nl(lib);
  const net_id a = nl.add_pi();
  const net_id b = nl.add_pi();
  const net_id inv_a = nl.add_gate(lib.inverter_index(), {a});
  int and2 = -1;
  for (std::size_t i = 0; i < lib.cells().size(); ++i) {
    if (lib.cells()[i].name == "and2") {
      and2 = static_cast<int>(i);
    }
  }
  ASSERT_GE(and2, 0);
  const net_id x = nl.add_gate(and2, {inv_a, b});
  nl.add_po(x);
  const sta_result sta = analyze(nl);
  const double expected =
      lib.inverter_delay_ps() + lib.at(and2).delay_ps;
  EXPECT_DOUBLE_EQ(sta.critical_delay_ps, expected);
  EXPECT_DOUBLE_EQ(worst_slack_ps(nl, 1000.0), 1000.0 - expected);
  const auto path = critical_path(nl);
  EXPECT_EQ(path.size(), 3u);  // po net, inv net, pi
}

/// Mapper legality + equivalence: the mapped netlist must compute exactly
/// the AIG's outputs.
class TechmapTest : public ::testing::TestWithParam<int> {};

TEST_P(TechmapTest, MappedNetlistEquivalentToAig) {
  rng r(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  const aig::aig g = random_aig(r, 6, 90);
  const netlist nl = technology_map(g, default_library());
  for (int round = 0; round < 8; ++round) {
    std::vector<std::uint64_t> patterns(g.num_pis());
    for (auto& p : patterns) {
      p = r.next();
    }
    EXPECT_EQ(nl.simulate_outputs(patterns),
              aig::simulate_outputs(g, patterns))
        << "seed " << GetParam() << " round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TechmapTest, ::testing::Range(0, 15));

TEST(TechmapTest, MapsLoweredAdder) {
  ir::graph g("adder");
  ir::builder b(g);
  b.output(b.add(b.input(16, "a"), b.input(16, "b")));
  const lower::lowering_result lowered = lower::lower_graph(g);
  const aig::aig opt = optimize(lowered.net.cleanup());
  const netlist nl = technology_map(opt, default_library());
  EXPECT_GT(nl.num_gates(), 0u);
  rng r(3);
  for (int round = 0; round < 4; ++round) {
    std::vector<std::uint64_t> patterns(opt.num_pis());
    for (auto& p : patterns) {
      p = r.next();
    }
    EXPECT_EQ(nl.simulate_outputs(patterns),
              aig::simulate_outputs(opt, patterns));
  }
}

TEST(SynthesisTest, WiringOnlyDesignHasZeroDelay) {
  ir::graph g("wires");
  ir::builder b(g);
  const ir::node_id x = b.input(16, "x");
  b.output(b.rotri(x, 5));
  const synthesis_result res = synthesize_graph(g);
  EXPECT_EQ(res.gate_count, 0u);
  EXPECT_DOUBLE_EQ(res.critical_delay_ps, 0.0);
}

TEST(SynthesisTest, OptimizationReducesOrKeepsDepth) {
  ir::graph g("tree");
  ir::builder b(g);
  std::vector<ir::node_id> xs;
  for (int i = 0; i < 6; ++i) {
    xs.push_back(b.input(8, "x" + std::to_string(i)));
  }
  b.output(b.add_many(xs));  // left fold: badly unbalanced
  const synthesis_result res = synthesize_graph(g);
  EXPECT_LE(res.aig_depth_after, res.aig_depth_before);
  EXPECT_GT(res.critical_delay_ps, 0.0);
}

TEST(CharacterizerTest, WiringOpsAreFree) {
  delay_model dm;
  EXPECT_DOUBLE_EQ(dm.op_delay_ps(ir::opcode::slice, 8), 0.0);
  EXPECT_DOUBLE_EQ(dm.op_delay_ps(ir::opcode::concat, 16), 0.0);
  EXPECT_DOUBLE_EQ(dm.op_delay_ps(ir::opcode::zext, 32), 0.0);
  EXPECT_DOUBLE_EQ(
      dm.op_delay_ps(ir::opcode::shl, 32, /*variable_amount=*/false), 0.0);
  EXPECT_GT(dm.op_delay_ps(ir::opcode::shl, 32, /*variable_amount=*/true),
            0.0);
}

TEST(CharacterizerTest, PlausibleAdderDelays) {
  delay_model dm;
  const double add8 = dm.op_delay_ps(ir::opcode::add, 8);
  const double add32 = dm.op_delay_ps(ir::opcode::add, 32);
  EXPECT_GT(add8, 100.0);   // a few gate delays at least
  EXPECT_LT(add32, 2500.0); // must fit the paper's default clock
  EXPECT_GT(add32, add8);   // wider is slower
}

TEST(CharacterizerTest, MultiplierSlowerThanAdder) {
  delay_model dm;
  EXPECT_GT(dm.op_delay_ps(ir::opcode::mul, 16),
            dm.op_delay_ps(ir::opcode::add, 16));
  // The paper's clock-selection rule: 32-bit multiply exceeds 2500 ps.
  EXPECT_GT(dm.op_delay_ps(ir::opcode::mul, 32), 2500.0);
  EXPECT_LT(dm.op_delay_ps(ir::opcode::mul, 32), 5000.0);
}

TEST(CharacterizerTest, NodeDelayUsesOperandContext) {
  ir::graph g("ctx");
  ir::builder b(g);
  const ir::node_id x = b.input(16, "x");
  const ir::node_id const_shift = b.shli(x, 3);
  const ir::node_id var_shift = b.shl(x, b.input(5, "amt"));
  b.output(b.bxor(const_shift, var_shift));
  delay_model dm;
  EXPECT_DOUBLE_EQ(dm.node_delay_ps(g, const_shift), 0.0);
  EXPECT_GT(dm.node_delay_ps(g, var_shift), 0.0);
}

TEST(CharacterizerTest, ComparisonCharacterizedAtOperandWidth) {
  ir::graph g("cmp");
  ir::builder b(g);
  const ir::node_id c = b.ult(b.input(32, "a"), b.input(32, "b"));
  b.output(c);
  delay_model dm;
  // Must be far more than a 1-bit op: it is a 32-bit comparator.
  EXPECT_GT(dm.node_delay_ps(g, c), 200.0);
}

// The phenomenon the whole paper rests on: synthesized multi-op clouds are
// faster than the sum of their isolated characterizations.
TEST(SynthesisTest, ChainedAddersBeatSumOfParts) {
  delay_model dm;
  const double single = dm.op_delay_ps(ir::opcode::add, 32);
  ir::graph g("chain3");
  ir::builder b(g);
  const ir::node_id a = b.input(32, "a");
  const ir::node_id c = b.input(32, "b");
  const ir::node_id d = b.input(32, "c");
  const ir::node_id e = b.input(32, "d");
  b.output(b.add(b.add(b.add(a, c), d), e));
  const double combined = synthesize_graph(g).critical_delay_ps;
  EXPECT_LT(combined, 3.0 * single)
      << "combined synthesis must beat the sum of per-op delays";
  EXPECT_GT(combined, single);  // sanity: it is still more than one adder
}

TEST(SynthesisTest, SubgraphDelayNeverExceedsSumOfParts) {
  // Property over random graphs: synthesize the whole graph and compare
  // with the naive sum along the worst path.
  rng r(2024);
  delay_model dm;
  for (int trial = 0; trial < 3; ++trial) {
    const ir::graph g = isdc::testing::random_graph(r, 3, 8, 16);
    // Naive critical path: longest path by per-op delays.
    std::vector<double> arrival(g.num_nodes(), 0.0);
    double naive = 0.0;
    for (ir::node_id v = 0; v < g.num_nodes(); ++v) {
      double in = 0.0;
      for (ir::node_id p : g.at(v).operands) {
        in = std::max(in, arrival[p]);
      }
      arrival[v] = in + dm.node_delay_ps(g, v);
      naive = std::max(naive, arrival[v]);
    }
    const double combined = synthesize_graph(g).critical_delay_ps;
    // Small tolerance: mapping is heuristic, so allow 5% above the naive
    // bound; in practice the combined delay is far *below* it.
    EXPECT_LE(combined, naive * 1.05 + 1e-6) << "trial " << trial;
  }
}

}  // namespace
}  // namespace isdc::synth
